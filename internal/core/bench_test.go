// Cooling and tick benchmarks: the background-work side of the policy,
// complementing the per-access benchmarks in internal/bench. The
// BenchmarkCooling/rss=* pair is the scaling guard for DESIGN.md §8 —
// background cost per cooling event must stay sublinear in resident
// pages (an O(RSS) scan reintroduced into the cooling path shows up as
// ns/cooling growing ~16x from rss=64k to rss=1m).
package memtis

import (
	"fmt"
	"testing"

	"memtis/internal/sim"
	"memtis/internal/tier"
)

// coolingMachine builds a THP-off machine with rssPages resident base
// pages registered with the policy, the worst case for a full-table
// scan (one Page object per 4KB unit).
func coolingMachine(rssPages uint64) (*Policy, *sim.Machine) {
	pol := New(Config{
		Sampler: everySample(),
		// Schedule-driven adaptation/cooling off: benchmarks drive
		// cooling explicitly via DebugForceCool.
		AdaptEvery: 1 << 62,
		CoolEvery:  1 << 62,
	})
	fastBytes := rssPages * tier.BasePageSize / 8
	if fastBytes < 2*tier.HugePageSize {
		fastBytes = 2 * tier.HugePageSize
	}
	m := sim.NewMachine(sim.Config{
		FastBytes: fastBytes,
		CapBytes:  rssPages*tier.BasePageSize + 64*tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       false,
		Seed:      1,
	}, pol)
	r := m.Reserve(rssPages * tier.BasePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	return pol, m
}

func BenchmarkCooling(b *testing.B) {
	for _, rss := range []struct {
		name  string
		pages uint64
	}{{"rss=64k", 64 << 10}, {"rss=1m", 1 << 20}} {
		b.Run(rss.name, func(b *testing.B) {
			pol, _ := coolingMachine(rss.pages)
			pol.DebugForceCool() // drain registration-time work once
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol.DebugForceCool()
			}
		})
	}
}

// BenchmarkPolicyTick measures one kmigrated wake in steady state (no
// migrations due): split queue empty, promotion queue empty, free
// space above target — what remains is the tick's fixed bookkeeping
// plus the bounded cooling sweep.
func BenchmarkPolicyTick(b *testing.B) {
	pol, _ := coolingMachine(64 << 10)
	pol.DebugForceCool()
	now := pol.nextWake
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Tick(now)
		now += pol.cfg.KmigratedPeriodNS
	}
}

// TestCoolingBackgroundSublinearInRSS is the deterministic CI gate for
// the DESIGN.md §8 complexity contract: the virtual background cost
// charged per cooling event must not grow linearly with resident
// pages. Growing RSS 16x must grow the per-cooling charge by < 2x —
// the eager full-scan implementation charged ~16x and fails this test
// if reintroduced. Virtual ns are deterministic, so the bound is exact
// and safe on noisy CI runners.
func TestCoolingBackgroundSublinearInRSS(t *testing.T) {
	perCooling := func(rssPages uint64) uint64 {
		pol, _ := coolingMachine(rssPages)
		pol.DebugForceCool() // absorb one-time registration backlog
		before := pol.BackgroundNS()
		pol.DebugForceCool()
		return pol.BackgroundNS() - before
	}
	small := perCooling(16 << 10)
	big := perCooling(256 << 10)
	if small == 0 {
		small = 1
	}
	if growth := float64(big) / float64(small); growth >= 2 {
		t.Fatalf("background cost per cooling grew %.1fx over a 16x RSS growth (%d -> %d ns); "+
			"cooling must stay O(changed pages + bounded sweep), not O(RSS)", growth, small, big)
	}
}

// TestCoolingSteadyStateAllocs pins the scratch-buffer reuse contract:
// a cooling event with no intervening mutations allocates nothing
// (the eager implementation rebuilt a block map and a candidate slice
// on every call).
func TestCoolingSteadyStateAllocs(t *testing.T) {
	pol, _ := coolingMachine(16 << 10)
	pol.DebugForceCool()
	pol.DebugForceCool() // warm scratch buffers
	if avg := testing.AllocsPerRun(10, func() { pol.DebugForceCool() }); avg > 0 {
		t.Fatalf("steady-state cooling allocates %.1f objects per event, want 0", avg)
	}
}

func ExamplePolicy_DebugForceCool() {
	pol, _ := coolingMachine(1 << 10)
	pol.DebugForceCool()
	fmt.Println(pol.Coolings() >= 1)
	// Output: true
}
