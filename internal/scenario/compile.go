package scenario

import (
	"fmt"
	"math/rand"
	"path/filepath"

	"memtis/internal/dist"
	"memtis/internal/sim"
	"memtis/internal/tenant"
	"memtis/internal/tier"
	"memtis/internal/trace"
	"memtis/internal/vm"
	"memtis/internal/workload"
)

// Options tunes Compile.
type Options struct {
	// Dir resolves relative trace paths (empty = process working
	// directory).
	Dir string
}

// Runner is a compiled scenario: a sim.Workload whose Run executes the
// phases in order. A Runner is immutable after Compile — all run state
// lives on the Run stack — so one Runner may drive many machines, and
// matrix cells running in parallel may share it (the same contract as
// workload.W; pinned by TestScenarioMatrixDeterminism).
type Runner struct {
	spec   Spec
	fc     tier.FaultConfig
	phases []cphase
	rss    uint64
	// tn is the tenant multiplexer of a multi-tenant spec (nil for the
	// single-tenant phase form); Run delegates to it wholesale.
	tn *tenant.Runner
}

// cphase is one compiled phase: the spec plus its pre-built access
// source. All fields are read-only after Compile.
type cphase struct {
	p      Phase
	w      *workload.W
	replay *trace.Replay
}

// Compile validates a spec and builds its runner, loading any trace
// files it references.
func Compile(spec Spec, opt Options) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{spec: spec, fc: spec.FaultConfig()}
	if len(spec.Tenants) > 0 {
		return compileTenants(r, opt)
	}
	live := map[string]uint64{}
	var running, peak uint64
	for i := range spec.Phases {
		p := spec.Phases[i]
		cp := cphase{p: p}
		for _, name := range p.Free {
			running -= live[name]
			delete(live, name)
		}
		for _, g := range p.Grow {
			live[g.Name] = g.Bytes
			running += g.Bytes
		}
		switch {
		case p.Workload != "":
			var w *workload.W
			var err error
			if p.RSSGB > 0 {
				w, err = workload.NewScaled(p.Workload, p.RSSGB)
			} else {
				w, err = workload.New(p.Workload)
			}
			if err != nil {
				return nil, fmt.Errorf("scenario: phase %d: %w", i, err)
			}
			cp.w = w
			running += w.Spec().RSSBytes()
		case p.Trace != "":
			path := p.Trace
			if opt.Dir != "" && !filepath.IsAbs(path) {
				path = filepath.Join(opt.Dir, path)
			}
			recs, err := trace.LoadFile(path)
			if err != nil {
				return nil, fmt.Errorf("scenario: phase %d: %w", i, err)
			}
			if len(recs) == 0 {
				return nil, fmt.Errorf("scenario: phase %d: trace %s is empty", i, path)
			}
			rep := trace.NewReplay(spec.Name+"/"+p.Trace, recs)
			cp.replay = rep
			running += rep.SpanPages() * tier.BasePageSize
		}
		if running > peak {
			peak = running
		}
		r.phases = append(r.phases, cp)
	}
	if peak > MaxTotalBytes {
		return nil, fmt.Errorf("scenario: peak resident estimate %d exceeds %d (trace spans included)", peak, MaxTotalBytes)
	}
	// Floor the estimate so degenerate scenarios still get a machine
	// with room for a few huge pages per tier.
	if peak < 4<<20 {
		peak = 4 << 20
	}
	r.rss = peak
	return r, nil
}

// compileTenants builds the multi-tenant form: each tenant's phase
// list compiles into its own sub-Runner (scenario -> tenant -> sim,
// one direction), and internal/tenant's scheduler interleaves them.
// The resident estimate is the sum over tenants — every tenant's
// footprint contends for the same tiers.
func compileTenants(r *Runner, opt Options) (*Runner, error) {
	specs := make([]tenant.Spec, len(r.spec.Tenants))
	var rss uint64
	for i := range r.spec.Tenants {
		t := &r.spec.Tenants[i]
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		sub, err := Compile(Spec{Name: r.spec.Name + "/" + name, Phases: t.Phases}, opt)
		if err != nil {
			return nil, fmt.Errorf("scenario: tenant %d (%s): %w", i, name, err)
		}
		specs[i] = tenant.Spec{
			Name:       name,
			Weight:     t.Weight,
			FloorBytes: t.FloorBytes,
			Workload:   sub,
			SpawnFrac:  t.SpawnFrac,
			ExitFrac:   t.ExitFrac,
			GrowBytes:  t.GrowBytes,
			GrowFrac:   t.GrowFrac,
			ShrinkFrac: t.ShrinkFrac,
		}
		rss += sub.RSSBytes() + t.GrowBytes
	}
	tn, err := tenant.New(tenant.Config{Tenants: specs})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	r.tn = tn
	r.rss = rss
	return r, nil
}

// MustCompile is Compile for tests and examples.
func MustCompile(spec Spec, opt Options) *Runner {
	r, err := Compile(spec, opt)
	if err != nil {
		panic(err)
	}
	return r
}

// Name implements sim.Workload.
func (r *Runner) Name() string { return r.spec.Name }

// Spec returns the compiled spec.
func (r *Runner) Spec() Spec { return r.spec }

// RSSBytes is the peak resident-set estimate harnesses size machines
// with (the running sum of grows, workload RSS and trace spans, net of
// frees, at its maximum over the phase sequence).
func (r *Runner) RSSBytes() uint64 { return r.rss }

// FaultConfig returns the scenario's parsed fault plan (zero when the
// spec declares none).
func (r *Runner) FaultConfig() tier.FaultConfig { return r.fc }

// NumTenants returns the tenant count of a multi-tenant scenario
// (1 for the single-tenant phase form).
func (r *Runner) NumTenants() int {
	if r.tn == nil {
		return 1
	}
	return len(r.spec.Tenants)
}

// Run implements sim.Workload: phases execute in order, each driven
// until the machine's cumulative access count reaches the phase's share
// of the budget. Weights split the budget proportionally with integer
// truncation; the rounding remainder lands on the last source phase, so
// the run always issues exactly `accesses` accesses. Churn (Free, then
// Grow with init touches) applies at phase entry; init touches are
// charged against the whole run's budget, exactly like a workload's
// allocation sweep.
//
// Determinism: every random stream is derived from the machine seed,
// the scenario name and the phase index (SplitMix64 over FNV-1a), so a
// fixed (spec, machine config, budget) triple always produces a
// byte-identical access stream and event trace.
func (r *Runner) Run(m *sim.Machine, accesses uint64) {
	if r.tn != nil {
		// Multi-tenant: the tenant scheduler owns the budget split;
		// each tenant's sub-runner sees the global budget as its
		// nominal target (per-space progress runs behind it, so the
		// scheduler's kill at the global budget is what ends tenants).
		r.tn.Run(m, accesses)
		return
	}
	var total float64
	for i := range r.phases {
		total += r.phases[i].p.effWeight()
	}
	budgets := make([]uint64, len(r.phases))
	var used uint64
	lastSrc := -1
	for i := range r.phases {
		if r.phases[i].p.isSource() {
			lastSrc = i
		}
		b := uint64(float64(accesses) * r.phases[i].p.effWeight() / total)
		budgets[i] = b
		used += b
	}
	if lastSrc >= 0 && accesses > used {
		budgets[lastSrc] += accesses - used
	}
	regions := map[string]vm.Region{}
	var target uint64
	for i := range r.phases {
		cp := &r.phases[i]
		target += budgets[i]
		for _, name := range cp.p.Free {
			if reg, ok := regions[name]; ok {
				m.FreeRegion(reg)
				delete(regions, name)
			}
		}
		for _, g := range cp.p.Grow {
			reg := m.Reserve(g.Bytes)
			regions[g.Name] = reg
			if !g.SkipInit {
				touchRegion(m, reg, accesses)
			}
		}
		switch {
		case cp.w != nil:
			cp.w.Run(m, target)
		case cp.replay != nil:
			cp.replay.Run(m, target)
		case len(cp.p.Mix) > 0:
			r.runMix(m, i, cp.p.Mix, regions, target)
		}
	}
}

// touchRegion first-touch writes every page of a fresh region in
// sequence, bounded by the run's total access budget.
func touchRegion(m *sim.Machine, reg vm.Region, budget uint64) {
	until := m.Accesses() + reg.Pages
	if until > budget {
		until = budget
	}
	next := reg.BaseVPN
	workload.Drive(m, until, func() (uint64, bool) {
		v := next
		next++
		return v, true
	})
}

// runMix drives one mix phase until the machine reaches target
// cumulative accesses.
func (r *Runner) runMix(m *sim.Machine, phase int, mix []MixEntry, regions map[string]vm.Region, target uint64) {
	seed := int64(splitmix64(uint64(m.Cfg.Seed) ^ splitmix64(fnv1a(r.spec.Name)+uint64(phase)+1)))
	rng := rand.New(rand.NewSource(seed))
	type arm struct {
		base  uint64
		src   dist.Source
		write int
	}
	arms := make([]arm, 0, len(mix))
	weights := make([]int, 0, len(mix))
	total := 0
	for _, e := range mix {
		reg := regions[e.Region]
		var src dist.Source
		switch e.Dist {
		case "zipf":
			src = dist.NewZipf(rng, e.S, reg.Pages)
		case "uniform":
			src = dist.NewUniform(rng, reg.Pages)
		case "seq":
			src = dist.NewSequential(reg.Pages)
		}
		if e.Scramble {
			src = dist.NewScrambled(src)
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		arms = append(arms, arm{base: reg.BaseVPN, src: src, write: e.WritePercent})
		total += w
		weights = append(weights, total)
	}
	workload.Drive(m, target, func() (uint64, bool) {
		pick := rng.Intn(total)
		idx := 0
		for weights[idx] <= pick {
			idx++
		}
		a := &arms[idx]
		return a.base + a.src.Next(), rng.Intn(100) < a.write
	})
}

var _ sim.Workload = (*Runner)(nil)
