package render

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	out := BarChart("perf", []BarGroup{
		{Label: "silo 1:8", Bars: []Bar{{"memtis", 1.8}, {"tpp", 1.0}}},
		{Label: "btree 1:8", Bars: []Bar{{"memtis", 1.5}, {"tpp", 0.6}}},
	}, 40)
	if !strings.Contains(out, "silo 1:8") || !strings.Contains(out, "memtis") {
		t.Fatalf("missing labels:\n%s", out)
	}
	// The largest bar reaches full width; the 0.6 bar is shorter than
	// the 1.8 bar.
	lines := strings.Split(out, "\n")
	barLen := func(s string) int { return strings.Count(s, "█") }
	var memtisSilo, tppBtree int
	for _, l := range lines {
		if strings.Contains(l, "memtis") && memtisSilo == 0 {
			memtisSilo = barLen(l)
		}
		if strings.Contains(l, "tpp") {
			tppBtree = barLen(l)
		}
	}
	if memtisSilo <= tppBtree {
		t.Fatalf("bar scaling wrong: %d vs %d\n%s", memtisSilo, tppBtree, out)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	out := BarChart("t", []BarGroup{{Label: "g", Bars: []Bar{{"a", 0}}}}, 10)
	if !strings.Contains(out, "0.000") {
		t.Fatal("zero bar missing value")
	}
	if BarChart("t", nil, 0) == "" {
		t.Fatal("empty chart should still render title")
	}
}

func TestLineChart(t *testing.T) {
	out := LineChart("tput", []Series{
		{Name: "memtis", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 4}},
		{Name: "ns", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1.5, 2, 2.5}},
	}, 40, 8)
	if !strings.Contains(out, "legend:") || !strings.Contains(out, "*=memtis") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series glyphs missing")
	}
	// Rising series: the topmost canvas rows contain the '*' glyph.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") && !strings.Contains(lines[2], "*") {
		t.Fatalf("peak not at top:\n%s", out)
	}
}

func TestLineChartDegenerate(t *testing.T) {
	if !strings.Contains(LineChart("t", nil, 40, 8), "no data") {
		t.Fatal("empty chart")
	}
	one := LineChart("t", []Series{{Name: "a", X: []float64{5}, Y: []float64{1}}}, 40, 8)
	if !strings.Contains(one, "no data") {
		t.Fatal("single-point series has zero x-range")
	}
}

func TestHeatGrid(t *testing.T) {
	out := HeatGrid("heat", [][]uint64{
		{0, 1, 10},
		{10, 1, 0},
	})
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "█") {
		t.Fatalf("hot cell not full-shade:\n%s", out)
	}
	// Zero cells are blank, nonzero cells never blank.
	if !strings.HasPrefix(lines[1], "| ") {
		t.Fatalf("cold cell not blank:\n%s", out)
	}
	if strings.Contains(HeatGrid("x", nil), "█") {
		t.Fatal("empty grid")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("length: %q", s)
	}
	r := []rune(s)
	if r[0] == r[3] {
		t.Fatalf("no gradient: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline")
	}
}
