// Tenant-sharded parallel simulation (DESIGN.md §13): the inline
// scheduler replayed as a driver over sim.Sharded's tenant routing.
// Whole tenants are dealt round-robin across S shard machines — tenant
// t runs as local address space t/S on shard t%S — and the scheduler
// runs entirely on the driver goroutine: the weighted pick, the churn
// plan, the slice accounting and the reservation layout are all
// replayed from driver-local state (never read back from a shard), so
// each lane receives its op subsequence in deterministic order and the
// block-sharding determinism argument carries over unchanged. Actions
// that do depend on machine state — exit frees sized by residency,
// QoS floor checks, lifecycle trace events — travel as hook ops and
// execute on the owning lane at their exact stream position.
//
// Every shard gets a private QoS arbiter over its local tenants: a
// shard's fast tier is the only one its tenants contend for, so the
// local mix is the correct contention domain for floors and weighted
// promotion shares. Arbiter state crosses shards only at barriers —
// the final Flush merges the per-shard views into one ArbiterMerge and
// Finish folds the per-tenant rows into the aggregate result.
package tenant

import (
	"fmt"

	"memtis/internal/obs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
	"memtis/internal/workload"
)

// ShardedConfig describes a tenant-sharded run. Machine is the
// aggregate configuration, divided across shards exactly as
// sim.ShardedConfig divides it (FastBytes/CapBytes split and rounded
// to 2MB blocks, per-shard derived seeds). Machine.Trace must be nil;
// per-shard tracing goes through TraceFor.
type ShardedConfig struct {
	// Shards is the shard count S; values < 1 mean 1.
	Shards int
	// Machine is the aggregate machine configuration.
	Machine sim.Config
	// PolicyFor, when non-nil, supplies each shard's private policy
	// instance (fresh per call).
	PolicyFor func(shard int) sim.Policy
	// TraceFor, when non-nil, supplies each shard's private tracer.
	TraceFor func(shard int) *obs.Tracer
	// Sequential applies every op inline on the caller's goroutine —
	// the determinism reference mode; parallel runs must be
	// byte-identical to it.
	Sequential bool
}

// ArbiterMerge is the cross-shard QoS arbiter view, merged at the
// run's final barrier: per-tenant counters indexed by global tenant
// id, plus the contended-promotion total across every shard.
type ArbiterMerge struct {
	TotalContended   uint64   // base pages promoted while contended, all shards
	Contended        []uint64 // per tenant: contended promotions granted
	PromotionsDenied []uint64 // per tenant: arbiter/Admit vetoes toward Fast
	DemotionsDenied  []uint64 // per tenant: floor/Admit vetoes away from Fast
	FloorViolations  []uint64 // per tenant: unexplained floor dips
}

// ShardedResult bundles one tenant-sharded run: per-shard results in
// shard order, the aggregate view (per-tenant rows re-labelled with
// global ids and merged — see sim.AggregateShards), and the merged
// arbiter state.
type ShardedResult struct {
	Shards    []sim.Result
	Aggregate sim.Result
	Arbiter   ArbiterMerge
}

// Hook argument layout: kind in bits 0-3, local tenant id in bits
// 4-23, aux in the bits above (sim.HookOn grants 59 payload bits; the
// largest aux is a slice length, far below 2^35).
const (
	shSwitch uint64 = iota // aux: slice length in accesses
	shSpawn
	shExit
	shFloor  // check one tenant's floor
	shFloors // check every local tenant's floor (after churn)
)

// shardProc is one tenant's driver-side execution state: the suspended
// stream plus the scheduler's view of its budget and liveness. The
// machine-side state (its address space) lives on the owning shard.
type shardProc struct {
	id       int
	spec     *Spec
	stream   workload.Stream
	begun    bool
	live     bool
	finished bool
	issued   uint64 // accesses issued for this tenant (mirrors SpaceAccesses)
}

// shardedRun is the driver: the same scheduler state as run, minus the
// machine (replaced by issue counters and the reservation clocks).
type shardedRun struct {
	s      *sim.Sharded
	cfg    *Config
	shards int
	target uint64
	slice  uint64
	issued uint64 // machine-wide accesses issued (mirrors TotalAccesses)

	procs  []*shardProc
	names  []string
	locals [][]int // shard -> global tenant ids, local-space order
	seeds  []int64 // per-shard derived machine seed (stream Env seed)
	pk     *wpick
	arbs   []*arbiter // per shard; nil when the shard hosts no tenants

	events []churnEvent
	nextEv int
	grown  []vm.Region
	// nextVPN is each tenant's reservation clock, mirroring
	// vm.AddressSpace.Reserve bit for bit (2MB-aligned base, ceil-page
	// length) so the driver predicts every space-local base without
	// asking the shard; the lane's reserve assertion checks the mirror.
	nextVPN []uint64

	rng uint64
	buf [tenantBatch]sim.Op
}

// RunSharded executes the runner's tenant plan on a tenant-sharded
// machine for exactly `accesses` machine-wide accesses and returns the
// per-shard results, the aggregate and the merged arbiter state.
// Every tenant workload must be a workload.Streamer (the goroutine-
// baton fallback would need the machine on the driver's side of the
// lanes), and Config.OnChurn is unsupported (it audits one machine
// mid-run; sharded machines are mid-stream at churn time).
func (r *Runner) RunSharded(cfg ShardedConfig, accesses uint64) (*ShardedResult, error) {
	n := len(r.cfg.Tenants)
	if r.cfg.OnChurn != nil {
		return nil, fmt.Errorf("tenant: OnChurn audits one machine mid-run; unsupported on sharded runs")
	}
	for i := range r.cfg.Tenants {
		if _, ok := r.cfg.Tenants[i].Workload.(workload.Streamer); !ok {
			return nil, fmt.Errorf("tenant: sharded runs need resumable steppers; tenant %d workload %T implements no workload.Streamer",
				i, r.cfg.Tenants[i].Workload)
		}
	}
	S := cfg.Shards
	if S < 1 {
		S = 1
	}
	s := sim.NewSharded(sim.ShardedConfig{
		Shards:     S,
		Machine:    cfg.Machine,
		PolicyFor:  cfg.PolicyFor,
		TraceFor:   cfg.TraceFor,
		Sequential: cfg.Sequential,
	})
	sr := &shardedRun{
		s:       s,
		cfg:     &r.cfg,
		shards:  S,
		target:  accesses,
		slice:   r.cfg.Slice,
		procs:   make([]*shardProc, n),
		names:   make([]string, n),
		locals:  make([][]int, S),
		seeds:   make([]int64, S),
		pk:      newWpick(n),
		arbs:    make([]*arbiter, S),
		grown:   make([]vm.Region, n),
		nextVPN: make([]uint64, n),
		rng:     uint64(cfg.Machine.Seed) ^ 0x74_65_6e_61_6e_74, // "tenant", as in run
	}
	for i := range r.cfg.Tenants {
		sr.names[i] = tenantName(&r.cfg.Tenants[i], i)
	}
	// Per-shard setup, before the first dispatch (the machines belong
	// to the driver until a lane receives work): local spaces in
	// round-robin deal order, the shard's private arbiter installed as
	// the veto on the root space first so AddSpace copies it, and the
	// hook decoder bound to the shard's local tenant table.
	for sh := 0; sh < S; sh++ {
		sr.seeds[sh] = s.Machine(sh).Cfg.Seed
		var locals []int
		for t := sh; t < n; t += S {
			locals = append(locals, t)
		}
		sr.locals[sh] = locals
		if len(locals) == 0 {
			continue
		}
		m := s.Machine(sh)
		specs := make([]*Spec, len(locals))
		names := make([]string, len(locals))
		for l, g := range locals {
			specs[l] = &r.cfg.Tenants[g]
			names[l] = sr.names[g]
		}
		a := newArbiter(m, specs, names)
		m.AS.MigrateVeto = a.veto
		for l := 1; l < len(locals); l++ {
			if id := m.AddSpace(names[l]); id != l {
				panic("tenant: sharded machine not fresh (spaces already added)")
			}
		}
		if len(locals) > 1 {
			m.SetSpaceLabel(0, names[0])
		}
		sr.arbs[sh] = a
		s.SetHook(sh, sr.hookFor(sh))
	}
	// Initial spawns and the churn plan, exactly as newRun builds them:
	// the spawn hooks are each lane's first ops, mirroring the plain
	// scheduler's pre-run spawn events.
	for i := range r.cfg.Tenants {
		t := &r.cfg.Tenants[i]
		sr.procs[i] = &shardProc{id: i, spec: t}
		if t.SpawnFrac <= 0 {
			sr.procs[i].live = true
			sr.pk.set(i, max(t.Weight, 1))
			sr.hookOn(i, shSpawn, 0)
		} else {
			sr.events = append(sr.events, churnEvent{sr.frac(t.SpawnFrac), i, ChurnSpawn})
		}
		if t.GrowBytes > 0 {
			sr.events = append(sr.events, churnEvent{sr.frac(t.GrowFrac), i, ChurnGrow})
			if t.ShrinkFrac > 0 {
				sr.events = append(sr.events, churnEvent{sr.frac(t.ShrinkFrac), i, ChurnShrink})
			}
		}
		if t.ExitFrac > 0 {
			sr.events = append(sr.events, churnEvent{sr.frac(t.ExitFrac), i, ChurnExit})
		}
	}
	sortChurn(sr.events)
	// The scheduler loop, issuing against driver-local counters only.
	for {
		sr.fireChurn()
		if sr.issued >= sr.target {
			break
		}
		p := sr.pick()
		if p == nil {
			break
		}
		sr.schedule(p)
	}
	// Final barrier: drain the lanes, then finalize each arbiter (the
	// machines are the driver's again) and merge the per-shard views.
	s.Flush()
	for _, a := range sr.arbs {
		if a != nil {
			a.finalize()
		}
	}
	merge := sr.mergeArbiters()
	rs := s.Finish("tenants")
	// A shard hosting exactly one tenant stays single-space (the same
	// fast path a one-tenant plain run takes) and so reports no tenant
	// rows; synthesize the row so the aggregate table is complete.
	for sh, locals := range sr.locals {
		if len(locals) != 1 || len(rs[sh].Tenants) != 0 {
			continue
		}
		m := s.Machine(sh)
		as := m.Space(0)
		rs[sh].Tenants = []sim.TenantResult{{
			ID:            0,
			Name:          sr.names[locals[0]],
			Accesses:      m.SpaceAccesses(0),
			ResidentBytes: as.ResidentUnits() * tier.BasePageSize,
			FastBytes:     as.FastUnits() * tier.BasePageSize,
		}}
	}
	return &ShardedResult{Shards: rs, Aggregate: sim.AggregateShards(rs), Arbiter: merge}, nil
}

func (sr *shardedRun) frac(f float64) uint64 { return uint64(f * float64(sr.target)) }

// rand is the identical SplitMix64 step run uses: same seed, same
// draw sequence, same schedule.
func (sr *shardedRun) rand() uint64 {
	sr.rng += 0x9e3779b97f4a7c15
	z := sr.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// shardOf splits a global tenant id into (shard, local space id).
func (sr *shardedRun) shardOf(t int) (int, int) { return t % sr.shards, t / sr.shards }

// hookOn enqueues a hook op on tenant t's shard.
func (sr *shardedRun) hookOn(t int, kind, aux uint64) {
	sh, loc := sr.shardOf(t)
	sr.s.HookOn(sh, kind|uint64(loc)<<4|aux<<24)
}

// hookFor builds shard sh's lane-side hook: it decodes the argument
// and performs the machine-state-dependent actions the plain scheduler
// does inline, against the shard machine and its private arbiter.
// Trace events carry the global tenant id, so per-shard traces read
// like the plain runner's.
func (sr *shardedRun) hookFor(sh int) func(m *sim.Machine, arg uint64) {
	a := sr.arbs[sh]
	return func(m *sim.Machine, arg uint64) {
		loc := int(arg >> 4 & 0xFFFFF)
		global := uint64(loc*sr.shards + sh)
		switch arg & 15 {
		case shSwitch:
			m.Tracer().Emit(obs.EvTenantSwitch, global, false, 0, arg>>24)
		case shSpawn:
			a.addLive(loc)
			m.Tracer().Emit(obs.EvTenantSpawn, global, false, 0, 0)
		case shExit:
			a.removeLive(loc)
			as := m.Space(loc)
			released := as.ResidentUnits() * tier.BasePageSize
			m.UseSpace(loc)
			m.FreeRegion(vm.Region{BaseVPN: 0, Pages: as.ReservedPages()})
			m.Tracer().Emit(obs.EvTenantExit, global, false, released, 0)
		case shFloor:
			a.checkFloor(loc)
		case shFloors:
			a.checkFloors()
		}
	}
}

// fireChurn applies every lifecycle event whose threshold has passed,
// measured by the driver's issue counter (the exact value
// TotalAccesses reaches once the lanes drain).
func (sr *shardedRun) fireChurn() {
	for sr.nextEv < len(sr.events) && sr.events[sr.nextEv].at <= sr.issued {
		ev := sr.events[sr.nextEv]
		sr.nextEv++
		sr.apply(ev)
	}
}

func (sr *shardedRun) apply(ev churnEvent) {
	p := sr.procs[ev.tenant]
	switch ev.kind {
	case ChurnSpawn:
		p.live = true
		sr.pk.set(ev.tenant, max(p.spec.Weight, 1))
		sr.hookOn(ev.tenant, shSpawn, 0)
	case ChurnExit:
		sr.exit(p)
	case ChurnGrow:
		sr.grow(p)
	case ChurnShrink:
		sr.shrink(p)
	}
	// The plain scheduler floor-checks every tenant after churn; each
	// shard checks its own locals at the same stream position.
	for sh, a := range sr.arbs {
		if a != nil {
			sr.s.HookOn(sh, shFloors)
		}
	}
}

// exit retires the tenant driver-side and hands the residency-sized
// free and the exit event to the owning lane.
func (sr *shardedRun) exit(p *shardProc) {
	if !p.live {
		return
	}
	p.finished = true
	sr.pk.clear(p.id)
	p.live = false
	sr.hookOn(p.id, shExit, 0)
}

// grow reserves the tenant's churn region and write-touches it, the
// touches counting against the global budget exactly as the plain
// scheduler's do.
func (sr *shardedRun) grow(p *shardProc) {
	if !p.live || p.spec.GrowBytes == 0 {
		return
	}
	sh, loc := sr.shardOf(p.id)
	sr.s.UseOn(sh, loc)
	reg := sr.reserve(p.id, p.spec.GrowBytes)
	sr.grown[p.id] = reg
	for vpn := reg.BaseVPN; vpn < reg.BaseVPN+reg.Pages && sr.issued < sr.target; vpn++ {
		sr.s.AccessOn(sh, vpn, true)
		sr.issued++
		p.issued++
	}
}

func (sr *shardedRun) shrink(p *shardProc) {
	if !p.live || sr.grown[p.id].Pages == 0 {
		return
	}
	sh, loc := sr.shardOf(p.id)
	sr.s.UseOn(sh, loc)
	sr.s.FreeOn(sh, sr.grown[p.id].BaseVPN, sr.grown[p.id].Pages)
	sr.grown[p.id] = vm.Region{}
}

// pick draws the next tenant with the same Fenwick search and the same
// RNG stream as the plain scheduler.
func (sr *shardedRun) pick() *shardProc {
	if sr.pk.sum == 0 {
		return nil
	}
	return sr.procs[sr.pk.pick(sr.rand()%sr.pk.sum)]
}

// reserve mirrors vm.AddressSpace.Reserve for tenant t's space —
// 2MB-aligned base, ceil-page length — records the prediction in the
// tenant's reservation clock and enqueues the reserve on its lane,
// which asserts the shard machine lands on the same base.
func (sr *shardedRun) reserve(t int, bytes uint64) vm.Region {
	pages := (bytes + tier.BasePageSize - 1) / tier.BasePageSize
	nv := sr.nextVPN[t]
	if rem := nv % tier.SubPages; rem != 0 {
		nv += tier.SubPages - rem
	}
	r := vm.Region{BaseVPN: nv, Pages: pages}
	sr.nextVPN[t] = nv + pages
	sh, _ := sr.shardOf(t)
	sr.s.ReserveOn(sh, bytes, r.BaseVPN)
	return r
}

// schedule issues one slice for p: the same bounds as the plain
// runSlice (next churn threshold, global budget, the tenant's own
// per-space budget), batch-filled from the tenant's suspended stream
// and enqueued on the owning lane.
func (sr *shardedRun) schedule(p *shardProc) {
	now := sr.issued
	end := now + sr.slice
	if sr.nextEv < len(sr.events) && sr.events[sr.nextEv].at < end {
		end = sr.events[sr.nextEv].at
	}
	if sr.target < end {
		end = sr.target
	}
	sh, loc := sr.shardOf(p.id)
	sr.s.UseOn(sh, loc)
	sr.hookOn(p.id, shSwitch, end-now)
	if !p.begun {
		p.begun = true
		t := p.id
		p.stream = p.spec.Workload.(workload.Streamer).Stream(workload.Env{
			Reserve: func(bytes uint64) vm.Region { return sr.reserve(t, bytes) },
			Seed:    sr.seeds[sh],
		})
	}
	step, fill := p.stream.Step, p.stream.Fill
	for {
		if sr.issued >= end {
			break
		}
		if p.issued >= sr.target {
			// The tenant's own (per-space) budget is spent: the plain
			// runSlice retires it at the same point.
			p.finished = true
			sr.pk.clear(p.id)
			break
		}
		n := end - sr.issued
		if rem := sr.target - p.issued; rem < n {
			n = rem
		}
		if n > tenantBatch {
			n = tenantBatch
		}
		if fill != nil {
			fill(sr.buf[:n])
		} else {
			for i := uint64(0); i < n; i++ {
				sr.buf[i].VPN, sr.buf[i].Write = step()
			}
		}
		sr.s.AccessBatchOn(sh, sr.buf[:n])
		sr.issued += n
		p.issued += n
	}
	sr.hookOn(p.id, shFloor, 0)
}

// mergeArbiters folds the per-shard arbiter state into the global
// view, indexed by global tenant id. Runs at a barrier: the lanes are
// idle and every counter cell is settled.
func (sr *shardedRun) mergeArbiters() ArbiterMerge {
	n := len(sr.procs)
	am := ArbiterMerge{
		Contended:        make([]uint64, n),
		PromotionsDenied: make([]uint64, n),
		DemotionsDenied:  make([]uint64, n),
		FloorViolations:  make([]uint64, n),
	}
	for sh, a := range sr.arbs {
		if a == nil {
			continue
		}
		am.TotalContended += a.totalContended
		for l := range a.cells {
			g := l*sr.shards + sh
			am.Contended[g] = a.contendedPromoted[l]
			am.PromotionsDenied[g] = *a.cells[l].promoDenied
			am.DemotionsDenied[g] = *a.cells[l].demoDenied
			am.FloorViolations[g] = *a.cells[l].floorViol
		}
	}
	return am
}
