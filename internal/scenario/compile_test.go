// External tests of the compiled runner: these need internal/bench's
// machine sizing and policy factory, which imports this package, so
// they live in the scenario_test package (no import cycle for external
// test packages).
package scenario_test

import (
	"bytes"
	"sync"
	"testing"

	"memtis/internal/bench"
	"memtis/internal/obs"
	"memtis/internal/scenario"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/trace"
	"memtis/internal/workload"
)

// TestScenarioReproducesWorkloadByteIdentically is the acceptance pin
// of the scenario engine: a one-phase spec naming a Table 2 workload
// must drive the machine through the exact run the hand-coded harness
// performs — same machine config, same policy, byte-identical event
// trace. The runner adds no RNG draws and no extra accesses around a
// pure workload phase, so any divergence is a compilation bug.
func TestScenarioReproducesWorkloadByteIdentically(t *testing.T) {
	cfg := bench.DefaultConfig()
	cfg.Accesses = 60_000
	spec := workload.MustNew("silo").Spec()

	runDirect := func() []byte {
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		ccfg := cfg
		ccfg.Trace = obs.NewTracer(sink)
		res := bench.RunOne("silo", "memtis", bench.Ratio1to8, ccfg)
		if res.Accesses != cfg.Accesses {
			t.Fatalf("direct run issued %d accesses", res.Accesses)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	runScenario := func() []byte {
		sc := scenario.MustCompile(scenario.Spec{
			Name:   "silo-equiv",
			Phases: []scenario.Phase{{Workload: "silo"}},
		}, scenario.Options{})
		if sc.RSSBytes() != spec.RSSBytes() {
			t.Fatalf("scenario RSS %d, workload RSS %d", sc.RSSBytes(), spec.RSSBytes())
		}
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		ccfg := cfg
		ccfg.Trace = obs.NewTracer(sink)
		res := bench.RunScenario(sc, "memtis", bench.Ratio1to8, ccfg)
		if res.Accesses != cfg.Accesses {
			t.Fatalf("scenario run issued %d accesses", res.Accesses)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	direct, scen := runDirect(), runScenario()
	if len(direct) == 0 {
		t.Fatal("direct run emitted no events")
	}
	if !bytes.Equal(direct, scen) {
		t.Fatalf("event traces differ: direct %d bytes, scenario %d bytes", len(direct), len(scen))
	}
}

// TestScenarioTenantsRun compiles and runs the multi-tenant spec form
// end to end: exact global budget, one result row per tenant, named
// tenant counters in the registry, and the tenant event kinds in the
// trace.
func TestScenarioTenantsRun(t *testing.T) {
	mk := func() []scenario.Phase {
		return []scenario.Phase{
			{Grow: []scenario.Region{{Name: "a", Bytes: 4 << 20}},
				Mix: []scenario.MixEntry{{Region: "a", Dist: "zipf", S: 0.99}}},
		}
	}
	sc := scenario.MustCompile(scenario.Spec{
		Name: "multi",
		Tenants: []scenario.TenantSpec{
			{Name: "x", Weight: 2, Phases: mk()},
			{Name: "y", FloorBytes: 2 << 20, Phases: mk(), SpawnFrac: 0.2, ExitFrac: 0.8},
		},
	}, scenario.Options{})
	if sc.NumTenants() != 2 {
		t.Fatalf("NumTenants = %d", sc.NumTenants())
	}
	if sc.RSSBytes() != 8<<20 {
		t.Fatalf("RSSBytes = %d, want the tenants' sum", sc.RSSBytes())
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	cfg := bench.DefaultConfig()
	cfg.Accesses = 80_000
	cfg.Trace = obs.NewTracer(sink)
	res := bench.RunScenario(sc, "memtis", bench.Ratio1to8, cfg)
	if res.Accesses != cfg.Accesses {
		t.Fatalf("issued %d accesses, want %d", res.Accesses, cfg.Accesses)
	}
	if len(res.Tenants) != 2 {
		t.Fatalf("got %d tenant rows, want 2", len(res.Tenants))
	}
	if res.Tenants[0].Name != "x" || res.Tenants[1].Name != "y" {
		t.Fatalf("tenant rows %+v", res.Tenants)
	}
	found := map[string]bool{}
	for _, mt := range res.Counters {
		found[mt.Name] = true
	}
	for _, name := range []string{"tenant/x/accesses", "tenant/y/floor_violations"} {
		if !found[name] {
			t.Fatalf("counter %s missing (have %d counters)", name, len(res.Counters))
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"tenant_spawn", "tenant_switch", "tenant_exit"} {
		if !bytes.Contains(buf.Bytes(), []byte(kind)) {
			t.Fatalf("event trace has no %s event", kind)
		}
	}
}

// TestScenarioChurn pins the Free/Grow semantics: regions grown in one
// phase and freed in a later one leave the resident set, and SkipInit
// regions stay unmapped until accessed.
func TestScenarioChurn(t *testing.T) {
	sc := scenario.MustCompile(scenario.Spec{
		Name: "churn",
		Phases: []scenario.Phase{
			{Grow: []scenario.Region{{Name: "a", Bytes: 8 << 20}},
				Mix: []scenario.MixEntry{{Region: "a", Dist: "uniform"}}},
			{Free: []string{"a"},
				Grow: []scenario.Region{{Name: "b", Bytes: 4 << 20}},
				Mix:  []scenario.MixEntry{{Region: "b", Dist: "seq", WritePercent: 100}}},
		},
	}, scenario.Options{})
	// Peak resident is phase 0's 8MB (b comes after a is freed).
	if got := sc.RSSBytes(); got != 8<<20 {
		t.Fatalf("RSSBytes = %d, want %d", got, 8<<20)
	}
	mc := bench.ScenarioMachine(sc, bench.Ratio1to8, bench.DefaultConfig())
	m := sim.NewMachine(mc, nil)
	sc.Run(m, 30_000)
	if m.Accesses() != 30_000 {
		t.Fatalf("issued %d accesses, want 30000", m.Accesses())
	}
	// After the run only b (4MB) is resident.
	if rss := m.AS.RSSBytes(); rss > 4<<20 {
		t.Fatalf("final RSS %d, want <= %d (region a freed)", rss, 4<<20)
	}
	// SkipInit: an untouched region contributes nothing to RSS.
	lazy := scenario.MustCompile(scenario.Spec{
		Name: "lazy",
		Phases: []scenario.Phase{
			{Grow: []scenario.Region{
				{Name: "hot", Bytes: 2 << 20},
				{Name: "never", Bytes: 256 << 20, SkipInit: true},
			},
				Mix: []scenario.MixEntry{{Region: "hot", Dist: "uniform"}}},
		},
	}, scenario.Options{})
	m2 := sim.NewMachine(bench.ScenarioMachine(lazy, bench.Ratio1to8, bench.DefaultConfig()), nil)
	lazy.Run(m2, 10_000)
	if rss := m2.AS.RSSBytes(); rss > 4<<20 {
		t.Fatalf("RSS %d with a skip_init region, want only the hot region resident", rss)
	}
}

// TestScenarioTracePhase pins trace replay through a spec: record a
// short run, reference the file from a trace phase, and require the
// compiled runner to issue exactly the budget through it.
func TestScenarioTracePhase(t *testing.T) {
	mc := sim.Config{
		FastBytes: 4 * tier.HugePageSize,
		CapBytes:  64 * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      3,
	}
	m := sim.NewMachine(mc, nil)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	trace.Capture(m, w)
	r := m.Reserve(2 * tier.HugePageSize)
	for i := 0; i < 4000; i++ {
		m.Access(r.BaseVPN+uint64(i)%r.Pages, i%5 == 0)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := trace.SaveFile(dir+"/short.trace", recs); err != nil {
		t.Fatal(err)
	}

	spec := scenario.Spec{
		Name:   "trace-phase",
		Phases: []scenario.Phase{{Trace: "short.trace"}},
	}
	sc, err := scenario.Compile(spec, scenario.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m2 := sim.NewMachine(bench.ScenarioMachine(sc, bench.Ratio1to8, bench.DefaultConfig()), nil)
	sc.Run(m2, 10_000) // loops the 4000-record trace 2.5x
	if m2.Accesses() != 10_000 {
		t.Fatalf("issued %d accesses, want 10000", m2.Accesses())
	}
	// A missing trace file must fail at compile time, not at run time.
	if _, err := scenario.Compile(spec, scenario.Options{Dir: t.TempDir()}); err == nil {
		t.Fatal("Compile accepted a spec with a missing trace file")
	}
}

// TestSharedRunnerParallelDeterminism pins the concurrency contract: a
// single compiled Runner driven from many goroutines over machines with
// the same config produces identical results, because all run state
// lives on the Run stack.
func TestSharedRunnerParallelDeterminism(t *testing.T) {
	sc := scenario.MustCompile(scenario.Generate(17), scenario.Options{})
	cfg := bench.DefaultConfig()
	cfg.Accesses = 20_000
	run := func() sim.Result {
		return bench.RunScenario(sc, "memtis", bench.Ratio1to8, cfg)
	}
	want := run()
	var wg sync.WaitGroup
	got := make([]sim.Result, 8)
	for i := range got {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = run()
		}()
	}
	wg.Wait()
	for i, g := range got {
		if g.AppNS != want.AppNS || g.FastHitRatio != want.FastHitRatio || g.Accesses != want.Accesses {
			t.Fatalf("parallel run %d diverged: %+v vs %+v", i, g, want)
		}
	}
}
