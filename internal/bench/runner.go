// The parallel experiment runner: fans the (workload, ratio, policy)
// cells of an experiment matrix out to a bounded worker pool, one
// independent simulated machine per cell, and assembles results in
// deterministic plot order regardless of completion order.
//
// Determinism across worker counts rests on two invariants:
//
//  1. Every cell derives its own RNG seed from (Config.Seed, workload,
//     ratio, policy) via CellSeed — no cell's stream depends on how
//     many cells ran before it, so scheduling cannot perturb results.
//  2. A cell runs on a private Machine, Policy and Workload instance;
//     no package in the simulator holds mutable global state (see
//     TestMachinesAreIndependent in internal/sim).
//
// The determinism regression tests in runner_test.go assert that an
// 8-worker run is cell-for-cell identical to a sequential one.
package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"memtis/internal/obs"
	"memtis/internal/sim"
)

// CellSeed derives an independent per-cell RNG seed from the base seed
// and the cell's matrix coordinates using FNV-1a hashes of the
// coordinates pushed through a SplitMix64 finalizer. Cells of the same
// matrix get statistically independent streams; the same coordinates
// and base seed always yield the same stream.
func CellSeed(base int64, workload, ratio, policy string) int64 {
	h := splitmix64(uint64(base) ^ fnv1a(workload))
	h = splitmix64(h ^ fnv1a(ratio))
	h = splitmix64(h ^ fnv1a(policy))
	return int64(h)
}

// splitmix64 is the SplitMix64 finalizer (Steele et al., "Fast
// splittable pseudorandom number generators"): a bijective avalanche
// mix, so distinct inputs cannot collide by construction.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a coordinate string (FNV-1a 64-bit).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// CellConfig returns cfg with Seed replaced by the cell-derived seed.
// Matrix runners use it for every cell; single-run entry points
// (RunOne with a caller-chosen seed) are unaffected.
func CellConfig(cfg Config, workload, ratio, policy string) Config {
	cfg.Seed = CellSeed(cfg.Seed, workload, ratio, policy)
	return cfg
}

// Cancelled reports a fan-out stopped by context cancellation before
// every cell ran. It wraps the context's error, so
// errors.Is(err, context.Canceled) keeps matching; callers that want
// the completed-cell count unwrap it with errors.As.
type Cancelled struct {
	Done  int   // cells that finished before the stop
	Total int   // cells the fan-out was asked to run
	Cause error // the context's error (Canceled or DeadlineExceeded)
}

// Error implements error.
func (e *Cancelled) Error() string {
	return fmt.Sprintf("bench: cancelled after %d/%d cells: %v", e.Done, e.Total, e.Cause)
}

// Unwrap exposes the context's error to errors.Is/errors.As.
func (e *Cancelled) Unwrap() error { return e.Cause }

// Progress is one runner progress event, emitted after each cell
// completes.
type Progress struct {
	Done      int    // cells finished so far
	Total     int    // cells in this fan-out
	Cell      string // label of the cell that just finished
	VirtualNS uint64 // cumulative simulated virtual time across cells
}

// Runner executes experiment cells on a bounded worker pool.
//
// Workers <= 0 uses GOMAXPROCS; Workers == 1 is the sequential mode:
// cells run in enumeration order on the calling goroutine (the
// reference for the parallel-equals-sequential tests). The zero value
// is a parallel runner with no progress reporting.
type Runner struct {
	Workers int
	// Progress, when set, observes every cell completion. It is called
	// under the runner's lock: keep it fast and do not call back into
	// the runner.
	Progress func(Progress)
}

// Sequential returns a single-worker runner — the determinism
// reference.
func Sequential() *Runner { return &Runner{Workers: 1} }

// Parallel returns a runner with n workers (n <= 0: GOMAXPROCS).
func Parallel(n int) *Runner { return &Runner{Workers: n} }

// cellTask is one schedulable unit: label for progress reporting, run
// executes the cell (writing into its pre-assigned result slot) and
// returns the virtual nanoseconds it simulated.
type cellTask struct {
	label string
	run   func() uint64
}

// do drains tasks with the runner's worker bound. Each task owns its
// result slot, so workers never share mutable state; only the progress
// counters are locked. On context cancellation, in-flight cells finish
// and the remainder are never started.
func (r *Runner) do(ctx context.Context, tasks []cellTask) error {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	total := len(tasks)
	if workers <= 1 {
		// Sequential fast path on the calling goroutine: natural stacks
		// for panics and no scheduler in the loop.
		var virt uint64
		for i, t := range tasks {
			if err := ctx.Err(); err != nil {
				return &Cancelled{Done: i, Total: total, Cause: err}
			}
			virt += t.run()
			if r.Progress != nil {
				r.Progress(Progress{Done: i + 1, Total: total, Cell: t.label, VirtualNS: virt})
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
		virt uint64
	)
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := range tasks {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				v := tasks[i].run()
				mu.Lock()
				done++
				virt += v
				if r.Progress != nil {
					r.Progress(Progress{Done: done, Total: total, Cell: tasks[i].label, VirtualNS: virt})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	// done is stable once every worker has exited; no lock needed.
	if err := ctx.Err(); err != nil {
		return &Cancelled{Done: done, Total: total, Cause: err}
	}
	return nil
}

// cellTrace attaches a per-cell JSONL tracer to ccfg when dir is
// non-empty, returning a flush-and-close func. It always clears
// ccfg.Trace first: matrix cells never share a caller-supplied tracer
// (parallel cells would interleave one stream).
func cellTrace(dir, workload, ratio, polName string, ccfg *Config) (func() error, error) {
	ccfg.Trace = nil
	if dir == "" {
		return func() error { return nil }, nil
	}
	name := fmt.Sprintf("%s_%s_%s.events.jsonl",
		fileSafe(workload), fileSafe(ratio), fileSafe(polName))
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	sink := obs.NewJSONL(f)
	ccfg.Trace = obs.NewTracer(sink)
	return func() error {
		if err := sink.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}, nil
}

// fileSafe maps a matrix coordinate onto a file-name fragment: ':' (in
// ratio names) is spelled "to", path separators become '-'.
func fileSafe(s string) string {
	s = strings.ReplaceAll(s, ":", "to")
	return strings.ReplaceAll(s, "/", "-")
}

// RunMatrix executes the (workload x ratio x policy) matrix plus the
// per-workload all-capacity baselines every figure normalises against,
// and assembles the normalised Matrix in plot order (workloads outer,
// ratios, then policies) regardless of completion order. Nil slices
// select the Figure 5 defaults.
func (r *Runner) RunMatrix(ctx context.Context, cfg Config, workloads []string, ratios []Ratio, pols []string) (*Matrix, error) {
	if workloads == nil {
		workloads = workloadNames()
	}
	if ratios == nil {
		ratios = MainRatios
	}
	if pols == nil {
		pols = Policies
	}
	if cfg.EventDir != "" {
		if err := os.MkdirAll(cfg.EventDir, 0o755); err != nil {
			return nil, err
		}
	}
	// First trace-I/O failure across cells; the matrix is invalid when a
	// requested trace could not be written.
	var (
		failMu sync.Mutex
		failed error
	)
	fail := func(err error) {
		failMu.Lock()
		if failed == nil {
			failed = err
		}
		failMu.Unlock()
	}
	bases := make([]sim.Result, len(workloads))
	results := make([]sim.Result, len(workloads)*len(ratios)*len(pols))
	var tasks []cellTask
	for wi, wname := range workloads {
		tasks = append(tasks, cellTask{
			label: wname + "/baseline",
			run: func() uint64 {
				ccfg := CellConfig(cfg, wname, "baseline", "all-capacity")
				closeTrace, err := cellTrace(cfg.EventDir, wname, "baseline", "all-capacity", &ccfg)
				if err != nil {
					fail(err)
					return 0
				}
				bases[wi] = RunBaseline(wname, ccfg)
				if err := closeTrace(); err != nil {
					fail(err)
				}
				return bases[wi].AppNS
			},
		})
		for ri, rt := range ratios {
			for pi, p := range pols {
				slot := (wi*len(ratios)+ri)*len(pols) + pi
				tasks = append(tasks, cellTask{
					label: fmt.Sprintf("%s/%s/%s", wname, rt.Name, p),
					run: func() uint64 {
						ccfg := CellConfig(cfg, wname, rt.Name, p)
						closeTrace, err := cellTrace(cfg.EventDir, wname, rt.Name, p, &ccfg)
						if err != nil {
							fail(err)
							return 0
						}
						results[slot] = RunOne(wname, p, rt, ccfg)
						if err := closeTrace(); err != nil {
							fail(err)
						}
						return results[slot].AppNS
					},
				})
			}
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, fmt.Errorf("bench: writing event traces: %w", failed)
	}
	m := &Matrix{}
	for wi, wname := range workloads {
		for ri, rt := range ratios {
			for pi, p := range pols {
				res := results[(wi*len(ratios)+ri)*len(pols)+pi]
				m.Cells = append(m.Cells, Cell{
					Workload: wname, Ratio: rt.Name, Policy: p,
					Value: Norm(res, bases[wi]), Result: res,
				})
			}
		}
	}
	return m, nil
}

// RunAll runs the full Figure 5 matrix — every Table 2 workload, every
// main ratio, every Figure 5 system — the heaviest standard fan-out.
func (r *Runner) RunAll(ctx context.Context, cfg Config) (*Matrix, error) {
	return r.RunMatrix(ctx, cfg, nil, nil, nil)
}

// MatrixTable renders a matrix as a (workload, ratio) x policy table
// with per-ratio geomean rows — the Figure 5 presentation, reused by
// cmd/memtis-sim's matrix mode.
func MatrixTable(title string, m *Matrix, workloads []string, ratios []Ratio, pols []string) Table {
	t := Table{Title: title, Header: append([]string{"workload", "ratio"}, pols...)}
	for _, wname := range workloads {
		for _, rt := range ratios {
			row := []interface{}{wname, rt.Name}
			for _, p := range pols {
				v, _ := m.Get(wname, rt.Name, p)
				row = append(row, v)
			}
			t.AddRow(row...)
		}
	}
	for _, rt := range ratios {
		row := []interface{}{"geomean", rt.Name}
		for _, p := range pols {
			var vals []float64
			for _, wname := range workloads {
				if v, ok := m.Get(wname, rt.Name, p); ok {
					vals = append(vals, v)
				}
			}
			row = append(row, Geomean(vals))
		}
		t.AddRow(row...)
	}
	return t
}
