// Command doclint enforces the repository's documentation floor: every
// Go package under the given roots must carry a package-level doc
// comment ("// Package foo ..." or "// Command foo ..." immediately
// above the package clause) in at least one non-test file. It is wired
// into `make check` via the docs target, so an undocumented package
// fails CI.
//
// Usage:
//
//	doclint ./internal ./cmd
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./internal", "./cmd"}
	}
	exit := 0
	for _, root := range roots {
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		for _, d := range dirs {
			ok, err := hasPackageDoc(d)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(2)
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "doclint: %s: no package doc comment in any non-test file\n", d)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// packageDirs returns every directory under root holding at least one
// non-test Go file, sorted for stable output.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if e.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		seen[filepath.Dir(path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasPackageDoc reports whether any non-test file in dir attaches a
// non-empty doc comment to its package clause. Parsing stops at the
// package clause — doclint never type-checks, so it stays fast and
// dependency-free.
func hasPackageDoc(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	return false, nil
}
