package tlb

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	tl := New(Config{Entries4K: 64, Entries2M: 16})
	if c := tl.Access(100, false); c != Walk4KNS {
		t.Fatalf("first access cost %d, want %d", c, Walk4KNS)
	}
	if c := tl.Access(100, false); c != 0 {
		t.Fatalf("second access cost %d, want 0", c)
	}
}

func TestHugeWalkIsCheaper(t *testing.T) {
	if Walk2MNS >= Walk4KNS {
		t.Fatal("2M walks must be cheaper than 4K walks")
	}
	tl := New(Config{})
	if c := tl.Access(5000, true); c != Walk2MNS {
		t.Fatalf("huge miss cost %d, want %d", c, Walk2MNS)
	}
}

func TestHugeReach(t *testing.T) {
	// One 2M entry covers all 512 subpages.
	tl := New(Config{Entries4K: 64, Entries2M: 16})
	base := uint64(512 * 7)
	tl.Access(base, true)
	for i := uint64(1); i < 512; i++ {
		if c := tl.Access(base+i, true); c != 0 {
			t.Fatalf("subpage %d missed despite shared 2M entry", i)
		}
	}
}

func TestEviction(t *testing.T) {
	tl := New(Config{Entries4K: 64, Entries2M: 16})
	// 64 entries = 8 sets x 8 ways. Fill one set with 9 distinct tags:
	// vpns congruent mod 8 map to the same set.
	for i := uint64(0); i < 9; i++ {
		tl.Access(i*8, false)
	}
	// The first entry must have been evicted (LRU).
	if c := tl.Access(0, false); c != Walk4KNS {
		t.Fatal("expected eviction of LRU entry")
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(Config{})
	tl.Access(42, false)
	tl.Invalidate(42, false)
	if c := tl.Access(42, false); c != Walk4KNS {
		t.Fatal("invalidate did not remove 4K entry")
	}
	tl.Access(512*3, true)
	tl.Invalidate(512*3+7, true) // any subpage selects the 2M entry
	if c := tl.Access(512*3, true); c != Walk2MNS {
		t.Fatal("invalidate did not remove 2M entry")
	}
}

func TestFlush(t *testing.T) {
	tl := New(Config{})
	tl.Access(1, false)
	tl.Access(512, true)
	tl.Flush()
	if tl.Access(1, false) == 0 || tl.Access(512, true) == 0 {
		t.Fatal("flush did not clear entries")
	}
}

func TestStats(t *testing.T) {
	tl := New(Config{})
	tl.Access(1, false)
	tl.Access(1, false)
	tl.Access(512, true)
	s := tl.Stats()
	if s.Lookups4K != 2 || s.Misses4K != 1 || s.Lookups2M != 1 || s.Misses2M != 1 {
		t.Fatalf("stats: %+v", s)
	}
	want := 2.0 / 3.0
	if got := s.MissRatio(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("MissRatio = %v, want %v", got, want)
	}
	if (Stats{}).MissRatio() != 0 {
		t.Fatal("empty MissRatio should be 0")
	}
}

func TestDefaultsApplied(t *testing.T) {
	tl := New(Config{})
	// Sequential walk over more 4K pages than the default TLB holds
	// must produce misses on re-walk.
	n := uint64(DefaultConfig().Entries4K) * 4
	for i := uint64(0); i < n; i++ {
		tl.Access(i, false)
	}
	missBefore := tl.Stats().Misses4K
	for i := uint64(0); i < n; i++ {
		tl.Access(i, false)
	}
	if tl.Stats().Misses4K == missBefore {
		t.Fatal("expected capacity misses on 4x-oversized sweep")
	}
}

// TestConfiguredCapacityExact: the effective capacity equals the
// configured entry count. 1536 entries = 192 sets x 8 ways — not a
// power of two; the seed rounded the set count down to 128 and
// silently modelled a 1024-entry TLB. A sequential fill of exactly
// Entries4K pages places exactly `ways` tags in every set, so a full
// re-probe must hit on every one.
func TestConfiguredCapacityExact(t *testing.T) {
	tl := New(Config{Entries4K: 1536, Entries2M: 16})
	n := uint64(1536)
	for i := uint64(0); i < n; i++ {
		tl.Access(i, false)
	}
	for i := uint64(0); i < n; i++ {
		if c := tl.Access(i, false); c != 0 {
			t.Fatalf("vpn %d missed on re-probe: configured capacity not honoured", i)
		}
	}
	if got := tl.Stats().Misses4K; got != n {
		t.Fatalf("misses = %d, want %d (cold fill only)", got, n)
	}
}

// TestSetCountRoundsUp: entry counts that don't divide evenly by the
// associativity round the set count up, never down.
func TestSetCountRoundsUp(t *testing.T) {
	for _, tc := range []struct {
		entries int
		nSets   uint64
	}{{1536, 192}, {1537, 193}, {1024, 128}, {1, 1}, {0, 1}} {
		if st := newSubTLB(tc.entries, Walk4KNS); st.nSets != tc.nSets {
			t.Fatalf("entries=%d: nSets=%d, want %d", tc.entries, st.nSets, tc.nSets)
		}
	}
}

// TestIndexFastmod: set indexing keeps vpn%nSets semantics for every
// geometry — masked power-of-two, fastmod, and the >=2^32 guard path.
func TestIndexFastmod(t *testing.T) {
	for _, entries := range []int{8, 24, 40, 1536, 1544} {
		st := newSubTLB(entries, Walk4KNS)
		for _, vpn := range []uint64{0, 1, 191, 192, 193, 12345, 1<<32 - 1, 1 << 32, 1<<33 + 7} {
			if got, want := st.index(vpn), vpn%st.nSets; got != want {
				t.Fatalf("entries=%d vpn=%d: index=%d, want %d", entries, vpn, got, want)
			}
		}
	}
}

// TestLRUStampSurvives32BitWrap: the LRU clock is 64-bit. With the old
// 32-bit stamps, entries touched after lookup 2^32 looked older than
// everything else and became permanent eviction victims.
func TestLRUStampSurvives32BitWrap(t *testing.T) {
	st := newSubTLB(64, Walk4KNS) // 8 sets x 8 ways; vpns ≡ 0 (mod 8) share set 0
	st.lookups = 1<<32 - 4        // stamps cross 2^32 mid-fill
	for i := uint64(0); i < 8; i++ {
		st.lookup(i * 8)
	}
	// A 9th tag must evict the oldest entry (vpn 0), not one whose
	// stamp a 32-bit clock would have truncated to ~0.
	st.lookup(8 * 8)
	for i := uint64(1); i <= 8; i++ {
		if st.lookup(i*8) != 0 {
			t.Fatalf("vpn %d evicted: LRU order corrupted across the 2^32 boundary", i*8)
		}
	}
	if st.lookup(0) == 0 {
		t.Fatal("oldest entry should have been the eviction victim")
	}
}

// TestQuickRepeatIsHit: immediately repeating any access is always a hit.
func TestQuickRepeatIsHit(t *testing.T) {
	tl := New(Config{})
	prop := func(vpn uint64, huge bool) bool {
		vpn %= 1 << 30
		tl.Access(vpn, huge)
		return tl.Access(vpn, huge) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMissesMonotonic: miss counters never exceed lookups.
func TestQuickMissesMonotonic(t *testing.T) {
	prop := func(vpns []uint16) bool {
		tl := New(Config{Entries4K: 32, Entries2M: 8})
		for _, v := range vpns {
			tl.Access(uint64(v), v%3 == 0)
		}
		s := tl.Stats()
		return s.Misses4K <= s.Lookups4K && s.Misses2M <= s.Lookups2M &&
			s.Lookups4K+s.Lookups2M == uint64(len(vpns))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
