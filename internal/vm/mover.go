package vm

import (
	"memtis/internal/obs"
	"memtis/internal/tier"
)

// This file is the rate-limited background mover: the machine-level
// worker that turns migration from an instantaneous policy-side charge
// into scheduled work. Policies enqueue tasks; the mover executes them
// in FIFO order against a migration-bandwidth budget that accrues per
// virtual-time window (Nomad's throttled asynchronous migration,
// DESIGN.md §11). Everything is pure arithmetic over the virtual
// clock, so a fixed (seed, access stream) pair drains the queue
// identically regardless of wall-clock scheduling or worker count.

// moverTask is one queued migration. src records the page's tier at
// enqueue time: a task whose page has moved (or died) since is stale
// and is dropped rather than executed against a different hop than the
// policy scored.
type moverTask struct {
	pg       *Page
	as       *AddressSpace
	src, dst tier.ID
	attempts int
}

// MoverStats aggregates the mover's lifetime accounting. GrantedBytes
// only ever grows by whole-window budget grants and MovedBytes +
// WastedBytes only ever shrink the same token pool, so
// MovedBytes+WastedBytes <= GrantedBytes is the budget invariant the
// conformance suite asserts.
type MoverStats struct {
	Enqueued     uint64 // tasks accepted into the queue
	RejectedFull uint64 // enqueues refused by the queue bound
	Moved        uint64 // tasks whose migration committed
	MovedBytes   uint64 // bytes committed
	WastedBytes  uint64 // bytes consumed by aborted copies
	GrantedBytes uint64 // budget granted (post-burst-cap)
	Stale        uint64 // tasks dropped: page dead, moved or already home
	NoSpace      uint64 // tasks dropped: destination tier full
	Denied       uint64 // tasks dropped: QoS arbitration veto
	Aborted      uint64 // copy aborts observed (tasks may retry)
	Dropped      uint64 // tasks dropped after exhausting retries
	Deferred     uint64 // Advance calls deferred by a throttle window
	SpentNS      uint64 // virtual time spent copying (daemon work)
}

// Mover executes queued page migrations against a windowed bandwidth
// budget. A nil *Mover is valid: every method is the disabled case, so
// the policy helpers need no guards.
type Mover struct {
	cfg    tier.MoverConfig
	faults *tier.FaultPlan

	queue []moverTask
	head  int

	tokens  uint64 // unspent budget, bytes
	started bool
	lastNS  uint64 // clock at last accrual
	accNS   uint64 // sub-window remainder carried between accruals

	stats MoverStats

	// Registered counter cells (nil when no registry was attached).
	ctrMoved, ctrMovedBytes, ctrGranted, ctrWasted *uint64
	ctrEnq, ctrRejFull, ctrStale, ctrNoSpace       *uint64
	ctrDenied, ctrAborted, ctrDropped, ctrDeferred *uint64
	gQueueLen                                      *uint64
}

// NewMover builds a mover from cfg, returning nil for a disabled
// config. faults may be nil; when set, Advance defers work inside
// bandwidth-throttle windows (the mover competes with foreground
// migration for the same throttled link).
func NewMover(cfg tier.MoverConfig, faults *tier.FaultPlan) *Mover {
	if !cfg.Enabled() {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Mover{cfg: cfg.FillDefaults(), faults: faults}
}

// AttachMetrics registers the mover's counters under g ("mover/..."):
// enqueued, rejected_full, moved_pages, moved_bytes, wasted_bytes,
// granted_bytes, stale_dropped, no_space, denied, aborted, dropped,
// deferred_throttle and the queue_len gauge. Call once per machine;
// a mover without metrics still works.
func (mv *Mover) AttachMetrics(g obs.Group) {
	if mv == nil {
		return
	}
	mv.ctrEnq = g.Counter("enqueued")
	mv.ctrRejFull = g.Counter("rejected_full")
	mv.ctrMoved = g.Counter("moved_pages")
	mv.ctrMovedBytes = g.Counter("moved_bytes")
	mv.ctrWasted = g.Counter("wasted_bytes")
	mv.ctrGranted = g.Counter("granted_bytes")
	mv.ctrStale = g.Counter("stale_dropped")
	mv.ctrNoSpace = g.Counter("no_space")
	mv.ctrDenied = g.Counter("denied")
	mv.ctrAborted = g.Counter("aborted")
	mv.ctrDropped = g.Counter("dropped")
	mv.ctrDeferred = g.Counter("deferred_throttle")
	mv.gQueueLen = g.Gauge("queue_len")
}

func bump(c *uint64, n uint64) {
	if c != nil {
		*c += n
	}
}

// Enabled reports whether the mover is active (false on nil).
func (mv *Mover) Enabled() bool { return mv != nil }

// QueueLen returns the number of pending tasks.
func (mv *Mover) QueueLen() int {
	if mv == nil {
		return 0
	}
	return len(mv.queue) - mv.head
}

// Stats returns a snapshot of the mover's lifetime accounting.
func (mv *Mover) Stats() MoverStats {
	if mv == nil {
		return MoverStats{}
	}
	return mv.stats
}

// Config returns the effective (default-filled) configuration.
func (mv *Mover) Config() tier.MoverConfig {
	if mv == nil {
		return tier.MoverConfig{}
	}
	return mv.cfg
}

// Enqueue queues a migration of p to dst through space as (the handle
// the policy holds; the page may belong to any space sharing the
// tiers). It reports whether the task was accepted — false when the
// mover is disabled (the caller must migrate inline) or the queue is
// full.
func (mv *Mover) Enqueue(as *AddressSpace, p *Page, dst tier.ID) bool {
	if mv == nil {
		return false
	}
	if p.dead || p.Tier == dst {
		return true // nothing to do; treat as accepted and settled
	}
	if mv.QueueLen() >= mv.cfg.QueueCap {
		mv.stats.RejectedFull++
		bump(mv.ctrRejFull, 1)
		return false
	}
	mv.queue = append(mv.queue, moverTask{pg: p, as: as, src: p.Tier, dst: dst})
	mv.stats.Enqueued++
	bump(mv.ctrEnq, 1)
	mv.updateQueueGauge()
	return true
}

func (mv *Mover) updateQueueGauge() {
	if mv.gQueueLen != nil {
		*mv.gQueueLen = uint64(mv.QueueLen())
	}
}

// burstCap bounds the unspent token pool: two windows of budget, but
// never less than one huge page so a sub-2MB budget can still move
// huge pages by saving across windows.
func (mv *Mover) burstCap() uint64 {
	cap := 2 * mv.cfg.BytesPerWindow
	if cap < tier.HugePageSize {
		cap = tier.HugePageSize
	}
	return cap
}

// accrue grants whole-window budget for the virtual time elapsed since
// the last call, carrying the sub-window remainder, and returns tokens
// to their burst-capped level. The first call grants one full window
// so a freshly built machine can move immediately.
func (mv *Mover) accrue(now uint64) {
	if !mv.started {
		mv.started = true
		mv.lastNS = now
		mv.grant(mv.cfg.BytesPerWindow)
		return
	}
	if now <= mv.lastNS {
		return
	}
	mv.accNS += now - mv.lastNS
	mv.lastNS = now
	if whole := mv.accNS / mv.cfg.WindowNS; whole > 0 {
		mv.accNS -= whole * mv.cfg.WindowNS
		// Saturate rather than overflow on huge idle gaps; the burst
		// cap clips the granted amount right after.
		grant := whole * mv.cfg.BytesPerWindow
		if whole != 0 && grant/whole != mv.cfg.BytesPerWindow {
			grant = mv.burstCap()
		}
		mv.grant(grant)
	}
}

// grant adds budget, clipping at the burst cap; only the clipped
// amount counts as granted so MovedBytes+WastedBytes <= GrantedBytes
// stays exact.
func (mv *Mover) grant(bytes uint64) {
	room := mv.burstCap() - mv.tokens
	if bytes > room {
		bytes = room
	}
	mv.tokens += bytes
	mv.stats.GrantedBytes += bytes
	bump(mv.ctrGranted, bytes)
}

// Advance runs the mover up to virtual time now: accrues budget,
// defers inside throttle windows, and executes queued tasks in FIFO
// order while the budget lasts. It returns the virtual nanoseconds of
// copy work performed, which the machine charges as background daemon
// time (never to the application's critical path).
func (mv *Mover) Advance(now uint64) (spentNS uint64) {
	if mv == nil {
		return 0
	}
	mv.accrue(now)
	if mv.QueueLen() == 0 {
		return 0
	}
	if mv.faults.ThrottleActive(now) {
		// The link is throttled: hold queued work for the window's end
		// rather than paying the inflated copy cost (budget keeps
		// accruing, bounded by the burst cap).
		mv.stats.Deferred++
		bump(mv.ctrDeferred, 1)
		return 0
	}
	for mv.head < len(mv.queue) {
		t := &mv.queue[mv.head]
		if t.pg.dead || t.pg.Tier != t.src || t.pg.Tier == t.dst {
			mv.stats.Stale++
			bump(mv.ctrStale, 1)
			mv.head++
			continue
		}
		bytes := t.pg.Bytes()
		if bytes > mv.tokens {
			break // out of budget; resume next window
		}
		ns, st := t.as.MigrateTx(t.pg, t.dst)
		spentNS += ns
		switch st {
		case MigrateOK:
			mv.tokens -= bytes
			mv.stats.Moved++
			mv.stats.MovedBytes += bytes
			bump(mv.ctrMoved, 1)
			bump(mv.ctrMovedBytes, bytes)
			mv.head++
		case MigrateAborted:
			// The wasted copy consumed real bandwidth; charge it to the
			// budget and retry within the fault plan's bound.
			mv.tokens -= bytes
			mv.stats.WastedBytes += bytes
			mv.stats.Aborted++
			bump(mv.ctrWasted, bytes)
			bump(mv.ctrAborted, 1)
			t.attempts++
			if t.attempts > mv.faults.MaxRetries() {
				mv.stats.Dropped++
				bump(mv.ctrDropped, 1)
				mv.head++
			}
		case MigrateNoSpace:
			mv.stats.NoSpace++
			bump(mv.ctrNoSpace, 1)
			mv.head++
		case MigrateDenied:
			mv.stats.Denied++
			bump(mv.ctrDenied, 1)
			mv.head++
		}
	}
	// Compact the drained prefix once it dominates the slice.
	if mv.head > 64 && mv.head*2 > len(mv.queue) {
		n := copy(mv.queue, mv.queue[mv.head:])
		mv.queue = mv.queue[:n]
		mv.head = 0
	}
	mv.stats.SpentNS += spentNS
	mv.updateQueueGauge()
	return spentNS
}
