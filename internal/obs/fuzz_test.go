package obs

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

// FuzzDecoder feeds arbitrary bytes to the trace decoder. The contract
// under test: the decoder never panics, always terminates, and every
// event it does return re-encodes to a line it would accept again.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte(`{"t":1,"ev":"promotion","vpn":2,"huge":true,"bytes":3,"aux":4}` + "\n"))
	f.Add([]byte(`{"t":0,"ev":"fault","vpn":0,"huge":false,"bytes":4096,"aux":62}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte(`{"t":1,"ev":"cooling"`))
	f.Add([]byte(`{"t":1,"ev":"bogus","vpn":0,"huge":false,"bytes":0,"aux":0}`))
	f.Add([]byte(strings.Repeat(`{"t":5,"ev":"shootdown","vpn":9,"huge":false,"bytes":0,"aux":0}`+"\n", 3)))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(bytes.NewReader(data))
		// One event per input line at most, so bounding the loop by
		// len(data)+2 iterations proves termination.
		for i := 0; i < len(data)+2; i++ {
			e, err := d.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				// Errors are fine; the decoder just must not lie about
				// recovery: after an error it stays usable or EOFs.
				return
			}
			line := AppendEvent(nil, e)
			back, perr := ParseEvent(strings.TrimSuffix(string(line), "\n"))
			if perr != nil {
				t.Fatalf("decoded event does not re-parse: %+v: %v", e, perr)
			}
			if back != e {
				t.Fatalf("re-parse mismatch: %+v != %+v", back, e)
			}
		}
		t.Fatal("decoder did not terminate within the input-size bound")
	})
}

// FuzzEventRoundTrip builds event sequences from raw fuzz bytes,
// encodes them through the JSONL sink, and requires the decoder to
// return exactly the same sequence. Truncating the encoding must
// produce an error on the cut line, never a panic or a fabricated
// event.
func FuzzEventRoundTrip(f *testing.F) {
	f.Add([]byte{}, 0)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}, 1<<30)
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 0}, 17)
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		// Each event consumes 17 bytes of fuzz input: kind selector,
		// huge flag, then time/vpn/bytes-ish material (aux derived too).
		var events []Event
		for len(data) >= 17 && len(events) < 64 {
			e := Event{
				Kind:   Kind(data[0] % uint8(numKinds)),
				Huge:   data[1]&1 == 1,
				TimeNS: binary.LittleEndian.Uint64(data[2:10]),
				VPN:    binary.LittleEndian.Uint64(data[9:17]),
			}
			e.Bytes = e.TimeNS >> 3
			e.Aux = e.VPN >> 5
			events = append(events, e)
			data = data[17:]
		}
		var buf bytes.Buffer
		sink := NewJSONL(&buf)
		for _, e := range events {
			sink.Emit(e)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("clean trace failed to decode: %v", err)
		}
		if len(got) != len(events) {
			t.Fatalf("decoded %d events, wrote %d", len(got), len(events))
		}
		for i := range got {
			if got[i] != events[i] {
				t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
			}
		}
		// Truncation: decoding a prefix must never panic and never
		// yield more events than were fully written before the cut.
		enc := buf.Bytes()
		if cut < 0 {
			cut = -cut
		}
		if len(enc) > 0 {
			cut %= len(enc)
			part, perr := ReadAll(bytes.NewReader(enc[:cut]))
			if perr == nil && len(part) > len(events) {
				t.Fatalf("truncated trace grew events: %d > %d", len(part), len(events))
			}
			for i := range part {
				if part[i] != events[i] {
					t.Fatalf("truncated prefix event %d diverged", i)
				}
			}
		}
	})
}
