// Cross-policy conformance suite: every policy the bench factory can
// construct is run through a canned workload behind a probe that
// asserts the sim.Policy contract at each callback. The suite lives in
// an external test package so it can use internal/bench's factory
// (bench imports policy, so the plain package would be a cycle); a
// newly registered policy is picked up automatically via
// bench.AllPolicies.
package policy_test

import (
	"testing"

	"memtis/internal/bench"
	"memtis/internal/pebs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
	"memtis/internal/workload"
)

// maxStallNS is the fault-free per-access stall bound; the formula
// lives in policy.MaxSyncStallNS so this suite and the scenario
// conformance probe assert the same contract.
var maxStallNS = policy.MaxSyncStallNS(tier.FaultConfig{})

// probe wraps a policy and asserts the contract on every callback:
// BackgroundNS never decreases, OnAccess stalls are bounded, PlaceNew
// never targets a tier that cannot hold the page, and a reported hot
// set never exceeds the resident set.
type probe struct {
	t     *testing.T
	inner sim.Policy
	m     *sim.Machine

	// maxStall overrides the per-access stall bound (0 = the fault-free
	// maxStallNS). auditEvery, when non-zero, runs a full vm.Audit that
	// often (in accesses) — the transactional-migration invariant: no
	// page lost, unmapped or double-mapped, whatever aborts happened.
	maxStall   uint64
	auditEvery uint64

	lastBG   uint64
	accesses uint64
}

func (p *probe) Name() string { return p.inner.Name() }

func (p *probe) Attach(m *sim.Machine) {
	p.m = m
	p.inner.Attach(m)
}

func (p *probe) PlaceNew(huge bool, vpn uint64) tier.ID {
	id := p.inner.PlaceNew(huge, vpn)
	// Policies declaring CapPinnedPlacement direct every page at one
	// tier by design and lean on the VM's documented overflow fallback;
	// the full-tier contract is for adaptive policies. The declaration
	// replaces the old type-assertion special case so out-of-tree
	// pinning policies get the same exemption.
	if p.inner.Capabilities().Has(sim.CapPinnedPlacement) {
		return id
	}
	need := uint64(1)
	if huge {
		need = tier.SubPages
	}
	switch {
	case id == tier.NoTier:
	case id >= tier.FastTier && int(id) < p.m.Depth():
		if free := p.m.Tier(id).FreeFrames(); free < need {
			p.t.Errorf("%s: PlaceNew targeted the %s tier with %d free frames (need %d)",
				p.Name(), id, free, need)
		}
	default:
		p.t.Errorf("%s: PlaceNew returned unknown tier %v", p.Name(), id)
	}
	return id
}

func (p *probe) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	stall := p.inner.OnAccess(tr, vpn, write)
	bound := p.maxStall
	if bound == 0 {
		bound = maxStallNS
	}
	if stall > bound {
		p.t.Errorf("%s: OnAccess stalled the app %d ns (bound %d)", p.Name(), stall, bound)
	}
	p.accesses++
	if p.accesses%1024 == 0 {
		p.check("OnAccess")
	}
	if p.auditEvery > 0 && p.accesses%p.auditEvery == 0 {
		if err := p.m.AS.Audit(); err != nil {
			p.t.Errorf("%s: address-space audit after %d accesses: %v", p.Name(), p.accesses, err)
		}
	}
	return stall
}

func (p *probe) Tick(now uint64) {
	p.inner.Tick(now)
	p.check("Tick")
}

func (p *probe) BackgroundNS() uint64         { return p.inner.BackgroundNS() }
func (p *probe) BusyCores() float64           { return p.inner.BusyCores() }
func (p *probe) Capabilities() sim.Capability { return p.inner.Capabilities() }

func (p *probe) check(where string) {
	if bg := p.inner.BackgroundNS(); bg < p.lastBG {
		p.t.Errorf("%s: BackgroundNS went backwards in %s: %d -> %d", p.Name(), where, p.lastBG, bg)
	} else {
		p.lastBG = bg
	}
	if bc := p.inner.BusyCores(); bc < 0 {
		p.t.Errorf("%s: BusyCores = %v", p.Name(), bc)
	}
	if hr, ok := p.inner.(sim.HotSetReporter); ok {
		hot, warm, cold := hr.HotSet()
		rss := p.m.AS.RSSBytes()
		// Slack for in-flight split/collapse histogram bookkeeping.
		const slack = 2 * tier.HugePageSize
		if hot > rss+slack || hot+warm+cold > rss+slack {
			p.t.Errorf("%s: hot set exceeds RSS in %s: hot=%d warm=%d cold=%d rss=%d",
				p.Name(), where, hot, warm, cold, rss)
		}
	}
}

// TestPolicyConformanceUnderFaults reruns the conformance suite with
// aggressive fault injection: 5% of migration copies abort, bandwidth
// throttling quadruples copy cost for 20% of each window, and the
// capacity tier suffers periodic stall bursts. Beyond the usual
// contract, it asserts the failure-model invariants of DESIGN.md §6:
// no policy loses, leaks or double-maps a page across aborted
// migrations (vm.Audit every 4096 accesses and at the end), and
// critical-path stalls stay within the retry-aware bound.
func TestPolicyConformanceUnderFaults(t *testing.T) {
	fc := tier.FaultConfig{
		MigrateFailPpm:   50_000, // 5% of copies abort
		ThrottlePeriodNS: 2_000_000,
		ThrottleDutyNS:   400_000,
		ThrottleFactor:   4,
		StallPeriodNS:    1_000_000,
		StallDutyNS:      100_000,
		StallTier:        tier.CapacityTier,
		StallNS:          200,
	}
	// Retry-aware stall bound: each of the (up to) two sync migrations
	// behind one access may burn 1+DefaultMaxRetries throttled copies
	// plus the exponential backoff before succeeding or giving up.
	bound := policy.MaxSyncStallNS(fc)

	spec := workload.MustNew("silo").Spec()
	cfg := bench.DefaultConfig()
	cfg.Accesses = 150_000
	cfg.Faults = fc
	for _, name := range bench.AllPolicies {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mc := bench.MachineFor(spec, bench.Ratio1to8, name, cfg)
			p := &probe{t: t, inner: bench.NewPolicy(name), maxStall: bound, auditEvery: 4096}
			res := sim.Run(mc, p, workload.MustNew("silo"), cfg.Accesses)
			if res.Accesses != cfg.Accesses {
				t.Errorf("ran %d accesses, want %d", res.Accesses, cfg.Accesses)
			}
			p.check("final")
			if err := p.m.AS.Audit(); err != nil {
				t.Errorf("final address-space audit: %v", err)
			}
			// Policies with working demotion must have actually
			// exercised the abort path — otherwise this suite proves
			// nothing. (AutoNUMA is excluded: with no demotion the fast
			// tier stays full and promotions die at reserve time,
			// before any copy can abort.)
			if name == "memtis" || name == "hemem" {
				var aborts uint64
				for _, mt := range res.Counters {
					if mt.Name == "fault/migrate_aborts" {
						aborts = mt.Value
					}
				}
				if aborts == 0 {
					t.Errorf("%s: no migration aborts at a 5%% copy-fault rate", name)
				}
			}
		})
	}
}

// TestPolicyConformanceNTier reruns the conformance suite on a
// four-tier hierarchy (DRAM > CXL > NVM > Far) with 5% of migration
// copies aborting, the benefit admission gate installed and the
// rate-limited background mover running — the full DESIGN.md §11
// configuration. Beyond the usual contract and the transactional
// audit, it asserts the mover's budget invariant: the bytes it moved
// plus the bytes it wasted on aborted copies never exceed the bytes
// its token bucket granted.
func TestPolicyConformanceNTier(t *testing.T) {
	fc := tier.FaultConfig{MigrateFailPpm: 50_000}
	bound := policy.MaxSyncStallNS(fc)

	spec := workload.MustNew("silo").Spec()
	cfg := bench.DefaultConfig()
	cfg.Accesses = 150_000
	cfg.Faults = fc
	topo, err := bench.TopologyForDepth(spec.RSSBytes(), bench.Ratio1to8, 4, cfg.CapKind)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topo
	cfg.Admission = tier.BenefitAdmission{}
	cfg.Mover = tier.MoverConfig{BytesPerWindow: 8 << 20}
	for _, name := range bench.AllPolicies {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mc := bench.MachineFor(spec, bench.Ratio1to8, name, cfg)
			p := &probe{t: t, inner: bench.NewPolicy(name), maxStall: bound, auditEvery: 4096}
			res := sim.Run(mc, p, workload.MustNew("silo"), cfg.Accesses)
			if res.Accesses != cfg.Accesses {
				t.Errorf("ran %d accesses, want %d", res.Accesses, cfg.Accesses)
			}
			p.check("final")
			if err := p.m.AS.Audit(); err != nil {
				t.Errorf("final address-space audit: %v", err)
			}
			cnt := map[string]uint64{}
			for _, mt := range res.Counters {
				cnt[mt.Name] = mt.Value
			}
			if spent := cnt["mover/moved_bytes"] + cnt["mover/wasted_bytes"]; spent > cnt["mover/granted_bytes"] {
				t.Errorf("mover spent %d bytes of a %d-byte grant", spent, cnt["mover/granted_bytes"])
			}
		})
	}
}

// TestPolicyConformance runs every registered policy over the silo
// workload (huge and base pages, allocation churn via FreeRegion) at a
// constrained 1:8 ratio, with the probe asserting the contract
// throughout the run.
func TestPolicyConformance(t *testing.T) {
	spec := workload.MustNew("silo").Spec()
	cfg := bench.DefaultConfig()
	cfg.Accesses = 150_000
	for _, name := range bench.AllPolicies {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mc := bench.MachineFor(spec, bench.Ratio1to8, name, cfg)
			p := &probe{t: t, inner: bench.NewPolicy(name)}
			res := sim.Run(mc, p, workload.MustNew("silo"), cfg.Accesses)
			if res.Accesses != cfg.Accesses {
				t.Errorf("ran %d accesses, want %d", res.Accesses, cfg.Accesses)
			}
			p.check("final")
			// A wake-driven daemon's busy-core estimate must stay below
			// the machine: BusyCores is a share of real cores, not a
			// multiplier. (MachineFor leaves Cores at the sim default
			// of 20 — resolve it the same way fillDefaults does.)
			cores := mc.Cores
			if cores == 0 {
				cores = 20
			}
			if bc := p.inner.BusyCores(); bc >= float64(cores) {
				t.Errorf("%s: BusyCores %.2f >= machine cores %d", name, bc, cores)
			}
			if sp, ok := p.inner.(interface{ Sampler() *pebs.Sampler }); ok {
				// Paper §4.4: ksampled self-throttles to ~3% of one CPU.
				// Allow 2x slack for the adjustment transient at run start.
				if cpu := sp.Sampler().AvgCPUUsage(); cpu > 0.06 {
					t.Errorf("%s: sampler consumed %.1f%% of a core, budget is 3%%", name, cpu*100)
				}
				// The derived background share must be exported for runs
				// to audit (DESIGN.md §8).
				found := false
				for _, mt := range res.Counters {
					if mt.Name == name+"/bg_share_mcores" {
						found = true
					}
				}
				if !found {
					t.Errorf("%s: bg_share_mcores gauge missing from result counters", name)
				}
			}
		})
	}
}
