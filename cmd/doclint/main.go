// Command doclint enforces the repository's documentation floor. In
// its default (Go) mode every package under the given roots must carry
// a package-level doc comment ("// Package foo ..." or "// Command foo
// ..." immediately above the package clause) in at least one non-test
// file, and — for roots under internal/ — every exported type,
// function and method must carry its own doc comment. With -md it
// instead lints markdown documentation: every relative link must
// resolve to an existing file and every #fragment must match a heading
// anchor (GitHub slug rules) in the target document. Both modes are
// wired into `make check` via the docs target, so an undocumented
// export or a dead doc link fails CI.
//
// Usage:
//
//	doclint ./internal ./cmd ./examples
//	doclint -md README.md DESIGN.md EXPERIMENTS.md docs
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"unicode"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "-md" {
		os.Exit(lintMarkdown(args[1:]))
	}
	if len(args) == 0 {
		args = []string{"./internal", "./cmd"}
	}
	exit := 0
	for _, root := range args {
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(2)
		}
		// The exported-declaration floor applies to the library packages
		// under internal/; command mains and examples only need the
		// package comment.
		decls := strings.Contains(filepath.ToSlash(root), "internal")
		for _, d := range dirs {
			ok, err := hasPackageDoc(d)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doclint:", err)
				os.Exit(2)
			}
			if !ok {
				fmt.Fprintf(os.Stderr, "doclint: %s: no package doc comment in any non-test file\n", d)
				exit = 1
			}
			if decls {
				missing, err := undocumentedExports(d)
				if err != nil {
					fmt.Fprintln(os.Stderr, "doclint:", err)
					os.Exit(2)
				}
				for _, m := range missing {
					fmt.Fprintln(os.Stderr, "doclint:", m)
					exit = 1
				}
			}
		}
	}
	os.Exit(exit)
}

// packageDirs returns every directory under root holding at least one
// non-test Go file, sorted for stable output.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if e.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		seen[filepath.Dir(path)] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasPackageDoc reports whether any non-test file in dir attaches a
// non-empty doc comment to its package clause. Parsing stops at the
// package clause — doclint never type-checks, so it stays fast and
// dependency-free.
func hasPackageDoc(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	return false, nil
}

// undocumentedExports lists every exported type, function and method in
// dir's non-test files that lacks a doc comment, as ready-to-print
// "file:line: ..." messages. Methods count when both the method name
// and the receiver's base type are exported (a method on an unexported
// type is not reachable API). Grouped type declarations accept either a
// group comment or per-spec comments.
func undocumentedExports(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				kind := "function"
				if d.Recv != nil {
					recv := receiverType(d.Recv)
					if recv == "" || !ast.IsExported(recv) {
						continue
					}
					kind = "method (" + recv + ")"
				}
				out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment",
					fset.Position(d.Pos()), kind, d.Name.Name))
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if d.Doc != nil || ts.Doc != nil || ts.Comment != nil {
						continue
					}
					out = append(out, fmt.Sprintf("%s: exported type %s has no doc comment",
						fset.Position(ts.Pos()), ts.Name.Name))
				}
			}
		}
	}
	return out, nil
}

// receiverType returns the base type name of a method receiver
// (stripping pointers and type parameters), or "" if it has no name.
func receiverType(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// --- markdown mode ---

// mdLink matches inline markdown links and images: [text](target) /
// ![alt](target). Footnote-style definitions are not used in this
// repository's docs.
var mdLink = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

// lintMarkdown checks every markdown file (or directory of them) in
// args: relative link targets must exist on disk, and #fragments must
// match a heading anchor of the target document. Absolute URLs
// (http/https/mailto) are skipped — CI runs offline. Returns the
// process exit code.
func lintMarkdown(args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "doclint: -md needs markdown files or directories")
		return 2
	}
	var files []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			return 2
		}
		if !st.IsDir() {
			files = append(files, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, e fs.DirEntry, err error) error {
			if err == nil && !e.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			return 2
		}
	}
	sort.Strings(files)

	exit := 0
	anchorCache := map[string]map[string]bool{}
	for _, f := range files {
		for _, msg := range lintMarkdownFile(f, anchorCache) {
			fmt.Fprintln(os.Stderr, "doclint:", msg)
			exit = 1
		}
	}
	return exit
}

// lintMarkdownFile checks one document's links, using (and filling)
// the per-target anchor cache.
func lintMarkdownFile(path string, anchors map[string]map[string]bool) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var msgs []string
	for ln, line := range strippedLines(string(data)) {
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"),
				strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue
			}
			file, frag, _ := strings.Cut(target, "#")
			resolved := path
			if file != "" {
				resolved = filepath.Join(filepath.Dir(path), file)
				if _, err := os.Stat(resolved); err != nil {
					msgs = append(msgs, fmt.Sprintf("%s:%d: broken link %q: %s does not exist", path, ln+1, target, resolved))
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				// Fragments into non-markdown targets (e.g. source files)
				// are not checkable; the file-exists check above stands.
				continue
			}
			set, err := headingAnchors(resolved, anchors)
			if err != nil {
				msgs = append(msgs, err.Error())
				continue
			}
			if !set[strings.ToLower(frag)] {
				msgs = append(msgs, fmt.Sprintf("%s:%d: broken anchor %q: no heading in %s slugs to #%s", path, ln+1, target, resolved, frag))
			}
		}
	}
	return msgs
}

// strippedLines splits a document into lines with fenced code blocks
// blanked out, so example links inside ``` fences are not linted.
func strippedLines(doc string) []string {
	lines := strings.Split(doc, "\n")
	fenced := false
	for i, ln := range lines {
		if strings.HasPrefix(strings.TrimSpace(ln), "```") {
			fenced = !fenced
			lines[i] = ""
			continue
		}
		if fenced {
			lines[i] = ""
		}
	}
	return lines
}

// headingAnchors returns the set of GitHub-style anchor slugs for a
// markdown file's headings, memoised in cache.
func headingAnchors(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	if set, ok := cache[path]; ok {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	for _, line := range strippedLines(string(data)) {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			continue
		}
		text := strings.TrimLeft(trimmed, "#")
		if text == trimmed || (text != "" && text[0] != ' ') {
			continue // not a heading (e.g. "#!/bin/sh" or a bare "#foo")
		}
		slug := slugify(strings.TrimSpace(text))
		// GitHub dedupes repeated headings with -1, -2, ... suffixes.
		if set[slug] {
			for i := 1; ; i++ {
				s := fmt.Sprintf("%s-%d", slug, i)
				if !set[s] {
					slug = s
					break
				}
			}
		}
		set[slug] = true
	}
	cache[path] = set
	return set, nil
}

// slugify reduces a heading to its GitHub anchor: lowercase, spaces to
// hyphens, everything but letters, digits, hyphens and underscores
// dropped (inline code backticks and punctuation vanish).
func slugify(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_',
			r >= 'a' && r <= 'z',
			r >= '0' && r <= '9',
			r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r)):
			b.WriteRune(r)
		}
	}
	return b.String()
}
