package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// maxLineBytes bounds one trace line. Canonical lines are under 120
// bytes; anything past this is corrupt input and fails cleanly instead
// of growing the scanner buffer without bound.
const maxLineBytes = 4096

// Decoder reads a JSONL event trace. It is strict — an unknown event
// name, trailing garbage, or an over-long/truncated line is an error,
// never a panic — so corrupt traces are diagnosed instead of silently
// skewing analysis.
type Decoder struct {
	s    *bufio.Scanner
	line int
}

// NewDecoder builds a decoder over r.
func NewDecoder(r io.Reader) *Decoder {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 256), maxLineBytes)
	return &Decoder{s: s}
}

// Next returns the next event, or io.EOF at a clean end of input.
func (d *Decoder) Next() (Event, error) {
	for d.s.Scan() {
		d.line++
		text := strings.TrimSpace(d.s.Text())
		if text == "" {
			continue // blank lines are tolerated (trailing newline etc.)
		}
		e, err := ParseEvent(text)
		if err != nil {
			return Event{}, fmt.Errorf("obs: line %d: %w", d.line, err)
		}
		return e, nil
	}
	if err := d.s.Err(); err != nil {
		return Event{}, fmt.Errorf("obs: line %d: %w", d.line+1, err)
	}
	return Event{}, io.EOF
}

// eventJSON is the wire layout (see AppendEvent).
type eventJSON struct {
	T     uint64 `json:"t"`
	Ev    string `json:"ev"`
	VPN   uint64 `json:"vpn"`
	Huge  bool   `json:"huge"`
	Bytes uint64 `json:"bytes"`
	Aux   uint64 `json:"aux"`
}

// ParseEvent decodes one canonical trace line (without requiring the
// trailing newline).
func ParseEvent(line string) (Event, error) {
	if len(line) > maxLineBytes {
		return Event{}, fmt.Errorf("line longer than %d bytes", maxLineBytes)
	}
	dec := json.NewDecoder(strings.NewReader(line))
	dec.DisallowUnknownFields()
	var ej eventJSON
	if err := dec.Decode(&ej); err != nil {
		return Event{}, fmt.Errorf("bad event line: %w", err)
	}
	// Trailing content after the object (a second object, garbage) is
	// corruption: one line must hold exactly one event.
	if dec.More() {
		return Event{}, fmt.Errorf("trailing data after event object")
	}
	k, ok := KindFromString(ej.Ev)
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", ej.Ev)
	}
	return Event{TimeNS: ej.T, Kind: k, VPN: ej.VPN, Huge: ej.Huge, Bytes: ej.Bytes, Aux: ej.Aux}, nil
}

// ReadAll decodes an entire trace.
func ReadAll(r io.Reader) ([]Event, error) {
	d := NewDecoder(r)
	var out []Event
	for {
		e, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}
