package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestSingleTenantGolden pins the multi-tenant compatibility path:
// a single-tenant run's counters CSV and result fields must be
// byte-identical to the pre-multi-tenant simulator. The golden file
// was generated from the seed tree before any tenant code landed; a
// diff here means the tenant layer leaked into single-space runs
// (a new unconditional counter, a changed access stream, a tagged
// vpn reaching the TLB with a non-zero tag, ...).
func TestSingleTenantGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Accesses = 200_000
	m, err := Sequential().RunMatrix(context.Background(), cfg,
		[]string{"silo"}, []Ratio{Ratio1to8}, []string{"memtis", "tpp"})
	if err != nil {
		t.Fatal(err)
	}
	out := m.CountersCSV()
	for _, c := range m.Cells {
		r := c.Result
		out += fmt.Sprintf("result,%s,%s,%s,accesses=%d,appns=%d,wallns=%d,fasthit=%.6f,rsspeak=%d,rssfinal=%d,promo=%d,demo=%d,faults=%d,tenants=%d\n",
			c.Workload, c.Ratio, c.Policy, r.Accesses, r.AppNS, r.WallNS, r.FastHitRatio,
			r.RSSPeak, r.RSSFinal, r.VM.Promotions, r.VM.Demotions, r.VM.Faults, len(r.Tenants))
	}
	want, err := os.ReadFile(filepath.Join("testdata", "single_tenant.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Fatalf("single-tenant output diverged from pre-multi-tenant golden\n--- got ---\n%s--- want ---\n%s", out, want)
	}
}
