// Tenant-isolation conformance suite (DESIGN.md §10): every policy in
// the registry must honour the QoS arbiter's contracts — fast-tier
// floors hold once warmed, weighted shares bound contended promotions,
// adversarial neighbours cannot evict a floored tenant — at tenant
// counts from 1 to 1024, under churn and under injected migration
// faults. Plus the determinism and churn-accounting property tests the
// multi-tenant scheduler promises.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"memtis/internal/scenario"
	"memtis/internal/sim"
	"memtis/internal/tenant"
	"memtis/internal/tier"
)

// tenantMachine sizes a machine for a tenant mix like MachineFor: fast
// tier at the ratio's fraction of the combined footprint, capacity
// with headroom.
func tenantMachine(rss uint64, rt Ratio, seed int64, faultPpm uint32) sim.Config {
	fast := uint64(float64(rss) * rt.FastFrac)
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	mc := sim.Config{
		FastBytes: fast,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      seed,
	}
	mc.Faults.MigrateFailPpm = faultPpm
	return mc
}

// runTenantCell builds a churning tenant mix with a floored first
// tenant, runs it under one policy with injected faults, and checks
// the invariants every cell must hold: the exact global budget, a
// clean audit, zero floor violations, and per-tenant accesses that sum
// to the budget.
func runTenantCell(t *testing.T, pol string, n int, budget uint64) sim.Result {
	t.Helper()
	pt := TenantPoint{Tenants: n, Skew: "8to1", ChurnFrac: 0.25}
	if n == 1 {
		pt = TenantPoint{Tenants: 1, Skew: "flat"}
	}
	tc, rss := TenantMix(pt, tenantSweepBytes(n))
	tc.Tenants[0].FloorBytes = 2 << 20
	tn, err := tenant.New(tc)
	if err != nil {
		t.Fatal(err)
	}
	seed := int64(splitmix64(fnv1a(pol)^uint64(n)) | 1)
	m := sim.NewMachine(tenantMachine(rss, Ratio1to8, seed, 50_000), NewPolicy(pol))
	tn.Run(m, budget)
	if err := m.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	res := m.Finish("tenants")
	if res.Accesses != budget {
		t.Fatalf("ran %d accesses, want %d", res.Accesses, budget)
	}
	for _, mt := range res.Counters {
		if strings.HasSuffix(mt.Name, "/floor_violations") && mt.Value > 0 {
			t.Errorf("%s = %d, want 0", mt.Name, mt.Value)
		}
	}
	if n == 1 {
		if len(res.Tenants) != 0 {
			t.Fatalf("single-tenant run grew %d tenant rows", len(res.Tenants))
		}
		return res
	}
	if len(res.Tenants) != n {
		t.Fatalf("%d tenant rows, want %d", len(res.Tenants), n)
	}
	var sum uint64
	for _, tr := range res.Tenants {
		sum += tr.Accesses
	}
	if sum != budget {
		t.Fatalf("tenant accesses sum to %d, want %d", sum, budget)
	}
	return res
}

// TestTenantConformance is the acceptance matrix: every registered
// policy at 1, 64 and 1024 tenants, with churn and a 5% migration
// fault rate.
func TestTenantConformance(t *testing.T) {
	counts := []int{1, 64, 1024}
	if testing.Short() {
		counts = []int{1, 64}
	}
	for _, n := range counts {
		for _, pol := range AllPolicies {
			n, pol := n, pol
			t.Run(fmt.Sprintf("t%d/%s", n, pol), func(t *testing.T) {
				runTenantCell(t, pol, n, 30_000)
			})
		}
	}
}

// TestTenantFloorHolds pins the floor-once-warmed contract under
// sustained pressure: a floored tenant that filled its floor is never
// pushed below it by a run-long contender, for any policy.
func TestTenantFloorHolds(t *testing.T) {
	for _, pol := range AllPolicies {
		pol := pol
		t.Run(pol, func(t *testing.T) {
			floor := uint64(4 << 20)
			tc := tenant.Config{Tenants: []tenant.Spec{
				{Name: "vip", FloorBytes: floor, Workload: NewTenantLoad("vip", 8<<20)},
				{Name: "noisy", Weight: 16, Workload: NewTenantLoad("noisy", 48<<20)},
			}}
			tn, err := tenant.New(tc)
			if err != nil {
				t.Fatal(err)
			}
			m := sim.NewMachine(tenantMachine(56<<20, Ratio1to8, 11, 0), NewPolicy(pol))
			tn.Run(m, 200_000)
			if err := m.Audit(); err != nil {
				t.Fatal(err)
			}
			res := m.Finish("floor")
			for _, mt := range res.Counters {
				if strings.HasSuffix(mt.Name, "/floor_violations") && mt.Value > 0 {
					t.Errorf("%s = %d, want 0", mt.Name, mt.Value)
				}
			}
		})
	}
}

// TestTenantWeightedShare pins the contended-share contract end to
// end: under fast-tier contention an 8:1 weight split must bound the
// light tenant's contended promotions to its share plus the burst
// slack, for every policy whose migrations actually hit the contended
// path (sampling-driven policies legitimately promote nothing on this
// uniform-hot mix; at least one policy must exercise the path or the
// test is vacuous).
func TestTenantWeightedShare(t *testing.T) {
	exercised := 0
	for _, pol := range AllPolicies {
		tc := tenant.Config{Tenants: []tenant.Spec{
			{Name: "heavy", Weight: 8, Workload: NewTenantLoad("heavy", 32<<20)},
			{Name: "light", Weight: 1, Workload: NewTenantLoad("light", 32<<20)},
		}}
		tn, err := tenant.New(tc)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.NewMachine(tenantMachine(64<<20, Ratio1to8, 23, 0), NewPolicy(pol))
		tn.Run(m, 600_000)
		if err := m.Audit(); err != nil {
			t.Fatalf("%s: audit: %v", pol, err)
		}
		res := m.Finish("share")
		get := func(name string) uint64 {
			for _, mt := range res.Counters {
				if mt.Name == name {
					return mt.Value
				}
			}
			t.Fatalf("%s: counter %s missing", pol, name)
			return 0
		}
		heavy := get("tenant/heavy/contended_promotions")
		light := get("tenant/light/contended_promotions")
		total := heavy + light
		if total == 0 {
			continue
		}
		exercised++
		// light's cap: weight 1 of 9, plus the arbiter's burst slack and
		// one in-flight huge-page move of tolerance.
		if limit := total/9 + 3*tier.SubPages; light > limit {
			t.Errorf("%s: light tenant took %d of %d contended promotions, cap %d",
				pol, light, total, limit)
		}
	}
	if exercised == 0 {
		t.Fatal("no policy produced contended promotions; the share path went unexercised")
	}
}

// TestTenantAdversarialNeighbor is the Zipf-hammer isolation test: a
// small floored tenant shares the machine with a hot-and-heavy
// neighbour 6x its size and 16x its weight. The floor must hold for
// every policy, and under memtis the victim must actually retain fast
// residency at least a quarter of its floor.
func TestTenantAdversarialNeighbor(t *testing.T) {
	run := func(pol string) sim.Result {
		floor := uint64(4 << 20)
		tc := tenant.Config{Tenants: []tenant.Spec{
			{Name: "vip", FloorBytes: floor, Workload: NewTenantLoad("vip", 8<<20)},
			{Name: "hammer", Weight: 16, Workload: zipfHammer{}},
		}}
		tn, err := tenant.New(tc)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.NewMachine(tenantMachine(56<<20, Ratio1to8, 31, 0), NewPolicy(pol))
		tn.Run(m, 300_000)
		if err := m.Audit(); err != nil {
			t.Fatal(err)
		}
		return m.Finish("adversary")
	}
	value := func(res sim.Result, name string) uint64 {
		for _, mt := range res.Counters {
			if mt.Name == name {
				return mt.Value
			}
		}
		return 0
	}
	for _, pol := range AllPolicies {
		res := run(pol)
		if v := value(res, "tenant/vip/floor_violations"); v > 0 {
			t.Errorf("%s: vip floor violated %d times", pol, v)
		}
	}
	res := run("memtis")
	fast := value(res, "tenant/vip/fast_pages") * tier.BasePageSize
	if fast < (4<<20)/4 {
		t.Fatalf("memtis: vip holds %d fast bytes against the hammer, want >= %d", fast, (4<<20)/4)
	}
}

// zipfHammer is the adversarial neighbour: a tight Zipf-like loop that
// concentrates heat so the policy wants all of the fast tier for it.
type zipfHammer struct{}

func (zipfHammer) Name() string { return "hammer" }

func (zipfHammer) Run(m *sim.Machine, accesses uint64) {
	r := m.Reserve(48 << 20)
	base := splitmix64(uint64(m.Cfg.Seed) ^ fnv1a("hammer"))
	var ctr uint64
	for m.Accesses() < accesses {
		ctr++
		x := splitmix64(base + ctr)
		// Geometric-ish skew: most probes land in the first pages.
		span := r.Pages >> (x % 10)
		if span == 0 {
			span = 1
		}
		m.Access(r.BaseVPN+(x>>16)%span, x&3 == 0)
	}
}

// TestTenantChurnProperty is the churn accounting property test: over
// five seeds of spawn/grow/shrink/exit churn, the machine audit is
// clean after every single churn event, exited tenants hold no
// resident pages, and the final resident total equals the sum over
// live tenant spaces (no leaked pages).
func TestTenantChurnProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var m *sim.Machine
			tc := tenant.Config{
				Tenants: []tenant.Spec{
					{Name: "base", Workload: NewTenantLoad("base", 8<<20),
						GrowBytes: 4 << 20, GrowFrac: 0.3, ShrinkFrac: 0.8},
					{Name: "early", Workload: NewTenantLoad("early", 8<<20),
						ExitFrac: 0.5},
					{Name: "late", Workload: NewTenantLoad("late", 8<<20),
						SpawnFrac: 0.2, ExitFrac: 0.9},
					{Name: "mid", Workload: NewTenantLoad("mid", 8<<20),
						SpawnFrac: 0.4},
				},
				OnChurn: func(kind tenant.ChurnKind, id int) {
					if err := m.Audit(); err != nil {
						t.Fatalf("audit after %s of tenant %d: %v", kind, id, err)
					}
					if kind == tenant.ChurnExit {
						if ru := m.Space(id).ResidentUnits(); ru != 0 {
							t.Fatalf("tenant %d exited with %d resident pages", id, ru)
						}
					}
				},
			}
			tn, err := tenant.New(tc)
			if err != nil {
				t.Fatal(err)
			}
			m = sim.NewMachine(tenantMachine(40<<20, Ratio1to8, seed, 0), NewPolicy("memtis"))
			tn.Run(m, 150_000)
			if err := m.Audit(); err != nil {
				t.Fatalf("final audit: %v", err)
			}
			var sum uint64
			for i := 0; i < m.NumSpaces(); i++ {
				sum += m.Space(i).ResidentUnits() * tier.BasePageSize
			}
			if got := m.RSSBytes(); got != sum {
				t.Fatalf("machine RSS %d != %d summed over tenant spaces", got, sum)
			}
			res := m.Finish("churn")
			if res.Accesses != 150_000 {
				t.Fatalf("ran %d accesses, want 150000", res.Accesses)
			}
		})
	}
}

// TestTenantTraceDeterminism extends the event-trace golden to the
// multi-tenant scheduler: the same seed must produce byte-identical
// per-tenant event traces (spawns, switches, exits interleaved with
// migrations) whether cells run sequentially or on eight workers. Run
// under -race this also proves the baton scheduler never lets two
// tenant goroutines touch the machine concurrently.
func TestTenantTraceDeterminism(t *testing.T) {
	mk := func(name string) []scenario.Phase {
		return []scenario.Phase{
			{Grow: []scenario.Region{{Name: name, Bytes: 6 << 20}},
				Mix: []scenario.MixEntry{{Region: name, Dist: "zipf", S: 0.99}}},
		}
	}
	sc := scenario.MustCompile(scenario.Spec{
		Name: "multideterminism",
		Tenants: []scenario.TenantSpec{
			{Name: "a", Weight: 4, FloorBytes: 2 << 20, Phases: mk("ra")},
			{Name: "b", Phases: mk("rb"), SpawnFrac: 0.1, ExitFrac: 0.8},
			{Name: "c", Phases: mk("rc"), GrowBytes: 2 << 20, GrowFrac: 0.3},
		},
	}, scenario.Options{})
	cfg := DefaultConfig()
	cfg.Accesses = 120_000
	runInto := func(r *Runner) map[string][]byte {
		c := cfg
		c.EventDir = t.TempDir()
		if _, err := r.RunScenarioMatrix(context.Background(), c, []*scenario.Runner{sc},
			[]Ratio{Ratio1to8}, []string{"memtis"}); err != nil {
			t.Fatal(err)
		}
		return readTraces(t, c.EventDir)
	}
	seq := runInto(Sequential())
	par := runInto(Parallel(8))
	if len(seq) == 0 {
		t.Fatal("no traces written")
	}
	for name, data := range seq {
		if len(data) == 0 {
			t.Fatalf("%s is empty", name)
		}
		if !bytes.Equal(data, par[name]) {
			t.Fatalf("%s differs between sequential and 8-worker runs", name)
		}
	}
	cell, ok := seq["multideterminism_1to8_memtis.events.jsonl"]
	if !ok {
		t.Fatalf("cell trace missing; files: %v", keys(seq))
	}
	for _, kind := range []string{"tenant_spawn", "tenant_switch", "tenant_exit"} {
		if !bytes.Contains(cell, []byte(kind)) {
			t.Fatalf("trace has no %s events", kind)
		}
	}
}

// TestTenantSweep pins the sweep harness: the single-tenant reference
// row normalises to 1.0, every requested cell exists, and the table
// renders one row per point.
func TestTenantSweep(t *testing.T) {
	points := []TenantPoint{
		{Tenants: 1, Skew: "flat"},
		{Tenants: 4, Skew: "8to1", ChurnFrac: 0.5},
	}
	pols := []string{"memtis", "static"}
	cfg := DefaultConfig()
	cfg.Accesses = 40_000
	m, err := Parallel(4).TenantSweep(context.Background(), cfg, Ratio1to8, pols, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != len(points)*len(pols) {
		t.Fatalf("%d cells, want %d", len(m.Cells), len(points)*len(pols))
	}
	for _, p := range pols {
		ref, ok := m.Get("tenants", tenantCoord(Ratio1to8, points[0]), p)
		if !ok || ref != 1.0 {
			t.Fatalf("%s reference cell = %v, %v; want 1.0", p, ref, ok)
		}
		if v, ok := m.Get("tenants", tenantCoord(Ratio1to8, points[1]), p); !ok || v <= 0 {
			t.Fatalf("%s multi-tenant cell = %v, %v", p, v, ok)
		}
	}
	tbl := TenantSweepTable("tenant sweep", m, Ratio1to8, pols, points)
	if len(tbl.Rows) != len(points) {
		t.Fatalf("table has %d rows, want %d", len(tbl.Rows), len(points))
	}
}
