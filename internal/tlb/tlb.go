// Package tlb models the processor's translation lookaside buffer. The
// simulator charges a page-walk latency on every TLB miss; huge pages
// both increase reach (one entry covers 512 base pages) and walk one
// fewer page-table level, which is exactly the address-translation
// benefit MEMTIS trades against fast-tier waste when deciding page size.
package tlb

import "memtis/internal/obs"

// Walk latencies in nanoseconds. A 4KB translation walks four page-table
// levels; a 2MB translation stops at the PMD (three levels). The values
// assume partial page-walk caching, in line with measured walk costs on
// recent Xeons.
const (
	Walk4KNS = 96
	Walk2MNS = 70
)

const ways = 8 // associativity of each sub-TLB

// set is one associativity set: tags plus LRU stamps. Tag 0 is reserved
// as "invalid" (virtual page numbers are stored +1).
type set struct {
	tags [ways]uint64
	used [ways]uint32
}

// subTLB is an 8-way set-associative TLB with true-LRU replacement
// within each set.
type subTLB struct {
	sets    []set
	mask    uint64
	tick    uint32
	lookups uint64
	misses  uint64
}

func newSubTLB(entries int) *subTLB {
	nSets := entries / ways
	if nSets < 1 {
		nSets = 1
	}
	// Round down to a power of two for cheap indexing.
	p := 1
	for p*2 <= nSets {
		p *= 2
	}
	return &subTLB{sets: make([]set, p), mask: uint64(p - 1)}
}

// lookup probes for vpn, inserting it on a miss. Returns true on hit.
func (t *subTLB) lookup(vpn uint64) bool {
	t.lookups++
	t.tick++
	s := &t.sets[vpn&t.mask]
	tag := vpn + 1
	victim := 0
	for i := 0; i < ways; i++ {
		if s.tags[i] == tag {
			s.used[i] = t.tick
			return true
		}
		if s.used[i] < s.used[victim] {
			victim = i
		}
	}
	t.misses++
	s.tags[victim] = tag
	s.used[victim] = t.tick
	return false
}

// invalidate drops vpn if present (TLB shootdown of one mapping).
func (t *subTLB) invalidate(vpn uint64) {
	s := &t.sets[vpn&t.mask]
	tag := vpn + 1
	for i := 0; i < ways; i++ {
		if s.tags[i] == tag {
			s.tags[i] = 0
			s.used[i] = 0
			return
		}
	}
}

// Config sizes the two sub-TLBs. Defaults follow a Cascade Lake-style
// second-level TLB: 1536 shared 4K entries, 1536 2M entries being overly
// generous, so we use a 16-entry L1-style 2M complement of 1024.
type Config struct {
	Entries4K int
	Entries2M int
}

// DefaultConfig returns the TLB geometry used throughout the evaluation.
func DefaultConfig() Config { return Config{Entries4K: 1536, Entries2M: 1024} }

// TLB models split 4K/2M translation caches.
type TLB struct {
	l4k *subTLB
	l2m *subTLB

	// Trace receives invalidate/flush events. The per-access lookup
	// path (Access) never emits — only the rare maintenance operations
	// do — so tracing does not perturb translation costs.
	Trace *obs.Tracer
}

// New builds a TLB with the given geometry; zero fields take defaults.
func New(cfg Config) *TLB {
	def := DefaultConfig()
	if cfg.Entries4K <= 0 {
		cfg.Entries4K = def.Entries4K
	}
	if cfg.Entries2M <= 0 {
		cfg.Entries2M = def.Entries2M
	}
	return &TLB{l4k: newSubTLB(cfg.Entries4K), l2m: newSubTLB(cfg.Entries2M)}
}

// Access translates the access to the base-page number vpn, mapped by a
// huge page or a base page, and returns the translation cost in
// nanoseconds (0 on a TLB hit).
func (t *TLB) Access(vpn uint64, huge bool) uint64 {
	if huge {
		if t.l2m.lookup(vpn / 512) {
			return 0
		}
		return Walk2MNS
	}
	if t.l4k.lookup(vpn) {
		return 0
	}
	return Walk4KNS
}

// Invalidate removes the translation covering vpn (huge selects the 2M
// sub-TLB). Used on migration, split and collapse.
func (t *TLB) Invalidate(vpn uint64, huge bool) {
	t.Trace.Emit(obs.EvTLBInvalidate, vpn, huge, 0, 0)
	if huge {
		t.l2m.invalidate(vpn / 512)
		return
	}
	t.l4k.invalidate(vpn)
}

// Flush empties both sub-TLBs.
func (t *TLB) Flush() {
	t.Trace.Emit(obs.EvTLBFlush, 0, false, 0, 0)
	for i := range t.l4k.sets {
		t.l4k.sets[i] = set{}
	}
	for i := range t.l2m.sets {
		t.l2m.sets[i] = set{}
	}
}

// Stats reports lookup and miss counts per sub-TLB.
type Stats struct {
	Lookups4K, Misses4K uint64
	Lookups2M, Misses2M uint64
}

// Stats returns a snapshot of the TLB counters.
func (t *TLB) Stats() Stats {
	return Stats{
		Lookups4K: t.l4k.lookups, Misses4K: t.l4k.misses,
		Lookups2M: t.l2m.lookups, Misses2M: t.l2m.misses,
	}
}

// MissRatio returns overall misses/lookups across both sub-TLBs.
func (s Stats) MissRatio() float64 {
	l := s.Lookups4K + s.Lookups2M
	if l == 0 {
		return 0
	}
	return float64(s.Misses4K+s.Misses2M) / float64(l)
}
