package policy

import (
	"testing"

	"memtis/internal/sim"
	"memtis/internal/tier"
)

func newM(t *testing.T, pol sim.Policy, fastBlocks, capBlocks int) *sim.Machine {
	t.Helper()
	return sim.NewMachine(sim.Config{
		FastBytes: uint64(fastBlocks) * tier.HugePageSize,
		CapBytes:  uint64(capBlocks) * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      1,
		TickNS:    100_000,
	}, pol)
}

func TestStaticNeverMigrates(t *testing.T) {
	pol := NewStatic()
	m := newM(t, pol, 2, 8)
	r := m.Reserve(6 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	for i := 0; i < 50_000; i++ {
		m.Access(r.BaseVPN+5*tier.SubPages, false)
	}
	st := m.AS.Stats()
	if st.Migrations4K+st.MigrationsHuge != 0 {
		t.Fatal("static policy migrated")
	}
}

func TestPinnedPlacement(t *testing.T) {
	pol := NewPinned(tier.CapacityTier, "all-capacity")
	m := newM(t, pol, 2, 8)
	r := m.Reserve(tier.HugePageSize)
	res := m.AS.Touch(r.BaseVPN, true)
	if res.Tier != tier.CapacityTier {
		t.Fatalf("pinned placement ignored: %v", res.Tier)
	}
	if pol.Name() != "all-capacity" {
		t.Fatal("label")
	}
}

func TestAutoNUMAPromotesOnHintFaultAndNeverDemotes(t *testing.T) {
	pol := NewAutoNUMA()
	m := newM(t, pol, 2, 16)
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	// Fast tier is full with the first two blocks; hammer a capacity
	// block long enough for the rearm sweep to arm it.
	hot := r.BaseVPN + 6*tier.SubPages
	for i := 0; i < 300_000; i++ {
		m.Access(hot+uint64(i)%tier.SubPages, false)
	}
	st := m.AS.Stats()
	if st.Demotions != 0 {
		t.Fatal("AutoNUMA demoted")
	}
	// Fast tier full: promotion must have been skipped silently.
	if m.AS.Lookup(hot).Tier != tier.CapacityTier {
		t.Fatal("promotion succeeded into a full tier without demotion support?")
	}
}

func TestAutoNUMAPromotesWhenRoomAvailable(t *testing.T) {
	pol := NewAutoNUMA()
	m := newM(t, pol, 4, 16)
	r := m.Reserve(2 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	// Force one block to capacity via direct migration, then access it.
	pg := m.AS.Lookup(r.BaseVPN)
	m.AS.Migrate(pg, tier.CapacityTier)
	for i := 0; i < 300_000 && m.AS.Lookup(r.BaseVPN).Tier != tier.FastTier; i++ {
		m.Access(r.BaseVPN+uint64(i)%tier.SubPages, false)
	}
	if m.AS.Lookup(r.BaseVPN).Tier != tier.FastTier {
		t.Fatal("AutoNUMA never promoted a hot page with free fast space")
	}
	if m.AS.Stats().Promotions == 0 {
		t.Fatal("no promotions recorded")
	}
}

func TestTPPDemotesToKeepHeadroom(t *testing.T) {
	pol := NewTPP()
	m := newM(t, pol, 2, 16)
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	// Run idle accesses so the demotion clock can restore head-room.
	for i := 0; i < 200_000; i++ {
		m.Access(r.BaseVPN+4*tier.SubPages+uint64(i)%tier.SubPages, false)
	}
	if m.Fast.FreeFrames() < pol.HeadroomFrames(pol.reserve)/2 {
		t.Fatalf("TPP kept no head-room: free=%d", m.Fast.FreeFrames())
	}
	if m.AS.Stats().Demotions == 0 {
		t.Fatal("no demotions")
	}
}

func TestTiering08AdaptsThreshold(t *testing.T) {
	pol := NewTiering08()
	m := newM(t, pol, 2, 16)
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	before := pol.threshNS
	// Idle promotion traffic: the threshold must loosen over time.
	for i := 0; i < 400_000; i++ {
		m.Access(r.BaseVPN+uint64(i)%(2*tier.SubPages), false)
	}
	if pol.threshNS <= before {
		t.Fatalf("threshold did not adapt upward: %d -> %d", before, pol.threshNS)
	}
}

func TestNimbleScanAndExchange(t *testing.T) {
	pol := NewNimble()
	m := newM(t, pol, 2, 16)
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	// Keep one capacity block hot; Nimble must exchange it in.
	hot := r.BaseVPN + 7*tier.SubPages
	for i := 0; i < 400_000; i++ {
		m.Access(hot+uint64(i)%tier.SubPages, false)
	}
	if m.AS.Lookup(hot).Tier != tier.FastTier {
		t.Fatal("Nimble never promoted the only hot block")
	}
	if m.AS.Stats().Demotions == 0 {
		t.Fatal("exchange did not demote")
	}
}

func TestHeMemClassificationAndOverAlloc(t *testing.T) {
	pol := NewHeMem()
	m := newM(t, pol, 4, 16)
	small := m.Reserve(16 * tier.BasePageSize)
	for i := uint64(0); i < small.Pages; i++ {
		m.Access(small.BaseVPN+i, true)
	}
	if pol.OverAllocBytes() != 16*tier.BasePageSize {
		t.Fatalf("over-alloc = %d", pol.OverAllocBytes())
	}
	if m.AS.Lookup(small.BaseVPN).Tier != tier.FastTier {
		t.Fatal("small allocation not placed in fast tier")
	}
	// Hot classification at the static threshold.
	r := m.Reserve(tier.HugePageSize)
	m.Access(r.BaseVPN, true)
	pg := m.AS.Lookup(r.BaseVPN)
	for pg.Count < pol.HotThresh {
		m.Access(r.BaseVPN, false)
	}
	hot, _, _ := pol.HotSet()
	if hot < tier.HugePageSize {
		t.Fatalf("hot set %d missing the hot huge page", hot)
	}
}

func TestHeMemCoolingHalvesEverything(t *testing.T) {
	pol := NewHeMem()
	m := newM(t, pol, 4, 16)
	r := m.Reserve(2 * tier.HugePageSize)
	m.Access(r.BaseVPN, true)
	m.Access(r.BaseVPN+tier.SubPages, true)
	other := m.AS.Lookup(r.BaseVPN + tier.SubPages)
	for i := 0; i < 30; i++ {
		m.Access(r.BaseVPN+tier.SubPages, false)
	}
	otherCount := other.Count
	// Hammer one page long enough to cross the cooling threshold
	// several times (sampling period 20, threshold 18): every page in
	// the registry must have been halved along the way.
	for i := 0; i < 3000; i++ {
		m.Access(r.BaseVPN, false)
	}
	if other.Count >= otherCount {
		t.Fatalf("cooling did not halve other pages: %d -> %d", otherCount, other.Count)
	}
}

func TestSyncRateLimiter(t *testing.T) {
	pol := NewTPP()
	m := newM(t, pol, 4, 16)
	pol.Attach(m)
	// Consume the initial burst.
	granted := 0
	for i := 0; i < 100; i++ {
		if pol.allowSync(2 << 20) {
			granted++
		}
	}
	if granted == 0 || granted >= 100 {
		t.Fatalf("rate limiter granted %d of 100 immediate 2MB requests", granted)
	}
	// After virtual time passes, tokens refill.
	m.AdvanceBackground(1_000_000_000) // 1s -> 256MB of tokens
	refilled := 0
	for i := 0; i < 100; i++ {
		if pol.allowSync(2 << 20) {
			refilled++
		}
	}
	if refilled == 0 {
		t.Fatal("tokens did not refill")
	}
}

func TestRearmerUnitBudget(t *testing.T) {
	pol := NewAutoNUMA()
	m := newM(t, pol, 4, 16)
	r := m.Reserve(4 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	re := &Rearmer{RatePerSec: 512 * 1000} // 1000 base pages/ms
	re.Advance(&pol.Base, m.Now())
	n := re.Advance(&pol.Base, m.Now()+1_000_000)
	// 1ms at 512K pages/s = 512 units = exactly one huge page.
	if n != 1 {
		t.Fatalf("armed %d huge pages, want 1", n)
	}
}

func TestTraitsTableComplete(t *testing.T) {
	traits := AllTraits()
	if len(traits) != 10 {
		t.Fatalf("Table 1 rows = %d, want 10", len(traits))
	}
	var foundMemtis bool
	for _, tr := range traits {
		if tr.Name == "MEMTIS" {
			foundMemtis = true
			if !tr.SubpageTracking || tr.CriticalPath != "None" {
				t.Fatalf("MEMTIS row wrong: %+v", tr)
			}
		}
	}
	if !foundMemtis {
		t.Fatal("MEMTIS row missing")
	}
}

func TestMultiClockPromotesAtThresholdTwo(t *testing.T) {
	pol := NewMultiClock()
	m := newM(t, pol, 2, 16)
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	hot := r.BaseVPN + 7*tier.SubPages
	for i := 0; i < 400_000; i++ {
		m.Access(hot+uint64(i)%tier.SubPages, false)
	}
	if m.AS.Lookup(hot).Tier != tier.FastTier {
		t.Fatal("MULTI-CLOCK never promoted the hot block")
	}
	// The threshold is two scan generations: a block accessed exactly
	// once is not promoted.
	if m.AS.Stats().Promotions == 0 {
		t.Fatal("no promotions")
	}
}

func TestMultiClockAgesReferenceCounters(t *testing.T) {
	pol := NewMultiClock()
	m := newM(t, pol, 4, 16)
	r := m.Reserve(tier.HugePageSize)
	m.Access(r.BaseVPN, true)
	pg := m.AS.Lookup(r.BaseVPN)
	pg.P0 = 3
	// Idle scans decay the counter.
	for i := 0; i < 10; i++ {
		pol.Tick(m.Now() + uint64(i+1)*100_000_000)
	}
	if pg.P0 != 0 {
		t.Fatalf("reference counter not aged: %d", pg.P0)
	}
}

func TestHeMemAntiThrashFreeze(t *testing.T) {
	pol := NewHeMem()
	m := newM(t, pol, 2, 16)
	r := m.Reserve(10 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	// Make everything hot: the classified hot set exceeds the fast
	// tier, so HeMem freezes migration.
	for i := 0; i < 300_000; i++ {
		m.Access(r.BaseVPN+uint64(i)*97%r.Pages, false)
	}
	hot, _, _ := pol.HotSet()
	if hot <= m.Fast.CapacityBytes() {
		t.Skipf("hot set %d did not exceed fast tier in this configuration", hot)
	}
	migBefore := m.AS.Stats().MigratedBytes
	for i := 0; i < 50_000; i++ {
		m.Access(r.BaseVPN+uint64(i)*97%r.Pages, false)
	}
	if m.AS.Stats().MigratedBytes > migBefore+(8<<20) {
		t.Fatal("HeMem migrated heavily despite oversized hot set")
	}
}

func TestBaseCompactDropsDeadPages(t *testing.T) {
	pol := NewStatic()
	m := newM(t, pol, 4, 16)
	r := m.Reserve(4 * tier.BasePageSize)
	m.Access(r.BaseVPN, true)
	pg := m.AS.Lookup(r.BaseVPN)
	pol.Register(pg)
	m.FreeRegion(r)
	pol.Compact()
	for _, p := range pol.Registry {
		if p == pg {
			t.Fatal("dead page survived Compact")
		}
	}
}
