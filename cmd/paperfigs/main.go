// Command paperfigs regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index) and
// writes both aligned-text and CSV outputs into a results directory.
//
// The matrix-shaped experiments (fig5, fig6, fig7, fig8, fig14) fan
// their cells out to a worker pool with deterministic per-cell seeds
// (DESIGN.md §4 "Reproducibility & parallelism"): -parallel changes
// wall-clock time only, never a single output byte.
//
// Usage:
//
//	paperfigs                 # everything (several minutes)
//	paperfigs -only fig5,fig12
//	paperfigs -accesses 4000000 -out results
//	paperfigs -only fig5 -parallel 8
//	paperfigs -parallel 1     # sequential reference
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"memtis/internal/bench"
	"memtis/internal/render"
	"memtis/internal/scenario"
	"memtis/internal/sim"
	"memtis/internal/tier"
)

func main() {
	var (
		out      = flag.String("out", "results", "output directory")
		only     = flag.String("only", "", "comma-separated subset (fig1,fig2,fig3,fig5,fig6,fig7,fig8,fig9,fig10,fig11,fig12,fig13,fig14,table1,table2,table3,overhead,tenantsweep,faultsweep,depthsweep)")
		accesses = flag.Uint64("accesses", 2_000_000, "access budget per run")
		seed     = flag.Int64("seed", 42, "RNG seed")
		parallel = flag.Int("parallel", 0, "worker pool size for matrix experiments (0 = GOMAXPROCS, 1 = sequential)")
		quiet    = flag.Bool("quiet", false, "suppress the per-cell progress line")
		scens    = flag.String("scenarios", "", "comma-separated scenario spec files: adds a \"scenarios\" job running each through the Figure 5 policy/ratio matrix (additive; paper figures are unaffected)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Accesses = *accesses
	cfg.Seed = *seed

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	runner := bench.Parallel(*parallel)
	if !*quiet {
		runner.Progress = progressLine
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, f := range strings.Split(*only, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	type job struct {
		name string
		run  func() (bench.Table, error)
	}
	seqTable := func(f func() bench.Table) func() (bench.Table, error) {
		return func() (bench.Table, error) { return f(), nil }
	}
	jobs := []job{
		{"table1", seqTable(func() bench.Table { return bench.Table1() })},
		{"fig1", seqTable(func() bench.Table { _, t := bench.Fig1(cfg); return t })},
		{"fig2", seqTable(func() bench.Table {
			series, t := bench.Fig2(cfg)
			for _, s := range series {
				writeSeries(*out, fmt.Sprintf("fig2_%s.csv", s.Workload), s.Points, s.FastBytes)
			}
			return t
		})},
		{"fig3", seqTable(func() bench.Table {
			data, t := bench.Fig3(cfg)
			for wname, samples := range data {
				var b strings.Builder
				b.WriteString("access_count,utilization\n")
				for _, s := range samples {
					fmt.Fprintf(&b, "%d,%d\n", s.AccessCount, s.Utilization)
				}
				mustWrite(filepath.Join(*out, fmt.Sprintf("fig3_%s.csv", wname)), b.String())
			}
			return t
		})},
		{"table2", seqTable(func() bench.Table { return bench.Table2(cfg) })},
		{"table3", seqTable(func() bench.Table { _, t := bench.Table3(cfg); return t })},
		{"fig5", func() (bench.Table, error) {
			m, t, err := runner.Fig5(ctx, cfg, nil, nil, nil)
			if err != nil {
				return bench.Table{}, err
			}
			mustWrite(filepath.Join(*out, "fig5.plot.txt"), fig5Plot(m))
			writeCounters(*out, "fig5", m)
			return t, nil
		}},
		{"fig6", func() (bench.Table, error) {
			m, t, err := runner.Fig6(ctx, cfg, nil)
			if err == nil {
				writeCounters(*out, "fig6", m)
			}
			return t, err
		}},
		{"fig7", func() (bench.Table, error) {
			m, t, err := runner.Fig7(ctx, cfg)
			if err == nil {
				writeCounters(*out, "fig7", m)
			}
			return t, err
		}},
		{"fig8", func() (bench.Table, error) {
			m, t, err := runner.Fig8(ctx, cfg)
			if err == nil {
				writeCounters(*out, "fig8", m)
			}
			return t, err
		}},
		{"fig9", seqTable(func() bench.Table {
			series, t := bench.Fig9(cfg)
			var plots strings.Builder
			for _, s := range series {
				name := fmt.Sprintf("fig9_%s_%s.csv", s.Workload, strings.ReplaceAll(s.Ratio, ":", "to"))
				writeSeries(*out, name, s.Points, s.FastBytes)
				plots.WriteString(hotSetPlot(fmt.Sprintf("%s %s: identified hot set vs fast tier (MB)", s.Workload, s.Ratio), s.Points, s.FastBytes))
				plots.WriteByte('\n')
			}
			mustWrite(filepath.Join(*out, "fig9.plot.txt"), plots.String())
			return t
		})},
		{"fig10", seqTable(func() bench.Table { _, t := bench.Fig10(cfg); return t })},
		{"fig11", seqTable(func() bench.Table {
			series, t := bench.Fig11(cfg)
			var plots strings.Builder
			byWorkload := map[string][]render.Series{}
			var order []string
			for _, s := range series {
				name := fmt.Sprintf("fig11_%s_%s.csv", s.Workload, s.Policy)
				writeSeries(*out, name, s.Points, 0)
				var xs, ys []float64
				for _, p := range s.Points {
					xs = append(xs, float64(p.TimeNS)/1e6)
					ys = append(ys, p.ThroughputWin/1e6)
				}
				if _, ok := byWorkload[s.Workload]; !ok {
					order = append(order, s.Workload)
				}
				byWorkload[s.Workload] = append(byWorkload[s.Workload], render.Series{Name: s.Policy, X: xs, Y: ys})
			}
			for _, w := range order {
				plots.WriteString(render.LineChart(
					fmt.Sprintf("%s (1:8): throughput over time (M accesses/s vs ms)", w),
					byWorkload[w], 72, 14))
				plots.WriteByte('\n')
			}
			mustWrite(filepath.Join(*out, "fig11.plot.txt"), plots.String())
			return t
		})},
		{"fig12", seqTable(func() bench.Table { _, t := bench.Fig12(cfg); return t })},
		{"fig13", seqTable(func() bench.Table { _, t := bench.Fig13(cfg); return t })},
		{"fig14", func() (bench.Table, error) {
			m, t, err := runner.Fig14(ctx, cfg)
			if err == nil {
				writeCounters(*out, "fig14", m)
			}
			return t, err
		}},
		{"overhead", seqTable(func() bench.Table { _, t := bench.Overhead(cfg); return t })},
		{"scenarios", func() (bench.Table, error) {
			// Additive: declarative scenario specs (-scenarios) through
			// the Figure 5 policy/ratio matrix. Never selected unless the
			// flag names at least one spec file, so the paper figures are
			// byte-identical with or without it.
			var (
				scs   []*scenario.Runner
				names []string
			)
			for _, f := range strings.Split(*scens, ",") {
				if f = strings.TrimSpace(f); f == "" {
					continue
				}
				spec, err := scenario.DecodeFile(f)
				if err != nil {
					return bench.Table{}, err
				}
				sc, err := scenario.Compile(spec, scenario.Options{Dir: filepath.Dir(f)})
				if err != nil {
					return bench.Table{}, err
				}
				scs = append(scs, sc)
				names = append(names, sc.Name())
			}
			m, err := runner.RunScenarioMatrix(ctx, cfg, scs, bench.MainRatios, bench.Policies)
			if err != nil {
				return bench.Table{}, err
			}
			writeCounters(*out, "scenarios", m)
			title := fmt.Sprintf("scenarios: normalized performance (vs all-%s, seed %d, %d accesses/cell)",
				cfg.CapKind, cfg.Seed, cfg.Accesses)
			return bench.MatrixTable(title, m, names, bench.MainRatios, bench.Policies), nil
		}},
		{"tenantsweep", func() (bench.Table, error) {
			// The tenant-count x skew x churn fairness matrix
			// (EXPERIMENTS.md "Tenant sweep"): every cell normalised to
			// the same policy's single-tenant run, so the sweep isolates
			// the cost of multi-tenant contention and QoS arbitration.
			m, err := runner.TenantSweep(ctx, cfg, bench.Ratio1to8, nil, nil)
			if err != nil {
				return bench.Table{}, err
			}
			writeCounters(*out, "tenantsweep", m)
			title := fmt.Sprintf("tenant sweep: 1:8 throughput vs tenant count/skew/churn (normalised to each policy's single-tenant run, seed %d)", cfg.Seed)
			return bench.TenantSweepTable(title, m, bench.Ratio1to8, nil, nil), nil
		}},
		{"depthsweep", func() (bench.Table, error) {
			// The tier-depth x admission x fault-rate matrix
			// (EXPERIMENTS.md "Depth sweep"): every cell runs on the
			// hierarchy bench.TopologyForDepth derives for its depth with
			// the background mover on, normalised to the same policy's
			// (first depth, first admission, fault-free) reference cell.
			dcfg := cfg
			dcfg.Mover = tier.MoverConfig{BytesPerWindow: 8 << 20}
			m, err := runner.DepthSweep(ctx, dcfg, "silo", bench.Ratio1to8, nil, nil, nil, nil)
			if err != nil {
				return bench.Table{}, err
			}
			writeCounters(*out, "depthsweep", m)
			title := fmt.Sprintf("depth sweep: silo 1:8 throughput vs hierarchy depth/admission/fault rate (normalised to each policy's depth-2 always-admit fault-free run, seed %d)", cfg.Seed)
			return bench.DepthSweepTable(title, m, "silo", bench.Ratio1to8, nil, nil, nil, nil), nil
		}},
		{"faultsweep", func() (bench.Table, error) {
			// The fault-rate x policy degradation matrix (EXPERIMENTS.md
			// "Fault sweep"): every cell normalised to the same policy's
			// fault-free run, so the sweep isolates fault sensitivity.
			m, err := runner.FaultSweep(ctx, cfg, "silo", bench.Ratio1to8, nil, nil)
			if err != nil {
				return bench.Table{}, err
			}
			writeCounters(*out, "faultsweep", m)
			title := fmt.Sprintf("fault sweep: silo 1:8 throughput vs copy-abort rate (normalised to each policy's fault-free run, seed %d)", cfg.Seed)
			return bench.FaultSweepTable(title, m, "silo", bench.Ratio1to8, nil, nil), nil
		}},
	}

	var summary strings.Builder
	for _, j := range jobs {
		if !sel(j.name) {
			continue
		}
		if j.name == "scenarios" && *scens == "" {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		start := time.Now()
		t, err := j.run()
		if errors.Is(err, context.Canceled) {
			var ce *bench.Cancelled
			if errors.As(err, &ce) {
				fmt.Fprintf(os.Stderr, "\n%s interrupted after %d/%d cells\n", j.name, ce.Done, ce.Total)
			} else {
				fmt.Fprintf(os.Stderr, "\n%s interrupted\n", j.name)
			}
			break
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-9s done in %v\n", j.name, time.Since(start).Round(time.Millisecond))
		mustWrite(filepath.Join(*out, j.name+".txt"), t.String())
		mustWrite(filepath.Join(*out, j.name+".csv"), t.CSV())
		summary.WriteString(t.String())
		summary.WriteByte('\n')
	}
	mustWrite(filepath.Join(*out, "summary.txt"), summary.String())
	fmt.Printf("results written to %s/\n", *out)
	if ctx.Err() != nil {
		os.Exit(130) // interrupted: partial results on disk
	}
}

// progressLine redraws one stderr status line per finished cell:
// cells done / total plus the cumulative virtual time simulated.
func progressLine(p bench.Progress) {
	fmt.Fprintf(os.Stderr, "\r\033[K  %d/%d cells  %.2fs virtual  %s", p.Done, p.Total, float64(p.VirtualNS)/1e9, p.Cell)
	if p.Done == p.Total {
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}

// fig5Plot renders the headline comparison as grouped text bars.
func fig5Plot(m *bench.Matrix) string {
	var groups []render.BarGroup
	seen := map[string]bool{}
	for _, c := range m.Cells {
		key := c.Workload + " " + c.Ratio
		if seen[key] {
			continue
		}
		seen[key] = true
		g := render.BarGroup{Label: key}
		for _, p := range bench.Policies {
			if v, ok := m.Get(c.Workload, c.Ratio, p); ok {
				g.Bars = append(g.Bars, render.Bar{Name: p, Value: v})
			}
		}
		groups = append(groups, g)
	}
	return render.BarChart("Figure 5: normalized performance (vs all-NVM)", groups, 56)
}

// hotSetPlot draws the identified hot set against the fast-tier line.
func hotSetPlot(title string, pts []sim.SeriesPoint, fastBytes uint64) string {
	var xs, hot, fast []float64
	for _, p := range pts {
		xs = append(xs, float64(p.TimeNS)/1e6)
		hot = append(hot, float64(p.HotBytes)/(1<<20))
		fast = append(fast, float64(fastBytes)/(1<<20))
	}
	return render.LineChart(title, []render.Series{
		{Name: "hot", X: xs, Y: hot},
		{Name: "fast tier", X: xs, Y: fast},
	}, 72, 12)
}

func writeSeries(dir, name string, pts []sim.SeriesPoint, fastBytes uint64) {
	var b strings.Builder
	b.WriteString("time_ms,hot_mb,warm_mb,cold_mb,rss_mb,fast_used_mb,fast_hit,tput_Maccess_s,fast_size_mb\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f,%.3f,%.2f\n",
			float64(p.TimeNS)/1e6,
			float64(p.HotBytes)/(1<<20), float64(p.WarmBytes)/(1<<20), float64(p.ColdBytes)/(1<<20),
			float64(p.RSSBytes)/(1<<20), float64(p.FastUsed)/(1<<20),
			p.FastHitWin, p.ThroughputWin/1e6, float64(fastBytes)/(1<<20))
	}
	mustWrite(filepath.Join(dir, name), b.String())
}

// writeCounters dumps every cell's policy counter snapshot next to the
// figure output (additive observability: never an input to the figure).
func writeCounters(dir, fig string, m *bench.Matrix) {
	mustWrite(filepath.Join(dir, fig+".counters.csv"), m.CountersCSV())
}

func mustWrite(path, content string) {
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
