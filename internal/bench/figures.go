package bench

import (
	"context"
	"fmt"

	memtis "memtis/internal/core"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// Fig5 runs the headline comparison: every workload x ratio x system,
// normalised to the all-capacity-tier (THP) run, plus the geomean row.
// Sequential convenience wrapper over Runner.Fig5.
func Fig5(cfg Config, workloads []string, ratios []Ratio, pols []string) (*Matrix, Table) {
	m, t, _ := Sequential().Fig5(context.Background(), cfg, workloads, ratios, pols)
	return m, t
}

// Fig5 is the headline comparison run through the worker pool: the full
// cell matrix plus baselines fan out; rows assemble in plot order.
func (r *Runner) Fig5(ctx context.Context, cfg Config, workloads []string, ratios []Ratio, pols []string) (*Matrix, Table, error) {
	if workloads == nil {
		workloads = workloadNames()
	}
	if ratios == nil {
		ratios = MainRatios
	}
	if pols == nil {
		pols = Policies
	}
	m, err := r.RunMatrix(ctx, cfg, workloads, ratios, pols)
	if err != nil {
		return nil, Table{}, err
	}
	title := fmt.Sprintf("Figure 5: normalized performance (capacity tier: %s)", cfg.CapKind)
	return m, MatrixTable(title, m, workloads, ratios, pols), nil
}

// Fig6 is the Graph500 scalability sweep: paper RSS 128GB to 690GB with
// the fast tier fixed at 64GB. A tighter scale (1GB = 2MB) keeps the
// large points tractable. Sequential wrapper over Runner.Fig6.
func Fig6(cfg Config, pols []string) (*Matrix, Table) {
	m, t, _ := Sequential().Fig6(context.Background(), cfg, pols)
	return m, t
}

// Fig6 fans the per-size baseline and policy runs out to the pool.
func (r *Runner) Fig6(ctx context.Context, cfg Config, pols []string) (*Matrix, Table, error) {
	if pols == nil {
		pols = Policies
	}
	const scale = 2 << 20 // bytes per paper-GB for this figure
	sizes := []float64{128, 192, 336, 690}
	const fastGB = 64
	mkCfg := func(rssGB float64, fast uint64, seed int64) sim.Config {
		rss := uint64(rssGB * scale)
		return sim.Config{
			FastBytes: fast,
			CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
			CapKind:   cfg.CapKind,
			THP:       true,
			Threads:   cfg.Threads,
			Seed:      seed,
		}
	}
	bases := make([]sim.Result, len(sizes))
	results := make([]sim.Result, len(sizes)*len(pols))
	var tasks []cellTask
	for si, gb := range sizes {
		label := fmt.Sprintf("%.0fGB", gb)
		// Access budget grows with footprint so init stays a fraction.
		acc := cfg.Accesses + uint64(gb*scale)/tier.BasePageSize*3
		tasks = append(tasks, cellTask{
			label: "graph500/" + label + "/baseline",
			run: func() uint64 {
				w, _ := workload.NewScaled("graph500", gb*scale/workload.BytesPerPaperGB)
				seed := CellSeed(cfg.Seed, "graph500", label, "all-capacity")
				bases[si] = sim.Run(mkCfg(gb, tier.HugePageSize*2, seed), NewPolicy("all-capacity"), w, acc)
				return bases[si].AppNS
			},
		})
		for pi, p := range pols {
			slot := si*len(pols) + pi
			tasks = append(tasks, cellTask{
				label: "graph500/" + label + "/" + p,
				run: func() uint64 {
					w, _ := workload.NewScaled("graph500", gb*scale/workload.BytesPerPaperGB)
					fast := uint64(fastGB * scale)
					if p == "hemem" {
						over := w.Spec().SmallBytes()
						if over < fast/2 {
							fast -= over
						}
					}
					seed := CellSeed(cfg.Seed, "graph500", label, p)
					results[slot] = sim.Run(mkCfg(gb, fast, seed), NewPolicy(p), w, acc)
					return results[slot].AppNS
				},
			})
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, Table{}, err
	}
	m := &Matrix{}
	t := Table{
		Title:  "Figure 6: Graph500 under varying RSS (fast tier fixed 64GB-equivalent)",
		Header: append([]string{"rss_gb"}, pols...),
	}
	for si, gb := range sizes {
		row := []interface{}{fmt.Sprintf("%.0f", gb)}
		for pi, p := range pols {
			res := results[si*len(pols)+pi]
			v := Norm(res, bases[si])
			m.Cells = append(m.Cells, Cell{Workload: "graph500", Ratio: fmt.Sprintf("%.0fGB", gb), Policy: p, Value: v, Result: res})
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return m, t, nil
}

// Fig7 is the 2:1 configuration (Meta's production target): MEMTIS vs
// TPP with all-DRAM (with and without THP) references. Sequential
// wrapper over Runner.Fig7.
func Fig7(cfg Config) (*Matrix, Table) {
	m, t, _ := Sequential().Fig7(context.Background(), cfg)
	return m, t
}

// Fig7 fans each workload's five runs (baseline, two all-DRAM
// references, TPP, MEMTIS) out to the pool.
func (r *Runner) Fig7(ctx context.Context, cfg Config) (*Matrix, Table, error) {
	workloads := workloadNames()
	pols := []string{"tpp", "memtis"}
	type f7row struct {
		base, dramTHP, dramNoTHP sim.Result
		pol                      [2]sim.Result
	}
	rows := make([]f7row, len(workloads))
	var tasks []cellTask
	for wi, wname := range workloads {
		tasks = append(tasks,
			cellTask{label: wname + "/2:1/baseline", run: func() uint64 {
				rows[wi].base = RunBaseline(wname, CellConfig(cfg, wname, "baseline", "all-capacity"))
				return rows[wi].base.AppNS
			}},
			cellTask{label: wname + "/2:1/all-dram-thp", run: func() uint64 {
				rows[wi].dramTHP = RunAllFast(wname, true, CellConfig(cfg, wname, "2:1", "all-dram-thp"))
				return rows[wi].dramTHP.AppNS
			}},
			cellTask{label: wname + "/2:1/all-dram-nothp", run: func() uint64 {
				rows[wi].dramNoTHP = RunAllFast(wname, false, CellConfig(cfg, wname, "2:1", "all-dram-nothp"))
				return rows[wi].dramNoTHP.AppNS
			}})
		for pi, p := range pols {
			tasks = append(tasks, cellTask{label: wname + "/2:1/" + p, run: func() uint64 {
				rows[wi].pol[pi] = RunOne(wname, p, Ratio2to1, CellConfig(cfg, wname, "2:1", p))
				return rows[wi].pol[pi].AppNS
			}})
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, Table{}, err
	}
	m := &Matrix{}
	t := Table{
		Title:  "Figure 7: 2:1 configuration",
		Header: []string{"workload", "alldram_thp", "alldram_nothp", "tpp", "memtis"},
	}
	for wi, wname := range workloads {
		dramTHP := Norm(rows[wi].dramTHP, rows[wi].base)
		dramNoTHP := Norm(rows[wi].dramNoTHP, rows[wi].base)
		row := []interface{}{wname, dramTHP, dramNoTHP}
		for pi, p := range pols {
			res := rows[wi].pol[pi]
			v := Norm(res, rows[wi].base)
			m.Cells = append(m.Cells, Cell{Workload: wname, Ratio: "2:1", Policy: p, Value: v, Result: res})
			row = append(row, v)
		}
		m.Cells = append(m.Cells,
			Cell{Workload: wname, Ratio: "2:1", Policy: "all-dram-thp", Value: dramTHP},
			Cell{Workload: wname, Ratio: "2:1", Policy: "all-dram-nothp", Value: dramNoTHP})
		t.AddRow(row...)
	}
	return m, t, nil
}

// Fig8 compares MEMTIS against HeMem and HeMem+ with 16 application
// threads (no CPU contention for HeMem's spinning sampler) under 1:2.
// Sequential wrapper over Runner.Fig8.
func Fig8(cfg Config) (*Matrix, Table) {
	m, t, _ := Sequential().Fig8(context.Background(), cfg)
	return m, t
}

// Fig8 fans the 16-thread HeMem comparison out to the pool.
func (r *Runner) Fig8(ctx context.Context, cfg Config) (*Matrix, Table, error) {
	cfg.Threads = 16
	workloads := workloadNames()
	pols := []string{"hemem", "hemem+", "memtis"}
	m, err := r.RunMatrix(ctx, cfg, workloads, []Ratio{Ratio1to2}, pols)
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:  "Figure 8: MEMTIS vs HeMem/HeMem+ with 16 threads (1:2)",
		Header: []string{"workload", "hemem", "hemem+", "memtis"},
	}
	for _, wname := range workloads {
		row := []interface{}{wname}
		for _, p := range pols {
			v, _ := m.Get(wname, "1:2", p)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return m, t, nil
}

// Fig9Series is MEMTIS's identified hot/warm/cold sizes over time.
type Fig9Series struct {
	Workload  string
	Ratio     string
	FastBytes uint64
	Points    []sim.SeriesPoint
}

// Fig9 records MEMTIS's hot-set tracking for four workloads under 1:2
// and 1:8: the identified hot set should hug the fast tier size.
func Fig9(cfg Config) ([]Fig9Series, Table) {
	cfg.RecordNS = recordPeriod(cfg)
	var out []Fig9Series
	t := Table{
		Title:  "Figure 9: hot/warm/cold identified by MEMTIS",
		Header: []string{"workload", "ratio", "fast_mb", "hot_mean_mb", "hot_final_mb"},
	}
	for _, wname := range []string{"pagerank", "xsbench", "liblinear", "603.bwaves"} {
		for _, r := range []Ratio{Ratio1to2, Ratio1to8} {
			w := workload.MustNew(wname)
			mc := MachineFor(w.Spec(), r, "memtis", cfg)
			res := sim.Run(mc, NewPolicy("memtis"), w, cfg.Accesses)
			s := Fig9Series{Workload: wname, Ratio: r.Name, FastBytes: mc.FastBytes, Points: res.Series}
			out = append(out, s)
			var sum, final uint64
			var n int
			// Skip the allocation warm-up third.
			for i, p := range res.Series {
				if i < len(res.Series)/3 {
					continue
				}
				sum += p.HotBytes
				final = p.HotBytes
				n++
			}
			meanHot := uint64(0)
			if n > 0 {
				meanHot = sum / uint64(n)
			}
			t.AddRow(wname, r.Name, mb(mc.FastBytes), mb(meanHot), mb(final))
		}
	}
	return out, t
}

// Fig10Row is one workload's ablation outcome.
type Fig10Row struct {
	Workload       string
	PerfVanilla    float64 // normalised to capacity baseline
	PerfSplit      float64
	PerfFull       float64
	TrafficVanilla uint64 // migrated bytes
	TrafficSplit   uint64
	TrafficFull    uint64
}

// Fig10 is the warm-set and split ablation under 1:8: performance and
// migration traffic for vanilla (no split, no warm set), +split, and
// +split+warm (full MEMTIS).
func Fig10(cfg Config) ([]Fig10Row, Table) {
	t := Table{
		Title:  "Figure 10: impact of warm set and huge page split (1:8)",
		Header: []string{"workload", "perf_vanilla", "perf_split", "perf_full", "traffic_vanilla_mb", "traffic_split_mb", "traffic_full_mb"},
	}
	var out []Fig10Row
	for _, wname := range workloadNames() {
		base := RunBaseline(wname, cfg)
		rv := RunOne(wname, "memtis-vanilla", Ratio1to8, cfg)
		rs := RunOne(wname, "memtis-nowarm", Ratio1to8, cfg)
		rf := RunOne(wname, "memtis", Ratio1to8, cfg)
		row := Fig10Row{
			Workload:       wname,
			PerfVanilla:    Norm(rv, base),
			PerfSplit:      Norm(rs, base),
			PerfFull:       Norm(rf, base),
			TrafficVanilla: rv.VM.MigratedBytes,
			TrafficSplit:   rs.VM.MigratedBytes,
			TrafficFull:    rf.VM.MigratedBytes,
		}
		out = append(out, row)
		t.AddRow(wname, row.PerfVanilla, row.PerfSplit, row.PerfFull,
			mb(row.TrafficVanilla), mb(row.TrafficSplit), mb(row.TrafficFull))
	}
	return out, t
}

// Fig11Series is a throughput-over-time trace for the split timeline.
type Fig11Series struct {
	Workload string
	Policy   string
	Points   []sim.SeriesPoint
	RSSFinal uint64
	Splits   uint64
}

// Fig11 records Silo and Btree throughput over time under 1:8 for
// MEMTIS, MEMTIS-NS and the best fault-based baseline: the split kicks
// in mid-run and lifts throughput; for Btree it also cuts RSS.
func Fig11(cfg Config) ([]Fig11Series, Table) {
	cfg.RecordNS = recordPeriod(cfg)
	var out []Fig11Series
	t := Table{
		Title:  "Figure 11: performance over time with and without split (1:8)",
		Header: []string{"workload", "policy", "tail_tput_Maccess_s", "rss_final_mb", "splits"},
	}
	for _, wname := range []string{"silo", "btree"} {
		for _, p := range []string{"tiering-0.8", "memtis-ns", "memtis"} {
			w := workload.MustNew(wname)
			mc := MachineFor(w.Spec(), Ratio1to8, p, cfg)
			pol := NewPolicy(p)
			m := sim.NewMachine(mc, pol)
			w.Run(m, cfg.Accesses)
			res := m.Finish(wname)
			var splits uint64
			if mp, ok := pol.(*memtis.Policy); ok {
				splits = mp.Splits()
			}
			s := Fig11Series{Workload: wname, Policy: p, Points: res.Series, RSSFinal: res.RSSFinal, Splits: splits}
			out = append(out, s)
			t.AddRow(wname, p, tailTput(res.Series)/1e6, mb(res.RSSFinal), splits)
		}
	}
	return out, t
}

// tailTput averages the last-quarter windowed throughput of a series.
func tailTput(pts []sim.SeriesPoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	start := len(pts) * 3 / 4
	var s float64
	var n int
	for _, p := range pts[start:] {
		s += p.ThroughputWin
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// Fig12Row reports the three hit ratios of §6.3.3 for one workload.
type Fig12Row struct {
	Workload string
	EHR      float64 // estimated base-page hit ratio
	RHR      float64 // measured, with split
	RHRNS    float64 // measured, split disabled
}

// Fig12 compares eHR, rHR and rHR-NS under 1:8. Workloads with skewed,
// low-utilization huge pages (Silo, Btree) show a large eHR-rHRNS gap
// that splitting closes.
func Fig12(cfg Config) ([]Fig12Row, Table) {
	t := Table{
		Title:  "Figure 12: fast tier hit ratios (1:8)",
		Header: []string{"workload", "eHR", "rHR", "rHR-NS"},
	}
	var out []Fig12Row
	for _, wname := range workloadNames() {
		w1 := workload.MustNew(wname)
		mc := MachineFor(w1.Spec(), Ratio1to8, "memtis", cfg)
		polFull := memtis.New(memtis.Config{})
		m1 := sim.NewMachine(mc, polFull)
		w1.Run(m1, cfg.Accesses)

		w2 := workload.MustNew(wname)
		polNS := memtis.New(memtis.Config{SplitDisabled: true})
		m2 := sim.NewMachine(mc, polNS)
		w2.Run(m2, cfg.Accesses)

		r := Fig12Row{Workload: wname, EHR: polNS.EHR(), RHR: polFull.RHR(), RHRNS: polNS.RHR()}
		out = append(out, r)
		t.AddRow(wname, r.EHR, r.RHR, r.RHRNS)
	}
	return out, t
}

// Fig13 is the sensitivity study: threshold-adaptation and cooling
// intervals swept from 0.1x to 10x their defaults under 2:1, normalised
// to the default setting.
func Fig13(cfg Config) (*Matrix, Table) {
	muls := []float64{0.1, 0.5, 1, 2, 10}
	m := &Matrix{}
	t := Table{
		Title:  "Figure 13: sensitivity to adaptation and cooling intervals (2:1)",
		Header: []string{"workload", "param", "0.1x", "0.5x", "1x", "2x", "10x"},
	}
	for _, wname := range workloadNames() {
		w := workload.MustNew(wname)
		fastUnits := MachineFor(w.Spec(), Ratio2to1, "memtis", cfg).FastBytes / tier.BasePageSize
		defAdapt := fastUnits / 2
		if defAdapt < 512 {
			defAdapt = 512
		}
		defCool := defAdapt * 4
		runWith := func(adapt, cool uint64) float64 {
			ww := workload.MustNew(wname)
			mc := MachineFor(ww.Spec(), Ratio2to1, "memtis", cfg)
			pol := memtis.New(memtis.Config{AdaptEvery: adapt, CoolEvery: cool})
			res := sim.Run(mc, pol, ww, cfg.Accesses)
			return res.Throughput
		}
		ref := runWith(defAdapt, defCool)
		rowA := []interface{}{wname, "adapt"}
		rowC := []interface{}{wname, "cool"}
		for _, mul := range muls {
			a := uint64(float64(defAdapt) * mul)
			if a < 1 {
				a = 1
			}
			c := uint64(float64(defCool) * mul)
			if c < 1 {
				c = 1
			}
			va, vc := 0.0, 0.0
			if ref > 0 {
				va = runWith(a, defCool) / ref
				vc = runWith(defAdapt, c) / ref
			}
			m.Cells = append(m.Cells,
				Cell{Workload: wname, Ratio: fmt.Sprintf("adapt-%gx", mul), Policy: "memtis", Value: va},
				Cell{Workload: wname, Ratio: fmt.Sprintf("cool-%gx", mul), Policy: "memtis", Value: vc})
			rowA = append(rowA, va)
			rowC = append(rowC, vc)
		}
		t.AddRow(rowA...)
		t.AddRow(rowC...)
	}
	return m, t
}

// Fig14 repeats the comparison with emulated CXL memory (177ns) as the
// capacity tier: MEMTIS vs TPP across the three ratios. Sequential
// wrapper over Runner.Fig14.
func Fig14(cfg Config) (*Matrix, Table) {
	m, t, _ := Sequential().Fig14(context.Background(), cfg)
	return m, t
}

// Fig14 fans the CXL-capacity-tier comparison out to the pool.
func (r *Runner) Fig14(ctx context.Context, cfg Config) (*Matrix, Table, error) {
	cfg.CapKind = tier.CXL
	workloads := workloadNames()
	pols := []string{"tpp", "memtis"}
	m, err := r.RunMatrix(ctx, cfg, workloads, MainRatios, pols)
	if err != nil {
		return nil, Table{}, err
	}
	t := Table{
		Title:  "Figure 14: MEMTIS vs TPP with CXL capacity tier",
		Header: []string{"workload", "ratio", "tpp", "memtis"},
	}
	for _, wname := range workloads {
		for _, rt := range MainRatios {
			row := []interface{}{wname, rt.Name}
			for _, p := range pols {
				v, _ := m.Get(wname, rt.Name, p)
				row = append(row, v)
			}
			t.AddRow(row...)
		}
	}
	return m, t, nil
}

func workloadNames() []string {
	specs := workload.Specs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}
