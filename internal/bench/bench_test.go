package bench

import (
	"math"
	"strings"
	"testing"

	"memtis/internal/tier"
	"memtis/internal/workload"
)

func TestRatioArithmetic(t *testing.T) {
	// §6.1: 1:2 -> fast is 1/3 of RSS; 1:16 -> 1/17; §6.2.8: 2:1 -> 2/3.
	cases := []struct {
		r    Ratio
		want float64
	}{
		{Ratio1to2, 1.0 / 3}, {Ratio1to8, 1.0 / 9}, {Ratio1to16, 1.0 / 17}, {Ratio2to1, 2.0 / 3},
	}
	for _, c := range cases {
		if math.Abs(c.r.FastFrac-c.want) > 1e-12 {
			t.Errorf("%s: %v != %v", c.r.Name, c.r.FastFrac, c.want)
		}
	}
}

func TestMachineForSizesTiers(t *testing.T) {
	spec, _ := workload.SpecByName("silo")
	cfg := DefaultConfig()
	mc := MachineFor(spec, Ratio1to8, "memtis", cfg)
	wantFast := uint64(float64(spec.RSSBytes()) / 9)
	if mc.FastBytes != wantFast {
		t.Fatalf("fast = %d, want %d", mc.FastBytes, wantFast)
	}
	if mc.CapBytes < spec.RSSBytes() {
		t.Fatal("capacity tier smaller than RSS")
	}
	// HeMem's configured fast tier shrinks by the over-allocation.
	mcH := MachineFor(spec, Ratio1to8, "hemem", cfg)
	if mcH.FastBytes != wantFast-spec.SmallBytes() {
		t.Fatalf("hemem fast = %d, want %d", mcH.FastBytes, wantFast-spec.SmallBytes())
	}
	// HeMem+ keeps the full size (§6.2.9).
	if mcP := MachineFor(spec, Ratio1to8, "hemem+", cfg); mcP.FastBytes != wantFast {
		t.Fatal("hemem+ fast tier must not shrink")
	}
}

func TestNewPolicyNames(t *testing.T) {
	for _, name := range append(append([]string{}, Policies...), "memtis-ns", "memtis-vanilla", "static", "all-fast", "all-capacity") {
		p := NewPolicy(name)
		if p == nil {
			t.Fatalf("NewPolicy(%q) = nil", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown policy must panic")
		}
	}()
	NewPolicy("bogus")
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean = %v", g)
	}
	if Geomean(nil) != 0 || Geomean([]float64{1, 0}) != 0 {
		t.Fatal("degenerate geomean")
	}
}

func TestMatrixLookups(t *testing.T) {
	m := &Matrix{Cells: []Cell{
		{Workload: "w", Ratio: "1:8", Policy: "a", Value: 1.0},
		{Workload: "w", Ratio: "1:8", Policy: "b", Value: 2.0},
		{Workload: "w", Ratio: "1:8", Policy: "c", Value: 1.5},
	}}
	if v, ok := m.Get("w", "1:8", "b"); !ok || v != 2.0 {
		t.Fatal("Get")
	}
	if _, ok := m.Get("w", "1:8", "zzz"); ok {
		t.Fatal("Get false positive")
	}
	best, second, bv, sv := m.Best("w", "1:8")
	if best != "b" || second != "c" || bv != 2.0 || sv != 1.5 {
		t.Fatalf("Best: %s %s %v %v", best, second, bv, sv)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"a", "b"}}
	tb.AddRow("x", 1.5)
	tb.AddRow("comma,here", uint64(7))
	txt := tb.String()
	if !strings.Contains(txt, "== T ==") || !strings.Contains(txt, "1.500") {
		t.Fatalf("text:\n%s", txt)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "\"comma,here\"") {
		t.Fatalf("csv escaping:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("csv header:\n%s", csv)
	}
}

func TestTable1Shape(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 10 {
		t.Fatalf("Table 1 rows = %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "MEMTIS" || last[2] != "Yes" {
		t.Fatalf("MEMTIS row: %v", last)
	}
}

// The integration checks below run the real experiment harness on small
// budgets and assert the paper's qualitative claims ("shape"), not
// absolute numbers. They are skipped in -short mode.

func shortCfg() Config {
	cfg := DefaultConfig()
	cfg.Accesses = 1_200_000
	return cfg
}

func TestShapeSiloSplitBeatsNoSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := shortCfg()
	cfg.Accesses = 2_500_000 // splits need a cooling plus benefit windows
	base := RunBaseline("silo", cfg)
	full := Norm(RunOne("silo", "memtis", Ratio1to8, cfg), base)
	ns := Norm(RunOne("silo", "memtis-ns", Ratio1to8, cfg), base)
	if full <= ns*1.05 {
		t.Fatalf("split did not pay off on silo: full %.3f vs ns %.3f", full, ns)
	}
}

func TestShapeMemtisBeatsBaselinesOnSilo(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := shortCfg()
	base := RunBaseline("silo", cfg)
	memtis := Norm(RunOne("silo", "memtis", Ratio1to8, cfg), base)
	for _, p := range []string{"autonuma", "tpp", "nimble", "hemem"} {
		v := Norm(RunOne("silo", p, Ratio1to8, cfg), base)
		if memtis <= v {
			t.Errorf("memtis %.3f not ahead of %s %.3f on silo 1:8", memtis, p, v)
		}
	}
}

func TestShapeBtreeSplitReclaimsBloat(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := shortCfg()
	cfg.Accesses = 2_000_000
	full := RunOne("btree", "memtis", Ratio1to8, cfg)
	ns := RunOne("btree", "memtis-ns", Ratio1to8, cfg)
	if full.VM.Splits == 0 {
		t.Fatal("no splits on btree")
	}
	if full.RSSFinal >= ns.RSSFinal {
		t.Fatalf("split did not reduce RSS: %d vs %d", full.RSSFinal, ns.RSSFinal)
	}
}

func TestShapeFig2HeMemHotSetMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := shortCfg()
	series, _ := Fig2(cfg)
	for _, s := range series {
		if s.Workload != "pagerank" {
			continue
		}
		// HeMem's classified hot set stays far below the fast tier.
		var maxHot uint64
		for _, p := range s.Points {
			if p.HotBytes > maxHot {
				maxHot = p.HotBytes
			}
		}
		if maxHot > s.FastBytes/2 {
			t.Fatalf("pagerank hot set %d not well below fast %d", maxHot, s.FastBytes)
		}
	}
}

func TestShapeFig3UtilizationContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := shortCfg()
	cfg.Accesses = 2_500_000 // utilization needs enough samples per page
	data, _ := Fig3(cfg)
	lib := hotUtilizations(data["liblinear"])
	silo := hotUtilizations(data["silo"])
	if len(lib) == 0 || len(silo) == 0 {
		t.Fatal("missing utilization samples")
	}
	if median(lib) <= 2.5*median(silo) {
		t.Fatalf("hot-page utilization contrast missing: liblinear %.0f vs silo %.0f",
			median(lib), median(silo))
	}
	// Silo's hot pages use only a small fraction of their subpages.
	if median(silo) > 0.25*tier.SubPages {
		t.Fatalf("silo hot utilization %.0f too high", median(silo))
	}
}

func TestShapeFig1CPUTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := shortCfg()
	res, _ := Fig1(cfg)
	if len(res) != 3 {
		t.Fatal("expected 3 DAMON configs")
	}
	fine := res[2] // 5ms-10K-20K
	if fine.CPU < 5*res[0].CPU || fine.CPU < 5*res[1].CPU {
		t.Fatalf("accurate config not CPU-expensive: %+v", res)
	}
	if fine.Accuracy <= res[0].Accuracy || fine.Accuracy <= res[1].Accuracy {
		t.Fatalf("accurate config not most accurate: %+v", res)
	}
}
