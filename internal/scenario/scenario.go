// Package scenario turns workloads into data: a declarative
// specification (JSON with a strict decoder) composes phases — named
// Table 2 generators, synthetic access mixes over named regions,
// recorded trace replays — with RSS growth/shrink churn events and a
// fault-injection plan, and compiles into a sim.Workload runner that
// every harness (memtis-sim, bench.RunScenarioMatrix, paperfigs) can
// drive from a file instead of a code change.
//
// The package also carries the scenario fuzzer: Generate derives a
// random but seed-deterministic scenario (SplitMix64 counter discipline,
// like bench's cell seeds and tier's fault plans), Probe wraps any
// policy with the conformance invariants (bounded stalls, monotonic
// background accounting, no page lost or double-mapped, ksampled
// budget) tagging every violation with the scenario seed, and Shrink
// reduces a failing spec to a minimal reproducer. bench.HuntScenario
// ties them into the standing CI pathology hunt (DESIGN.md §9).
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"memtis/internal/tier"
	"memtis/internal/workload"
)

// Validation bounds: generous for hand-written scenarios, tight enough
// that a fuzzer-mutated spec cannot ask the simulator for an absurd
// machine.
const (
	// MaxPhases bounds the phase list.
	MaxPhases = 64
	// MaxMixEntries bounds one phase's access mix.
	MaxMixEntries = 16
	// MaxRegionBytes bounds one named region.
	MaxRegionBytes = 1 << 30
	// MaxTotalBytes bounds the scenario's peak resident estimate.
	MaxTotalBytes = 4 << 30
	// MaxWeight bounds a phase's budget weight.
	MaxWeight = 1e6
	// MaxRSSGB bounds a workload phase's paper-RSS override (Figure 6
	// scales Graph500 to 690 paper-GB; 1024 leaves headroom).
	MaxRSSGB = 1024
	// MaxSpecTenants bounds a multi-tenant spec's tenant list (large
	// sweeps build tenant.Config programmatically; declarative specs
	// stay file-sized).
	MaxSpecTenants = 64
)

// Spec is one declarative scenario. The zero value is invalid; a spec
// round-trips exactly through Encode/Decode (pinned by
// FuzzScenarioSpec).
type Spec struct {
	// Name labels the scenario in results and output file names.
	Name string `json:"name"`
	// Note is free-form documentation; fuzz reproducers carry their
	// originating seed, policy and violation here.
	Note string `json:"note,omitempty"`
	// Faults is a fault-injection plan in tier.ParseFaultSpec's
	// mini-language (e.g. "rate=0.01,throttle=200us/1ms:4x"); empty
	// disables injection. A non-empty plan overrides the harness
	// config's fault schedule for this scenario.
	Faults string `json:"faults,omitempty"`
	// Phases run in order, splitting the run's access budget by Weight.
	// Mutually exclusive with Tenants.
	Phases []Phase `json:"phases,omitempty"`
	// Tenants, when present, makes the scenario multi-tenant: each
	// entry is an independent process with its own phase list and
	// address space, interleaved by internal/tenant's deterministic
	// scheduler against one shared tier set. Mutually exclusive with
	// top-level Phases.
	Tenants []TenantSpec `json:"tenants,omitempty"`
}

// TenantSpec is one tenant of a multi-tenant scenario: its own phase
// program plus the QoS and lifecycle knobs of tenant.Spec. Fractions
// are of the run's global access budget.
type TenantSpec struct {
	// Name labels the tenant's counters and result row (default
	// "t<index>").
	Name string `json:"name,omitempty"`
	// Weight is the fairness share weight (default 1).
	Weight uint64 `json:"weight,omitempty"`
	// FloorBytes is the guaranteed fast-tier floor.
	FloorBytes uint64 `json:"floor_bytes,omitempty"`
	// Phases is this tenant's program, with the same grammar as a
	// single-tenant scenario's phase list.
	Phases []Phase `json:"phases"`

	// SpawnFrac/ExitFrac delay the tenant's start / kill it early;
	// GrowBytes at GrowFrac (freed at ShrinkFrac) models RSS churn —
	// see tenant.Spec.
	SpawnFrac  float64 `json:"spawn_frac,omitempty"`
	ExitFrac   float64 `json:"exit_frac,omitempty"`
	GrowBytes  uint64  `json:"grow_bytes,omitempty"`
	GrowFrac   float64 `json:"grow_frac,omitempty"`
	ShrinkFrac float64 `json:"shrink_frac,omitempty"`
}

// Phase is one step of a scenario: optional churn (Free then Grow,
// applied before any access), then at most one access source — a named
// Table 2 workload, a recorded trace, or a mix over named regions —
// driven for this phase's share of the access budget.
type Phase struct {
	// Name is optional documentation.
	Name string `json:"phase,omitempty"`
	// Weight is this phase's share of the run's access budget relative
	// to the other phases. Omitted (zero) means 1 for a phase with an
	// access source; churn-only phases must leave it zero.
	Weight float64 `json:"weight,omitempty"`

	// Free unmaps named regions grown by earlier phases (RSS shrink).
	// Frees apply before Grow, so a name may be re-grown in the same
	// phase as a fresh reservation.
	Free []string `json:"free,omitempty"`
	// Grow reserves new named regions (RSS growth). Unless SkipInit is
	// set, each page is first-touched sequentially, charged against the
	// run's access budget like any workload init sweep.
	Grow []Region `json:"grow,omitempty"`

	// Workload names a Table 2 generator (see workload.Specs).
	Workload string `json:"workload,omitempty"`
	// RSSGB overrides the workload's paper-scale RSS (workload.NewScaled);
	// only valid with Workload.
	RSSGB float64 `json:"rss_gb,omitempty"`
	// Trace replays a recorded memtis-trace stream from this file path
	// (relative paths resolve against Options.Dir at compile time).
	Trace string `json:"trace,omitempty"`
	// Mix draws accesses from a weighted mix over live named regions.
	Mix []MixEntry `json:"mix,omitempty"`
}

// Region is one named reservation created by a Grow event.
type Region struct {
	Name  string `json:"name"`
	Bytes uint64 `json:"bytes"`
	// SkipInit leaves the region untouched (pages fault in on first
	// steady-state access), modelling lazily-built heaps.
	SkipInit bool `json:"skip_init,omitempty"`
}

// MixEntry is one arm of a phase's access mix, in the mould of
// workload.SyntheticPhase: each access picks an arm with probability
// proportional to Weight, then draws a page index from Dist over the
// named region.
type MixEntry struct {
	Region string `json:"region"`
	// Weight defaults to 1 when omitted.
	Weight int `json:"weight,omitempty"`
	// Dist is "zipf", "uniform" or "seq".
	Dist string `json:"dist"`
	// S is the Zipf exponent (required > 0 for zipf).
	S float64 `json:"s,omitempty"`
	// Scramble scatters hot indexes across the region.
	Scramble bool `json:"scramble,omitempty"`
	// WritePercent of this arm's accesses are stores.
	WritePercent int `json:"write_percent,omitempty"`
}

// source counts the phase's access sources (a valid phase has 0 or 1).
func (p *Phase) sources() int {
	n := 0
	if p.Workload != "" {
		n++
	}
	if p.Trace != "" {
		n++
	}
	if len(p.Mix) > 0 {
		n++
	}
	return n
}

// isSource reports whether the phase consumes access budget.
func (p *Phase) isSource() bool { return p.sources() > 0 }

// effWeight is the phase's effective budget weight: omitted weight on a
// source phase defaults to 1; churn-only phases weigh nothing.
func (p *Phase) effWeight() float64 {
	if !p.isSource() {
		return 0
	}
	if p.Weight == 0 {
		return 1
	}
	return p.Weight
}

// Decode parses a spec from JSON. Decoding is strict: unknown fields
// and trailing data are errors, so a typo'd key fails loudly instead of
// silently configuring nothing.
func Decode(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec")
	}
	return s, nil
}

// DecodeFile reads and parses a spec file.
func DecodeFile(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	s, err := Decode(data)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// Encode renders the canonical form: indented JSON with omitted zero
// fields and a trailing newline. For any valid spec,
// Decode(Encode(spec)) yields a spec that re-encodes byte-identically
// (the FuzzScenarioSpec property).
func (s Spec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Validate checks the spec against the grammar of DESIGN.md §9. It is
// pure — trace files are only checked for a non-empty path here and
// loaded (and size-checked) by Compile.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Name) > 128 {
		return fmt.Errorf("scenario: name longer than 128 bytes")
	}
	if len(s.Note) > 4096 {
		return fmt.Errorf("scenario: note longer than 4096 bytes")
	}
	if s.Faults != "" {
		if _, err := tier.ParseFaultSpec(s.Faults); err != nil {
			return fmt.Errorf("scenario: faults: %w", err)
		}
	}
	if len(s.Tenants) > 0 {
		return s.validateTenants()
	}
	peak, err := validatePhases(s.Phases)
	if err != nil {
		return err
	}
	if peak > MaxTotalBytes {
		return fmt.Errorf("scenario: peak resident estimate %d exceeds %d", peak, MaxTotalBytes)
	}
	return nil
}

// validatePhases checks one phase sequence and returns its peak
// resident estimate (tracked the same way Compile does).
func validatePhases(phases []Phase) (uint64, error) {
	if len(phases) == 0 {
		return 0, fmt.Errorf("scenario: spec needs at least one phase")
	}
	if len(phases) > MaxPhases {
		return 0, fmt.Errorf("scenario: %d phases exceeds %d", len(phases), MaxPhases)
	}
	live := map[string]uint64{} // named region -> bytes
	var running, peak uint64
	sources := 0
	for i := range phases {
		p := &phases[i]
		if err := p.validate(i, live); err != nil {
			return 0, err
		}
		if p.isSource() {
			sources++
		}
		for _, name := range p.Free {
			running -= live[name]
			delete(live, name)
		}
		for _, g := range p.Grow {
			live[g.Name] = g.Bytes
			running += g.Bytes
		}
		if p.Workload != "" {
			spec, err := workload.SpecByName(p.Workload)
			if err != nil {
				return 0, fmt.Errorf("scenario: phase %d: %w", i, err)
			}
			if p.RSSGB > 0 {
				spec.PaperRSSGB = p.RSSGB
			}
			running += spec.RSSBytes()
		}
		if running > peak {
			peak = running
		}
	}
	if sources == 0 {
		return 0, fmt.Errorf("scenario: no phase has an access source")
	}
	return peak, nil
}

// validateTenants checks the multi-tenant form. The rules mirror
// tenant.Config.Validate (which Compile re-runs), plus the scenario
// grammar per tenant phase list — so a validated spec always compiles.
func (s Spec) validateTenants() error {
	if len(s.Phases) > 0 {
		return fmt.Errorf("scenario: top-level phases and tenants are mutually exclusive")
	}
	if len(s.Tenants) > MaxSpecTenants {
		return fmt.Errorf("scenario: %d tenants exceeds %d", len(s.Tenants), MaxSpecTenants)
	}
	immortal := false
	seen := map[string]bool{}
	var peak uint64
	for i := range s.Tenants {
		t := &s.Tenants[i]
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		if len(s.Name)+1+len(name) > 128 {
			return fmt.Errorf("scenario: tenant %d: name %q overflows the 128-byte scenario name budget", i, name)
		}
		if seen[name] {
			return fmt.Errorf("scenario: tenant %d: duplicate name %q", i, name)
		}
		seen[name] = true
		if float64(t.Weight) > MaxWeight {
			return fmt.Errorf("scenario: tenant %d: weight %d exceeds %v", i, t.Weight, float64(MaxWeight))
		}
		if t.FloorBytes > MaxRegionBytes {
			return fmt.Errorf("scenario: tenant %d: floor %d exceeds %d", i, t.FloorBytes, uint64(MaxRegionBytes))
		}
		for _, f := range [...]struct {
			name string
			v    float64
		}{{"spawn_frac", t.SpawnFrac}, {"exit_frac", t.ExitFrac}, {"grow_frac", t.GrowFrac}, {"shrink_frac", t.ShrinkFrac}} {
			if !isFinite(f.v) || f.v < 0 || f.v > 1 {
				return fmt.Errorf("scenario: tenant %d: %s %v outside [0,1]", i, f.name, f.v)
			}
		}
		if t.ExitFrac > 0 && t.SpawnFrac >= t.ExitFrac {
			return fmt.Errorf("scenario: tenant %d: spawns at %v, at or after its exit %v", i, t.SpawnFrac, t.ExitFrac)
		}
		if t.GrowBytes > MaxRegionBytes {
			return fmt.Errorf("scenario: tenant %d: grow bytes %d exceeds %d", i, t.GrowBytes, uint64(MaxRegionBytes))
		}
		if t.GrowBytes == 0 && (t.GrowFrac != 0 || t.ShrinkFrac != 0) {
			return fmt.Errorf("scenario: tenant %d: grow/shrink fractions without grow bytes", i)
		}
		if t.GrowBytes > 0 && t.ShrinkFrac > 0 && t.ShrinkFrac <= t.GrowFrac {
			return fmt.Errorf("scenario: tenant %d: shrinks at %v, at or before its grow %v", i, t.ShrinkFrac, t.GrowFrac)
		}
		if t.ExitFrac == 0 {
			immortal = true
		}
		tpeak, err := validatePhases(t.Phases)
		if err != nil {
			return fmt.Errorf("scenario: tenant %d (%s): %s", i, name,
				strings.TrimPrefix(err.Error(), "scenario: "))
		}
		peak += tpeak + t.GrowBytes
	}
	if !immortal {
		return fmt.Errorf("scenario: every tenant exits; at least one must run to the end")
	}
	if peak > MaxTotalBytes {
		return fmt.Errorf("scenario: peak resident estimate %d exceeds %d", peak, MaxTotalBytes)
	}
	return nil
}

// validate checks one phase against the regions live when it starts,
// and leaves live untouched (the caller applies churn after).
func (p *Phase) validate(i int, live map[string]uint64) error {
	if len(p.Name) > 128 {
		return fmt.Errorf("scenario: phase %d: name longer than 128 bytes", i)
	}
	if !isFinite(p.Weight) || p.Weight < 0 || p.Weight > MaxWeight {
		return fmt.Errorf("scenario: phase %d: weight %v outside [0,%v]", i, p.Weight, float64(MaxWeight))
	}
	if n := p.sources(); n > 1 {
		return fmt.Errorf("scenario: phase %d: %d access sources (want at most one of workload, trace, mix)", i, n)
	}
	if !p.isSource() && p.Weight != 0 {
		return fmt.Errorf("scenario: phase %d: churn-only phase has weight %v (budget would never drain)", i, p.Weight)
	}
	if p.RSSGB != 0 {
		if p.Workload == "" {
			return fmt.Errorf("scenario: phase %d: rss_gb without a workload", i)
		}
		if !isFinite(p.RSSGB) || p.RSSGB <= 0 || p.RSSGB > MaxRSSGB {
			return fmt.Errorf("scenario: phase %d: rss_gb %v outside (0,%d]", i, p.RSSGB, MaxRSSGB)
		}
	}
	// Frees come first and must name distinct live regions.
	freed := map[string]bool{}
	for _, name := range p.Free {
		if _, ok := live[name]; !ok {
			return fmt.Errorf("scenario: phase %d: free of %q, which is not a live region", i, name)
		}
		if freed[name] {
			return fmt.Errorf("scenario: phase %d: region %q freed twice", i, name)
		}
		freed[name] = true
	}
	// Grows may reuse a just-freed name but not a live one.
	grown := map[string]bool{}
	for _, g := range p.Grow {
		if g.Name == "" {
			return fmt.Errorf("scenario: phase %d: grow with empty region name", i)
		}
		if len(g.Name) > 64 {
			return fmt.Errorf("scenario: phase %d: region name longer than 64 bytes", i)
		}
		if _, ok := live[g.Name]; ok && !freed[g.Name] {
			return fmt.Errorf("scenario: phase %d: grow of %q, which is already live", i, g.Name)
		}
		if grown[g.Name] {
			return fmt.Errorf("scenario: phase %d: region %q grown twice", i, g.Name)
		}
		grown[g.Name] = true
		if g.Bytes == 0 || g.Bytes > MaxRegionBytes {
			return fmt.Errorf("scenario: phase %d: region %q bytes %d outside [1,%d]", i, g.Name, g.Bytes, uint64(MaxRegionBytes))
		}
	}
	if len(p.Mix) > MaxMixEntries {
		return fmt.Errorf("scenario: phase %d: %d mix entries exceeds %d", i, len(p.Mix), MaxMixEntries)
	}
	for j, e := range p.Mix {
		// A mix may reference regions grown in this phase (churn applies
		// before accesses) as well as anything still live.
		_, wasLive := live[e.Region]
		if (!wasLive || freed[e.Region]) && !grown[e.Region] {
			return fmt.Errorf("scenario: phase %d mix %d: region %q is not live", i, j, e.Region)
		}
		if e.Weight < 0 || e.Weight > int(MaxWeight) {
			return fmt.Errorf("scenario: phase %d mix %d: weight %d outside [0,%d]", i, j, e.Weight, int(MaxWeight))
		}
		switch e.Dist {
		case "zipf":
			if !isFinite(e.S) || e.S <= 0 || e.S > 64 {
				return fmt.Errorf("scenario: phase %d mix %d: zipf exponent %v outside (0,64]", i, j, e.S)
			}
		case "uniform", "seq":
			if e.S != 0 {
				return fmt.Errorf("scenario: phase %d mix %d: s is only valid for zipf", i, j)
			}
		default:
			return fmt.Errorf("scenario: phase %d mix %d: unknown distribution %q", i, j, e.Dist)
		}
		if e.WritePercent < 0 || e.WritePercent > 100 {
			return fmt.Errorf("scenario: phase %d mix %d: write percent %d outside [0,100]", i, j, e.WritePercent)
		}
	}
	if p.Trace != "" && len(p.Trace) > 4096 {
		return fmt.Errorf("scenario: phase %d: trace path longer than 4096 bytes", i)
	}
	return nil
}

// FaultConfig returns the parsed fault plan (the zero config when the
// spec carries none). The spec must have validated.
func (s Spec) FaultConfig() tier.FaultConfig {
	fc, err := tier.ParseFaultSpec(s.Faults)
	if err != nil {
		panic(fmt.Sprintf("scenario: FaultConfig on unvalidated spec: %v", err))
	}
	return fc
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// splitmix64 is the SplitMix64 finalizer — the same seed-derivation
// discipline as bench.CellSeed and tier's fault plans, copied rather
// than imported to keep this package free of harness dependencies.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnv1a hashes a name for seed derivation (FNV-1a 64-bit).
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
