// The tenant sweep: a (tenant count x share skew x churn rate) x
// policy matrix quantifying multi-tenancy overhead and fairness cost
// (DESIGN.md §10). Every cell is normalised to the *same policy's*
// single-tenant run, so the sweep isolates the price of contention and
// arbitration from baseline placement quality.
package bench

import (
	"context"
	"fmt"
	"os"
	"sync"

	"memtis/internal/fastmod"
	"memtis/internal/sim"
	"memtis/internal/tenant"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// TenantLoad is the sweep's per-tenant synthetic workload: an 80/20
// hot/cold mix over the tenant's own region, driven by a SplitMix64
// counter stream seeded from the machine seed and the tenant name.
// It is stateless across runs (all run state is local to Run), so one
// value is safely shared by parallel cells, and under the tenant
// scheduler its per-space access budget makes every tenant run until
// the global budget is spent.
type TenantLoad struct {
	name  string
	bytes uint64
}

// NewTenantLoad builds a tenant workload over a region of the given
// size (rounded up to one base page).
func NewTenantLoad(name string, bytes uint64) *TenantLoad {
	if bytes < tier.BasePageSize {
		bytes = tier.BasePageSize
	}
	return &TenantLoad{name: name, bytes: bytes}
}

// Name identifies the workload in tables and traces.
func (t *TenantLoad) Name() string { return t.name }

// RSSBytes reports the region the workload reserves on first schedule.
func (t *TenantLoad) RSSBytes() uint64 { return t.bytes }

// Run drives the 90/10 skewed access loop over the tenant's region.
func (t *TenantLoad) Run(m *sim.Machine, accesses uint64) {
	s := t.Stream(workload.Env{Reserve: m.Reserve, Seed: m.Cfg.Seed})
	for m.Accesses() < accesses {
		m.Access(s.Step())
	}
}

// Stream implements workload.Streamer: the reservation and the exact
// SplitMix64 access stream of Run in resumable stepper form, so the
// tenant scheduler drives the load inline (and the sharded tenant
// driver replays it lane-side) with no goroutine parked per tenant.
func (t *TenantLoad) Stream(env workload.Env) workload.Stream {
	r := env.Reserve(t.bytes)
	hot := r.Pages / 8
	if hot == 0 {
		hot = 1
	}
	base := splitmix64(uint64(env.Seed) ^ fnv1a(t.name))
	// Reciprocal remainders (exact, see internal/fastmod): the two span
	// reductions are the only hardware divides left on the stepper path.
	hotM, fullM := fastmod.New(hot), fastmod.New(r.Pages)
	spans := [2]fastmod.M{hotM, fullM}
	var ctr uint64
	return workload.Stream{
		Step: func() (uint64, bool) {
			ctr++
			x := splitmix64(base + ctr)
			span := hotM
			if x%5 == 4 { // 20% of probes roam the full region
				span = fullM
			}
			return r.BaseVPN + span.Mod(x>>8), x&7 == 0
		},
		// Fill is Step's arithmetic unrolled over a batch (one closure
		// call and counter write-back per slice batch, not per access),
		// with the span picked by index so the 20% roam case is a
		// predicate, not a mispredicted branch.
		Fill: func(dst []sim.Op) {
			c := ctr
			for i := range dst {
				c++
				x := splitmix64(base + c)
				k := 0
				if x%5 == 4 {
					k = 1
				}
				dst[i].VPN, dst[i].Write = r.BaseVPN+spans[k].Mod(x>>8), x&7 == 0
			}
			ctr = c
		},
	}
}

// TenantPoint is one sweep coordinate: how many tenants contend, how
// their promotion weights are skewed, and what fraction of them churn
// (spawn late, exit early) during the run.
type TenantPoint struct {
	Tenants   int
	Skew      string  // "flat" (all weight 1) or "8to1" (tenant 0 gets 8x)
	ChurnFrac float64 // fraction of tenants 1..n-1 that spawn/exit mid-run
}

// DefaultTenantPoints is the standard sweep: the single-tenant
// reference plus count x skew x churn combinations small enough for CI.
var DefaultTenantPoints = []TenantPoint{
	{Tenants: 1, Skew: "flat"},
	{Tenants: 4, Skew: "flat"},
	{Tenants: 4, Skew: "8to1"},
	{Tenants: 4, Skew: "flat", ChurnFrac: 0.5},
	{Tenants: 16, Skew: "flat"},
	{Tenants: 16, Skew: "8to1"},
	{Tenants: 16, Skew: "8to1", ChurnFrac: 0.5},
	{Tenants: 64, Skew: "flat"},
	{Tenants: 64, Skew: "8to1", ChurnFrac: 0.5},
}

// tenantCoord spells one sweep cell's ratio coordinate. The point is
// folded into the coordinate so CellSeed gives every (point, policy)
// cell an independent, worker-count-invariant stream.
func tenantCoord(rt Ratio, p TenantPoint) string {
	return fmt.Sprintf("%s+t%d+%s+c%d", rt.Name, p.Tenants, p.Skew, int(p.ChurnFrac*100+0.5))
}

// TenantMix builds the sweep's tenant configuration for a point: n
// tenants each driving a TenantLoad over perTenantBytes of its own
// address space. Skew "8to1" gives tenant 0 weight 8 (everyone else 1);
// a ChurnFrac of the tenants after the first spawn at 10% and exit at
// 70% of the run. Large mixes get a smaller scheduling slice so the
// budget still spreads across every tenant. Returns the config and the
// mix's combined resident footprint.
func TenantMix(p TenantPoint, perTenantBytes uint64) (tenant.Config, uint64) {
	specs := make([]tenant.Spec, p.Tenants)
	churn := int(p.ChurnFrac * float64(p.Tenants))
	var rss uint64
	for i := range specs {
		name := fmt.Sprintf("t%03d", i)
		specs[i] = tenant.Spec{
			Name:     name,
			Weight:   1,
			Workload: NewTenantLoad(name, perTenantBytes),
		}
		if p.Skew == "8to1" && i == 0 {
			specs[i].Weight = 8
		}
		if i >= 1 && i <= churn {
			specs[i].SpawnFrac = 0.1
			specs[i].ExitFrac = 0.7
		}
		rss += perTenantBytes
	}
	// Slice stays 0: tenant.AutoSlice scales the quantum down for
	// large mixes so the budget still spreads across every tenant.
	return tenant.Config{Tenants: specs}, rss
}

// tenantSweepBytes sizes the per-tenant region so the whole mix stays
// near a fixed total footprint: contention pressure comes from the
// tenant count, not from an ever-growing machine.
func tenantSweepBytes(n int) uint64 {
	const total = 64 << 20
	per := uint64(total / n)
	if per < 1<<20 {
		per = 1 << 20
	}
	return per
}

// RunTenants executes one (tenant mix, policy, ratio) cell: machine
// sized from the mix's combined footprint exactly like MachineFor,
// driven by the tenant scheduler to the full access budget.
func RunTenants(tn *tenant.Runner, rss uint64, polName string, rt Ratio, cfg Config) sim.Result {
	fast := uint64(float64(rss) * rt.FastFrac)
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	mc := sim.Config{
		FastBytes: fast,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   cfg.CapKind,
		THP:       true,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		RecordNS:  cfg.RecordNS,
		Trace:     cfg.Trace,
		Faults:    cfg.Faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
	return sim.Run(mc, NewPolicy(polName), tn, cfg.Accesses)
}

// RunTenantsSharded executes one tenant cell on an S-shard machine:
// fast-tier sizing and seeding identical to RunTenants, but whole
// tenants route across the shards (tenant.Runner.RunSharded) with one
// fresh policy instance per shard. The capacity tier is provisioned
// per shard at the full mix footprint: tenant routing places whole
// address spaces, so a shard can end up hosting most of the mix (the
// single-tenant reference puts everything on shard 0) and an evenly
// divided capacity tier would run out of memory. Oversizing capacity
// does not disturb the experiment — fast-tier contention is the
// measured resource, and the unsharded capacity tier never fills
// either. Trace and Topology are unsupported on sharded machines —
// per-shard traces come from tenant.ShardedConfig.TraceFor, which
// callers needing events must use directly.
func RunTenantsSharded(tn *tenant.Runner, rss uint64, polName string, rt Ratio, cfg Config, shards int) (*tenant.ShardedResult, error) {
	fast := uint64(float64(rss) * rt.FastFrac)
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	return tn.RunSharded(tenant.ShardedConfig{
		Shards: shards,
		Machine: sim.Config{
			FastBytes: fast,
			CapBytes:  uint64(shards) * (rss + rss/4 + 16*tier.HugePageSize),
			CapKind:   cfg.CapKind,
			THP:       true,
			Threads:   cfg.Threads,
			Seed:      cfg.Seed,
			RecordNS:  cfg.RecordNS,
			Faults:    cfg.Faults,
			Admission: cfg.Admission,
			Mover:     cfg.Mover,
		},
		PolicyFor: func(int) sim.Policy { return NewPolicy(polName) },
	}, cfg.Accesses)
}

// TenantSweep runs every policy at every tenant point on one tiering
// ratio. Points always include the single-tenant reference (prepended
// when missing); each cell's Value is its throughput normalised to the
// same policy's single-tenant run, so a value of 0.8 reads "this
// policy loses 20% throughput under this degree of multi-tenancy".
// With cfg.Shards > 1 every cell (including the single-tenant
// reference) runs on an S-shard machine via RunTenantsSharded and
// records the aggregate view, so sharded and unsharded sweeps stay
// comparable cell for cell.
func (r *Runner) TenantSweep(ctx context.Context, cfg Config, rt Ratio, pols []string, points []TenantPoint) (*Matrix, error) {
	if pols == nil {
		pols = Policies
	}
	if points == nil {
		points = DefaultTenantPoints
	}
	if points[0].Tenants != 1 {
		points = append([]TenantPoint{{Tenants: 1, Skew: "flat"}}, points...)
	}
	if cfg.Shards > 1 && cfg.EventDir != "" {
		return nil, fmt.Errorf("bench: tenant sweep: Shards and EventDir conflict — a sharded cell traces per shard, not per cell")
	}
	if cfg.EventDir != "" {
		if err := os.MkdirAll(cfg.EventDir, 0o755); err != nil {
			return nil, err
		}
	}
	var (
		failMu sync.Mutex
		failed error
	)
	fail := func(err error) {
		failMu.Lock()
		if failed == nil {
			failed = err
		}
		failMu.Unlock()
	}
	// One immutable runner per point, shared by that point's policy
	// cells (all run state is per-Run).
	runners := make([]*tenant.Runner, len(points))
	rsses := make([]uint64, len(points))
	for i, pt := range points {
		tc, rss := TenantMix(pt, tenantSweepBytes(pt.Tenants))
		tn, err := tenant.New(tc)
		if err != nil {
			return nil, fmt.Errorf("bench: tenant sweep point %+v: %w", pt, err)
		}
		runners[i], rsses[i] = tn, rss
	}
	const wname = "tenants"
	results := make([]sim.Result, len(points)*len(pols))
	var tasks []cellTask
	for ti, pt := range points {
		for pi, p := range pols {
			ti, pi, p := ti, pi, p
			slot := ti*len(pols) + pi
			coord := tenantCoord(rt, pt)
			tasks = append(tasks, cellTask{
				label: fmt.Sprintf("%s/%s/%s", wname, coord, p),
				run: func() uint64 {
					ccfg := CellConfig(cfg, wname, coord, p)
					closeTrace, err := cellTrace(cfg.EventDir, wname, coord, p, &ccfg)
					if err != nil {
						fail(err)
						return 0
					}
					if cfg.Shards > 1 {
						sr, err := RunTenantsSharded(runners[ti], rsses[ti], p, rt, ccfg, cfg.Shards)
						if err != nil {
							fail(fmt.Errorf("bench: sharded tenant cell %s/%s: %w", coord, p, err))
							return 0
						}
						results[slot] = sr.Aggregate
					} else {
						results[slot] = RunTenants(runners[ti], rsses[ti], p, rt, ccfg)
					}
					if err := closeTrace(); err != nil {
						fail(err)
					}
					return results[slot].AppNS
				},
			})
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, fmt.Errorf("bench: writing event traces: %w", failed)
	}
	m := &Matrix{}
	for ti, pt := range points {
		for pi, p := range pols {
			res := results[ti*len(pols)+pi]
			base := results[pi] // points[0].Tenants == 1: the reference row
			m.Cells = append(m.Cells, Cell{
				Workload: wname, Ratio: tenantCoord(rt, pt), Policy: p,
				Value: Norm(res, base), Result: res,
			})
		}
	}
	return m, nil
}

// TenantSweepTable renders a tenant sweep as a point x policy table
// (the EXPERIMENTS.md "Tenant sweep" presentation): rows are sweep
// points, values are throughput relative to that policy's
// single-tenant run.
func TenantSweepTable(title string, m *Matrix, rt Ratio, pols []string, points []TenantPoint) Table {
	if pols == nil {
		pols = Policies
	}
	if points == nil {
		points = DefaultTenantPoints
	}
	t := Table{Title: title, Header: append([]string{"tenants"}, pols...)}
	for _, pt := range points {
		label := fmt.Sprintf("%d %s", pt.Tenants, pt.Skew)
		if pt.ChurnFrac > 0 {
			label += fmt.Sprintf(" churn=%d%%", int(pt.ChurnFrac*100+0.5))
		}
		row := []interface{}{label}
		for _, p := range pols {
			v, _ := m.Get("tenants", tenantCoord(rt, pt), p)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}
