# CI / developer entry points. `make check` is the tier-1 gate;
# `make race` is the short-budget race smoke over the concurrency
# surface (parallel experiment runner, per-machine independence audit,
# codec and sampler tests).

GO ?= go

.PHONY: check fmt vet build docs test race fuzz bench benchdry figures clean

check: fmt vet build docs test

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Includes the deterministic 10-scenario conformance smoke sweep
# (TestScenarioSmokeSweep in internal/bench).
test:
	$(GO) test ./...

# Documentation floor: every package must carry a package doc comment,
# every exported type/function/method under internal/ its own doc
# comment, and every relative link or anchor in the markdown docs must
# resolve (see cmd/doclint). Fails check when either floor is broken.
docs:
	$(GO) run ./cmd/doclint ./internal ./cmd ./examples
	$(GO) run ./cmd/doclint -md README.md DESIGN.md EXPERIMENTS.md docs

# Race smoke: the parallel-runner determinism regression, the
# per-machine shared-state audit, the VPN-sharded machine's
# seq≡parallel byte-identity (its private-state-per-worker claim is
# exactly what -race checks), the tenant-sharded run's byte-identity
# (whole tenants routed across shards, DESIGN.md §13), the codec/dist
# suites, and the multi-tenant scheduler (whole package: the inline
# scheduler runs on one goroutine and the baton fallback claims
# exactly one runnable goroutine, both of which -race checks), all
# with CI-sized budgets.
race:
	$(GO) test -race -run 'TestRunMatrixDeterminism|TestRunnerCancellation|TestRunnerProgress|TestEventTraceGolden|TestMachinesAreIndependent|TestDistinctPoliciesShareNothing|TestScenarioMatrixDeterminism|TestTenantTraceDeterminism|TestShardedSeqParallelIdentical|TestShardedOneShardMatchesMachine|TestShardedTenantsSeqParallelIdentical' ./internal/bench ./internal/sim
	$(GO) test -race -run 'TestSharedRunnerParallelDeterminism' ./internal/scenario
	$(GO) test -race ./internal/trace ./internal/dist ./internal/obs ./internal/tenant

# Replayed continuously by `go test`; this explores beyond the seed
# corpus for a bounded time per target.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzReaderNext -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -fuzz=FuzzDecoder -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -fuzz=FuzzEventRoundTrip -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -fuzz='^FuzzFaultSpec$$' -fuzztime=$(FUZZTIME) ./internal/tier
	$(GO) test -fuzz='^FuzzTopologySpec$$' -fuzztime=$(FUZZTIME) ./internal/tier
	$(GO) test -fuzz='^FuzzScenarioSpec$$' -fuzztime=$(FUZZTIME) ./internal/scenario
	$(GO) test -fuzz='^FuzzScenarioConformance$$' -fuzztime=$(FUZZTIME) ./internal/scenario

# Continuous benchmarking: run the hot-loop benchmark suite, write a
# schema-stable BENCH_<n>.json snapshot, and compare against the
# previous one (see cmd/benchreport -h for the gate flags). BENCHTIME
# trades precision for wall time; CI uses 1x as an execution smoke.
BENCHTIME ?= 300ms
BENCHCOUNT ?= 3
bench:
	$(GO) run ./cmd/benchreport -benchtime $(BENCHTIME) -count $(BENCHCOUNT)

# Dry variant: measure and compare, write nothing.
benchdry:
	$(GO) run ./cmd/benchreport -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -dry

figures:
	$(GO) run ./cmd/paperfigs -accesses 4000000 -out results

clean:
	rm -rf results
