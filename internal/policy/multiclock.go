package policy

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// MultiClock models Maruf et al.'s MULTI-CLOCK (HPCA'22): page-table
// scanning feeds per-tier CLOCK lists, a page is promoted once its
// reference counter reaches the static threshold of two (recency +
// frequency), and demotion takes CLOCK victims whose reference bits
// have aged out. All migrations run in the background (Table 1:
// critical path "None"). Like Nimble it inherits PT scanning's
// scalability ceiling: the scan interval stretches with the resident
// set.
type MultiClock struct {
	Base
	scanEveryNS uint64
	lastScan    uint64
	promo       []*vm.Page
	hand        int
	reserve     float64
}

var _ sim.Policy = (*MultiClock)(nil)

// NewMultiClock returns the MULTI-CLOCK baseline.
func NewMultiClock() *MultiClock {
	return &MultiClock{scanEveryNS: 5_000_000, reserve: 0.02}
}

// Name implements sim.Policy.
func (c *MultiClock) Name() string { return "multi-clock" }

// OnAccess implements sim.Policy: the MMU sets the accessed bit; no
// critical-path work.
func (c *MultiClock) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	if tr.Faulted {
		c.Register(tr.Page)
		tr.Page.P0 = 0
	}
	tr.Page.PFlags |= flagAccessed
	return 0
}

// Tick implements sim.Policy: harvest accessed bits into 2-bit
// reference counters, collect promotion candidates at the threshold of
// two, and run the background migration pass.
func (c *MultiClock) Tick(now uint64) {
	minInterval := uint64(len(c.Registry)) * ScanPageNS * 3 / 2
	interval := c.scanEveryNS
	if minInterval > interval {
		interval = minInterval
	}
	if now-c.lastScan < interval {
		return
	}
	c.lastScan = now
	c.Compact()
	for _, pg := range c.Registry {
		if pg.PFlags&flagAccessed != 0 {
			pg.PFlags &^= flagAccessed
			if pg.P0 < 3 {
				pg.P0++
			}
			if pg.Tier != tier.FastTier && pg.P0 >= 2 && pg.PFlags&flagQueued == 0 {
				pg.PFlags |= flagQueued
				c.promo = append(c.promo, pg)
			}
		} else if pg.P0 > 0 {
			pg.P0-- // age the reference counter
		}
	}
	c.BgNS += uint64(len(c.Registry)) * ScanPageNS
	c.migrate()
}

// migrate promotes threshold-crossers, demoting aged CLOCK victims to
// make room, bounded per scan cycle.
func (c *MultiClock) migrate() {
	budget := uint64(8 << 20)
	for len(c.promo) > 0 && budget > 0 {
		pg := c.promo[0]
		if pg.Dead() || pg.Tier == tier.FastTier || pg.P0 < 2 {
			pg.PFlags &^= flagQueued
			c.promo = c.promo[1:]
			continue
		}
		if !c.M.AS.CanMigrate(pg, tier.FastTier) {
			if !c.demoteOne() {
				break
			}
			continue
		}
		if pg.Bytes() > budget {
			break
		}
		c.promo = c.promo[1:]
		pg.PFlags &^= flagQueued
		if c.MigrateAsync(pg, tier.FastTier) {
			budget -= pg.Bytes()
		}
	}
	reserve := c.HeadroomFrames(c.reserve)
	for c.M.Fast.FreeFrames() < reserve && budget > 0 {
		if !c.demoteOne() {
			return
		}
	}
}

// demoteOne evicts the next fast-tier page whose reference counter has
// aged to zero (CLOCK second chance: non-zero counters are decremented
// and skipped).
func (c *MultiClock) demoteOne() bool {
	if len(c.Registry) == 0 {
		return false
	}
	for tries := 2 * len(c.Registry); tries > 0; tries-- {
		if c.hand >= len(c.Registry) {
			c.hand = 0
		}
		pg := c.Registry[c.hand]
		c.hand++
		if pg.Dead() || pg.Tier != tier.FastTier {
			continue
		}
		if pg.P0 > 0 {
			pg.P0--
			continue
		}
		return c.MigrateAsync(pg, c.M.DemoteTarget(pg.Tier))
	}
	return false
}
