package policy

import (
	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// HeMem models Raybuck et al.'s HeMem (SOSP'21): a user-level library
// that samples memory accesses with PEBS from a dedicated spinning
// thread, classifies pages against static thresholds (hot when the
// sampled access count reaches HotThresh; whenever any page reaches
// CoolThresh every counter is halved), migrates asynchronously, and
// always serves small (non-huge) allocations from the fast tier — the
// over-allocation the paper quantifies in Table 3. Its pathologies in
// Figure 2 come straight from the static thresholds: the classified hot
// set bears no relation to the fast tier's size.
type HeMem struct {
	Base
	smp *pebs.Sampler

	// HotThresh and CoolThresh are HeMem's static sample-count
	// thresholds (its defaults are 4 and 18).
	HotThresh  uint64
	CoolThresh uint64

	hotBytes uint64 // classified-hot bytes, maintained incrementally
	promo    []*vm.Page
	hand     int
	reserve  float64

	overAllocBytes *uint64 // registry counter, bound at Attach
	coolings       *uint64
	nextWake       uint64
	wakeEvery      uint64
}

var _ sim.Policy = (*HeMem)(nil)
var _ sim.HotSetReporter = (*HeMem)(nil)

// NewHeMem returns the HeMem baseline.
func NewHeMem() *HeMem {
	return &HeMem{HotThresh: 4, CoolThresh: 18, reserve: 0.02, wakeEvery: 1_000_000}
}

// Name implements sim.Policy.
func (h *HeMem) Name() string { return "hemem" }

// Attach implements sim.Policy.
func (h *HeMem) Attach(m *sim.Machine) {
	h.Base.Attach(m)
	// HeMem polls PEBS buffers from a spinning thread; its sampling
	// period is fixed (no feedback controller). Same scaled period as
	// MEMTIS's initial one so both see comparable sample streams.
	h.smp = pebs.NewSampler(pebs.Config{
		LoadPeriod:  20,
		StorePeriod: 10_000,
		MinPeriod:   20,
		MaxPeriod:   20,
		CostNS:      160,
	})
	h.nextWake = h.wakeEvery
	h.smp.Trace = m.Cfg.Trace
	g := h.Counters()
	h.overAllocBytes = g.Counter("overalloc_bytes")
	h.coolings = g.Counter("coolings")
}

// BusyCores implements sim.Policy: the polling thread spins on a core
// (§6.2.1 observes ~100% CPU usage for HeMem's sampling thread).
func (h *HeMem) BusyCores() float64 { return 1.0 }

// OverAllocBytes reports fast-tier bytes consumed by small allocations
// (Table 3).
func (h *HeMem) OverAllocBytes() uint64 {
	if h.overAllocBytes == nil {
		return 0
	}
	return *h.overAllocBytes
}

// PlaceNew implements sim.Policy: small allocations (anything not
// THP-backed) always go to the fast tier.
func (h *HeMem) PlaceNew(huge bool, vpn uint64) tier.ID {
	if !huge && h.M.Fast.FreeFrames() > 0 {
		*h.overAllocBytes += tier.BasePageSize
		return tier.FastTier
	}
	return tier.NoTier
}

// HotSet implements sim.HotSetReporter for Figure 2.
func (h *HeMem) HotSet() (hot, warm, cold uint64) {
	rss := h.M.AS.RSSBytes()
	if h.hotBytes > rss {
		return rss, 0, 0
	}
	return h.hotBytes, 0, rss - h.hotBytes
}

// OnAccess implements sim.Policy.
func (h *HeMem) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	pg := tr.Page
	if tr.Faulted {
		h.Register(pg)
	}
	if _, ok := h.smp.Feed(vpn, write); ok {
		h.sample(pg)
	}
	return 0
}

func (h *HeMem) sample(pg *vm.Page) {
	if pg.Dead() {
		return
	}
	pg.Count++
	if pg.Count == h.HotThresh {
		h.hotBytes += pg.Bytes()
		if pg.Tier != tier.FastTier && pg.PFlags&flagQueued == 0 {
			pg.PFlags |= flagQueued
			h.promo = append(h.promo, pg)
		}
	}
	if pg.Count >= h.CoolThresh {
		h.coolAll()
	}
}

// coolAll halves every page's counter — HeMem's global cooling, which
// fires whenever any single page saturates.
func (h *HeMem) coolAll() {
	*h.coolings++
	h.Trace().Emit(obs.EvCooling, 0, false, 0, uint64(len(h.Registry)))
	h.hotBytes = 0
	for _, pg := range h.Registry {
		if pg.Dead() {
			continue
		}
		pg.Count /= 2
		if pg.Count >= h.HotThresh {
			h.hotBytes += pg.Bytes()
		}
	}
	h.BgNS += uint64(len(h.Registry)) * 30
}

// Tick implements sim.Policy: the background migration thread.
func (h *HeMem) Tick(now uint64) {
	if now < h.nextWake {
		return
	}
	for h.nextWake <= now {
		h.nextWake += h.wakeEvery
	}
	// Anti-thrashing: freeze migration when the classified hot set
	// exceeds the fast tier.
	if h.hotBytes > h.M.Fast.CapacityBytes() {
		return
	}
	budget := uint64(8 << 20)
	// Promote classified-hot pages.
	for len(h.promo) > 0 && budget > 0 {
		pg := h.promo[0]
		if pg.Dead() || pg.Tier == tier.FastTier || pg.Count < h.HotThresh {
			pg.PFlags &^= flagQueued
			h.promo = h.promo[1:]
			continue
		}
		if !h.M.AS.CanMigrate(pg, tier.FastTier) {
			if !h.demoteOne() {
				break
			}
			continue
		}
		if pg.Bytes() > budget {
			break
		}
		h.promo = h.promo[1:]
		pg.PFlags &^= flagQueued
		if h.MigrateAsync(pg, tier.FastTier) {
			budget -= pg.Bytes()
		}
	}
	// Maintain a little head-room.
	reserve := h.FastReserveFrames(h.reserve)
	for h.M.Fast.FreeFrames() < reserve {
		if !h.demoteOne() {
			break
		}
	}
}

// demoteOne evicts one cold fast-tier page (count below HotThresh).
func (h *HeMem) demoteOne() bool {
	if len(h.Registry) == 0 {
		return false
	}
	for i := 0; i < len(h.Registry); i++ {
		if h.hand >= len(h.Registry) {
			h.hand = 0
			h.Compact()
			if len(h.Registry) == 0 {
				return false
			}
		}
		pg := h.Registry[h.hand]
		h.hand++
		if pg.Dead() || pg.Tier != tier.FastTier || pg.Count >= h.HotThresh {
			continue
		}
		return h.MigrateAsync(pg, h.M.DemoteTarget(pg.Tier))
	}
	return false
}
