package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	memtis "memtis/internal/core"
	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/sim"
	"memtis/internal/tenant"
)

// The tenant scheduler equivalence suite pins the baton-to-inline
// scheduler rewrite (DESIGN.md §13): the golden hashes in
// testdata/tenant_equiv.json were generated from the historical
// goroutine-baton scheduler, and the inline scheduler must reproduce
// them bit for bit — same event traces (tenant_spawn/switch/exit,
// promotions, faults), same counters, same per-tenant result rows,
// same virtual clock — across tenant counts, churn plans, floors,
// fault injection, and a mix of streaming and raw-Run workloads (the
// latter exercising the goroutine fallback the inline scheduler keeps
// for workloads that cannot be suspended without a stack).
//
// Regenerate with TENANT_EQUIV_REWRITE=1 only when a change is *meant*
// to alter simulated multi-tenant behaviour; a scheduler-machinery
// change must never need it.

// tenantEquivCell is one golden entry.
type tenantEquivCell struct {
	TraceSHA    string `json:"trace_sha"`
	CountersSHA string `json:"counters_sha"`
	TenantsSHA  string `json:"tenants_sha"`
	Accesses    uint64 `json:"accesses"`
	AppNS       uint64 `json:"app_ns"`
	Migrations  uint64 `json:"migrations_4k"`
	RSSFinal    uint64 `json:"rss_final"`
}

// tenantEquivSpecs builds the cell's tenant mix: a floored, weighted
// immortal first tenant plus churning neighbours covering spawn, grow,
// shrink and exit, over TenantLoad streams. When hammer is set, the
// second tenant runs the raw zipfHammer workload instead — a plain
// Run-loop sim.Workload with no stepper form, pinning the scheduler
// path that cannot inline the tenant.
func tenantEquivSpecs(n int, hammer bool) ([]tenant.Spec, uint64) {
	per := tenantSweepBytes(n)
	specs := make([]tenant.Spec, n)
	var rss uint64
	for i := range specs {
		name := fmt.Sprintf("t%03d", i)
		specs[i] = tenant.Spec{
			Name:     name,
			Weight:   1,
			Workload: NewTenantLoad(name, per),
		}
		rss += per
		switch {
		case i == 0:
			specs[i].Weight = 8
			specs[i].FloorBytes = 2 << 20
		case i == 1 && hammer:
			specs[i].Workload = zipfHammer{}
			specs[i].SpawnFrac = 0.2
			specs[i].ExitFrac = 0.8
			rss += 48 << 20
		case i%2 == 1:
			specs[i].SpawnFrac = 0.1
			specs[i].ExitFrac = 0.7
		case i%4 == 2:
			specs[i].GrowBytes = 1 << 20
			specs[i].GrowFrac = 0.3
			specs[i].ShrinkFrac = 0.6
		}
	}
	return specs, rss
}

// runTenantEquivCell executes one cell and returns its golden entry.
func runTenantEquivCell(n int, seed int64, faultPpm uint32, dense, hammer bool) tenantEquivCell {
	specs, rss := tenantEquivSpecs(n, hammer)
	tn, err := tenant.New(tenant.Config{Tenants: specs, Slice: 4096})
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	mc := tenantMachine(rss, Ratio1to8, seed, faultPpm)
	mc.Trace = obs.NewTracer(sink)
	smp := pebs.DefaultConfig()
	if dense {
		// Dense fixed-period sampling exercises the full OnAccess path
		// heavily; the default self-adjusting config leaves most
		// accesses to the sampler-bypass fast path. The suite pins both.
		smp.LoadPeriod, smp.MinPeriod, smp.MaxPeriod = 8, 8, 8
	}
	pol := memtis.New(memtis.Config{Sampler: smp})
	m := sim.NewMachine(mc, pol)
	tn.Run(m, 150_000)
	res := m.Finish(tn.Name())
	if err := sink.Flush(); err != nil {
		panic(err)
	}
	ts := sha256.Sum256(buf.Bytes())
	var cb bytes.Buffer
	for _, c := range res.Counters {
		fmt.Fprintf(&cb, "%s=%d\n", c.Name, c.Value)
	}
	cs := sha256.Sum256(cb.Bytes())
	var rb bytes.Buffer
	for _, row := range res.Tenants {
		fmt.Fprintf(&rb, "%d %s %d %d %d\n", row.ID, row.Name, row.Accesses, row.ResidentBytes, row.FastBytes)
	}
	rs := sha256.Sum256(rb.Bytes())
	return tenantEquivCell{
		TraceSHA:    hex.EncodeToString(ts[:]),
		CountersSHA: hex.EncodeToString(cs[:]),
		TenantsSHA:  hex.EncodeToString(rs[:]),
		Accesses:    res.Accesses,
		AppNS:       res.AppNS,
		Migrations:  res.VM.Migrations4K,
		RSSFinal:    res.RSSFinal,
	}
}

// tenantEquivCells enumerates the golden cells: the single-tenant
// single-space path, churning 4- and 64-tenant mixes over two seeds,
// a dense-sampler cell, a fault-injected cell, and the raw-workload
// fallback cell.
func tenantEquivCells() map[string]func() tenantEquivCell {
	return map[string]func() tenantEquivCell{
		"n1_seed42":        func() tenantEquivCell { return runTenantEquivCell(1, 42, 0, false, false) },
		"n4_seed42":        func() tenantEquivCell { return runTenantEquivCell(4, 42, 0, false, false) },
		"n4_seed43":        func() tenantEquivCell { return runTenantEquivCell(4, 43, 0, false, false) },
		"n4_dense_seed42":  func() tenantEquivCell { return runTenantEquivCell(4, 42, 0, true, false) },
		"n4_faults_seed42": func() tenantEquivCell { return runTenantEquivCell(4, 42, 50_000, false, false) },
		"n64_seed42":       func() tenantEquivCell { return runTenantEquivCell(64, 42, 0, false, false) },
		"hammer_seed42":    func() tenantEquivCell { return runTenantEquivCell(3, 42, 0, false, true) },
	}
}

// TestTenantSchedulerEquivalence drives the equivalence cells and
// compares against the baton-scheduler goldens.
func TestTenantSchedulerEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "tenant_equiv.json")
	cells := tenantEquivCells()
	if os.Getenv("TENANT_EQUIV_REWRITE") != "" {
		out := map[string]tenantEquivCell{}
		for name, run := range cells {
			out[name] = run()
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cells", path, len(out))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (%v); regenerate with TENANT_EQUIV_REWRITE=1", err)
	}
	want := map[string]tenantEquivCell{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cells) {
		t.Fatalf("golden has %d cells, suite has %d", len(want), len(cells))
	}
	var totMigs uint64
	for name, run := range cells {
		got := run()
		w, ok := want[name]
		if !ok {
			t.Fatalf("cell %s missing from golden", name)
		}
		if got != w {
			t.Errorf("cell %s diverged from the baton-scheduler golden:\n got %+v\nwant %+v", name, got, w)
		}
		totMigs += got.Migrations
	}
	if totMigs == 0 {
		t.Fatal("suite lost coverage: no cell migrated a page")
	}
}
