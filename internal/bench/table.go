package bench

import (
	"fmt"
	"strings"
)

// Table is a generic result table rendered as aligned text or CSV.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row built from stringable values.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	row := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	row(t.Header)
	for _, r := range t.Rows {
		row(r)
	}
	return b.String()
}
