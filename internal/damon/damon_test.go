package damon

import (
	"math/rand"
	"testing"
)

func TestMonitorInitialRegions(t *testing.T) {
	m := NewMonitor(Config{SampleIntervalNS: 1000, MinRegions: 10, MaxRegions: 100}, 0, 10000)
	if got := m.Regions(); got != 10 {
		t.Fatalf("initial regions = %d, want 10", got)
	}
	// Regions must tile [0, 10000) without gaps.
	snapless := m.regions
	var covered uint64
	for i, r := range snapless {
		if r.End <= r.Start {
			t.Fatalf("region %d empty", i)
		}
		if i > 0 && snapless[i-1].End != r.Start {
			t.Fatalf("gap before region %d", i)
		}
		covered += r.End - r.Start
	}
	if covered != 10000 {
		t.Fatalf("coverage = %d", covered)
	}
}

func TestRegionCountStaysBounded(t *testing.T) {
	m := NewMonitor(Config{SampleIntervalNS: 1000, MinRegions: 10, MaxRegions: 100, AggrSamples: 5}, 0, 1<<20)
	rng := rand.New(rand.NewSource(1))
	var now uint64
	for i := 0; i < 200_000; i++ {
		now += 50
		m.Observe(rng.Uint64()%(1<<20), now)
	}
	if n := m.Regions(); n < 10 || n > 100 {
		t.Fatalf("regions = %d, outside [10,100]", n)
	}
	if len(m.Snapshots()) == 0 {
		t.Fatal("no snapshots")
	}
}

func TestHotRegionDetected(t *testing.T) {
	const space = 1 << 16
	m := NewMonitor(Config{SampleIntervalNS: 2000, MinRegions: 16, MaxRegions: 64}, 0, space)
	rng := rand.New(rand.NewSource(2))
	var now uint64
	// 90% of accesses to the first 1/16 of the space.
	for i := 0; i < 400_000; i++ {
		now += 50
		var vpn uint64
		if rng.Intn(10) != 0 {
			vpn = rng.Uint64() % (space / 16)
		} else {
			vpn = rng.Uint64() % space
		}
		m.Observe(vpn, now)
	}
	m.Finish(now)
	snaps := m.Snapshots()
	if len(snaps) < 2 {
		t.Fatal("too few snapshots")
	}
	// Aggregate the hit density over all snapshots: the sampled-page
	// signal per window is sparse, but its sum must concentrate in the
	// hot sixteenth of the space.
	var hotNr, coldNr, hotN, coldN float64
	for _, snap := range snaps {
		for _, r := range snap.Regions {
			if r.Start < space/16 {
				hotNr += float64(r.NrAccesses)
				hotN++
			} else {
				coldNr += float64(r.NrAccesses)
				coldN++
			}
		}
	}
	if hotN == 0 || coldN == 0 {
		t.Fatal("degenerate region layout")
	}
	if hotNr/hotN <= 2*coldNr/coldN {
		t.Fatalf("hot region not distinguished: hot avg %.4f cold avg %.4f", hotNr/hotN, coldNr/coldN)
	}
}

func TestCPUOverheadScalesWithRegions(t *testing.T) {
	mkRun := func(minR, maxR int) float64 {
		m := NewMonitor(Config{SampleIntervalNS: 1000, MinRegions: minR, MaxRegions: maxR}, 0, 1<<20)
		rng := rand.New(rand.NewSource(3))
		var now uint64
		for i := 0; i < 100_000; i++ {
			now += 100
			m.Observe(rng.Uint64()%(1<<20), now)
		}
		return m.CPUOverhead()
	}
	coarse := mkRun(10, 100)
	fine := mkRun(2000, 4000)
	if fine <= coarse*5 {
		t.Fatalf("fine-grained monitoring not costlier: %v vs %v", fine, coarse)
	}
}

func TestAccuracyPrefersFreshFineEstimates(t *testing.T) {
	// Truth: two windows with disjoint hot pages.
	w0 := map[uint64]uint64{}
	w1 := map[uint64]uint64{}
	for p := uint64(0); p < 100; p++ {
		w0[p] = 100
		w1[p+1000] = 100
		w0[p+2000] = 1
		w1[p+2000] = 1
	}
	const winNS = 1000
	fresh := []Snapshot{
		{TimeNS: 0, Regions: []Region{{Start: 0, End: 100, NrAccesses: 20}, {Start: 100, End: 3000, NrAccesses: 0}}},
		{TimeNS: winNS, Regions: []Region{{Start: 0, End: 1000, NrAccesses: 0}, {Start: 1000, End: 1100, NrAccesses: 20}, {Start: 1100, End: 3000, NrAccesses: 0}}},
	}
	stale := []Snapshot{
		{TimeNS: 0, Regions: []Region{{Start: 0, End: 100, NrAccesses: 20}, {Start: 100, End: 3000, NrAccesses: 0}}},
	}
	fa := Accuracy(fresh, []map[uint64]uint64{w0, w1}, winNS)
	sa := Accuracy(stale, []map[uint64]uint64{w0, w1}, winNS)
	if fa <= sa {
		t.Fatalf("fresh %.3f not better than stale %.3f", fa, sa)
	}
	if fa < 0.9 {
		t.Fatalf("fresh accuracy %.3f too low", fa)
	}
}

func TestAccuracyEmptyInputs(t *testing.T) {
	if Accuracy(nil, nil, 1) != 0 {
		t.Fatal("nil inputs should score 0")
	}
	if Accuracy([]Snapshot{{}}, []map[uint64]uint64{{}}, 1) != 0 {
		t.Fatal("empty truth should score 0")
	}
}
