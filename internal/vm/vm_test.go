package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memtis/internal/tier"
)

func newAS(t *testing.T, fastBlocks, capBlocks int, thp bool) *AddressSpace {
	if t != nil {
		t.Helper()
	}
	fast := tier.MustNew(tier.Config{Name: "fast", Kind: tier.DRAM, Bytes: uint64(fastBlocks) * tier.HugePageSize})
	capT := tier.MustNew(tier.Config{Name: "cap", Kind: tier.NVM, Bytes: uint64(capBlocks) * tier.HugePageSize})
	return NewAddressSpace(fast, capT, thp)
}

func TestReserveAligns(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r1 := as.Reserve(3 * tier.BasePageSize)
	r2 := as.Reserve(tier.HugePageSize)
	if r1.BaseVPN%tier.SubPages != 0 || r2.BaseVPN%tier.SubPages != 0 {
		t.Fatal("reservations not 2MB aligned")
	}
	if r2.BaseVPN < r1.BaseVPN+r1.Pages {
		t.Fatal("overlapping reservations")
	}
	if r1.Bytes() != 3*tier.BasePageSize {
		t.Fatalf("Bytes = %d", r1.Bytes())
	}
}

func TestTouchFaultsHugeWhenEligible(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(tier.HugePageSize)
	res := as.Touch(r.BaseVPN+7, false)
	if !res.Faulted || res.FaultNS != HugeFaultNS {
		t.Fatalf("expected huge fault, got %+v", res)
	}
	if !res.Page.IsHuge() || res.SubIdx != 7 {
		t.Fatalf("expected huge page subidx 7, got huge=%v sub=%d", res.Page.IsHuge(), res.SubIdx)
	}
	if res.Tier != tier.FastTier {
		t.Fatalf("default placement should be fast-first, got %v", res.Tier)
	}
	// Second touch: no fault.
	res2 := as.Touch(r.BaseVPN, false)
	if res2.Faulted || res2.Page != res.Page {
		t.Fatal("second touch refaulted or remapped")
	}
}

func TestSmallReservationFaultsBasePages(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(128 * tier.BasePageSize) // 512KB: not huge-eligible
	res := as.Touch(r.BaseVPN, true)
	if res.Page.IsHuge() {
		t.Fatal("sub-2MB reservation must not fault in as a huge page")
	}
	if res.FaultNS != BaseFaultNS {
		t.Fatalf("fault cost %d, want %d", res.FaultNS, BaseFaultNS)
	}
	// The 2MB block around the small region must never map huge even
	// though the table slots beyond the region are nil.
	if as.RSSFrames() != 1 {
		t.Fatalf("RSS = %d frames, want 1", as.RSSFrames())
	}
}

func TestTouchWithoutTHP(t *testing.T) {
	as := newAS(t, 4, 16, false)
	r := as.Reserve(tier.HugePageSize)
	res := as.Touch(r.BaseVPN, false)
	if res.Page.IsHuge() {
		t.Fatal("THP disabled but huge page mapped")
	}
}

func TestTouchUnreservedPanics(t *testing.T) {
	as := newAS(t, 4, 16, true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	as.Touch(12345, false)
}

func TestWriteMarksTouched(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(tier.HugePageSize)
	as.Touch(r.BaseVPN+3, true)
	as.Touch(r.BaseVPN+9, false) // read does not mark
	pg := as.Lookup(r.BaseVPN)
	if !pg.Touched(3) || pg.Touched(9) {
		t.Fatalf("touched bits wrong: %v %v", pg.Touched(3), pg.Touched(9))
	}
	if pg.TouchedCount() != 1 {
		t.Fatalf("TouchedCount = %d", pg.TouchedCount())
	}
}

func TestHotnessScale(t *testing.T) {
	hp := &Page{Kind: HugePage, Count: 7}
	bp := &Page{Kind: BasePage, Count: 7}
	if hp.Hotness() != 7 {
		t.Fatalf("huge hotness = %d", hp.Hotness())
	}
	if bp.Hotness() != 7*tier.SubPages {
		t.Fatalf("base hotness = %d", bp.Hotness())
	}
	if hp.Units() != tier.SubPages || bp.Units() != 1 {
		t.Fatal("units")
	}
}

func TestMigrate(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(tier.HugePageSize)
	pg := as.Touch(r.BaseVPN, true).Page
	if !as.CanMigrate(pg, tier.CapacityTier) {
		t.Fatal("CanMigrate false with free capacity")
	}
	ns, ok := as.Migrate(pg, tier.CapacityTier)
	if !ok || ns != MigrateHugeNS+ShootdownNS {
		t.Fatalf("migrate: ok=%v ns=%d", ok, ns)
	}
	if pg.Tier != tier.CapacityTier {
		t.Fatal("tier not updated")
	}
	st := as.Stats()
	if st.MigrationsHuge != 1 || st.Demotions != tier.SubPages || st.MigratedBytes != tier.HugePageSize {
		t.Fatalf("stats: %+v", st)
	}
	if as.Fast.UsedFrames() != 0 || as.Cap.UsedFrames() != tier.SubPages {
		t.Fatal("frames not moved")
	}
	// Migrating to the same tier is rejected.
	if _, ok := as.Migrate(pg, tier.CapacityTier); ok {
		t.Fatal("same-tier migrate succeeded")
	}
}

func TestMigrateFailsWhenFull(t *testing.T) {
	as := newAS(t, 1, 16, true)
	r := as.Reserve(2 * tier.HugePageSize)
	pg1 := as.Touch(r.BaseVPN, true).Page               // fills fast
	pg2 := as.Touch(r.BaseVPN+tier.SubPages, true).Page // overflows to capacity
	if pg1.Tier != tier.FastTier || pg2.Tier != tier.CapacityTier {
		t.Fatalf("placement: %v %v", pg1.Tier, pg2.Tier)
	}
	if _, ok := as.Migrate(pg2, tier.FastTier); ok {
		t.Fatal("migration into full tier succeeded")
	}
}

func TestSplitReclaimsUntouchedAndPreservesCounts(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(tier.HugePageSize)
	pg := as.Touch(r.BaseVPN, true).Page
	// Touch (write) the first 100 subpages only.
	for i := uint64(1); i < 100; i++ {
		as.Touch(r.BaseVPN+i, true)
	}
	pg.EnsureSubCount()
	pg.SubCount[5] = 17
	pg.Count = 40

	rssBefore := as.RSSFrames()
	subs, ns := as.Split(pg, func(j int) tier.ID {
		if j == 5 {
			return tier.FastTier
		}
		return tier.NoTier
	})
	if ns == 0 {
		t.Fatal("split cost zero")
	}
	if len(subs) != 100 {
		t.Fatalf("survivors = %d, want 100", len(subs))
	}
	if !pg.Dead() {
		t.Fatal("split page not dead")
	}
	st := as.Stats()
	if st.Splits != 1 || st.ReclaimedFrames != tier.SubPages-100 {
		t.Fatalf("stats: %+v", st)
	}
	if as.RSSFrames() != rssBefore-(tier.SubPages-100) {
		t.Fatalf("RSS after split = %d", as.RSSFrames())
	}
	// Counts carried to subpages.
	found := false
	for _, sp := range subs {
		if sp.VPN == r.BaseVPN+5 {
			found = true
			if sp.Count != 17 {
				t.Fatalf("subpage count = %d, want 17", sp.Count)
			}
			if sp.Tier != tier.FastTier {
				t.Fatal("dest callback ignored")
			}
		}
		if as.Lookup(sp.VPN) != sp {
			t.Fatal("table entry mismatch after split")
		}
	}
	if !found {
		t.Fatal("subpage 5 missing")
	}
	// Reclaimed subpages are unmapped; touching them refaults.
	res := as.Touch(r.BaseVPN+200, false)
	if !res.Faulted || res.Page.IsHuge() {
		t.Fatal("reclaimed subpage should refault as base page")
	}
}

func TestCollapse(t *testing.T) {
	as := newAS(t, 4, 16, false) // base pages only
	r := as.Reserve(tier.HugePageSize)
	for i := uint64(0); i < tier.SubPages; i++ {
		pg := as.Touch(r.BaseVPN+i, true).Page
		pg.Count = 3
	}
	hp, ns, ok := as.Collapse(r.BaseVPN, tier.FastTier)
	if !ok || ns == 0 {
		t.Fatalf("collapse failed: %v %d", ok, ns)
	}
	if !hp.IsHuge() || hp.Tier != tier.FastTier {
		t.Fatal("collapse result wrong")
	}
	if hp.Count != 3*tier.SubPages {
		t.Fatalf("aggregated count = %d", hp.Count)
	}
	if hp.SubCount[100] != 3 {
		t.Fatal("subcounts not carried")
	}
	if as.Lookup(r.BaseVPN+511) != hp {
		t.Fatal("table not updated")
	}
	if as.Stats().Collapses != 1 {
		t.Fatal("collapse stat")
	}
}

func TestCollapseRejectsPartial(t *testing.T) {
	as := newAS(t, 4, 16, false)
	r := as.Reserve(tier.HugePageSize)
	as.Touch(r.BaseVPN, true)
	if _, _, ok := as.Collapse(r.BaseVPN, tier.FastTier); ok {
		t.Fatal("collapse of partially mapped range succeeded")
	}
	if _, _, ok := as.Collapse(r.BaseVPN+1, tier.FastTier); ok {
		t.Fatal("collapse of unaligned range succeeded")
	}
}

func TestFreeReleasesFrames(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(2 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		as.Touch(r.BaseVPN+i, true)
	}
	if as.RSSFrames() == 0 {
		t.Fatal("nothing mapped")
	}
	var released int
	as.OnUnmap = func(p *Page) { released++ }
	as.Free(r)
	if as.RSSFrames() != 0 {
		t.Fatalf("RSS after free = %d", as.RSSFrames())
	}
	if released != 2 {
		t.Fatalf("OnUnmap called %d times, want 2", released)
	}
	if as.Lookup(r.BaseVPN) != nil {
		t.Fatal("table entry survived free")
	}
	if as.LivePages() != 0 {
		t.Fatalf("LivePages = %d", as.LivePages())
	}
}

func TestForEachPageVisitsOnce(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(tier.HugePageSize + 4*tier.BasePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		as.Touch(r.BaseVPN+i, true)
	}
	seen := map[*Page]int{}
	as.ForEachPage(func(p *Page) { seen[p]++ })
	if len(seen) != as.LivePages() {
		t.Fatalf("visited %d pages, live %d", len(seen), as.LivePages())
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("page %d visited %d times", p.VPN, n)
		}
	}
}

// TestQuickVMConsistency drives random touches, migrations, splits and
// frees, checking RSS/tier accounting consistency after every step.
func TestQuickVMConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := newAS(nil, 3, 12, true)
		var regions []Region
		for i := 0; i < 3; i++ {
			regions = append(regions, as.Reserve(uint64(1+rng.Intn(3))*tier.HugePageSize))
		}
		check := func() bool {
			var frames uint64
			as.ForEachPage(func(p *Page) { frames += p.Units() })
			return frames == as.RSSFrames()
		}
		for i := 0; i < 300; i++ {
			r := regions[rng.Intn(len(regions))]
			if r.Pages == 0 {
				continue
			}
			switch rng.Intn(10) {
			case 8:
				var pages []*Page
				as.ForEachPage(func(p *Page) { pages = append(pages, p) })
				if len(pages) > 0 {
					pg := pages[rng.Intn(len(pages))]
					dst := tier.FastTier
					if pg.Tier == tier.FastTier {
						dst = tier.CapacityTier
					}
					as.Migrate(pg, dst)
				}
			case 9:
				var huges []*Page
				as.ForEachPage(func(p *Page) {
					if p.IsHuge() {
						huges = append(huges, p)
					}
				})
				if len(huges) > 0 {
					as.Split(huges[rng.Intn(len(huges))], func(int) tier.ID { return tier.NoTier })
				}
			default:
				as.Touch(r.BaseVPN+rng.Uint64()%r.Pages, rng.Intn(2) == 0)
			}
			if !check() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHugeFaultFallsBackAcrossTiers(t *testing.T) {
	// Fast tier holds one block; the second huge fault must fall back
	// to the capacity tier even though the placer asked for fast.
	as := newAS(t, 1, 4, true)
	r := as.Reserve(2 * tier.HugePageSize)
	p1 := as.Touch(r.BaseVPN, true).Page
	p2 := as.Touch(r.BaseVPN+tier.SubPages, true).Page
	if p1.Tier != tier.FastTier || p2.Tier != tier.CapacityTier {
		t.Fatalf("fallback broken: %v %v", p1.Tier, p2.Tier)
	}
}

func TestBaseFaultDegradesWhenNoHugeFrame(t *testing.T) {
	// Both tiers exist but the fast tier has only loose base frames:
	// a huge-eligible fault in fast degrades gracefully.
	as := newAS(t, 1, 4, true)
	// Break the fast tier's only block by allocating one base page.
	small := as.Reserve(4 * tier.BasePageSize)
	as.Touch(small.BaseVPN, true)
	r := as.Reserve(tier.HugePageSize)
	pg := as.Touch(r.BaseVPN, true).Page
	// Fast has no huge frame; capacity does: the page must be huge on
	// capacity rather than base on fast.
	if !pg.IsHuge() || pg.Tier != tier.CapacityTier {
		t.Fatalf("degradation wrong: huge=%v tier=%v", pg.IsHuge(), pg.Tier)
	}
}

func TestSplitKeepsInPlaceSubpagesWithoutCopy(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(tier.HugePageSize)
	for i := uint64(0); i < tier.SubPages; i++ {
		as.Touch(r.BaseVPN+i, true)
	}
	pg := as.Lookup(r.BaseVPN)
	frame := pg.Frame
	subs, _ := as.Split(pg, func(int) tier.ID { return tier.NoTier })
	if len(subs) != tier.SubPages {
		t.Fatalf("survivors: %d", len(subs))
	}
	// In-place subpages keep their physical frames.
	for j, sp := range subs {
		if sp.Frame != frame+tier.Frame(j) {
			t.Fatalf("subpage %d moved: frame %d", j, sp.Frame)
		}
	}
	if as.Stats().MigratedBytes != 0 {
		t.Fatal("in-place split migrated data")
	}
}

func TestCollapseFailsWhenTierFull(t *testing.T) {
	as := newAS(t, 1, 2, false)
	r := as.Reserve(tier.HugePageSize)
	for i := uint64(0); i < tier.SubPages; i++ {
		as.Touch(r.BaseVPN+i, true) // fills the fast tier with base frames
	}
	// The fast tier has no free huge frame (all frames hold the base
	// pages being collapsed), so collapse must fail there...
	if _, _, ok := as.Collapse(r.BaseVPN, tier.FastTier); ok {
		t.Fatal("collapse into full tier succeeded")
	}
	// ...but succeed into the capacity tier.
	if _, _, ok := as.Collapse(r.BaseVPN, tier.CapacityTier); !ok {
		t.Fatal("collapse into free tier failed")
	}
}

func TestRSSAccounting(t *testing.T) {
	as := newAS(t, 4, 16, true)
	r := as.Reserve(tier.HugePageSize + 3*tier.BasePageSize)
	as.Touch(r.BaseVPN, true)
	if as.RSSBytes() != tier.HugePageSize {
		t.Fatalf("RSS = %d", as.RSSBytes())
	}
	as.Touch(r.BaseVPN+tier.SubPages, true) // tail base page
	if as.RSSFrames() != tier.SubPages+1 {
		t.Fatalf("RSS frames = %d", as.RSSFrames())
	}
}

// TestArenaLoc pins the graduated-chunk geometry: the index→(chunk,
// slot) map must be a bijection onto in-bounds slots in append order —
// slot 0 of a new chunk follows the last slot of the previous one, and
// chunk sizes double from rampLen up to the fixed chunkLen regime.
func TestArenaLoc(t *testing.T) {
	prevC, prevS := -1, uint32(0)
	for i := uint32(0); i < rampTotal+3*chunkLen; i++ {
		c, s := arenaLoc(i)
		if s >= uint32(chunkSize(c)) {
			t.Fatalf("index %d: slot %d out of bounds for chunk %d (size %d)", i, s, c, chunkSize(c))
		}
		switch {
		case i == 0:
			if c != 0 || s != 0 {
				t.Fatalf("index 0 maps to (%d,%d)", c, s)
			}
		case c == prevC:
			if s != prevS+1 {
				t.Fatalf("index %d: slot %d does not follow %d in chunk %d", i, s, prevS, c)
			}
		case c == prevC+1:
			if s != 0 {
				t.Fatalf("index %d: new chunk %d starts at slot %d", i, c, s)
			}
			if prevS != uint32(chunkSize(prevC))-1 {
				t.Fatalf("index %d: chunk %d abandoned at slot %d of %d", i, prevC, prevS, chunkSize(prevC))
			}
		default:
			t.Fatalf("index %d: chunk jumped %d -> %d", i, prevC, c)
		}
		prevC, prevS = c, s
	}
	if prevC != rampChunks+2 {
		t.Fatalf("walk ended in chunk %d, want %d", prevC, rampChunks+2)
	}
}
