package tier

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the admission-control layer of the migration path: a
// pluggable policy that decides, per migration request, whether the
// predicted benefit of moving a page justifies its measured per-hop
// copy cost (TierBPF's central observation — tiering that admits every
// candidate thrashes). Admission only *decides*; the policy helpers in
// internal/policy build the request from the page and the topology,
// tally verdicts, and settle rejected requests against what actually
// happened afterwards (admission/rejected_wasted vs rejected_regret).

// AdmissionRequest carries everything an Admission policy may score.
// The caller (policy.AdmissionGate) fills it from the page, the
// topology's hop-cost tables and the machine clock.
type AdmissionRequest struct {
	// Src and Dst are the tiers the migration would move between.
	Src, Dst ID
	// Bytes is the payload size (4KB for a base page, 2MB for huge).
	Bytes uint64
	// Huge reports a huge-page migration.
	Huge bool
	// Hotness is the page's current sampled access count — the
	// predictor of near-future accesses the benefit model multiplies.
	Hotness uint64
	// CostNS is the migration copy cost over every hop between Src and
	// Dst, including any active throttle-window factor.
	CostNS uint64
	// GainNS is the per-access latency gained by the move (load-latency
	// delta between Src and Dst; negative for demotions).
	GainNS int64
	// Sync reports a synchronous (demand-path) migration; async
	// requests come from background policy work or the mover.
	Sync bool
	// ThrottleActive reports that Now falls inside a bandwidth-throttle
	// window of the machine's fault plan.
	ThrottleActive bool
	// Now is the machine's virtual clock.
	Now uint64
}

// Admission decides whether one migration request may proceed.
// Implementations must be pure functions of the request (no clocks, no
// randomness) so runs stay deterministic.
type Admission interface {
	// Name identifies the policy in sweep tables and counters.
	Name() string
	// Admit reports whether the migration should run.
	Admit(r AdmissionRequest) bool
}

// AdmitAll admits every migration — the null admission policy, useful
// as a sweep baseline to expose what rejection would have saved.
type AdmitAll struct{}

// Name implements Admission.
func (AdmitAll) Name() string { return "always" }

// Admit implements Admission: always true.
func (AdmitAll) Admit(AdmissionRequest) bool { return true }

// ThrottleAdmission defers asynchronous migrations inside bandwidth-
// throttle windows and admits everything else. This reproduces the
// historical default behaviour of the policy helpers, as a named
// policy so sweeps can compare against it.
type ThrottleAdmission struct{}

// Name implements Admission.
func (ThrottleAdmission) Name() string { return "throttle" }

// Admit implements Admission: deny async requests during throttle
// windows, admit everything else.
func (ThrottleAdmission) Admit(r AdmissionRequest) bool {
	return r.Sync || !r.ThrottleActive
}

// BenefitAdmission is the TierBPF-style benefit/cost gate: a promotion
// is admitted only when its predicted benefit — the page's sampled
// hotness times the per-access latency gain — covers MinRatioPct
// percent of the migration cost. Demotions (GainNS <= 0) free scarce
// fast-tier space and are always admitted, as are synchronous
// demand-path moves; async promotions additionally defer during
// throttle windows (cost is inflated there, so a benefit gate that
// ignored windows would admit moves it just priced wrong).
type BenefitAdmission struct {
	// MinRatioPct is the required benefit as a percentage of cost
	// (100 = benefit must at least equal cost). 0 means 100.
	MinRatioPct uint64
}

// Name implements Admission.
func (b BenefitAdmission) Name() string {
	if b.MinRatioPct == 0 || b.MinRatioPct == 100 {
		return "benefit"
	}
	return fmt.Sprintf("benefit:%d", b.MinRatioPct)
}

// Admit implements Admission.
func (b BenefitAdmission) Admit(r AdmissionRequest) bool {
	if r.GainNS <= 0 || r.Sync {
		return r.Sync || !r.ThrottleActive
	}
	if r.ThrottleActive {
		return false
	}
	pct := b.MinRatioPct
	if pct == 0 {
		pct = 100
	}
	return r.Hotness*uint64(r.GainNS)*100 >= pct*r.CostNS
}

// ParseAdmission decodes an admission-policy name from the CLI and
// sweep grammars: "always", "throttle", "benefit" or "benefit:PCT"
// (benefit gate requiring PCT percent of cost). The empty string
// returns nil — the historical default behaviour, not a policy.
func ParseAdmission(s string) (Admission, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s == "always":
		return AdmitAll{}, nil
	case s == "throttle":
		return ThrottleAdmission{}, nil
	case s == "benefit":
		return BenefitAdmission{}, nil
	case strings.HasPrefix(s, "benefit:"):
		pct, err := strconv.ParseUint(strings.TrimPrefix(s, "benefit:"), 10, 32)
		if err != nil || pct == 0 {
			return nil, fmt.Errorf("tier: admission %q: want benefit:PCT with positive percent", s)
		}
		return BenefitAdmission{MinRatioPct: pct}, nil
	default:
		return nil, fmt.Errorf("tier: unknown admission policy %q (want always, throttle or benefit[:PCT])", s)
	}
}
