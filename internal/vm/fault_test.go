package vm

import (
	"testing"

	"memtis/internal/obs"
	"memtis/internal/tier"
)

// alwaysFail builds a plan whose every copy faults.
func alwaysFail() *tier.FaultPlan {
	return tier.NewFaultPlan(tier.FaultConfig{Seed: 1, MigrateFailPpm: 1_000_000})
}

func TestMigrateTxAbortRollsBack(t *testing.T) {
	as := newAS(t, 4, 16, true)
	ring := obs.NewRing(0)
	as.Trace = obs.NewTracer(ring)
	as.Faults = alwaysFail()

	r := as.Reserve(tier.HugePageSize)
	pg := as.Touch(r.BaseVPN, true).Page
	if pg.Tier != tier.FastTier {
		t.Fatalf("page faulted onto %v", pg.Tier)
	}
	frame := pg.Frame
	capUsed := as.Cap.UsedFrames()

	ns, st := as.MigrateTx(pg, tier.CapacityTier)
	if st != MigrateAborted {
		t.Fatalf("status = %v, want aborted", st)
	}
	if ns != MigrateHugeNS {
		t.Fatalf("abort charged %d ns, want the wasted copy %d", ns, uint64(MigrateHugeNS))
	}
	// Rollback: source mapping untouched, reservation returned.
	if pg.Tier != tier.FastTier || pg.Frame != frame {
		t.Fatalf("aborted page moved: tier=%v frame=%d", pg.Tier, pg.Frame)
	}
	if got := as.Cap.UsedFrames(); got != capUsed {
		t.Fatalf("capacity tier leaked %d frames across the abort", got-capUsed)
	}
	st2 := as.Stats()
	if st2.MigrateAborts != 1 || st2.AbortNS != ns {
		t.Fatalf("abort stats = %d/%d", st2.MigrateAborts, st2.AbortNS)
	}
	if st2.MigrationsHuge != 0 || st2.Shootdowns != 0 {
		t.Fatal("abort counted as a completed migration")
	}
	if n := ring.CountByKind()[obs.EvMigrateAbort]; n != 1 {
		t.Fatalf("migrate_abort events = %d, want 1", n)
	}
	// The legacy boolean entry reports the cost too.
	if ns2, ok := as.Migrate(pg, tier.CapacityTier); ok || ns2 != MigrateHugeNS {
		t.Fatalf("Migrate on abort = (%d, %v)", ns2, ok)
	}
	if err := as.Audit(); err != nil {
		t.Fatalf("audit after aborts: %v", err)
	}
}

func TestMigrateTxNoSpaceIsFree(t *testing.T) {
	as := newAS(t, 1, 1, true)
	as.Faults = alwaysFail()
	r := as.Reserve(tier.HugePageSize)
	pg := as.Touch(r.BaseVPN, true).Page
	// Fill the other tier completely so reserve must fail.
	other := tier.CapacityTier
	if pg.Tier == tier.CapacityTier {
		other = tier.FastTier
	}
	if _, err := as.tierOf(other).AllocHuge(); err != nil {
		t.Fatal(err)
	}
	ns, st := as.MigrateTx(pg, other)
	if st != MigrateNoSpace || ns != 0 {
		t.Fatalf("full destination: (%d, %v), want (0, no-space)", ns, st)
	}
	if s := as.Stats(); s.MigrateAborts != 0 {
		t.Fatal("no-space counted as an abort")
	}
}

func TestMigrateTxThrottleChargesCopyFactor(t *testing.T) {
	as := newAS(t, 4, 16, true)
	now := uint64(0)
	as.Clock = func() uint64 { return now }
	as.Faults = tier.NewFaultPlan(tier.FaultConfig{
		ThrottlePeriodNS: 1_000_000, ThrottleDutyNS: 500_000, ThrottleFactor: 4,
	})
	r := as.Reserve(2 * tier.HugePageSize)
	a := as.Touch(r.BaseVPN, true).Page
	b := as.Touch(r.BaseVPN+tier.SubPages, true).Page

	now = 100_000 // inside the window
	if ns, ok := as.Migrate(a, tier.CapacityTier); !ok || ns != 4*MigrateHugeNS+ShootdownNS {
		t.Fatalf("throttled migration = (%d, %v), want %d", ns, ok, uint64(4*MigrateHugeNS+ShootdownNS))
	}
	now = 700_000 // outside the window
	if ns, ok := as.Migrate(b, tier.CapacityTier); !ok || ns != MigrateHugeNS+ShootdownNS {
		t.Fatalf("unthrottled migration = (%d, %v)", ns, ok)
	}
	if err := as.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestSplitChargesAbortedSubpageMoves(t *testing.T) {
	as := newAS(t, 4, 16, true)
	as.Faults = alwaysFail()
	r := as.Reserve(tier.HugePageSize)
	var pg *Page
	for i := uint64(0); i < tier.SubPages; i++ {
		pg = as.Touch(r.BaseVPN+i, true).Page
	}
	moved := 0
	subs, ns := as.Split(pg, func(j int) tier.ID {
		if j < 8 {
			moved++
			return tier.CapacityTier
		}
		return tier.NoTier
	})
	if len(subs) != tier.SubPages {
		t.Fatalf("split produced %d subpages", len(subs))
	}
	// Every requested move aborted: pages stayed put, the wasted
	// copies were charged.
	want := uint64(SplitFixedNS+ShootdownNS) + uint64(moved)*MigrateBaseNS
	if ns != want {
		t.Fatalf("split cost %d, want %d (with %d aborted moves)", ns, want, moved)
	}
	for _, sp := range subs {
		if sp.Tier != tier.FastTier {
			t.Fatal("aborted subpage move changed the tier")
		}
	}
	if s := as.Stats(); s.MigrateAborts != uint64(moved) {
		t.Fatalf("aborts = %d, want %d", s.MigrateAborts, moved)
	}
	if err := as.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestAuditCatchesCorruption builds deliberate invariant violations and
// requires Audit to reject each.
func TestAuditCatchesCorruption(t *testing.T) {
	build := func() (*AddressSpace, *Page, *Page) {
		as := newAS(t, 4, 16, false)
		r := as.Reserve(8 * tier.BasePageSize)
		a := as.Touch(r.BaseVPN, true).Page
		b := as.Touch(r.BaseVPN+1, true).Page
		if err := as.Audit(); err != nil {
			t.Fatalf("clean space failed audit: %v", err)
		}
		return as, a, b
	}
	as, a, b := build()
	b.Frame = a.Frame // double-map
	if err := as.Audit(); err == nil {
		t.Error("audit missed a double-mapped frame")
	}
	as, a, _ = build()
	a.dead = true // dead page reachable
	if err := as.Audit(); err == nil {
		t.Error("audit missed a mapped dead page")
	}
	as, a, _ = build()
	as.pt[a.VPN] = 0 // frame leak: allocated but unmapped
	if err := as.Audit(); err == nil {
		t.Error("audit missed a leaked frame")
	}
}
