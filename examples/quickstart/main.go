// Quickstart: run one of the paper's benchmarks (Silo, YCSB-C) on a
// simulated DRAM+NVM machine at the 1:8 configuration under MEMTIS and
// under the no-migration baseline, and compare.
package main

import (
	"fmt"

	"memtis"
)

func main() {
	spec, _ := specByName("silo")
	cfg := memtis.MachineFor(spec, 1.0/9, memtis.NVM) // 1:8 configuration
	cfg.Seed = 42

	const accesses = 2_000_000

	static := memtis.Run(cfg, memtis.NewStatic(), memtis.MustWorkload("silo"), accesses)
	tiered := memtis.Run(cfg, memtis.NewMEMTIS(), memtis.MustWorkload("silo"), accesses)

	fmt.Printf("silo on %.0fMB RSS, fast tier %.0fMB (1:8), NVM capacity tier\n",
		mb(spec.RSSBytes()), mb(cfg.FastBytes))
	fmt.Printf("%-22s %12s %14s %12s\n", "policy", "hit ratio", "throughput", "speedup")
	for _, r := range []memtis.Result{static, tiered} {
		fmt.Printf("%-22s %11.1f%% %11.2f M/s %11.2fx\n",
			r.Policy, r.FastHitRatio*100, r.Throughput/1e6, r.Throughput/static.Throughput)
	}
	fmt.Printf("\nMEMTIS split %d huge pages and migrated %.1fMB in the background.\n",
		tiered.VM.Splits, mb(tiered.VM.MigratedBytes))
}

func specByName(name string) (memtis.WorkloadSpec, bool) {
	for _, s := range memtis.Workloads() {
		if s.Name == name {
			return s, true
		}
	}
	return memtis.WorkloadSpec{}, false
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }
