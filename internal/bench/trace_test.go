package bench

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"memtis/internal/obs"
)

// readTraces loads every event trace in dir keyed by file name.
func readTraces(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestEventTraceGolden: a fixed-seed MEMTIS cell must produce
// byte-identical JSONL event traces across repeated runs and across
// runner worker counts — the trace is part of the determinism contract,
// diffable like any other output.
func TestEventTraceGolden(t *testing.T) {
	cfg := DefaultConfig()
	// Long enough for at least one threshold adaptation: promotions are
	// sample-driven, so a run that ends before the first Algorithm-1
	// adaptation legitimately produces none (demand allocation fills the
	// fast tier with pages that register as hot). At 300k accesses the
	// cell promotes a few hundred pages — a robust target for the
	// all-kinds-present assertion below.
	cfg.Accesses = 300_000
	ws := []string{"silo"}
	rs := []Ratio{Ratio1to8}
	ps := []string{"memtis"}

	runInto := func(r *Runner) map[string][]byte {
		c := cfg
		c.EventDir = t.TempDir()
		if _, err := r.RunMatrix(context.Background(), c, ws, rs, ps); err != nil {
			t.Fatal(err)
		}
		return readTraces(t, c.EventDir)
	}
	seq1 := runInto(Sequential())
	seq2 := runInto(Sequential())
	par := runInto(Parallel(8))

	// One trace per cell: the memtis cell plus the baseline.
	if len(seq1) != 2 {
		t.Fatalf("trace files = %v, want 2", len(seq1))
	}
	for name, data := range seq1 {
		if !bytes.Equal(data, seq2[name]) {
			t.Fatalf("%s differs between two sequential runs", name)
		}
		if !bytes.Equal(data, par[name]) {
			t.Fatalf("%s differs between sequential and 8-worker runs", name)
		}
	}

	// The MEMTIS cell trace must be non-trivial and decode cleanly, with
	// virtual-time stamps non-decreasing (events are emitted as the
	// machine clock advances).
	data, ok := seq1["silo_1to8_memtis.events.jsonl"]
	if !ok {
		t.Fatalf("memtis cell trace missing; files: %v", keys(seq1))
	}
	evs, err := obs.ReadAll(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("memtis trace is empty")
	}
	counts := map[obs.Kind]int{}
	var last uint64
	for i, e := range evs {
		if e.TimeNS < last {
			t.Fatalf("event %d: time %d < %d", i, e.TimeNS, last)
		}
		last = e.TimeNS
		counts[e.Kind]++
	}
	// A tiered MEMTIS run at 1:8 must at least fault and migrate.
	for _, k := range []obs.Kind{obs.EvDemandFault, obs.EvPromotion, obs.EvDemotion} {
		if counts[k] == 0 {
			t.Errorf("no %s events in memtis trace (kinds: %v)", k, counts)
		}
	}
}

func keys(m map[string][]byte) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSingleRunTrace: Config.Trace reaches the machine on the
// single-run entry points.
func TestSingleRunTrace(t *testing.T) {
	ring := obs.NewRing(0)
	cfg := DefaultConfig()
	cfg.Accesses = 100_000
	cfg.Trace = obs.NewTracer(ring)
	res := RunOne("silo", "memtis", Ratio1to8, cfg)
	if res.Accesses == 0 {
		t.Fatal("run did not execute")
	}
	if ring.Len() == 0 {
		t.Fatal("no events reached the sink")
	}
	if ring.CountByKind()[obs.EvDemandFault] == 0 {
		t.Fatal("no demand-fault events recorded")
	}
}

// TestMatrixIgnoresSharedTracer: matrix runners must not hand a
// caller-supplied tracer to parallel cells (streams would interleave).
func TestMatrixIgnoresSharedTracer(t *testing.T) {
	ring := obs.NewRing(0)
	cfg := DefaultConfig()
	cfg.Accesses = 50_000
	cfg.Trace = obs.NewTracer(ring)
	ws := []string{"silo"}
	if _, err := Sequential().RunMatrix(context.Background(), cfg, ws, []Ratio{Ratio1to8}, []string{"memtis"}); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 0 {
		t.Fatalf("matrix cells emitted %d events into the shared tracer", ring.Len())
	}
}
