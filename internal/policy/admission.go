package policy

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// This file is the policy-side half of the admission layer: the
// tier.Admission interface only *decides*, while the AdmissionGate here
// builds each request from the page, the topology's hop-cost tables and
// the machine clock, tallies verdicts, and — the part that makes the
// layer falsifiable — settles rejected promotions against what actually
// happened afterwards. A rejection was *vindicated* when the page died
// or cooled before its predicted benefit covered the copy cost
// (admission/rejected_wasted), and *regretted* when the page stayed hot
// enough that the move would have paid for itself
// (admission/rejected_regret).

// verdictWindowNS is how long a rejected promotion is watched before
// its verdict is settled: long enough for a genuinely hot page to
// accumulate the accesses the benefit model predicted, short enough to
// bound the ledger.
const verdictWindowNS = 10_000_000 // 10ms of virtual time

// maxPendingVerdicts bounds the settlement ledger; rejections beyond
// the bound are counted but not watched (the counters are diagnostics,
// not part of the migration contract).
const maxPendingVerdicts = 4096

// pendingVerdict is one rejected promotion awaiting settlement.
type pendingVerdict struct {
	pg       *vm.Page
	src      tier.ID
	hot0     uint64 // page hotness at rejection time
	gainNS   int64  // per-access benefit the move would have bought
	costNS   uint64 // copy cost the rejection saved
	deadline uint64 // virtual time at which the verdict settles
}

// AdmissionGate applies a tier.Admission policy at the migration choke
// points. A nil *AdmissionGate is valid and means "no admission policy
// installed": Allow reports that the caller should fall back to its
// historical default behaviour. Construct one per machine via
// NewAdmissionGate; both the baseline Base helpers and the MEMTIS core
// share this type so every policy reports admission verdicts the same
// way.
type AdmissionGate struct {
	m   *sim.Machine
	pol tier.Admission

	pending []pendingVerdict
	head    int

	ctrAdmitted *uint64
	ctrRejected *uint64
	ctrWasted   *uint64
	ctrRegret   *uint64
}

// NewAdmissionGate builds the gate for m's configured admission policy,
// registering the admission/ counter group. It returns nil — and
// registers nothing — when the machine has no Admission configured, so
// default-configured runs stay byte-identical.
func NewAdmissionGate(m *sim.Machine) *AdmissionGate {
	if m.Cfg.Admission == nil {
		return nil
	}
	g := m.Counters().Group("admission")
	return &AdmissionGate{
		m:           m,
		pol:         m.Cfg.Admission,
		ctrAdmitted: g.Counter("admitted"),
		ctrRejected: g.Counter("rejected"),
		ctrWasted:   g.Counter("rejected_wasted"),
		ctrRegret:   g.Counter("rejected_regret"),
	}
}

// Installed reports whether an admission policy is active (false on a
// nil gate), i.e. whether Allow's verdicts are meaningful.
func (g *AdmissionGate) Installed() bool { return g != nil }

// Request builds the admission request for moving pg to dst, pricing
// the copy over every hop between the tiers at the current throttle
// factor. Exported so sweeps and tests can score hypothetical moves
// with the same arithmetic the gate uses.
func (g *AdmissionGate) Request(pg *vm.Page, dst tier.ID, sync bool) tier.AdmissionRequest {
	m := g.m
	now := m.Now()
	return tier.AdmissionRequest{
		Src:            pg.Tier,
		Dst:            dst,
		Bytes:          pg.Bytes(),
		Huge:           pg.IsHuge(),
		Hotness:        pg.Count,
		CostNS:         m.AS.HopCostNS(pg.Tier, dst, pg.IsHuge()) * m.Faults().CopyCostFactor(now),
		GainNS:         m.AccessGainNS(pg.Tier, dst),
		Sync:           sync,
		ThrottleActive: m.Faults().ThrottleActive(now),
		Now:            now,
	}
}

// Allow scores one migration request against the admission policy and
// tallies the verdict. Rejected asynchronous promotions enter the
// settlement ledger so rejected_wasted/rejected_regret can later report
// whether the rejection was right. Callers must only invoke Allow on a
// non-nil gate (Installed).
func (g *AdmissionGate) Allow(pg *vm.Page, dst tier.ID, sync bool) bool {
	g.Settle(g.m.Now())
	r := g.Request(pg, dst, sync)
	if g.pol.Admit(r) {
		*g.ctrAdmitted++
		return true
	}
	*g.ctrRejected++
	if !sync && r.GainNS > 0 && len(g.pending)-g.head < maxPendingVerdicts {
		g.pending = append(g.pending, pendingVerdict{
			pg:       pg,
			src:      pg.Tier,
			hot0:     pg.Count,
			gainNS:   r.GainNS,
			costNS:   r.CostNS,
			deadline: r.Now + verdictWindowNS,
		})
	}
	return false
}

// Settle resolves every ledger entry whose deadline has passed. The
// verdict compares the benefit the page *realised* during the window —
// the accesses it accumulated since rejection times the latency the
// move would have saved on each — against the copy cost the rejection
// avoided. Pages that died, moved away from the scored hop, or cooled
// below their predicted rate vindicate the rejection (rejected_wasted:
// the migration would not have paid off); pages still hot enough to
// cover the cost mean the gate was too strict (rejected_regret).
func (g *AdmissionGate) Settle(now uint64) {
	if g == nil {
		return
	}
	for g.head < len(g.pending) {
		v := &g.pending[g.head]
		if now < v.deadline {
			break
		}
		switch {
		case v.pg.Dead() || v.pg.Tier != v.src:
			// Died, or some other path moved it: the scored migration
			// could never have been charged as predicted.
			*g.ctrWasted++
		default:
			var realized uint64
			if v.pg.Count > v.hot0 {
				realized = v.pg.Count - v.hot0
			}
			if realized*uint64(v.gainNS) >= v.costNS {
				*g.ctrRegret++
			} else {
				*g.ctrWasted++
			}
		}
		g.head++
	}
	if g.head > 64 && g.head*2 > len(g.pending) {
		n := copy(g.pending, g.pending[g.head:])
		g.pending = g.pending[:n]
		g.head = 0
	}
}
