package bench

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"memtis/internal/obs"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// TestTopologyForDepth pins the shape contract of the sweep's derived
// hierarchies: depth 2 is exactly the default pair, deeper chains keep
// the ratio-derived fast tier on top and the over-provisioned tier at
// the bottom, and unsupported depths are rejected.
func TestTopologyForDepth(t *testing.T) {
	rss := workload.MustNew("silo").Spec().RSSBytes()
	for _, depth := range DepthSweepDepths {
		topo, err := TopologyForDepth(rss, Ratio1to8, depth, tier.NVM)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if topo.Depth() != depth {
			t.Fatalf("depth %d topology has %d tiers", depth, topo.Depth())
		}
		fast := uint64(float64(rss) * Ratio1to8.FastFrac)
		if fast < tier.HugePageSize*2 {
			fast = tier.HugePageSize * 2
		}
		if topo.Tiers[0].Kind != tier.DRAM || topo.Tiers[0].Bytes != fast {
			t.Errorf("depth %d top tier %+v, want DRAM of %d bytes", depth, topo.Tiers[0], fast)
		}
		last := topo.Tiers[depth-1]
		if want := rss + rss/4 + 16*tier.HugePageSize; last.Bytes != want {
			t.Errorf("depth %d bottom tier holds %d bytes, want %d", depth, last.Bytes, want)
		}
	}
	d2, _ := TopologyForDepth(rss, Ratio1to8, 2, tier.NVM)
	fast := uint64(float64(rss) * Ratio1to8.FastFrac)
	want := tier.DefaultTopology(fast, rss+rss/4+16*tier.HugePageSize, tier.NVM)
	if !reflect.DeepEqual(d2, want) {
		t.Errorf("depth-2 topology %+v differs from the default pair %+v", d2, want)
	}
	for _, depth := range []int{0, 1, 5} {
		if _, err := TopologyForDepth(rss, Ratio1to8, depth, tier.NVM); err == nil {
			t.Errorf("depth %d accepted", depth)
		}
	}
}

// TestDepthSweepTraceDeterminism is the sweep's half of the §11
// determinism argument: a (depth x admission x fault-rate) matrix with
// the background mover enabled produces byte-identical event traces
// whether the cells run sequentially or on 8 workers.
func TestDepthSweepTraceDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Accesses = 100_000
	cfg.Mover = tier.MoverConfig{BytesPerWindow: 8 << 20}
	depths := []int{2, 4}
	admissions := []string{"always", "benefit"}
	rates := []uint32{0, 50_000}
	pols := []string{"memtis"}

	var seqMatrix *Matrix
	runInto := func(r *Runner) map[string][]byte {
		c := cfg
		c.EventDir = t.TempDir()
		m, err := r.DepthSweep(context.Background(), c, "silo", Ratio1to8, pols, depths, admissions, rates)
		if err != nil {
			t.Fatal(err)
		}
		if seqMatrix == nil {
			seqMatrix = m
		}
		return readTraces(t, c.EventDir)
	}
	seq := runInto(Sequential())
	par := runInto(Parallel(8))

	if want := len(depths) * len(admissions) * len(rates) * len(pols); len(seq) != want {
		t.Fatalf("trace files = %d, want %d", len(seq), want)
	}
	for name, data := range seq {
		if !bytes.Equal(data, par[name]) {
			t.Fatalf("%s differs between sequential and 8-worker runs", name)
		}
	}

	// Every cell ran with the mover on: its budget ledger must balance
	// (moved + wasted never exceeds granted) and at least one cell must
	// actually have routed migrations through the queue.
	var enqueued uint64
	for _, c := range seqMatrix.Cells {
		cnt := map[string]uint64{}
		for _, mt := range c.Result.Counters {
			cnt[mt.Name] = mt.Value
		}
		if cnt["mover/moved_bytes"]+cnt["mover/wasted_bytes"] > cnt["mover/granted_bytes"] {
			t.Errorf("%s/%s: mover spent %d+%d bytes of a %d-byte grant",
				c.Ratio, c.Policy, cnt["mover/moved_bytes"], cnt["mover/wasted_bytes"], cnt["mover/granted_bytes"])
		}
		enqueued += cnt["mover/enqueued"]
	}
	if enqueued == 0 {
		t.Error("no cell enqueued a single mover task")
	}
}

// TestDepthSweepTwoTierGolden is the backwards-compatibility half of
// the §11 determinism argument: a run on an explicit depth-2 topology
// (the sweep's reference plane) is byte-identical — same event trace,
// same result, same counters — to the default two-tier machine the
// golden traces were recorded on.
func TestDepthSweepTwoTierGolden(t *testing.T) {
	// hemem is excluded: MachineFor shrinks its fast tier by the
	// policy's over-allocation (Table 3 accounting), an adjustment the
	// depth sweep deliberately does not replicate.
	for _, pol := range []string{"memtis", "tpp"} {
		cfg := DefaultConfig()
		cfg.Accesses = 150_000

		run := func(c Config) ([]byte, []obs.Metric) {
			var buf bytes.Buffer
			sink := obs.NewJSONL(&buf)
			c.Trace = obs.NewTracer(sink)
			res := RunOne("silo", pol, Ratio1to8, c)
			if err := sink.Flush(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), res.Counters
		}
		defTrace, defCounters := run(cfg)

		tcfg := cfg
		rss := workload.MustNew("silo").Spec().RSSBytes()
		topo, err := TopologyForDepth(rss, Ratio1to8, 2, cfg.CapKind)
		if err != nil {
			t.Fatal(err)
		}
		tcfg.Topology = topo
		topoTrace, topoCounters := run(tcfg)

		if !bytes.Equal(defTrace, topoTrace) {
			t.Errorf("%s: event trace differs between the default machine and an explicit depth-2 topology", pol)
		}
		if !reflect.DeepEqual(defCounters, topoCounters) {
			t.Errorf("%s: counters differ between the default machine and an explicit depth-2 topology:\n%v\n%v",
				pol, defCounters, topoCounters)
		}
	}
}

// TestDepthSweepAdmissionLedger demonstrates the acceptance claim
// behind the admission counters: in a deep hierarchy there is a sweep
// cell where the benefit gate's rejections were vindicated — the pages
// it refused to promote did not go on to earn their migration cost
// (rejected_wasted dominates rejected_regret).
func TestDepthSweepAdmissionLedger(t *testing.T) {
	// Nimble at depth 4 is the demonstration cell: its exchange-driven
	// promotions target pages whose sampled hotness is far below what a
	// three-hop copy costs, so the benefit gate rejects them — and the
	// settlement window then confirms none would have earned the copy
	// back.
	cfg := DefaultConfig()
	cfg.Accesses = 200_000
	m, err := Sequential().DepthSweep(context.Background(), cfg, "silo", Ratio1to8,
		[]string{"nimble"}, []int{4}, []string{"always", "benefit"}, []uint32{0})
	if err != nil {
		t.Fatal(err)
	}
	counters := func(adm string) map[string]uint64 {
		for _, c := range m.Cells {
			if c.Ratio == depthCoord(Ratio1to8, 4, adm, 0) {
				cnt := map[string]uint64{}
				for _, mt := range c.Result.Counters {
					cnt[mt.Name] = mt.Value
				}
				return cnt
			}
		}
		t.Fatalf("cell %s missing", adm)
		return nil
	}
	always := counters("always")
	if always["admission/admitted"] == 0 {
		t.Error("always-admit cell admitted nothing")
	}
	if always["admission/rejected"] != 0 {
		t.Errorf("always-admit cell rejected %d migrations", always["admission/rejected"])
	}
	benefit := counters("benefit")
	if benefit["admission/rejected"] == 0 {
		t.Fatal("benefit cell rejected nothing — the gate is not engaging")
	}
	wasted, regret := benefit["admission/rejected_wasted"], benefit["admission/rejected_regret"]
	if wasted == 0 {
		t.Error("benefit cell settled no rejection as wasted")
	}
	if wasted <= regret {
		t.Errorf("rejections were net-positive: wasted=%d regret=%d", wasted, regret)
	}
}
