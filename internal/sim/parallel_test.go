// The per-machine RNG audit backing the parallel experiment runner
// (internal/bench): machines constructed from the same Config must be
// fully independent — no shared mutable state between runs anywhere in
// sim, vm, tier, tlb, pebs, core or workload — so that concurrent runs
// are bit-identical to isolated ones. Run under -race (make race).
package sim_test

import (
	"reflect"
	"sync"
	"testing"

	memtis "memtis/internal/core"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

func auditCfg(rss uint64) sim.Config {
	return sim.Config{
		FastBytes: rss / 9,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		THP:       true,
		Seed:      42,
		RecordNS:  500_000,
	}
}

// TestMachinesAreIndependent runs the same (config, policy, workload)
// triple on several concurrent machines and requires every result —
// stats, series, RSS, migration counters — to be identical to a run in
// isolation. Any cross-machine shared state (a package-level RNG, a
// shared pool, a cached table mutated during runs) shows up either as a
// result divergence here or as a data race under -race.
func TestMachinesAreIndependent(t *testing.T) {
	const goroutines = 4
	const accesses = 200_000

	run := func() sim.Result {
		w := workload.MustNew("silo")
		cfg := auditCfg(w.Spec().RSSBytes())
		return sim.Run(cfg, memtis.New(memtis.Config{}), w, accesses)
	}

	ref := run()

	results := make([]sim.Result, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			results[i] = run()
		}()
	}
	wg.Wait()

	for i, got := range results {
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("machine %d diverged from the isolated run:\n got %+v\nwant %+v", i, got, ref)
		}
	}
	if ref.Accesses == 0 || ref.VM.MigratedBytes == 0 {
		t.Fatalf("audit run too trivial to be meaningful: %+v", ref)
	}
}

// TestDistinctPoliciesShareNothing runs different policies concurrently
// against the same workload and checks each matches its own isolated
// reference — guarding against state shared through the policy
// registry or tier/vm internals rather than between identical twins.
func TestDistinctPoliciesShareNothing(t *testing.T) {
	const accesses = 150_000
	mk := func(name string) func() sim.Result {
		return func() sim.Result {
			w := workload.MustNew("pagerank")
			cfg := auditCfg(w.Spec().RSSBytes())
			var pol sim.Policy
			if name == "memtis" {
				pol = memtis.New(memtis.Config{})
			} else {
				pol = memtis.New(memtis.Config{SplitDisabled: true})
			}
			return sim.Run(cfg, pol, w, accesses)
		}
	}
	runs := []func() sim.Result{mk("memtis"), mk("memtis-ns")}
	refs := make([]sim.Result, len(runs))
	for i, r := range runs {
		refs[i] = r()
	}
	got := make([]sim.Result, len(runs))
	var wg sync.WaitGroup
	wg.Add(len(runs))
	for i := range runs {
		go func() {
			defer wg.Done()
			got[i] = runs[i]()
		}()
	}
	wg.Wait()
	for i := range runs {
		if !reflect.DeepEqual(got[i], refs[i]) {
			t.Fatalf("concurrent run %d diverged from its isolated reference", i)
		}
	}
}
