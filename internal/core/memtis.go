// Package memtis implements the paper's primary contribution: a tiered
// memory policy with access-distribution-based hot set classification
// (§4.2) and skewness-aware page size determination (§4.3), driven by
// PEBS-style sampling with bounded CPU overhead (§4.1).
//
// The policy maintains two exponential histograms — the page access
// histogram (over hotness factors H_i) and the emulated base-page
// histogram (over per-4KB hotness) — adapts hot/warm/cold thresholds
// with Algorithm 1, cools both histograms periodically to track an
// exponential moving average of access frequency, migrates pages
// strictly in the background (kmigrated), and splits highly skewed huge
// pages when the estimated base-page hit ratio (eHR) sufficiently
// exceeds the measured fast-tier hit ratio (rHR).
package memtis

import (
	"memtis/internal/histogram"
	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// Page flag bits in vm.Page.PFlags used by this policy.
const (
	flagInPromo = 1 << iota
	flagInDemoCold
	flagInDemoWarm
	flagRegistered
	flagScanRef // accessed since the last hybrid accessed-bit scan
)

// Background work cost model (ns); scaled by the same residual
// time-compression factor as package vm's costs (see DESIGN.md §4).
const (
	coolPageScanNS  = 4       // halve one page's counter + histogram fixup
	coolSubScanNS   = 1       // halve one subpage counter
	listScanPageNS  = 2       // demotion-list rebuild visit
	migBandwidthBPS = 8 << 30 // background migration copy bandwidth (~one core of kmigrated)
)

// Config tunes the policy. Zero values take scaled paper defaults; see
// DESIGN.md §4 for the scaling rationale.
type Config struct {
	Sampler pebs.Config

	// Alpha is Algorithm 1's fill-target factor (paper: 0.9).
	Alpha float64
	// AdaptEvery is the threshold-adaptation interval in samples
	// (paper: 100K at GB scale; default: fast-tier units / 2).
	AdaptEvery uint64
	// CoolEvery is the cooling interval in samples (paper: 2M at GB
	// scale; default: 4 * AdaptEvery).
	CoolEvery uint64
	// KmigratedPeriodNS is the background migration thread's wake
	// period (paper: 500ms at GB scale; default 1ms virtual).
	KmigratedPeriodNS uint64
	// FreeSpaceTarget is the fast-tier free-space threshold that
	// triggers demotion (paper: 2%).
	FreeSpaceTarget float64
	// SplitDisabled turns off skewness-aware huge page splitting
	// (the paper's MEMTIS-NS ablation).
	SplitDisabled bool
	// WarmDisabled turns off the warm set (the paper's "Vanilla"
	// ablation in Figure 10): every non-hot page is demotable.
	WarmDisabled bool
	// SplitBenefitMin is the minimum eHR-rHR gap that triggers
	// splitting (paper: 5%).
	SplitBenefitMin float64
	// Beta is the split-count scale factor of Eq. 2 (paper: 0.4).
	Beta float64
	// MaxSplitsPerWake bounds split work per kmigrated wake.
	MaxSplitsPerWake int
	// HybridScan enables the paper's §8 extension: a slow page-table
	// accessed-bit scan that accelerates the cooling of pages sampling
	// never sees, fixing PEBS's blind spot for rarely-accessed pages.
	HybridScan bool
	// HybridScanPeriodNS is the accessed-bit scan period (default 4ms
	// virtual when HybridScan is set).
	HybridScanPeriodNS uint64
}

func (c *Config) fillDefaults(fastUnits, rssHintUnits uint64) {
	if c.Alpha == 0 {
		c.Alpha = 0.9
	}
	if c.AdaptEvery == 0 {
		c.AdaptEvery = fastUnits / 2
		if c.AdaptEvery < 512 {
			c.AdaptEvery = 512
		}
	}
	if c.CoolEvery == 0 {
		c.CoolEvery = 3 * c.AdaptEvery
	}
	if c.KmigratedPeriodNS == 0 {
		c.KmigratedPeriodNS = 1_000_000
	}
	if c.FreeSpaceTarget == 0 {
		c.FreeSpaceTarget = 0.02
	}
	if c.SplitBenefitMin == 0 {
		c.SplitBenefitMin = 0.05
	}
	if c.Beta == 0 {
		c.Beta = 0.4
	}
	if c.MaxSplitsPerWake == 0 {
		c.MaxSplitsPerWake = 8
	}
	if c.HybridScan && c.HybridScanPeriodNS == 0 {
		c.HybridScanPeriodNS = 4_000_000
	}
	_ = rssHintUnits
}

// Policy is the MEMTIS tiering policy. Create one per machine run.
type Policy struct {
	cfg Config
	m   *sim.Machine
	smp *pebs.Sampler

	pageHist histogram.Histogram // H_i scale, units of 4KB pages
	baseHist histogram.Histogram // emulated base-page histogram
	th       histogram.Thresholds
	bth      histogram.Thresholds

	samplesSinceAdapt uint64
	samplesSinceCool  uint64

	// Registry-backed counters (machine-namespaced under Name()),
	// bound at Attach; nil until then, so the public accessors
	// nil-guard. Plain *uint64 increments — the machine is
	// single-threaded.
	coolings    *uint64
	adaptations *uint64
	samples     *uint64

	trace *obs.Tracer

	promo    []*vm.Page
	demoCold []*vm.Page
	demoWarm []*vm.Page

	nextWake    uint64
	nextScan    uint64
	rebuiltWake bool

	// Hit-ratio estimation window (§4.3.1).
	hrSamples     uint64
	hrFast        uint64
	hrEst         float64
	hugeSamples   uint64
	distinctHuge  uint64
	hrEpoch       uint64
	estimateEvery uint64

	// Lifetime hit-ratio aggregates for Figure 12.
	totSamples uint64
	totFast    uint64
	totEst     float64

	// Skewness buckets rebuilt at each cooling: bucket b holds huge
	// pages with log2(S_i) == b (clamped).
	skewBuckets [48][]*vm.Page
	skewEpoch   uint64

	splitQueue  []*vm.Page
	splits      *uint64
	dbgQueued   *uint64
	dbgBucketed *uint64
	dbgNs       *uint64
	dbgWindows  *uint64
	dbgRejCount *uint64
	dbgRejUtil  *uint64
	dbgRejU     *uint64
	dbgSeen     *uint64

	backgroundNS uint64
}

var _ sim.Policy = (*Policy)(nil)
var _ sim.HotSetReporter = (*Policy)(nil)

// New creates a MEMTIS policy with the given configuration.
func New(cfg Config) *Policy {
	return &Policy{cfg: cfg}
}

// Name implements sim.Policy.
func (p *Policy) Name() string {
	switch {
	case p.cfg.SplitDisabled && p.cfg.WarmDisabled:
		return "memtis-vanilla"
	case p.cfg.SplitDisabled:
		return "memtis-ns"
	case p.cfg.WarmDisabled:
		return "memtis-nowarm"
	case p.cfg.HybridScan:
		return "memtis-hybrid"
	default:
		return "memtis"
	}
}

// Attach implements sim.Policy.
func (p *Policy) Attach(m *sim.Machine) {
	p.m = m
	fastUnits := m.Fast.CapacityFrames()
	rssHint := m.Cap.CapacityFrames()
	p.cfg.fillDefaults(fastUnits, rssHint)
	p.smp = pebs.NewSampler(p.cfg.Sampler)
	p.trace = m.Cfg.Trace
	p.smp.Trace = m.Cfg.Trace
	g := m.Counters().Group(p.Name())
	p.coolings = g.Counter("coolings")
	p.adaptations = g.Counter("adaptations")
	p.samples = g.Counter("samples")
	p.splits = g.Counter("splits")
	p.dbgQueued = g.Counter("split_queued")
	p.dbgBucketed = g.Counter("split_bucketed")
	p.dbgNs = g.Counter("split_ns_sum")
	p.dbgWindows = g.Counter("split_windows")
	p.dbgSeen = g.Counter("split_seen")
	p.dbgRejCount = g.Counter("split_rej_samples")
	p.dbgRejUtil = g.Counter("split_rej_util")
	p.dbgRejU = g.Counter("split_rej_concentration")
	p.th = histogram.Thresholds{Hot: 1, Warm: 1, Cold: 0}
	p.bth = p.th
	p.nextWake = p.cfg.KmigratedPeriodNS
	p.estimateEvery = fastUnits / 4
	if p.estimateEvery < 1024 {
		p.estimateEvery = 1024
	}
	m.AS.OnUnmap = p.onUnmap
}

// PlaceNew implements sim.Policy: MEMTIS allocates on the fast tier
// whenever memory is available there (§4.2.1); the machine default does
// exactly that.
func (p *Policy) PlaceNew(huge bool, vpn uint64) tier.ID { return tier.NoTier }

// BackgroundNS implements sim.Policy.
func (p *Policy) BackgroundNS() uint64 { return p.backgroundNS + p.smp.SpentNS() }

// BusyCores implements sim.Policy: ksampled/kmigrated are event-driven.
func (p *Policy) BusyCores() float64 { return 0 }

// Capabilities implements sim.Policy: MEMTIS follows the full placement
// and migration contract with no declared deviations.
func (p *Policy) Capabilities() sim.Capability { return 0 }

// Sampler exposes the PEBS controller for overhead reporting (§6.3.5).
func (p *Policy) Sampler() *pebs.Sampler { return p.smp }

// deref reads a registry cell that may not be bound yet (before
// Attach the accessors report zero).
func deref(c *uint64) uint64 {
	if c == nil {
		return 0
	}
	return *c
}

// Coolings returns the number of cooling events performed.
func (p *Policy) Coolings() uint64 { return deref(p.coolings) }

// Splits returns the number of huge pages splintered.
func (p *Policy) Splits() uint64 { return deref(p.splits) }

// Thresholds returns the current page-access-histogram thresholds.
func (p *Policy) Thresholds() histogram.Thresholds { return p.th }

// EHR returns the lifetime estimated base-page hit ratio.
func (p *Policy) EHR() float64 { return fratio(p.totEst, p.totSamples) }

// RHR returns the lifetime measured fast-tier hit ratio over samples.
func (p *Policy) RHR() float64 { return ratio(p.totFast, p.totSamples) }

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fratio(a float64, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return a / float64(b)
}

// HotSet implements sim.HotSetReporter from the page access histogram.
func (p *Policy) HotSet() (hot, warm, cold uint64) {
	for b := 0; b < histogram.Bins; b++ {
		sz := p.pageHist.Bin(b) * tier.BasePageSize
		switch p.th.Classify(b) {
		case 1:
			hot += sz
		case 0:
			warm += sz
		default:
			cold += sz
		}
	}
	return hot, warm, cold
}

// registerPage adds a newly faulted page to both histograms with
// initial hotness at the current hot threshold (§4.2.1), preventing new
// pages from being immediate demotion victims.
func (p *Policy) registerPage(pg *vm.Page) {
	if pg.PFlags&flagRegistered != 0 {
		return
	}
	pg.PFlags |= flagRegistered
	if pg.IsHuge() {
		pg.Count = 1 << uint(p.th.Hot)
	} else {
		pg.Count = (1 << uint(p.th.Hot)) / tier.SubPages
	}
	pg.Bin = histogram.BinOf(pg.Hotness())
	p.pageHist.Add(pg.Bin, pg.Units())
	if pg.IsHuge() {
		// Subpage counters start at zero: the emulated base-page view
		// sees 512 cold 4KB pages until samples arrive.
		p.baseHist.Add(0, tier.SubPages)
	} else {
		p.baseHist.Add(pg.Bin, 1)
	}
}

// onUnmap drops a freed page from both histograms.
func (p *Policy) onUnmap(pg *vm.Page) {
	if pg.PFlags&flagRegistered == 0 {
		return
	}
	pg.PFlags &^= flagRegistered
	p.pageHist.Remove(pg.Bin, pg.Units())
	if pg.IsHuge() {
		for j := 0; j < tier.SubPages; j++ {
			p.baseHist.Remove(histogram.BinOf(pg.SubHotness(j)), 1)
		}
	} else {
		p.baseHist.Remove(pg.Bin, 1)
	}
}

// OnAccess implements sim.Policy. All MEMTIS work triggered here is
// background (ksampled) work; the returned critical-path stall is
// always zero — MEMTIS never extends the critical path (§3).
func (p *Policy) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	if tr.Faulted {
		p.registerPage(tr.Page)
	}
	if p.cfg.HybridScan {
		tr.Page.PFlags |= flagScanRef
	}
	if _, ok := p.smp.Feed(vpn, write); ok {
		*p.samples++
		p.processSample(tr)
	}
	p.smp.MaybeAdjust(p.m.Now())
	return 0
}

// processSample is ksampled's per-record work (§4.1, steps 2-3 of
// Figure 4): update page and subpage counters, move histogram bins,
// account hit ratios, and enqueue newly hot capacity-tier pages for
// promotion.
func (p *Policy) processSample(tr vm.TouchResult) {
	pg := tr.Page
	if pg.Dead() {
		return
	}
	if pg.PFlags&flagRegistered == 0 {
		p.registerPage(pg)
	}

	// Page access histogram update.
	oldBin := pg.Bin
	pg.Count++
	newBin := histogram.BinOf(pg.Hotness())
	if newBin != oldBin {
		p.pageHist.Move(oldBin, newBin, pg.Units())
		pg.Bin = newBin
	}

	// Emulated base-page histogram update. unitHotPrev is the 4KB
	// unit's hotness before this sample.
	var unitHotPrev uint64
	if pg.IsHuge() {
		pg.EnsureSubCount()
		j := tr.SubIdx
		unitHotPrev = pg.SubHotness(j)
		pg.SubCount[j]++
		p.baseHist.Move(histogram.BinOf(unitHotPrev), histogram.BinOf(pg.SubHotness(j)), 1)
	} else {
		unitHotPrev = (pg.Count - 1) * tier.SubPages
		if newBin != oldBin {
			p.baseHist.Move(oldBin, newBin, 1)
		}
	}

	// Hit-ratio estimation (§4.3.1).
	p.hrSamples++
	p.totSamples++
	if pg.Tier == tier.FastTier {
		p.hrFast++
		p.totFast++
	}
	// eHR uses the unit's hotness *before* this sample: it is an
	// estimated hit only if the unit already belonged to the hottest-
	// base-pages set. Judging after the increment would let the act of
	// sampling nominate every sampled page into the hot set and
	// inflate the estimate under sparse sampling.
	switch ub := histogram.BinOf(unitHotPrev); {
	case ub >= p.bth.Hot && unitHotPrev > 0:
		p.hrEst++
		p.totEst++
	case ub == p.bth.MarginBin && unitHotPrev > 0:
		// Marginal bin: only MarginFrac of it would fit in the fast
		// tier under base-page-only placement.
		p.hrEst += p.bth.MarginFrac
		p.totEst += p.bth.MarginFrac
	}
	if pg.IsHuge() {
		p.hugeSamples++
		if pg.P0 != p.hrEpoch {
			pg.P0 = p.hrEpoch
			p.distinctHuge++
		}
	}

	// Promotion candidates: hot capacity-tier pages only. Warm pages
	// are never migrated proactively — the migration overhead would
	// overshadow the benefit (§4.2.1); the warm set exists to protect
	// fast-tier residents from demotion, not to pull pages in.
	if pg.Tier == tier.CapacityTier && pg.Bin >= p.th.Hot && pg.PFlags&flagInPromo == 0 {
		pg.PFlags |= flagInPromo
		p.promo = append(p.promo, pg)
	}

	p.samplesSinceAdapt++
	p.samplesSinceCool++
	if p.samplesSinceAdapt >= p.cfg.AdaptEvery {
		p.adaptThresholds()
		p.samplesSinceAdapt = 0
	}
	if p.samplesSinceCool >= p.cfg.CoolEvery {
		p.cool()
		p.samplesSinceCool = 0
	}
	if p.hrSamples >= p.estimateEvery {
		p.estimateSplitBenefit()
	}
}

// adaptThresholds runs Algorithm 1 on both histograms (§4.2.1).
func (p *Policy) adaptThresholds() {
	fastUnits := p.m.Fast.CapacityFrames()
	p.th = histogram.Adapt(&p.pageHist, fastUnits, p.cfg.Alpha)
	p.bth = histogram.Adapt(&p.baseHist, fastUnits, p.cfg.Alpha)
	if p.cfg.WarmDisabled {
		p.th.Warm = p.th.Hot
		p.th.Cold = p.th.Hot - 1
	}
	*p.adaptations++
	// Aux packs the new thresholds as bin indices (uint8 wraps the
	// sentinel -1 to 255).
	p.trace.Emit(obs.EvAdapt, 0, false, 0, uint64(uint8(p.th.Hot))<<8|uint64(uint8(p.th.Warm)))
}

// cool halves every page's access count, shifts both histograms one bin
// left, fixes top-bin residents, rebuilds demotion lists and the
// skewness buckets (§4.2.2, §4.3.2). The scan cost is charged to
// kmigrated's background budget.
func (p *Policy) cool() {
	*p.coolings++
	p.skewEpoch++
	p.pageHist.Cool()
	p.baseHist.Cool()
	for i := range p.skewBuckets {
		p.skewBuckets[i] = p.skewBuckets[i][:0]
	}
	p.demoCold = p.demoCold[:0]
	p.demoWarm = p.demoWarm[:0]

	var scanned, subScanned uint64
	p.m.AS.ForEachPage(func(pg *vm.Page) {
		if pg.PFlags&flagRegistered == 0 {
			return
		}
		scanned++
		shifted := pg.Bin - 1
		if shifted < 0 {
			shifted = 0
		}
		pg.Count /= 2
		trueBin := histogram.BinOf(pg.Hotness())
		if trueBin != shifted {
			p.pageHist.Move(shifted, trueBin, pg.Units())
		}
		pg.Bin = trueBin
		if pg.IsHuge() {
			if pg.SubCount != nil {
				subScanned += tier.SubPages
				for j := 0; j < tier.SubPages; j++ {
					oldH := pg.SubHotness(j)
					if oldH == 0 {
						continue
					}
					sh := histogram.BinOf(oldH) - 1
					if sh < 0 {
						sh = 0
					}
					pg.SubCount[j] /= 2
					tb := histogram.BinOf(pg.SubHotness(j))
					if tb != sh {
						p.baseHist.Move(sh, tb, 1)
					}
				}
			}
			p.updateSkewness(pg)
		} else {
			// Base pages: the base-page histogram entry mirrors Bin;
			// the shift already moved it, fix clamping drift.
			sh := shifted
			if trueBin != sh {
				p.baseHist.Move(sh, trueBin, 1)
			}
		}
		pg.PFlags &^= flagInDemoCold | flagInDemoWarm
		if pg.Tier == tier.FastTier {
			switch p.th.Classify(pg.Bin) {
			case -1:
				pg.PFlags |= flagInDemoCold
				p.demoCold = append(p.demoCold, pg)
			case 0:
				pg.PFlags |= flagInDemoWarm
				p.demoWarm = append(p.demoWarm, pg)
			}
		}
	})
	p.backgroundNS += scanned*coolPageScanNS + subScanned*coolSubScanNS
	p.trace.Emit(obs.EvCooling, 0, false, 0, scanned)
	p.adaptThresholds()
	p.tryCollapse()
}

// updateSkewness computes S_i = sum(H_ij^2)/U_i^2 (Eq. 3) and files the
// page in its skew bucket. Split candidacy requires statistically
// meaningful evidence (§4.3.1's "long-term, stable memory access
// trends"): enough samples on the page, and a genuinely low sampled
// utilization — a uniformly hot page is never a candidate no matter how
// hot, because splitting it would only destroy TLB reach.
func (p *Policy) updateSkewness(pg *vm.Page) {
	if pg.SubCount == nil {
		return
	}
	const (
		minSamples           = 32
		maxUtilPct           = 45
		maxEffectiveSubpages = 64                // 12.5% of a huge page
		minDominantHotness   = 8 * tier.SubPages // >= 8 samples on one subpage
	)
	*p.dbgSeen++
	if pg.Count < minSamples {
		*p.dbgRejCount++
		return
	}
	// The utilization threshold is the estimator's effective hot
	// boundary: the margin bin when one exists, the hot threshold
	// otherwise (a once-sampled subpage can then still count, which is
	// the right behaviour under sparse sampling).
	uBin := p.bth.Hot
	if p.bth.MarginBin >= 0 && p.bth.MarginBin < uBin {
		uBin = p.bth.MarginBin
	}
	if uBin < 1 {
		uBin = 1
	}
	var u, nz, maxSub uint64
	var sum, lin float64
	for j := 0; j < tier.SubPages; j++ {
		h := pg.SubHotness(j)
		if h == 0 {
			continue
		}
		nz++
		if histogram.BinOf(h) >= uBin {
			u++
		}
		if h > maxSub {
			maxSub = h
		}
		hf := float64(h)
		sum += hf * hf
		lin += hf
	}
	if nz*100 > tier.SubPages*maxUtilPct {
		*p.dbgRejUtil++
		return
	}
	if u == 0 || sum == 0 {
		*p.dbgRejU++
		return
	}
	// Concentration gate: (sum H)^2 / sum(H^2) is the effective number
	// of participating subpages. A uniformly hot page scores near its
	// sampled-subpage count; a skewed page scores near its handful of
	// dominant subpages. Splitting a uniformly hot page would only
	// trade TLB reach for nothing, so demand real concentration.
	if lin*lin/sum > maxEffectiveSubpages {
		*p.dbgRejU++
		return
	}
	// The dominant subpage must show repeated hits: post-cooling
	// stragglers sampled once or twice are noise, not skew.
	if maxSub < minDominantHotness {
		*p.dbgRejU++
		return
	}
	s := sum / float64(u*u)
	b := 0
	for s >= 2 && b < len(p.skewBuckets)-1 {
		s /= 2
		b++
	}
	pg.P1 = p.skewEpoch
	p.skewBuckets[b] = append(p.skewBuckets[b], pg)
	*p.dbgBucketed++
}

// estimateSplitBenefit closes one estimation window (§4.3.1): if the
// emulated base-page hit ratio sufficiently exceeds the measured one,
// Eq. 2 sizes the split batch and the top-Ns most skewed huge pages are
// queued for background splitting.
func (p *Policy) estimateSplitBenefit() {
	eHR := fratio(p.hrEst, p.hrSamples)
	rHR := ratio(p.hrFast, p.hrSamples)
	nrSamples := p.hrSamples
	avgHP := 1.0
	if p.distinctHuge > 0 {
		avgHP = float64(p.hugeSamples) / float64(p.distinctHuge)
	}
	p.hrSamples, p.hrFast, p.hrEst = 0, 0, 0
	p.hugeSamples, p.distinctHuge = 0, 0
	p.hrEpoch++

	// Split only on long-term trends (§4.3.1): candidates need skewness
	// data from at least one cooling, so allocation-phase noise never
	// triggers splintering.
	if p.cfg.SplitDisabled || *p.coolings < 1 || eHR-rHR < p.cfg.SplitBenefitMin {
		return
	}
	lFast := float64(p.m.Fast.LoadNS())
	dL := float64(p.m.Cap.LoadNS()) - lFast
	ns := (eHR - rHR) * (dL / lFast) * (float64(nrSamples) * p.cfg.Beta / avgHP)
	limit := float64(nrSamples) / avgHP
	if ns > limit {
		ns = limit
	}
	n := int(ns)
	if n < 1 {
		n = 1
	}
	*p.dbgNs += uint64(n)
	*p.dbgWindows++
	p.queueSplitCandidates(n)
}

// queueSplitCandidates picks the top-n huge pages by skew bucket.
func (p *Policy) queueSplitCandidates(n int) {
	for b := len(p.skewBuckets) - 1; b >= 0 && n > 0; b-- {
		for _, pg := range p.skewBuckets[b] {
			if n == 0 {
				break
			}
			if pg.Dead() || !pg.IsHuge() || pg.P1 != p.skewEpoch {
				continue
			}
			pg.P1 = 0 // de-bucket
			p.splitQueue = append(p.splitQueue, pg)
			*p.dbgQueued++
			n--
		}
	}
}

// Tick implements sim.Policy; kmigrated wakes on its own period and
// runs, in order: queued huge-page splits, hot promotions (demoting
// cold-then-warm fast-tier pages on demand), free-space maintenance,
// and warm promotions into whatever space remains (evicting only cold
// pages, so warm never churns against warm).
func (p *Policy) Tick(now uint64) {
	if now < p.nextWake {
		return
	}
	for p.nextWake <= now {
		p.nextWake += p.cfg.KmigratedPeriodNS
	}
	p.rebuiltWake = false
	if p.cfg.HybridScan && now >= p.nextScan {
		for p.nextScan <= now {
			p.nextScan += p.cfg.HybridScanPeriodNS
		}
		p.hybridScan()
	}
	budget := uint64(float64(p.cfg.KmigratedPeriodNS) / 1e9 * migBandwidthBPS)
	if budget < 2*tier.HugePageSize {
		// kmigrated always finishes at least one huge-page operation
		// per wake, even if that overruns a very short period.
		budget = 2 * tier.HugePageSize
	}
	budget = p.runSplits(budget)
	budget = p.promoteList(&p.promo, flagInPromo, true, budget)
	p.reclaimTo(p.freeTarget(), true, &budget)
}

// runSplits splinters queued huge pages (§4.3.3): hot subpages go to
// the fast tier, cold subpages to the capacity tier, never-written
// subpages are reclaimed inside vm.Split.
func (p *Policy) runSplits(budget uint64) uint64 {
	done := 0
	for len(p.splitQueue) > 0 && done < p.cfg.MaxSplitsPerWake && budget >= tier.HugePageSize {
		pg := p.splitQueue[0]
		p.splitQueue = p.splitQueue[1:]
		if pg.Dead() || !pg.IsHuge() {
			continue
		}
		p.splitOne(pg)
		budget -= tier.HugePageSize
		done++
	}
	return budget
}

func (p *Policy) splitOne(pg *vm.Page) {
	// Drop the huge page from both histograms; re-register survivors.
	p.onUnmap(pg)
	hotBin := p.bth.Hot
	if p.bth.MarginBin >= 1 && p.bth.MarginBin < hotBin {
		hotBin = p.bth.MarginBin
	}
	subs, ns := p.m.AS.Split(pg, func(j int) tier.ID {
		if histogram.BinOf(pg.SubHotness(j)) >= hotBin {
			if p.m.Fast.FreeFrames() > 0 {
				return tier.FastTier
			}
			return tier.NoTier
		}
		return tier.CapacityTier
	})
	for _, sp := range subs {
		sp.PFlags = flagRegistered
		sp.Bin = histogram.BinOf(sp.Hotness())
		p.pageHist.Add(sp.Bin, 1)
		p.baseHist.Add(sp.Bin, 1)
	}
	p.backgroundNS += ns
	*p.splits++
}

// freeTarget is the fast-tier free-space threshold in frames: the
// configured fraction with a floor of two huge frames (capped at a
// quarter of the tier) so THP allocations can always be absorbed.
func (p *Policy) freeTarget() uint64 {
	f := uint64(float64(p.m.Fast.CapacityFrames()) * p.cfg.FreeSpaceTarget)
	floor := uint64(2 * tier.SubPages)
	if cap4 := p.m.Fast.CapacityFrames() / 4; floor > cap4 {
		floor = cap4
	}
	if f < floor {
		f = floor
	}
	return f
}

// promoteList drains one promotion queue. validFlag is the queue's
// membership flag; allowWarmVictims selects whether reclaim may demote
// warm fast-tier pages to make room (true for hot candidates only —
// warm candidates must never displace warm residents).
func (p *Policy) promoteList(list *[]*vm.Page, validFlag uint32, allowWarmVictims bool, budget uint64) uint64 {
	target := p.freeTarget()
	for len(*list) > 0 && budget > 0 {
		pg := (*list)[0]
		valid := !pg.Dead() && pg.Tier == tier.CapacityTier
		if valid {
			if allowWarmVictims {
				valid = pg.Bin >= p.th.Hot
			} else {
				valid = p.th.Classify(pg.Bin) >= 0
			}
		}
		if !valid {
			pg.PFlags &^= validFlag
			*list = (*list)[1:]
			continue
		}
		need := pg.Units() + target
		if p.m.Fast.FreeFrames() < need {
			p.reclaimTo(need, allowWarmVictims, &budget)
			if p.m.Fast.FreeFrames() < need {
				break
			}
		}
		if pg.Bytes() > budget {
			break
		}
		*list = (*list)[1:]
		pg.PFlags &^= validFlag
		if p.migrate(pg, tier.FastTier) {
			budget -= pg.Bytes()
		}
	}
	return budget
}

// migrate moves one page transactionally with bounded retries on
// fault-aborted copies, charging kmigrated for the successful copy and
// for every wasted attempt plus backoff. With faults disabled this is
// exactly the old single-shot Migrate: no retries, no extra cost.
func (p *Policy) migrate(pg *vm.Page, dst tier.ID) bool {
	fp := p.m.Faults()
	for attempt := 0; ; attempt++ {
		ns, st := p.m.AS.MigrateTx(pg, dst)
		p.backgroundNS += ns
		if st == vm.MigrateOK {
			return true
		}
		if st != vm.MigrateAborted || attempt >= fp.MaxRetries() {
			return false
		}
		p.backgroundNS += fp.RetryBackoffNS(attempt)
		p.trace.Emit(obs.EvMigrateRetry, pg.VPN, pg.IsHuge(), pg.Bytes(), uint64(attempt+1))
	}
}

// reclaimTo demotes fast-tier pages until the tier has at least frames
// free: cold pages first, warm pages only if still short and allowed
// (§4.2.3). Hot pages are never demoted.
func (p *Policy) reclaimTo(frames uint64, allowWarm bool, budget *uint64) {
	pop := func(list *[]*vm.Page, flag uint32) *vm.Page {
		for len(*list) > 0 {
			pg := (*list)[0]
			*list = (*list)[1:]
			pg.PFlags &^= flag
			if pg.Dead() || pg.Tier != tier.FastTier {
				continue
			}
			return pg
		}
		return nil
	}
	for p.m.Fast.FreeFrames() < frames && *budget > 0 {
		pg := pop(&p.demoCold, flagInDemoCold)
		if pg == nil && allowWarm {
			pg = pop(&p.demoWarm, flagInDemoWarm)
		}
		if pg == nil {
			if p.rebuiltWake || !p.rebuildDemoLists() {
				return
			}
			p.rebuiltWake = true
			continue
		}
		// Re-check classification: the page may have become hot.
		if pg.Bin >= p.th.Hot {
			continue
		}
		if !allowWarm && p.th.Classify(pg.Bin) == 0 {
			continue
		}
		if pg.Bytes() > *budget {
			return
		}
		if p.migrate(pg, tier.CapacityTier) {
			*budget -= pg.Bytes()
		}
	}
}

// rebuildDemoLists rescans fast-tier pages for demotion candidates when
// both lists run dry under pressure. Returns false if nothing is
// demotable (all fast-tier pages are hot).
func (p *Policy) rebuildDemoLists() bool {
	var scanned uint64
	p.m.AS.ForEachPage(func(pg *vm.Page) {
		scanned++
		if pg.Tier != tier.FastTier || pg.PFlags&(flagInDemoCold|flagInDemoWarm) != 0 {
			return
		}
		switch p.th.Classify(pg.Bin) {
		case -1:
			pg.PFlags |= flagInDemoCold
			p.demoCold = append(p.demoCold, pg)
		case 0:
			pg.PFlags |= flagInDemoWarm
			p.demoWarm = append(p.demoWarm, pg)
		}
	})
	p.backgroundNS += scanned * listScanPageNS
	return len(p.demoCold)+len(p.demoWarm) > 0
}

// hybridScan is the §8 extension: an accessed-bit sweep that detects
// pages the sampler never observes. Untouched-since-last-scan pages
// have their counters halved an extra time, so idle pages shed the
// protective initial hotness they were registered with and become
// demotion candidates without waiting for several sampling-driven
// coolings. Touched pages just get their reference bit cleared.
func (p *Policy) hybridScan() {
	var scanned uint64
	p.m.AS.ForEachPage(func(pg *vm.Page) {
		if pg.PFlags&flagRegistered == 0 {
			return
		}
		scanned++
		if pg.PFlags&flagScanRef != 0 {
			pg.PFlags &^= flagScanRef
			return
		}
		if pg.Count == 0 {
			return
		}
		oldBin := pg.Bin
		pg.Count /= 2
		pg.Bin = histogram.BinOf(pg.Hotness())
		if pg.Bin != oldBin {
			p.pageHist.Move(oldBin, pg.Bin, pg.Units())
			if !pg.IsHuge() {
				p.baseHist.Move(oldBin, pg.Bin, 1)
			}
		}
		if pg.Tier == tier.FastTier && p.th.Classify(pg.Bin) == -1 &&
			pg.PFlags&flagInDemoCold == 0 {
			pg.PFlags |= flagInDemoCold
			p.demoCold = append(p.demoCold, pg)
		}
	})
	p.backgroundNS += scanned * listScanPageNS
}

// tryCollapse coalesces aligned runs of 512 base pages back into a huge
// page when every constituent is hot (§4.3.3). Done during cooling, as
// the paper's kmigrated does; rare by design.
func (p *Policy) tryCollapse() {
	if p.cfg.SplitDisabled {
		return
	}
	type blockInfo struct {
		present int
		hot     int
	}
	blocks := make(map[uint64]*blockInfo)
	p.m.AS.ForEachPage(func(pg *vm.Page) {
		if pg.IsHuge() {
			return
		}
		b := pg.VPN / tier.SubPages
		bi := blocks[b]
		if bi == nil {
			bi = &blockInfo{}
			blocks[b] = bi
		}
		bi.present++
		if pg.Bin >= p.th.Hot {
			bi.hot++
		}
	})
	for b, bi := range blocks {
		if bi.present != tier.SubPages || bi.hot != tier.SubPages {
			continue
		}
		base := b * tier.SubPages
		dst := tier.CapacityTier
		if p.m.Fast.HasHugeFrame() {
			dst = tier.FastTier
		}
		// Unregister constituents, collapse, re-register.
		var olds []*vm.Page
		for j := uint64(0); j < tier.SubPages; j++ {
			olds = append(olds, p.m.AS.Lookup(base+j))
		}
		hp, ns, ok := p.m.AS.Collapse(base, dst)
		if !ok {
			continue
		}
		for _, o := range olds {
			if o != nil && o.PFlags&flagRegistered != 0 {
				p.pageHist.Remove(o.Bin, 1)
				p.baseHist.Remove(o.Bin, 1)
				o.PFlags &^= flagRegistered
			}
		}
		hp.PFlags = flagRegistered
		hp.Bin = histogram.BinOf(hp.Hotness())
		p.pageHist.Add(hp.Bin, tier.SubPages)
		for j := 0; j < tier.SubPages; j++ {
			p.baseHist.Add(histogram.BinOf(hp.SubHotness(j)), 1)
		}
		p.backgroundNS += ns
	}
}

// DebugBaseHist exposes the emulated base-page histogram and its
// thresholds for diagnostics and tests.
func (p *Policy) DebugBaseHist() (bins [histogram.Bins]uint64, th histogram.Thresholds) {
	for i := 0; i < histogram.Bins; i++ {
		bins[i] = p.baseHist.Bin(i)
	}
	return bins, p.bth
}

// DebugSplitStats exposes split pipeline counters for diagnostics.
func (p *Policy) DebugSplitStats() (queued, executed uint64, queueLen int) {
	return deref(p.dbgQueued), deref(p.splits), len(p.splitQueue)
}

// DebugSplitSupply exposes candidate-supply counters for diagnostics.
func (p *Policy) DebugSplitSupply() (bucketed, nsSum, windows uint64) {
	return deref(p.dbgBucketed), deref(p.dbgNs), deref(p.dbgWindows)
}

// DebugSplitRejects exposes per-gate rejection counters.
func (p *Policy) DebugSplitRejects() (seen, rejCount, rejUtil, rejU uint64) {
	return deref(p.dbgSeen), deref(p.dbgRejCount), deref(p.dbgRejUtil), deref(p.dbgRejU)
}
