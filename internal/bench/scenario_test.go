package bench

import (
	"context"
	"encoding/json"
	"testing"

	"memtis/internal/scenario"
)

// TestScenarioSmokeSweep is the deterministic scenario sweep make
// check runs: the listed hunt seeds must pass every conformance
// invariant, and running each twice must produce byte-identical
// results — the fixed-seed reproducibility the nightly fuzz job's
// failure messages depend on. Seeds 0..9 match the fuzz corpus;
// 10/13/14/17 fill in HuntShape combinations (depth 2-4 with and
// without benefit admission and the background mover) the first ten
// under-cover. Seeds 0/2/3/5/17 also draw the sharded-tenant shape
// (shards 2 and 4), so the sweep exercises the tenant-sharded
// byte-identity cross-check at both shard counts.
func TestScenarioSmokeSweep(t *testing.T) {
	for _, seed := range []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 13, 14, 17} {
		seed := seed
		t.Run(scenario.Generate(seed).Name, func(t *testing.T) {
			t.Parallel()
			first, err := HuntScenario(seed, 0, "")
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range first.Violations {
				t.Error(v)
			}
			second, err := HuntScenario(seed, 0, "")
			if err != nil {
				t.Fatal(err)
			}
			a, err := json.Marshal(first)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(second)
			if err != nil {
				t.Fatal(err)
			}
			if string(a) != string(b) {
				t.Fatalf("hunt seed %d is not deterministic:\n%s\nvs\n%s", seed, a, b)
			}
		})
	}
}

// TestHuntParamsDeterministic pins that the (policy, ratio) pairing is
// a pure function of the seed and stays inside the registries.
func TestHuntParamsDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		p1, r1 := HuntParams(seed)
		p2, r2 := HuntParams(seed)
		if p1 != p2 || r1 != r2 {
			t.Fatalf("seed %d: HuntParams not deterministic", seed)
		}
		if !KnownPolicy(p1) {
			t.Fatalf("seed %d: unknown policy %q", seed, p1)
		}
	}
}

// TestScenarioMatrixDeterminism pins that a parallel scenario-matrix
// fan-out over a shared compiled Runner is cell-for-cell identical to
// the sequential reference, exactly like the workload matrix.
func TestScenarioMatrixDeterminism(t *testing.T) {
	scs := []*scenario.Runner{
		scenario.MustCompile(scenario.Generate(5), scenario.Options{}),
		scenario.MustCompile(scenario.Generate(7), scenario.Options{}),
	}
	cfg := DefaultConfig()
	cfg.Accesses = 20_000
	ratios := []Ratio{Ratio1to8}
	pols := []string{"memtis", "static", "autonuma"}
	seq, err := Sequential().RunScenarioMatrix(context.Background(), cfg, scs, ratios, pols)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(8).RunScenarioMatrix(context.Background(), cfg, scs, ratios, pols)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != len(scs)*len(ratios)*len(pols) {
		t.Fatalf("matrix has %d cells", len(seq.Cells))
	}
	for i := range seq.Cells {
		a, b := seq.Cells[i], par.Cells[i]
		if a.Workload != b.Workload || a.Ratio != b.Ratio || a.Policy != b.Policy {
			t.Fatalf("cell %d order mismatch: %+v vs %+v", i, a, b)
		}
		if a.Value != b.Value || a.Result.AppNS != b.Result.AppNS {
			t.Fatalf("cell %d (%s/%s/%s) diverged: %v vs %v",
				i, a.Workload, a.Ratio, a.Policy, a.Value, b.Value)
		}
	}
}
