// Command benchreport runs the repository's hot-path benchmark suite
// and records the result as a schema-stable JSON snapshot, so the
// per-access cost of the simulator is tracked continuously instead of
// anecdotally.
//
// It shells out to `go test -bench` over the hot-path packages
// (internal/sim, internal/vm, internal/tlb, internal/bench by default),
// parses the standard benchmark output, and writes BENCH_<n>.json into
// the output directory, where <n> is one past the highest existing
// snapshot. When a previous snapshot exists it also prints a
// per-benchmark comparison and — with -maxregress set — fails if any
// shared benchmark's ns/op regressed beyond the threshold, which is how
// CI and `make bench` gate the hot loop.
//
// Usage:
//
//	benchreport                          # measure, snapshot, compare
//	benchreport -benchtime 1x            # CI smoke: compile + run once
//	benchreport -maxregress 0.25         # fail on >25% ns/op regression
//	benchreport -bench MachineAccess     # subset by benchmark regexp
//	benchreport -ratio 'BenchmarkTenantAccess/tenants=1 BenchmarkMachineAccess 2.0'
//
// The -ratio gate bounds one benchmark's ns/op against another's from
// the same run: both sides move with the runner's speed, so the ratio
// stays meaningful on noisy shared CI machines where absolute ns/op
// thresholds do not.
//
// The JSON schema is stable ("benchreport/v1"): benchmarks are sorted
// by package then name, names are stripped of the -GOMAXPROCS suffix,
// and every entry carries ns_per_op, bytes_per_op, allocs_per_op and
// accesses_per_sec (iterations per second — every benchmark in the
// suite issues one access or lookup per iteration).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Report is the top-level BENCH_<n>.json document (schema
// "benchreport/v1"). Field order and names are part of the contract:
// downstream diffs and the regression gate rely on them.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	Benchtime  string  `json:"benchtime"`
	Count      int     `json:"count"`
	Benchmarks []Bench `json:"benchmarks"`
}

// Bench is one benchmark's measurement. AccessesPerSec is derived
// (1e9/NsPerOp) and recorded so trajectory plots need no arithmetic.
type Bench struct {
	Name           string  `json:"name"`
	Package        string  `json:"package"`
	NsPerOp        float64 `json:"ns_per_op"`
	BytesPerOp     uint64  `json:"bytes_per_op"`
	AllocsPerOp    uint64  `json:"allocs_per_op"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
}

func main() {
	var (
		pkgs       = flag.String("pkgs", "./internal/sim,./internal/vm,./internal/tlb,./internal/bench,./internal/core", "comma-separated packages holding the benchmark suite")
		benchRe    = flag.String("bench", ".", "benchmark selection regexp (go test -bench)")
		benchtime  = flag.String("benchtime", "300ms", "go test -benchtime (use 1x for a smoke run)")
		count      = flag.Int("count", 1, "go test -count; with >1 the best (minimum) ns/op per benchmark is recorded")
		outDir     = flag.String("out", ".", "directory for BENCH_<n>.json snapshots")
		baseline   = flag.String("baseline", "", "explicit baseline JSON (default: highest BENCH_<n>.json in -out)")
		maxRegress = flag.Float64("maxregress", 0, "fail when any shared benchmark's ns/op regresses by more than this fraction (0 disables the gate)")
		dry        = flag.Bool("dry", false, "measure and compare but do not write a snapshot")
		ratio      = flag.String("ratio", "", "same-run ratio gate: \"NUM DEN MAX\" (whitespace-separated benchmark names and a bound) — fail when NUM's ns/op exceeds MAX x DEN's ns/op in this run")
	)
	flag.Parse()

	prevPath, prevN := latestSnapshot(*outDir)
	if *baseline != "" {
		prevPath = *baseline
	}

	rep, err := measure(strings.Split(*pkgs, ","), *benchRe, *benchtime, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmarks matched")
		os.Exit(2)
	}

	if !*dry {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("BENCH_%d.json", prevN+1))
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", path, len(rep.Benchmarks))
	}

	if prevPath == "" {
		fmt.Println("no baseline snapshot; comparison skipped")
		return
	}
	prev, err := readReport(prevPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(2)
	}
	regressed := compare(os.Stdout, prev, rep, prevPath, *maxRegress)
	if regressed {
		fmt.Fprintf(os.Stderr, "benchreport: ns/op regression beyond %.0f%% threshold\n", *maxRegress*100)
		os.Exit(1)
	}
	checkRatio(rep, *ratio)
}

// checkRatio enforces the -ratio gate: both sides are measured in this
// run on the same machine, so the ratio is robust to runner speed where
// absolute ns/op bounds are not — the form CI uses to gate scheduler
// overhead. Benchmark names cannot contain spaces, so the spec is
// whitespace-separated. No-op on an empty spec; exits on failure.
func checkRatio(rep *Report, spec string) {
	if spec == "" {
		return
	}
	f := strings.Fields(spec)
	if len(f) != 3 {
		fmt.Fprintf(os.Stderr, "benchreport: -ratio %q: want \"NUM DEN MAX\"\n", spec)
		os.Exit(2)
	}
	bound, err := strconv.ParseFloat(f[2], 64)
	if err != nil || bound <= 0 {
		fmt.Fprintf(os.Stderr, "benchreport: -ratio %q: bad bound %q\n", spec, f[2])
		os.Exit(2)
	}
	find := func(name string) Bench {
		for _, b := range rep.Benchmarks {
			if b.Name == name {
				return b
			}
		}
		fmt.Fprintf(os.Stderr, "benchreport: -ratio: benchmark %q not in this run (check -bench)\n", name)
		os.Exit(2)
		panic("unreachable")
	}
	num, den := find(f[0]), find(f[1])
	r := num.NsPerOp / den.NsPerOp
	fmt.Printf("ratio gate: %s %.1f ns/op / %s %.1f ns/op = %.2fx (bound %.2fx)\n",
		num.Name, num.NsPerOp, den.Name, den.NsPerOp, r, bound)
	if r > bound {
		fmt.Fprintf(os.Stderr, "benchreport: ratio %.2fx exceeds the %.2fx bound\n", r, bound)
		os.Exit(1)
	}
}

// measure runs the benchmark suite and parses it into a Report. With
// count > 1 the minimum ns/op per benchmark wins (least-noise estimate,
// as benchstat's geomean would be overkill for a trajectory file).
func measure(pkgs []string, benchRe, benchtime string, count int) (*Report, error) {
	args := []string{"test", "-run", "^$", "-bench", benchRe,
		"-benchtime", benchtime, "-benchmem", "-count", strconv.Itoa(count)}
	args = append(args, pkgs...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s%s", err, errb.String(), out.String())
	}
	rep := &Report{
		Schema:    "benchreport/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime,
		Count:     count,
	}
	best := map[string]Bench{} // key: package + "." + name
	var pkg string
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		b, ok := parseBenchLine(line, pkg)
		if !ok {
			continue
		}
		key := b.Package + "." + b.Name
		if prev, seen := best[key]; !seen || b.NsPerOp < prev.NsPerOp {
			best[key] = b
		}
	}
	for _, b := range best {
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool {
		a, b := rep.Benchmarks[i], rep.Benchmarks[j]
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Name < b.Name
	})
	return rep, nil
}

// gomaxprocsSuffix strips the -N parallelism suffix go test appends to
// benchmark names, so snapshots compare across machines.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine decodes one `BenchmarkFoo-8  N  x ns/op  y B/op  z
// allocs/op` line; ok is false for non-benchmark lines.
func parseBenchLine(line, pkg string) (Bench, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Bench{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return Bench{}, false
	}
	b := Bench{Name: gomaxprocsSuffix.ReplaceAllString(f[0], ""), Package: pkg}
	for i := 2; i+1 < len(f); i++ {
		v := f[i]
		switch f[i+1] {
		case "ns/op":
			ns, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Bench{}, false
			}
			b.NsPerOp = ns
		case "B/op":
			b.BytesPerOp, _ = strconv.ParseUint(v, 10, 64)
		case "allocs/op":
			b.AllocsPerOp, _ = strconv.ParseUint(v, 10, 64)
		}
	}
	if b.NsPerOp <= 0 {
		return Bench{}, false
	}
	b.AccessesPerSec = 1e9 / b.NsPerOp
	return b, true
}

// latestSnapshot returns the highest-numbered BENCH_<n>.json in dir
// (path "" and n -1 when none exist, so the first snapshot written is
// BENCH_0.json).
func latestSnapshot(dir string) (path string, n int) {
	n = -1
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", n
	}
	for _, e := range entries {
		var k int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &k); err == nil &&
			e.Name() == fmt.Sprintf("BENCH_%d.json", k) && k > n {
			n = k
			path = filepath.Join(dir, e.Name())
		}
	}
	return path, n
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &r, nil
}

// compare prints a per-benchmark delta table against the baseline and
// reports whether any shared benchmark regressed beyond maxRegress
// (ignored when <= 0). A 1x-smoke baseline or measurement compares like
// any other — callers that want timing to be meaningful pass a real
// benchtime.
func compare(w *os.File, prev, cur *Report, prevPath string, maxRegress float64) bool {
	old := map[string]Bench{}
	for _, b := range prev.Benchmarks {
		old[b.Package+"."+b.Name] = b
	}
	fmt.Fprintf(w, "vs %s:\n", prevPath)
	regressed := false
	for _, b := range cur.Benchmarks {
		p, ok := old[b.Package+"."+b.Name]
		if !ok {
			fmt.Fprintf(w, "  %-50s %10.1f ns/op  (new)\n", b.Name, b.NsPerOp)
			continue
		}
		delta := (b.NsPerOp - p.NsPerOp) / p.NsPerOp
		mark := ""
		if maxRegress > 0 && delta > maxRegress {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "  %-50s %10.1f -> %10.1f ns/op  %+6.1f%%%s\n",
			b.Name, p.NsPerOp, b.NsPerOp, delta*100, mark)
	}
	return regressed
}
