package scenario

import (
	"bytes"
	"testing"
)

// FuzzScenarioSpec fuzzes the spec codec: any input that decodes and
// validates must re-encode canonically — Encode(Decode(enc)) is
// byte-identical to enc once the spec has passed through Encode once.
// This pins the strict decoder, the omitempty layout and Validate's
// rejection of non-finite numbers (json.Marshal would error on them)
// in one property.
func FuzzScenarioSpec(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"name":"x","phases":[{"workload":"silo"}]}`),
		[]byte(`{"name":"x","faults":"rate=10000ppm,retries=2","phases":[{"workload":"graph500","rss_gb":0.5,"weight":2}]}`),
		[]byte(`{"name":"m","phases":[{"grow":[{"name":"a","bytes":4194304}],"mix":[{"region":"a","dist":"zipf","s":0.99,"write_percent":30}]},{"free":["a"]},{"workload":"btree"}]}`),
		[]byte(`{"name":"t","phases":[{"trace":"some/file.trace"}]}`),
		[]byte(`{`),
		[]byte(`{"name":"x","phases":[]}`),
	}
	for seed := uint64(0); seed < 8; seed++ {
		enc, err := Generate(seed).Encode()
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, enc)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Decode(data)
		if err != nil {
			return // malformed input: rejection is the correct outcome
		}
		if err := spec.Validate(); err != nil {
			return
		}
		enc, err := spec.Encode()
		if err != nil {
			t.Fatalf("valid spec failed to encode: %v", err)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, enc)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("canonical encoding no longer validates: %v\n%s", err, enc)
		}
		enc2, err := got.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not a fixpoint:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
