// graph runs a real PageRank over a synthetic power-law graph whose
// rank vectors and edge lists live in simulated tiered memory: every
// edge scan and rank update issues the matching memory access. The
// small, persistently hot rank vectors and the large streamed edge list
// are the pattern where recency-based tiering (TPP) churns while
// MEMTIS's access-distribution classification keeps the rank vectors
// resident (§6.2.1).
package main

import (
	"fmt"
	"math/rand"

	"memtis"
)

// Graph stores a CSR-ish edge list plus rank arrays, all placed in
// simulated memory.
type Graph struct {
	m       *memtis.Machine
	outDeg  []uint32
	edges   []uint32 // flattened destination lists
	rank    []float64
	next    []float64
	edgeVPN uint64 // base VPN of the edge region
	rankVPN uint64 // base VPN of the rank region
	edgePer uint64 // edges per 4KB page (capacity of one page)
	rankPer uint64 // ranks per 4KB page
}

// NewGraph builds a power-law graph with n vertices and avgDeg average
// out-degree.
func NewGraph(m *memtis.Machine, n int, avgDeg int, rng *rand.Rand) *Graph {
	g := &Graph{
		m:       m,
		outDeg:  make([]uint32, n),
		rank:    make([]float64, n),
		next:    make([]float64, n),
		edgePer: 1024, // 4 bytes per edge
		rankPer: 512,  // 8 bytes per rank
	}
	zipf := rand.NewZipf(rng, 1.3, 8, uint64(n-1))
	total := n * avgDeg
	g.edges = make([]uint32, 0, total)
	for len(g.edges) < total {
		src := int(zipf.Uint64())
		g.outDeg[src]++
		g.edges = append(g.edges, uint32(rng.Intn(n)))
	}
	edgeRegion := m.Reserve(uint64(len(g.edges)) * 4)
	rankRegion := m.Reserve(uint64(n) * 8 * 2) // rank + next
	g.edgeVPN, g.rankVPN = edgeRegion.BaseVPN, rankRegion.BaseVPN
	// Populate (first touch).
	for i := 0; i < len(g.edges); i += int(g.edgePer) {
		m.Access(g.edgeVPN+uint64(i)/g.edgePer, true)
	}
	for v := 0; v < n; v += int(g.rankPer) {
		m.Access(g.rankVPN+uint64(v)/g.rankPer, true)
		g.rank[v] = 1.0 / float64(n)
	}
	return g
}

// Iterate runs one PageRank iteration, issuing a simulated access per
// touched cache-line-group: edge pages stream, rank pages are hammered.
func (g *Graph) Iterate() {
	n := len(g.rank)
	var e int
	for v := 0; v < n; v++ {
		deg := int(g.outDeg[v])
		if deg == 0 {
			continue
		}
		// Read this vertex's rank.
		g.m.Access(g.rankVPN+uint64(v)/g.rankPer, false)
		share := g.rank[v] / float64(deg)
		for k := 0; k < deg && e < len(g.edges); k++ {
			dst := g.edges[e]
			// Stream the edge list (one access per cache-line group of
			// 16 edges), then update the destination rank — PageRank's
			// random-access bottleneck.
			if e%16 == 0 {
				g.m.Access(g.edgeVPN+uint64(e)/int64u(g.edgePer), false)
			}
			// next[dst] += ... is a read-modify-write: the load is what
			// misses the cache (and what PEBS-style sampling observes);
			// the dirty line writes back later.
			g.m.Access(g.rankVPN+uint64(dst)/g.rankPer, e%4 == 0)
			g.next[dst] += 0.85 * share
			e++
		}
	}
	base := 0.15 / float64(n)
	for v := 0; v < n; v++ {
		g.rank[v], g.next[v] = base+g.next[v], 0
	}
}

func int64u(x uint64) uint64 { return x }

func run(name string, pol memtis.Policy) memtis.Result {
	cfg := memtis.MachineConfig{
		FastBytes: 8 << 20,   // rank vectors barely fit
		CapBytes:  128 << 20, // edge lists spill to NVM
		CapKind:   memtis.NVM,
		THP:       true,
		Seed:      3,
	}
	m := memtis.NewMachine(cfg, pol)
	rng := rand.New(rand.NewSource(3))
	g := NewGraph(m, 200_000, 40, rng)
	for it := 0; it < 2; it++ {
		g.Iterate()
	}
	return m.Finish(name)
}

func main() {
	fmt.Println("PageRank over a 200K-vertex power-law graph (8MB DRAM + NVM):")
	fmt.Printf("%-10s %12s %14s %12s\n", "policy", "hit ratio", "throughput", "wall (ms)")
	pols := []memtis.Policy{memtis.NewStatic(), memtis.NewAutoNUMA(), memtis.NewTPP(), memtis.NewMEMTIS()}
	for _, p := range pols {
		r := run(p.Name(), p)
		fmt.Printf("%-10s %11.1f%% %11.2f M/s %11.1f\n",
			r.Policy, r.FastHitRatio*100, r.Throughput/1e6, float64(r.WallNS)/1e6)
	}
}
