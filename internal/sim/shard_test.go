// Determinism tests for the VPN-sharded machine (DESIGN.md §12): the
// parallel workers must be byte-identical to the Sequential reference
// mode at every shard count, and a one-shard Sharded machine must
// replay exactly the stream a plain Machine sees (the block routing is
// the identity mapping at S=1).
package sim_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	memtis "memtis/internal/core"
	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// shardTestPolicy builds the per-shard MEMTIS instance with the same
// dense fixed-period sampler the store-equivalence suite uses: at this
// compressed scale the default self-adjusting sampler is too sparse to
// classify a hot set inside one shard's slice of the stream, which
// would leave the migration paths (the interesting determinism
// surface) unexercised.
func shardTestPolicy() sim.Policy {
	smp := pebs.DefaultConfig()
	smp.LoadPeriod, smp.MinPeriod, smp.MaxPeriod = 8, 8, 8
	return memtis.New(memtis.Config{Sampler: smp, CoolEvery: 12_000})
}

// shardDriver is the surface the test stream needs; both *sim.Sharded
// and *sim.Machine satisfy it (Machine trivially, with global == local
// VPNs).
type shardDriver interface {
	Reserve(bytes uint64) vm.Region
	Access(vpn uint64, write bool)
	FreeRegion(r vm.Region)
}

// driveShardStream issues a synthetic stream in global VPNs: fault-in,
// a skewed steady phase of iters accesses that builds fast-tier
// pressure, and periodic churn (free + re-reserve + re-touch) so
// reserve and free ops interleave with accesses. Callers scale iters
// with the shard count so each shard's slice of the stream stays thick
// enough for its sampler to classify a hot set. All regions are
// whole-2MB multiples so plain and sharded reservations return
// identical regions.
func driveShardStream(d shardDriver, iters int) {
	rng := rand.New(rand.NewSource(1234))
	big := d.Reserve(48 << 20)
	for vpn := big.BaseVPN; vpn < big.BaseVPN+big.Pages; vpn += 16 {
		d.Access(vpn, true)
	}
	churn := d.Reserve(4 << 20)
	// Hot quarter at the TAIL of the region: fault-in order fills the
	// fast tier with the head, so the hot set starts on capacity and
	// must be promoted — every shard sees real tiering pressure.
	hot := big.Pages / 4
	for i := 0; i < iters; i++ {
		var vpn uint64
		if rng.Intn(10) < 8 {
			vpn = big.BaseVPN + big.Pages - hot + rng.Uint64()%hot
		} else {
			vpn = big.BaseVPN + rng.Uint64()%big.Pages
		}
		d.Access(vpn, rng.Intn(4) == 0)
		if i%60_000 == 59_999 {
			d.FreeRegion(churn)
			churn = d.Reserve(4 << 20)
			for v := churn.BaseVPN; v < churn.BaseVPN+churn.Pages; v += 64 {
				d.Access(v, true)
			}
		}
	}
}

func shardTestConfig() sim.Config {
	return sim.Config{
		// 32MB fast: at 8 shards each shard still gets two 2MB blocks,
		// so migrations have headroom even on the thinnest slice.
		FastBytes: 32 << 20,
		CapBytes:  128 << 20,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      7,
		TickNS:    100_000,
		RecordNS:  400_000,
		// Fault injection with a zero Faults.Seed: each shard derives
		// an independent fault plan from its derived machine seed, and
		// the determinism contract must hold through aborted retries.
		Faults: tier.FaultConfig{MigrateFailPpm: 50_000, MaxRetries: 2},
	}
}

// runShardStream executes the synthetic stream on an S-shard machine
// and returns the per-shard JSONL traces and results.
func runShardStream(shards int, sequential bool) ([][]byte, []sim.Result) {
	bufs := make([]*bytes.Buffer, shards)
	sinks := make([]*obs.JSONL, shards)
	s := sim.NewSharded(sim.ShardedConfig{
		Shards:     shards,
		Sequential: sequential,
		Machine:    shardTestConfig(),
		PolicyFor:  func(int) sim.Policy { return shardTestPolicy() },
		TraceFor: func(i int) *obs.Tracer {
			bufs[i] = &bytes.Buffer{}
			sinks[i] = obs.NewJSONL(bufs[i])
			return obs.NewTracer(sinks[i])
		},
	})
	driveShardStream(s, 240_000*shards)
	rs := s.Finish("shardstream")
	traces := make([][]byte, shards)
	for i, b := range bufs {
		if err := sinks[i].Flush(); err != nil {
			panic(err)
		}
		traces[i] = b.Bytes()
	}
	return traces, rs
}

// TestShardedSeqParallelIdentical is the headline determinism gate
// (run under -race in CI): for 1, 2 and 8 shards, the parallel workers
// produce byte-identical per-shard event traces and identical results
// to the Sequential reference mode.
func TestShardedSeqParallelIdentical(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			seqTr, seqRes := runShardStream(shards, true)
			parTr, parRes := runShardStream(shards, false)
			var events int
			for i := 0; i < shards; i++ {
				if !bytes.Equal(seqTr[i], parTr[i]) {
					t.Errorf("shard %d: parallel trace differs from sequential (%d vs %d bytes)",
						i, len(parTr[i]), len(seqTr[i]))
				}
				if len(seqTr[i]) == 0 {
					t.Errorf("shard %d: empty trace — stream never reached it", i)
				}
				if !reflect.DeepEqual(seqRes[i], parRes[i]) {
					t.Errorf("shard %d: parallel result differs from sequential:\nseq %+v\npar %+v",
						i, seqRes[i], parRes[i])
				}
				events += bytes.Count(seqTr[i], []byte("\n"))
				if seqRes[i].VM.Promotions == 0 {
					t.Errorf("shard %d: no promotions — stream exerts no tiering pressure", i)
				}
			}
			if events == 0 {
				t.Fatal("no events traced")
			}
		})
	}
}

// TestShardedOneShardMatchesMachine pins the S=1 compatibility
// contract: block routing is the identity mapping at one shard, so a
// one-shard Sharded machine is byte-identical — trace and result — to
// a plain Machine fed the same stream. This is what lets every
// existing golden-trace and conformance suite stand unmodified.
func TestShardedOneShardMatchesMachine(t *testing.T) {
	var plainBuf bytes.Buffer
	sink := obs.NewJSONL(&plainBuf)
	cfg := shardTestConfig()
	cfg.Trace = obs.NewTracer(sink)
	m := sim.NewMachine(cfg, shardTestPolicy())
	driveShardStream(m, 240_000)
	plainRes := m.Finish("shardstream")
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	shTr, shRes := runShardStream(1, false)
	if !bytes.Equal(plainBuf.Bytes(), shTr[0]) {
		t.Errorf("one-shard trace differs from plain machine (%d vs %d bytes)",
			len(shTr[0]), plainBuf.Len())
	}
	if !reflect.DeepEqual(plainRes, shRes[0]) {
		t.Errorf("one-shard result differs from plain machine:\nplain %+v\nshard %+v",
			plainRes, shRes[0])
	}
	if plainRes.VM.Promotions == 0 || plainBuf.Len() == 0 {
		t.Fatal("reference run exerted no tiering pressure; test is vacuous")
	}
}

// TestAggregateShards checks the merge arithmetic on a real run: sums
// for counts, max for time, access-weighted fast-hit ratio.
func TestAggregateShards(t *testing.T) {
	_, rs := runShardStream(4, false)
	agg := sim.AggregateShards(rs)
	var acc, faults uint64
	var maxWall uint64
	for _, r := range rs {
		acc += r.Accesses
		faults += r.VM.Faults
		if r.WallNS > maxWall {
			maxWall = r.WallNS
		}
	}
	if agg.Accesses != acc {
		t.Errorf("aggregate accesses %d, want %d", agg.Accesses, acc)
	}
	if agg.VM.Faults != faults {
		t.Errorf("aggregate faults %d, want %d", agg.VM.Faults, faults)
	}
	if agg.WallNS != maxWall {
		t.Errorf("aggregate wall %d, want slowest shard %d", agg.WallNS, maxWall)
	}
	if agg.FastHitRatio <= 0 || agg.FastHitRatio > 1 {
		t.Errorf("aggregate fast-hit ratio %f out of range", agg.FastHitRatio)
	}
	if agg.Throughput <= 0 {
		t.Error("aggregate throughput is zero")
	}
}

// TestShardedAggregateThroughput is the 100M+ aggregate simulated
// accesses/sec gate at 8 shards. The pattern keeps the Zipf popularity
// distribution but spreads hot ranks across 2MB blocks with a
// multiplicative hash (as real hot sets span blocks), so the lanes
// stay balanced instead of funnelling the head of the distribution
// into the shard owning block 0. The gate needs the workers actually
// running in parallel, so it only asserts on machines with enough
// cores; elsewhere it reports the measured rate and skips.
func TestShardedAggregateThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate")
	}
	s := sim.NewSharded(sim.ShardedConfig{
		Shards: 8,
		Machine: sim.Config{
			FastBytes: 16 << 20,
			CapBytes:  96 << 20,
			CapKind:   tier.NVM,
			THP:       true,
			Seed:      7,
		},
	})
	r := s.Reserve(64 << 20)
	for vpn := r.BaseVPN; vpn < r.BaseVPN+r.Pages; vpn += tier.SubPages {
		s.Access(vpn, true)
	}
	s.Flush()
	rng := rand.New(rand.NewSource(11))
	z := rand.NewZipf(rng, 1.2, 1, r.Pages-1)
	vpns := make([]uint64, 1<<16)
	for i := range vpns {
		vpns[i] = r.BaseVPN + (z.Uint64()*2654435761)%r.Pages
	}
	const total = 16 << 20
	start := time.Now()
	for i := 0; i < total; i++ {
		s.Access(vpns[i&(len(vpns)-1)], i&7 == 0)
	}
	s.Flush()
	rate := float64(total) / time.Since(start).Seconds()
	t.Logf("aggregate: %.1fM simulated accesses/sec at 8 shards on %d CPUs", rate/1e6, runtime.NumCPU())
	if runtime.NumCPU() < 9 {
		t.Skipf("aggregate gate needs 9+ CPUs (8 workers + driver), have %d", runtime.NumCPU())
	}
	if rate < 100e6 {
		t.Fatalf("aggregate rate %.1fM accesses/sec below the 100M/sec floor", rate/1e6)
	}
}

// BenchmarkMachineAccessSharded measures the end-to-end sharded access
// cost — routing, enqueue, and the pipelined worker time — on the
// policy-free machine, mirroring BenchmarkMachineAccess's Zipf stream.
// ns/op is wall time per enqueued access. On single-core hosts this is
// driver + worker cost serialised; the parallel aggregate gate is
// TestShardedAggregateThroughput.
func BenchmarkMachineAccessSharded(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := sim.NewSharded(sim.ShardedConfig{
				Shards: shards,
				Machine: sim.Config{
					FastBytes: 16 << 20,
					CapBytes:  96 << 20,
					CapKind:   tier.NVM,
					THP:       true,
					Seed:      7,
				},
			})
			r := s.Reserve(64 << 20)
			for vpn := r.BaseVPN; vpn < r.BaseVPN+r.Pages; vpn += tier.SubPages {
				s.Access(vpn, true)
			}
			s.Flush()
			rng := rand.New(rand.NewSource(11))
			z := rand.NewZipf(rng, 1.2, 1, r.Pages-1)
			vpns := make([]uint64, 1<<16)
			for i := range vpns {
				vpns[i] = r.BaseVPN + z.Uint64()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Access(vpns[i&(len(vpns)-1)], i&7 == 0)
			}
			s.Flush()
		})
	}
}
