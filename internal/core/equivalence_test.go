// Lazy-vs-eager cooling equivalence (DESIGN.md §8): the incremental
// classification structures must be an optimisation, not a semantic
// change. An eager reference mode (eagerConverge: cool() settles every
// page before adapting thresholds) is run against the lazy default on
// identical access streams; after the lazy side settles its pending
// epochs, per-page classification, thresholds and the hot set must
// match exactly.
//
// The one documented divergence is MaxBin pinning: a page whose
// hotness saturates the top histogram bin can settle to a different
// bin than an eager halving would produce. Test workloads keep
// per-page hotness well below 2^15 so the equivalence is exact.
package memtis

import (
	"math/rand"
	"reflect"
	"testing"

	"memtis/internal/obs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// equivPair builds a lazy policy and an eager reference policy over
// identical machines. Adaptation and cooling schedules are disabled so
// the test scripts cooling points explicitly; the fast tier is sized
// to hold the whole working set so no migrations perturb the streams.
func equivPair(fastBlocks, capBlocks int) (lazy, eager *Policy, ml, me *sim.Machine, rings [2]*obs.Ring) {
	mk := func(i int) (*Policy, *sim.Machine) {
		p := New(Config{Sampler: everySample(), AdaptEvery: 1 << 62, CoolEvery: 1 << 62})
		rings[i] = obs.NewRing(1 << 16)
		m := sim.NewMachine(sim.Config{
			FastBytes: uint64(fastBlocks) * tier.HugePageSize,
			CapBytes:  uint64(capBlocks) * tier.HugePageSize,
			CapKind:   tier.NVM,
			THP:       true,
			Seed:      1,
			Trace:     obs.NewTracer(rings[i]),
		}, p)
		return p, m
	}
	lazy, ml = mk(0)
	eager, me = mk(1)
	eager.eagerConverge = true
	return lazy, eager, ml, me, rings
}

// settle applies every pending cooling epoch on the lazy side so its
// per-page state is comparable with the eager reference.
func settle(p *Policy) { p.m.AS.ForEachPage(p.applyCooling) }

// compareClassification asserts per-page Count/Bin, thresholds and the
// aggregate hot set match between the two policies.
func compareClassification(t *testing.T, lazy, eager *Policy) {
	t.Helper()
	settle(lazy)
	if lazy.th != eager.th {
		t.Fatalf("thresholds diverged: lazy %+v, eager %+v", lazy.th, eager.th)
	}
	pages := map[uint64]*vm.Page{}
	eager.m.AS.ForEachPage(func(pg *vm.Page) { pages[pg.VPN] = pg })
	lazy.m.AS.ForEachPage(func(pg *vm.Page) {
		ref, ok := pages[pg.VPN]
		if !ok {
			t.Fatalf("page %d exists only on the lazy side", pg.VPN)
		}
		if pg.Count != ref.Count {
			t.Fatalf("page %d: lazy Count %d, eager %d", pg.VPN, pg.Count, ref.Count)
		}
		if pg.Bin != ref.Bin {
			t.Fatalf("page %d: lazy Bin %d, eager %d", pg.VPN, pg.Bin, ref.Bin)
		}
		delete(pages, pg.VPN)
	})
	if len(pages) != 0 {
		t.Fatalf("%d pages exist only on the eager side", len(pages))
	}
	lh, lw, lc := lazy.HotSet()
	eh, ew, ec := eager.HotSet()
	if lh != eh || lw != ew || lc != ec {
		t.Fatalf("hot set diverged: lazy %d/%d/%d, eager %d/%d/%d", lh, lw, lc, eh, ew, ec)
	}
}

// TestLazyEagerEquivalenceScripted runs a hand-written workload — a
// hot page, a warm page, cold pages — through three cooling events
// with accesses interleaved, checking equivalence after every cooling.
func TestLazyEagerEquivalenceScripted(t *testing.T) {
	lazy, eager, ml, me, rings := equivPair(16, 16)
	rl := ml.Reserve(8 * tier.HugePageSize)
	re := me.Reserve(8 * tier.HugePageSize)

	phase := func(hot, warm int) {
		for _, run := range []struct {
			m *sim.Machine
			r vm.Region
		}{{ml, rl}, {me, re}} {
			for i := 0; i < hot; i++ {
				run.m.Access(run.r.BaseVPN+uint64(i%128), false)
			}
			for i := 0; i < warm; i++ {
				run.m.Access(run.r.BaseVPN+2*tier.SubPages+uint64(i%64), i%2 == 0)
			}
			// The coldest pages are faulted in but never revisited.
			run.m.Access(run.r.BaseVPN+5*tier.SubPages, false)
		}
	}

	phase(600, 40)
	for cool := 0; cool < 3; cool++ {
		lazy.DebugForceCool()
		eager.DebugForceCool()
		phase(200, 30)
		compareClassification(t, lazy, eager)
	}
	if lazy.Coolings() != 3 || eager.Coolings() != 3 {
		t.Fatalf("coolings = %d/%d, want 3", lazy.Coolings(), eager.Coolings())
	}
	// Identical event streams: with no migrations in this cell, lazy
	// and eager runs emit the same events at the same virtual times —
	// eager settling changes when counters are halved, not what the
	// machine observes.
	le, ee := rings[0].Events(), rings[1].Events()
	if !reflect.DeepEqual(le, ee) {
		t.Fatalf("event traces diverged: lazy %d events, eager %d", len(le), len(ee))
	}
}

// TestLazyEagerEquivalenceProperty drives random access streams with
// random cooling points through both modes across several seeds. Any
// ordering of samples and coolings must leave lazy and eager in the
// same classification state once the lazy side settles.
func TestLazyEagerEquivalenceProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		lazy, eager, ml, me, _ := equivPair(16, 16)
		rl := ml.Reserve(8 * tier.HugePageSize)
		re := me.Reserve(8 * tier.HugePageSize)

		rng := rand.New(rand.NewSource(seed))
		const steps = 6000
		coolAt := map[int]bool{}
		for len(coolAt) < 4 {
			coolAt[rng.Intn(steps)] = true
		}
		for i := 0; i < steps; i++ {
			// Zipf-ish skew: low offsets dominate, so bins spread out.
			off := uint64(rng.Intn(64) * rng.Intn(64))
			write := rng.Intn(4) == 0
			ml.Access(rl.BaseVPN+off, write)
			me.Access(re.BaseVPN+off, write)
			if coolAt[i] {
				lazy.DebugForceCool()
				eager.DebugForceCool()
			}
		}
		compareClassification(t, lazy, eager)
		if lazy.Coolings() < 3 {
			t.Fatalf("seed %d: only %d coolings exercised", seed, lazy.Coolings())
		}
	}
}

// TestStaleDemotionEntriesNeverMigrated pins the staleness contract of
// the incrementally maintained demotion lists: a page that is unmapped
// or split after entering a list must never be handed out as a
// demotion victim, however the unlink hooks and defensive pop-time
// checks divide the work.
func TestStaleDemotionEntriesNeverMigrated(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 1 << 62, CoolEvery: 1 << 62})
	m := sim.NewMachine(sim.Config{
		FastBytes: 8 * tier.HugePageSize,
		CapBytes:  64 * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       false, // base pages register cold, straight onto the demo lists
		Seed:      1,
	}, pol)

	r := m.Reserve(2 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, false)
	}
	// One cooling drains the single faulting sample each page carries;
	// once settled, every resident base page is bin-0 cold — exactly
	// the pop order popDemo serves first.
	pol.DebugForceCool()
	settle(pol)
	if n := len(pol.fastByBin[0]); n != int(r.Pages) {
		t.Fatalf("cold list holds %d pages, want %d", n, r.Pages)
	}
	m.FreeRegion(r)
	for pg := pol.popDemo(true); pg != nil; pg = pol.popDemo(true) {
		if pg.Dead() {
			t.Fatalf("popDemo returned dead page %d after FreeRegion", pg.VPN)
		}
		t.Fatalf("popDemo returned page %d from a fully unmapped region", pg.VPN)
	}

	// Split staleness: cool a fast-tier huge page down to the demotion
	// range, then split it. The dead huge page must never surface.
	pol2 := New(Config{Sampler: everySample(), AdaptEvery: 1 << 62, CoolEvery: 1 << 62})
	m2 := newTestMachine(pol2, 8, 16)
	r2 := m2.Reserve(tier.HugePageSize)
	m2.Access(r2.BaseVPN, false)
	hp := m2.AS.Lookup(r2.BaseVPN)
	if hp == nil || !hp.IsHuge() || hp.Tier != tier.FastTier {
		t.Fatal("huge page not resident in fast tier")
	}
	for i := 0; i < 3; i++ { // bin 1 -> 0: into the cold list once settled
		pol2.DebugForceCool()
	}
	settle(pol2)
	if hp.Bin != 0 {
		t.Fatalf("huge page bin %d after cooling, want 0", hp.Bin)
	}
	pol2.splitOne(hp)
	if !hp.Dead() {
		t.Fatal("splitOne left the huge page alive")
	}
	for pg := pol2.popDemo(true); pg != nil; pg = pol2.popDemo(true) {
		if pg.Dead() || pg == hp {
			t.Fatalf("popDemo surfaced the split huge page (vpn %d)", pg.VPN)
		}
		if !pg.IsHuge() && pg.Tier == tier.FastTier {
			continue // live subpage: a legitimate victim
		}
		t.Fatalf("popDemo returned invalid victim vpn=%d tier=%v", pg.VPN, pg.Tier)
	}
	if err := m2.AS.Audit(); err != nil {
		t.Fatalf("address-space audit after split: %v", err)
	}
}
