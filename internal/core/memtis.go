// Package memtis implements the paper's primary contribution: a tiered
// memory policy with access-distribution-based hot set classification
// (§4.2) and skewness-aware page size determination (§4.3), driven by
// PEBS-style sampling with bounded CPU overhead (§4.1).
//
// The policy maintains two exponential histograms — the page access
// histogram (over hotness factors H_i) and the emulated base-page
// histogram (over per-4KB hotness) — adapts hot/warm/cold thresholds
// with Algorithm 1, cools both histograms periodically to track an
// exponential moving average of access frequency, migrates pages
// strictly in the background (kmigrated), and splits highly skewed huge
// pages when the estimated base-page hit ratio (eHR) sufficiently
// exceeds the measured fast-tier hit ratio (rHR).
//
// Background work is incremental (DESIGN.md §8): cooling is a lazy
// global epoch applied per page on the next touch plus a bounded cursor
// sweep, demotion candidates live in incrementally-maintained per-bin
// lists, and collapse candidates come from per-2MB-block presence
// counters feeding a verified ready queue — no policy path scans the
// whole address space, so background cost per cooling is O(changed
// pages + bounded sweep), independent of RSS.
package memtis

import (
	"math"

	"memtis/internal/histogram"
	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// Page flag bits in vm.Page.PFlags used by this policy.
const (
	flagInPromo = 1 << iota
	// flagInFastList: the page is linked into fastByBin[pg.Bin] at
	// index pg.PIdx. Every registered fast-tier page carries this flag
	// except transiently after a failed demotion (the cooling sweep
	// re-links such orphans).
	flagInFastList
	flagRegistered
	flagScanRef // accessed since the last hybrid accessed-bit scan
)

// Background work cost model (ns); scaled by the same residual
// time-compression factor as package vm's costs (see DESIGN.md §4).
const (
	coolPageScanNS  = 4       // apply one page's pending cooling + histogram fixup
	coolSubScanNS   = 1       // halve one subpage counter
	listScanPageNS  = 2       // sweep/scan visit of one page
	migBandwidthBPS = 8 << 30 // background migration copy bandwidth (~one core of kmigrated)
)

// Config tunes the policy. Zero values take scaled paper defaults; see
// DESIGN.md §4 for the scaling rationale.
type Config struct {
	Sampler pebs.Config

	// Alpha is Algorithm 1's fill-target factor (paper: 0.9).
	Alpha float64
	// AdaptEvery is the threshold-adaptation interval in samples
	// (paper: 100K at GB scale; default: fast-tier units / 2).
	AdaptEvery uint64
	// CoolEvery is the cooling interval in samples (paper: 2M at GB
	// scale; default: 4 * AdaptEvery).
	CoolEvery uint64
	// KmigratedPeriodNS is the background migration thread's wake
	// period (paper: 500ms at GB scale; default 1ms virtual).
	KmigratedPeriodNS uint64
	// FreeSpaceTarget is the fast-tier free-space threshold that
	// triggers demotion (paper: 2%).
	FreeSpaceTarget float64
	// SplitDisabled turns off skewness-aware huge page splitting
	// (the paper's MEMTIS-NS ablation).
	SplitDisabled bool
	// WarmDisabled turns off the warm set (the paper's "Vanilla"
	// ablation in Figure 10): every non-hot page is demotable.
	WarmDisabled bool
	// SplitBenefitMin is the minimum eHR-rHR gap that triggers
	// splitting (paper: 5%).
	SplitBenefitMin float64
	// Beta is the split-count scale factor of Eq. 2 (paper: 0.4).
	Beta float64
	// MaxSplitsPerWake bounds split work per kmigrated wake.
	MaxSplitsPerWake int
	// HybridScan enables the paper's §8 extension: a slow page-table
	// accessed-bit scan that accelerates the cooling of pages sampling
	// never sees, fixing PEBS's blind spot for rarely-accessed pages.
	HybridScan bool
	// HybridScanPeriodNS is the accessed-bit scan period (default 4ms
	// virtual when HybridScan is set).
	HybridScanPeriodNS uint64
	// HybridScanPages bounds one accessed-bit scan event to a window of
	// pages, resumed from a cursor like the kernel's LRU walkers
	// (default 512).
	HybridScanPages int
	// CoolSweepPages bounds the per-wake cooling-convergence sweep: up
	// to this many pages get their pending cooling epochs applied per
	// kmigrated wake, so pages the sampler never revisits still
	// converge within RSS/CoolSweepPages wakes (default 256).
	CoolSweepPages int
}

func (c *Config) fillDefaults(fastUnits, rssHintUnits uint64) {
	if c.Alpha == 0 {
		c.Alpha = 0.9
	}
	if c.AdaptEvery == 0 {
		c.AdaptEvery = fastUnits / 2
		if c.AdaptEvery < 512 {
			c.AdaptEvery = 512
		}
	}
	if c.CoolEvery == 0 {
		c.CoolEvery = 3 * c.AdaptEvery
	}
	if c.KmigratedPeriodNS == 0 {
		c.KmigratedPeriodNS = 1_000_000
	}
	if c.FreeSpaceTarget == 0 {
		c.FreeSpaceTarget = 0.02
	}
	if c.SplitBenefitMin == 0 {
		c.SplitBenefitMin = 0.05
	}
	if c.Beta == 0 {
		c.Beta = 0.4
	}
	if c.MaxSplitsPerWake == 0 {
		c.MaxSplitsPerWake = 8
	}
	if c.HybridScan && c.HybridScanPeriodNS == 0 {
		c.HybridScanPeriodNS = 4_000_000
	}
	if c.HybridScanPages == 0 {
		c.HybridScanPages = 512
	}
	if c.CoolSweepPages == 0 {
		c.CoolSweepPages = 256
	}
	_ = rssHintUnits
}

// blockState tracks one aligned 2MB block of base pages for collapse
// candidacy (§4.3.3): present counts live base pages in the block;
// queued dedups membership in the ready queue. Hotness is not counted
// here — it would go stale under threshold motion — readiness is
// verified per candidate when the queue drains at cooling.
type blockState struct {
	present uint16
	queued  bool
}

// Policy is the MEMTIS tiering policy. Create one per machine run.
type Policy struct {
	cfg  Config
	m    *sim.Machine
	smp  *pebs.Sampler
	gate *policy.AdmissionGate

	pageHist histogram.Histogram // H_i scale, units of 4KB pages
	baseHist histogram.Histogram // emulated base-page histogram
	th       histogram.Thresholds
	bth      histogram.Thresholds

	samplesSinceAdapt uint64
	samplesSinceCool  uint64

	// Registry-backed counters (machine-namespaced under Name()),
	// bound at Attach; nil until then, so the public accessors
	// nil-guard. Plain *uint64 increments — the machine is
	// single-threaded.
	coolings    *uint64
	adaptations *uint64
	samples     *uint64
	lazyApplied *uint64 // cool_lazy_applied: pending epochs applied on touch/sweep
	sweepPages  *uint64 // cool_sweep_pages: pages visited by the convergence sweep
	readyCtr    *uint64 // collapse_ready: blocks enqueued as collapse candidates
	busyGauge   *uint64 // bg_share_mcores: BusyCores EMA in millicores
	busyPeak    *uint64 // bg_share_peak_mcores: max of the same

	trace *obs.Tracer

	promo []*vm.Page

	// fastByBin holds every registered fast-tier page, keyed by its
	// cached histogram bin, with flagInFastList/PIdx as the intrusive
	// back-reference (swap-remove, O(1) membership changes). Demotion
	// pops coldest bins first; there is no rebuild scan — membership is
	// maintained at every point that already mutates Bin, Tier or
	// registration (DESIGN.md §8).
	fastByBin [histogram.Bins][]*vm.Page

	// coolEpoch is the global cooling epoch; vm.Page.P2 is the page's
	// last-applied epoch. Invariant: a registered page's units sit in
	// pageHist at pg.Bin iff pg.P2 == coolEpoch; otherwise they sit at
	// clamp(pg.Bin - delta, 0), exactly where delta Histogram.Cool()
	// shifts left them, and applyCooling owes the page delta halvings.
	coolEpoch   uint64
	sweepCursor uint64
	scanCursor  uint64

	// Collapse ready queue, double-buffered so draining never aliases
	// concurrent enqueues; oldsBuf is the reusable verification scratch
	// (the eager implementation allocated a map plus slices per
	// cooling).
	blocks       map[uint64]*blockState
	readyBlocks  []uint64
	readyScratch []uint64
	oldsBuf      [tier.SubPages]*vm.Page

	nextWake uint64
	nextScan uint64

	// BusyCores derivation: background-ns delta over the elapsed wake
	// window, smoothed (§4.4's overhead budget made observable).
	busyEMA     float64
	lastWakeNow uint64
	lastWakeBG  uint64

	// Hit-ratio estimation window (§4.3.1).
	hrSamples     uint64
	hrFast        uint64
	hrEst         float64
	hugeSamples   uint64
	distinctHuge  uint64
	hrEpoch       uint64
	estimateEvery uint64

	// Lifetime hit-ratio aggregates for Figure 12.
	totSamples uint64
	totFast    uint64
	totEst     float64

	// Skewness buckets rebuilt each cooling epoch: bucket b holds huge
	// pages with log2(S_i) == b (clamped), filed when their pending
	// cooling is applied.
	skewBuckets [48][]*vm.Page
	skewEpoch   uint64

	splitQueue  []*vm.Page
	splits      *uint64
	dbgQueued   *uint64
	dbgBucketed *uint64
	dbgNs       *uint64
	dbgWindows  *uint64
	dbgRejCount *uint64
	dbgRejUtil  *uint64
	dbgRejU     *uint64
	dbgSeen     *uint64

	backgroundNS uint64

	// eagerConverge is a test-only reference mode: cool() applies every
	// pending epoch to every page before adapting thresholds,
	// reproducing the retired eager scan's semantics exactly. The
	// equivalence suite compares lazy runs against it.
	eagerConverge bool
}

var _ sim.Policy = (*Policy)(nil)
var _ sim.HotSetReporter = (*Policy)(nil)

// New creates a MEMTIS policy with the given configuration.
func New(cfg Config) *Policy {
	return &Policy{cfg: cfg}
}

// Name implements sim.Policy.
func (p *Policy) Name() string {
	switch {
	case p.cfg.SplitDisabled && p.cfg.WarmDisabled:
		return "memtis-vanilla"
	case p.cfg.SplitDisabled:
		return "memtis-ns"
	case p.cfg.WarmDisabled:
		return "memtis-nowarm"
	case p.cfg.HybridScan:
		return "memtis-hybrid"
	default:
		return "memtis"
	}
}

// Attach implements sim.Policy.
func (p *Policy) Attach(m *sim.Machine) {
	p.m = m
	fastUnits := m.Fast.CapacityFrames()
	rssHint := m.Cap.CapacityFrames()
	p.cfg.fillDefaults(fastUnits, rssHint)
	p.smp = pebs.NewSampler(p.cfg.Sampler)
	p.trace = m.Cfg.Trace
	p.smp.Trace = m.Cfg.Trace
	g := m.Counters().Group(p.Name())
	p.coolings = g.Counter("coolings")
	p.adaptations = g.Counter("adaptations")
	p.samples = g.Counter("samples")
	p.lazyApplied = g.Counter("cool_lazy_applied")
	p.sweepPages = g.Counter("cool_sweep_pages")
	p.readyCtr = g.Counter("collapse_ready")
	p.busyGauge = g.Gauge("bg_share_mcores")
	p.busyPeak = g.Gauge("bg_share_peak_mcores")
	p.splits = g.Counter("splits")
	p.dbgQueued = g.Counter("split_queued")
	p.dbgBucketed = g.Counter("split_bucketed")
	p.dbgNs = g.Counter("split_ns_sum")
	p.dbgWindows = g.Counter("split_windows")
	p.dbgSeen = g.Counter("split_seen")
	p.dbgRejCount = g.Counter("split_rej_samples")
	p.dbgRejUtil = g.Counter("split_rej_util")
	p.dbgRejU = g.Counter("split_rej_concentration")
	p.th = histogram.Thresholds{Hot: 1, Warm: 1, Cold: 0}
	p.bth = p.th
	p.nextWake = p.cfg.KmigratedPeriodNS
	p.estimateEvery = fastUnits / 4
	if p.estimateEvery < 1024 {
		p.estimateEvery = 1024
	}
	p.blocks = make(map[uint64]*blockState)
	p.gate = policy.NewAdmissionGate(m)
	m.AS.OnUnmap = p.onUnmap
}

// PlaceNew implements sim.Policy: MEMTIS allocates on the fast tier
// whenever memory is available there (§4.2.1); the machine default does
// exactly that.
func (p *Policy) PlaceNew(huge bool, vpn uint64) tier.ID { return tier.NoTier }

// BackgroundNS implements sim.Policy.
func (p *Policy) BackgroundNS() uint64 { return p.backgroundNS + p.smp.SpentNS() }

// BusyCores implements sim.Policy: the smoothed share of one CPU that
// ksampled+kmigrated consumed over recent wake windows, derived from
// the BackgroundNS delta per elapsed interval (§4.4). The same value is
// exported as the bg_share_mcores gauge in sim.Result counters, where
// the conformance suite bounds it.
func (p *Policy) BusyCores() float64 { return p.busyEMA }

// Capabilities implements sim.Policy: MEMTIS follows the full placement
// and migration contract with no declared deviations.
func (p *Policy) Capabilities() sim.Capability { return 0 }

// Sampler exposes the PEBS controller for overhead reporting (§6.3.5).
func (p *Policy) Sampler() *pebs.Sampler { return p.smp }

// SampleGate implements sim.FastSampled: on every variant except
// hybrid scanning, OnAccess does nothing on a non-faulting access the
// sampler ignores, so the machine may serve those accesses through its
// policy bypass. HybridScan marks every touched page's scan-referenced
// flag per access and must keep seeing the full stream.
func (p *Policy) SampleGate() *pebs.Sampler {
	if p.cfg.HybridScan {
		return nil
	}
	return p.smp
}

// deref reads a registry cell that may not be bound yet (before
// Attach the accessors report zero).
func deref(c *uint64) uint64 {
	if c == nil {
		return 0
	}
	return *c
}

// Coolings returns the number of cooling events performed.
func (p *Policy) Coolings() uint64 { return deref(p.coolings) }

// Splits returns the number of huge pages splintered.
func (p *Policy) Splits() uint64 { return deref(p.splits) }

// Thresholds returns the current page-access-histogram thresholds.
func (p *Policy) Thresholds() histogram.Thresholds { return p.th }

// EHR returns the lifetime estimated base-page hit ratio.
func (p *Policy) EHR() float64 { return fratio(p.totEst, p.totSamples) }

// RHR returns the lifetime measured fast-tier hit ratio over samples.
func (p *Policy) RHR() float64 { return ratio(p.totFast, p.totSamples) }

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fratio(a float64, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return a / float64(b)
}

// HotSet implements sim.HotSetReporter from the page access histogram.
func (p *Policy) HotSet() (hot, warm, cold uint64) {
	for b := 0; b < histogram.Bins; b++ {
		sz := p.pageHist.Bin(b) * tier.BasePageSize
		switch p.th.Classify(b) {
		case 1:
			hot += sz
		case 0:
			warm += sz
		default:
			cold += sz
		}
	}
	return hot, warm, cold
}

// fastListAdd links a registered fast-tier page into fastByBin[pg.Bin].
// No-op if already linked.
func (p *Policy) fastListAdd(pg *vm.Page) {
	if pg.PFlags&flagInFastList != 0 {
		return
	}
	pg.PFlags |= flagInFastList
	l := p.fastByBin[pg.Bin]
	pg.PIdx = uint32(len(l))
	p.fastByBin[pg.Bin] = append(l, pg)
}

// fastListRemove unlinks the page from fastByBin[bin] by swap-remove.
// bin must be the bin the page was linked under (its cached Bin at link
// time; callers changing Bin pass the old value). No-op if not linked.
func (p *Policy) fastListRemove(pg *vm.Page, bin int) {
	if pg.PFlags&flagInFastList == 0 {
		return
	}
	pg.PFlags &^= flagInFastList
	l := p.fastByBin[bin]
	i := pg.PIdx
	last := len(l) - 1
	l[i] = l[last]
	l[i].PIdx = i
	l[last] = nil
	p.fastByBin[bin] = l[:last]
}

// changeBin is the single point through which a registered page's
// cached bin changes: it moves the page's units in the page access
// histogram (histFrom is where the units currently sit, which differs
// from the cached Bin while pending cooling is being applied), rebins
// the fast-tier list membership, and feeds the collapse ready queue on
// upward moves. The emulated base-page histogram is the caller's
// responsibility — its bookkeeping differs between base and huge pages.
func (p *Policy) changeBin(pg *vm.Page, histFrom, newBin int) {
	if histFrom != newBin {
		p.pageHist.Move(histFrom, newBin, pg.Units())
	}
	old := pg.Bin
	if old == newBin {
		return
	}
	pg.Bin = newBin
	if pg.PFlags&flagInFastList != 0 {
		p.fastListRemove(pg, old)
		p.fastListAdd(pg)
	}
	// A base page turning hot may complete an all-hot block: nominate
	// it for collapse verification at the next cooling.
	if newBin > old && newBin >= p.th.Hot && !pg.IsHuge() && !p.cfg.SplitDisabled {
		b := blockKey(pg)
		if bs := p.blocks[b]; bs != nil && bs.present == tier.SubPages {
			p.enqueueBlock(b, bs)
		}
	}
}

// blockTagShift positions a page's owning-space index above its 2MB
// block index in the collapse-tracking keys, mirroring
// sim.SpaceTagShift on vpns: two tenants' identical block indices must
// not pool their presence counts (a cross-tenant "full" block would
// nominate an uncollapsible range forever). 31 = SpaceTagShift - 9
// block-index bits per space.
const blockTagShift = sim.SpaceTagShift - 9

// blockKey identifies the 2MB block of a base page, tenant-qualified.
func blockKey(pg *vm.Page) uint64 {
	return uint64(pg.Owner)<<blockTagShift | pg.VPN/tier.SubPages
}

// blockAdd accounts a base page into its 2MB block; a block reaching
// full presence is nominated for collapse verification.
func (p *Policy) blockAdd(pg *vm.Page) {
	if p.cfg.SplitDisabled {
		return
	}
	b := blockKey(pg)
	bs := p.blocks[b]
	if bs == nil {
		bs = &blockState{}
		p.blocks[b] = bs
	}
	bs.present++
	if bs.present == tier.SubPages {
		p.enqueueBlock(b, bs)
	}
}

// blockRemove un-accounts a base page from its 2MB block.
func (p *Policy) blockRemove(pg *vm.Page) {
	if p.cfg.SplitDisabled {
		return
	}
	b := blockKey(pg)
	bs := p.blocks[b]
	if bs == nil {
		return
	}
	if bs.present--; bs.present == 0 {
		delete(p.blocks, b)
	}
}

func (p *Policy) enqueueBlock(b uint64, bs *blockState) {
	if bs.queued {
		return
	}
	bs.queued = true
	p.readyBlocks = append(p.readyBlocks, b)
	*p.readyCtr++
}

// registerPage adds a newly faulted page to both histograms with
// initial hotness at the current hot threshold (§4.2.1), preventing new
// pages from being immediate demotion victims, and links it into the
// incremental membership structures.
func (p *Policy) registerPage(pg *vm.Page) {
	if pg.PFlags&flagRegistered != 0 {
		return
	}
	pg.PFlags |= flagRegistered
	pg.P2 = p.coolEpoch
	if pg.IsHuge() {
		pg.Count = 1 << uint(p.th.Hot)
	} else {
		pg.Count = (1 << uint(p.th.Hot)) / tier.SubPages
	}
	pg.Bin = histogram.BinOf(pg.Hotness())
	p.pageHist.Add(pg.Bin, pg.Units())
	if pg.IsHuge() {
		// Subpage counters start at zero: the emulated base-page view
		// sees 512 cold 4KB pages until samples arrive.
		p.baseHist.Add(0, tier.SubPages)
	} else {
		p.baseHist.Add(pg.Bin, 1)
		p.blockAdd(pg)
	}
	if pg.Tier == tier.FastTier {
		p.fastListAdd(pg)
	}
}

// onUnmap drops a freed page from both histograms and from the
// membership structures, applying pending cooling first so the
// histogram units are removed from where they actually sit.
func (p *Policy) onUnmap(pg *vm.Page) {
	if pg.PFlags&flagRegistered == 0 {
		return
	}
	p.applyCooling(pg)
	p.fastListRemove(pg, pg.Bin)
	if !pg.IsHuge() {
		p.blockRemove(pg)
	}
	pg.PFlags &^= flagRegistered
	p.pageHist.Remove(pg.Bin, pg.Units())
	if pg.IsHuge() {
		for j := 0; j < tier.SubPages; j++ {
			p.baseHist.Remove(histogram.BinOf(pg.SubHotness(j)), 1)
		}
	} else {
		p.baseHist.Remove(pg.Bin, 1)
	}
}

// applyCooling settles the page's pending cooling epochs: the halvings
// that cool() deferred when it shifted the histograms O(bins). After
// delta global coolings without a touch, the page's units sit in
// pageHist at clamp(Bin-delta, 0); this halves the counters delta
// times, moves the units to the true bin (fixing the clamping drift the
// eager scan fixed in place), mirrors the subpage counters, and files
// huge pages into the current epoch's skew buckets. Cost is charged per
// page actually settled, which is what makes cooling O(changed pages).
func (p *Policy) applyCooling(pg *vm.Page) {
	if pg.P2 == p.coolEpoch || pg.PFlags&flagRegistered == 0 {
		return
	}
	delta := p.coolEpoch - pg.P2
	pg.P2 = p.coolEpoch
	*p.lazyApplied++
	shift := int(delta)
	if delta > uint64(histogram.Bins) {
		shift = histogram.Bins
	}
	shifted := pg.Bin - shift
	if shifted < 0 {
		shifted = 0
	}
	pg.Count >>= delta // shifts >= 64 yield 0 in Go: fully cooled
	cost := uint64(coolPageScanNS)
	p.changeBin(pg, shifted, histogram.BinOf(pg.Hotness()))
	if pg.IsHuge() {
		if pg.SubCount != nil {
			cost += tier.SubPages * coolSubScanNS
			for j := 0; j < tier.SubPages; j++ {
				oldH := pg.SubHotness(j)
				if oldH == 0 {
					continue
				}
				sh := histogram.BinOf(oldH) - shift
				if sh < 0 {
					sh = 0
				}
				pg.SubCount[j] >>= delta
				if tb := histogram.BinOf(pg.SubHotness(j)); tb != sh {
					p.baseHist.Move(sh, tb, 1)
				}
			}
		}
		p.updateSkewness(pg)
	} else {
		// Base pages: the base-page histogram entry mirrors Bin; the
		// shift already moved it, fix clamping drift.
		if tb := pg.Bin; tb != shifted {
			p.baseHist.Move(shifted, tb, 1)
		}
	}
	p.backgroundNS += cost
}

// OnAccess implements sim.Policy. All MEMTIS work triggered here is
// background (ksampled) work; the returned critical-path stall is
// always zero — MEMTIS never extends the critical path (§3).
func (p *Policy) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	if tr.Faulted {
		p.registerPage(tr.Page)
	}
	if p.cfg.HybridScan {
		tr.Page.PFlags |= flagScanRef
	}
	if _, ok := p.smp.Feed(vpn, write); ok {
		*p.samples++
		p.processSample(tr)
	}
	p.smp.MaybeAdjust(p.m.Now())
	return 0
}

// processSample is ksampled's per-record work (§4.1, steps 2-3 of
// Figure 4): settle pending cooling, update page and subpage counters,
// move histogram bins, account hit ratios, and enqueue newly hot
// capacity-tier pages for promotion.
func (p *Policy) processSample(tr vm.TouchResult) {
	pg := tr.Page
	if pg.Dead() {
		return
	}
	if pg.PFlags&flagRegistered == 0 {
		p.registerPage(pg)
	}
	p.applyCooling(pg)

	// Page access histogram update.
	oldBin := pg.Bin
	pg.Count++
	newBin := histogram.BinOf(pg.Hotness())
	p.changeBin(pg, oldBin, newBin)

	// Emulated base-page histogram update. unitHotPrev is the 4KB
	// unit's hotness before this sample.
	var unitHotPrev uint64
	if pg.IsHuge() {
		pg.EnsureSubCount()
		j := tr.SubIdx
		unitHotPrev = pg.SubHotness(j)
		pg.SubCount[j]++
		p.baseHist.Move(histogram.BinOf(unitHotPrev), histogram.BinOf(pg.SubHotness(j)), 1)
	} else {
		unitHotPrev = (pg.Count - 1) * tier.SubPages
		if newBin != oldBin {
			p.baseHist.Move(oldBin, newBin, 1)
		}
	}

	// Hit-ratio estimation (§4.3.1).
	p.hrSamples++
	p.totSamples++
	if pg.Tier == tier.FastTier {
		p.hrFast++
		p.totFast++
	}
	// eHR uses the unit's hotness *before* this sample: it is an
	// estimated hit only if the unit already belonged to the hottest-
	// base-pages set. Judging after the increment would let the act of
	// sampling nominate every sampled page into the hot set and
	// inflate the estimate under sparse sampling.
	switch ub := histogram.BinOf(unitHotPrev); {
	case ub >= p.bth.Hot && unitHotPrev > 0:
		p.hrEst++
		p.totEst++
	case ub == p.bth.MarginBin && unitHotPrev > 0:
		// Marginal bin: only MarginFrac of it would fit in the fast
		// tier under base-page-only placement.
		p.hrEst += p.bth.MarginFrac
		p.totEst += p.bth.MarginFrac
	}
	if pg.IsHuge() {
		p.hugeSamples++
		if pg.P0 != p.hrEpoch {
			pg.P0 = p.hrEpoch
			p.distinctHuge++
		}
	}

	// Promotion candidates: hot capacity-tier pages only. Warm pages
	// are never migrated proactively — the migration overhead would
	// overshadow the benefit (§4.2.1); the warm set exists to protect
	// fast-tier residents from demotion, not to pull pages in.
	if pg.Tier != tier.FastTier && pg.Bin >= p.th.Hot && pg.PFlags&flagInPromo == 0 {
		pg.PFlags |= flagInPromo
		p.promo = append(p.promo, pg)
	}

	p.samplesSinceAdapt++
	p.samplesSinceCool++
	if p.samplesSinceAdapt >= p.cfg.AdaptEvery {
		p.adaptThresholds()
		p.samplesSinceAdapt = 0
	}
	if p.samplesSinceCool >= p.cfg.CoolEvery {
		p.cool()
		p.samplesSinceCool = 0
	}
	if p.hrSamples >= p.estimateEvery {
		p.estimateSplitBenefit()
	}
}

// adaptThresholds runs Algorithm 1 on both histograms (§4.2.1).
func (p *Policy) adaptThresholds() {
	fastUnits := p.m.Fast.CapacityFrames()
	p.th = histogram.Adapt(&p.pageHist, fastUnits, p.cfg.Alpha)
	p.bth = histogram.Adapt(&p.baseHist, fastUnits, p.cfg.Alpha)
	if p.cfg.WarmDisabled {
		p.th.Warm = p.th.Hot
		p.th.Cold = p.th.Hot - 1
	}
	*p.adaptations++
	// Aux packs the new thresholds as bin indices (uint8 wraps the
	// sentinel -1 to 255).
	p.trace.Emit(obs.EvAdapt, 0, false, 0, uint64(uint8(p.th.Hot))<<8|uint64(uint8(p.th.Warm)))
}

// cool opens a new cooling epoch (§4.2.2): both histograms shift one
// bin left in O(bins) and the per-page halvings become a debt settled
// lazily — on the page's next sample, scan visit, migration pop or
// unmap, or by the bounded convergence sweep (applyCooling). The
// skewness buckets restart for the new epoch and refill as pages
// settle. Nothing here walks the address space; with the histograms
// already shifted, threshold adaptation sees the same mass distribution
// the eager scan produced (top-bin clamping drift excepted, which
// settles with the pages).
func (p *Policy) cool() {
	*p.coolings++
	p.coolEpoch++
	p.skewEpoch++
	p.pageHist.Cool()
	p.baseHist.Cool()
	for i := range p.skewBuckets {
		p.skewBuckets[i] = p.skewBuckets[i][:0]
	}
	p.backgroundNS += 2 * histogram.Bins * coolPageScanNS
	if p.eagerConverge {
		p.m.ForEachPage(p.applyCooling)
	}
	p.trace.Emit(obs.EvCooling, 0, false, 0, p.coolEpoch)
	p.adaptThresholds()
	p.tryCollapse()
}

// coolSweep converges pages the sampler never revisits: a bounded
// cursor walk (CoolSweepPages per wake) settling pending cooling, so
// every page's classification catches up within RSS/CoolSweepPages
// wakes even if it is never sampled again. The sweep also self-heals
// the fast-list invariant (re-linking pages dropped by a failed
// demotion) and re-nominates full blocks whose hotness came from
// threshold motion rather than bin changes.
func (p *Policy) coolSweep() {
	if p.coolEpoch == 0 {
		return
	}
	n := p.cfg.CoolSweepPages
	p.sweepCursor = p.m.ForEachPageFrom(p.sweepCursor, n, func(pg *vm.Page) {
		*p.sweepPages++
		p.backgroundNS += listScanPageNS
		if pg.PFlags&flagRegistered == 0 {
			return
		}
		p.applyCooling(pg)
		if pg.Tier == tier.FastTier && pg.PFlags&flagInFastList == 0 {
			p.fastListAdd(pg)
		}
		if !pg.IsHuge() && !p.cfg.SplitDisabled && pg.Bin >= p.th.Hot {
			b := blockKey(pg)
			if bs := p.blocks[b]; bs != nil && bs.present == tier.SubPages {
				p.enqueueBlock(b, bs)
			}
		}
	})
}

// updateSkewness computes S_i = sum(H_ij^2)/U_i^2 (Eq. 3) and files the
// page in its skew bucket. Split candidacy requires statistically
// meaningful evidence (§4.3.1's "long-term, stable memory access
// trends"): enough samples on the page, and a genuinely low sampled
// utilization — a uniformly hot page is never a candidate no matter how
// hot, because splitting it would only destroy TLB reach.
func (p *Policy) updateSkewness(pg *vm.Page) {
	if pg.SubCount == nil {
		return
	}
	const (
		minSamples           = 32
		maxUtilPct           = 45
		maxEffectiveSubpages = 64                // 12.5% of a huge page
		minDominantHotness   = 8 * tier.SubPages // >= 8 samples on one subpage
	)
	*p.dbgSeen++
	if pg.Count < minSamples {
		*p.dbgRejCount++
		return
	}
	// The utilization threshold is the estimator's effective hot
	// boundary: the margin bin when one exists, the hot threshold
	// otherwise (a once-sampled subpage can then still count, which is
	// the right behaviour under sparse sampling).
	uBin := p.bth.Hot
	if p.bth.MarginBin >= 0 && p.bth.MarginBin < uBin {
		uBin = p.bth.MarginBin
	}
	if uBin < 1 {
		uBin = 1
	}
	var u, nz, maxSub uint64
	var sum, lin float64
	for j := 0; j < tier.SubPages; j++ {
		h := pg.SubHotness(j)
		if h == 0 {
			continue
		}
		nz++
		if histogram.BinOf(h) >= uBin {
			u++
		}
		if h > maxSub {
			maxSub = h
		}
		hf := float64(h)
		sum += hf * hf
		lin += hf
	}
	if nz*100 > tier.SubPages*maxUtilPct {
		*p.dbgRejUtil++
		return
	}
	if u == 0 || sum == 0 {
		*p.dbgRejU++
		return
	}
	// Concentration gate: (sum H)^2 / sum(H^2) is the effective number
	// of participating subpages. A uniformly hot page scores near its
	// sampled-subpage count; a skewed page scores near its handful of
	// dominant subpages. Splitting a uniformly hot page would only
	// trade TLB reach for nothing, so demand real concentration.
	if lin*lin/sum > maxEffectiveSubpages {
		*p.dbgRejU++
		return
	}
	// The dominant subpage must show repeated hits: post-cooling
	// stragglers sampled once or twice are noise, not skew.
	if maxSub < minDominantHotness {
		*p.dbgRejU++
		return
	}
	s := sum / float64(u*u)
	b := 0
	for s >= 2 && b < len(p.skewBuckets)-1 {
		s /= 2
		b++
	}
	pg.P1 = p.skewEpoch
	p.skewBuckets[b] = append(p.skewBuckets[b], pg)
	*p.dbgBucketed++
}

// estimateSplitBenefit closes one estimation window (§4.3.1): if the
// emulated base-page hit ratio sufficiently exceeds the measured one,
// Eq. 2 sizes the split batch and the top-Ns most skewed huge pages are
// queued for background splitting.
func (p *Policy) estimateSplitBenefit() {
	eHR := fratio(p.hrEst, p.hrSamples)
	rHR := ratio(p.hrFast, p.hrSamples)
	nrSamples := p.hrSamples
	avgHP := 1.0
	if p.distinctHuge > 0 {
		avgHP = float64(p.hugeSamples) / float64(p.distinctHuge)
	}
	p.hrSamples, p.hrFast, p.hrEst = 0, 0, 0
	p.hugeSamples, p.distinctHuge = 0, 0
	p.hrEpoch++

	// Split only on long-term trends (§4.3.1): candidates need skewness
	// data from at least one cooling, so allocation-phase noise never
	// triggers splintering.
	if p.cfg.SplitDisabled || *p.coolings < 1 || eHR-rHR < p.cfg.SplitBenefitMin {
		return
	}
	lFast := float64(p.m.Fast.LoadNS())
	dL := float64(p.m.Cap.LoadNS()) - lFast
	ns := (eHR - rHR) * (dL / lFast) * (float64(nrSamples) * p.cfg.Beta / avgHP)
	limit := float64(nrSamples) / avgHP
	if ns > limit {
		ns = limit
	}
	n := int(ns)
	if n < 1 {
		n = 1
	}
	*p.dbgNs += uint64(n)
	*p.dbgWindows++
	p.queueSplitCandidates(n)
}

// queueSplitCandidates picks the top-n huge pages by skew bucket.
func (p *Policy) queueSplitCandidates(n int) {
	for b := len(p.skewBuckets) - 1; b >= 0 && n > 0; b-- {
		for _, pg := range p.skewBuckets[b] {
			if n == 0 {
				break
			}
			if pg.Dead() || !pg.IsHuge() || pg.P1 != p.skewEpoch {
				continue
			}
			pg.P1 = 0 // de-bucket
			p.splitQueue = append(p.splitQueue, pg)
			*p.dbgQueued++
			n--
		}
	}
}

// Tick implements sim.Policy; kmigrated wakes on its own period and
// runs, in order: the bounded hybrid scan window, the cooling
// convergence sweep, queued huge-page splits, hot promotions (demoting
// cold-then-warm fast-tier pages on demand), and free-space
// maintenance. The wake ends by folding this window's background-ns
// delta into the BusyCores estimate.
func (p *Policy) Tick(now uint64) {
	if now < p.nextWake {
		return
	}
	for p.nextWake <= now {
		p.nextWake += p.cfg.KmigratedPeriodNS
	}
	if p.cfg.HybridScan && now >= p.nextScan {
		for p.nextScan <= now {
			p.nextScan += p.cfg.HybridScanPeriodNS
		}
		p.hybridScan()
	}
	p.coolSweep()
	budget := uint64(float64(p.cfg.KmigratedPeriodNS) / 1e9 * migBandwidthBPS)
	if budget < 2*tier.HugePageSize {
		// kmigrated always finishes at least one huge-page operation
		// per wake, even if that overruns a very short period.
		budget = 2 * tier.HugePageSize
	}
	budget = p.runSplits(budget)
	budget = p.promoteList(&p.promo, flagInPromo, true, budget)
	p.reclaimTo(p.freeTarget(), true, &budget)
	p.updateBusy(now)
}

// updateBusy folds the background-ns spent since the last wake into the
// BusyCores estimate: an EMA of the per-window CPU share, exported as
// millicore gauges so runs surface the §4.4 overhead budget.
func (p *Policy) updateBusy(now uint64) {
	bg := p.BackgroundNS()
	if now > p.lastWakeNow {
		share := float64(bg-p.lastWakeBG) / float64(now-p.lastWakeNow)
		const a = 0.2
		if p.busyEMA == 0 {
			p.busyEMA = share
		} else {
			p.busyEMA = (1-a)*p.busyEMA + a*share
		}
		m := uint64(math.Round(p.busyEMA * 1000))
		*p.busyGauge = m
		if m > *p.busyPeak {
			*p.busyPeak = m
		}
	}
	p.lastWakeNow, p.lastWakeBG = now, bg
}

// runSplits splinters queued huge pages (§4.3.3): hot subpages go to
// the fast tier, cold subpages to the capacity tier, never-written
// subpages are reclaimed inside vm.Split.
func (p *Policy) runSplits(budget uint64) uint64 {
	done := 0
	for len(p.splitQueue) > 0 && done < p.cfg.MaxSplitsPerWake && budget >= tier.HugePageSize {
		pg := p.splitQueue[0]
		p.splitQueue = p.splitQueue[1:]
		if pg.Dead() || !pg.IsHuge() {
			continue
		}
		p.splitOne(pg)
		budget -= tier.HugePageSize
		done++
	}
	return budget
}

func (p *Policy) splitOne(pg *vm.Page) {
	// Drop the huge page from both histograms; re-register survivors.
	p.onUnmap(pg)
	hotBin := p.bth.Hot
	if p.bth.MarginBin >= 1 && p.bth.MarginBin < hotBin {
		hotBin = p.bth.MarginBin
	}
	// Cold subpages stay on the page's tier, except that a fast-tier
	// split sheds its cold remainder one hop down (at depth 2 both
	// cases are the capacity tier, exactly as before).
	coldDst := pg.Tier
	if coldDst == tier.FastTier {
		coldDst = p.m.DemoteTarget(coldDst)
	}
	subs, ns := p.m.SpaceOf(pg).Split(pg, func(j int) tier.ID {
		if histogram.BinOf(pg.SubHotness(j)) >= hotBin {
			if p.m.Fast.FreeFrames() > 0 {
				return tier.FastTier
			}
			return tier.NoTier
		}
		return coldDst
	})
	for _, sp := range subs {
		sp.PFlags = flagRegistered
		sp.P2 = p.coolEpoch
		sp.Bin = histogram.BinOf(sp.Hotness())
		p.pageHist.Add(sp.Bin, 1)
		p.baseHist.Add(sp.Bin, 1)
		p.blockAdd(sp)
		if sp.Tier == tier.FastTier {
			p.fastListAdd(sp)
		}
	}
	p.backgroundNS += ns
	*p.splits++
}

// freeTarget is the fast-tier free-space threshold in frames: the
// configured fraction with a floor of two huge frames (capped at a
// quarter of the tier) so THP allocations can always be absorbed.
func (p *Policy) freeTarget() uint64 {
	f := uint64(float64(p.m.Fast.CapacityFrames()) * p.cfg.FreeSpaceTarget)
	floor := uint64(2 * tier.SubPages)
	if cap4 := p.m.Fast.CapacityFrames() / 4; floor > cap4 {
		floor = cap4
	}
	if f < floor {
		f = floor
	}
	return f
}

// promoteList drains one promotion queue. validFlag is the queue's
// membership flag; allowWarmVictims selects whether reclaim may demote
// warm fast-tier pages to make room (true for hot candidates only —
// warm candidates must never displace warm residents).
func (p *Policy) promoteList(list *[]*vm.Page, validFlag uint32, allowWarmVictims bool, budget uint64) uint64 {
	target := p.freeTarget()
	for len(*list) > 0 && budget > 0 {
		pg := (*list)[0]
		valid := !pg.Dead() && pg.Tier != tier.FastTier
		if valid {
			// Settle pending cooling so candidacy is judged on the
			// page's current classification, not a stale bin.
			p.applyCooling(pg)
			if allowWarmVictims {
				valid = pg.Bin >= p.th.Hot
			} else {
				valid = p.th.Classify(pg.Bin) >= 0
			}
		}
		if !valid {
			pg.PFlags &^= validFlag
			*list = (*list)[1:]
			continue
		}
		need := pg.Units() + target
		if p.m.Fast.FreeFrames() < need {
			p.reclaimTo(need, allowWarmVictims, &budget)
			if p.m.Fast.FreeFrames() < need {
				break
			}
		}
		if pg.Bytes() > budget {
			break
		}
		*list = (*list)[1:]
		pg.PFlags &^= validFlag
		if p.migrate(pg, tier.FastTier) {
			budget -= pg.Bytes()
		}
	}
	return budget
}

// migrate moves one page transactionally with bounded retries on
// fault-aborted copies, charging kmigrated for the successful copy and
// for every wasted attempt plus backoff. With faults disabled this is
// exactly the old single-shot Migrate: no retries, no extra cost. On
// success the fast-tier list membership follows the page's new tier.
//
// All of kmigrated's moves are background work, so when an admission
// policy is configured the gate scores each as async, and when the
// machine runs a background mover the move is enqueued there instead
// of copying inline (list membership then follows the page on the
// mover's commit via the cooling sweep's self-healing re-link).
func (p *Policy) migrate(pg *vm.Page, dst tier.ID) bool {
	if p.gate.Installed() && !p.gate.Allow(pg, dst, false) {
		return false
	}
	if mv := p.m.Mover(); mv.Enabled() && mv.Enqueue(p.m.AS, pg, dst) {
		if dst != tier.FastTier {
			p.fastListRemove(pg, pg.Bin)
		}
		return true
	}
	fp := p.m.Faults()
	for attempt := 0; ; attempt++ {
		ns, st := p.m.AS.MigrateTx(pg, dst)
		p.backgroundNS += ns
		if st == vm.MigrateOK {
			if pg.Tier == tier.FastTier {
				p.fastListAdd(pg)
			} else {
				p.fastListRemove(pg, pg.Bin)
			}
			return true
		}
		if st != vm.MigrateAborted || attempt >= fp.MaxRetries() {
			return false
		}
		p.backgroundNS += fp.RetryBackoffNS(attempt)
		p.trace.Emit(obs.EvMigrateRetry, pg.VPN, pg.IsHuge(), pg.Bytes(), uint64(attempt+1))
	}
}

// popDemo pops the next demotion victim from the per-bin fast-tier
// lists, coldest bins first; allowWarm extends the range to the warm
// bins (§4.2.3 — hot bins are never eligible). The victim's pending
// cooling is settled before it is accepted, so no page is ever demoted
// off a stale classification. The victim is unlinked before migration:
// a failed migration therefore drops it for this wake (no retry loop
// against the same page) and the cooling sweep re-links it later.
func (p *Policy) popDemo(allowWarm bool) *vm.Page {
	limit := p.th.Cold
	if allowWarm {
		limit = p.th.Hot - 1
	}
	if limit >= histogram.Bins {
		limit = histogram.Bins - 1
	}
	for b := 0; b <= limit; b++ {
		for len(p.fastByBin[b]) > 0 {
			l := p.fastByBin[b]
			pg := l[len(l)-1]
			if pg.Dead() || pg.Tier != tier.FastTier || pg.PFlags&flagRegistered == 0 {
				// Unmap/split/migrate should have unlinked; drop
				// defensively rather than demote a stale entry.
				p.fastListRemove(pg, b)
				continue
			}
			p.applyCooling(pg)
			if pg.Bin != b {
				// Settling moved it to a colder list (cooling never
				// raises a bin); it will be found there on the next
				// pop. This list shrank, so the loop progresses.
				continue
			}
			p.fastListRemove(pg, b)
			return pg
		}
	}
	return nil
}

// reclaimTo demotes fast-tier pages until the tier has at least frames
// free: cold pages first, warm pages only if still short and allowed
// (§4.2.3). Hot pages are never demoted — they live in bins the pop
// never reaches.
func (p *Policy) reclaimTo(frames uint64, allowWarm bool, budget *uint64) {
	for p.m.Fast.FreeFrames() < frames && *budget > 0 {
		pg := p.popDemo(allowWarm)
		if pg == nil {
			return
		}
		if pg.Bytes() > *budget {
			// Too big for the remaining budget this wake; nothing
			// disqualified the page itself, so relink it.
			p.fastListAdd(pg)
			return
		}
		if p.migrate(pg, p.m.DemoteTarget(pg.Tier)) {
			*budget -= pg.Bytes()
		}
	}
}

// hybridScan is the §8 extension: an accessed-bit sweep that detects
// pages the sampler never observes. Untouched-since-last-scan pages
// have their counters halved an extra time, so idle pages shed the
// protective initial hotness they were registered with and become
// demotion candidates without waiting for several sampling-driven
// coolings. Touched pages just get their reference bit cleared. Each
// scan event covers a bounded window (HybridScanPages) and resumes
// from a cursor, like the kernel's LRU walkers — never a full scan.
func (p *Policy) hybridScan() {
	var scanned uint64
	p.scanCursor = p.m.ForEachPageFrom(p.scanCursor, p.cfg.HybridScanPages, func(pg *vm.Page) {
		if pg.PFlags&flagRegistered == 0 {
			return
		}
		scanned++
		if pg.PFlags&flagScanRef != 0 {
			pg.PFlags &^= flagScanRef
			return
		}
		p.applyCooling(pg)
		if pg.Count == 0 {
			return
		}
		oldBin := pg.Bin
		pg.Count /= 2
		newBin := histogram.BinOf(pg.Hotness())
		p.changeBin(pg, oldBin, newBin)
		if newBin != oldBin && !pg.IsHuge() {
			p.baseHist.Move(oldBin, newBin, 1)
		}
	})
	p.backgroundNS += scanned * listScanPageNS
}

// tryCollapse coalesces aligned runs of 512 base pages back into a huge
// page when every constituent is hot (§4.3.3). Done during cooling, as
// the paper's kmigrated does; rare by design. Candidates come from the
// ready queue — blocks nominated when they reached full presence or a
// member turned hot — and each is verified against the current
// thresholds by rescanning only its own 512 slots, with the scratch
// page buffer reused across coolings (no per-cooling allocation).
func (p *Policy) tryCollapse() {
	if p.cfg.SplitDisabled || len(p.readyBlocks) == 0 {
		return
	}
	ready := p.readyBlocks
	p.readyBlocks = p.readyScratch[:0]
	for _, b := range ready {
		bs := p.blocks[b]
		if bs == nil {
			continue
		}
		bs.queued = false
		if bs.present != tier.SubPages {
			continue
		}
		// The ready key carries the owning space above blockTagShift;
		// table lookups and the collapse itself must go through that
		// space (only migrations are space-agnostic).
		as := p.m.Space(int(b >> blockTagShift))
		base := (b & (1<<blockTagShift - 1)) * tier.SubPages
		allHot := true
		checked := uint64(0)
		for j := uint64(0); j < tier.SubPages; j++ {
			pg := as.Lookup(base + j)
			if pg == nil || pg.IsHuge() || pg.PFlags&flagRegistered == 0 {
				allHot = false
				break
			}
			p.applyCooling(pg)
			checked++
			if pg.Bin < p.th.Hot {
				allHot = false
				break
			}
			p.oldsBuf[j] = pg
		}
		p.backgroundNS += checked * listScanPageNS
		if !allHot {
			continue
		}
		dst := p.m.DemoteTarget(tier.FastTier)
		if p.m.Fast.HasHugeFrame() {
			dst = tier.FastTier
		}
		hp, ns, ok := as.Collapse(base, dst)
		if !ok {
			continue
		}
		for _, o := range p.oldsBuf {
			p.fastListRemove(o, o.Bin)
			p.blockRemove(o)
			p.pageHist.Remove(o.Bin, 1)
			p.baseHist.Remove(o.Bin, 1)
			o.PFlags &^= flagRegistered
		}
		hp.PFlags = flagRegistered
		hp.P2 = p.coolEpoch
		hp.Bin = histogram.BinOf(hp.Hotness())
		p.pageHist.Add(hp.Bin, tier.SubPages)
		for j := 0; j < tier.SubPages; j++ {
			p.baseHist.Add(histogram.BinOf(hp.SubHotness(j)), 1)
		}
		if hp.Tier == tier.FastTier {
			p.fastListAdd(hp)
		}
		p.backgroundNS += ns
	}
	p.readyScratch = ready[:0]
}

// DebugForceCool triggers one cooling event immediately, regardless of
// the sample-count schedule. Benchmarks and equivalence tests use it to
// measure and compare cooling events in isolation.
func (p *Policy) DebugForceCool() { p.cool() }

// DebugBaseHist exposes the emulated base-page histogram and its
// thresholds for diagnostics and tests.
func (p *Policy) DebugBaseHist() (bins [histogram.Bins]uint64, th histogram.Thresholds) {
	for i := 0; i < histogram.Bins; i++ {
		bins[i] = p.baseHist.Bin(i)
	}
	return bins, p.bth
}

// DebugSplitStats exposes split pipeline counters for diagnostics.
func (p *Policy) DebugSplitStats() (queued, executed uint64, queueLen int) {
	return deref(p.dbgQueued), deref(p.splits), len(p.splitQueue)
}

// DebugSplitSupply exposes candidate-supply counters for diagnostics.
func (p *Policy) DebugSplitSupply() (bucketed, nsSum, windows uint64) {
	return deref(p.dbgBucketed), deref(p.dbgNs), deref(p.dbgWindows)
}

// DebugSplitRejects exposes per-gate rejection counters.
func (p *Policy) DebugSplitRejects() (seen, rejCount, rejUtil, rejU uint64) {
	return deref(p.dbgSeen), deref(p.dbgRejCount), deref(p.dbgRejUtil), deref(p.dbgRejU)
}
