package tier

import (
	"fmt"
	"strconv"
	"strings"
)

// MoverConfig configures the rate-limited background mover (Nomad-style
// asynchronous migration, DESIGN.md §11): policies enqueue migration
// tasks, and the mover executes them against a migration-bandwidth
// budget that accrues per virtual-time window. The zero value disables
// the mover entirely — policies migrate inline, exactly as the
// simulator always has, and no mover counters are registered.
type MoverConfig struct {
	// WindowNS is the budget-accrual window (0 = DefaultMoverWindowNS).
	WindowNS uint64
	// BytesPerWindow is the migration budget granted per window; 0
	// disables the mover.
	BytesPerWindow uint64
	// QueueCap bounds the pending-task queue; an enqueue beyond it is
	// rejected and counted (0 = DefaultMoverQueueCap).
	QueueCap int
}

// Mover defaults, applied for zero fields of an enabled config.
const (
	// DefaultMoverWindowNS is the default budget window (1ms).
	DefaultMoverWindowNS = 1_000_000
	// DefaultMoverQueueCap is the default pending-task bound.
	DefaultMoverQueueCap = 4096
	// MaxMoverQueueCap bounds the queue so a misconfigured sweep cannot
	// hold every page of a large machine in flight.
	MaxMoverQueueCap = 1 << 20
)

// Enabled reports whether the mover is configured.
func (c MoverConfig) Enabled() bool { return c.BytesPerWindow > 0 }

// Validate rejects configurations outside the documented bounds.
func (c MoverConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.BytesPerWindow > MaxTierBytes {
		return fmt.Errorf("tier: mover budget %d exceeds %d bytes/window", c.BytesPerWindow, uint64(MaxTierBytes))
	}
	if c.WindowNS > MaxHopCostNS {
		return fmt.Errorf("tier: mover window %dns exceeds %dns", c.WindowNS, uint64(MaxHopCostNS))
	}
	if c.QueueCap < 0 || c.QueueCap > MaxMoverQueueCap {
		return fmt.Errorf("tier: mover queue cap %d outside [0,%d]", c.QueueCap, MaxMoverQueueCap)
	}
	return nil
}

// FillDefaults returns the config with zero fields of an enabled
// config replaced by the documented defaults.
func (c MoverConfig) FillDefaults() MoverConfig {
	if !c.Enabled() {
		return c
	}
	if c.WindowNS == 0 {
		c.WindowNS = DefaultMoverWindowNS
	}
	if c.QueueCap == 0 {
		c.QueueCap = DefaultMoverQueueCap
	}
	return c
}

// ParseMoverSpec decodes the CLI mover specification:
//
//	BYTES/WINDOW[:qN]
//
// granting BYTES (k/m/g suffixes) of migration budget per WINDOW of
// virtual time (ns/us/ms/s suffixes), with an optional pending-queue
// bound. "off" or the empty string decode to the disabled zero config.
// Example: "8m/1ms:q1024".
func ParseMoverSpec(s string) (MoverConfig, error) {
	var c MoverConfig
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return c, nil
	}
	body := s
	if b, q, ok := strings.Cut(s, ":"); ok {
		qs, found := strings.CutPrefix(q, "q")
		if !found {
			return c, fmt.Errorf("tier: mover spec %q: queue bound must be qN", s)
		}
		n, err := strconv.ParseInt(qs, 10, 32)
		if err != nil || n < 1 {
			return c, fmt.Errorf("tier: mover spec %q: bad queue bound", s)
		}
		c.QueueCap = int(n)
		body = b
	}
	by, win, ok := strings.Cut(body, "/")
	if !ok {
		return c, fmt.Errorf("tier: mover spec %q is not BYTES/WINDOW[:qN]", s)
	}
	var err error
	if c.BytesPerWindow, err = parseBytes(by); err != nil {
		return c, fmt.Errorf("tier: mover spec %q: %w", s, err)
	}
	if c.WindowNS, err = parseDuration(win); err != nil {
		return c, fmt.Errorf("tier: mover spec %q: %w", s, err)
	}
	if c.BytesPerWindow == 0 || c.WindowNS == 0 {
		return c, fmt.Errorf("tier: mover spec %q: budget and window must be positive", s)
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// String renders the canonical spec form: ParseMoverSpec(c.String())
// reproduces c for any valid config. The disabled config renders "".
func (c MoverConfig) String() string {
	if !c.Enabled() {
		return ""
	}
	win := c.WindowNS
	if win == 0 {
		win = DefaultMoverWindowNS
	}
	out := fmtBytes(c.BytesPerWindow) + "/" + fmtDuration(win)
	if c.QueueCap > 0 {
		out += ":q" + strconv.Itoa(c.QueueCap)
	}
	return out
}
