// Package render draws the evaluation's figures as plain text — grouped
// bar charts for the performance comparisons, line charts for the
// time-series figures and shaded grids for heat maps — so a terminal-only
// environment still gets *figures*, not just tables. cmd/paperfigs
// writes one .plot.txt per figure with these renderers.
package render

import (
	"fmt"
	"math"
	"strings"
)

// shades from cold to hot for heat maps.
var shades = []rune{' ', '░', '▒', '▓', '█'}

// BarGroup is one cluster of bars (one workload/ratio cell).
type BarGroup struct {
	Label string
	Bars  []Bar
}

// Bar is one value within a group.
type Bar struct {
	Name  string
	Value float64
}

// BarChart renders horizontal grouped bars scaled to width columns.
func BarChart(title string, groups []BarGroup, width int) string {
	if width < 20 {
		width = 20
	}
	var max float64
	nameW, labelW := 0, 0
	for _, g := range groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
		for _, b := range g.Bars {
			if b.Value > max {
				max = b.Value
			}
			if len(b.Name) > nameW {
				nameW = len(b.Name)
			}
		}
	}
	if max <= 0 {
		max = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, g := range groups {
		fmt.Fprintf(&sb, "%-*s\n", labelW, g.Label)
		for _, b := range g.Bars {
			n := int(b.Value / max * float64(width))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&sb, "  %-*s |%s %.3f\n", nameW, b.Name, strings.Repeat("█", n), b.Value)
		}
	}
	return sb.String()
}

// Series is one line of a line chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart renders series on a shared (width x height) character
// canvas, one glyph per series, with a y-axis scale and legend.
func LineChart(title string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		return title + "\n(no data)\n"
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	canvas := make([][]byte, height)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			cx := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			cy := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				canvas[row][cx] = g
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for i, row := range canvas {
		yVal := maxY - (maxY-minY)*float64(i)/float64(height-1)
		fmt.Fprintf(&sb, "%8.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(&sb, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%8s  %-*.2f%*.2f\n", "", width/2, minX, width-width/2, maxX)
	sb.WriteString("legend:")
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c=%s", glyphs[si%len(glyphs)], s.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// HeatGrid renders a (time x space) count grid with intensity shading,
// time running down the page.
func HeatGrid(title string, grid [][]uint64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(grid) == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	var max uint64
	for _, row := range grid {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	for _, row := range grid {
		sb.WriteByte('|')
		for _, v := range row {
			idx := int(float64(v) / float64(max) * float64(len(shades)-1))
			if v > 0 && idx == 0 {
				idx = 1
			}
			sb.WriteRune(shades[idx])
		}
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "time ↓, address →, %d columns, max %d accesses/cell\n", len(grid[0]), max)
	return sb.String()
}

// Sparkline compresses one value series into a single line.
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		max = 1
	}
	var sb strings.Builder
	for _, v := range vals {
		i := int(v / max * float64(len(levels)-1))
		if i < 0 {
			i = 0
		}
		sb.WriteRune(levels[i])
	}
	return sb.String()
}
