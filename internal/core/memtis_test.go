package memtis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"memtis/internal/histogram"
	"memtis/internal/pebs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// everySample makes the sampler see every access, so tests can reason
// about counters deterministically.
func everySample() pebs.Config {
	return pebs.Config{LoadPeriod: 1, StorePeriod: 1, MinPeriod: 1, MaxPeriod: 1, CostNS: 1}
}

func newTestMachine(pol sim.Policy, fastBlocks, capBlocks int) *sim.Machine {
	return sim.NewMachine(sim.Config{
		FastBytes: uint64(fastBlocks) * tier.HugePageSize,
		CapBytes:  uint64(capBlocks) * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      1,
	}, pol)
}

// histTotals sums registered units from the machine's pages for
// cross-checking against the policy's histograms.
func registeredUnits(m *sim.Machine) uint64 {
	var u uint64
	m.AS.ForEachPage(func(p *vm.Page) { u += p.Units() })
	return u
}

func TestRegisterAndUnmapKeepHistogramsConsistent(t *testing.T) {
	pol := New(Config{Sampler: everySample()})
	m := newTestMachine(pol, 2, 8)
	r := m.Reserve(2 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	if got, want := pol.pageHist.Total(), registeredUnits(m); got != want {
		t.Fatalf("pageHist total %d, want %d", got, want)
	}
	if got, want := pol.baseHist.Total(), registeredUnits(m); got != want {
		t.Fatalf("baseHist total %d, want %d", got, want)
	}
	m.FreeRegion(r)
	if pol.pageHist.Total() != 0 || pol.baseHist.Total() != 0 {
		t.Fatalf("histograms not empty after free: %d/%d", pol.pageHist.Total(), pol.baseHist.Total())
	}
}

func TestSampleUpdatesCountersAndBins(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 1 << 30, CoolEvery: 1 << 30})
	m := newTestMachine(pol, 2, 8)
	r := m.Reserve(tier.HugePageSize)
	m.Access(r.BaseVPN+9, false)
	pg := m.AS.Lookup(r.BaseVPN)
	base := pg.Count // initial hotness assigned at registration
	for i := 0; i < 100; i++ {
		m.Access(r.BaseVPN+9, false)
	}
	if pg.Count != base+100 {
		t.Fatalf("Count = %d, want %d", pg.Count, base+100)
	}
	if pg.SubCount[9] != 101 {
		t.Fatalf("SubCount[9] = %d", pg.SubCount[9])
	}
	if pg.Bin != histogram.BinOf(pg.Hotness()) {
		t.Fatalf("cached bin stale: %d vs %d", pg.Bin, histogram.BinOf(pg.Hotness()))
	}
}

func TestCoolingHalvesCounts(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 1 << 30, CoolEvery: 1 << 30})
	m := newTestMachine(pol, 2, 8)
	r := m.Reserve(tier.HugePageSize)
	for i := 0; i < 200; i++ {
		m.Access(r.BaseVPN+3, false)
	}
	pg := m.AS.Lookup(r.BaseVPN)
	before := pg.Count
	sub := pg.SubCount[3]
	pol.cool()
	// Cooling is lazy: the event itself only shifts the histograms and
	// opens a new epoch. The page's counters are untouched until its
	// pending cooling is settled on the next touch.
	if pg.Count != before {
		t.Fatalf("Count touched by cool() itself: %d, want %d", pg.Count, before)
	}
	if got, want := pol.pageHist.Total(), registeredUnits(m); got != want {
		t.Fatalf("pageHist total after cooling %d, want %d", got, want)
	}
	pol.applyCooling(pg)
	if pg.Count != before/2 {
		t.Fatalf("Count after settling = %d, want %d", pg.Count, before/2)
	}
	if pg.SubCount[3] != sub/2 {
		t.Fatalf("SubCount after settling = %d, want %d", pg.SubCount[3], sub/2)
	}
	if got, want := pol.pageHist.Total(), registeredUnits(m); got != want {
		t.Fatalf("pageHist total after settling %d, want %d", got, want)
	}
	if pg.Bin != histogram.BinOf(pg.Hotness()) {
		t.Fatal("bin not fixed up after settling")
	}
	if pol.Coolings() != 1 {
		t.Fatal("cooling counter")
	}
	// Settling is idempotent within an epoch.
	pol.applyCooling(pg)
	if pg.Count != before/2 {
		t.Fatal("applyCooling not idempotent within an epoch")
	}
	// Two further coolings without touches, then one settle: counters
	// catch up by the full pending delta.
	pol.cool()
	pol.cool()
	pol.applyCooling(pg)
	if pg.Count != before/8 {
		t.Fatalf("Count after settling 2 pending epochs = %d, want %d", pg.Count, before/8)
	}
	if got, want := pol.pageHist.Total(), registeredUnits(m); got != want {
		t.Fatalf("pageHist total after multi-epoch settle %d, want %d", got, want)
	}
}

func TestHotCapacityPageGetsPromoted(t *testing.T) {
	pol := New(Config{Sampler: everySample(), KmigratedPeriodNS: 100_000})
	m := newTestMachine(pol, 2, 16)
	// Fill the fast tier (2 blocks) with cold pages, then hammer a
	// capacity-tier page.
	r := m.Reserve(6 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	victim := m.AS.Lookup(r.BaseVPN + 5*tier.SubPages)
	if victim.Tier != tier.CapacityTier {
		t.Fatal("setup: expected capacity placement")
	}
	for i := 0; i < 40_000; i++ {
		m.Access(victim.VPN+uint64(i%tier.SubPages), false)
	}
	pg := m.AS.Lookup(r.BaseVPN + 5*tier.SubPages)
	if pg.Tier != tier.FastTier {
		t.Fatalf("hot page still on %v after 40K accesses (bin %d, thr %+v)", pg.Tier, pg.Bin, pol.Thresholds())
	}
	if m.AS.Stats().Promotions == 0 {
		t.Fatal("no promotions recorded")
	}
}

func TestMemtisNeverStallsCriticalPath(t *testing.T) {
	pol := New(Config{Sampler: everySample()})
	m := newTestMachine(pol, 2, 8)
	r := m.Reserve(tier.HugePageSize)
	for i := 0; i < 1000; i++ {
		tr := m.AS.Touch(r.BaseVPN+uint64(i)%tier.SubPages, false)
		if got := pol.OnAccess(tr, r.BaseVPN, false); got != 0 {
			t.Fatalf("OnAccess returned stall %d", got)
		}
	}
}

func TestSplitExecutesOnSkewedPages(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 2000, CoolEvery: 6000, KmigratedPeriodNS: 100_000})
	m := newTestMachine(pol, 2, 32)
	// 16 huge pages; one hot subpage per huge page, scattered —
	// the Silo pattern.
	r := m.Reserve(30 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120_000; i++ {
		blk := uint64(rng.Intn(30))
		sub := uint64(rng.Intn(4)) // 4 hot subpages per block
		m.Access(r.BaseVPN+blk*tier.SubPages+sub*131, false)
	}
	if pol.Splits() == 0 {
		t.Fatalf("no splits on maximally skewed workload (eHR=%.2f rHR=%.2f coolings=%d)",
			pol.EHR(), pol.RHR(), pol.Coolings())
	}
	if m.AS.Stats().Splits != pol.Splits() {
		t.Fatal("split counters disagree")
	}
	// Histograms must still be consistent after splits re-registered
	// the subpages.
	if got, want := pol.pageHist.Total(), registeredUnits(m); got != want {
		t.Fatalf("pageHist total %d, want %d after splits", got, want)
	}
}

func TestNoSplitOnUniformPages(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 2000, CoolEvery: 6000, KmigratedPeriodNS: 100_000})
	m := newTestMachine(pol, 2, 32)
	r := m.Reserve(30 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	rng := rand.New(rand.NewSource(7))
	// Uniform accesses within a hot half: pages are hot but not skewed.
	for i := 0; i < 120_000; i++ {
		blk := uint64(rng.Intn(15))
		m.Access(r.BaseVPN+blk*tier.SubPages+rng.Uint64()%tier.SubPages, false)
	}
	if pol.Splits() != 0 {
		t.Fatalf("split %d uniformly hot huge pages", pol.Splits())
	}
}

func TestSplitDisabledConfig(t *testing.T) {
	pol := New(Config{Sampler: everySample(), SplitDisabled: true, AdaptEvery: 2000, CoolEvery: 6000, KmigratedPeriodNS: 100_000})
	m := newTestMachine(pol, 2, 32)
	r := m.Reserve(30 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120_000; i++ {
		m.Access(r.BaseVPN+uint64(rng.Intn(30))*tier.SubPages+uint64(rng.Intn(4))*131, false)
	}
	if pol.Splits() != 0 {
		t.Fatal("memtis-ns split pages")
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Config{
		"memtis":         {},
		"memtis-ns":      {SplitDisabled: true},
		"memtis-nowarm":  {WarmDisabled: true},
		"memtis-vanilla": {SplitDisabled: true, WarmDisabled: true},
	}
	for want, cfg := range cases {
		if got := New(cfg).Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestWarmDisabledCollapsesThresholds(t *testing.T) {
	pol := New(Config{Sampler: everySample(), WarmDisabled: true, AdaptEvery: 500, CoolEvery: 1 << 30})
	m := newTestMachine(pol, 2, 8)
	r := m.Reserve(4 * tier.HugePageSize)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20_000; i++ {
		m.Access(r.BaseVPN+rng.Uint64()%r.Pages, false)
	}
	th := pol.Thresholds()
	if th.Warm != th.Hot || th.Cold != th.Hot-1 {
		t.Fatalf("vanilla thresholds: %+v", th)
	}
}

func TestHotSetReporting(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 1000, CoolEvery: 1 << 30})
	m := newTestMachine(pol, 2, 8)
	r := m.Reserve(4 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	hot, warm, cold := pol.HotSet()
	if hot+warm+cold != registeredUnits(m)*tier.BasePageSize {
		t.Fatalf("hot+warm+cold = %d, want %d", hot+warm+cold, registeredUnits(m)*tier.BasePageSize)
	}
}

func TestDemotionUnderPressure(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 1000, CoolEvery: 4000, KmigratedPeriodNS: 100_000})
	m := newTestMachine(pol, 2, 16)
	// Fill fast with pages that will cool down, then heat capacity
	// pages: demotion must make room.
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	rng := rand.New(rand.NewSource(11))
	hotBase := r.BaseVPN + 4*tier.SubPages // capacity-resident blocks
	for i := 0; i < 150_000; i++ {
		m.Access(hotBase+rng.Uint64()%(4*tier.SubPages), false)
	}
	if m.AS.Stats().Demotions == 0 {
		t.Fatal("no demotions despite hot capacity set exceeding free fast space")
	}
	if hit := float64(m.Fast.UsedFrames()) / float64(m.Fast.CapacityFrames()); hit < 0.5 {
		t.Fatalf("fast tier underused: %.2f", hit)
	}
}

// TestQuickHistogramInvariant: for arbitrary access streams, the page
// access histogram total always equals the registered page units.
func TestQuickHistogramInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pol := New(Config{Sampler: everySample(), AdaptEvery: 700, CoolEvery: 2100, KmigratedPeriodNS: 50_000})
		m := newTestMachine(pol, 2, 12)
		r1 := m.Reserve(3 * tier.HugePageSize)
		r2 := m.Reserve(64 * tier.BasePageSize) // base-page region
		for i := 0; i < 20_000; i++ {
			if rng.Intn(10) < 8 {
				m.Access(r1.BaseVPN+rng.Uint64()%r1.Pages, rng.Intn(3) == 0)
			} else {
				m.Access(r2.BaseVPN+rng.Uint64()%r2.Pages, rng.Intn(3) == 0)
			}
		}
		var units uint64
		m.AS.ForEachPage(func(p *vm.Page) { units += p.Units() })
		return pol.pageHist.Total() == units && pol.baseHist.Total() == units
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEHRTracksSkew(t *testing.T) {
	// A highly skewed stream should estimate a much higher base-page
	// hit ratio than the measured huge-page-placement one.
	pol := New(Config{Sampler: everySample(), AdaptEvery: 2000, CoolEvery: 6000, SplitDisabled: true, KmigratedPeriodNS: 100_000})
	m := newTestMachine(pol, 2, 32)
	r := m.Reserve(30 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150_000; i++ {
		m.Access(r.BaseVPN+uint64(rng.Intn(30))*tier.SubPages+uint64(rng.Intn(2))*211, false)
	}
	if pol.EHR() < pol.RHR()+0.05 {
		t.Fatalf("eHR %.3f should exceed rHR %.3f by the split margin", pol.EHR(), pol.RHR())
	}
}

func TestHybridScanDemotesNeverSampledPages(t *testing.T) {
	// Pages that are registered (with protective initial hotness) but
	// never accessed again are invisible to sampling; the hybrid scan
	// must cool them so they become demotion candidates.
	mk := func(hybrid bool) float64 {
		pol := New(Config{Sampler: everySample(), HybridScan: hybrid,
			AdaptEvery: 1000, CoolEvery: 1 << 30, KmigratedPeriodNS: 200_000})
		m := newTestMachine(pol, 2, 16)
		idle := m.Reserve(2 * tier.HugePageSize) // fills fast, then idles
		for i := uint64(0); i < idle.Pages; i++ {
			m.Access(idle.BaseVPN+i, true)
		}
		hot := m.Reserve(2 * tier.HugePageSize) // lands in capacity
		for i := uint64(0); i < hot.Pages; i++ {
			m.Access(hot.BaseVPN+i, true)
		}
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 60_000; i++ {
			m.Access(hot.BaseVPN+rng.Uint64()%hot.Pages, false)
		}
		// Fraction of the hot region now resident in fast.
		var fast, total float64
		for i := uint64(0); i < hot.Pages; i += tier.SubPages {
			total++
			if m.AS.Lookup(hot.BaseVPN+i).Tier == tier.FastTier {
				fast++
			}
		}
		return fast / total
	}
	with := mk(true)
	without := mk(false)
	if with < without {
		t.Fatalf("hybrid scan hurt hot-set residency: %.2f vs %.2f", with, without)
	}
	if with == 0 {
		t.Fatal("hybrid scan never enabled promotion of the hot region")
	}
}

func TestHybridScanName(t *testing.T) {
	if New(Config{HybridScan: true}).Name() != "memtis-hybrid" {
		t.Fatal("name")
	}
}

func TestCollapseCoalescesFullyHotBlocks(t *testing.T) {
	// 512 contiguous, uniformly hot base pages (THP off) must coalesce
	// into a huge page during cooling.
	pol := New(Config{Sampler: everySample(), AdaptEvery: 1000, CoolEvery: 5000, KmigratedPeriodNS: 100_000})
	m := sim.NewMachine(sim.Config{
		FastBytes: 4 * tier.HugePageSize,
		CapBytes:  16 * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       false, // base pages only
		Seed:      1,
	}, pol)
	r := m.Reserve(tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 80_000; i++ {
		m.Access(r.BaseVPN+rng.Uint64()%r.Pages, false)
	}
	if m.AS.Stats().Collapses == 0 {
		t.Fatal("uniformly hot aligned base pages never collapsed")
	}
	pg := m.AS.Lookup(r.BaseVPN)
	if !pg.IsHuge() {
		t.Fatal("block not huge after collapse")
	}
	// Histogram consistency preserved across the collapse.
	if got, want := pol.pageHist.Total(), registeredUnits(m); got != want {
		t.Fatalf("pageHist total %d, want %d", got, want)
	}
}

func TestDemotionPrefersColdOverWarm(t *testing.T) {
	pol := New(Config{Sampler: everySample(), AdaptEvery: 800, CoolEvery: 2400, KmigratedPeriodNS: 100_000})
	m := newTestMachine(pol, 2, 16)
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	// Warm up block 0 (fast resident), leave block 1 (fast resident)
	// cold, then heat capacity blocks to force demand for fast space.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 120_000; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2:
			m.Access(r.BaseVPN+rng.Uint64()%tier.SubPages, false) // block 0: warm-to-hot
		default:
			m.Access(r.BaseVPN+4*tier.SubPages+rng.Uint64()%(4*tier.SubPages), false) // hot capacity
		}
	}
	b0 := m.AS.Lookup(r.BaseVPN)
	b1 := m.AS.Lookup(r.BaseVPN + tier.SubPages)
	// The cold block should have been demoted before (or instead of)
	// the warm one.
	if b1.Tier == tier.FastTier && b0.Tier == tier.CapacityTier {
		t.Fatalf("warm block demoted while cold block stayed: warm bin %d cold bin %d thr %+v",
			b0.Bin, b1.Bin, pol.Thresholds())
	}
	if m.AS.Stats().Demotions == 0 {
		t.Fatal("no demotion pressure generated")
	}
}

func TestSamplerPeriodBoundedDuringRun(t *testing.T) {
	pol := New(Config{})
	m := newTestMachine(pol, 2, 16)
	r := m.Reserve(8 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i++ {
		m.Access(r.BaseVPN+i, true)
	}
	for i := 0; i < 200_000; i++ {
		m.Access(r.BaseVPN+uint64(i)%r.Pages, false)
	}
	p := pol.Sampler().LoadPeriod()
	def := pebs.DefaultConfig()
	if p < def.MinPeriod || p > def.MaxPeriod {
		t.Fatalf("period %d escaped [%d, %d]", p, def.MinPeriod, def.MaxPeriod)
	}
	if pol.Sampler().AvgCPUUsage() > 0.06 {
		t.Fatalf("ksampled CPU %.3f far above budget", pol.Sampler().AvgCPUUsage())
	}
}
