package policy

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// AutoNUMA models Linux's automatic NUMA balancing used as a tiering
// baseline (Table 1): NUMA-hint faults provide recency-only tracking,
// any faulting page on the capacity tier is promoted immediately in the
// fault handler (static threshold of one), and there is no demotion —
// which is why it keeps early-allocated hot pages in the fast tier and
// wins XSBench 1:2 (§6.2.2) but cannot adapt once the fast tier fills.
type AutoNUMA struct {
	Base
	rearmer Rearmer
}

var _ sim.Policy = (*AutoNUMA)(nil)

// NewAutoNUMA returns the AutoNUMA baseline.
func NewAutoNUMA() *AutoNUMA { return &AutoNUMA{} }

// Name implements sim.Policy.
func (a *AutoNUMA) Name() string { return "autonuma" }

// OnAccess implements sim.Policy.
func (a *AutoNUMA) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	pg := tr.Page
	if tr.Faulted {
		a.Register(pg)
		return 0
	}
	if pg.PFlags&flagArmed == 0 {
		return 0
	}
	pg.PFlags &^= flagArmed
	stall := uint64(HintFaultNS)
	if pg.Tier != tier.FastTier {
		// Promote on the critical path; silently skipped when the next
		// tier up is full (AutoNUMA has no demotion to make room). The
		// ns of a fault-aborted promotion still stalls the thread.
		ns, _ := a.MigrateSync(pg, a.M.PromoteTarget(pg.Tier))
		stall += ns
	}
	return stall
}

// Tick implements sim.Policy: the gradual hint-fault re-arm sweep.
// Unmapping PTEs for hint faults costs scan work charged to the kernel
// task context (modelled as background CPU).
func (a *AutoNUMA) Tick(now uint64) {
	n := a.rearmer.Advance(&a.Base, now)
	a.BgNS += uint64(n) * ScanPageNS
}
