package trace

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
)

// Capture attaches a trace writer to a machine: every access the
// machine executes is appended to w. It returns a detach function. Any
// write error is deferred to the writer's Flush.
func Capture(m *sim.Machine, w *Writer) (detach func()) {
	prev := m.AccessObserver
	m.AccessObserver = func(vpn uint64, write bool, now uint64) {
		_ = w.Add(vpn, write)
		if prev != nil {
			prev(vpn, write, now)
		}
	}
	return func() { m.AccessObserver = prev }
}

// Replay is a sim.Workload that re-issues a recorded access stream
// against a fresh machine, mapping the recorded address range into a
// newly reserved region. Replaying the same trace under different
// policies gives an exact apples-to-apples placement comparison.
type Replay struct {
	name string
	recs []Record
	min  uint64
	span uint64
}

// NewReplay builds a replay workload from records.
func NewReplay(name string, recs []Record) *Replay {
	st := Analyze(recs, 0)
	span := st.MaxVPN - st.MinVPN + 1
	if len(recs) == 0 {
		span = 1
	}
	return &Replay{name: name, recs: recs, min: st.MinVPN, span: span}
}

// Name implements sim.Workload.
func (r *Replay) Name() string { return r.name }

// Records returns the replayed record count.
func (r *Replay) Records() int { return len(r.recs) }

// SpanPages returns the size, in base pages, of the region Run reserves
// to hold the remapped trace (max recorded VPN - min + 1). Harnesses use
// it to budget machine capacity for a replay phase.
func (r *Replay) SpanPages() uint64 { return r.span }

// Run implements sim.Workload: the trace loops until the access budget
// is consumed (a trace shorter than the budget repeats, modelling the
// iterative structure of the original applications).
func (r *Replay) Run(m *sim.Machine, accesses uint64) {
	region := m.Reserve(r.span * tier.BasePageSize)
	if len(r.recs) == 0 {
		return
	}
	for m.Accesses() < accesses {
		for _, rec := range r.recs {
			if m.Accesses() >= accesses {
				return
			}
			m.Access(region.BaseVPN+(rec.VPN-r.min), rec.Write)
		}
	}
}

var _ sim.Workload = (*Replay)(nil)
