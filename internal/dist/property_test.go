package dist

import (
	"math"
	"math/rand"
	"testing"
)

// Property tests for the bounded Zipf sampler across the two exponents
// the workload models actually use — YCSB's s=0.99 and the hotter
// s=1.2 — over several seeds: range safety, monotone rank frequencies
// and head-mass agreement with the analytic CDF.

var propSeeds = []int64{1, 7, 42, 1234, 987654321}

// zipfCDF returns the analytic probability mass of the top k ranks out
// of n: H(k)/H(n) with H(m) = sum_{j=1..m} 1/j^s.
func zipfCDF(s float64, k, n int) float64 {
	var hk, hn float64
	for j := 1; j <= n; j++ {
		t := 1 / math.Pow(float64(j), s)
		hn += t
		if j <= k {
			hk += t
		}
	}
	return hk / hn
}

func TestZipfPropertySamplesInRange(t *testing.T) {
	for _, s := range []float64{0.99, 1.2} {
		for _, seed := range propSeeds {
			for _, n := range []uint64{1, 2, 17, 1000, 1 << 20} {
				z := NewZipf(rand.New(rand.NewSource(seed)), s, n)
				for i := 0; i < 2000; i++ {
					if v := z.Next(); v >= n {
						t.Fatalf("s=%v seed=%d n=%d: sample %d out of [0, n)", s, seed, n, v)
					}
				}
			}
		}
	}
}

func TestZipfPropertyRankFrequenciesNonIncreasing(t *testing.T) {
	const n = 64
	const draws = 300_000
	for _, s := range []float64{0.99, 1.2} {
		for _, seed := range propSeeds {
			z := NewZipf(rand.New(rand.NewSource(seed)), s, n)
			counts := make([]float64, n)
			for i := 0; i < draws; i++ {
				counts[z.Next()]++
			}
			// Adjacent ranks may tie within sampling noise; allow a
			// 4-sigma Poisson slack, but never a clear inversion.
			for i := 0; i+1 < n; i++ {
				slack := 4 * math.Sqrt(counts[i]+1)
				if counts[i+1] > counts[i]+slack {
					t.Fatalf("s=%v seed=%d: rank %d drew %v > rank %d's %v (+%v slack)",
						s, seed, i+1, counts[i+1], i, counts[i], slack)
				}
			}
			// Decade-spaced ranks must strictly decrease — no slack
			// needed where the analytic gap is large.
			for _, pair := range [][2]int{{0, 8}, {8, 32}, {0, 63}} {
				if counts[pair[0]] <= counts[pair[1]] {
					t.Fatalf("s=%v seed=%d: rank %d (%v) not above rank %d (%v)",
						s, seed, pair[0], counts[pair[0]], pair[1], counts[pair[1]])
				}
			}
		}
	}
}

func TestZipfPropertyHeadMassMatchesCDF(t *testing.T) {
	const n = 1000
	const draws = 200_000
	for _, s := range []float64{0.99, 1.2} {
		for _, seed := range propSeeds {
			z := NewZipf(rand.New(rand.NewSource(seed)), s, n)
			counts := make([]uint64, n)
			for i := 0; i < draws; i++ {
				counts[z.Next()]++
			}
			cum := uint64(0)
			rank := 0
			for _, k := range []int{1, 10, 100, n} {
				for ; rank < k; rank++ {
					cum += counts[rank]
				}
				got := float64(cum) / draws
				want := zipfCDF(s, k, n)
				if got < want*0.92 || got > want*1.08 {
					t.Fatalf("s=%v seed=%d: top-%d mass %.4f, analytic %.4f", s, seed, k, got, want)
				}
			}
			if cum != draws {
				t.Fatalf("s=%v seed=%d: counted %d of %d draws", s, seed, cum, draws)
			}
		}
	}
}
