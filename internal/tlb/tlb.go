// Package tlb models the processor's translation lookaside buffer. The
// simulator charges a page-walk latency on every TLB miss; huge pages
// both increase reach (one entry covers 512 base pages) and walk one
// fewer page-table level, which is exactly the address-translation
// benefit MEMTIS trades against fast-tier waste when deciding page size.
package tlb

import (
	"memtis/internal/fastmod"
	"memtis/internal/obs"
)

// Walk latencies in nanoseconds. A 4KB translation walks four page-table
// levels; a 2MB translation stops at the PMD (three levels). The values
// assume partial page-walk caching, in line with measured walk costs on
// recent Xeons.
const (
	Walk4KNS = 96
	Walk2MNS = 70
)

const ways = 8 // associativity of each sub-TLB

// entry is one TLB entry: its tag and its LRU stamp, adjacent so the
// hit path's stamp update lands in the cache line the tag compare just
// pulled (split tag/stamp arrays cost a second line on every probe,
// measurable when many tenants spread lookups across all sets). Tag 0
// is reserved as "invalid" (virtual page numbers are stored +1).
// Stamps are 64-bit: a 32-bit stamp wraps after 2^32 lookups — a few
// minutes of a sweep run — and silently turns the freshest entries
// into eviction victims.
type entry struct {
	tag, used uint64
}

// set is one associativity set.
type set struct {
	e [ways]entry
}

// subTLB is an 8-way set-associative TLB with true-LRU replacement
// within each set. The lookup counter doubles as the LRU clock: both
// advance by exactly one per probe, so keeping two counters would be
// redundant work on the hottest path of the simulator.
type subTLB struct {
	sets    []set
	mask    uint64 // nSets-1 when nSets is a power of two, else 0
	nSets   uint64
	fm      fastmod.M // exact reciprocal remainder for non-power-of-two nSets
	walkNS  uint64    // page-walk cost charged on a miss
	lookups uint64
	misses  uint64
}

// newSubTLB builds a sub-TLB that honours the configured entry count
// exactly: the set count is entries/ways rounded UP, never down.
// (Rounding down silently modelled a 1024-entry TLB when 1536 was
// configured: 1536/8 = 192 sets truncated to the 128-set power of two.)
// Power-of-two set counts index with a mask; other counts use an exact
// fastmod so the hot path never executes a hardware divide.
func newSubTLB(entries int, walkNS uint64) subTLB {
	nSets := (entries + ways - 1) / ways
	if nSets < 1 {
		nSets = 1
	}
	t := subTLB{sets: make([]set, nSets), nSets: uint64(nSets), walkNS: walkNS}
	if nSets&(nSets-1) == 0 {
		t.mask = uint64(nSets - 1)
	} else {
		// Exact 128-bit reciprocal remainder (internal/fastmod). The
		// historical 32-bit Lemire multiplier was only valid for
		// vpn < 2^32, which multi-tenant machines break: space-tagged
		// VPNs carry the tenant tag in the high bits, so every tagged
		// lookup fell through to a hardware divide on the hot path.
		t.fm = fastmod.New(uint64(nSets))
	}
	return t
}

// index maps vpn to its set. Keeping vpn%nSets semantics (rather than a
// hash) preserves the low-bit set indexing of real TLBs: consecutive
// pages land in consecutive sets.
func (t *subTLB) index(vpn uint64) uint64 {
	if t.mask != 0 {
		return vpn & t.mask
	}
	return t.fm.Mod(vpn)
}

// lookup probes for vpn, inserting it on a miss, and returns the
// page-walk cost charged (0 on a hit). The hit path scans tags only
// and is small enough to inline into the simulator's access loop; LRU
// victim selection lives in the outlined miss path, so the common case
// does half the comparisons and pays no call.
func (t *subTLB) lookup(vpn uint64) uint64 {
	t.lookups++
	stamp := t.lookups
	s := &t.sets[t.index(vpn)]
	tag := vpn + 1
	for i := 0; i < ways; i++ {
		if s.e[i].tag == tag {
			s.e[i].used = stamp
			return 0
		}
	}
	return t.miss(s, tag, stamp)
}

// miss replaces the set's LRU entry with tag and charges the walk.
func (t *subTLB) miss(s *set, tag, stamp uint64) uint64 {
	t.misses++
	victim := 0
	for i := 1; i < ways; i++ {
		if s.e[i].used < s.e[victim].used {
			victim = i
		}
	}
	s.e[victim] = entry{tag: tag, used: stamp}
	return t.walkNS
}

// invalidate drops vpn if present (TLB shootdown of one mapping).
func (t *subTLB) invalidate(vpn uint64) {
	s := &t.sets[t.index(vpn)]
	tag := vpn + 1
	for i := 0; i < ways; i++ {
		if s.e[i].tag == tag {
			s.e[i] = entry{}
			return
		}
	}
}

// Config sizes the two sub-TLBs. Defaults follow a Cascade Lake-style
// second-level TLB: 1536 shared 4K entries, 1536 2M entries being overly
// generous, so we use a 16-entry L1-style 2M complement of 1024.
type Config struct {
	Entries4K int
	Entries2M int
}

// DefaultConfig returns the TLB geometry used throughout the evaluation.
func DefaultConfig() Config { return Config{Entries4K: 1536, Entries2M: 1024} }

// TLB models split 4K/2M translation caches. The sub-TLBs are held by
// value so Access reaches their sets with one indirection, not two.
type TLB struct {
	l4k subTLB
	l2m subTLB

	// Trace receives invalidate/flush events. The per-access lookup
	// path (Access) never emits — only the rare maintenance operations
	// do — so tracing does not perturb translation costs.
	Trace *obs.Tracer
}

// New builds a TLB with the given geometry; zero fields take defaults.
func New(cfg Config) *TLB {
	def := DefaultConfig()
	if cfg.Entries4K <= 0 {
		cfg.Entries4K = def.Entries4K
	}
	if cfg.Entries2M <= 0 {
		cfg.Entries2M = def.Entries2M
	}
	return &TLB{l4k: newSubTLB(cfg.Entries4K, Walk4KNS), l2m: newSubTLB(cfg.Entries2M, Walk2MNS)}
}

// Access translates the access to the base-page number vpn, mapped by a
// huge page or a base page, and returns the translation cost in
// nanoseconds (0 on a TLB hit). Single lookup call site and the walk
// cost stored in the sub-TLB itself: this keeps Access within the
// inlining budget, so the simulator's hot loop pays one call here, not
// two.
func (t *TLB) Access(vpn uint64, huge bool) uint64 {
	sub := &t.l4k
	if huge {
		sub = &t.l2m
		vpn >>= 9
	}
	return sub.lookup(vpn)
}

// Invalidate removes the translation covering vpn (huge selects the 2M
// sub-TLB). Used on migration, split and collapse.
func (t *TLB) Invalidate(vpn uint64, huge bool) {
	t.Trace.Emit(obs.EvTLBInvalidate, vpn, huge, 0, 0)
	if huge {
		t.l2m.invalidate(vpn / 512)
		return
	}
	t.l4k.invalidate(vpn)
}

// Flush empties both sub-TLBs.
func (t *TLB) Flush() {
	t.Trace.Emit(obs.EvTLBFlush, 0, false, 0, 0)
	for i := range t.l4k.sets {
		t.l4k.sets[i] = set{}
	}
	for i := range t.l2m.sets {
		t.l2m.sets[i] = set{}
	}
}

// Stats reports lookup and miss counts per sub-TLB.
type Stats struct {
	Lookups4K, Misses4K uint64
	Lookups2M, Misses2M uint64
}

// Stats returns a snapshot of the TLB counters.
func (t *TLB) Stats() Stats {
	return Stats{
		Lookups4K: t.l4k.lookups, Misses4K: t.l4k.misses,
		Lookups2M: t.l2m.lookups, Misses2M: t.l2m.misses,
	}
}

// MissRatio returns overall misses/lookups across both sub-TLBs.
func (s Stats) MissRatio() float64 {
	l := s.Lookups4K + s.Lookups2M
	if l == 0 {
		return 0
	}
	return float64(s.Misses4K+s.Misses2M) / float64(l)
}
