// Scenario entry points: run declarative internal/scenario specs
// through the same machines, cell seeding and parallel fan-out as the
// Table 2 workloads, plus the seed-driven pathology hunt the CI fuzz
// jobs call (generate -> run under the conformance probe -> shrink any
// failure to a minimal reproducer file).
package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"memtis/internal/scenario"
	"memtis/internal/sim"
	"memtis/internal/tier"
)

// ScenarioMachine builds the machine configuration for a compiled
// scenario at a tiering ratio, sized like MachineFor: the fast tier is
// the constrained resource at r.FastFrac of the scenario's peak
// resident estimate, the capacity tier holds everything with headroom.
// A fault plan declared by the scenario spec overrides the harness
// config's schedule. (Scenarios carry no Table 3 over-allocation data,
// so HeMem runs without MachineFor's fast-tier reduction.)
func ScenarioMachine(sc *scenario.Runner, r Ratio, cfg Config) sim.Config {
	rss := sc.RSSBytes()
	fast := uint64(float64(rss) * r.FastFrac)
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	faults := cfg.Faults
	if fc := sc.FaultConfig(); fc.Enabled() {
		faults = fc
	}
	return sim.Config{
		FastBytes: fast,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   cfg.CapKind,
		THP:       true,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		RecordNS:  cfg.RecordNS,
		Trace:     cfg.Trace,
		Faults:    faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
}

// RunScenario executes one (scenario, policy, ratio) cell.
func RunScenario(sc *scenario.Runner, polName string, r Ratio, cfg Config) sim.Result {
	mc := ScenarioMachine(sc, r, cfg)
	return sim.Run(mc, NewPolicy(polName), sc, cfg.Accesses)
}

// RunScenarioBaseline executes the scenario's all-capacity-tier
// normalisation run (the RunBaseline analogue).
func RunScenarioBaseline(sc *scenario.Runner, cfg Config) sim.Result {
	rss := sc.RSSBytes()
	faults := cfg.Faults
	if fc := sc.FaultConfig(); fc.Enabled() {
		faults = fc
	}
	mc := sim.Config{
		FastBytes: tier.HugePageSize * 2, // minimal, unused
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   cfg.CapKind,
		THP:       true,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		Trace:     cfg.Trace,
		Faults:    faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
	return sim.Run(mc, NewPolicy("all-capacity"), sc, cfg.Accesses)
}

// RunScenarioMatrix executes the (scenario x ratio x policy) matrix
// plus per-scenario all-capacity baselines, exactly like RunMatrix over
// workloads: per-cell seeds via CellConfig keyed on the scenario name,
// optional per-cell event traces under cfg.EventDir, results assembled
// in plot order regardless of completion order. Compiled Runners are
// immutable, so parallel cells share them safely. Nil ratios/pols
// select the Figure 5 defaults.
func (r *Runner) RunScenarioMatrix(ctx context.Context, cfg Config, scs []*scenario.Runner, ratios []Ratio, pols []string) (*Matrix, error) {
	if ratios == nil {
		ratios = MainRatios
	}
	if pols == nil {
		pols = Policies
	}
	if cfg.EventDir != "" {
		if err := os.MkdirAll(cfg.EventDir, 0o755); err != nil {
			return nil, err
		}
	}
	var (
		failMu sync.Mutex
		failed error
	)
	fail := func(err error) {
		failMu.Lock()
		if failed == nil {
			failed = err
		}
		failMu.Unlock()
	}
	bases := make([]sim.Result, len(scs))
	results := make([]sim.Result, len(scs)*len(ratios)*len(pols))
	var tasks []cellTask
	for si, sc := range scs {
		si, sc := si, sc
		sname := sc.Name()
		tasks = append(tasks, cellTask{
			label: sname + "/baseline",
			run: func() uint64 {
				ccfg := CellConfig(cfg, sname, "baseline", "all-capacity")
				closeTrace, err := cellTrace(cfg.EventDir, sname, "baseline", "all-capacity", &ccfg)
				if err != nil {
					fail(err)
					return 0
				}
				bases[si] = RunScenarioBaseline(sc, ccfg)
				if err := closeTrace(); err != nil {
					fail(err)
				}
				return bases[si].AppNS
			},
		})
		for ri, rt := range ratios {
			for pi, p := range pols {
				rt, p := rt, p
				slot := (si*len(ratios)+ri)*len(pols) + pi
				tasks = append(tasks, cellTask{
					label: fmt.Sprintf("%s/%s/%s", sname, rt.Name, p),
					run: func() uint64 {
						ccfg := CellConfig(cfg, sname, rt.Name, p)
						closeTrace, err := cellTrace(cfg.EventDir, sname, rt.Name, p, &ccfg)
						if err != nil {
							fail(err)
							return 0
						}
						results[slot] = RunScenario(sc, p, rt, ccfg)
						if err := closeTrace(); err != nil {
							fail(err)
						}
						return results[slot].AppNS
					},
				})
			}
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, fmt.Errorf("bench: writing event traces: %w", failed)
	}
	m := &Matrix{}
	for si, sc := range scs {
		for ri, rt := range ratios {
			for pi, p := range pols {
				res := results[(si*len(ratios)+ri)*len(pols)+pi]
				m.Cells = append(m.Cells, Cell{
					Workload: sc.Name(), Ratio: rt.Name, Policy: p,
					Value: Norm(res, bases[si]), Result: res,
				})
			}
		}
	}
	return m, nil
}

// HuntParams derives the (policy, ratio) a hunt iteration pairs with
// its generated scenario — a pure function of the seed, drawn from the
// full policy registry so fuzzing covers every system, not just the
// Figure 5 set.
func HuntParams(seed uint64) (string, Ratio) {
	h := splitmix64(seed ^ fnv1a("hunt-params"))
	pol := AllPolicies[h%uint64(len(AllPolicies))]
	rt := MainRatios[splitmix64(h)%uint64(len(MainRatios))]
	return pol, rt
}

// HuntShape derives the seed's machine-shape extensions: the hierarchy
// depth (2 keeps the classic two-tier pair; 3 and 4 insert derived
// intermediate tiers), whether benefit admission gates migrations, and
// whether the rate-limited background mover is on. Like HuntParams it
// is a pure function of the seed, so the fuzzer sweeps the deep-
// hierarchy and mover/admission surfaces with no extra inputs and a CI
// failure still reproduces from the seed alone.
func HuntShape(seed uint64) (depth int, admission, mover bool) {
	h := splitmix64(seed ^ fnv1a("hunt-shape"))
	depth = 2 + int(h%3)
	h = splitmix64(h)
	admission = h%2 == 1
	h = splitmix64(h)
	mover = h%2 == 1
	return depth, admission, mover
}

// HuntResult is one scenario-fuzz iteration's outcome.
type HuntResult struct {
	Seed   uint64
	Policy string
	Ratio  Ratio
	// Depth, Admission and Mover record the seed's machine shape (see
	// HuntShape).
	Depth     int
	Admission bool
	Mover     bool
	Spec      scenario.Spec
	Result    sim.Result
	// Violations lists the conformance-contract breaches the probe saw
	// (empty for a passing iteration); each line carries the seed.
	Violations []string
	// Minimal is the shrunk reproducer (equal to Spec when shrinking
	// could not simplify it; zero when the iteration passed).
	Minimal scenario.Spec
	// ReproPath names the written reproducer file ("" when passing or
	// when no repro directory was given).
	ReproPath string
}

// Failed reports whether the iteration violated the contract.
func (h HuntResult) Failed() bool { return len(h.Violations) > 0 }

// HuntScenario runs one iteration of the scenario pathology hunt:
// generate the seed's scenario, pair it with the seed's (policy, ratio)
// and drive it under the conformance probe. On violation, the spec is
// shrunk to a minimal still-failing reproducer and, when reproDir is
// non-empty, written there as scenario-<seed>.json with the context in
// its note. accesses <= 0 selects the hunt default (100k — large enough
// to exercise migration and churn, small enough for a fuzz iteration).
// Everything is a pure function of (seed, accesses), so a failure in a
// CI log reproduces locally from the seed alone.
func HuntScenario(seed uint64, accesses uint64, reproDir string) (HuntResult, error) {
	if accesses == 0 {
		accesses = 100_000
	}
	pol, rt := HuntParams(seed)
	depth, admit, mover := HuntShape(seed)
	cfg := DefaultConfig()
	cfg.Accesses = accesses
	cfg.Seed = int64(splitmix64(seed ^ fnv1a("hunt-machine")))
	if admit {
		adm, err := tier.ParseAdmission("benefit")
		if err != nil {
			return HuntResult{}, fmt.Errorf("bench: hunt admission: %w", err)
		}
		cfg.Admission = adm
	}
	if mover {
		mc, err := tier.ParseMoverSpec("8m/1ms")
		if err != nil {
			return HuntResult{}, fmt.Errorf("bench: hunt mover: %w", err)
		}
		cfg.Mover = mc
	}
	out := HuntResult{Seed: seed, Policy: pol, Ratio: rt,
		Depth: depth, Admission: admit, Mover: mover, Spec: scenario.Generate(seed)}
	run := func(spec scenario.Spec) ([]string, sim.Result, error) {
		sc, err := scenario.Compile(spec, scenario.Options{})
		if err != nil {
			return nil, sim.Result{}, err
		}
		if depth > 2 {
			// Derived per-candidate: shrinking can change the RSS the
			// intermediate tier sizes come from.
			topo, err := TopologyForDepth(sc.RSSBytes(), rt, depth, cfg.CapKind)
			if err != nil {
				return nil, sim.Result{}, err
			}
			cfg.Topology = topo
		}
		mc := ScenarioMachine(sc, rt, cfg)
		probe := scenario.NewProbe(NewPolicy(pol), seed, sc.FaultConfig())
		res := sim.Run(mc, probe, sc, cfg.Accesses)
		probe.FinalCheck()
		v := probe.Violations()
		if res.Accesses != cfg.Accesses {
			v = append(v, fmt.Sprintf("scenario seed=%#x policy=%s: ran %d accesses, want %d",
				seed, pol, res.Accesses, cfg.Accesses))
		}
		// The QoS arbiter vetoes any demotion below a warmed floor and
		// credits the tenant's own frees, so a floor violation is a
		// tenant-isolation conformance breach, not workload noise.
		for _, mt := range res.Counters {
			if strings.HasSuffix(mt.Name, "/floor_violations") && mt.Value > 0 {
				v = append(v, fmt.Sprintf("scenario seed=%#x policy=%s: %s = %d (fast-tier floor not isolated)",
					seed, pol, mt.Name, mt.Value))
			}
		}
		return v, res, nil
	}
	var err error
	out.Violations, out.Result, err = run(out.Spec)
	if err != nil {
		// Generate promises compilable specs; surface the bug, don't hunt on.
		return out, fmt.Errorf("bench: hunt seed %#x: %w", seed, err)
	}
	if !out.Failed() {
		return out, nil
	}
	out.Minimal = scenario.Shrink(out.Spec, func(cand scenario.Spec) bool {
		v, _, err := run(cand)
		return err == nil && len(v) > 0
	})
	out.Minimal.Note = fmt.Sprintf("seed=%#x policy=%s ratio=%s depth=%d admission=%t mover=%t accesses=%d: %s",
		seed, pol, rt.Name, depth, admit, mover, accesses, out.Violations[0])
	if reproDir != "" {
		if err := os.MkdirAll(reproDir, 0o755); err != nil {
			return out, fmt.Errorf("bench: hunt repro dir: %w", err)
		}
		data, err := out.Minimal.Encode()
		if err != nil {
			return out, fmt.Errorf("bench: hunt seed %#x: %w", seed, err)
		}
		path := filepath.Join(reproDir, fmt.Sprintf("scenario-%016x.json", seed))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return out, fmt.Errorf("bench: hunt repro: %w", err)
		}
		out.ReproPath = path
	}
	return out, nil
}
