// Package tier models physical memory tiers of a tiered-memory machine:
// a fast tier (local DRAM) and a capacity tier (NVM or CXL-attached
// memory). Each tier owns a set of 4KB physical frames managed by a
// buddy-lite allocator that can hand out either single base frames or
// 2MB-aligned huge frames (512 contiguous base frames), and carries the
// load/store latency model used by the simulator to charge every memory
// access the cost of the tier the page currently lives on.
package tier

import (
	"errors"
	"fmt"
)

// Architectural constants shared by the whole simulator (x86-64 style).
const (
	BasePageSize = 4096 // bytes in a base page
	SubPages     = 512  // base pages per 2MB huge page
	HugePageSize = BasePageSize * SubPages
)

// ID identifies a tier within a Machine: the index of the tier in its
// Topology chain. The fast tier is always FastTier; the historical
// two-tier machine (the paper's DRAM+NVM and DRAM+CXL setups) pairs it
// with CapacityTier, and deeper chains append tier 2, 3, ... below.
type ID int8

const (
	// FastTier is the top of the chain (local DRAM).
	FastTier ID = 0
	// CapacityTier is the tier directly below the fast tier: NVM or
	// CXL-attached memory in the default two-tier machine.
	CapacityTier ID = 1
	// NoTier marks an unplaced page.
	NoTier ID = -1
)

// String renders the conventional name of the tier index: "fast",
// "capacity", "tierN" for deeper chain positions, "none" for NoTier.
func (id ID) String() string {
	switch {
	case id == FastTier:
		return "fast"
	case id == CapacityTier:
		return "capacity"
	case id > CapacityTier:
		return fmt.Sprintf("tier%d", int8(id))
	default:
		return "none"
	}
}

// Kind describes the memory technology backing a tier. It selects the
// default latency profile; explicit latencies in Config override it.
type Kind int

const (
	DRAM Kind = iota
	NVM       // Intel Optane DCPMM-like
	CXL       // directly-attached CXL 1.1 memory (emulated in the paper)
	Far       // far memory: network/compressed tier below NVM
)

// String renders the conventional technology name of the kind.
func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case NVM:
		return "NVM"
	case CXL:
		return "CXL"
	case Far:
		return "Far"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Default latencies in nanoseconds, taken from the paper's evaluation
// setup (§6.1, §6.4): DRAM load ~80ns, Optane load ~300ns, emulated CXL
// load 177ns. Store latencies are slightly higher for NVM (write buffer
// drain) and close to load for DRAM/CXL. Far memory models a paged
// network/compressed tier an order of magnitude slower than NVM.
const (
	DRAMLoadNS  = 80
	DRAMStoreNS = 90
	NVMLoadNS   = 300
	NVMStoreNS  = 400
	CXLLoadNS   = 177
	CXLStoreNS  = 190
	FarLoadNS   = 2_500
	FarStoreNS  = 3_000
)

// Config describes one memory tier.
type Config struct {
	Name    string
	Kind    Kind
	Bytes   uint64 // capacity in bytes; rounded down to whole huge pages
	LoadNS  uint64 // 0 means "use Kind default"
	StoreNS uint64 // 0 means "use Kind default"
}

func (c *Config) fillDefaults() {
	if c.LoadNS == 0 || c.StoreNS == 0 {
		var l, s uint64
		switch c.Kind {
		case NVM:
			l, s = NVMLoadNS, NVMStoreNS
		case CXL:
			l, s = CXLLoadNS, CXLStoreNS
		case Far:
			l, s = FarLoadNS, FarStoreNS
		default:
			l, s = DRAMLoadNS, DRAMStoreNS
		}
		if c.LoadNS == 0 {
			c.LoadNS = l
		}
		if c.StoreNS == 0 {
			c.StoreNS = s
		}
	}
	if c.Name == "" {
		c.Name = c.Kind.String()
	}
}

// ErrOutOfMemory is returned when a tier cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("tier: out of memory")

// Frame is a physical base-frame number within one tier (frame 0 is the
// first 4KB of the tier). A huge-frame allocation returns the first of
// 512 contiguous, 2MB-aligned frames.
type Frame uint32

// blockState tracks one 2MB block of a tier for the buddy-lite allocator.
type blockState struct {
	freeBase  uint16 // number of free base frames in a broken block
	broken    bool   // block has been split into base frames
	allocated bool   // whole block handed out as a huge frame
}

// Tier is one memory tier: capacity, allocator and latency model.
// Tier is not safe for concurrent use; the simulator is single-threaded
// by design (deterministic virtual time).
type Tier struct {
	cfg Config

	totalBlocks int          // 2MB blocks
	blocks      []blockState // per-block allocator state
	freeBlocks  []uint32     // stack of pristine/coalesced 2MB block indexes
	freeBase    []Frame      // stack of free base frames from broken blocks

	usedFrames uint64 // allocated base-frame count (huge = 512)
}

// New creates a tier with the given configuration. Capacity is rounded
// down to a whole number of 2MB blocks; a tier must hold at least one.
func New(cfg Config) (*Tier, error) {
	cfg.fillDefaults()
	nBlocks := int(cfg.Bytes / HugePageSize)
	if nBlocks < 1 {
		return nil, fmt.Errorf("tier %s: capacity %d below one huge page", cfg.Name, cfg.Bytes)
	}
	t := &Tier{
		cfg:         cfg,
		totalBlocks: nBlocks,
		blocks:      make([]blockState, nBlocks),
		freeBlocks:  make([]uint32, 0, nBlocks),
	}
	// Push blocks so that block 0 is allocated first (stack order).
	for i := nBlocks - 1; i >= 0; i-- {
		t.freeBlocks = append(t.freeBlocks, uint32(i))
	}
	return t, nil
}

// MustNew is New but panics on error; for tests and examples.
func MustNew(cfg Config) *Tier {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the configured tier name.
func (t *Tier) Name() string { return t.cfg.Name }

// Kind returns the memory technology of the tier.
func (t *Tier) Kind() Kind { return t.cfg.Kind }

// LoadNS returns the load (read) latency of the tier in nanoseconds.
func (t *Tier) LoadNS() uint64 { return t.cfg.LoadNS }

// StoreNS returns the store (write) latency of the tier in nanoseconds.
func (t *Tier) StoreNS() uint64 { return t.cfg.StoreNS }

// AccessNS returns the latency of one access of the given kind.
func (t *Tier) AccessNS(write bool) uint64 {
	if write {
		return t.cfg.StoreNS
	}
	return t.cfg.LoadNS
}

// CapacityFrames returns the total number of base frames in the tier.
func (t *Tier) CapacityFrames() uint64 { return uint64(t.totalBlocks) * SubPages }

// CapacityBytes returns the usable capacity in bytes.
func (t *Tier) CapacityBytes() uint64 { return t.CapacityFrames() * BasePageSize }

// UsedFrames returns the number of allocated base frames.
func (t *Tier) UsedFrames() uint64 { return t.usedFrames }

// FreeFrames returns the number of free base frames (huge blocks count as
// 512 each; some of them may only be allocatable as base frames after
// breaking a block).
func (t *Tier) FreeFrames() uint64 { return t.CapacityFrames() - t.usedFrames }

// FreeBytes returns FreeFrames in bytes.
func (t *Tier) FreeBytes() uint64 { return t.FreeFrames() * BasePageSize }

// HasHugeFrame reports whether a 2MB allocation would currently succeed.
func (t *Tier) HasHugeFrame() bool { return len(t.freeBlocks) > 0 }

// AllocHuge allocates one 2MB-aligned huge frame (512 contiguous base
// frames) and returns its first frame number.
func (t *Tier) AllocHuge() (Frame, error) {
	if len(t.freeBlocks) == 0 {
		return 0, ErrOutOfMemory
	}
	b := t.freeBlocks[len(t.freeBlocks)-1]
	t.freeBlocks = t.freeBlocks[:len(t.freeBlocks)-1]
	st := &t.blocks[b]
	st.allocated = true
	t.usedFrames += SubPages
	return Frame(uint32(b) * SubPages), nil
}

// AllocBase allocates one 4KB base frame, breaking a pristine 2MB block
// into base frames if no loose frame is available.
func (t *Tier) AllocBase() (Frame, error) {
	if len(t.freeBase) == 0 {
		if len(t.freeBlocks) == 0 {
			return 0, ErrOutOfMemory
		}
		b := t.freeBlocks[len(t.freeBlocks)-1]
		t.freeBlocks = t.freeBlocks[:len(t.freeBlocks)-1]
		st := &t.blocks[b]
		st.broken = true
		st.freeBase = SubPages
		base := Frame(uint32(b) * SubPages)
		// Push in reverse so the lowest frame is allocated first.
		for i := SubPages - 1; i >= 0; i-- {
			t.freeBase = append(t.freeBase, base+Frame(i))
		}
	}
	f := t.freeBase[len(t.freeBase)-1]
	t.freeBase = t.freeBase[:len(t.freeBase)-1]
	t.blocks[f/SubPages].freeBase--
	t.usedFrames++
	return f, nil
}

// FreeHuge returns a huge frame previously obtained from AllocHuge.
func (t *Tier) FreeHuge(f Frame) {
	b := uint32(f) / SubPages
	st := &t.blocks[b]
	if !st.allocated || uint32(f)%SubPages != 0 {
		panic(fmt.Sprintf("tier %s: FreeHuge of non-huge frame %d", t.cfg.Name, f))
	}
	st.allocated = false
	t.usedFrames -= SubPages
	t.freeBlocks = append(t.freeBlocks, b)
}

// FreeBase returns a base frame previously obtained from AllocBase (or
// carved out of a huge frame via BreakHuge). When all 512 frames of a
// block become free the block is coalesced back into a huge frame.
func (t *Tier) FreeBase(f Frame) {
	b := uint32(f) / SubPages
	st := &t.blocks[b]
	if !st.broken {
		panic(fmt.Sprintf("tier %s: FreeBase frame %d in unbroken block", t.cfg.Name, f))
	}
	st.freeBase++
	t.usedFrames--
	if st.freeBase == SubPages {
		// Coalesce: drop the block's loose frames and return it whole.
		st.broken = false
		st.freeBase = 0
		keep := t.freeBase[:0]
		for _, fr := range t.freeBase {
			if uint32(fr)/SubPages != b {
				keep = append(keep, fr)
			}
		}
		t.freeBase = keep
		t.freeBlocks = append(t.freeBlocks, b)
	} else {
		t.freeBase = append(t.freeBase, f)
	}
}

// BreakHuge converts an allocated huge frame into 512 allocated base
// frames in place (used when a huge page is split without migrating its
// subpages). The caller then owns each base frame individually and may
// FreeBase any subset of them.
func (t *Tier) BreakHuge(f Frame) {
	b := uint32(f) / SubPages
	st := &t.blocks[b]
	if !st.allocated || uint32(f)%SubPages != 0 {
		panic(fmt.Sprintf("tier %s: BreakHuge of non-huge frame %d", t.cfg.Name, f))
	}
	st.allocated = false
	st.broken = true
	st.freeBase = 0 // all 512 remain allocated
}

// PhysAddr identifies a physical base frame across tiers.
type PhysAddr struct {
	Tier  ID
	Frame Frame
}
