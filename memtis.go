// Package memtis is a user-space reproduction of MEMTIS (SOSP 2023):
// efficient memory tiering with dynamic page classification and page
// size determination.
//
// The library simulates a two-tier memory machine (DRAM + NVM/CXL) with
// demand paging, transparent huge pages, a TLB model and PEBS-style
// access sampling, and runs tiering policies — MEMTIS itself plus the
// six state-of-the-art systems the paper evaluates against — over
// workload models of the paper's eight benchmarks.
//
// Quick start:
//
//	res := memtis.Run(memtis.MachineConfig{
//		FastBytes: 64 << 20,
//		CapBytes:  512 << 20,
//		CapKind:   memtis.NVM,
//		THP:       true,
//	}, memtis.NewMEMTIS(), memtis.MustWorkload("silo"), 2_000_000)
//	fmt.Printf("fast-tier hit ratio: %.1f%%\n", res.FastHitRatio*100)
//
// See cmd/memtis-sim for a CLI, cmd/paperfigs for regenerating every
// table and figure of the paper, and DESIGN.md for the simulation
// methodology and its scaling rules.
package memtis

import (
	memtiscore "memtis/internal/core"
	"memtis/internal/pebs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// Core machine types, re-exported from the simulator.
type (
	// MachineConfig describes the simulated two-tier host.
	MachineConfig = sim.Config
	// Machine is a simulated host executing one workload under one
	// tiering policy.
	Machine = sim.Machine
	// Result summarises a run.
	Result = sim.Result
	// SeriesPoint is one time-series sample of a run.
	SeriesPoint = sim.SeriesPoint
	// Policy is a tiering system driving page placement on a Machine.
	Policy = sim.Policy
	// Workload drives a Machine with a memory access stream.
	Workload = sim.Workload
	// MEMTISConfig tunes the MEMTIS policy (zero values take scaled
	// paper defaults).
	MEMTISConfig = memtiscore.Config
	// SamplerConfig tunes the PEBS-style sampling engine.
	SamplerConfig = pebs.Config
	// WorkloadSpec is one scaled Table 2 benchmark description.
	WorkloadSpec = workload.Spec
)

// Capacity-tier memory technologies.
const (
	DRAM = tier.DRAM
	NVM  = tier.NVM
	CXL  = tier.CXL
)

// NewMachine builds a machine running under the given policy (nil for
// plain fast-first placement without migration).
func NewMachine(cfg MachineConfig, pol Policy) *Machine { return sim.NewMachine(cfg, pol) }

// Run executes a workload for the given number of accesses on a fresh
// machine and returns the result.
func Run(cfg MachineConfig, pol Policy, w Workload, accesses uint64) Result {
	return sim.Run(cfg, pol, w, accesses)
}

// NewMEMTIS creates the MEMTIS policy with paper defaults.
func NewMEMTIS() Policy { return memtiscore.New(memtiscore.Config{}) }

// NewMEMTISWith creates the MEMTIS policy with explicit configuration
// (ablations: SplitDisabled, WarmDisabled; intervals; sampler tuning).
func NewMEMTISWith(cfg MEMTISConfig) *memtiscore.Policy { return memtiscore.New(cfg) }

// Baseline policy constructors (§6.1 comparison targets).
var (
	NewAutoNUMA    = policy.NewAutoNUMA
	NewAutoTiering = policy.NewAutoTiering
	NewTiering08   = policy.NewTiering08
	NewTPP         = policy.NewTPP
	NewNimble      = policy.NewNimble
	NewMultiClock  = policy.NewMultiClock
	NewHeMem       = policy.NewHeMem
	NewStatic      = policy.NewStatic
)

// Workloads returns the paper's Table 2 benchmark specifications.
func Workloads() []WorkloadSpec { return workload.Specs() }

// MachineFor sizes a machine for one of the paper's benchmarks: the
// fast tier holds fastFrac of the workload's resident set (e.g. 1/9 for
// the paper's 1:8 configuration) and the capacity tier holds the full
// set with head-room. The capacity tier must always cover the resident
// set — the simulator treats true out-of-memory as fatal, as a kernel
// would.
func MachineFor(spec WorkloadSpec, fastFrac float64, capKind tier.Kind) MachineConfig {
	rss := spec.RSSBytes()
	fast := uint64(float64(rss) * fastFrac)
	if fast < 2*tier.HugePageSize {
		fast = 2 * tier.HugePageSize
	}
	return MachineConfig{
		FastBytes: fast,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   capKind,
		THP:       true,
	}
}

// NewWorkload builds the named benchmark model (see Workloads).
func NewWorkload(name string) (Workload, error) { return workload.New(name) }

// Synthetic workload construction: compose regions and access-mix
// phases (zipf/uniform/sequential, optionally scrambled) into a custom
// workload — the escape hatch for studies beyond the paper's benchmarks.
type (
	// SyntheticSpec defines a user workload: regions plus access mix.
	SyntheticSpec = workload.SyntheticSpec
	// SyntheticRegion is one region of a synthetic workload.
	SyntheticRegion = workload.SyntheticRegion
	// SyntheticPhase is one access-mix component.
	SyntheticPhase = workload.SyntheticPhase
)

// NewSynthetic validates and builds a user-defined workload.
func NewSynthetic(spec SyntheticSpec) (*workload.Synthetic, error) {
	return workload.NewSynthetic(spec)
}

// MustWorkload is NewWorkload but panics on unknown names.
func MustWorkload(name string) Workload { return workload.MustNew(name) }
