package tier

import (
	"testing"
)

func TestFaultPlanDisabled(t *testing.T) {
	if p := NewFaultPlan(FaultConfig{}); p != nil {
		t.Fatalf("zero config built a plan: %+v", p)
	}
	// Every method must be the disabled case on a nil plan.
	var p *FaultPlan
	if p.FailCopy() {
		t.Error("nil plan failed a copy")
	}
	if f := p.CopyCostFactor(123); f != 1 {
		t.Errorf("nil plan copy factor = %d, want 1", f)
	}
	if s := p.AccessStallNS(CapacityTier, 123); s != 0 {
		t.Errorf("nil plan stall = %d", s)
	}
	if p.MaxRetries() != 0 || p.RetryBackoffNS(3) != 0 {
		t.Error("nil plan has retry budget")
	}
	if thr, stl := p.PollWindows(123); thr || stl {
		t.Error("nil plan reported a window")
	}
	if p.ThrottleActive(0) {
		t.Error("nil plan throttles")
	}
}

func TestFaultPlanDeterministicStream(t *testing.T) {
	cfg := FaultConfig{Seed: 99, MigrateFailPpm: 250_000}
	a, b := NewFaultPlan(cfg), NewFaultPlan(cfg)
	fails := 0
	for i := 0; i < 4096; i++ {
		fa, fb := a.FailCopy(), b.FailCopy()
		if fa != fb {
			t.Fatalf("decision %d diverged between identical plans", i)
		}
		if fa {
			fails++
		}
	}
	// 25% nominal rate: accept a wide deterministic band.
	if fails < 4096/8 || fails > 4096/2 {
		t.Errorf("25%% plan failed %d/4096 copies", fails)
	}
	// A different seed must yield a different stream.
	c := NewFaultPlan(FaultConfig{Seed: 100, MigrateFailPpm: 250_000})
	a2 := NewFaultPlan(cfg)
	same := 0
	for i := 0; i < 4096; i++ {
		if a2.FailCopy() == c.FailCopy() {
			same++
		}
	}
	if same == 4096 {
		t.Error("seeds 99 and 100 produced identical streams")
	}
}

func TestFaultPlanWindows(t *testing.T) {
	p := NewFaultPlan(FaultConfig{
		ThrottlePeriodNS: 1000, ThrottleDutyNS: 200, ThrottleFactor: 8,
		StallPeriodNS: 500, StallDutyNS: 100, StallTier: CapacityTier, StallNS: 77,
	})
	if f := p.CopyCostFactor(100); f != 8 {
		t.Errorf("factor inside window = %d, want 8", f)
	}
	if f := p.CopyCostFactor(300); f != 1 {
		t.Errorf("factor outside window = %d, want 1", f)
	}
	if s := p.AccessStallNS(CapacityTier, 1050); s != 77 {
		t.Errorf("stall inside burst = %d, want 77", s)
	}
	if s := p.AccessStallNS(FastTier, 1050); s != 0 {
		t.Errorf("stall hit the wrong tier: %d", s)
	}
	if s := p.AccessStallNS(CapacityTier, 1300); s != 0 {
		t.Errorf("stall outside burst = %d", s)
	}
	// One start report per window, idempotent within it.
	thr, stl := p.PollWindows(0)
	if !thr || !stl {
		t.Fatalf("first poll at 0: throttle=%v stall=%v, want both", thr, stl)
	}
	if thr, stl = p.PollWindows(50); thr || stl {
		t.Fatal("re-poll inside the same windows reported starts again")
	}
	if thr, stl = p.PollWindows(550); thr || !stl {
		t.Fatalf("poll at 550: throttle=%v stall=%v, want stall only", thr, stl)
	}
	if thr, _ = p.PollWindows(1100); !thr {
		t.Fatal("second throttle window not reported")
	}
}

func TestFaultPlanDefaults(t *testing.T) {
	p := NewFaultPlan(FaultConfig{MigrateFailPpm: 1})
	c := p.Config()
	if c.MaxRetries != DefaultMaxRetries || c.BackoffNS != DefaultBackoffNS {
		t.Errorf("defaults not filled: %+v", c)
	}
	if b := p.RetryBackoffNS(0); b != DefaultBackoffNS {
		t.Errorf("backoff(0) = %d", b)
	}
	if b := p.RetryBackoffNS(2); b != DefaultBackoffNS*4 {
		t.Errorf("backoff(2) = %d", b)
	}
	// The doubling is capped.
	if b := p.RetryBackoffNS(1000); b != DefaultBackoffNS<<maxBackoffShift {
		t.Errorf("backoff(1000) = %d", b)
	}
	pt := NewFaultPlan(FaultConfig{ThrottlePeriodNS: 100, ThrottleDutyNS: 10})
	if f := pt.Config().ThrottleFactor; f != DefaultThrottleFactor {
		t.Errorf("throttle factor default = %d", f)
	}
}

func TestParseFaultSpec(t *testing.T) {
	c, err := ParseFaultSpec("rate=0.01,retries=5,backoff=40us,throttle=200us/1ms:4x,stall=cap:100us/1ms:150ns,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{
		Seed: 7, MigrateFailPpm: 10_000, MaxRetries: 5, BackoffNS: 40_000,
		ThrottlePeriodNS: 1_000_000, ThrottleDutyNS: 200_000, ThrottleFactor: 4,
		StallPeriodNS: 1_000_000, StallDutyNS: 100_000, StallTier: CapacityTier, StallNS: 150,
	}
	if c != want {
		t.Fatalf("parsed %+v, want %+v", c, want)
	}
	if c2, err := ParseFaultSpec("rate=10000ppm"); err != nil || c2.MigrateFailPpm != 10_000 {
		t.Fatalf("ppm form: %+v, %v", c2, err)
	}
	if c3, err := ParseFaultSpec(""); err != nil || c3.Enabled() {
		t.Fatalf("empty spec: %+v, %v", c3, err)
	}
	for _, bad := range []string{
		"rate=2", "rate=-1", "rate=2000000ppm", "retries=99", "retries=-1",
		"bogus=1", "throttle=1ms", "throttle=2ms/1ms", "throttle=1us/1ms:4",
		"stall=cap:1us/1ms", "stall=mid:1us/1ms:5ns", "stall=cap:2ms/1ms:5ns",
		"backoff=12", "backoff=5parsecs", "rate", "throttle=1us/0ns",
	} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// FuzzFaultSpec: the parser never panics, and any spec it accepts
// round-trips exactly through the canonical String form.
func FuzzFaultSpec(f *testing.F) {
	f.Add("rate=0.01,retries=3,throttle=200us/1ms:4x,stall=cap:100us/1ms:150ns")
	f.Add("rate=10000ppm,seed=-42,backoff=1ms")
	f.Add("stall=fast:0ns/1ns:0ns")
	f.Add("throttle=1us/1us:1024x")
	f.Add("")
	f.Add(" rate=1 , retries=16 ")
	f.Add("rate=0.999999")
	f.Add("seed=9223372036854775807")
	f.Add("rate==,==,")
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseFaultSpec(spec)
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("parser accepted invalid config %+v: %v", c, err)
		}
		canon := c.String()
		c2, err := ParseFaultSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if c2 != c {
			t.Fatalf("round trip diverged: %+v -> %q -> %+v", c, canon, c2)
		}
	})
}
