package tenant

// wpick is the scheduler's weighted draw: a Fenwick (binary indexed)
// tree over the runnable tenants' static weights, so drawing the next
// tenant is O(log n) instead of two O(n) scans — the dominant
// scheduler cost at 1024 tenants. It is shared by the inline runner
// and the sharded driver, which must select identical schedules for
// the same draw sequence. fen is 1-indexed; wcur[i] is the weight
// currently credited to tenant i (0 when not runnable) and sum their
// total.
type wpick struct {
	fen  []uint64
	wcur []uint64
	sum  uint64
	pow  int // largest power of two <= n
	n    int
}

func newWpick(n int) *wpick {
	t := &wpick{fen: make([]uint64, n+1), wcur: make([]uint64, n), n: n, pow: 1}
	for t.pow*2 <= n {
		t.pow *= 2
	}
	return t
}

// set credits tenant i's weight to the tree (no-op when already set).
func (t *wpick) set(i int, w uint64) {
	if t.wcur[i] != 0 {
		return
	}
	t.wcur[i] = w
	t.sum += w
	for j := i + 1; j <= t.n; j += j & -j {
		t.fen[j] += w
	}
}

// clear removes tenant i's weight from the tree (no-op when not set).
func (t *wpick) clear(i int) {
	w := t.wcur[i]
	if w == 0 {
		return
	}
	t.wcur[i] = 0
	t.sum -= w
	for j := i + 1; j <= t.n; j += j & -j {
		t.fen[j] -= w
	}
}

// pick returns the index the draw x selects, for x in [0, sum): a
// Fenwick prefix-sum search selecting exactly the tenant a linear
// cumulative-weight scan over wcur would return.
func (t *wpick) pick(x uint64) int {
	i := 0
	for k := t.pow; k > 0; k >>= 1 {
		if ni := i + k; ni <= t.n && t.fen[ni] <= x {
			x -= t.fen[ni]
			i = ni
		}
	}
	return i
}
