package scenario

import (
	"fmt"

	"memtis/internal/tier"
	"memtis/internal/workload"
)

// genRNG is a SplitMix64 sequence generator — the canonical SplitMix64,
// the same discipline as bench's per-cell seeds and tier's fault
// decision stream — so Generate(seed) is a pure function of its seed.
type genRNG struct{ s uint64 }

func newGenRNG(seed uint64) *genRNG { return &genRNG{s: splitmix64(seed ^ 0x5ce4a210)} }

func (g *genRNG) next() uint64 {
	g.s += 0x9e3779b97f4a7c15
	x := g.s
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// intn draws uniformly from [0, n).
func (g *genRNG) intn(n int) int { return int(g.next() % uint64(n)) }

// chance reports true with probability num/den.
func (g *genRNG) chance(num, den int) bool { return g.intn(den) < num }

// Generate derives a random but fully seed-deterministic scenario: 1-4
// phases mixing Table 2 workloads (scaled small), synthetic mixes over
// named regions, RSS churn (grow/free events) and, half the time, a
// fault-injection plan. Every generated spec validates and compiles —
// a Generate output failing Validate is itself a bug (pinned by
// TestGenerateAlwaysValid). Region and workload sizes are kept in the
// single- to tens-of-MB range so a fuzz iteration stays cheap.
func Generate(seed uint64) Spec {
	g := newGenRNG(seed)
	s := Spec{Name: fmt.Sprintf("fuzz-%016x", seed)}
	if g.chance(1, 2) {
		s.Faults = genFaults(g)
	}
	// A third of the seeds exercise the multi-tenant form, so the
	// nightly hunt covers the tenant scheduler, churn and QoS arbiter
	// under every policy for free.
	if g.chance(1, 3) {
		s.Tenants = genTenants(g)
		return s
	}
	s.Phases = genPhases(g, 1+g.intn(4))
	return s
}

// genTenants derives 2-4 small tenants: tenant 0 immortal (the spec
// must outlive its churn), later tenants may spawn late, exit early,
// carry fast-tier floors, weights and grow/shrink churn.
func genTenants(g *genRNG) []TenantSpec {
	n := 2 + g.intn(3)
	out := make([]TenantSpec, n)
	for i := range out {
		t := &out[i]
		t.Phases = genPhases(g, 1+g.intn(2))
		if g.chance(1, 2) {
			t.Weight = uint64(1 + g.intn(4))
		}
		if g.chance(1, 3) {
			t.FloorBytes = uint64(1+g.intn(4)) << 20
		}
		if i > 0 && g.chance(1, 3) {
			t.SpawnFrac = 0.1 * float64(1+g.intn(3))
			if g.chance(1, 2) {
				t.ExitFrac = t.SpawnFrac + 0.1*float64(1+g.intn(5))
			}
		}
		if g.chance(1, 4) {
			t.GrowBytes = uint64(1+g.intn(8)) << 20
			t.GrowFrac = 0.1 * float64(1+g.intn(5))
			if g.chance(1, 2) {
				t.ShrinkFrac = t.GrowFrac + 0.1*float64(1+g.intn(3))
			}
		}
	}
	return out
}

// genPhases derives one phase sequence (the single-tenant scenario
// body, and each tenant's program in the multi-tenant form).
func genPhases(g *genRNG, nPhases int) []Phase {
	var phases []Phase
	live := map[string]bool{}
	regionSeq := 0
	zipfS := []float64{0.6, 0.8, 0.99, 1.1, 1.3}
	specs := workload.Specs()
	for i := 0; i < nPhases; i++ {
		var p Phase
		// Phase 0 is always an access source so the scenario is valid
		// and the budget always drains; later phases may be churn-only.
		kind := 0 // 0 = mix, 1 = workload, 2 = churn-only
		switch {
		case i == 0:
			kind = g.intn(2)
		default:
			k := g.intn(10)
			switch {
			case k < 5:
				kind = 0
			case k < 8:
				kind = 1
			default:
				kind = 2
			}
		}
		// Churn first: frees of live regions (never in phase 0), then
		// fresh grows.
		if i > 0 && len(live) > 0 && g.chance(1, 3) {
			p.Free = append(p.Free, pickLive(g, live))
			delete(live, p.Free[0])
		}
		grows := 0
		if kind == 0 {
			// A mix needs at least one region to draw from.
			if len(live) == 0 {
				grows = 1 + g.intn(2)
			} else if g.chance(1, 2) {
				grows = 1
			}
		} else if g.chance(1, 3) {
			grows = 1
		}
		for k := 0; k < grows; k++ {
			name := fmt.Sprintf("r%d", regionSeq)
			regionSeq++
			p.Grow = append(p.Grow, Region{
				Name:     name,
				Bytes:    uint64(1+g.intn(16)) << 20, // 1..16 MB
				SkipInit: g.chance(1, 4),
			})
			live[name] = true
		}
		switch kind {
		case 0:
			nMix := 1 + g.intn(3)
			if nMix > len(live) {
				nMix = len(live)
			}
			for k := 0; k < nMix; k++ {
				e := MixEntry{
					Region:       pickLive(g, live),
					Weight:       1 + g.intn(8),
					WritePercent: g.intn(101),
				}
				switch g.intn(3) {
				case 0:
					e.Dist = "zipf"
					e.S = zipfS[g.intn(len(zipfS))]
					e.Scramble = g.chance(1, 2)
				case 1:
					e.Dist = "uniform"
				case 2:
					e.Dist = "seq"
				}
				p.Mix = append(p.Mix, e)
			}
			p.Weight = float64(1 + g.intn(4))
		case 1:
			p.Workload = specs[g.intn(len(specs))].Name
			// 0.25..2 paper-GB => 2..16 simulated MB: big enough to
			// stress placement, small enough for a cheap fuzz run.
			p.RSSGB = 0.25 * float64(1+g.intn(8))
			p.Weight = float64(1 + g.intn(4))
		}
		phases = append(phases, p)
	}
	return phases
}

// pickLive selects a live region deterministically (iteration order of
// Go maps is randomized, so pick by sorted index instead).
func pickLive(g *genRNG, live map[string]bool) string {
	names := make([]string, 0, len(live))
	for n := range live {
		names = append(names, n)
	}
	// Insertion sort: tiny n, no sort import needed.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names[g.intn(len(names))]
}

// genFaults derives a random-but-valid fault plan and renders it in the
// spec mini-language (the canonical String form, so the scenario spec
// round-trips).
func genFaults(g *genRNG) string {
	var fc tier.FaultConfig
	if g.chance(2, 3) {
		rates := []uint32{1_000, 10_000, 50_000}
		fc.MigrateFailPpm = rates[g.intn(len(rates))]
		fc.MaxRetries = 1 + g.intn(4)
	}
	if g.chance(1, 2) {
		fc.ThrottlePeriodNS = 1_000_000
		fc.ThrottleDutyNS = uint64(100_000 * (1 + g.intn(5)))
		fc.ThrottleFactor = uint64(2 + g.intn(4))
	}
	if g.chance(1, 3) {
		fc.StallPeriodNS = 1_000_000
		fc.StallDutyNS = uint64(100_000 * (1 + g.intn(3)))
		fc.StallNS = uint64(100 * (1 + g.intn(4)))
		if g.chance(1, 2) {
			fc.StallTier = tier.CapacityTier
		}
	}
	return fc.String()
}
