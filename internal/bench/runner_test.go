package bench

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// detCfg is the determinism-test budget: large enough that policies
// migrate, split and cool (so the comparison covers real state), small
// enough for -race CI runs.
func detCfg() Config {
	cfg := DefaultConfig()
	cfg.Accesses = 300_000
	cfg.RecordNS = 500_000 // record series so they are compared too
	return cfg
}

// subMatrix is the Fig-5 sub-matrix used by the determinism tests.
func subMatrix() (workloads []string, ratios []Ratio, pols []string) {
	return []string{"silo", "pagerank"},
		[]Ratio{Ratio1to2, Ratio1to8},
		[]string{"tpp", "hemem", "memtis"}
}

// diffMatrices reports the first cell-level difference between two
// matrices, or "" when they are identical (values, series, stats).
func diffMatrices(a, b *Matrix) string {
	if len(a.Cells) != len(b.Cells) {
		return fmt.Sprintf("cell count %d != %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.Workload != cb.Workload || ca.Ratio != cb.Ratio || ca.Policy != cb.Policy {
			return fmt.Sprintf("cell %d order: %s/%s/%s != %s/%s/%s",
				i, ca.Workload, ca.Ratio, ca.Policy, cb.Workload, cb.Ratio, cb.Policy)
		}
		if ca.Value != cb.Value {
			return fmt.Sprintf("cell %s/%s/%s value %v != %v", ca.Workload, ca.Ratio, ca.Policy, ca.Value, cb.Value)
		}
		if !reflect.DeepEqual(ca.Result, cb.Result) {
			return fmt.Sprintf("cell %s/%s/%s result differs: %+v != %+v",
				ca.Workload, ca.Ratio, ca.Policy, ca.Result, cb.Result)
		}
	}
	return ""
}

// TestRunMatrixDeterminism is the parallel ≡ sequential regression
// test: the same Fig-5 sub-matrix run twice sequentially and once with
// 8 workers must produce byte-identical cells (values, series, stats)
// for the same Config.Seed. CI runs this under -race (make race).
func TestRunMatrixDeterminism(t *testing.T) {
	cfg := detCfg()
	ws, rs, ps := subMatrix()
	ctx := context.Background()

	seq1, err := Sequential().RunMatrix(ctx, cfg, ws, rs, ps)
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := Sequential().RunMatrix(ctx, cfg, ws, rs, ps)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Parallel(8).RunMatrix(ctx, cfg, ws, rs, ps)
	if err != nil {
		t.Fatal(err)
	}
	if d := diffMatrices(seq1, seq2); d != "" {
		t.Fatalf("sequential not reproducible: %s", d)
	}
	if d := diffMatrices(seq1, par); d != "" {
		t.Fatalf("parallel differs from sequential: %s", d)
	}
	if len(seq1.Cells) != len(ws)*len(rs)*len(ps) {
		t.Fatalf("cell count %d", len(seq1.Cells))
	}
}

// TestRunMatrixSeedSensitivity guards against the runner ignoring the
// base seed: a different Config.Seed must change at least one cell.
func TestRunMatrixSeedSensitivity(t *testing.T) {
	cfg := detCfg()
	ws := []string{"silo"}
	rs := []Ratio{Ratio1to8}
	ps := []string{"memtis"}
	a, err := Sequential().RunMatrix(context.Background(), cfg, ws, rs, ps)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	b, err := Sequential().RunMatrix(context.Background(), cfg, ws, rs, ps)
	if err != nil {
		t.Fatal(err)
	}
	if diffMatrices(a, b) == "" {
		t.Fatal("changing the base seed left every cell identical")
	}
}

func TestCellSeedProperties(t *testing.T) {
	// Distinct coordinates yield distinct seeds (42 base, full Fig 5).
	seen := map[int64]string{}
	for _, w := range []string{"graph500", "pagerank", "xsbench", "liblinear", "silo", "btree", "603.bwaves", "654.roms", "baseline"} {
		for _, r := range []string{"1:2", "1:8", "1:16", "2:1", "baseline"} {
			for _, p := range append(append([]string{}, Policies...), "all-capacity", "all-dram-thp") {
				s := CellSeed(42, w, r, p)
				key := w + "/" + r + "/" + p
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision: %s and %s -> %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
	// Stable: same inputs, same seed.
	if CellSeed(42, "silo", "1:8", "memtis") != CellSeed(42, "silo", "1:8", "memtis") {
		t.Fatal("CellSeed not stable")
	}
	// Base seed participates.
	if CellSeed(42, "silo", "1:8", "memtis") == CellSeed(43, "silo", "1:8", "memtis") {
		t.Fatal("base seed ignored")
	}
	// Coordinate order matters (workload/ratio swap must not alias).
	if CellSeed(42, "a", "b", "c") == CellSeed(42, "b", "a", "c") {
		t.Fatal("coordinate aliasing")
	}
}

func TestCellConfigOnlyChangesSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Accesses = 777
	got := CellConfig(cfg, "silo", "1:8", "memtis")
	if got.Seed == cfg.Seed {
		t.Fatal("seed not derived")
	}
	got.Seed = cfg.Seed
	if got != cfg {
		t.Fatalf("CellConfig altered more than the seed: %+v vs %+v", got, cfg)
	}
}

// TestRunnerCancellation: a cancelled context stops the fan-out early
// and surfaces a Cancelled error that still matches context.Canceled
// and reports how many cells completed out of how many were asked for.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	started := 0
	tasks := make([]cellTask, 64)
	for i := range tasks {
		tasks[i] = cellTask{label: fmt.Sprintf("t%d", i), run: func() uint64 {
			mu.Lock()
			started++
			if started == 2 {
				cancel()
			}
			mu.Unlock()
			return 1
		}}
	}
	err := Parallel(2).do(ctx, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var ce *Cancelled
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *Cancelled", err)
	}
	mu.Lock()
	ran := started
	mu.Unlock()
	if ce.Total != len(tasks) {
		t.Fatalf("Total = %d, want %d", ce.Total, len(tasks))
	}
	if ce.Done != ran {
		t.Fatalf("Done = %d, but %d cells ran", ce.Done, ran)
	}
	if ran == len(tasks) {
		t.Fatal("cancellation did not stop the fan-out")
	}
	// Sequential mode observes cancellation too, before running anything
	// on an already-dead context.
	err = Sequential().do(ctx, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential err = %v", err)
	}
	ce = nil
	if !errors.As(err, &ce) || ce.Done != 0 || ce.Total != len(tasks) {
		t.Fatalf("sequential Cancelled = %+v", ce)
	}
}

// TestCancelledReportMatchesProgress: the Done count in the Cancelled
// error must equal the last progress event's Done — this is the count
// the CLIs print, and it used to be silently dropped on cancellation.
func TestCancelledReportMatchesProgress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var last Progress
	r := &Runner{Workers: 4, Progress: func(p Progress) { last = p }}
	started := 0
	tasks := make([]cellTask, 32)
	for i := range tasks {
		tasks[i] = cellTask{label: fmt.Sprintf("t%d", i), run: func() uint64 {
			mu.Lock()
			started++
			if started == 3 {
				cancel()
			}
			mu.Unlock()
			return 1
		}}
	}
	err := r.do(ctx, tasks)
	var ce *Cancelled
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *Cancelled", err)
	}
	if ce.Done != last.Done {
		t.Fatalf("Cancelled.Done = %d, last progress Done = %d", ce.Done, last.Done)
	}
	if msg := ce.Error(); msg == "" || !errors.Is(ce, context.Canceled) {
		t.Fatalf("Cancelled formatting/unwrap broken: %q", msg)
	}
}

// TestRunnerProgress checks the callback sees every completion exactly
// once with a monotonically growing Done and cumulative virtual time.
func TestRunnerProgress(t *testing.T) {
	const n = 10
	for _, workers := range []int{1, 4} {
		var events []Progress
		r := &Runner{Workers: workers, Progress: func(p Progress) { events = append(events, p) }}
		tasks := make([]cellTask, n)
		for i := range tasks {
			tasks[i] = cellTask{label: fmt.Sprintf("t%d", i), run: func() uint64 { return 5 }}
		}
		if err := r.do(context.Background(), tasks); err != nil {
			t.Fatal(err)
		}
		if len(events) != n {
			t.Fatalf("workers=%d: %d events, want %d", workers, len(events), n)
		}
		for i, e := range events {
			if e.Done != i+1 || e.Total != n {
				t.Fatalf("workers=%d event %d: %+v", workers, i, e)
			}
			if e.VirtualNS != uint64(5*(i+1)) {
				t.Fatalf("workers=%d virtual time %d at event %d", workers, e.VirtualNS, i)
			}
		}
	}
}

// TestRunAllShape: the full default fan-out covers every Table 2
// workload, main ratio and Figure 5 policy. Budget kept tiny — this
// checks shape, not performance.
func TestRunAllShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultConfig()
	cfg.Accesses = 60_000
	m, err := Parallel(0).RunAll(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * len(MainRatios) * len(Policies)
	if len(m.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(m.Cells), want)
	}
	for _, c := range m.Cells {
		if c.Result.Accesses == 0 {
			t.Fatalf("cell %s/%s/%s never ran", c.Workload, c.Ratio, c.Policy)
		}
	}
}

// TestKnownPolicyMatchesNewPolicy keeps the validation helper in sync
// with the factory: every name KnownPolicy accepts must construct, and
// rejected names must be the ones NewPolicy panics on.
func TestKnownPolicyMatchesNewPolicy(t *testing.T) {
	for _, name := range AllPolicies {
		if !KnownPolicy(name) {
			t.Errorf("KnownPolicy(%q) = false", name)
		}
		if NewPolicy(name) == nil {
			t.Errorf("NewPolicy(%q) = nil", name)
		}
	}
	for _, name := range []string{"", "bogus", "MEMTIS", "memtis "} {
		if KnownPolicy(name) {
			t.Errorf("KnownPolicy(%q) = true", name)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPolicy(%q) did not panic", name)
				}
			}()
			NewPolicy(name)
		}()
	}
}
