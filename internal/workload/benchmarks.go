package workload

import (
	"math/rand"

	"memtis/internal/tier"
	"memtis/internal/vm"
)

// blockZipf draws Zipf-skewed indexes over 2MB blocks of a region, with
// the block ranking scattered by a permutation, and a uniform subpage
// offset within the block. Hot data is therefore skewed at huge-page
// granularity (so distribution-aware placement is rewarded) while each
// huge page keeps uniformly-accessed subpages (high utilization — these
// are the workloads MEMTIS should NOT split).
type blockZipf struct {
	r      region
	bperm  perm
	z      zipf
	rng    *rand.Rand
	blocks uint64
}

func newBlockZipf(rng *rand.Rand, s float64, r region) blockZipf {
	blocks := r.pages / tier.SubPages
	if blocks < 1 {
		blocks = 1
	}
	return blockZipf{r: r, bperm: newPerm(rng, blocks), z: newZipf(rng, s, blocks), rng: rng, blocks: blocks}
}

func (b blockZipf) next() uint64 {
	blk := b.bperm.at(b.z.next())
	off := b.rng.Uint64() % tier.SubPages
	return b.r.vpnAt(blk*tier.SubPages + off)
}

// buildGraph500 models Graph500 (§6.2.1): edge-list generation writes a
// large region frequently, then BFS hammers a small vertex set (hot,
// dense) while probing edges with block-level skew. The vertex region
// is allocated after the graph, so tiering systems must earn its
// placement by migrating.
func buildGraph500(c *ctx) stepper {
	small := c.reserveSmall(c.spec.SmallBytes())
	main := c.spec.RSSBytes() - c.spec.SmallBytes()
	edges := c.reserve(main * 90 / 100)
	vertices := c.reserve(main * 10 / 100)
	c.touchSmall(small)
	c.touchAll(edges)
	// Generation phase: another sequential write sweep over the edge
	// region (frequent large-region accesses), ~12% of the budget.
	genEnd := c.m.Accesses() + c.budget*12/100
	for i := uint64(0); c.m.Accesses() < genEnd && c.m.Accesses() < c.budget; i++ {
		c.m.Access(edges.vpnAt(i), true)
	}
	c.touchAll(vertices)
	zv := newZipf(c.rng, 1.25, vertices.pages)
	ze := newBlockZipf(c.rng, 1.45, edges)
	smallStep := smallStepper(c, small)
	return func() (uint64, bool) {
		switch r := c.rng.Uint32() % 1000; {
		case r < 550:
			return vertices.vpnAt(zv.next()), c.pick(1, 3)
		case r < 998:
			return ze.next(), false
		default:
			return smallStep()
		}
	}
}

// buildPageRank models GAP PageRank on the Twitter graph (§6.2.1): the
// graph loads first (filling the fast tier with soon-cold edges), then
// iterations stream the edge list while updating a small, persistently
// hot rank vector. The explicit hot set (rank vector) is well below the
// fast tier size, reproducing HeMem's Figure 2 pathology; the streamed
// edges bait recency-based systems into promotion churn.
func buildPageRank(c *ctx) stepper {
	small := c.reserveSmall(c.spec.SmallBytes())
	main := c.spec.RSSBytes() - c.spec.SmallBytes()
	edges := c.reserve(main * 88 / 100)
	ranks := c.reserve(main * 12 / 100)
	c.touchSmall(small)
	c.touchAll(edges)
	c.touchAll(ranks)
	var cursor uint64
	zr := newZipf(c.rng, 1.05, ranks.pages)
	smallStep := smallStepper(c, small)
	return func() (uint64, bool) {
		switch r := c.rng.Uint32() % 1000; {
		case r < 420:
			cursor++
			return edges.vpnAt(cursor), false
		case r < 998:
			return ranks.vpnAt(zr.next()), c.pick(1, 2)
		default:
			return smallStep()
		}
	}
}

// buildXSBench models the Monte Carlo neutron transport kernel
// (§6.2.2): one region allocated and touched early whose first ~35%
// (the unionized energy grid) is very hot, with block-level skew inside
// it. The hot region exceeds the fast tier except at 1:2, and because
// it is allocated early, AutoNUMA's no-demotion placement happens to
// work well at 1:2 — exactly the paper's observation.
func buildXSBench(c *ctx) stepper {
	main := c.reserve(c.spec.RSSBytes())
	c.touchAll(main)
	hotPages := main.pages * 35 / 100
	hot := region{r: vm.Region{BaseVPN: main.r.BaseVPN, Pages: hotPages}, pages: hotPages}
	zh := newBlockZipf(c.rng, 1.30, hot)
	return func() (uint64, bool) {
		if c.pick(88, 100) {
			return zh.next(), c.pick(1, 10)
		}
		return main.r.BaseVPN + hotPages + c.rng.Uint64()%(main.pages-hotPages), false
	}
}

// buildLiblinear models linear classification over KDD12 (§6.2.3): the
// feature matrix loads first; training then revisits feature blocks
// with block-level skew while a compact model region (allocated after
// the data) stays hot. Hot huge pages exhibit high utilization
// (Figure 3a), so MEMTIS keeps them whole.
func buildLiblinear(c *ctx) stepper {
	small := c.reserveSmall(c.spec.SmallBytes())
	main := c.spec.RSSBytes() - c.spec.SmallBytes()
	features := c.reserve(main * 92 / 100)
	model := c.reserve(main * 8 / 100)
	c.touchSmall(small)
	c.touchAll(features)
	c.touchAll(model)
	var cursor uint64
	zf := newBlockZipf(c.rng, 1.40, features)
	zm := newZipf(c.rng, 1.15, model.pages)
	smallStep := smallStepper(c, small)
	return func() (uint64, bool) {
		switch r := c.rng.Uint32() % 1000; {
		case r < 240:
			cursor++
			return features.vpnAt(cursor), false
		case r < 660:
			return zf.next(), false
		case r < 998:
			return model.vpnAt(zm.next()), c.pick(3, 10)
		default:
			return smallStep()
		}
	}
}

// buildSilo models the Silo in-memory database under YCSB-C (§6.2.4):
// Zipfian lookups over hash-scattered records at 4KB granularity, so
// each huge page holds only a few hot subpages (Figure 3b) — the
// showcase for skewness-aware splitting. Every subpage is written
// during population, so splitting reclaims no memory (no bloat).
func buildSilo(c *ctx) stepper {
	small := c.reserveSmall(c.spec.SmallBytes())
	heap := c.reserve(c.spec.RSSBytes() - c.spec.SmallBytes())
	c.touchSmall(small)
	c.touchAll(heap) // populate: all subpages written
	pm := newPerm(c.rng, heap.pages)
	z := newZipf(c.rng, 1.15, heap.pages)
	smallStep := smallStepper(c, small)
	return func() (uint64, bool) {
		if c.pick(96, 100) {
			return heap.r.BaseVPN + pm.at(z.next()), false
		}
		return smallStep()
	}
}

// buildBtree models the Mitosis BTree lookup benchmark (§6.2.5): the
// node heap suffers classic huge-page memory bloat — only ~40% of
// subpages are ever written — and lookups are skewed over scattered
// leaves, so hot huge pages have low utilization. Splitting both
// improves the hit ratio and reclaims the never-written subpages.
func buildBtree(c *ctx) stepper {
	inner := c.reserveSmall(c.spec.SmallBytes()) // internal nodes: hot
	heap := c.reserve(c.spec.RSSBytes() - c.spec.SmallBytes())
	c.touchSmall(inner)
	// Sparse population: write only ~40% of subpages, hash-scattered.
	var touched []uint32
	for i := uint64(0); i < heap.pages; i++ {
		if (i*2654435761)%100 < 40 {
			touched = append(touched, uint32(i))
		}
	}
	for _, i := range touched {
		if c.m.Accesses() >= c.budget {
			break
		}
		c.m.Access(heap.r.BaseVPN+uint64(i), true)
	}
	pm := newPerm(c.rng, uint64(len(touched)))
	z := newZipf(c.rng, 1.25, uint64(len(touched)))
	innerStep := smallStepper(c, inner)
	return func() (uint64, bool) {
		switch r := c.rng.Uint32() % 1000; {
		case r < 350:
			// Internal-node traversal: small, very hot regions.
			vpn, _ := innerStep()
			return vpn, false
		default:
			leaf := touched[pm.at(z.next())%uint64(len(touched))]
			return heap.r.BaseVPN + uint64(leaf), c.pick(1, 20)
		}
	}
}

// buildBwaves models 603.bwaves (§6.2.6): long-lived solver arrays plus
// a steady churn of short-lived 2MB allocations. Systems that keep
// allocation head-room in the fast tier (Tiering-0.8, TPP, MEMTIS)
// serve the churn from DRAM; AutoTiering reserves free space only for
// promotions and AutoNUMA cannot demote at all, so their churn lands on
// the capacity tier.
func buildBwaves(c *ctx) stepper {
	small := c.reserveSmall(c.spec.SmallBytes())
	long := c.reserve(c.spec.RSSBytes() * 70 / 100)
	c.touchSmall(small)
	c.touchAll(long)
	zl := newBlockZipf(c.rng, 1.30, long)
	var cursor uint64
	// Short-lived allocation state machine.
	var cur vm.Region
	var curIdx uint64
	var phaseWrite, freePending bool
	const shortPages = tier.SubPages // 2MB short-lived buffers
	return func() (uint64, bool) {
		if c.pick(45, 100) {
			if c.pick(1, 2) {
				cursor++
				return long.vpnAt(cursor), false
			}
			return zl.next(), c.pick(1, 4)
		}
		// Short-lived buffer protocol: write it fully, read it back,
		// free it, allocate the next. The free is deferred to the call
		// after the last read so the returned VPN is still mapped when
		// the machine issues the access.
		if freePending {
			c.m.FreeRegion(cur)
			cur = vm.Region{}
			freePending = false
		}
		if cur.Pages == 0 {
			cur = c.m.Reserve(shortPages * tier.BasePageSize)
			curIdx, phaseWrite = 0, true
		}
		vpn := cur.BaseVPN + curIdx
		w := phaseWrite
		curIdx++
		if curIdx >= cur.Pages {
			curIdx = 0
			if phaseWrite {
				phaseWrite = false
			} else {
				freePending = true
			}
		}
		return vpn, w
	}
}

// buildRoms models 654.roms (§6.2.6): a moderately skewed working set
// (block-scattered) dominates, with periodic time-step sweeps over the
// full arrays. Its high access rate is what drives ksampled's period
// upward (§6.3.5); splitting helps its hit ratio only slightly
// (Figure 12) because the skew lives at block, not subpage, level.
func buildRoms(c *ctx) stepper {
	small := c.reserveSmall(c.spec.SmallBytes())
	arrays := c.reserve(c.spec.RSSBytes() - c.spec.SmallBytes())
	c.touchSmall(small)
	c.touchAll(arrays)
	work := region{r: vm.Region{BaseVPN: arrays.r.BaseVPN, Pages: arrays.pages * 45 / 100}, pages: arrays.pages * 45 / 100}
	zw := newBlockZipf(c.rng, 1.40, work)
	var cursor uint64
	smallStep := smallStepper(c, small)
	return func() (uint64, bool) {
		switch r := c.rng.Uint32() % 1000; {
		case r < 260:
			cursor++
			return arrays.vpnAt(cursor), c.pick(1, 3)
		case r < 985:
			return zw.next(), false
		default:
			return smallStep()
		}
	}
}
