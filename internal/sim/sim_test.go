package sim

import (
	"testing"

	"memtis/internal/tier"
	"memtis/internal/vm"
)

func testCfg() Config {
	return Config{
		FastBytes: 2 * tier.HugePageSize,
		CapBytes:  8 * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      1,
	}
}

// countingPolicy records the hooks the machine invokes.
type countingPolicy struct {
	m        *Machine
	accesses int
	ticks    int
	stall    uint64
	bgNS     uint64
	busy     float64
	place    tier.ID
}

func (p *countingPolicy) Name() string                  { return "counting" }
func (p *countingPolicy) Attach(m *Machine)             { p.m = m }
func (p *countingPolicy) PlaceNew(bool, uint64) tier.ID { return p.place }
func (p *countingPolicy) Tick(uint64)                   { p.ticks++ }
func (p *countingPolicy) BackgroundNS() uint64          { return p.bgNS }
func (p *countingPolicy) BusyCores() float64            { return p.busy }
func (p *countingPolicy) Capabilities() Capability      { return 0 }
func (p *countingPolicy) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	p.accesses++
	return p.stall
}

func TestAccessAdvancesClockByTierLatency(t *testing.T) {
	pol := &countingPolicy{place: tier.NoTier}
	m := NewMachine(testCfg(), pol)
	r := m.Reserve(tier.HugePageSize)
	m.Access(r.BaseVPN, false)
	// First access: 2M walk + huge fault + DRAM load.
	want := uint64(70) + vm.HugeFaultNS + tier.DRAMLoadNS
	if m.Now() != want {
		t.Fatalf("clock = %d, want %d", m.Now(), want)
	}
	m.Access(r.BaseVPN, false) // TLB hit, no fault
	if m.Now() != want+tier.DRAMLoadNS {
		t.Fatalf("clock = %d, want %d", m.Now(), want+tier.DRAMLoadNS)
	}
	if pol.accesses != 2 {
		t.Fatalf("policy saw %d accesses", pol.accesses)
	}
}

func TestCapacityTierLatencyCharged(t *testing.T) {
	pol := &countingPolicy{place: tier.CapacityTier}
	m := NewMachine(testCfg(), pol)
	r := m.Reserve(tier.HugePageSize)
	m.Access(r.BaseVPN, false)
	m.Access(r.BaseVPN, true)
	want := uint64(70) + vm.HugeFaultNS + tier.NVMLoadNS + tier.NVMStoreNS
	if m.Now() != want {
		t.Fatalf("clock = %d, want %d", m.Now(), want)
	}
}

func TestPolicyStallAddsToClock(t *testing.T) {
	pol := &countingPolicy{place: tier.NoTier, stall: 1000}
	m := NewMachine(testCfg(), pol)
	r := m.Reserve(4 * tier.BasePageSize)
	base := m.Now()
	m.Access(r.BaseVPN, false)
	m.Access(r.BaseVPN, false)
	delta := m.Now() - base
	want := uint64(96) + vm.BaseFaultNS + 2*tier.DRAMLoadNS + 2*1000
	if delta != want {
		t.Fatalf("delta = %d, want %d", delta, want)
	}
}

func TestTicksFire(t *testing.T) {
	cfg := testCfg()
	cfg.TickNS = 1000
	pol := &countingPolicy{place: tier.NoTier}
	m := NewMachine(cfg, pol)
	r := m.Reserve(tier.HugePageSize)
	for i := 0; i < 100; i++ {
		m.Access(r.BaseVPN+uint64(i), false)
	}
	if pol.ticks == 0 {
		t.Fatal("no ticks fired")
	}
	approx := int(m.Now() / cfg.TickNS)
	if pol.ticks < approx-1 || pol.ticks > approx+1 {
		t.Fatalf("ticks = %d, expected ~%d", pol.ticks, approx)
	}
}

func TestContentionInflatesWall(t *testing.T) {
	pol := &countingPolicy{place: tier.NoTier, busy: 1.0}
	m := NewMachine(testCfg(), pol) // Threads defaults to Cores: saturated
	r := m.Reserve(tier.HugePageSize)
	for i := 0; i < 100; i++ {
		m.Access(r.BaseVPN, false)
	}
	res := m.Finish("w")
	wantWall := float64(res.AppNS) * 20.0 / 19.0
	if float64(res.WallNS) < wantWall*0.99 || float64(res.WallNS) > wantWall*1.01 {
		t.Fatalf("wall = %d, want ~%.0f", res.WallNS, wantWall)
	}
	// With spare threads, no contention.
	cfg := testCfg()
	cfg.Threads = 16
	pol2 := &countingPolicy{place: tier.NoTier, busy: 1.0}
	m2 := NewMachine(cfg, pol2)
	r2 := m2.Reserve(tier.HugePageSize)
	for i := 0; i < 100; i++ {
		m2.Access(r2.BaseVPN, false)
	}
	res2 := m2.Finish("w")
	if res2.WallNS != res2.AppNS {
		t.Fatal("contention applied despite spare cores")
	}
}

func TestResultAccounting(t *testing.T) {
	pol := &countingPolicy{place: tier.NoTier}
	m := NewMachine(testCfg(), pol)
	r := m.Reserve(tier.HugePageSize) // fast-first: fast tier
	r2 := m.Reserve(tier.HugePageSize)
	m.Access(r.BaseVPN, false)
	m.Access(r.BaseVPN, false)
	pol.place = tier.CapacityTier
	m.Access(r2.BaseVPN, false)
	res := m.Finish("unit")
	if res.Accesses != 3 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	want := 2.0 / 3.0
	if res.FastHitRatio < want-1e-9 || res.FastHitRatio > want+1e-9 {
		t.Fatalf("hit ratio = %v", res.FastHitRatio)
	}
	if res.Workload != "unit" || res.Policy != "counting" {
		t.Fatal("labels")
	}
	if res.RSSFinal != 2*tier.HugePageSize {
		t.Fatalf("RSS = %d", res.RSSFinal)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput")
	}
}

func TestSeriesRecording(t *testing.T) {
	cfg := testCfg()
	cfg.RecordNS = 10_000
	pol := &countingPolicy{place: tier.NoTier}
	m := NewMachine(cfg, pol)
	r := m.Reserve(tier.HugePageSize)
	for i := 0; i < 2000; i++ {
		m.Access(r.BaseVPN+uint64(i%512), i%5 == 0)
	}
	res := m.Finish("w")
	if len(res.Series) == 0 {
		t.Fatal("no series points")
	}
	last := res.Series[len(res.Series)-1]
	if last.RSSBytes != tier.HugePageSize {
		t.Fatalf("series RSS = %d", last.RSSBytes)
	}
	if last.FastHitWin <= 0 {
		t.Fatal("windowed hit ratio missing")
	}
	for i := 1; i < len(res.Series); i++ {
		if res.Series[i].TimeNS <= res.Series[i-1].TimeNS {
			t.Fatal("series not monotonic")
		}
	}
}

func TestNilPolicyRuns(t *testing.T) {
	m := NewMachine(testCfg(), nil)
	r := m.Reserve(tier.HugePageSize)
	m.Access(r.BaseVPN, true)
	res := m.Finish("w")
	if res.Policy != "none" || res.Accesses != 1 {
		t.Fatalf("%+v", res)
	}
}

type fixedWorkload struct{ n int }

func (f *fixedWorkload) Name() string { return "fixed" }
func (f *fixedWorkload) Run(m *Machine, accesses uint64) {
	r := m.Reserve(tier.HugePageSize)
	for m.Accesses() < accesses {
		m.Access(r.BaseVPN+m.Accesses()%512, false)
	}
}

func TestRunDeterminism(t *testing.T) {
	a := Run(testCfg(), &countingPolicy{place: tier.NoTier}, &fixedWorkload{}, 5000)
	b := Run(testCfg(), &countingPolicy{place: tier.NoTier}, &fixedWorkload{}, 5000)
	if a.AppNS != b.AppNS || a.FastHitRatio != b.FastHitRatio || a.Accesses != b.Accesses {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestAccessObserver(t *testing.T) {
	m := NewMachine(testCfg(), nil)
	r := m.Reserve(tier.HugePageSize)
	var seen int
	m.AccessObserver = func(vpn uint64, write bool, now uint64) { seen++ }
	for i := 0; i < 10; i++ {
		m.Access(r.BaseVPN, false)
	}
	if seen != 10 {
		t.Fatalf("observer saw %d", seen)
	}
}

// TestFreeRegionDeliversTicks: a large munmap advances the clock past
// tick boundaries, and those ticks must fire inside the free — the
// seed bumped m.now directly, deferring them to the next access.
func TestFreeRegionDeliversTicks(t *testing.T) {
	cfg := testCfg()
	cfg.TickNS = 100_000
	pol := &countingPolicy{place: tier.NoTier}
	m := NewMachine(cfg, pol)
	r := m.Reserve(8 << 20) // 2048 pages: teardown = 245,760ns
	m.FreeRegion(r)
	if pol.ticks != 2 {
		t.Fatalf("ticks delivered during FreeRegion = %d, want 2", pol.ticks)
	}
	if want := uint64(2048 * 120); m.Now() != want {
		t.Fatalf("clock after free = %d, want %d", m.Now(), want)
	}
}

// TestAdvanceBackgroundDeliversTicks: background time advances deliver
// due policy ticks and series samples, same as access-driven time.
func TestAdvanceBackgroundDeliversTicks(t *testing.T) {
	cfg := testCfg()
	cfg.TickNS = 50_000
	cfg.RecordNS = 60_000
	pol := &countingPolicy{place: tier.NoTier}
	m := NewMachine(cfg, pol)
	m.AdvanceBackground(125_000)
	if pol.ticks != 2 {
		t.Fatalf("ticks delivered during AdvanceBackground = %d, want 2", pol.ticks)
	}
	if len(m.series) != 1 {
		t.Fatalf("series samples = %d, want 1", len(m.series))
	}
	// The catch-up must schedule strictly ahead of the clock.
	if m.nextTick <= m.now || m.nextRecord <= m.now {
		t.Fatalf("catch-up left a due deadline: now=%d tick=%d record=%d",
			m.now, m.nextTick, m.nextRecord)
	}
}
