package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// validSpec returns a minimal hand-written spec used as the mutation
// base of the table tests.
func validSpec() Spec {
	return Spec{
		Name: "unit",
		Phases: []Phase{
			{Grow: []Region{{Name: "a", Bytes: 4 << 20}},
				Mix: []MixEntry{{Region: "a", Dist: "uniform"}}},
		},
	}
}

func TestDecodeStrict(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"unknown field", `{"name":"x","phasez":[]}`},
		{"unknown phase field", `{"name":"x","phases":[{"workloadz":"silo"}]}`},
		{"trailing data", `{"name":"x","phases":[]} {"again":1}`},
		{"not json", `name: x`},
	}
	for _, c := range cases {
		if _, err := Decode([]byte(c.data)); err == nil {
			t.Errorf("%s: decode accepted %q", c.name, c.data)
		}
	}
	good := `{"name":"x","phases":[{"workload":"silo"}]}` + "\n"
	s, err := Decode([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if s.Phases[0].Workload != "silo" {
		t.Fatalf("decoded %+v", s)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string // substring of the error
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "at least one phase"},
		{"bad faults", func(s *Spec) { s.Faults = "rate=2.0" }, "faults"},
		{"two sources", func(s *Spec) { s.Phases[0].Workload = "silo" }, "access sources"},
		{"unknown workload", func(s *Spec) {
			s.Phases[0].Mix = nil
			s.Phases[0].Workload = "nope"
		}, "unknown benchmark"},
		{"rss_gb without workload", func(s *Spec) { s.Phases[0].RSSGB = 1 }, "rss_gb without"},
		{"rss_gb out of range", func(s *Spec) {
			s.Phases[0].Mix = nil
			s.Phases[0].Workload = "silo"
			s.Phases[0].RSSGB = 4096
		}, "rss_gb"},
		{"weighted churn-only", func(s *Spec) {
			s.Phases[0].Mix = nil
			s.Phases[0].Weight = 2
		}, "churn-only"},
		{"no source at all", func(s *Spec) { s.Phases[0].Mix = nil }, "no phase has an access source"},
		{"mix over dead region", func(s *Spec) { s.Phases[0].Mix[0].Region = "ghost" }, "not live"},
		{"free of unknown region", func(s *Spec) { s.Phases[0].Free = []string{"ghost"} }, "not a live region"},
		{"double grow", func(s *Spec) {
			s.Phases[0].Grow = append(s.Phases[0].Grow, Region{Name: "a", Bytes: 1 << 20})
		}, "grown twice"},
		{"zero-byte region", func(s *Spec) { s.Phases[0].Grow[0].Bytes = 0 }, "bytes"},
		{"oversized region", func(s *Spec) { s.Phases[0].Grow[0].Bytes = MaxRegionBytes + 1 }, "bytes"},
		{"zipf without s", func(s *Spec) { s.Phases[0].Mix[0].Dist = "zipf" }, "zipf exponent"},
		{"uniform with s", func(s *Spec) { s.Phases[0].Mix[0].S = 0.5 }, "only valid for zipf"},
		{"unknown dist", func(s *Spec) { s.Phases[0].Mix[0].Dist = "pareto" }, "unknown distribution"},
		{"write percent", func(s *Spec) { s.Phases[0].Mix[0].WritePercent = 101 }, "write percent"},
		{"negative weight", func(s *Spec) { s.Phases[0].Weight = -1 }, "weight"},
	}
	for _, c := range cases {
		s := validSpec()
		c.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("base spec invalid: %v", err)
	}
}

// tenantSpec returns a minimal valid multi-tenant spec.
func tenantSpec() Spec {
	mk := func() []Phase {
		return []Phase{
			{Grow: []Region{{Name: "a", Bytes: 4 << 20}},
				Mix: []MixEntry{{Region: "a", Dist: "uniform"}}},
		}
	}
	return Spec{
		Name: "multi",
		Tenants: []TenantSpec{
			{Name: "x", Phases: mk()},
			{Name: "y", Weight: 3, FloorBytes: 2 << 20, Phases: mk(),
				SpawnFrac: 0.2, ExitFrac: 0.8},
		},
	}
}

func TestValidateTenantsRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"phases and tenants", func(s *Spec) {
			s.Phases = []Phase{{Workload: "silo"}}
		}, "mutually exclusive"},
		{"dup tenant names", func(s *Spec) { s.Tenants[1].Name = "x" }, "duplicate name"},
		{"all exit", func(s *Spec) { s.Tenants[0].ExitFrac = 0.5 }, "run to the end"},
		{"spawn after exit", func(s *Spec) { s.Tenants[1].SpawnFrac = 0.9 }, "at or after its exit"},
		{"frac out of range", func(s *Spec) { s.Tenants[1].GrowBytes = 1 << 20; s.Tenants[1].GrowFrac = 1.5 }, "outside [0,1]"},
		{"shrink without grow", func(s *Spec) { s.Tenants[0].ShrinkFrac = 0.5 }, "without grow bytes"},
		{"shrink before grow", func(s *Spec) {
			s.Tenants[0].GrowBytes = 1 << 20
			s.Tenants[0].GrowFrac = 0.6
			s.Tenants[0].ShrinkFrac = 0.3
		}, "at or before its grow"},
		{"tenant without phases", func(s *Spec) { s.Tenants[0].Phases = nil }, "at least one phase"},
		{"bad tenant phase", func(s *Spec) { s.Tenants[1].Phases[0].Mix[0].Dist = "pareto" }, "unknown distribution"},
	}
	for _, c := range cases {
		s := tenantSpec()
		c.mut(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the spec", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
	if err := tenantSpec().Validate(); err != nil {
		t.Fatalf("base tenant spec invalid: %v", err)
	}
}

func TestTenantSpecRoundTrip(t *testing.T) {
	s := tenantSpec()
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding differs:\n%s\nvs\n%s", enc, enc2)
	}
}

// TestGenerateCoversTenants pins that the fuzzer actually emits the
// multi-tenant form at a healthy rate (the 1/3 draw).
func TestGenerateCoversTenants(t *testing.T) {
	multi := 0
	for seed := uint64(0); seed < 200; seed++ {
		if len(Generate(seed).Tenants) > 0 {
			multi++
		}
	}
	if multi < 30 || multi > 120 {
		t.Fatalf("%d of 200 generated specs are multi-tenant; want roughly a third", multi)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := validSpec()
	s.Faults = "rate=10000ppm,retries=2"
	s.Phases = append(s.Phases, Phase{Free: []string{"a"}})
	enc, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("re-encoding differs:\n%s\nvs\n%s", enc, enc2)
	}
}

// TestGenerateAlwaysValid pins the fuzzer's core promise: every
// generated spec validates, compiles, and is a pure function of its
// seed.
func TestGenerateAlwaysValid(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid spec: %v", seed, err)
		}
		if _, err := Compile(s, Options{}); err != nil {
			t.Fatalf("seed %d: generated uncompilable spec: %v", seed, err)
		}
		again := Generate(seed)
		a, _ := s.Encode()
		b, _ := again.Encode()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
	}
}

// TestShrinkMinimizes drives Shrink with a predicate that only needs
// one particular phase, and requires the result to drop everything
// else.
func TestShrinkMinimizes(t *testing.T) {
	s := Generate(3) // arbitrary multi-phase seed
	s.Faults = "rate=10000ppm"
	// Failure depends only on having any silo workload phase.
	s.Phases = append(s.Phases, Phase{Workload: "silo", RSSGB: 2, Weight: 4})
	fails := func(c Spec) bool {
		for _, p := range c.Phases {
			if p.Workload == "silo" {
				return true
			}
		}
		return false
	}
	min := Shrink(s, fails)
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk spec invalid: %v", err)
	}
	if !fails(min) {
		t.Fatal("shrunk spec no longer fails")
	}
	if len(min.Phases) != 1 {
		t.Fatalf("shrunk to %d phases, want 1", len(min.Phases))
	}
	if min.Faults != "" {
		t.Fatalf("shrink kept the irrelevant fault plan %q", min.Faults)
	}
	if min.Phases[0].RSSGB != 0.25 {
		t.Fatalf("shrink kept rss_gb %v, want 0.25", min.Phases[0].RSSGB)
	}
	// Shrinking is deterministic.
	again := Shrink(s, fails)
	a, _ := min.Encode()
	b, _ := again.Encode()
	if !bytes.Equal(a, b) {
		t.Fatal("Shrink is not deterministic")
	}
}

// TestFaultConfigRoundTrip pins that a generated fault plan re-parses
// to itself through the spec mini-language.
func TestFaultConfigRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		s := Generate(seed)
		if s.Faults == "" {
			continue
		}
		fc := s.FaultConfig()
		if fc.String() != s.Faults {
			t.Fatalf("seed %d: fault plan %q re-renders as %q", seed, s.Faults, fc.String())
		}
	}
}
