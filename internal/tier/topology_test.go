package tier

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestTopologyValidate(t *testing.T) {
	good := &Topology{Tiers: []Config{
		{Kind: DRAM, Bytes: 64 << 20},
		{Kind: CXL, Bytes: 256 << 20},
		{Kind: NVM, Bytes: 1 << 30},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	bad := []struct {
		name string
		topo Topology
	}{
		{"one tier", Topology{Tiers: []Config{{Kind: DRAM, Bytes: 1 << 30}}}},
		{"too deep", Topology{Tiers: make([]Config, MaxTiers+1)}},
		{"hop mismatch", Topology{
			Tiers: []Config{{Kind: DRAM, Bytes: 1 << 30}, {Kind: NVM, Bytes: 1 << 30}},
			Hops:  []HopConfig{{}, {}},
		}},
		{"bad kind", Topology{Tiers: []Config{
			{Kind: DRAM, Bytes: 1 << 30}, {Kind: Far + 1, Bytes: 1 << 30}}}},
		{"tiny tier", Topology{Tiers: []Config{
			{Kind: DRAM, Bytes: 1 << 30}, {Kind: NVM, Bytes: HugePageSize - 1}}}},
		{"huge tier", Topology{Tiers: []Config{
			{Kind: DRAM, Bytes: 1 << 30}, {Kind: NVM, Bytes: MaxTierBytes + 1}}}},
		{"half latency", Topology{Tiers: []Config{
			{Kind: DRAM, Bytes: 1 << 30, LoadNS: 100}, {Kind: NVM, Bytes: 1 << 30}}}},
		{"latency bound", Topology{Tiers: []Config{
			{Kind: DRAM, Bytes: 1 << 30, LoadNS: MaxLatencyNS + 1, StoreNS: 10},
			{Kind: NVM, Bytes: 1 << 30}}}},
		{"hop bw bound", Topology{
			Tiers: []Config{{Kind: DRAM, Bytes: 1 << 30}, {Kind: NVM, Bytes: 1 << 30}},
			Hops:  []HopConfig{{BandwidthBPS: MaxBandwidthBPS + 1}},
		}},
		{"hop cost bound", Topology{
			Tiers: []Config{{Kind: DRAM, Bytes: 1 << 30}, {Kind: NVM, Bytes: 1 << 30}},
			Hops:  []HopConfig{{BaseCostNS: MaxHopCostNS + 1}},
		}},
	}
	for _, tc := range bad {
		if err := tc.topo.Validate(); err == nil {
			t.Errorf("%s: invalid topology accepted", tc.name)
		}
	}
}

// TestDefaultTopologyMatchesLegacy pins the contract every golden trace
// rests on: the default topology is byte-for-byte the fast/capacity
// pair the two-tier simulator always built, and its (nil) hop table
// prices a migration exactly at the historical flat charges.
func TestDefaultTopologyMatchesLegacy(t *testing.T) {
	topo := DefaultTopology(128<<20, 512<<20, NVM)
	want := []Config{
		{Name: "DRAM", Kind: DRAM, Bytes: 128 << 20},
		{Name: "NVM", Kind: NVM, Bytes: 512 << 20},
	}
	if !reflect.DeepEqual(topo.Tiers, want) {
		t.Fatalf("default topology %+v, want %+v", topo.Tiers, want)
	}
	if topo.Hops != nil {
		t.Fatalf("default topology has explicit hops %+v", topo.Hops)
	}
	base, huge := topo.HopCosts()
	if len(base) != 1 || base[0] != DefaultHopBaseNS || huge[0] != DefaultHopHugeNS {
		t.Fatalf("default hop costs %v/%v, want [%d]/[%d]",
			base, huge, DefaultHopBaseNS, DefaultHopHugeNS)
	}
	if bw := topo.MinHopBandwidthBPS(); bw != DefaultHopBandwidthBPS {
		t.Fatalf("default hop bandwidth %d, want %d", bw, uint64(DefaultHopBandwidthBPS))
	}
	tiers, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 2 || tiers[0].CapacityBytes() != 128<<20 || tiers[1].CapacityBytes() != 512<<20 {
		t.Fatalf("built tiers do not match the legacy pair")
	}
}

func TestParseTopologySpec(t *testing.T) {
	topo, err := ParseTopologySpec("dram:256m>[bw=16g]cxl:1g>nvm:4g:300ns/400ns")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Depth() != 3 {
		t.Fatalf("depth %d, want 3", topo.Depth())
	}
	if topo.Tiers[1].Kind != CXL || topo.Tiers[1].Bytes != 1<<30 {
		t.Fatalf("middle tier %+v", topo.Tiers[1])
	}
	if topo.Tiers[2].LoadNS != 300 || topo.Tiers[2].StoreNS != 400 {
		t.Fatalf("deep tier latency %d/%d, want 300/400", topo.Tiers[2].LoadNS, topo.Tiers[2].StoreNS)
	}
	if len(topo.Hops) != 2 || topo.Hops[0].BandwidthBPS != 16<<30 || topo.Hops[1] != (HopConfig{}) {
		t.Fatalf("hops %+v", topo.Hops)
	}

	// All-default hop blocks canonicalise to a nil hop table.
	topo, err = ParseTopologySpec("dram:64m>nvm:256m")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Hops != nil {
		t.Fatalf("default hops materialised: %+v", topo.Hops)
	}

	for _, bad := range []string{
		"", "dram:256m", "dram:256m>flash:1g", "dram:0>nvm:1g",
		"dram:256m>nvm:1g:300ns", "dram:256m>nvm:1g:0ns/0ns",
		"dram:256m>[bw=0]nvm:1g", "dram:256m>[speed=9]nvm:1g",
		"dram:256m>[bw=1gnvm:1g", "dram:256m>nvm:1k",
		"dram:256m>nvm:1g>nvm:1g>nvm:1g>nvm:1g>nvm:1g>nvm:1g>nvm:1g>nvm:1g",
	} {
		if _, err := ParseTopologySpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// randomTopology builds a random valid topology in canonical form (the
// form ParseTopologySpec produces: no tier names, all-zero hop tables
// folded to nil).
func randomTopology(rng *rand.Rand) *Topology {
	depth := 2 + rng.Intn(MaxTiers-1)
	topo := &Topology{Tiers: make([]Config, depth)}
	kinds := []Kind{DRAM, NVM, CXL, Far}
	for i := range topo.Tiers {
		c := &topo.Tiers[i]
		c.Kind = kinds[rng.Intn(len(kinds))]
		c.Bytes = HugePageSize * (1 + uint64(rng.Intn(1<<12)))
		if rng.Intn(2) == 0 {
			c.LoadNS = 1 + uint64(rng.Intn(MaxLatencyNS))
			c.StoreNS = 1 + uint64(rng.Intn(MaxLatencyNS))
		}
	}
	if rng.Intn(2) == 0 {
		topo.Hops = make([]HopConfig, depth-1)
		for i := range topo.Hops {
			h := &topo.Hops[i]
			if rng.Intn(2) == 0 {
				h.BandwidthBPS = 1 + uint64(rng.Intn(1<<30))
			}
			if rng.Intn(2) == 0 {
				h.BaseCostNS = 1 + uint64(rng.Intn(MaxHopCostNS))
			}
			if rng.Intn(2) == 0 {
				h.HugeCostNS = 1 + uint64(rng.Intn(MaxHopCostNS))
			}
		}
		if allZeroHops(topo.Hops) {
			topo.Hops = nil
		}
	}
	return topo
}

// TestTopologyStringRoundTrip is the property test behind the spec
// grammar: for any valid topology, ParseTopologySpec(t.String())
// reproduces t exactly (canonical form), and String is stable across
// the round trip.
func TestTopologyStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		topo := randomTopology(rng)
		if err := topo.Validate(); err != nil {
			t.Fatalf("generator produced invalid topology %+v: %v", topo, err)
		}
		spec := topo.String()
		back, err := ParseTopologySpec(spec)
		if err != nil {
			t.Fatalf("canonical form %q of %+v does not parse: %v", spec, topo, err)
		}
		if !reflect.DeepEqual(back, topo) {
			t.Fatalf("round trip diverged:\n  %+v\n  -> %q\n  -> %+v", topo, spec, back)
		}
		if again := back.String(); again != spec {
			t.Fatalf("String not stable: %q -> %q", spec, again)
		}
	}
}

// FuzzTopologySpec: the parser never panics, anything it accepts
// validates, and the canonical String form round-trips exactly.
func FuzzTopologySpec(f *testing.F) {
	f.Add("dram:256m>nvm:1g")
	f.Add("dram:256m>[bw=16g]cxl:1g>nvm:4g:300ns/400ns")
	f.Add("dram:64m:80ns/90ns>[bw=8g,base=3us,huge=250us]far:1t")
	f.Add("dram:2m>cxl:2m>nvm:2m>far:2m")
	f.Add(">>>")
	f.Add("dram:256m>[]nvm:1g")
	f.Add("dram:9007199254740993>nvm:1g")
	f.Add(" dram:256m > nvm:1g ")
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseTopologySpec(spec)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("parser accepted invalid topology %+v: %v", topo, err)
		}
		canon := topo.String()
		back, err := ParseTopologySpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(back, topo) {
			t.Fatalf("round trip diverged: %+v -> %q -> %+v", topo, canon, back)
		}
		if strings.TrimSpace(canon) != canon {
			t.Fatalf("canonical form %q has surrounding space", canon)
		}
	})
}
