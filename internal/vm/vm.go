// Package vm models the virtual-memory side of the simulated machine:
// address spaces, first-touch demand paging with THP-style huge-page
// allocation, page access metadata, transactional page migration
// between tiers, and the huge-page split/collapse operations MEMTIS
// performs in the background. All operations return their cost in
// nanoseconds so the simulator can charge them to the application's
// critical path or to a background daemon, whichever the invoking
// policy mandates.
//
// Migration is a three-phase transaction (reserve destination frame →
// copy at the fault plan's current bandwidth → commit or abort with
// rollback; DESIGN.md §6), so a page is never lost or double-mapped
// even when the machine's fault plan injects transient copy failures;
// Audit verifies the frame-accounting invariants on demand.
package vm

import (
	"fmt"
	"math/bits"

	"memtis/internal/obs"
	"memtis/internal/tier"
)

// Cost model (nanoseconds), from measured Linux costs on recent Xeons.
//
// The simulator compresses footprints ~128x but virtual runtime ~3000x
// (DESIGN.md §4). Costs paid once per page over the whole run (demand
// faults) are divided by the residual compression factor (~24) so their
// fractional share of runtime stays at paper scale. Migration, split
// and shootdown costs are deliberately NOT scaled: a migration is an
// investment repaid by future accesses to the page, and with the access
// stream compressed the same way, scaling those costs down would make
// critical-path migration cheaper than a single capacity-tier access
// and turn fault-driven promotion into a free streaming cache — the
// opposite of the behaviour the paper measures.
const (
	costScale = 24

	BaseFaultNS   = 1_500 / costScale
	HugeFaultNS   = 8_000 / costScale
	MigrateBaseNS = 3_000
	MigrateHugeNS = 250_000
	ShootdownNS   = 4_000
	SplitFixedNS  = 12_000
	CollapseNS    = 270_000
	ReclaimBaseNS = 800
)

// PageKind distinguishes huge from base pages.
type PageKind uint8

const (
	BasePage PageKind = iota
	HugePage
)

// pte is one packed page-table entry — the data-oriented core of the
// address space (DESIGN.md §12). The table is a dense VPN-indexed
// []pte, so the translation hot path reads 4 bytes per access instead
// of chasing a *Page into a scattered heap object: the entry carries
// everything Touch needs for an already-mapped, already-written access
// (page-record index, huge bit, per-subpage touched bit, tier).
//
// Layout (low to high):
//
//	bits 0..25  page-record index + 1 into the space's arena; 0 means
//	            the slot is unmapped (so a zeroed table is empty)
//	bit  26     huge: the slot belongs to a 2MB mapping (all 512 slots
//	            of the block carry the same record index)
//	bit  27     touched: this 4KB subpage has been written at least
//	            once (mirrors the record's touched bitmap so steady-
//	            state writes never dirty the record's cache line)
//	bits 28..31 tier of the mapping (kept in sync with Page.Tier by
//	            every tier-changing operation; Audit verifies it)
type pte uint32

const (
	pteIdxBits   = 26
	pteIdxMask   = 1<<pteIdxBits - 1
	pteHuge      = 1 << 26
	pteTouched   = 1 << 27
	pteTierShift = 28
	pteTierMask  = pte(0xF) << pteTierShift
)

// Page-record arena geometry: records live in append-only chunks so a
// *Page handed to a policy is stable for the lifetime of the address
// space (chunks are never reallocated, records never recycled — a
// policy holding a stale pointer to a split or freed page sees
// Dead()==true, exactly as with the historical heap-allocated pages).
// Chunk sizes ramp up by doubling from rampLen to chunkLen and stay at
// chunkLen from then on: a multi-tenant machine holds one arena per
// address space, and a fixed 4096-record first chunk (~650KB) would
// dwarf a small tenant's actual footprint (a 1MB tenant maps 256
// records). The doubling ramp from rampLen to chunkLen/2 covers
// exactly chunkLen-rampLen records, so the fixed-size regime starts at
// record rampTotal with plain shift/mask indexing from there.
const (
	chunkShift = 12
	chunkLen   = 1 << chunkShift
	chunkMask  = chunkLen - 1
	rampShift  = 6
	rampLen    = 1 << rampShift
	rampChunks = chunkShift - rampShift
	rampTotal  = chunkLen - rampLen
)

// arenaLoc maps a record index to its (chunk, slot) under the ramp
// geometry above.
func arenaLoc(i uint32) (int, uint32) {
	if i < rampTotal {
		c := bits.Len32(i>>rampShift+1) - 1
		return c, i - (rampLen<<c - rampLen)
	}
	i -= rampTotal
	return rampChunks + int(i>>chunkShift), i & chunkMask
}

// chunkSize returns the record capacity of chunk c.
func chunkSize(c int) int {
	if c < rampChunks {
		return rampLen << c
	}
	return chunkLen
}

// Page is one mapped translation unit: a 4KB base page or a 2MB huge
// page. The access-metadata fields mirror what MEMTIS packs into the
// kernel's unused struct page slots (§5); baseline policies use the
// generic scratch words instead of growing the struct per policy.
type Page struct {
	VPN  uint64 // base-page number of the first (or only) subpage
	Kind PageKind
	Tier tier.ID
	// Frame is the first physical frame. A huge page owns 512
	// contiguous frames; after BreakHuge-based splits the subpages own
	// their frames individually via the pages created by Split.
	Frame tier.Frame

	// Count is the page's access counter C_i, halved by cooling so that
	// it tracks an exponential moving average of access frequency.
	Count uint64
	// Bin caches the page-access-histogram bin of the page's hotness
	// factor H_i so histogram updates are O(1).
	Bin int
	// SubCount holds per-subpage access counters for huge pages,
	// allocated lazily on the first sample. Nil for base pages.
	SubCount []uint32
	// touched is a 512-bit bitmap of subpages written at least once;
	// untouched (all-zero) subpages are freed when the page is split.
	touched [tier.SubPages / 64]uint64
	nTouch  uint16

	// Scratch words for policy-private state (recency timestamps,
	// history vectors, list epochs, ...). Policies must not assume any
	// value survives a change of ownership of the page. P2 is the
	// MEMTIS policy's cooling-epoch stamp (lazy cooling, DESIGN.md §8);
	// PIdx is an intrusive slot index for policy-owned membership lists.
	P0, P1, P2 uint64
	PIdx       uint32
	PFlags     uint32

	// Owner is the machine-wide index of the address space that mapped
	// the page (0 on single-space machines). Policies tracking pages
	// from several tenants key their per-block state by Owner so two
	// tenants' identical VPNs never alias (DESIGN.md §10).
	Owner uint32

	// arIdx is the record's index in its space's arena; pte entries
	// store arIdx+1.
	arIdx uint32

	dead bool
}

// IsHuge reports whether the page is a 2MB huge page.
func (p *Page) IsHuge() bool { return p.Kind == HugePage }

// Units returns the page size in 4KB units (1 or 512).
func (p *Page) Units() uint64 {
	if p.IsHuge() {
		return tier.SubPages
	}
	return 1
}

// Bytes returns the page size in bytes.
func (p *Page) Bytes() uint64 { return p.Units() * tier.BasePageSize }

// Hotness returns the hotness factor H_i (§4.1.2): the raw access count
// for huge pages, and Count * 512 for base pages, compensating for a
// base page being 512x less likely to be sampled.
func (p *Page) Hotness() uint64 {
	if p.IsHuge() {
		return p.Count
	}
	return p.Count * tier.SubPages
}

// SubHotness returns the hotness factor of subpage j, on the same
// compensated scale as base pages.
func (p *Page) SubHotness(j int) uint64 {
	if p.SubCount == nil {
		return 0
	}
	return uint64(p.SubCount[j]) * tier.SubPages
}

// Touched reports whether subpage j has ever been written.
func (p *Page) Touched(j int) bool {
	return p.touched[j/64]&(1<<uint(j%64)) != 0
}

// TouchedCount returns how many subpages have ever been written.
func (p *Page) TouchedCount() int { return int(p.nTouch) }

func (p *Page) markTouched(j int) {
	w, b := j/64, uint(j%64)
	if p.touched[w]&(1<<b) == 0 {
		p.touched[w] |= 1 << b
		p.nTouch++
	}
}

// Placer decides the initial tier of a newly faulted page. Returning
// NoTier lets the address space use its default (fast tier while free,
// then capacity).
type Placer interface {
	PlaceNew(huge bool, vpn uint64) tier.ID
}

// Stats aggregates the VM-level event counters.
type Stats struct {
	Faults          uint64
	FaultNS         uint64
	Migrations4K    uint64
	MigrationsHuge  uint64
	MigratedBytes   uint64
	Promotions      uint64 // migrations into the fast tier (pages)
	Demotions       uint64 // migrations out of the fast tier (pages)
	MigrateAborts   uint64 // transactions rolled back by injected copy faults
	AbortNS         uint64 // cost charged for the wasted copies of aborts
	Splits          uint64
	Collapses       uint64
	Shootdowns      uint64
	ReclaimedFrames uint64 // zero subpages freed by splits
}

// Add accumulates o into s. Multi-tenant machines aggregate their
// per-space stats with it (policies migrate pages through whichever
// space handle they hold, so counters spread across spaces).
func (s *Stats) Add(o Stats) {
	s.Faults += o.Faults
	s.FaultNS += o.FaultNS
	s.Migrations4K += o.Migrations4K
	s.MigrationsHuge += o.MigrationsHuge
	s.MigratedBytes += o.MigratedBytes
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.MigrateAborts += o.MigrateAborts
	s.AbortNS += o.AbortNS
	s.Splits += o.Splits
	s.Collapses += o.Collapses
	s.Shootdowns += o.Shootdowns
	s.ReclaimedFrames += o.ReclaimedFrames
}

// AddressSpace is one process's virtual memory image over a tiered
// machine. Virtual addresses are dense base-page numbers handed out by
// a bump allocator; the page table is a flat slice for O(1) translation.
type AddressSpace struct {
	// Fast and Cap alias the first and last tier of the chain — the
	// endpoints every two-tier policy knows by name. On deeper chains
	// the full ordering lives in tiers; use TierAt/TierCount.
	Fast *tier.Tier
	Cap  *tier.Tier

	// tiers is the full chain, fastest first. Always non-empty;
	// tiers[0] == Fast and tiers[len-1] == Cap.
	tiers []*tier.Tier
	// hopBase/hopHuge are the per-hop migration copy costs
	// (len(tiers)-1 entries); nil means the historical flat
	// MigrateBaseNS/MigrateHugeNS charge per hop.
	hopBase []uint64
	hopHuge []uint64

	// pt is the packed page table: one pte per reserved base VPN. Its
	// length may be trimmed below nextVPN when Free releases a trailing
	// range (all entries past len(pt) are by construction unmapped);
	// fault paths re-grow it on demand.
	pt []pte
	// bt is the block table: one entry per 2MB block, non-zero exactly
	// when the whole block is a single live huge mapping, holding that
	// mapping's pte (sans touched bit). It is a 512x-compressed read
	// cache over pt — at paper scale the access stream is huge-page
	// dominated, and the block table keeps its working set L1-resident
	// where the full pt would thrash L2. pt stays authoritative
	// (per-subpage touched bits live only there); every huge-mapping
	// mutation updates both, and Audit checks them equal.
	bt []pte
	// chunks is the page-record arena: append-only chunks (doubling
	// ramp, then fixed-size — see arenaLoc), so records are dense in
	// memory (background sweeps walk them cache-linearly) while *Page
	// handles stay stable forever.
	chunks [][]Page
	nAlloc uint32

	hugeOK  []bool // per 2MB block: fully covered by one reservation
	nextVPN uint64
	nPages  int // live Page objects

	// feScratch is ForEachPage's reusable snapshot buffer; feBusy
	// guards against a nested walk clobbering it (the inner walk falls
	// back to a fresh allocation).
	feScratch []*Page
	feBusy    bool

	// THP controls whether 2MB-aligned, >=2MB reservations fault in as
	// huge pages (Linux THP=always) or everything uses base pages.
	THP bool

	placer Placer

	// OnUnmap, when set, is invoked for every live page released by
	// Free so policies can drop the page from their bookkeeping.
	OnUnmap func(p *Page)

	// Trace receives fault/migration/split/collapse events. Set by the
	// machine when tracing is enabled; nil otherwise (emits are no-ops
	// on nil, so the paths below need no guards).
	Trace *obs.Tracer

	// Faults is the machine's fault-injection plan; migration
	// transactions consult it for copy failures and bandwidth
	// throttling. Nil (the default) disables fault injection — every
	// FaultPlan method is nil-safe.
	Faults *tier.FaultPlan
	// Clock reads the machine's virtual time; the fault plan's
	// throttle windows are functions of it. Nil reads as zero.
	Clock func() uint64

	// Tenant is this space's machine-wide index; pages mapped here
	// carry it in Page.Owner. Zero for single-space machines.
	Tenant uint32

	// Owners, when non-nil, maps a Page.Owner index to its address
	// space. Policies migrate pages of any space through whichever
	// space handle they hold (MigrateTx never reads the page table),
	// so per-space unit accounting must follow the page's owner, not
	// the receiver. The machine installs the same slice on every space
	// it hosts; nil (the single-space default) routes to the receiver.
	Owners []*AddressSpace

	// MigrateVeto, when set, may deny a tier-changing operation before
	// any frame is reserved or cost charged. It is consulted only for
	// moves that change fast-tier residency (dst or src is tier 0 —
	// on a two-tier machine, every migration); hops between lower
	// tiers are QoS-neutral. It receives a page of the affected range
	// (for owner identity), the destination tier, and the number of
	// 4KB units that would change tier. A false return
	// turns MigrateTx into MigrateDenied and makes Collapse fail
	// without side effects. This is the QoS arbitration hook: floors
	// and weighted shares (DESIGN.md §10) are enforced here, below
	// every policy, so no promotion or demotion path can bypass them.
	MigrateVeto func(p *Page, dst tier.ID, units uint64) bool

	// residentUnits / fastUnits track this space's mapped 4KB units
	// (total, and the subset on the fast tier) incrementally, so
	// per-tenant gauges and floor arbitration are O(1) reads even
	// when many spaces share the tiers.
	residentUnits uint64
	fastUnits     uint64
	// fastFreed counts fast-tier units this space released through
	// non-migration paths — Free and split bloat reclaim. Demotions
	// below a tenant's floor are vetoed, so these are the only
	// legitimate ways a warmed tenant's fast footprint can shrink
	// below its floor; the QoS arbiter credits them when checking for
	// floor violations.
	fastFreed uint64

	stats Stats
}

// NewAddressSpace creates an address space over the two tiers.
func NewAddressSpace(fast, cap *tier.Tier, thp bool) *AddressSpace {
	return &AddressSpace{Fast: fast, Cap: cap, tiers: []*tier.Tier{fast, cap}, THP: thp}
}

// NewAddressSpaceTiers creates an address space over an N-deep tier
// chain (fastest first; at least two tiers). topo, when non-nil,
// supplies the per-hop migration cost model; nil keeps the historical
// flat per-hop charge.
func NewAddressSpaceTiers(tiers []*tier.Tier, topo *tier.Topology, thp bool) *AddressSpace {
	if len(tiers) < 2 {
		panic("vm: address space needs at least two tiers")
	}
	if len(tiers) > 16 {
		panic("vm: tier chain deeper than the packed page-table entry's 4 tier bits")
	}
	as := &AddressSpace{
		Fast:  tiers[0],
		Cap:   tiers[len(tiers)-1],
		tiers: tiers,
		THP:   thp,
	}
	if topo != nil {
		if topo.Depth() != len(tiers) {
			panic("vm: topology depth does not match tier chain")
		}
		as.hopBase, as.hopHuge = topo.HopCosts()
	}
	return as
}

// TierCount returns the depth of the space's tier chain.
func (as *AddressSpace) TierCount() int { return len(as.tiers) }

// TierAt returns the tier at chain position id (0 = fastest).
func (as *AddressSpace) TierAt(id tier.ID) *tier.Tier { return as.tiers[id] }

// LastTier returns the ID of the deepest tier of the chain.
func (as *AddressSpace) LastTier() tier.ID { return tier.ID(len(as.tiers) - 1) }

// HopCostNS returns the migration copy cost of moving one page of the
// given size from src to dst: the sum of the per-hop costs of every
// hop crossed (adjacent tiers cross one). It is the unthrottled cost;
// MigrateTx applies the fault plan's window factor on top.
func (as *AddressSpace) HopCostNS(src, dst tier.ID, huge bool) uint64 {
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	var ns uint64
	for h := lo; h < hi; h++ {
		switch {
		case as.hopBase == nil && huge:
			ns += MigrateHugeNS
		case as.hopBase == nil:
			ns += MigrateBaseNS
		case huge:
			ns += as.hopHuge[h]
		default:
			ns += as.hopBase[h]
		}
	}
	return ns
}

// SetPlacer installs the policy hook for initial page placement.
func (as *AddressSpace) SetPlacer(p Placer) { as.placer = p }

// Stats returns a snapshot of the VM counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// ResidentUnits returns the space's mapped 4KB units.
func (as *AddressSpace) ResidentUnits() uint64 { return as.residentUnits }

// FastUnits returns the space's mapped 4KB units on the fast tier.
func (as *AddressSpace) FastUnits() uint64 { return as.fastUnits }

// FastFreedUnits returns the cumulative fast-tier units released by
// Free and split reclaim (never by migration).
func (as *AddressSpace) FastFreedUnits() uint64 { return as.fastFreed }

// ReservedPages returns the bump allocator's high-water mark in base
// pages; Region{0, ReservedPages()} covers every possible mapping of
// the space (tenant exit frees exactly that region).
func (as *AddressSpace) ReservedPages() uint64 { return as.nextVPN }

// ownerOf resolves the space whose resident/fast unit counters a
// mutation of p must adjust.
func (as *AddressSpace) ownerOf(p *Page) *AddressSpace {
	if as.Owners == nil {
		return as
	}
	return as.Owners[p.Owner]
}

// Region is a reserved virtual address range.
type Region struct {
	BaseVPN uint64
	Pages   uint64 // length in base pages
}

// Bytes returns the region length in bytes.
func (r Region) Bytes() uint64 { return r.Pages * tier.BasePageSize }

// Reserve allocates a 2MB-aligned virtual range of at least bytes. No
// physical memory is committed until first touch.
func (as *AddressSpace) Reserve(bytes uint64) Region {
	pages := (bytes + tier.BasePageSize - 1) / tier.BasePageSize
	// Align the base so THP regions can map huge pages.
	if rem := as.nextVPN % tier.SubPages; rem != 0 {
		as.nextVPN += tier.SubPages - rem
	}
	r := Region{BaseVPN: as.nextVPN, Pages: pages}
	as.nextVPN += pages
	need := int(as.nextVPN)
	as.ensurePT(need)
	if nb := (need + tier.SubPages - 1) / tier.SubPages; nb > len(as.hugeOK) {
		nh := make([]bool, nb+nb/2+1)
		copy(nh, as.hugeOK)
		as.hugeOK = nh
	}
	// Only 2MB blocks fully covered by this reservation may fault in
	// as huge pages (the region base is 2MB-aligned).
	for b := r.BaseVPN / tier.SubPages; (b+1)*tier.SubPages <= r.BaseVPN+r.Pages; b++ {
		as.hugeOK[b] = true
	}
	return r
}

// ensurePT grows the page table (and the parallel block table) to
// cover at least need entries, re-extending a table Free previously
// trimmed (new entries are zero, i.e. unmapped).
func (as *AddressSpace) ensurePT(need int) {
	if need > len(as.pt) {
		if need <= cap(as.pt) {
			tail := as.pt[len(as.pt):need]
			for i := range tail {
				tail[i] = 0
			}
			as.pt = as.pt[:need]
		} else {
			nt := make([]pte, need+need/2+tier.SubPages)
			copy(nt, as.pt)
			as.pt = nt[:need]
		}
	}
	if nb := (len(as.pt) + tier.SubPages - 1) / tier.SubPages; nb > len(as.bt) {
		if nb <= cap(as.bt) {
			tail := as.bt[len(as.bt):nb]
			for i := range tail {
				tail[i] = 0
			}
			as.bt = as.bt[:nb]
		} else {
			nt := make([]pte, nb+nb/2+1)
			copy(nt, as.bt)
			as.bt = nt[:nb]
		}
	}
}

// pageAt resolves a non-zero pte to its arena record.
func (as *AddressSpace) pageAt(e pte) *Page {
	c, s := arenaLoc(uint32(e&pteIdxMask) - 1)
	return &as.chunks[c][s]
}

// newPage appends a zeroed record to the arena. Records are never
// recycled: policies legitimately hold *Page across splits and frees
// and rely on Dead() — a recycled record would alias a live page.
func (as *AddressSpace) newPage() *Page {
	if as.nAlloc >= pteIdxMask {
		panic("vm: page-record arena exhausted the pte's 26 index bits")
	}
	ci, slot := arenaLoc(as.nAlloc)
	if ci == len(as.chunks) {
		as.chunks = append(as.chunks, make([]Page, chunkSize(ci)))
	}
	pg := &as.chunks[ci][slot]
	*pg = Page{arIdx: as.nAlloc}
	as.nAlloc++
	return pg
}

// pteFor builds the table entry mapping a vpn to pg (without the
// touched bit, which tracks per-slot write state).
func pteFor(pg *Page) pte {
	e := pte(pg.arIdx+1) | pte(pg.Tier)<<pteTierShift
	if pg.Kind == HugePage {
		e |= pteHuge
	}
	return e
}

// setTierPTE rewrites the tier bits of every slot of a live page after
// a tier change, keeping the packed table (and, for huge pages, the
// block table) in sync with Page.Tier.
func (as *AddressSpace) setTierPTE(p *Page) {
	nt := pte(p.Tier) << pteTierShift
	for i := p.VPN; i < p.VPN+p.Units(); i++ {
		as.pt[i] = as.pt[i]&^pteTierMask | nt
	}
	if p.IsHuge() {
		as.bt[p.VPN/tier.SubPages] = pteFor(p)
	}
}

// Lookup returns the page mapping vpn, or nil when unmapped.
func (as *AddressSpace) Lookup(vpn uint64) *Page {
	if vpn >= uint64(len(as.pt)) {
		return nil
	}
	e := as.pt[vpn]
	if e == 0 {
		return nil
	}
	return as.pageAt(e)
}

// tierOf returns the tier object for id.
func (as *AddressSpace) tierOf(id tier.ID) *tier.Tier {
	return as.tiers[id]
}

// TouchResult describes the outcome of one memory access.
type TouchResult struct {
	Page    *Page
	SubIdx  int // subpage index within a huge page (0 for base pages)
	Tier    tier.ID
	FaultNS uint64 // demand-paging cost incurred on this access
	Faulted bool
	// Huge mirrors Page.IsHuge() so the access hot path (TLB insert)
	// never needs to dereference the page record.
	Huge bool
}

// hugeEligible reports whether vpn can fault in as a huge page: the
// whole 2MB-aligned block around it must be reserved and unmapped.
// Slots past len(pt) (a table Free trimmed) are unmapped by
// construction; hugeOK already guarantees the block is fully reserved.
func (as *AddressSpace) hugeEligible(vpn uint64) bool {
	base := vpn - vpn%tier.SubPages
	if b := base / tier.SubPages; b >= uint64(len(as.hugeOK)) || !as.hugeOK[b] {
		return false
	}
	end := base + tier.SubPages
	if n := uint64(len(as.pt)); end > n {
		end = n
	}
	for i := base; i < end; i++ {
		if as.pt[i] != 0 {
			return false
		}
	}
	return true
}

// placeFor resolves the initial tier for a faulting page, falling back
// to the first tier of the chain with room (fast while free, then down
// the chain, the deepest tier as last resort), and degrading huge
// allocations that the chosen tier cannot satisfy.
func (as *AddressSpace) placeFor(huge bool, vpn uint64) tier.ID {
	want := tier.NoTier
	if as.placer != nil {
		want = as.placer.PlaceNew(huge, vpn)
	}
	if want == tier.NoTier {
		for id, t := range as.tiers[:len(as.tiers)-1] {
			if huge && t.HasHugeFrame() {
				return tier.ID(id)
			}
			if !huge && t.FreeFrames() > 0 {
				return tier.ID(id)
			}
		}
		return as.LastTier()
	}
	return want
}

// Touch performs one access to vpn: demand-faults the page on first
// touch (THP maps the surrounding 2MB block as a huge page when
// eligible) and returns the mapping plus any fault cost. Write touches
// mark the subpage as non-zero for later bloat reclaim.
//
// The already-mapped case is the simulator's hot path: one bounds
// check and one 4-byte pte load yield tier, huge bit and touched state;
// the page record is located by arithmetic (chunk index) but its memory
// is not read, so steady-state accesses touch exactly one table cache
// line. Only the first write to a subpage dirties the record (its
// touched bitmap); the pte's touched bit short-circuits every later
// write. The fault path lives in touchFault so this body stays small.
func (as *AddressSpace) Touch(vpn uint64, write bool) TouchResult {
	if vpn < uint64(len(as.pt)) {
		// Fast path: mapped, and either a read or a re-write of an
		// already-touched subpage. Small enough to inline into the
		// simulator's access loop, which lets the compiler hoist the
		// pte load ahead of the caller's other work.
		if e := as.pt[vpn]; e != 0 && (!write || e&pteTouched != 0) {
			sub := 0
			if e&pteHuge != 0 {
				// Huge mappings are always 2MB-aligned.
				sub = int(vpn & (tier.SubPages - 1))
			}
			return TouchResult{
				Page:   as.pageAt(e),
				SubIdx: sub,
				Tier:   tier.ID(e >> pteTierShift),
				Huge:   e&pteHuge != 0,
			}
		}
	}
	return as.touchSlow(vpn, write)
}

// TouchFast serves a steady-state access for callers that do not
// consume TouchResult.Page, without building a TouchResult at all:
// three scalars come back in registers, and the body is small enough
// to inline into the simulator's access loop. Huge-mapping reads —
// the dominant access class at paper scale — are answered from the
// block table alone: one load from a 512x-compressed, L1-resident
// table, where the full pt working set would thrash the cache.
// Writes (which need the per-subpage touched bit) and base-page
// traffic read the packed pte instead. ok=false means the access
// needs the slow path (first write to a subpage, or a demand fault);
// the caller must then call TouchLite.
func (as *AddressSpace) TouchFast(vpn uint64, write bool) (t tier.ID, huge, ok bool) {
	if b := vpn / tier.SubPages; !write && b < uint64(len(as.bt)) {
		if e := as.bt[b]; e != 0 {
			return tier.ID(e >> pteTierShift), true, true
		}
	}
	if vpn < uint64(len(as.pt)) {
		if e := as.pt[vpn]; e != 0 && (!write || e&pteTouched != 0) {
			return tier.ID(e >> pteTierShift), e&pteHuge != 0, true
		}
	}
	return 0, false, false
}

// TouchLite is Touch for callers that do not consume TouchResult.Page
// (machines running without a policy: replay and capacity baselines).
// The page record is neither read nor located on the fast paths; the
// slow paths fall through to the full Touch machinery and do populate
// Page.
func (as *AddressSpace) TouchLite(vpn uint64, write bool) TouchResult {
	if t, huge, ok := as.TouchFast(vpn, write); ok {
		return TouchResult{Tier: t, Huge: huge}
	}
	return as.touchSlow(vpn, write)
}

// touchSlow handles Touch's two out-of-line cases: the first write to a
// mapped subpage (set both touched bits), and the demand fault.
func (as *AddressSpace) touchSlow(vpn uint64, write bool) TouchResult {
	if vpn < uint64(len(as.pt)) {
		if e := as.pt[vpn]; e != 0 {
			res := TouchResult{
				Page: as.pageAt(e),
				Tier: tier.ID(e >> pteTierShift),
				Huge: e&pteHuge != 0,
			}
			if e&pteHuge != 0 {
				res.SubIdx = int(vpn & (tier.SubPages - 1))
			}
			as.pt[vpn] = e | pteTouched
			res.Page.markTouched(res.SubIdx)
			return res
		}
	}
	return as.touchFault(vpn, write)
}

// touchFault is Touch's slow path: first touch of a reserved vpn (or a
// touch of an unreserved one, which is a workload bug and panics).
func (as *AddressSpace) touchFault(vpn uint64, write bool) TouchResult {
	if vpn >= as.nextVPN {
		panic(fmt.Sprintf("vm: touch of unreserved vpn %d", vpn))
	}
	var res TouchResult
	res.Faulted = true
	as.stats.Faults++
	var pg *Page
	if as.THP && as.hugeEligible(vpn) {
		pg = as.mapHuge(vpn - vpn%tier.SubPages)
		res.FaultNS = HugeFaultNS
	} else {
		pg = as.mapBase(vpn)
		res.FaultNS = BaseFaultNS
	}
	as.stats.FaultNS += res.FaultNS
	as.Trace.Emit(obs.EvDemandFault, pg.VPN, pg.IsHuge(), pg.Bytes(), res.FaultNS)
	res.Page = pg
	res.Tier = pg.Tier
	res.Huge = pg.IsHuge()
	if res.Huge {
		res.SubIdx = int(vpn - pg.VPN)
	}
	if write {
		as.pt[vpn] |= pteTouched
		pg.markTouched(res.SubIdx)
	}
	return res
}

func (as *AddressSpace) mapHuge(baseVPN uint64) *Page {
	id := as.placeFor(true, baseVPN)
	t := as.tierOf(id)
	f, err := t.AllocHuge()
	if err != nil {
		// Fall back to the other tiers in chain order, then to base pages.
		id, f, err = as.allocFallback(id, true)
		if err != nil {
			return as.mapBase(baseVPN)
		}
	}
	pg := as.newPage()
	pg.VPN, pg.Kind, pg.Tier, pg.Frame, pg.Owner = baseVPN, HugePage, id, f, as.Tenant
	as.ensurePT(int(baseVPN + tier.SubPages))
	e := pteFor(pg)
	for i := uint64(0); i < tier.SubPages; i++ {
		as.pt[baseVPN+i] = e
	}
	as.bt[baseVPN/tier.SubPages] = e
	as.nPages++
	as.residentUnits += tier.SubPages
	if id == tier.FastTier {
		as.fastUnits += tier.SubPages
	}
	return pg
}

func (as *AddressSpace) mapBase(vpn uint64) *Page {
	id := as.placeFor(false, vpn)
	t := as.tierOf(id)
	f, err := t.AllocBase()
	if err != nil {
		id, f, err = as.allocFallback(id, false)
		if err != nil {
			panic("vm: all tiers out of memory")
		}
	}
	pg := as.newPage()
	pg.VPN, pg.Kind, pg.Tier, pg.Frame, pg.Owner = vpn, BasePage, id, f, as.Tenant
	as.ensurePT(int(vpn + 1))
	as.pt[vpn] = pteFor(pg)
	as.nPages++
	as.residentUnits++
	if id == tier.FastTier {
		as.fastUnits++
	}
	return pg
}

// allocFallback tries every tier other than failed in chain order
// (fastest first) until one satisfies the allocation.
func (as *AddressSpace) allocFallback(failed tier.ID, huge bool) (tier.ID, tier.Frame, error) {
	for id := range as.tiers {
		if tier.ID(id) == failed {
			continue
		}
		var f tier.Frame
		var err error
		if huge {
			f, err = as.tiers[id].AllocHuge()
		} else {
			f, err = as.tiers[id].AllocBase()
		}
		if err == nil {
			return tier.ID(id), f, nil
		}
	}
	return failed, 0, tier.ErrOutOfMemory
}

// CanMigrate reports whether dst currently has room for the page.
func (as *AddressSpace) CanMigrate(p *Page, dst tier.ID) bool {
	if p.Tier == dst || p.dead {
		return false
	}
	t := as.tierOf(dst)
	if p.IsHuge() {
		return t.HasHugeFrame()
	}
	return t.FreeFrames() > 0
}

// MigrateStatus classifies the outcome of one migration transaction.
type MigrateStatus uint8

const (
	// MigrateOK: the transaction committed; the page lives on dst.
	MigrateOK MigrateStatus = iota
	// MigrateNoSpace: the reserve phase found no room on dst; nothing
	// was charged and the page stays put. This is an admission
	// failure, not a fault — retrying without freeing memory is
	// pointless.
	MigrateNoSpace
	// MigrateAborted: the copy phase faulted (injected by the fault
	// plan); the reservation was rolled back, the page keeps its
	// source mapping, and the returned ns is the wasted copy cost.
	// Transient — the caller may retry within the plan's retry bound.
	MigrateAborted
	// MigrateDenied: the space's MigrateVeto (QoS arbitration) refused
	// the move before anything was reserved or charged. Like no-space
	// this is an admission outcome, not a fault: retrying immediately
	// is pointless, the arbiter's state must change first.
	MigrateDenied
)

// String names the status for diagnostics.
func (s MigrateStatus) String() string {
	switch s {
	case MigrateOK:
		return "ok"
	case MigrateNoSpace:
		return "no-space"
	case MigrateAborted:
		return "aborted"
	case MigrateDenied:
		return "denied"
	default:
		return "unknown"
	}
}

// MigrateTx moves the page to dst with a three-phase transaction:
//
//	reserve  allocate the destination frame (fails: MigrateNoSpace,
//	         nothing charged);
//	copy     charge the copy at the fault plan's current bandwidth
//	         factor, then let the plan fail it (fails: free the
//	         reservation, keep the source mapping untouched, return
//	         MigrateAborted with the wasted cost);
//	commit   remap the page to the new frame, free the source frame,
//	         and broadcast the TLB shootdown.
//
// The source mapping is only touched in commit, so an abort can never
// lose the page or leave it double-mapped — Audit checks exactly that.
func (as *AddressSpace) MigrateTx(p *Page, dst tier.ID) (ns uint64, st MigrateStatus) {
	if p.dead || p.Tier == dst {
		return 0, MigrateNoSpace
	}
	if as.MigrateVeto != nil && (dst == tier.FastTier || p.Tier == tier.FastTier) &&
		!as.MigrateVeto(p, dst, p.Units()) {
		return 0, MigrateDenied
	}
	src := as.tierOf(p.Tier)
	dt := as.tierOf(dst)

	// Reserve.
	var nf tier.Frame
	var err error
	copyNS := as.HopCostNS(p.Tier, dst, p.IsHuge())
	if p.IsHuge() {
		nf, err = dt.AllocHuge()
	} else {
		nf, err = dt.AllocBase()
	}
	if err != nil {
		return 0, MigrateNoSpace
	}

	// Copy, at the (possibly throttled) migration bandwidth.
	if as.Faults != nil {
		var now uint64
		if as.Clock != nil {
			now = as.Clock()
		}
		copyNS *= as.Faults.CopyCostFactor(now)
		if as.Faults.FailCopy() {
			// Abort: roll back the reservation. The page was never
			// remapped, so the source mapping is still authoritative.
			if p.IsHuge() {
				dt.FreeHuge(nf)
			} else {
				dt.FreeBase(nf)
			}
			as.stats.MigrateAborts++
			as.stats.AbortNS += copyNS
			as.Trace.Emit(obs.EvMigrateAbort, p.VPN, p.IsHuge(), p.Bytes(), copyNS)
			return copyNS, MigrateAborted
		}
	}

	// Commit.
	if p.IsHuge() {
		src.FreeHuge(p.Frame)
		as.stats.MigrationsHuge++
	} else {
		src.FreeBase(p.Frame)
		as.stats.Migrations4K++
	}
	p.Frame = nf
	ns = copyNS + ShootdownNS
	ow := as.ownerOf(p)
	if dst < p.Tier {
		as.stats.Promotions += p.Units()
		as.Trace.Emit(obs.EvPromotion, p.VPN, p.IsHuge(), p.Bytes(), ns)
	} else {
		as.stats.Demotions += p.Units()
		as.Trace.Emit(obs.EvDemotion, p.VPN, p.IsHuge(), p.Bytes(), ns)
	}
	// Fast-tier residency only changes when the move crosses the top
	// boundary; hops between lower tiers leave fastUnits untouched.
	if dst == tier.FastTier {
		ow.fastUnits += p.Units()
	} else if p.Tier == tier.FastTier {
		ow.fastUnits -= p.Units()
	}
	as.stats.Shootdowns++
	as.Trace.Emit(obs.EvShootdown, p.VPN, p.IsHuge(), 0, 0)
	as.stats.MigratedBytes += p.Bytes()
	p.Tier = dst
	as.ownerOf(p).setTierPTE(p)
	return ns, MigrateOK
}

// Migrate is the boolean entry point over MigrateTx. ok is false for
// both no-space and aborted outcomes; note that an aborted transaction
// still returns its wasted copy cost, so callers must charge ns even
// when ok is false (with faults disabled, ns is 0 whenever ok is
// false, matching the historical contract).
func (as *AddressSpace) Migrate(p *Page, dst tier.ID) (ns uint64, ok bool) {
	ns, st := as.MigrateTx(p, dst)
	return ns, st == MigrateOK
}

// SubDest selects the destination tier for subpage j of a huge page
// being split. Returning NoTier keeps the subpage in the source tier.
type SubDest func(j int) tier.ID

// Split breaks a huge page into base pages (§4.3.3). Never-written
// subpages are unmapped and freed to reclaim bloat. dest picks the tier
// of each surviving subpage; subpages staying in the source tier keep
// their physical frames (no copy). Returns the new base pages and the
// total cost. Per-subpage access counts carry over; the huge page's own
// counter is distributed by subpage share so the histogram stays
// consistent under the caller's re-accounting.
func (as *AddressSpace) Split(p *Page, dest SubDest) (subs []*Page, ns uint64) {
	if !p.IsHuge() || p.dead {
		panic("vm: split of non-huge or dead page")
	}
	src := as.tierOf(p.Tier)
	src.BreakHuge(p.Frame)
	as.bt[p.VPN/tier.SubPages] = 0
	ns = SplitFixedNS + ShootdownNS
	as.stats.Splits++
	as.stats.Shootdowns++
	as.Trace.Emit(obs.EvShootdown, p.VPN, true, 0, 0)
	reclaimedBefore := as.stats.ReclaimedFrames
	subs = make([]*Page, 0, tier.SubPages)
	for j := 0; j < tier.SubPages; j++ {
		vpn := p.VPN + uint64(j)
		if !p.Touched(j) {
			// All-zero subpage: unmap and free (memory bloat reclaim).
			src.FreeBase(p.Frame + tier.Frame(j))
			as.pt[vpn] = 0
			as.stats.ReclaimedFrames++
			as.residentUnits--
			if p.Tier == tier.FastTier {
				as.fastUnits--
				as.fastFreed++
			}
			ns += ReclaimBaseNS
			continue
		}
		var cnt uint64
		if p.SubCount != nil {
			cnt = uint64(p.SubCount[j])
		}
		np := as.newPage()
		np.VPN, np.Kind, np.Tier, np.Frame, np.Count, np.Owner = vpn, BasePage, p.Tier, p.Frame+tier.Frame(j), cnt, p.Owner
		np.markTouched(0)
		as.pt[vpn] = pteFor(np) | pteTouched
		as.nPages++
		subs = append(subs, np)
		if d := dest(j); d != tier.NoTier && d != np.Tier {
			// An aborted subpage move still charges its wasted copy;
			// the subpage simply stays in the source tier.
			mns, _ := as.Migrate(np, d)
			ns += mns
		}
	}
	p.dead = true
	as.nPages--
	as.Trace.Emit(obs.EvSplit, p.VPN, true, p.Bytes(), as.stats.ReclaimedFrames-reclaimedBefore)
	return subs, ns
}

// Collapse coalesces 512 contiguous base pages back into one huge page
// in tier dst. All 512 VPNs starting at baseVPN must be mapped by base
// pages. Returns the new huge page and the cost; ok is false when dst
// cannot provide a huge frame or the range is not collapsible.
func (as *AddressSpace) Collapse(baseVPN uint64, dst tier.ID) (hp *Page, ns uint64, ok bool) {
	if baseVPN%tier.SubPages != 0 {
		return nil, 0, false
	}
	var olds [tier.SubPages]*Page
	var fastOlds uint64
	for j := 0; j < tier.SubPages; j++ {
		pg := as.Lookup(baseVPN + uint64(j))
		if pg == nil || pg.IsHuge() {
			return nil, 0, false
		}
		if pg.Tier == tier.FastTier {
			fastOlds++
		}
		olds[j] = pg
	}
	// A collapse changes the tier of every subpage not already on dst,
	// so it must pass the same QoS arbitration as an explicit
	// migration of the net unit delta (a collapse into the capacity
	// tier is a demotion of fastOlds units and must not dodge a
	// tenant's fast-tier floor).
	if as.MigrateVeto != nil {
		switch {
		case dst == tier.FastTier && fastOlds < tier.SubPages:
			if !as.MigrateVeto(olds[0], dst, tier.SubPages-fastOlds) {
				return nil, 0, false
			}
		case dst != tier.FastTier && fastOlds > 0:
			if !as.MigrateVeto(olds[0], dst, fastOlds) {
				return nil, 0, false
			}
		}
	}
	t := as.tierOf(dst)
	nf, err := t.AllocHuge()
	if err != nil {
		return nil, 0, false
	}
	hp = as.newPage()
	hp.VPN, hp.Kind, hp.Tier, hp.Frame, hp.Owner = baseVPN, HugePage, dst, nf, olds[0].Owner
	hp.SubCount = make([]uint32, tier.SubPages)
	he := pteFor(hp) | pteTouched
	for j := 0; j < tier.SubPages; j++ {
		old := olds[j]
		hp.SubCount[j] = uint32(old.Count)
		hp.Count += old.Count
		hp.markTouched(j)
		as.tierOf(old.Tier).FreeBase(old.Frame)
		old.dead = true
		as.pt[baseVPN+uint64(j)] = he
		as.nPages--
	}
	as.bt[baseVPN/tier.SubPages] = pteFor(hp)
	as.nPages++
	as.fastUnits -= fastOlds
	if dst == tier.FastTier {
		as.fastUnits += tier.SubPages
	}
	as.stats.Collapses++
	as.stats.Shootdowns++
	as.Trace.Emit(obs.EvCollapse, baseVPN, true, hp.Bytes(), 0)
	as.Trace.Emit(obs.EvShootdown, baseVPN, true, 0, 0)
	return hp, CollapseNS + ShootdownNS, true
}

// Free unmaps every mapped page of the region, returning frames to
// their tiers. Used by workloads with short-lived allocations.
//
// Freeing a trailing range shrinks the page table: the all-unmapped
// tail is trimmed so background walkers don't cycle over dead address
// space forever (fault paths re-grow the table on demand). The trim is
// invisible to iteration semantics — every walker treats an unmapped
// slot and an out-of-range slot identically.
func (as *AddressSpace) Free(r Region) {
	end := r.BaseVPN + r.Pages
	if n := uint64(len(as.pt)); end > n {
		end = n
	}
	for vpn := r.BaseVPN; vpn < end; vpn++ {
		e := as.pt[vpn]
		if e == 0 {
			continue
		}
		pg := as.pageAt(e)
		if as.OnUnmap != nil {
			as.OnUnmap(pg)
		}
		t := as.tierOf(pg.Tier)
		if pg.IsHuge() {
			t.FreeHuge(pg.Frame)
			for i := uint64(0); i < tier.SubPages; i++ {
				as.pt[pg.VPN+i] = 0
			}
			as.bt[pg.VPN/tier.SubPages] = 0
			vpn = pg.VPN + tier.SubPages - 1
		} else {
			t.FreeBase(pg.Frame)
			as.pt[vpn] = 0
		}
		as.residentUnits -= pg.Units()
		if pg.Tier == tier.FastTier {
			as.fastUnits -= pg.Units()
			as.fastFreed += pg.Units()
		}
		pg.dead = true
		as.nPages--
	}
	n := len(as.pt)
	for n > 0 && as.pt[n-1] == 0 {
		n--
	}
	as.pt = as.pt[:n]
	// The trimmed blocks are all-unmapped, so their bt entries are
	// already zero; only the length needs to follow.
	as.bt = as.bt[:(n+tier.SubPages-1)/tier.SubPages]
}

// Dead reports whether the page has been split, collapsed or freed.
func (p *Page) Dead() bool { return p.dead }

// RSSFrames returns the resident set size in 4KB frames.
func (as *AddressSpace) RSSFrames() uint64 {
	var n uint64
	for _, t := range as.tiers {
		n += t.UsedFrames()
	}
	return n
}

// RSSBytes returns the resident set size in bytes.
func (as *AddressSpace) RSSBytes() uint64 { return as.RSSFrames() * tier.BasePageSize }

// LivePages returns the number of live Page objects (huge counts as 1).
func (as *AddressSpace) LivePages() int { return as.nPages }

// ForEachPage invokes fn for every live page exactly once. The callback
// must not unmap pages; it may migrate, split or update metadata of the
// visited page (split replaces the visited page, which is safe because
// iteration works over a snapshot of distinct pages).
//
// Iteration order is deterministic: pages are visited in strictly
// ascending VPN order, independent of insertion, migration or
// split/collapse history. Policies rely on this guarantee for
// byte-identical traces across runs and workers; it is pinned by a
// regression test (TestForEachPageDeterministicOrder) and must not be
// weakened by switching the page table to an unordered container.
// ForEachPage reuses a per-space scratch buffer for its snapshot, so
// steady-state background walks allocate nothing (pinned by
// BenchmarkForEachPageAllocs); a nested call from inside fn falls back
// to a fresh allocation rather than clobbering the outer snapshot.
func (as *AddressSpace) ForEachPage(fn func(p *Page)) {
	var snap []*Page
	if reuse := !as.feBusy; reuse {
		as.feBusy = true
		snap = as.feScratch[:0]
		defer func() {
			as.feScratch = snap[:0]
			as.feBusy = false
		}()
	} else {
		snap = make([]*Page, 0, as.nPages)
	}
	for vpn, n := uint64(0), uint64(len(as.pt)); vpn < n; {
		e := as.pt[vpn]
		if e == 0 {
			vpn++
			continue
		}
		pg := as.pageAt(e)
		snap = append(snap, pg)
		vpn = pg.VPN + pg.Units()
	}
	for _, pg := range snap {
		if !pg.dead {
			fn(pg)
		}
	}
}

// ForEachPageFrom visits up to max live pages in ascending-VPN order
// starting at the cursor VPN, wrapping past the end of the address
// space back to 0, and returns the cursor to resume from (the VPN just
// past the last slot examined). Passing the returned cursor back in
// eventually visits every live page: a full cycle of calls covers the
// address space once. A cursor that lands mid-huge-page (the layout
// changed between calls) visits that page once and skips past it.
//
// Unlike ForEachPage this takes no snapshot — it is the bounded,
// incremental walker for background sweeps (cooling convergence, the
// §8 hybrid scan). The callback may migrate or update metadata of the
// visited page but must not unmap, split or collapse pages.
func (as *AddressSpace) ForEachPageFrom(cursor uint64, max int, fn func(p *Page)) uint64 {
	n := uint64(len(as.pt))
	if n == 0 || max <= 0 {
		return 0
	}
	if cursor >= n {
		// The table shrank since the cursor was handed out (Free
		// trimmed a trailing range). Fold the cursor back into range
		// instead of snapping to 0: a snap would restart every
		// in-flight sweep at the low VPNs and starve the high end of
		// the address space of cooling/scan coverage.
		cursor %= n
	}
	visited := 0
	// scanned bounds the walk to one full table cycle so a sparse or
	// empty address space terminates without visiting max pages.
	for scanned := uint64(0); scanned < n && visited < max; {
		e := as.pt[cursor]
		step := uint64(1)
		if e != 0 {
			pg := as.pageAt(e)
			fn(pg)
			visited++
			step = pg.VPN + pg.Units() - cursor
		}
		scanned += step
		cursor += step
		if cursor >= n {
			cursor = 0
		}
	}
	return cursor
}

// ForEachPageSlice visits up to max live pages in ascending-VPN order
// starting at cursor, without wrapping: it returns the cursor to
// resume from and done=true once the end of the table is reached.
// Machine-level walkers compose it across several address spaces into
// one wrapping cursor (a space index in the high bits, this VPN cursor
// in the low bits) so a background sweep covers every tenant's pages
// exactly once per cycle. Same callback contract as ForEachPageFrom.
func (as *AddressSpace) ForEachPageSlice(cursor uint64, max int, fn func(p *Page)) (next uint64, done bool) {
	n := uint64(len(as.pt))
	if cursor >= n || max <= 0 {
		return 0, true
	}
	visited := 0
	for cursor < n && visited < max {
		e := as.pt[cursor]
		step := uint64(1)
		if e != 0 {
			pg := as.pageAt(e)
			fn(pg)
			visited++
			step = pg.VPN + pg.Units() - cursor
		}
		cursor += step
	}
	return cursor, cursor >= n
}

// EnsureSubCount lazily allocates the per-subpage counters of a huge
// page (done on first PEBS sample touching it).
func (p *Page) EnsureSubCount() {
	if p.IsHuge() && p.SubCount == nil {
		p.SubCount = make([]uint32, tier.SubPages)
	}
}

// Audit verifies the address space's frame-accounting invariants — the
// properties a migration abort, split or collapse must never break:
//
//   - no dead page is reachable through the page table;
//   - every live page maps exactly its own VPN range (huge pages cover
//     all 512 slots, base pages exactly one);
//   - no physical frame backs two pages (no double-mapping);
//   - per-tier allocated-frame counts equal the sum of live page sizes
//     (no frame lost by an aborted transaction, none leaked).
//
// It is O(address space) with a map allocation per call: a test-time
// invariant checker (the fault conformance suite runs it), not a
// production path.
func (as *AddressSpace) Audit() error {
	owner := make(map[tier.PhysAddr]uint64)
	units, err := as.auditMapped(owner)
	if err != nil {
		return err
	}
	for id, t := range as.tiers {
		if got := t.UsedFrames(); got != units[id] {
			return fmt.Errorf("vm: %s tier has %d frames allocated but %d mapped (lost or leaked)",
				tier.ID(id), got, units[id])
		}
	}
	return nil
}

// auditMapped walks one space's page table, checking the per-space
// invariants (no dead or out-of-range mappings, every page owned by
// this space, no frame double-mapped — including against frames the
// shared owner map already holds from sibling spaces — and the
// incremental resident/fast unit counters exact) and returns the
// mapped units per tier (indexed by chain position).
func (as *AddressSpace) auditMapped(owner map[tier.PhysAddr]uint64) ([]uint64, error) {
	units := make([]uint64, len(as.tiers))
	mapped := make(map[*Page]uint64)
	for vpn, e := range as.pt {
		if e == 0 {
			continue
		}
		if idx := uint32(e & pteIdxMask); idx > as.nAlloc {
			return nil, fmt.Errorf("vm: pte at vpn %d indexes record %d beyond the arena (%d allocated)",
				vpn, idx-1, as.nAlloc)
		}
		pg := as.pageAt(e)
		if pg.dead {
			return nil, fmt.Errorf("vm: dead page %d still mapped at vpn %d", pg.VPN, vpn)
		}
		off := uint64(vpn) - pg.VPN
		if off >= pg.Units() {
			return nil, fmt.Errorf("vm: page %d (units %d) mapped out of range at vpn %d",
				pg.VPN, pg.Units(), vpn)
		}
		if pg.Owner != as.Tenant {
			return nil, fmt.Errorf("vm: page %d owned by space %d but mapped in space %d",
				pg.VPN, pg.Owner, as.Tenant)
		}
		// The packed entry's cached bits must agree with the record —
		// a desync here means a tier-changing path forgot setTierPTE
		// (the access hot path would charge the wrong tier's latency).
		if got := tier.ID(e >> pteTierShift); got != pg.Tier {
			return nil, fmt.Errorf("vm: pte at vpn %d caches tier %v but page %d is on %v",
				vpn, got, pg.VPN, pg.Tier)
		}
		if (e&pteHuge != 0) != pg.IsHuge() {
			return nil, fmt.Errorf("vm: pte at vpn %d huge bit disagrees with page %d", vpn, pg.VPN)
		}
		if e&pteTouched != 0 && !pg.Touched(int(off)) {
			return nil, fmt.Errorf("vm: pte at vpn %d touched bit set but page %d subpage %d is clean",
				vpn, pg.VPN, off)
		}
		if mapped[pg] == 0 {
			// First sighting: account frames and check uniqueness.
			if pg.Tier < 0 || int(pg.Tier) >= len(as.tiers) {
				return nil, fmt.Errorf("vm: page %d on tier %v", pg.VPN, pg.Tier)
			}
			if pg.IsHuge() {
				b := pg.VPN / tier.SubPages
				if b >= uint64(len(as.bt)) || as.bt[b] != pteFor(pg) {
					return nil, fmt.Errorf("vm: huge page %d missing or stale in the block table", pg.VPN)
				}
			}
			units[pg.Tier] += pg.Units()
			for u := uint64(0); u < pg.Units(); u++ {
				pa := tier.PhysAddr{Tier: pg.Tier, Frame: pg.Frame + tier.Frame(u)}
				if prev, dup := owner[pa]; dup {
					return nil, fmt.Errorf("vm: frame %v double-mapped by pages %d and %d",
						pa, prev, pg.VPN)
				}
				owner[pa] = pg.VPN
			}
		}
		mapped[pg]++
	}
	for pg, n := range mapped {
		if n != pg.Units() {
			return nil, fmt.Errorf("vm: page %d maps %d of its %d slots", pg.VPN, n, pg.Units())
		}
	}
	// Reverse direction: every non-zero block-table entry must describe
	// a live huge mapping the pt walk actually saw (a stale entry would
	// serve reads for a split or freed block).
	for b, e := range as.bt {
		if e == 0 {
			continue
		}
		base := uint64(b) * tier.SubPages
		if e&pteHuge == 0 || base >= uint64(len(as.pt)) || as.pt[base]&^pteTouched != e {
			return nil, fmt.Errorf("vm: block table entry %d is stale (pte %#x)", b, e)
		}
	}
	var total uint64
	for _, u := range units {
		total += u
	}
	if total != as.residentUnits {
		return nil, fmt.Errorf("vm: space %d counts %d resident units but %d are mapped",
			as.Tenant, as.residentUnits, total)
	}
	if units[tier.FastTier] != as.fastUnits {
		return nil, fmt.Errorf("vm: space %d counts %d fast units but %d are mapped fast",
			as.Tenant, as.fastUnits, units[tier.FastTier])
	}
	return units, nil
}

// AuditShared verifies the frame-accounting invariants of several
// address spaces sharing one tier pair: each space individually clean,
// no frame mapped by two spaces, and the tiers' allocated-frame counts
// equal to the sum of all spaces' live mappings. This is the
// multi-tenant Audit over the historical two-tier machine; deeper
// chains use AuditSharedTiers.
func AuditShared(fast, cap *tier.Tier, spaces []*AddressSpace) error {
	return AuditSharedTiers([]*tier.Tier{fast, cap}, spaces)
}

// AuditSharedTiers is AuditShared over an N-deep tier chain: each
// space individually clean, no frame mapped by two spaces, and every
// tier's allocated-frame count equal to the sum of all spaces' live
// mappings on it — no page lost across any hop.
func AuditSharedTiers(tiers []*tier.Tier, spaces []*AddressSpace) error {
	owner := make(map[tier.PhysAddr]uint64)
	units := make([]uint64, len(tiers))
	for _, as := range spaces {
		us, err := as.auditMapped(owner)
		if err != nil {
			return fmt.Errorf("space %d: %w", as.Tenant, err)
		}
		if len(us) != len(tiers) {
			return fmt.Errorf("space %d: %d tiers in chain, audit expects %d", as.Tenant, len(us), len(tiers))
		}
		for i, u := range us {
			units[i] += u
		}
	}
	for id, t := range tiers {
		if got := t.UsedFrames(); got != units[id] {
			return fmt.Errorf("vm: %s tier has %d frames allocated but %d mapped across %d spaces",
				tier.ID(id), got, units[id], len(spaces))
		}
	}
	return nil
}
