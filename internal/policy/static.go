package policy

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// Static is the no-migration reference policy: pages are placed
// fast-first at allocation time and never move. With FastOnly or
// CapacityOnly it pins all allocations to one tier, which yields the
// paper's all-DRAM and all-NVM baselines used to normalise every figure.
type Static struct {
	Base
	// Pin forces every allocation to one tier; tier.NoTier keeps the
	// default fast-first behaviour.
	Pin tier.ID
	// Label overrides the reported name (e.g. "all-nvm").
	Label string
}

var _ sim.Policy = (*Static)(nil)

// NewStatic returns the fast-first, never-migrate policy.
func NewStatic() *Static { return &Static{Pin: tier.NoTier, Label: "static"} }

// NewPinned returns a policy placing every page on the given tier.
func NewPinned(t tier.ID, label string) *Static { return &Static{Pin: t, Label: label} }

// Name implements sim.Policy.
func (s *Static) Name() string { return s.Label }

// PlaceNew implements sim.Policy.
func (s *Static) PlaceNew(huge bool, vpn uint64) tier.ID { return s.Pin }

// OnAccess implements sim.Policy.
func (s *Static) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 { return 0 }

// Capabilities implements sim.Policy: a pinned reference baseline
// deliberately targets one tier regardless of free space and relies on
// the VM's overflow fallback, which it declares via
// sim.CapPinnedPlacement instead of being special-cased by name in the
// conformance suite.
func (s *Static) Capabilities() sim.Capability {
	if s.Pin != tier.NoTier {
		return sim.CapPinnedPlacement
	}
	return 0
}

// Tick implements sim.Policy.
func (s *Static) Tick(now uint64) {}
