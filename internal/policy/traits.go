package policy

// Traits summarises a tiering system along the dimensions of the
// paper's Table 1 (access tracking, memory placement, page size).
type Traits struct {
	Name            string
	Mechanism       string // access-tracking mechanism
	SubpageTracking bool
	PromotionMetric string
	DemotionMetric  string
	Thresholding    string
	CriticalPath    string // migration on the critical path
	PageSize        string // page-size consideration
}

// AllTraits reproduces the rows of Table 1, including the two systems
// (MULTI-CLOCK, TMTS) that appear in the comparison table but not in
// the quantitative evaluation.
func AllTraits() []Traits {
	return []Traits{
		{"AutoNUMA", "Page fault", false, "Recency", "-", "Static access count", "Promotion", "None"},
		{"AutoTiering", "Page fault", false, "Recency", "Frequency", "Static count (promo), LFU (demo)", "Promotion", "None"},
		{"Tiering-0.8", "Page fault", false, "Recency", "Recency", "Promotion rate", "Promotion", "None"},
		{"TPP", "Page fault", false, "Recency + Frequency", "Recency", "Static access count", "Promotion", "None"},
		{"HotBox", "Page fault", false, "Recency + Frequency", "Recency", "Static access count", "Promotion", "Base page only"},
		{"Nimble", "PT scanning", false, "Recency", "Recency", "Static access count", "None", "None"},
		{"MULTI-CLOCK", "PT scanning", false, "Recency + Frequency", "Recency", "Static access count", "None", "None"},
		{"TMTS", "PT scan & HW sampling", false, "Recency + Frequency", "Recency", "Static count (promo), idle age (demo)", "None", "Split upon demotion"},
		{"HeMem", "HW-based sampling", false, "Recency + Frequency", "Recency + Frequency", "Static access count", "None", "None"},
		{"MEMTIS", "HW-based sampling", true, "EMA of access frequency", "EMA of access frequency", "Memory access distribution", "None", "Split based on access skew"},
	}
}
