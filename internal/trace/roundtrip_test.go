package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// TestReplayRoundTripByteIdentical is the end-to-end fidelity pin:
// record a short silo run, replay the records through Replay on a
// fresh machine of the same configuration, capture the replayed stream,
// and require it byte-identical to the original recording. This holds
// because a fresh machine's first reservation starts at VPN 0 and silo
// touches page 0 during init, so Replay's base-VPN remapping is the
// identity — any drift in the codec, the capture hook or Replay's
// address arithmetic breaks the equality.
func TestReplayRoundTripByteIdentical(t *testing.T) {
	spec := workload.MustNew("silo").Spec()
	mc := sim.Config{
		FastBytes: spec.RSSBytes() / 9,
		CapBytes:  spec.RSSBytes() + spec.RSSBytes()/4 + 16*tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      11,
	}
	const budget = 40_000

	m := sim.NewMachine(mc, nil)
	var orig bytes.Buffer
	w, err := NewWriter(&orig)
	if err != nil {
		t.Fatal(err)
	}
	Capture(m, w)
	workload.MustNew("silo").Run(m, budget)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != budget {
		t.Fatalf("recorded %d accesses, want %d", w.Count(), budget)
	}

	rd, err := NewReader(bytes.NewReader(orig.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(recs, 0)
	if st.MinVPN != 0 {
		t.Fatalf("recorded min VPN %d, want 0 (fresh machine)", st.MinVPN)
	}

	m2 := sim.NewMachine(mc, nil)
	var replayed bytes.Buffer
	w2, err := NewWriter(&replayed)
	if err != nil {
		t.Fatal(err)
	}
	Capture(m2, w2)
	NewReplay("silo-rt", recs).Run(m2, budget)
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig.Bytes(), replayed.Bytes()) {
		t.Fatal("replayed access stream differs from the recording")
	}
}

// TestSaveLoadFile pins the file round trip LoadFile/SaveFile the
// scenario compiler depends on.
func TestSaveLoadFile(t *testing.T) {
	recs := []Record{{VPN: 0, Write: true}, {VPN: 7, Write: false}, {VPN: 3, Write: true}}
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := SaveFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.trace")); err == nil {
		t.Fatal("LoadFile accepted a missing file")
	}
}
