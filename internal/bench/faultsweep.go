// The fault sweep: a (fault rate x policy) matrix quantifying how
// gracefully each tiering system degrades when migration copies abort
// transiently (DESIGN.md §6). Unlike the figure matrices, every cell
// is normalised to the *same policy's* fault-free run, so the sweep
// isolates fault sensitivity from baseline placement quality.
package bench

import (
	"context"
	"fmt"
	"os"
	"sync"

	"memtis/internal/sim"
)

// FaultRates are the standard sweep points: copy-abort probabilities
// in parts per million (0 = the fault-free reference each policy is
// normalised against).
var FaultRates = []uint32{0, 1_000, 10_000, 50_000}

// faultCoord spells one sweep cell's ratio coordinate. The rate is
// folded into the coordinate so CellSeed gives every (rate, policy)
// cell an independent, worker-count-invariant stream.
func faultCoord(rt Ratio, ratePpm uint32) string {
	return fmt.Sprintf("%s+%dppm", rt.Name, ratePpm)
}

// FaultSweep runs every policy at every copy-abort rate on one
// workload and tiering ratio. The swept rate overrides
// cfg.Faults.MigrateFailPpm; any throttle/stall schedule in cfg.Faults
// applies to all cells alike. A zero rate with no other fault field
// set runs the genuinely unfaulted machine. Rates always include the
// 0 reference (prepended when missing); each cell's Value is its
// throughput normalised to the same policy's rate-0 run.
func (r *Runner) FaultSweep(ctx context.Context, cfg Config, wname string, rt Ratio, pols []string, rates []uint32) (*Matrix, error) {
	if pols == nil {
		pols = Policies
	}
	if rates == nil {
		rates = FaultRates
	}
	if rates[0] != 0 {
		rates = append([]uint32{0}, rates...)
	}
	if cfg.EventDir != "" {
		if err := os.MkdirAll(cfg.EventDir, 0o755); err != nil {
			return nil, err
		}
	}
	var (
		failMu sync.Mutex
		failed error
	)
	fail := func(err error) {
		failMu.Lock()
		if failed == nil {
			failed = err
		}
		failMu.Unlock()
	}
	results := make([]sim.Result, len(rates)*len(pols))
	var tasks []cellTask
	for fi, rate := range rates {
		for pi, p := range pols {
			slot := fi*len(pols) + pi
			coord := faultCoord(rt, rate)
			tasks = append(tasks, cellTask{
				label: fmt.Sprintf("%s/%s/%s", wname, coord, p),
				run: func() uint64 {
					ccfg := CellConfig(cfg, wname, coord, p)
					ccfg.Faults.MigrateFailPpm = rate
					closeTrace, err := cellTrace(cfg.EventDir, wname, coord, p, &ccfg)
					if err != nil {
						fail(err)
						return 0
					}
					results[slot] = RunOne(wname, p, rt, ccfg)
					if err := closeTrace(); err != nil {
						fail(err)
					}
					return results[slot].AppNS
				},
			})
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, fmt.Errorf("bench: writing event traces: %w", failed)
	}
	m := &Matrix{}
	for fi, rate := range rates {
		for pi, p := range pols {
			res := results[fi*len(pols)+pi]
			base := results[pi] // rates[0] == 0: the fault-free row
			m.Cells = append(m.Cells, Cell{
				Workload: wname, Ratio: faultCoord(rt, rate), Policy: p,
				Value: Norm(res, base), Result: res,
			})
		}
	}
	return m, nil
}

// FaultSweepTable renders a fault sweep as a rate x policy table (the
// EXPERIMENTS.md "Fault sweep" presentation): rows are abort rates,
// values are throughput relative to that policy's fault-free run.
func FaultSweepTable(title string, m *Matrix, wname string, rt Ratio, pols []string, rates []uint32) Table {
	if pols == nil {
		pols = Policies
	}
	if rates == nil {
		rates = FaultRates
	}
	t := Table{Title: title, Header: append([]string{"fault rate"}, pols...)}
	for _, rate := range rates {
		row := []interface{}{fmt.Sprintf("%.2f%%", float64(rate)/10_000)}
		for _, p := range pols {
			v, _ := m.Get(wname, faultCoord(rt, rate), p)
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}
