package scenario

import "encoding/json"

// maxShrinkRuns bounds the number of times Shrink invokes the failing
// predicate: each invocation typically re-runs a full simulation, so
// the failure path of a fuzz iteration stays at a few seconds.
const maxShrinkRuns = 128

// Shrink greedily minimizes a failing spec: it repeatedly tries
// simplifying transforms (drop a phase, clear the fault plan, drop
// churn events and mix arms, halve region sizes, flatten weights) and
// keeps any candidate that still validates and still fails, until no
// transform helps or the run budget is exhausted. The result is the
// minimal reproducer written out next to a fuzz failure; determinism
// of the predicate (same spec in, same verdict out) makes Shrink itself
// deterministic.
func Shrink(spec Spec, fails func(Spec) bool) Spec {
	best := spec
	runs := 0
	try := func(cand Spec) bool {
		if runs >= maxShrinkRuns || cand.Validate() != nil {
			return false
		}
		runs++
		return fails(cand)
	}
	for {
		improved := false
		for _, cand := range candidates(best) {
			if try(cand) {
				best = cand
				improved = true
				break
			}
		}
		if !improved || runs >= maxShrinkRuns {
			return best
		}
	}
}

// candidates enumerates one-step simplifications of a spec, most
// aggressive first so the greedy loop converges quickly.
func candidates(s Spec) []Spec {
	var out []Spec
	add := func(f func(*Spec)) {
		c := clone(s)
		f(&c)
		out = append(out, c)
	}
	// Multi-tenant simplifications first: a single-tenant reproducer
	// (or better, a plain phase list) beats any phase-level shrink.
	if len(s.Tenants) == 1 {
		t := s.Tenants[0]
		if t.Weight == 0 && t.FloorBytes == 0 && t.SpawnFrac == 0 &&
			t.ExitFrac == 0 && t.GrowBytes == 0 {
			add(func(c *Spec) { c.Phases, c.Tenants = c.Tenants[0].Phases, nil })
		}
	}
	for i := len(s.Tenants) - 1; i >= 0; i-- {
		i := i
		if len(s.Tenants) > 1 {
			add(func(c *Spec) { c.Tenants = append(c.Tenants[:i], c.Tenants[i+1:]...) })
		}
		t := &s.Tenants[i]
		if t.SpawnFrac != 0 || t.ExitFrac != 0 || t.GrowBytes != 0 {
			add(func(c *Spec) {
				tc := &c.Tenants[i]
				tc.SpawnFrac, tc.ExitFrac = 0, 0
				tc.GrowBytes, tc.GrowFrac, tc.ShrinkFrac = 0, 0, 0
			})
		}
		if t.FloorBytes != 0 || t.Weight > 1 {
			add(func(c *Spec) { c.Tenants[i].FloorBytes, c.Tenants[i].Weight = 0, 0 })
		}
		if len(t.Phases) > 1 {
			add(func(c *Spec) { c.Tenants[i].Phases = c.Tenants[i].Phases[:len(c.Tenants[i].Phases)-1] })
		}
	}
	// Whole phases, last first (later phases depend on earlier churn,
	// never the reverse).
	for i := len(s.Phases) - 1; i >= 0; i-- {
		i := i
		add(func(c *Spec) { c.Phases = append(c.Phases[:i], c.Phases[i+1:]...) })
	}
	if s.Faults != "" {
		add(func(c *Spec) { c.Faults = "" })
	}
	for i := range s.Phases {
		i := i
		p := &s.Phases[i]
		if len(p.Free) > 0 {
			add(func(c *Spec) { c.Phases[i].Free = nil })
		}
		for j := range p.Grow {
			if p.Grow[j].Bytes < 2<<20 {
				continue
			}
			j := j
			add(func(c *Spec) { c.Phases[i].Grow[j].Bytes /= 2 })
		}
		for j := len(p.Mix) - 1; j >= 0 && len(p.Mix) > 1; j-- {
			j := j
			add(func(c *Spec) {
				m := c.Phases[i].Mix
				c.Phases[i].Mix = append(m[:j], m[j+1:]...)
			})
		}
		if p.Weight != 0 && p.Weight != 1 && p.isSource() {
			add(func(c *Spec) { c.Phases[i].Weight = 1 })
		}
		if p.RSSGB > 0.25 {
			add(func(c *Spec) { c.Phases[i].RSSGB = 0.25 })
		}
	}
	return out
}

// clone deep-copies a spec through its JSON form (specs are small; the
// simplicity beats a hand-written copier that can drift from the
// struct).
func clone(s Spec) Spec {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err)
	}
	var c Spec
	if err := json.Unmarshal(b, &c); err != nil {
		panic(err)
	}
	return c
}
