package obs

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range Kinds() {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no wire name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate wire name %q", name)
		}
		seen[name] = true
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("KindFromString(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := KindFromString("no-such-event"); ok {
		t.Fatal("KindFromString accepted an unknown name")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	tr.Emit(EvPromotion, 1, false, 2, 3) // must not panic
	tr.BindClock(func() uint64 { return 9 })
	// A tracer without a sink is equally inert.
	NewTracer(nil).Emit(EvDemotion, 1, true, 2, 3)
}

func TestTracerStampsVirtualTime(t *testing.T) {
	ring := NewRing(0)
	tr := NewTracer(ring)
	now := uint64(0)
	tr.BindClock(func() uint64 { return now })
	tr.Emit(EvDemandFault, 42, true, 1<<21, 7)
	now = 1234
	tr.Emit(EvPromotion, 43, false, 4096, 0)
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	want0 := Event{TimeNS: 0, Kind: EvDemandFault, VPN: 42, Huge: true, Bytes: 1 << 21, Aux: 7}
	want1 := Event{TimeNS: 1234, Kind: EvPromotion, VPN: 43, Bytes: 4096}
	if evs[0] != want0 || evs[1] != want1 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestRingBounded(t *testing.T) {
	r := NewRing(3)
	for i := uint64(0); i < 7; i++ {
		r.Emit(Event{TimeNS: i})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.TimeNS != uint64(4+i) {
			t.Fatalf("ring order wrong: %+v", evs)
		}
	}
	if n := r.CountByKind()[EvDemandFault]; n != 3 {
		t.Fatalf("CountByKind = %d", n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{TimeNS: 0, Kind: EvDemandFault, VPN: 0, Huge: false, Bytes: 4096, Aux: 62},
		{TimeNS: 18446744073709551615, Kind: EvSamplerOverflow, VPN: 1 << 40, Huge: true, Bytes: 0, Aux: 140},
		{TimeNS: 5, Kind: EvCooling, Aux: 99},
	}
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	for _, e := range events {
		sink.Emit(e)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, events)
	}
}

func TestJSONLByteStable(t *testing.T) {
	e := Event{TimeNS: 12, Kind: EvPromotion, VPN: 34, Huge: true, Bytes: 56, Aux: 78}
	want := `{"t":12,"ev":"promotion","vpn":34,"huge":true,"bytes":56,"aux":78}` + "\n"
	if got := string(AppendEvent(nil, e)); got != want {
		t.Fatalf("wire format changed:\n got %q\nwant %q", got, want)
	}
}

func TestDecoderRejectsCorruptLines(t *testing.T) {
	bad := []string{
		`{"t":1,"ev":"promotion","vpn":1,"huge":false,"bytes":0,"aux":0}{"t":2}`, // two objects
		`{"t":1,"ev":"warpdrive","vpn":1,"huge":false,"bytes":0,"aux":0}`,        // unknown kind
		`{"t":-1,"ev":"promotion","vpn":1,"huge":false,"bytes":0,"aux":0}`,       // negative uint
		`{"t":1,"ev":"promotion","vpn":1,"huge":false,"bytes":0,"aux":0,"x":1}`,  // unknown field
		`{"t":1,"ev":"promotion"`, // truncated
		`not json at all`,
		`[1,2,3]`,
		strings.Repeat("a", maxLineBytes+1),
	}
	for _, line := range bad {
		if _, err := ParseEvent(line); err == nil {
			t.Errorf("ParseEvent accepted corrupt line %.60q", line)
		}
	}
	// A trace with a corrupt middle line fails with a line number.
	in := `{"t":1,"ev":"cooling","vpn":0,"huge":false,"bytes":0,"aux":0}` + "\nbroken\n"
	d := NewDecoder(strings.NewReader(in))
	if _, err := d.Next(); err != nil {
		t.Fatalf("first line: %v", err)
	}
	if _, err := d.Next(); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestDecoderToleratesBlankLinesAndEOF(t *testing.T) {
	in := "\n" + `{"t":1,"ev":"split","vpn":512,"huge":true,"bytes":2097152,"aux":3}` + "\n\n"
	d := NewDecoder(strings.NewReader(in))
	e, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != EvSplit || e.Aux != 3 {
		t.Fatalf("event = %+v", e)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("memtis/coolings")
	*c += 3
	if *r.Counter("memtis/coolings") != 3 {
		t.Fatal("counter cell not shared across lookups")
	}
	g := r.Group("tpp")
	*g.Counter("promotions") = 7
	*g.Gauge("thresh") = 11
	if v, ok := r.Value("tpp/promotions"); !ok || v != 7 {
		t.Fatalf("Value = %d, %v", v, ok)
	}
	snap := r.Snapshot()
	wantNames := []string{"memtis/coolings", "tpp/promotions", "tpp/thresh"}
	if len(snap) != len(wantNames) {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i, m := range snap {
		if m.Name != wantNames[i] {
			t.Fatalf("snapshot order: %+v", snap)
		}
	}
	if snap[2].Kind != GaugeKind || snap[2].Kind.String() != "gauge" {
		t.Fatalf("gauge kind lost: %+v", snap[2])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("tpp/promotions")
}
