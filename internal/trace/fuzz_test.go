// Fuzz harness for the varint trace codec (go test -fuzz). The seed
// corpus is checked in under testdata/fuzz/<Target>/ so plain `go test`
// always replays it in CI; `make fuzz` explores further.
package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// validStream encodes records into a well-formed trace stream.
func validStream(recs []Record) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		panic(err)
	}
	for _, r := range recs {
		if err := w.Add(r.VPN, r.Write); err != nil {
			panic(err)
		}
	}
	if err := w.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReaderNext feeds arbitrary bytes to the reader: NewReader and
// Next must never panic, and every stream must terminate in bounded
// steps with either io.EOF or a decode error — whatever the input
// (truncated varints, bad magic, wrong version, overlong encodings).
func FuzzReaderNext(f *testing.F) {
	f.Add([]byte{})                         // empty
	f.Add([]byte("MTRC"))                   // header cut before version
	f.Add([]byte{'M', 'T', 'R', 'C', 0xff}) // wrong version
	f.Add([]byte("XTRC\x01\x02"))           // bad magic
	f.Add(validStream(nil))                 // header only
	f.Add(validStream([]Record{{1, false}, {2, true}, {1 << 40, false}}))
	f.Add(append(validStream([]Record{{^uint64(0) >> 1, true}}), 0x80))                               // truncated trailing varint
	f.Add(append(validStream(nil), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)) // overlong varint
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A record costs at least one input byte, so the stream must end
		// within len(data) steps; anything more means Next stopped
		// consuming input.
		for i := 0; i <= len(data); i++ {
			rec, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // decode error is a valid terminal state
			}
			if rec.VPN > ^uint64(0)>>1 {
				t.Fatalf("decoded VPN %d exceeds the encodable range", rec.VPN)
			}
		}
		t.Fatalf("reader did not terminate after %d records on %d input bytes", len(data)+1, len(data))
	})
}

// FuzzRoundTrip derives a record sequence from the fuzz input, writes
// it through Writer and requires Reader to return exactly the same
// records — every record preserved, none invented — and requires any
// truncation of the encoded stream to fail cleanly rather than panic.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte("the quick brown fox jumps over the lazy dog"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		for i := 0; i+8 <= len(data) && len(recs) < 1<<12; i += 8 {
			v := binary.LittleEndian.Uint64(data[i:])
			recs = append(recs, Record{VPN: v >> 1, Write: v&1 == 1})
		}
		enc := validStream(recs)

		r, err := NewReader(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("reader rejected a writer-produced stream: %v", err)
		}
		got, err := ReadAll(r)
		if err != nil {
			t.Fatalf("ReadAll on a valid stream: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip lost records: wrote %d, read %d", len(recs), len(got))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d: wrote %+v, read %+v", i, recs[i], got[i])
			}
		}

		// Truncations (including mid-varint cuts) must error or EOF
		// early, never panic and never fabricate more records.
		for _, cut := range []int{len(enc) - 1, len(enc) / 2, 6, 5} {
			if cut < 0 || cut >= len(enc) {
				continue
			}
			tr, err := NewReader(bytes.NewReader(enc[:cut]))
			if err != nil {
				continue // header itself truncated
			}
			n := 0
			for {
				_, err := tr.Next()
				if err != nil {
					break
				}
				n++
			}
			if n > len(recs) {
				t.Fatalf("truncated stream produced %d records, original had %d", n, len(recs))
			}
		}
	})
}
