package memtis_test

import (
	"testing"

	"memtis"
)

func TestPublicQuickstart(t *testing.T) {
	spec := memtis.Workloads()[4] // silo
	cfg := memtis.MachineFor(spec, 1.0/9, memtis.NVM)
	cfg.Seed = 1
	res := memtis.Run(cfg, memtis.NewMEMTIS(), memtis.MustWorkload("silo"), 300_000)
	if res.Accesses != 300_000 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if res.FastHitRatio <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.Policy != "memtis" || res.Workload != "silo" {
		t.Fatal("labels")
	}
}

func TestPublicPolicyConstructors(t *testing.T) {
	pols := []memtis.Policy{
		memtis.NewMEMTIS(),
		memtis.NewMEMTISWith(memtis.MEMTISConfig{SplitDisabled: true}),
		memtis.NewAutoNUMA(),
		memtis.NewAutoTiering(),
		memtis.NewTiering08(),
		memtis.NewTPP(),
		memtis.NewNimble(),
		memtis.NewHeMem(),
		memtis.NewStatic(),
	}
	for _, p := range pols {
		if p.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
}

func TestPublicWorkloadRegistry(t *testing.T) {
	if len(memtis.Workloads()) != 8 {
		t.Fatal("expected the paper's 8 benchmarks")
	}
	if _, err := memtis.NewWorkload("654.roms"); err != nil {
		t.Fatal(err)
	}
	if _, err := memtis.NewWorkload("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPublicCustomWorkload(t *testing.T) {
	// Users can drive the machine directly with their own access
	// streams via NewMachine.
	m := memtis.NewMachine(memtis.MachineConfig{
		FastBytes: 8 << 20,
		CapBytes:  64 << 20,
		CapKind:   memtis.CXL,
		THP:       true,
	}, memtis.NewMEMTIS())
	r := m.Reserve(16 << 20)
	for i := 0; i < 100_000; i++ {
		m.Access(r.BaseVPN+uint64(i)%r.Pages, i%4 == 0)
	}
	res := m.Finish("custom")
	if res.Accesses != 100_000 || res.RSSFinal == 0 {
		t.Fatalf("custom run: %+v", res)
	}
}
