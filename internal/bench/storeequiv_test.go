package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	memtis "memtis/internal/core"
	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
	"memtis/internal/workload"
)

// The page-store equivalence suite pins the struct-of-arrays migration
// of internal/vm (DESIGN.md §12): the golden hashes in
// testdata/store_equiv.json were generated from the historical
// pointer-linked vm.Page layout, and every later representation of the
// page store must reproduce them bit for bit — same event traces, same
// counters, same end-state stats — across seeds and across workloads
// that exercise every structural mutation of the table (demand faults,
// promotion/demotion, huge-page split, collapse, region churn, and
// fault-aborted migration transactions).
//
// Regenerate with STORE_EQUIV_REWRITE=1 only when a change is *meant*
// to alter simulation behaviour; a layout-only change must never need
// it.

// storeEquivCell is one golden entry.
type storeEquivCell struct {
	TraceSHA    string `json:"trace_sha"`
	CountersSHA string `json:"counters_sha"`
	Accesses    uint64 `json:"accesses"`
	AppNS       uint64 `json:"app_ns"`
	Splits      uint64 `json:"splits"`
	Collapses   uint64 `json:"collapses"`
	Migrations  uint64 `json:"migrations_4k"`
	Aborts      uint64 `json:"migrate_aborts"`
	RSSFinal    uint64 `json:"rss_final"`
}

// churnWorkload drives every structural page-table mutation in one
// deterministic stream: a THP region (huge pages, split candidates), a
// base-page arena of small reservations (collapse candidates), skewed
// steady-state access over both, and periodic free-and-reallocate
// churn of a side region.
type churnWorkload struct{ seed int64 }

func (c churnWorkload) Name() string { return "store-churn" }

func (c churnWorkload) Run(m *sim.Machine, accesses uint64) {
	big := m.Reserve(24 << 20) // THP-backed: 12 huge pages
	var smalls []vm.Region
	for i := 0; i < 8; i++ {
		smalls = append(smalls, m.Reserve(512<<10)) // base pages
	}
	churn := m.Reserve(2 << 20)
	// First-touch init: write every base VPN of the big region so every
	// subpage is marked touched (splits then keep all 512 survivors and
	// a later collapse can find a fully-present block), then the small
	// arena.
	for vpn := big.BaseVPN; vpn < big.BaseVPN+big.Pages && m.Accesses() < accesses; vpn++ {
		m.Access(vpn, true)
	}
	for _, r := range smalls {
		for vpn := r.BaseVPN; vpn < r.BaseVPN+r.Pages && m.Accesses() < accesses; vpn++ {
			m.Access(vpn, true)
		}
	}
	// Steady phase one: heavily skewed subpage access — each huge page
	// has 8 hot subpages — which is exactly the §4.3 split trigger
	// (high concentration, low utilization), plus small-arena and churn
	// traffic. Phase two (last 40% of the budget) hammers one 2MB block
	// uniformly so its split remnants all turn hot and collapse.
	hammer := big.BaseVPN + 5*512
	x := uint64(c.seed)*2862933555777941757 + 3037000493
	i := 0
	for m.Accesses() < accesses {
		x = x*2862933555777941757 + 3037000493
		r := x >> 33
		var vpn uint64
		switch {
		case m.Accesses() > accesses*3/5 && r%4 != 0:
			vpn = hammer + (r>>4)%512
		case r%8 < 5: // skewed: huge page (r>>3)%12, subpage (r>>8)%8
			vpn = big.BaseVPN + ((r>>3)%12)*512 + ((r>>8)%8)*61
		case r%8 < 7: // small arena
			s := smalls[(r>>3)%uint64(len(smalls))]
			vpn = s.BaseVPN + (r>>9)%s.Pages
		default: // churn region
			vpn = churn.BaseVPN + (r>>3)%churn.Pages
		}
		m.Access(vpn, r%5 == 0)
		i++
		if i%50000 == 0 {
			m.FreeRegion(churn)
			churn = m.Reserve(2 << 20)
		}
	}
}

// runStoreEquivCell executes one cell and returns its golden entry.
func runStoreEquivCell(name string, seed int64, faults bool) storeEquivCell {
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	var w sim.Workload
	fastBytes, capBytes := uint64(8<<20), uint64(64<<20)
	if name == "silo" {
		sw := workload.MustNew("silo")
		rss := sw.Spec().RSSBytes()
		fastBytes, capBytes = rss/9, rss+rss/4+16*tier.HugePageSize
		w = sw
	} else {
		w = churnWorkload{seed: seed}
	}
	cfg := sim.Config{
		FastBytes: fastBytes,
		CapBytes:  capBytes,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      seed,
		RecordNS:  2_000_000,
		Trace:     obs.NewTracer(sink),
	}
	if faults {
		cfg.Faults = tier.FaultConfig{MigrateFailPpm: 50_000, MaxRetries: 2}
	}
	// Dense fixed-period sampling plus a long cooling interval: at the
	// suite's compressed scale the default self-adjusting sampler is too
	// sparse for a hammered 2MB block to hold all 512 subpages hot
	// across a cooling epoch (coupon-collector: some subpage always
	// cools to bin 0), which would leave the collapse path permanently
	// unexercised.
	smp := pebs.DefaultConfig()
	smp.LoadPeriod, smp.MinPeriod, smp.MaxPeriod = 8, 8, 8
	pol := memtis.New(memtis.Config{Sampler: smp, CoolEvery: 12_000})
	m := sim.NewMachine(cfg, pol)
	w.Run(m, 400_000)
	res := m.Finish(w.Name())
	if err := sink.Flush(); err != nil {
		panic(err)
	}
	ts := sha256.Sum256(buf.Bytes())
	var cb bytes.Buffer
	for _, c := range res.Counters {
		fmt.Fprintf(&cb, "%s=%d\n", c.Name, c.Value)
	}
	cs := sha256.Sum256(cb.Bytes())
	return storeEquivCell{
		TraceSHA:    hex.EncodeToString(ts[:]),
		CountersSHA: hex.EncodeToString(cs[:]),
		Accesses:    res.Accesses,
		AppNS:       res.AppNS,
		Splits:      res.VM.Splits,
		Collapses:   res.VM.Collapses,
		Migrations:  res.VM.Migrations4K,
		Aborts:      res.VM.MigrateAborts,
		RSSFinal:    res.RSSFinal,
	}
}

// storeEquivCells enumerates the golden cells: 5 seeds of the churn
// workload, plus silo (the Table 2 split-heavy model) and a
// fault-injected churn cell covering the abort/rollback paths.
func storeEquivCells() map[string]func() storeEquivCell {
	cells := map[string]func() storeEquivCell{}
	for s := int64(42); s < 47; s++ {
		seed := s
		cells[fmt.Sprintf("churn_seed%d", seed)] = func() storeEquivCell {
			return runStoreEquivCell("churn", seed, false)
		}
	}
	cells["silo_seed42"] = func() storeEquivCell { return runStoreEquivCell("silo", 42, false) }
	cells["churn_faults_seed42"] = func() storeEquivCell { return runStoreEquivCell("churn", 42, true) }
	return cells
}

// TestPageStoreEquivalence drives the equivalence cells and compares
// against the pointer-layout goldens.
func TestPageStoreEquivalence(t *testing.T) {
	path := filepath.Join("testdata", "store_equiv.json")
	cells := storeEquivCells()
	if os.Getenv("STORE_EQUIV_REWRITE") != "" {
		out := map[string]storeEquivCell{}
		for name, run := range cells {
			out[name] = run()
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cells", path, len(out))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (%v); regenerate with STORE_EQUIV_REWRITE=1", err)
	}
	want := map[string]storeEquivCell{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cells) {
		t.Fatalf("golden has %d cells, suite has %d", len(want), len(cells))
	}
	// Coverage floor: the suite is only meaningful if the cells really
	// exercise the structural mutations it claims to pin.
	var tot storeEquivCell
	for name, run := range cells {
		got := run()
		w, ok := want[name]
		if !ok {
			t.Fatalf("cell %s missing from golden", name)
		}
		if got != w {
			t.Errorf("cell %s diverged from the pointer-layout golden:\n got %+v\nwant %+v", name, got, w)
		}
		tot.Splits += got.Splits
		tot.Collapses += got.Collapses
		tot.Migrations += got.Migrations
		tot.Aborts += got.Aborts
	}
	if tot.Splits == 0 || tot.Collapses == 0 || tot.Migrations == 0 || tot.Aborts == 0 {
		t.Fatalf("suite lost structural coverage: %+v", tot)
	}
}
