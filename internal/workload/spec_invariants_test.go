package workload

import (
	"strings"
	"testing"
)

// TestSpecTableInvariants pins the structural invariants of the Table 2
// set that every consumer (bench matrices, scenario specs, CLI flag
// parsing) leans on: names are unique and non-empty, every row has a
// positive scaled RSS, and the huge-page ratio is a valid fraction.
func TestSpecTableInvariants(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Specs() {
		if s.Name == "" {
			t.Fatal("spec with empty name")
		}
		if seen[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		if s.RSSBytes() == 0 {
			t.Errorf("%s: zero scaled RSS", s.Name)
		}
		if s.RHP < 0 || s.RHP > 1 {
			t.Errorf("%s: RHP %v outside [0,1]", s.Name, s.RHP)
		}
		if s.SmallBytes() > s.RSSBytes() {
			t.Errorf("%s: small allocations %d exceed RSS %d", s.Name, s.SmallBytes(), s.RSSBytes())
		}
	}
}

// TestSpecByNameErrors pins the error paths: SpecByName and New must
// reject unknown benchmarks with an error naming the input, not panic
// or return a zero model.
func TestSpecByNameErrors(t *testing.T) {
	if _, err := SpecByName("no-such-benchmark"); err == nil {
		t.Fatal("SpecByName accepted an unknown benchmark")
	} else if !strings.Contains(err.Error(), "no-such-benchmark") {
		t.Fatalf("error %q does not name the unknown benchmark", err)
	}
	if _, err := New("no-such-benchmark"); err == nil {
		t.Fatal("New accepted an unknown benchmark")
	}
	if _, err := NewScaled("no-such-benchmark", 1); err == nil {
		t.Fatal("NewScaled accepted an unknown benchmark")
	}
}

// TestNewScaledFractionalGB pins the rounding of fractional paper-GB
// overrides: RSSBytes truncates the scaled product, so 1.5 paper-GB is
// exactly 12 simulated MB and 0.1 paper-GB truncates to 838860 bytes
// (0.1 * 8MiB = 838860.8). Scenario fuzzing generates quarter-GB sizes
// and depends on these staying exact.
func TestNewScaledFractionalGB(t *testing.T) {
	cases := []struct {
		gb   float64
		want uint64
	}{
		{1, BytesPerPaperGB},
		{1.5, 12 << 20},
		{0.25, 2 << 20},
		{0.1, 838860},
	}
	for _, c := range cases {
		w, err := NewScaled("graph500", c.gb)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.Spec().RSSBytes(); got != c.want {
			t.Errorf("NewScaled(%v GB).RSSBytes() = %d, want %d", c.gb, got, c.want)
		}
	}
	// The override must not leak into the shared table.
	base, _ := SpecByName("graph500")
	if base.PaperRSSGB != 66.3 {
		t.Fatalf("NewScaled mutated the Table 2 entry: %v", base.PaperRSSGB)
	}
}
