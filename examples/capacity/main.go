// capacity sweeps the DRAM:NVM ratio for a workload and reports the
// performance knee — the capacity-planning question ("how little DRAM
// can we buy before this workload falls off a cliff?") that tiered
// memory simulators exist to answer.
package main

import (
	"fmt"

	"memtis"
)

func main() {
	const name = "xsbench"
	var spec memtis.WorkloadSpec
	for _, s := range memtis.Workloads() {
		if s.Name == name {
			spec = s
		}
	}

	// All-capacity baseline to normalise against.
	base := memtis.Run(memtis.MachineFor(spec, 0, memtis.NVM),
		memtis.NewStatic(), memtis.MustWorkload(name), 1_500_000)

	fmt.Printf("%s: performance vs DRAM share under MEMTIS (normalised to all-NVM)\n", name)
	fmt.Printf("%8s %10s %12s %10s\n", "dram", "dram_mb", "norm_perf", "hit")
	fracs := []struct {
		label string
		f     float64
	}{
		{"1/17", 1.0 / 17}, {"1/9", 1.0 / 9}, {"1/5", 1.0 / 5},
		{"1/3", 1.0 / 3}, {"1/2", 1.0 / 2}, {"2/3", 2.0 / 3},
	}
	first, last := 0.0, 0.0
	for _, fc := range fracs {
		cfg := memtis.MachineFor(spec, fc.f, memtis.NVM)
		cfg.Seed = 5
		r := memtis.Run(cfg, memtis.NewMEMTIS(), memtis.MustWorkload(name), 1_500_000)
		norm := r.Throughput / base.Throughput
		fmt.Printf("%8s %10.0f %12.2f %9.1f%%\n",
			fc.label, float64(cfg.FastBytes)/(1<<20), norm, r.FastHitRatio*100)
		if first == 0 {
			first = norm
		}
		last = norm
	}
	fmt.Printf("\ngoing from a 1/17 to a 2/3 DRAM share buys %.0f%% more throughput;\n",
		(last/first-1)*100)
	fmt.Println("the sweep shows where that spend stops paying for this workload.")
}
