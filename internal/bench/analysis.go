package bench

import (
	"fmt"
	"math/rand"
	"sort"

	memtis "memtis/internal/core"
	"memtis/internal/damon"
	"memtis/internal/pebs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// Table1 reproduces the qualitative comparison of tiering systems.
func Table1() Table {
	t := Table{
		Title:  "Table 1: comparison of tiered memory systems",
		Header: []string{"system", "tracking", "subpage", "promotion metric", "demotion metric", "thresholding", "critical path", "page size"},
	}
	for _, tr := range policy.AllTraits() {
		sub := "No"
		if tr.SubpageTracking {
			sub = "Yes"
		}
		t.AddRow(tr.Name, tr.Mechanism, sub, tr.PromotionMetric, tr.DemotionMetric, tr.Thresholding, tr.CriticalPath, tr.PageSize)
	}
	return t
}

// Fig1Result summarises one DAMON configuration's run.
type Fig1Result struct {
	Config   string
	CPU      float64 // monitor CPU overhead (fraction of one core)
	Accuracy float64 // hot-decile agreement with ground truth
	Regions  int
}

// Fig1 reproduces the DAMON granularity/interval/accuracy trade-off on
// a 654.roms-like trace whose hot band drifts through the address space
// over time (the banded heat map of the paper's Figure 1): fine+fast is
// accurate but CPU-hungry; coarse regions blur space; long intervals
// blur time. Intervals are scaled with the simulation's virtual-time
// compression (~100x).
func Fig1(cfg Config) ([]Fig1Result, Table) {
	type dcfg struct {
		name     string
		interval uint64 // ns of virtual time
		minR     int
		maxR     int
	}
	// Paper: 5ms-10-1000, 500ms-10K-20K, 5ms-10K-20K. Intervals are
	// scaled 1/5 (and the 500ms config 1/12.5) so the sampled-page
	// checks retain paper-equivalent signal per aggregation window over
	// the compressed run (DESIGN.md §4).
	dcfgs := []dcfg{
		{"5ms-10-1000", 1_000_000, 10, 1000},
		{"500ms-10K-20K", 40_000_000, 10_000, 20_000},
		{"5ms-10K-20K", 1_000_000, 10_000, 20_000},
	}
	if cfg.Accesses < 3_000_000 {
		cfg.Accesses = 3_000_000 // the slow config needs enough run to aggregate
	}
	var out []Fig1Result
	t := Table{
		Title:  "Figure 1: DAMON configuration trade-off (654.roms-like drifting trace)",
		Header: []string{"config", "cpu_overhead", "heatmap_accuracy", "regions"},
	}
	const (
		pages     = 512 << 10 // 2GB footprint: regions must aggregate pages
		bandFrac  = 6         // hot band covers 1/6 of the space
		phases    = 8         // band drifts through 8 positions
		truthWins = 32
	)
	for _, dc := range dcfgs {
		mc := sim.Config{
			FastBytes: 700 << 20,
			CapBytes:  2200 << 20,
			CapKind:   cfg.CapKind,
			THP:       true,
			Seed:      cfg.Seed,
		}
		m := sim.NewMachine(mc, NewPolicy("static"))
		reg := m.Reserve(pages * tier.BasePageSize)
		mon := damon.NewMonitor(damon.Config{
			SampleIntervalNS: dc.interval,
			MinRegions:       dc.minR,
			MaxRegions:       dc.maxR,
			Seed:             cfg.Seed,
		}, reg.BaseVPN, reg.BaseVPN+reg.Pages)
		// Estimated run length for truth-window bucketing.
		estRunNS := cfg.Accesses * 110
		windowNS := estRunNS / truthWins
		windows := make([]map[uint64]uint64, truthWins+8)
		for i := range windows {
			windows[i] = make(map[uint64]uint64)
		}
		m.AccessObserver = func(vpn uint64, write bool, now uint64) {
			mon.Observe(vpn, now)
			if wi := int(now / windowNS); wi < len(windows) {
				windows[wi][vpn]++
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed + 3))
		band := uint64(pages / bandFrac)
		// Scattered hot singletons (fine stripes of the roms heat map):
		// invisible to coarse regions, stable over time.
		scattered := make([]uint64, pages/64)
		for i := range scattered {
			scattered[i] = rng.Uint64() % pages
		}
		zsc := rand.NewZipf(rng, 1.2, 1, uint64(len(scattered)-1))
		for i := uint64(0); m.Accesses() < cfg.Accesses; i++ {
			phase := (m.Accesses() * phases) / cfg.Accesses
			base := (phase * (pages - band)) / (phases - 1)
			var vpn uint64
			switch r := rng.Intn(100); {
			case r < 45:
				// Drifting band with an internal gradient: density
				// rises toward the band start, so fine-grained monitors
				// can rank inside the band while coarse regions blur
				// the gradient away.
				f := rng.Float64()
				vpn = reg.BaseVPN + base + uint64(float64(band)*f*f)
			case r < 80:
				vpn = reg.BaseVPN + scattered[zsc.Uint64()]
			default:
				vpn = reg.BaseVPN + rng.Uint64()%pages
			}
			m.Access(vpn, rng.Intn(4) == 0)
		}
		mon.Finish(m.Now())
		r := Fig1Result{
			Config:   dc.name,
			CPU:      mon.CPUOverhead(),
			Accuracy: damon.Accuracy(mon.Snapshots(), windows, windowNS),
			Regions:  mon.Regions(),
		}
		out = append(out, r)
		t.AddRow(r.Config, r.CPU, r.Accuracy, r.Regions)
	}
	return out, t
}

// Fig2Series is HeMem's classified hot-set size over time for one
// workload, against the fast tier size.
type Fig2Series struct {
	Workload  string
	FastBytes uint64
	Points    []sim.SeriesPoint
}

// Fig2 reproduces HeMem's static-threshold pathology: the classified
// hot set bears no relation to the fast-tier size (PageRank: far below;
// XSBench: transiently far above).
func Fig2(cfg Config) ([]Fig2Series, Table) {
	cfg.RecordNS = recordPeriod(cfg)
	var out []Fig2Series
	t := Table{
		Title:  "Figure 2: hot set identified by HeMem vs fast tier size",
		Header: []string{"workload", "fast_mb", "hot_min_mb", "hot_max_mb", "hot_final_mb"},
	}
	for _, wname := range []string{"pagerank", "xsbench"} {
		w := workload.MustNew(wname)
		mc := MachineFor(w.Spec(), Ratio1to2, "hemem", cfg)
		res := sim.Run(mc, NewPolicy("hemem"), w, cfg.Accesses)
		s := Fig2Series{Workload: wname, FastBytes: mc.FastBytes, Points: res.Series}
		out = append(out, s)
		minH, maxH := ^uint64(0), uint64(0)
		var final uint64
		for _, p := range res.Series {
			if p.HotBytes < minH {
				minH = p.HotBytes
			}
			if p.HotBytes > maxH {
				maxH = p.HotBytes
			}
			final = p.HotBytes
		}
		if minH == ^uint64(0) {
			minH = 0
		}
		t.AddRow(wname, mb(mc.FastBytes), mb(minH), mb(maxH), mb(final))
	}
	return out, t
}

// Fig3 reproduces the hotness-vs-utilization analysis (Liblinear vs
// Silo) from the subpage counters of a MEMTIS run with THP.
func Fig3(cfg Config) (map[string][]workload.UtilizationSample, Table) {
	out := make(map[string][]workload.UtilizationSample)
	t := Table{
		Title:  "Figure 3: huge page utilization of hot pages",
		Header: []string{"workload", "hot_pages", "median_hot_util", "mean_hot_util"},
	}
	for _, wname := range []string{"liblinear", "silo"} {
		w := workload.MustNew(wname)
		mc := MachineFor(w.Spec(), Ratio1to2, "memtis-ns", cfg)
		m := sim.NewMachine(mc, NewPolicy("memtis-ns"))
		w.Run(m, cfg.Accesses)
		samples := workload.CollectUtilization(m)
		out[wname] = samples
		hot := hotUtilizations(samples)
		t.AddRow(wname, len(hot), median(hot), mean(hot))
	}
	return out, t
}

// hotUtilizations selects the utilization of the hottest-quartile huge
// pages by rank (the dots that matter in Figure 3).
func hotUtilizations(samples []workload.UtilizationSample) []float64 {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]workload.UtilizationSample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].AccessCount > sorted[j].AccessCount })
	k := len(sorted) / 4
	if k < 1 {
		k = 1
	}
	out := make([]float64, 0, k)
	for _, s := range sorted[:k] {
		out = append(out, float64(s.Utilization))
	}
	return out
}

// Table2 reports the scaled benchmark characteristics: RSS and the
// measured ratio of huge pages after a full allocation pass.
func Table2(cfg Config) Table {
	t := Table{
		Title:  "Table 2: benchmark characteristics (scaled 1 paper-GB = 8MB)",
		Header: []string{"benchmark", "paper_rss_gb", "sim_rss_mb", "paper_rhp", "measured_rhp", "description"},
	}
	for _, spec := range workload.Specs() {
		w := workload.MustNew(spec.Name)
		mc := MachineFor(spec, Ratio1to2, "static", cfg)
		m := sim.NewMachine(mc, NewPolicy("static"))
		// Run enough accesses to allocate the full footprint.
		w.Run(m, spec.RSSBytes()/tier.BasePageSize*2)
		t.AddRow(spec.Name,
			fmt.Sprintf("%.1f", spec.PaperRSSGB),
			mb(m.AS.RSSBytes()),
			fmt.Sprintf("%.1f%%", spec.RHP*100),
			fmt.Sprintf("%.1f%%", workload.HugeAllocRatio(m)*100),
			spec.Description)
	}
	return t
}

// Table3 measures HeMem's over-allocation (fast-tier bytes taken by
// small allocations) per benchmark.
func Table3(cfg Config) (map[string]uint64, Table) {
	t := Table{
		Title:  "Table 3: over-allocation sizes of HeMem",
		Header: []string{"benchmark", "paper_mb", "paper_scaled_kb", "measured_kb"},
	}
	out := make(map[string]uint64)
	for _, spec := range workload.Specs() {
		w := workload.MustNew(spec.Name)
		mc := MachineFor(spec, Ratio1to2, "hemem+", cfg)
		pol := NewPolicy("hemem").(*policy.HeMem)
		m := sim.NewMachine(mc, pol)
		w.Run(m, spec.RSSBytes()/tier.BasePageSize*2)
		out[spec.Name] = pol.OverAllocBytes()
		scaled := spec.PaperOverAllocMB * workload.BytesPerPaperGB / 1024 / 1024
		t.AddRow(spec.Name, fmt.Sprintf("%.0f", spec.PaperOverAllocMB),
			fmt.Sprintf("%.0f", scaled), pol.OverAllocBytes()/1024)
	}
	return out, t
}

// OverheadResult is one §6.3.5 row.
type OverheadResult struct {
	Workload     string
	AvgCPU       float64
	FinalPeriod  uint64
	PerfDeltaPct float64 // slowdown vs sampling disabled
}

// Overhead reproduces §6.3.5: ksampled's CPU usage, its period
// adaptation per workload, and the end-to-end performance impact.
func Overhead(cfg Config) ([]OverheadResult, Table) {
	t := Table{
		Title:  "6.3.5: ksampled overhead",
		Header: []string{"workload", "avg_cpu_pct", "final_load_period", "perf_overhead_pct"},
	}
	var out []OverheadResult
	for _, spec := range workload.Specs() {
		w := workload.MustNew(spec.Name)
		mc := MachineFor(spec, Ratio1to8, "memtis", cfg)
		pol := memtis.New(memtis.Config{})
		res := sim.Run(mc, pol, w, cfg.Accesses)

		// Reference: identical run with near-free sampling, isolating
		// the tracking overhead itself.
		w2 := workload.MustNew(spec.Name)
		pol2 := memtis.New(memtis.Config{Sampler: pebs.Config{CostNS: 1}})
		res2 := sim.Run(mc, pol2, w2, cfg.Accesses)

		d := 0.0
		if res2.Throughput > 0 {
			d = (res2.Throughput - res.Throughput) / res2.Throughput * 100
		}
		r := OverheadResult{
			Workload:     spec.Name,
			AvgCPU:       pol.Sampler().AvgCPUUsage() * 100,
			FinalPeriod:  pol.Sampler().LoadPeriod(),
			PerfDeltaPct: d,
		}
		out = append(out, r)
		t.AddRow(r.Workload, r.AvgCPU, r.FinalPeriod, r.PerfDeltaPct)
	}
	return out, t
}

func mb(b uint64) string { return fmt.Sprintf("%.1f", float64(b)/(1<<20)) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	return c[len(c)/2]
}

// recordPeriod picks a series sampling period yielding ~120 points.
func recordPeriod(cfg Config) uint64 {
	// Virtual time per access averages ~150ns.
	total := cfg.Accesses * 150
	p := total / 120
	if p < 50_000 {
		p = 50_000
	}
	return p
}
