// Package trace records, replays and analyses memory access traces of
// simulated runs. Traces make experiments repeatable across policies
// (replay the exact same access stream under MEMTIS and every
// baseline), feed the heat-map analyses of the paper's §2, and let
// users bring their own captured workloads to the simulator.
//
// The on-disk format is deliberately simple and compact: a fixed header
// followed by one unsigned varint per access, encoding (vpn << 1 |
// write). A typical benchmark trace costs ~2 bytes per access.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Magic identifies a trace stream.
var Magic = [4]byte{'M', 'T', 'R', 'C'}

// Version of the trace format.
const Version = 1

// Record is one memory access.
type Record struct {
	VPN   uint64
	Write bool
}

// Writer streams records to an io.Writer.
type Writer struct {
	bw  *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	n   uint64
}

// NewWriter writes the header and returns a record writer. The caller
// must Flush before relying on the output.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(Version); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Add appends one access.
func (w *Writer) Add(vpn uint64, write bool) error {
	v := vpn << 1
	if write {
		v |= 1
	}
	n := binary.PutUvarint(w.buf[:], v)
	if _, err := w.bw.Write(w.buf[:n]); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams records from an io.Reader.
type Reader struct {
	br *bufio.Reader
}

// ErrBadHeader reports a stream that is not a trace.
var ErrBadHeader = errors.New("trace: bad header")

// NewReader validates the header and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, ErrBadHeader
	}
	if magic != Magic {
		return nil, ErrBadHeader
	}
	ver, err := br.ReadByte()
	if err != nil || ver != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	return &Reader{br: br}, nil
}

// Next returns the next record, or io.EOF at the end of the stream.
func (r *Reader) Next() (Record, error) {
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: corrupt record: %w", err)
	}
	return Record{VPN: v >> 1, Write: v&1 == 1}, nil
}

// ReadAll drains the reader into memory.
func ReadAll(r *Reader) ([]Record, error) {
	var out []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// LoadFile reads a whole trace file into memory.
func LoadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	recs, err := ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return recs, nil
}

// SaveFile writes records to a trace file, creating or truncating it.
func SaveFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := NewWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for _, rec := range recs {
		if err := w.Add(rec.VPN, rec.Write); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Stats summarises a trace.
type Stats struct {
	Accesses      uint64
	Writes        uint64
	DistinctPages uint64
	MinVPN        uint64
	MaxVPN        uint64
	// Top holds the hottest pages in descending access order.
	Top []PageCount
}

// PageCount pairs a page with its access count.
type PageCount struct {
	VPN   uint64
	Count uint64
}

// FootprintBytes returns the distinct-page footprint.
func (s Stats) FootprintBytes() uint64 { return s.DistinctPages * 4096 }

// Analyze computes summary statistics with the hottest topN pages.
func Analyze(recs []Record, topN int) Stats {
	s := Stats{MinVPN: ^uint64(0)}
	counts := make(map[uint64]uint64)
	for _, r := range recs {
		s.Accesses++
		if r.Write {
			s.Writes++
		}
		counts[r.VPN]++
		if r.VPN < s.MinVPN {
			s.MinVPN = r.VPN
		}
		if r.VPN > s.MaxVPN {
			s.MaxVPN = r.VPN
		}
	}
	s.DistinctPages = uint64(len(counts))
	if s.Accesses == 0 {
		s.MinVPN = 0
	}
	if topN > 0 {
		s.Top = make([]PageCount, 0, len(counts))
		for p, c := range counts {
			s.Top = append(s.Top, PageCount{p, c})
		}
		sort.Slice(s.Top, func(i, j int) bool {
			if s.Top[i].Count != s.Top[j].Count {
				return s.Top[i].Count > s.Top[j].Count
			}
			return s.Top[i].VPN < s.Top[j].VPN
		})
		if len(s.Top) > topN {
			s.Top = s.Top[:topN]
		}
	}
	return s
}

// Heatmap buckets a trace into a (time x space) access-count grid — the
// raw material of the paper's Figure 1 heat maps. Time is measured in
// access index (the trace carries no clock).
func Heatmap(recs []Record, timeBuckets, spaceBuckets int) [][]uint64 {
	if timeBuckets < 1 || spaceBuckets < 1 || len(recs) == 0 {
		return nil
	}
	st := Analyze(recs, 0)
	span := st.MaxVPN - st.MinVPN + 1
	grid := make([][]uint64, timeBuckets)
	for i := range grid {
		grid[i] = make([]uint64, spaceBuckets)
	}
	for i, r := range recs {
		tb := i * timeBuckets / len(recs)
		sb := int((r.VPN - st.MinVPN) * uint64(spaceBuckets) / span)
		if sb >= spaceBuckets {
			sb = spaceBuckets - 1
		}
		grid[tb][sb]++
	}
	return grid
}

// ReuseHistogram buckets the time (in accesses) between successive
// accesses to the same page into power-of-two bins; bin b counts reuse
// intervals in [2^b, 2^(b+1)). Cold first touches are not counted.
func ReuseHistogram(recs []Record, bins int) []uint64 {
	if bins < 1 {
		return nil
	}
	hist := make([]uint64, bins)
	last := make(map[uint64]int, 1024)
	for i, r := range recs {
		if prev, ok := last[r.VPN]; ok {
			d := i - prev
			b := 0
			for d > 1 && b < bins-1 {
				d >>= 1
				b++
			}
			hist[b]++
		}
		last[r.VPN] = i
	}
	return hist
}
