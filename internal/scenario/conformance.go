package scenario

import (
	"fmt"

	"memtis/internal/pebs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// maxViolations bounds what one probe records: a pathological run that
// violates a bound on every access must not buffer millions of strings.
const maxViolations = 32

// Probe wraps a policy with the cross-policy conformance contract (the
// same invariants as internal/policy's suite): critical-path stalls
// bounded by the fault-aware policy.MaxSyncStallNS, BackgroundNS
// monotonic, PlaceNew never targeting a tier that cannot hold the page
// (unless the policy declares CapPinnedPlacement), reported hot sets
// within RSS, and — via periodic vm.Audit — no page lost, leaked or
// double-mapped across aborted migrations. Violations are recorded,
// not panicked, and every message carries the scenario seed, so a fuzz
// failure is reproducible from the test log alone.
type Probe struct {
	inner sim.Policy
	m     *sim.Machine

	seed       uint64
	maxStall   uint64
	auditEvery uint64

	lastBG     uint64
	accesses   uint64
	violations []string
	dropped    int
}

// NewProbe wraps a policy for a scenario run derived from seed. The
// stall bound and audit cadence are derived from the fault plan: a
// faulting scenario gets the retry-aware bound and frequent audits.
func NewProbe(inner sim.Policy, seed uint64, fc tier.FaultConfig) *Probe {
	p := &Probe{
		inner:    inner,
		seed:     seed,
		maxStall: policy.MaxSyncStallNS(fc),
	}
	if fc.Enabled() {
		p.auditEvery = 4096
	} else {
		p.auditEvery = 16384
	}
	return p
}

// violatef records one violation, tagged with the scenario seed.
func (p *Probe) violatef(format string, args ...interface{}) {
	if len(p.violations) >= maxViolations {
		p.dropped++
		return
	}
	msg := fmt.Sprintf("scenario seed=%#x policy=%s: ", p.seed, p.inner.Name()) +
		fmt.Sprintf(format, args...)
	p.violations = append(p.violations, msg)
}

// Violations returns the recorded contract violations (empty for a
// conforming run). Call after the run and after FinalCheck.
func (p *Probe) Violations() []string {
	if p.dropped > 0 {
		return append(p.violations[:len(p.violations):len(p.violations)],
			fmt.Sprintf("scenario seed=%#x policy=%s: ... %d further violations dropped",
				p.seed, p.inner.Name(), p.dropped))
	}
	return p.violations
}

// Name implements sim.Policy.
func (p *Probe) Name() string { return p.inner.Name() }

// Attach implements sim.Policy.
func (p *Probe) Attach(m *sim.Machine) {
	p.m = m
	p.inner.Attach(m)
}

// PlaceNew implements sim.Policy, checking the full-tier contract.
func (p *Probe) PlaceNew(huge bool, vpn uint64) tier.ID {
	id := p.inner.PlaceNew(huge, vpn)
	if p.inner.Capabilities().Has(sim.CapPinnedPlacement) {
		return id
	}
	need := uint64(1)
	if huge {
		need = tier.SubPages
	}
	switch {
	case id == tier.NoTier:
	case id >= tier.FastTier && int(id) < p.m.Depth():
		if free := p.m.Tier(id).FreeFrames(); free < need {
			p.violatef("PlaceNew targeted the %s tier with %d free frames (need %d)", id, free, need)
		}
	default:
		p.violatef("PlaceNew returned unknown tier %v", id)
	}
	return id
}

// OnAccess implements sim.Policy, checking the stall bound and running
// the periodic address-space audit.
func (p *Probe) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	stall := p.inner.OnAccess(tr, vpn, write)
	if stall > p.maxStall {
		p.violatef("OnAccess stalled the app %d ns (bound %d)", stall, p.maxStall)
	}
	p.accesses++
	if p.accesses%1024 == 0 {
		p.check("OnAccess")
	}
	if p.accesses%p.auditEvery == 0 {
		if err := p.m.Audit(); err != nil {
			p.violatef("address-space audit after %d accesses: %v", p.accesses, err)
		}
	}
	return stall
}

// Tick implements sim.Policy.
func (p *Probe) Tick(now uint64) {
	p.inner.Tick(now)
	p.check("Tick")
}

// BackgroundNS implements sim.Policy.
func (p *Probe) BackgroundNS() uint64 { return p.inner.BackgroundNS() }

// BusyCores implements sim.Policy.
func (p *Probe) BusyCores() float64 { return p.inner.BusyCores() }

// Capabilities implements sim.Policy.
func (p *Probe) Capabilities() sim.Capability { return p.inner.Capabilities() }

// check asserts the monotonicity and hot-set invariants.
func (p *Probe) check(where string) {
	if bg := p.inner.BackgroundNS(); bg < p.lastBG {
		p.violatef("BackgroundNS went backwards in %s: %d -> %d", where, p.lastBG, bg)
	} else {
		p.lastBG = bg
	}
	if bc := p.inner.BusyCores(); bc < 0 {
		p.violatef("BusyCores = %v", bc)
	}
	if hr, ok := p.inner.(sim.HotSetReporter); ok {
		hot, warm, cold := hr.HotSet()
		rss := p.m.RSSBytes()
		// Slack for in-flight split/collapse histogram bookkeeping.
		const slack = 2 * tier.HugePageSize
		if hot > rss+slack || hot+warm+cold > rss+slack {
			p.violatef("hot set exceeds RSS in %s: hot=%d warm=%d cold=%d rss=%d",
				where, hot, warm, cold, rss)
		}
	}
}

// FinalCheck runs the end-of-run invariants: a last audit and
// monotonicity check, BusyCores below the machine's core count, and —
// for PEBS-sampled policies — the paper's ksampled CPU budget (§4.4,
// ~3% of one core; 2x slack covers the adjustment transient of short
// runs) plus the exported bg_share_mcores gauge (DESIGN.md §8).
func (p *Probe) FinalCheck() {
	p.check("final")
	if err := p.m.Audit(); err != nil {
		p.violatef("final address-space audit: %v", err)
	}
	cores := p.m.Cfg.Cores
	if bc := p.inner.BusyCores(); cores > 0 && bc >= float64(cores) {
		p.violatef("BusyCores %.2f >= machine cores %d", bc, cores)
	}
	if sp, ok := p.inner.(interface{ Sampler() *pebs.Sampler }); ok {
		// The budget is a steady-state property: the controller starts at
		// the paper's aggressive initial period and needs a few windows to
		// throttle, so a generated scenario short enough (in virtual time)
		// to end mid-transient is exempt — the average would measure the
		// documented convergence, not a violation.
		const minSamplerWindows = 16
		if s := sp.Sampler(); s.Adjustments() >= minSamplerWindows {
			if cpu := s.AvgCPUUsage(); cpu > 0.06 {
				p.violatef("sampler consumed %.1f%% of a core over %d windows, budget is 3%%",
					cpu*100, s.Adjustments())
			}
		}
		found := false
		for _, mt := range p.m.Counters().Snapshot() {
			if mt.Name == p.inner.Name()+"/bg_share_mcores" {
				found = true
			}
		}
		if !found {
			p.violatef("bg_share_mcores gauge missing from machine counters")
		}
	}
}

var _ sim.Policy = (*Probe)(nil)
