// Per-policy access benchmarks: every OnAccess implementation runs on
// the machine's hot loop, so each policy gets its own sub-benchmark.
// Comparing BenchmarkPolicyAccess/<name> against BenchmarkMachineAccess
// (internal/sim, no policy) isolates the policy's per-access overhead.
package bench

import (
	"math/rand"
	"testing"

	"memtis/internal/sim"
	"memtis/internal/tier"
)

// policyBenchMachine mirrors the internal/sim benchmark harness: a
// pre-faulted region under fast-tier pressure, Zipf probes precomputed
// so RNG cost stays out of the measured loop.
func policyBenchMachine(pol sim.Policy) (*sim.Machine, []uint64) {
	cfg := sim.Config{
		FastBytes: 16 << 20,
		CapBytes:  96 << 20,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      7,
	}
	m := sim.NewMachine(cfg, pol)
	r := m.Reserve(64 << 20)
	for vpn := r.BaseVPN; vpn < r.BaseVPN+r.Pages; vpn += tier.SubPages {
		m.Access(vpn, true)
	}
	rng := rand.New(rand.NewSource(11))
	z := rand.NewZipf(rng, 1.2, 1, r.Pages-1)
	vpns := make([]uint64, 1<<16)
	for i := range vpns {
		vpns[i] = r.BaseVPN + z.Uint64()
	}
	return m, vpns
}

func BenchmarkPolicyAccess(b *testing.B) {
	for _, name := range AllPolicies {
		b.Run(name, func(b *testing.B) {
			m, vpns := policyBenchMachine(NewPolicy(name))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Access(vpns[i&(len(vpns)-1)], i&7 == 0)
			}
		})
	}
}
