// Multi-tenant scheduler overhead benchmarks: the inline scheduler's
// slice dispatch, the per-access observer check and the veto layer all
// sit on the hot loop, so per-access cost at 64 and 1024 tenants is
// measured against the single-tenant run and gated in CI (64 tenants
// must stay within 2.3x of one).
//
// Gate history: the bound was 1.3x while the single-tenant access path
// cost ~52ns. The packed-pte page store cut the shared base cost to
// ~45ns without changing the tenant-specific overheads (64-tenant cost
// is cache-pressure-bound across 64 page tables and was ~60ns before
// and after), which widened the ratio to ~1.35x; the bound was
// recalibrated to 1.5x to keep the same absolute headroom over the
// scheduler overhead it actually guards. The inline scheduler and the
// specialised AccessBatch steady-state loop then cut single-tenant
// cost to ~20ns and 64-tenant cost to ~40ns — both sides got faster,
// but the denominator shrank by more (the batch fast path helps the
// single page table most, while the 64-tenant side stays bound by
// cache pressure across 64 page tables), widening the ratio to ~2.05x.
// Same recalibration logic as before: the absolute gap the gate guards
// (~20ns of multi-tenancy overhead, down from ~15ns x a 45ns base) is
// unchanged, so the bound moved to 2.3x rather than letting a ratio
// artifact of the faster baseline read as a scheduler regression.
package bench

import (
	"fmt"
	"testing"

	"memtis/internal/sim"
	"memtis/internal/tenant"
)

// benchTenantRun drives a flat n-tenant mix under memtis for exactly
// b.N accesses; machine construction (including the n address spaces)
// happens before the timer starts, scheduling and access cost inside.
func benchTenantRun(b *testing.B, n int) {
	tc, rss := TenantMix(TenantPoint{Tenants: n, Skew: "flat"}, tenantSweepBytes(n))
	tn, err := tenant.New(tc)
	if err != nil {
		b.Fatal(err)
	}
	m := sim.NewMachine(tenantMachine(rss, Ratio1to8, 7, 0), NewPolicy("memtis"))
	b.ReportAllocs()
	b.ResetTimer()
	tn.Run(m, uint64(b.N))
}

func BenchmarkTenantAccess(b *testing.B) {
	for _, n := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("tenants=%d", n), func(b *testing.B) {
			benchTenantRun(b, n)
		})
	}
}

// TestTenantAccessOverheadGate is the CI regression gate: per-access
// cost at 64 tenants within 2.3x of single-tenant. Best-of-three on
// each side defends against scheduler noise; the budget is fixed so
// both sides amortise machine setup identically.
func TestTenantAccessOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark gate")
	}
	measure := func(n int) float64 {
		const budget = 2_000_000
		best := 0.0
		for i := 0; i < 3; i++ {
			r := testing.Benchmark(func(b *testing.B) {
				tc, rss := TenantMix(TenantPoint{Tenants: n, Skew: "flat"}, tenantSweepBytes(n))
				tn, err := tenant.New(tc)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < b.N; j++ {
					b.StopTimer()
					m := sim.NewMachine(tenantMachine(rss, Ratio1to8, 7, 0), NewPolicy("memtis"))
					b.StartTimer()
					tn.Run(m, budget)
				}
			})
			ns := float64(r.T.Nanoseconds()) / (float64(r.N) * budget)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	one := measure(1)
	many := measure(64)
	t.Logf("per-access: 1 tenant %.1fns, 64 tenants %.1fns (%.2fx)", one, many, many/one)
	if many > one*2.3 {
		t.Fatalf("64-tenant per-access cost %.1fns is %.2fx single-tenant (%.1fns); gate is 2.3x",
			many, many/one, one)
	}
}
