// Package policy implements the six state-of-the-art tiering systems the
// paper evaluates MEMTIS against (§6.1): AutoNUMA, AutoTiering,
// Tiering-0.8, TPP, Nimble and HeMem, plus a no-migration Static
// reference. Each baseline reproduces the tracking mechanism, hotness
// metric, thresholding and migration path summarised in the paper's
// Table 1, using the same simulator substrate as MEMTIS so that
// differences in outcome stem from policy, not plumbing.
package policy

import (
	"memtis/internal/obs"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// Page flag bits shared by the baselines (one policy owns a machine's
// pages at a time, so reuse across policies is safe).
const (
	flagArmed    = 1 << iota // hint fault armed (page unmapped for tracking)
	flagAccessed             // accessed bit since last scan
	flagQueued               // on some policy list
)

// Cost model for tracking mechanisms (ns): measured Linux costs, not
// scaled — fault-based tracking pays its real critical-path price per
// event, and the *rate* of hint-fault arming is what kernels bound
// (AutoNUMA scans a fixed window per period), which the Rearmer models.
const (
	HintFaultNS = 1_200 // minor NUMA-hint fault servicing
	ScanPageNS  = 150   // one PTE unmap/check (incl. amortised shootdown)
	SyncExtraNS = 2_000 // extra critical-path bookkeeping for in-fault migration
)

// AdmissionFunc vetoes a migration before any copy work is charged.
// pg is the page about to move, dst its destination and sync whether
// the move is on the application's critical path. Returning false
// rejects the migration (counted under migrate_*_rejected_admission).
type AdmissionFunc func(pg *vm.Page, dst tier.ID, sync bool) bool

// Base carries the plumbing every baseline shares: machine binding, a
// page registry in fault order, and background CPU accounting.
type Base struct {
	M    *sim.Machine
	BgNS uint64

	// Admit, when set, overrides the default admission control applied
	// by MigrateSync/MigrateAsync. The default admits everything except
	// async migrations during bandwidth-throttle windows (copying at
	// 1/Nth speed wastes daemon budget on work that gets cheaper when
	// the window closes); sync migrations always pass because the
	// faulting thread is already stalled.
	Admit AdmissionFunc

	Registry []*vm.Page

	// Critical-path migration rate limiting, modelling the kernel's
	// numa_balancing rate limit (~256MB/s). Token bucket refilled by
	// virtual time.
	rateInit   bool
	rateLastNS uint64
	rateTokens float64

	mc *migCounters

	ag     *AdmissionGate
	agInit bool
}

// migCounters are the migration admission/rejection counters every
// baseline reports through the shared MigrateSync/MigrateAsync choke
// points (TierBPF's key diagnostic signal: how much migration the
// policy *wanted* vs. what the rate limiter and tier capacity let
// through). Cells live in the machine registry under the policy's
// name.
type migCounters struct {
	syncPages     *uint64
	syncBytes     *uint64
	syncRejRate   *uint64 // rejected by the 256MB/s token bucket
	syncRejSpace  *uint64 // rejected because the destination tier is full
	asyncPages    *uint64
	asyncBytes    *uint64
	asyncRej      *uint64
	retries       *uint64 // aborted copies retried by the transaction loop
	syncRejFault  *uint64 // sync migrations that exhausted their retries
	asyncRejFault *uint64 // async migrations that exhausted their retries
	syncRejAdm    *uint64 // sync migrations vetoed by admission control
	asyncRejAdm   *uint64 // async migrations vetoed by admission control
}

// Counters returns the policy-namespaced metric group (prefix =
// b.M.Pol.Name()). Valid after Attach.
func (b *Base) Counters() obs.Group {
	return b.M.Counters().Group(b.M.Pol.Name())
}

// Trace returns the machine's tracer; emitting on it is always safe
// (nil when tracing is disabled).
func (b *Base) Trace() *obs.Tracer { return b.M.Cfg.Trace }

// mig lazily binds the shared migration counters. Lazy because Attach
// is often shadowed by the embedding policy, and because b.M.Pol (the
// namespace) is only set once the machine is constructed.
func (b *Base) mig() *migCounters {
	if b.mc == nil {
		g := b.Counters()
		b.mc = &migCounters{
			syncPages:     g.Counter("migrate_sync_pages"),
			syncBytes:     g.Counter("migrate_sync_bytes"),
			syncRejRate:   g.Counter("migrate_sync_rejected_rate"),
			syncRejSpace:  g.Counter("migrate_sync_rejected_space"),
			asyncPages:    g.Counter("migrate_async_pages"),
			asyncBytes:    g.Counter("migrate_async_bytes"),
			asyncRej:      g.Counter("migrate_async_rejected"),
			retries:       g.Counter("migrate_retries"),
			syncRejFault:  g.Counter("migrate_sync_rejected_fault"),
			asyncRejFault: g.Counter("migrate_async_rejected_fault"),
			syncRejAdm:    g.Counter("migrate_sync_rejected_admission"),
			asyncRejAdm:   g.Counter("migrate_async_rejected_admission"),
		}
	}
	return b.mc
}

// syncRateBPS is the critical-path migration budget in bytes/second.
const syncRateBPS = 256 << 20

// allowSync consumes rate-limit tokens for a critical-path migration,
// returning false when the budget is exhausted.
func (b *Base) allowSync(bytes uint64) bool {
	now := b.M.Now()
	if !b.rateInit {
		b.rateInit = true
		b.rateLastNS = now
		b.rateTokens = 4 << 20
	}
	b.rateTokens += float64(now-b.rateLastNS) / 1e9 * syncRateBPS
	if max := float64(32 << 20); b.rateTokens > max {
		b.rateTokens = max
	}
	b.rateLastNS = now
	if b.rateTokens < float64(bytes) {
		return false
	}
	b.rateTokens -= float64(bytes)
	return true
}

// Attach implements part of sim.Policy.
func (b *Base) Attach(m *sim.Machine) { b.M = m }

// BackgroundNS implements part of sim.Policy.
func (b *Base) BackgroundNS() uint64 { return b.BgNS }

// BusyCores implements part of sim.Policy.
func (b *Base) BusyCores() float64 { return 0 }

// Capabilities implements part of sim.Policy: baselines declare no
// contract deviations. Policies that deviate (the pinning references)
// override this — see the sim.Capability constants for the contract.
func (b *Base) Capabilities() sim.Capability { return 0 }

// PlaceNew implements part of sim.Policy: default fast-first placement.
func (b *Base) PlaceNew(huge bool, vpn uint64) tier.ID { return tier.NoTier }

// Register records a newly faulted page in the policy registry.
func (b *Base) Register(pg *vm.Page) {
	b.Registry = append(b.Registry, pg)
}

// Compact drops dead pages from the registry (amortised).
func (b *Base) Compact() {
	live := b.Registry[:0]
	for _, pg := range b.Registry {
		if !pg.Dead() {
			live = append(live, pg)
		}
	}
	b.Registry = live
}

// Gate lazily binds the machine's admission gate (nil when the machine
// has no tier.Admission configured). Lazy for the same reason mig() is:
// b.M is only set once the machine is constructed.
func (b *Base) Gate() *AdmissionGate {
	if !b.agInit {
		b.agInit = true
		b.ag = NewAdmissionGate(b.M)
	}
	return b.ag
}

// admit applies admission control, in precedence order: the caller's
// Admit hook when set, then the machine's configured tier.Admission
// policy through the gate, then the default described on the Admit
// field (deny async during throttle windows).
func (b *Base) admit(pg *vm.Page, dst tier.ID, sync bool) bool {
	if b.Admit != nil {
		return b.Admit(pg, dst, sync)
	}
	if g := b.Gate(); g.Installed() {
		return g.Allow(pg, dst, sync)
	}
	if !sync && b.M.Faults().ThrottleActive(b.M.Now()) {
		return false
	}
	return true
}

// migrateTx drives one transactional migration, retrying aborted
// copies up to the fault plan's bound with exponential virtual-time
// backoff. The returned ns includes wasted copy work and backoff for
// every aborted attempt — with faults disabled aborts never occur and
// the cost equals the plain migration cost. The final status is
// MigrateAborted only after the retry budget is exhausted.
func (b *Base) migrateTx(pg *vm.Page, dst tier.ID) (uint64, vm.MigrateStatus) {
	fp := b.M.Faults()
	var total uint64
	for attempt := 0; ; attempt++ {
		ns, st := b.M.AS.MigrateTx(pg, dst)
		total += ns
		if st != vm.MigrateAborted || attempt >= fp.MaxRetries() {
			return total, st
		}
		total += fp.RetryBackoffNS(attempt)
		*b.mig().retries++
		b.Trace().Emit(obs.EvMigrateRetry, pg.VPN, pg.IsHuge(), pg.Bytes(), uint64(attempt+1))
	}
}

// MigrateSync migrates on the critical path and returns the stall the
// application experiences (used by fault-handler promotion paths).
// Subject to admission control and the kernel-style migration rate
// limit. On a fault-aborted migration ok is false but the returned ns
// is the wasted copy and backoff time — the faulting thread stalled
// for that work even though the page never moved.
func (b *Base) MigrateSync(pg *vm.Page, dst tier.ID) (uint64, bool) {
	mc := b.mig()
	if !b.admit(pg, dst, true) {
		*mc.syncRejAdm++
		return 0, false
	}
	if !b.allowSync(pg.Bytes()) {
		*mc.syncRejRate++
		return 0, false
	}
	ns, st := b.migrateTx(pg, dst)
	switch st {
	case vm.MigrateNoSpace:
		*mc.syncRejSpace++
		return 0, false
	case vm.MigrateAborted:
		*mc.syncRejFault++
		return ns, false
	case vm.MigrateDenied:
		// The QoS arbiter vetoed the move below the policy — same
		// observable outcome as a rejected admission hook.
		*mc.syncRejAdm++
		return 0, false
	}
	*mc.syncPages += pg.Units()
	*mc.syncBytes += pg.Bytes()
	return ns + SyncExtraNS, true
}

// MigrateAsync migrates in the background, charging the daemon budget
// — including the wasted copies of aborted attempts. When the machine
// runs a background mover the migration is enqueued there instead of
// executing inline: the copy then happens later, against the mover's
// bandwidth budget, and true means "accepted", not "moved". A full
// mover queue falls back to the inline path so policies keep making
// progress under backpressure.
func (b *Base) MigrateAsync(pg *vm.Page, dst tier.ID) bool {
	mc := b.mig()
	if !b.admit(pg, dst, false) {
		*mc.asyncRejAdm++
		return false
	}
	if mv := b.M.Mover(); mv.Enabled() && mv.Enqueue(b.M.AS, pg, dst) {
		*mc.asyncPages += pg.Units()
		*mc.asyncBytes += pg.Bytes()
		return true
	}
	ns, st := b.migrateTx(pg, dst)
	b.BgNS += ns
	if st != vm.MigrateOK {
		*mc.asyncRej++
		switch st {
		case vm.MigrateAborted:
			*mc.asyncRejFault++
		case vm.MigrateDenied:
			*mc.asyncRejAdm++
		}
		return false
	}
	*mc.asyncPages += pg.Units()
	*mc.asyncBytes += pg.Bytes()
	return true
}

// FastReserveFrames converts a fraction of the fast tier into frames.
func (b *Base) FastReserveFrames(frac float64) uint64 {
	return uint64(float64(b.M.Fast.CapacityFrames()) * frac)
}

// HeadroomFrames is FastReserveFrames with a floor of two huge frames
// (capped at a quarter of the tier), so that policies keeping
// allocation head-room can actually absorb a 2MB THP fault — kernel
// watermarks are absolute, not purely proportional.
func (b *Base) HeadroomFrames(frac float64) uint64 {
	f := b.FastReserveFrames(frac)
	floor := uint64(2 * tier.SubPages)
	if cap4 := b.M.Fast.CapacityFrames() / 4; floor > cap4 {
		floor = cap4
	}
	if f < floor {
		f = floor
	}
	return f
}

// Rearmer re-arms hint faults round-robin over the registry at a fixed
// page rate, modelling AutoNUMA-style rate-limited VA-space scanning
// (the kernel unmaps a bounded window per scan period, not the whole
// address space).
type Rearmer struct {
	RatePerSec float64 // pages armed per second of virtual time
	idx        int
	lastNS     uint64
	carry      float64
	// SweepEpoch increments each time the round-robin wraps, letting
	// policies age per-sweep state (history vectors).
	SweepEpoch uint64
}

// Advance re-arms the next slice of pages proportional to elapsed time.
// The caller charges scan costs; Advance returns pages re-armed.
func (r *Rearmer) Advance(b *Base, now uint64) int {
	if r.RatePerSec == 0 {
		r.RatePerSec = 250_000
	}
	if r.lastNS == 0 || len(b.Registry) == 0 {
		r.lastNS = now
		return 0
	}
	elapsed := now - r.lastNS
	r.lastNS = now
	// The rate budget is in 4KB units: unmapping a huge page's PMD
	// covers 512 base pages' worth of scan window, exactly like the
	// kernel's scan-size accounting.
	r.carry += float64(elapsed) * r.RatePerSec / 1e9
	armed := 0
	guard := len(b.Registry) // at most one full sweep per call
	for r.carry >= 1 && guard > 0 {
		if r.idx >= len(b.Registry) {
			r.idx = 0
			r.SweepEpoch++
			b.Compact()
			if len(b.Registry) == 0 {
				return armed
			}
		}
		pg := b.Registry[r.idx]
		r.idx++
		guard--
		if pg.Dead() {
			continue
		}
		pg.PFlags |= flagArmed
		r.carry -= float64(pg.Units())
		armed++
	}
	if r.carry > 0 && guard == 0 {
		r.carry = 0
	}
	return armed
}
