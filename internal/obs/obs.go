// Package obs is the simulator's observability layer: a typed event
// stream and a counter/gauge registry, both designed to cost nothing
// when disabled.
//
// Events are emitted from the rare paths of the machine model (demand
// faults, migrations, splits, collapses, shootdowns, cooling, sampler
// adjustments) — never from the per-access hot path — and are stamped
// with the machine's *virtual* clock, so a fixed-seed run produces a
// byte-identical trace regardless of wall-clock scheduling or worker
// count. A nil *Tracer is valid and every method on it is a no-op, so
// emit sites need no guards.
//
// Counters and gauges are plain uint64 cells handed out by a Registry;
// the machine is single-threaded, so no atomics are involved. Policies
// namespace their metrics under their Name() via Registry.Group.
package obs

// Kind enumerates the event taxonomy (see DESIGN.md §5 for the meaning
// of each event's Aux payload).
type Kind uint8

const (
	// EvDemandFault: first touch mapped a page. Aux = fault cost (ns).
	EvDemandFault Kind = iota
	// EvPromotion: a page migrated into the fast tier.
	EvPromotion
	// EvDemotion: a page migrated out of the fast tier.
	EvDemotion
	// EvSplit: a huge page was splintered. Aux = subpage frames
	// reclaimed as bloat.
	EvSplit
	// EvCollapse: 512 base pages coalesced into a huge page.
	EvCollapse
	// EvShootdown: a TLB shootdown broadcast by migration, split or
	// collapse (VM-level accounting; one per remap operation).
	EvShootdown
	// EvTLBInvalidate: one translation dropped from the TLB model.
	EvTLBInvalidate
	// EvTLBFlush: both sub-TLBs emptied.
	EvTLBFlush
	// EvCooling: a policy halved its access counters. Cooling is lazy
	// (counters settle when pages are next touched or swept), so the
	// event marks the epoch advance, not a scan; Aux = the new cooling
	// epoch.
	EvCooling
	// EvAdapt: hot/warm thresholds re-derived (Algorithm 1).
	// Aux = hot<<8 | warm (histogram bin indices).
	EvAdapt
	// EvSamplerAdjust: the PEBS period controller changed the load
	// period. Aux = new period.
	EvSamplerAdjust
	// EvSamplerOverflow: the controller wanted to throttle further but
	// the period is pinned at MaxPeriod. Aux = period.
	EvSamplerOverflow
	// EvMigrateAbort: a migration transaction's copy phase faulted and
	// the transaction rolled back (the page keeps its source mapping).
	// Aux = the charged cost of the wasted copy (ns).
	EvMigrateAbort
	// EvMigrateRetry: a migration helper is retrying an aborted
	// transaction after backoff. Aux = 1-based retry attempt number.
	EvMigrateRetry
	// EvFaultWindow: the fault plan entered an injection window.
	// Aux = window kind (tier.ThrottleWindow or tier.StallWindow).
	EvFaultWindow
	// EvTenantSpawn: a tenant process started. VPN = tenant index
	// (its workload reserves memory once first scheduled).
	EvTenantSpawn
	// EvTenantExit: a tenant process exited and its address space was
	// freed. VPN = tenant index, Bytes = resident bytes released.
	EvTenantExit
	// EvTenantSwitch: the tenant scheduler switched the running
	// tenant. VPN = tenant index, Aux = accesses granted in the slice.
	EvTenantSwitch

	numKinds
)

var kindNames = [numKinds]string{
	EvDemandFault:     "fault",
	EvPromotion:       "promotion",
	EvDemotion:        "demotion",
	EvSplit:           "split",
	EvCollapse:        "collapse",
	EvShootdown:       "shootdown",
	EvTLBInvalidate:   "tlb_invalidate",
	EvTLBFlush:        "tlb_flush",
	EvCooling:         "cooling",
	EvAdapt:           "adapt",
	EvSamplerAdjust:   "sampler_adjust",
	EvSamplerOverflow: "sampler_overflow",
	EvMigrateAbort:    "migrate_abort",
	EvMigrateRetry:    "migrate_retry",
	EvFaultWindow:     "fault_window",
	EvTenantSpawn:     "tenant_spawn",
	EvTenantExit:      "tenant_exit",
	EvTenantSwitch:    "tenant_switch",
}

// String returns the stable wire name of the kind (used in JSONL).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString resolves a wire name back to its Kind.
func KindFromString(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Kinds returns every defined kind, in wire order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// Event is one observation. TimeNS is the machine's virtual clock at
// emission; VPN is the base-page number of the page involved (0 when
// the event is not page-scoped); Bytes is the payload moved or mapped;
// Aux carries kind-specific detail (see the Kind constants).
type Event struct {
	TimeNS uint64
	Kind   Kind
	VPN    uint64
	Huge   bool
	Bytes  uint64
	Aux    uint64
}

// Sink receives emitted events. Sinks are called synchronously from
// the single-threaded machine; they must not retain the event past the
// call unless they copy it (Event is a value type, so assignment
// copies).
type Sink interface {
	Emit(Event)
}

// Tracer stamps events with the bound virtual clock and forwards them
// to its sink. The zero cost of disabled tracing is structural: emit
// sites live only on rare paths, and a nil *Tracer short-circuits in
// the first instruction of Emit.
//
// A Tracer belongs to exactly one machine: the machine binds its clock
// at construction. Matrix runners must create one tracer per cell.
type Tracer struct {
	sink  Sink
	clock func() uint64
}

// NewTracer builds a tracer over sink. The clock reads zero until a
// machine binds its own via BindClock.
func NewTracer(sink Sink) *Tracer {
	return &Tracer{sink: sink}
}

// BindClock installs the virtual-time source (called by sim.NewMachine;
// a later bind replaces an earlier one, so a tracer must not be shared
// between machines).
func (t *Tracer) BindClock(clock func() uint64) {
	if t != nil {
		t.clock = clock
	}
}

// Emit forwards one event, stamped with the current virtual time.
// Safe on a nil receiver (no-op).
func (t *Tracer) Emit(k Kind, vpn uint64, huge bool, bytes, aux uint64) {
	if t == nil || t.sink == nil {
		return
	}
	var now uint64
	if t.clock != nil {
		now = t.clock()
	}
	t.sink.Emit(Event{TimeNS: now, Kind: k, VPN: vpn, Huge: huge, Bytes: bytes, Aux: aux})
}
