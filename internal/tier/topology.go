package tier

import (
	"fmt"
	"strconv"
	"strings"
)

// This file is the declarative topology of the simulated memory
// hierarchy: an ordered chain of tiers (index 0 is the fastest, the
// last is the deepest capacity tier) joined by hops that carry the
// migration cost model between adjacent tiers. The topology only
// *describes* — vm.AddressSpace charges per-hop migration costs from
// it, sim.Machine builds its tier set and latency tables from it, and
// policies ask it which tier sits above or below a page — so the whole
// hierarchy stays pure configuration: a fixed spec always builds the
// same machine, and the default two-tier topology is byte-for-byte the
// fast/capacity pair the simulator has always modelled (DESIGN.md §11).

// MaxTiers bounds topology depth. IDs are small signed integers and the
// sweep matrices enumerate depth, so the bound is deliberately tight.
const MaxTiers = 8

// Default per-hop migration copy costs in nanoseconds. These mirror the
// historical flat migration charges of the two-tier VM (vm.MigrateBaseNS
// and vm.MigrateHugeNS), so a default hop costs exactly what a two-tier
// migration always has.
const (
	DefaultHopBaseNS = 3_000
	DefaultHopHugeNS = 250_000
	// DefaultHopBandwidthBPS is the default migration bandwidth of one
	// hop (8 GiB/s, the paper's inter-tier copy bandwidth ballpark).
	DefaultHopBandwidthBPS = 8 << 30
)

// Validation bounds for topology fields; specs beyond these are almost
// certainly typos and would make virtual-time arithmetic meaningless.
const (
	// MaxLatencyNS bounds per-access tier latency (1ms).
	MaxLatencyNS = 1_000_000
	// MaxHopCostNS bounds one hop's per-page migration cost (1s).
	MaxHopCostNS = 1_000_000_000
	// MaxTierBytes bounds one tier's capacity (1 PiB).
	MaxTierBytes = 1 << 50
	// MaxBandwidthBPS bounds hop migration bandwidth (1 TiB/s).
	MaxBandwidthBPS = 1 << 40
)

// HopConfig describes the migration link between two adjacent tiers
// (hop i joins tier i and tier i+1). Zero fields take the defaults
// above, so the zero HopConfig is the historical two-tier cost model.
type HopConfig struct {
	// BandwidthBPS is the migration bandwidth of the hop in bytes per
	// second; the background mover derives its per-window budget from
	// the narrowest hop when not configured explicitly.
	BandwidthBPS uint64
	// BaseCostNS is the copy cost of migrating one 4KB page across the
	// hop (0 = DefaultHopBaseNS).
	BaseCostNS uint64
	// HugeCostNS is the copy cost of migrating one 2MB page across the
	// hop (0 = DefaultHopHugeNS).
	HugeCostNS uint64
}

func (h *HopConfig) fillDefaults() {
	if h.BandwidthBPS == 0 {
		h.BandwidthBPS = DefaultHopBandwidthBPS
	}
	if h.BaseCostNS == 0 {
		h.BaseCostNS = DefaultHopBaseNS
	}
	if h.HugeCostNS == 0 {
		h.HugeCostNS = DefaultHopHugeNS
	}
}

// Topology is an ordered chain of memory tiers and the hops between
// them. Tiers[0] is the fast tier; Tiers[len-1] is the deepest capacity
// tier. Hops[i] joins Tiers[i] and Tiers[i+1] and must have exactly
// len(Tiers)-1 entries (or be nil for all-default hops).
type Topology struct {
	Tiers []Config
	Hops  []HopConfig
}

// Depth returns the number of tiers in the chain.
func (t *Topology) Depth() int { return len(t.Tiers) }

// Validate rejects topologies the simulator cannot build: wrong depth,
// hop-count mismatch, sub-huge-page tiers, or fields beyond the
// documented bounds. Zero latency/cost/bandwidth fields are legal
// ("use the default") and not checked here.
func (t *Topology) Validate() error {
	if len(t.Tiers) < 2 || len(t.Tiers) > MaxTiers {
		return fmt.Errorf("tier: topology depth %d outside [2,%d]", len(t.Tiers), MaxTiers)
	}
	if t.Hops != nil && len(t.Hops) != len(t.Tiers)-1 {
		return fmt.Errorf("tier: topology has %d tiers but %d hops (want %d)",
			len(t.Tiers), len(t.Hops), len(t.Tiers)-1)
	}
	for i, tc := range t.Tiers {
		if tc.Kind < DRAM || tc.Kind > Far {
			return fmt.Errorf("tier: tier %d has unknown kind %d", i, int(tc.Kind))
		}
		if tc.Bytes < HugePageSize {
			return fmt.Errorf("tier: tier %d capacity %d below one huge page", i, tc.Bytes)
		}
		if tc.Bytes > MaxTierBytes {
			return fmt.Errorf("tier: tier %d capacity %d exceeds %d", i, tc.Bytes, uint64(MaxTierBytes))
		}
		if tc.LoadNS > MaxLatencyNS || tc.StoreNS > MaxLatencyNS {
			return fmt.Errorf("tier: tier %d latency %d/%d exceeds %dns",
				i, tc.LoadNS, tc.StoreNS, uint64(MaxLatencyNS))
		}
		if (tc.LoadNS == 0) != (tc.StoreNS == 0) {
			return fmt.Errorf("tier: tier %d sets only one of load/store latency", i)
		}
	}
	for i, h := range t.Hops {
		if h.BandwidthBPS > MaxBandwidthBPS {
			return fmt.Errorf("tier: hop %d bandwidth %d exceeds %d", i, h.BandwidthBPS, uint64(MaxBandwidthBPS))
		}
		if h.BaseCostNS > MaxHopCostNS || h.HugeCostNS > MaxHopCostNS {
			return fmt.Errorf("tier: hop %d cost %d/%d exceeds %dns",
				i, h.BaseCostNS, h.HugeCostNS, uint64(MaxHopCostNS))
		}
	}
	return nil
}

// DefaultTopology is the historical two-tier machine: a DRAM fast tier
// over one capacity tier of the given kind, joined by a default hop.
func DefaultTopology(fastBytes, capBytes uint64, capKind Kind) *Topology {
	return &Topology{
		Tiers: []Config{
			{Name: "DRAM", Kind: DRAM, Bytes: fastBytes},
			{Name: capKind.String(), Kind: capKind, Bytes: capBytes},
		},
	}
}

// Build validates the topology and constructs its tiers in chain order.
func (t *Topology) Build() ([]*Tier, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	tiers := make([]*Tier, len(t.Tiers))
	for i, tc := range t.Tiers {
		tr, err := New(tc)
		if err != nil {
			return nil, err
		}
		tiers[i] = tr
	}
	return tiers, nil
}

// hops returns the default-filled hop table (length Depth()-1),
// materialising nil Hops as all-default.
func (t *Topology) hops() []HopConfig {
	out := make([]HopConfig, len(t.Tiers)-1)
	copy(out, t.Hops)
	for i := range out {
		out[i].fillDefaults()
	}
	return out
}

// HopCosts returns the per-hop migration copy costs of the chain as two
// tables of length Depth()-1: base-page and huge-page cost per hop,
// default-filled. Migrating between non-adjacent tiers crosses every
// hop in between and pays the sum.
func (t *Topology) HopCosts() (baseNS, hugeNS []uint64) {
	hs := t.hops()
	baseNS = make([]uint64, len(hs))
	hugeNS = make([]uint64, len(hs))
	for i, h := range hs {
		baseNS[i] = h.BaseCostNS
		hugeNS[i] = h.HugeCostNS
	}
	return baseNS, hugeNS
}

// MinHopBandwidthBPS returns the narrowest hop's migration bandwidth,
// the bottleneck the background mover budgets against by default.
func (t *Topology) MinHopBandwidthBPS() uint64 {
	min := uint64(0)
	for _, h := range t.hops() {
		if min == 0 || h.BandwidthBPS < min {
			min = h.BandwidthBPS
		}
	}
	if min == 0 {
		min = DefaultHopBandwidthBPS
	}
	return min
}

// kindNames maps spec tokens to kinds; keep in sync with Kind.
var kindNames = map[string]Kind{
	"dram": DRAM,
	"nvm":  NVM,
	"cxl":  CXL,
	"far":  Far,
}

func kindToken(k Kind) string {
	switch k {
	case DRAM:
		return "dram"
	case NVM:
		return "nvm"
	case CXL:
		return "cxl"
	case Far:
		return "far"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// ParseTopologySpec decodes the CLI topology specification: tier
// clauses joined by ">" (fast tier first), each
//
//	KIND:BYTES[:LOAD/STORE]
//
// where KIND is dram, cxl, nvm or far, BYTES takes k/m/g/t binary
// suffixes, and LOAD/STORE are per-access latencies with ns/us/ms/s
// suffixes (omitted: the kind's default profile). A hop attribute block
// may follow any ">" separator:
//
//	>[bw=BYTES,base=DUR,huge=DUR]
//
// setting the hop's migration bandwidth (bytes/second) and per-page
// copy costs; omitted attributes keep the defaults, which reproduce the
// historical two-tier migration charges. Example:
//
//	dram:256m>[bw=16g]cxl:1g>nvm:4g:300ns/400ns
//
// The empty string is an error; use a nil *Topology for "default".
func ParseTopologySpec(s string) (*Topology, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("tier: empty topology spec")
	}
	var t Topology
	parts := strings.Split(s, ">")
	t.Hops = make([]HopConfig, 0, len(parts)-1)
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if i > 0 {
			var h HopConfig
			if strings.HasPrefix(part, "[") {
				end := strings.Index(part, "]")
				if end < 0 {
					return nil, fmt.Errorf("tier: topology hop block %q is not terminated", part)
				}
				if err := parseHopAttrs(part[1:end], &h); err != nil {
					return nil, err
				}
				part = strings.TrimSpace(part[end+1:])
			}
			t.Hops = append(t.Hops, h)
		}
		tc, err := parseTierClause(part)
		if err != nil {
			return nil, err
		}
		t.Tiers = append(t.Tiers, tc)
	}
	if allZeroHops(t.Hops) {
		t.Hops = nil
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

func allZeroHops(hs []HopConfig) bool {
	for _, h := range hs {
		if h != (HopConfig{}) {
			return false
		}
	}
	return true
}

func parseTierClause(s string) (Config, error) {
	var c Config
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return c, fmt.Errorf("tier: topology clause %q is not KIND:BYTES[:LOAD/STORE]", s)
	}
	k, ok := kindNames[parts[0]]
	if !ok {
		return c, fmt.Errorf("tier: unknown tier kind %q (want dram, cxl, nvm or far)", parts[0])
	}
	c.Kind = k
	b, err := parseBytes(parts[1])
	if err != nil {
		return c, fmt.Errorf("tier: topology clause %q: %w", s, err)
	}
	c.Bytes = b
	if len(parts) == 3 {
		l, st, ok := strings.Cut(parts[2], "/")
		if !ok {
			return c, fmt.Errorf("tier: topology latency %q is not LOAD/STORE", parts[2])
		}
		if c.LoadNS, err = parseDuration(l); err != nil {
			return c, fmt.Errorf("tier: topology clause %q: %w", s, err)
		}
		if c.StoreNS, err = parseDuration(st); err != nil {
			return c, fmt.Errorf("tier: topology clause %q: %w", s, err)
		}
		if c.LoadNS == 0 || c.StoreNS == 0 {
			return c, fmt.Errorf("tier: topology clause %q: explicit latency must be positive", s)
		}
	}
	return c, nil
}

func parseHopAttrs(s string, h *HopConfig) error {
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("tier: topology hop attribute %q is not key=value", clause)
		}
		var err error
		switch key {
		case "bw":
			h.BandwidthBPS, err = parseBytes(val)
		case "base":
			h.BaseCostNS, err = parseDuration(val)
		case "huge":
			h.HugeCostNS, err = parseDuration(val)
		default:
			return fmt.Errorf("tier: unknown topology hop attribute %q", key)
		}
		if err != nil {
			return fmt.Errorf("tier: topology hop attribute %q: %w", clause, err)
		}
		if err == nil {
			switch key {
			case "bw":
				if h.BandwidthBPS == 0 {
					return fmt.Errorf("tier: topology hop bandwidth must be positive")
				}
			case "base":
				if h.BaseCostNS == 0 {
					return fmt.Errorf("tier: topology hop base cost must be positive")
				}
			case "huge":
				if h.HugeCostNS == 0 {
					return fmt.Errorf("tier: topology hop huge cost must be positive")
				}
			}
		}
	}
	return nil
}

// byteUnits is ordered so fmtBytes picks the largest exact unit.
var byteUnits = []struct {
	suffix string
	bytes  uint64
}{
	{"t", 1 << 40}, {"g", 1 << 30}, {"m", 1 << 20}, {"k", 1 << 10},
}

func parseBytes(val string) (uint64, error) {
	mult := uint64(1)
	body := val
	for _, u := range byteUnits {
		if b, ok := strings.CutSuffix(val, u.suffix); ok {
			mult, body = u.bytes, b
			break
		}
	}
	n, err := strconv.ParseUint(body, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("byte size %q: %w", val, err)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("byte size %q overflows", val)
	}
	return n * mult, nil
}

// fmtBytes renders n in the largest exact binary unit, inverting
// parseBytes (String/ParseTopologySpec round-trip exactly).
func fmtBytes(n uint64) string {
	for _, u := range byteUnits {
		if n > 0 && n%u.bytes == 0 {
			return strconv.FormatUint(n/u.bytes, 10) + u.suffix
		}
	}
	return strconv.FormatUint(n, 10)
}

// String renders the canonical spec form: ParseTopologySpec(t.String())
// reproduces t for any valid topology. Defaulted (zero) fields are
// omitted, so the canonical form is minimal.
func (t *Topology) String() string {
	var b strings.Builder
	for i, tc := range t.Tiers {
		if i > 0 {
			b.WriteByte('>')
			if t.Hops != nil {
				if h := t.Hops[i-1]; h != (HopConfig{}) {
					var attrs []string
					if h.BandwidthBPS > 0 {
						attrs = append(attrs, "bw="+fmtBytes(h.BandwidthBPS))
					}
					if h.BaseCostNS > 0 {
						attrs = append(attrs, "base="+fmtDuration(h.BaseCostNS))
					}
					if h.HugeCostNS > 0 {
						attrs = append(attrs, "huge="+fmtDuration(h.HugeCostNS))
					}
					b.WriteByte('[')
					b.WriteString(strings.Join(attrs, ","))
					b.WriteByte(']')
				}
			}
		}
		b.WriteString(kindToken(tc.Kind))
		b.WriteByte(':')
		b.WriteString(fmtBytes(tc.Bytes))
		if tc.LoadNS > 0 || tc.StoreNS > 0 {
			b.WriteByte(':')
			b.WriteString(fmtDuration(tc.LoadNS))
			b.WriteByte('/')
			b.WriteString(fmtDuration(tc.StoreNS))
		}
	}
	return b.String()
}
