package tier

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file is the fault-injection schedule of the simulated machine:
// a deterministic, seed-derived plan of transient migration-copy
// failures, bandwidth-throttling windows and per-tier stall bursts.
// The plan only *decides* — the VM's transactional migration and the
// machine's access loop consult it and charge the consequences — so
// everything here is pure arithmetic over the virtual clock and a
// private counter-mode PRNG, and a fixed (seed, access stream) pair
// always produces the same fault history regardless of wall-clock
// scheduling or runner worker count (DESIGN.md §6).

// Fault-plan defaults, applied by NewFaultPlan for fields left zero.
const (
	// DefaultMaxRetries bounds how often a migration transaction is
	// retried after an aborted copy before the caller gives up.
	DefaultMaxRetries = 3
	// DefaultBackoffNS is the base retry backoff; it doubles per retry.
	DefaultBackoffNS = 20_000
	// DefaultThrottleFactor multiplies migration copy cost inside a
	// bandwidth-throttling window.
	DefaultThrottleFactor = 4
	// MaxRetriesCap bounds MaxRetries so a retry loop can never stall
	// the application unboundedly (the conformance suite derives its
	// stall bound from this cap).
	MaxRetriesCap = 16
	// MaxThrottleFactor bounds the copy-cost multiplier.
	MaxThrottleFactor = 1024
	// maxBackoffShift caps the exponential backoff doubling.
	maxBackoffShift = 10
)

// FaultConfig describes the fault schedule of one machine. The zero
// value disables fault injection entirely: no field of the simulator
// behaves differently, no decision stream is consumed, and traces stay
// byte-identical to a pre-fault build.
type FaultConfig struct {
	// Seed derives the transient-failure decision stream. 0 lets the
	// machine derive one from its own RNG seed, so matrix cells with
	// per-cell seeds get independent fault histories automatically.
	Seed int64

	// MigrateFailPpm is the probability, in parts per million, that one
	// migration copy fails transiently and the transaction aborts
	// (rolls back to the source mapping). 0 disables copy faults.
	MigrateFailPpm uint32
	// MaxRetries bounds the retries the shared policy helpers attempt
	// per logical migration after aborted copies (0 = DefaultMaxRetries
	// when copy faults are enabled; capped at MaxRetriesCap).
	MaxRetries int
	// BackoffNS is the base virtual-time retry backoff, doubled per
	// retry (0 = DefaultBackoffNS).
	BackoffNS uint64

	// ThrottlePeriodNS/ThrottleDutyNS define bandwidth-throttling
	// windows: for the first ThrottleDutyNS of every ThrottlePeriodNS
	// of virtual time, migration copies cost ThrottleFactor times as
	// much and the default admission control defers background
	// migrations. ThrottlePeriodNS == 0 disables throttling.
	ThrottlePeriodNS uint64
	ThrottleDutyNS   uint64
	// ThrottleFactor is the copy-cost multiplier inside a window
	// (0 = DefaultThrottleFactor).
	ThrottleFactor uint64

	// StallPeriodNS/StallDutyNS define per-tier stall bursts: for the
	// first StallDutyNS of every StallPeriodNS, each access to
	// StallTier pays StallNS extra. StallPeriodNS == 0 disables bursts.
	StallPeriodNS uint64
	StallDutyNS   uint64
	// StallTier is the tier whose accesses stall (FastTier or
	// CapacityTier; the zero value stalls the fast tier).
	StallTier ID
	// StallNS is the extra per-access latency during a burst.
	StallNS uint64
}

// Enabled reports whether any fault mechanism is configured.
func (c FaultConfig) Enabled() bool {
	return c.MigrateFailPpm > 0 || c.ThrottlePeriodNS > 0 || c.StallPeriodNS > 0
}

// Validate rejects configurations the plan cannot honour
// deterministically or that escape the documented bounds.
func (c FaultConfig) Validate() error {
	if c.MigrateFailPpm > 1_000_000 {
		return fmt.Errorf("tier: fault rate %dppm exceeds 1000000", c.MigrateFailPpm)
	}
	if c.MaxRetries < 0 || c.MaxRetries > MaxRetriesCap {
		return fmt.Errorf("tier: retries %d outside [0,%d]", c.MaxRetries, MaxRetriesCap)
	}
	if c.ThrottleFactor > MaxThrottleFactor {
		return fmt.Errorf("tier: throttle factor %d exceeds %d", c.ThrottleFactor, MaxThrottleFactor)
	}
	if c.ThrottlePeriodNS > 0 && c.ThrottleDutyNS > c.ThrottlePeriodNS {
		return fmt.Errorf("tier: throttle duty %dns exceeds period %dns", c.ThrottleDutyNS, c.ThrottlePeriodNS)
	}
	if c.StallPeriodNS > 0 && c.StallDutyNS > c.StallPeriodNS {
		return fmt.Errorf("tier: stall duty %dns exceeds period %dns", c.StallDutyNS, c.StallPeriodNS)
	}
	if c.StallTier < FastTier || c.StallTier >= ID(MaxTiers) {
		return fmt.Errorf("tier: stall tier %v is not a real tier", c.StallTier)
	}
	return nil
}

// FaultPlan is the runtime form of a FaultConfig, owned by exactly one
// machine (its decision counter is machine-local state, like the
// machine RNG). A nil *FaultPlan is valid and every method on it is the
// disabled case, so consult sites need no guards.
type FaultPlan struct {
	cfg FaultConfig
	seq uint64 // copy-fault decisions consumed so far

	// Window-entry bookkeeping for fault_window events: 1 + the index
	// of the last window whose start was reported, 0 before any.
	seenThrottle uint64
	seenStall    uint64
}

// NewFaultPlan builds a plan, filling defaulted fields. It returns nil
// for a disabled config — the representation every consult site treats
// as "no faults" — and panics on an invalid one (configs from user
// input are validated by ParseFaultSpec first).
func NewFaultPlan(cfg FaultConfig) *FaultPlan {
	if !cfg.Enabled() {
		return nil
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if cfg.MigrateFailPpm > 0 && cfg.MaxRetries == 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BackoffNS == 0 {
		cfg.BackoffNS = DefaultBackoffNS
	}
	if cfg.ThrottlePeriodNS > 0 && cfg.ThrottleFactor == 0 {
		cfg.ThrottleFactor = DefaultThrottleFactor
	}
	return &FaultPlan{cfg: cfg}
}

// Config returns the effective (default-filled) configuration; the
// zero FaultConfig on a nil plan.
func (f *FaultPlan) Config() FaultConfig {
	if f == nil {
		return FaultConfig{}
	}
	return f.cfg
}

// faultMix is the SplitMix64 finalizer: a bijective avalanche mix over
// the decision counter, so the failure stream is a counter-mode PRNG —
// reproducible, seekable and independent of the machine's main RNG.
func faultMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// FailCopy consumes one decision of the failure stream and reports
// whether the current migration copy faults. Each call advances the
// stream, so the n-th migration attempt of a run always sees the n-th
// decision no matter when in virtual time it happens.
func (f *FaultPlan) FailCopy() bool {
	if f == nil || f.cfg.MigrateFailPpm == 0 {
		return false
	}
	f.seq++
	return faultMix(uint64(f.cfg.Seed)^f.seq)%1_000_000 < uint64(f.cfg.MigrateFailPpm)
}

// ThrottleActive reports whether now falls inside a bandwidth-
// throttling window.
func (f *FaultPlan) ThrottleActive(now uint64) bool {
	return f != nil && f.cfg.ThrottlePeriodNS > 0 && now%f.cfg.ThrottlePeriodNS < f.cfg.ThrottleDutyNS
}

// CopyCostFactor returns the migration copy-cost multiplier at now
// (1 outside throttle windows and on a nil plan).
func (f *FaultPlan) CopyCostFactor(now uint64) uint64 {
	if f.ThrottleActive(now) {
		return f.cfg.ThrottleFactor
	}
	return 1
}

// AccessStallNS returns the extra latency one access to tier t pays at
// now (0 outside stall bursts, for other tiers, and on a nil plan).
func (f *FaultPlan) AccessStallNS(t ID, now uint64) uint64 {
	if f == nil || f.cfg.StallPeriodNS == 0 || t != f.cfg.StallTier {
		return 0
	}
	if now%f.cfg.StallPeriodNS < f.cfg.StallDutyNS {
		return f.cfg.StallNS
	}
	return 0
}

// MaxRetries returns the retry bound the shared migration helpers must
// honour (0 on a nil plan: a failed migration is final).
func (f *FaultPlan) MaxRetries() int {
	if f == nil {
		return 0
	}
	return f.cfg.MaxRetries
}

// RetryBackoffNS returns the virtual-time backoff charged before retry
// attempt (0-based): BackoffNS doubled per attempt, with the doubling
// capped so the sum stays bounded.
func (f *FaultPlan) RetryBackoffNS(attempt int) uint64 {
	if f == nil {
		return 0
	}
	if attempt > maxBackoffShift {
		attempt = maxBackoffShift
	}
	return f.cfg.BackoffNS << uint(attempt)
}

// Fault-window kinds reported by PollWindows and carried in the aux
// field of fault_window events.
const (
	ThrottleWindow = 1
	StallWindow    = 2
)

// PollWindows reports windows newly entered at now since the previous
// poll, so the machine can emit one fault_window event per window
// start. Polling is idempotent within a window and cheap enough for
// the access loop of a faults-enabled run.
func (f *FaultPlan) PollWindows(now uint64) (throttleStarted, stallStarted bool) {
	if f == nil {
		return false, false
	}
	if f.cfg.ThrottlePeriodNS > 0 && now%f.cfg.ThrottlePeriodNS < f.cfg.ThrottleDutyNS {
		if win := now/f.cfg.ThrottlePeriodNS + 1; win != f.seenThrottle {
			f.seenThrottle = win
			throttleStarted = true
		}
	}
	if f.cfg.StallPeriodNS > 0 && now%f.cfg.StallPeriodNS < f.cfg.StallDutyNS {
		if win := now/f.cfg.StallPeriodNS + 1; win != f.seenStall {
			f.seenStall = win
			stallStarted = true
		}
	}
	return throttleStarted, stallStarted
}

// ParseFaultSpec decodes the CLI fault specification: comma-separated
// key=value clauses, all optional, in any order.
//
//	rate=F          copy-failure probability: fraction ("0.01") or ppm ("10000ppm")
//	retries=N       retry bound per migration (default 3, max 16)
//	backoff=DUR     base retry backoff, doubled per retry (default 20us)
//	throttle=DUTY/PERIOD[:Nx]
//	                bandwidth-throttle windows: active DUTY out of every
//	                PERIOD, copies cost Nx as much (default 4x)
//	stall=TIER:DUTY/PERIOD:DUR
//	                stall bursts: accesses to TIER (fast|cap) pay DUR
//	                extra for DUTY out of every PERIOD
//	seed=N          decision-stream seed override
//
// Durations take ns, us, ms or s suffixes. Example:
//
//	rate=0.01,retries=3,throttle=200us/1ms:4x,stall=cap:100us/1ms:150ns
//
// The empty string decodes to the disabled zero config.
func ParseFaultSpec(s string) (FaultConfig, error) {
	var c FaultConfig
	s = strings.TrimSpace(s)
	if s == "" {
		return c, nil
	}
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return c, fmt.Errorf("tier: fault spec clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "rate":
			err = parseRate(val, &c.MigrateFailPpm)
		case "retries":
			var n int64
			n, err = strconv.ParseInt(val, 10, 32)
			c.MaxRetries = int(n)
		case "backoff":
			c.BackoffNS, err = parseDuration(val)
		case "throttle":
			err = parseThrottle(val, &c)
		case "stall":
			err = parseStall(val, &c)
		case "seed":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return c, fmt.Errorf("tier: unknown fault spec key %q", key)
		}
		if err != nil {
			return c, fmt.Errorf("tier: fault spec %q: %w", clause, err)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

func parseRate(val string, ppm *uint32) error {
	if p, ok := strings.CutSuffix(val, "ppm"); ok {
		n, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return err
		}
		if n > 1_000_000 {
			return fmt.Errorf("rate %dppm exceeds 1000000", n)
		}
		*ppm = uint32(n)
		return nil
	}
	fr, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	if fr < 0 || fr > 1 {
		return fmt.Errorf("rate %v outside [0,1]", fr)
	}
	*ppm = uint32(fr * 1_000_000)
	return nil
}

func parseThrottle(val string, c *FaultConfig) error {
	// DUTY/PERIOD[:Nx]
	if body, fac, ok := strings.Cut(val, ":"); ok {
		fx, found := strings.CutSuffix(fac, "x")
		if !found {
			return fmt.Errorf("throttle factor %q lacks the x suffix", fac)
		}
		n, err := strconv.ParseUint(fx, 10, 32)
		if err != nil {
			return err
		}
		if n < 1 {
			return fmt.Errorf("throttle factor must be >= 1")
		}
		c.ThrottleFactor = n
		val = body
	}
	return parseWindow(val, &c.ThrottleDutyNS, &c.ThrottlePeriodNS)
}

func parseStall(val string, c *FaultConfig) error {
	// TIER:DUTY/PERIOD:DUR
	parts := strings.Split(val, ":")
	if len(parts) != 3 {
		return fmt.Errorf("stall spec %q is not TIER:DUTY/PERIOD:DUR", val)
	}
	switch {
	case parts[0] == "fast":
		c.StallTier = FastTier
	case parts[0] == "cap" || parts[0] == "capacity":
		c.StallTier = CapacityTier
	case strings.HasPrefix(parts[0], "tier"):
		n, err := strconv.ParseInt(strings.TrimPrefix(parts[0], "tier"), 10, 8)
		if err != nil || n < 2 || n >= MaxTiers {
			return fmt.Errorf("unknown stall tier %q (want fast, cap or tier2..tier%d)", parts[0], MaxTiers-1)
		}
		c.StallTier = ID(n)
	default:
		return fmt.Errorf("unknown stall tier %q (want fast, cap or tierN)", parts[0])
	}
	if err := parseWindow(parts[1], &c.StallDutyNS, &c.StallPeriodNS); err != nil {
		return err
	}
	var err error
	c.StallNS, err = parseDuration(parts[2])
	return err
}

func parseWindow(val string, duty, period *uint64) error {
	d, p, ok := strings.Cut(val, "/")
	if !ok {
		return fmt.Errorf("window %q is not DUTY/PERIOD", val)
	}
	var err error
	if *duty, err = parseDuration(d); err != nil {
		return err
	}
	if *period, err = parseDuration(p); err != nil {
		return err
	}
	if *period == 0 {
		return fmt.Errorf("window period must be positive")
	}
	return nil
}

// durUnits is ordered longest-suffix-first so "ns" is not mistaken for
// "s". Values are nanoseconds per unit.
var durUnits = []struct {
	suffix string
	ns     uint64
}{
	{"ns", 1}, {"us", 1_000}, {"ms", 1_000_000}, {"s", 1_000_000_000},
}

func parseDuration(val string) (uint64, error) {
	for _, u := range durUnits {
		body, ok := strings.CutSuffix(val, u.suffix)
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(body, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("duration %q: %w", val, err)
		}
		if n > (1<<63)/u.ns {
			return 0, fmt.Errorf("duration %q overflows", val)
		}
		return n * u.ns, nil
	}
	return 0, fmt.Errorf("duration %q lacks a ns/us/ms/s suffix", val)
}

// fmtDuration renders ns in the largest exact unit, inverting
// parseDuration (String/ParseFaultSpec round-trip exactly).
func fmtDuration(ns uint64) string {
	for i := len(durUnits) - 1; i >= 0; i-- {
		u := durUnits[i]
		if ns%u.ns == 0 && (ns > 0 || u.ns == 1) {
			return strconv.FormatUint(ns/u.ns, 10) + u.suffix
		}
	}
	return strconv.FormatUint(ns, 10) + "ns"
}

// String renders the canonical spec form: ParseFaultSpec(c.String())
// returns c for any valid config. The disabled config renders as "".
func (c FaultConfig) String() string {
	var parts []string
	if c.MigrateFailPpm > 0 {
		parts = append(parts, fmt.Sprintf("rate=%dppm", c.MigrateFailPpm))
	}
	if c.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", c.MaxRetries))
	}
	if c.BackoffNS > 0 {
		parts = append(parts, "backoff="+fmtDuration(c.BackoffNS))
	}
	if c.ThrottlePeriodNS > 0 {
		w := "throttle=" + fmtDuration(c.ThrottleDutyNS) + "/" + fmtDuration(c.ThrottlePeriodNS)
		if c.ThrottleFactor > 0 {
			w += fmt.Sprintf(":%dx", c.ThrottleFactor)
		}
		parts = append(parts, w)
	}
	if c.StallPeriodNS > 0 {
		name := "fast"
		switch {
		case c.StallTier == CapacityTier:
			name = "cap"
		case c.StallTier > CapacityTier:
			name = c.StallTier.String()
		}
		parts = append(parts, "stall="+name+":"+fmtDuration(c.StallDutyNS)+"/"+
			fmtDuration(c.StallPeriodNS)+":"+fmtDuration(c.StallNS))
	}
	if c.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", c.Seed))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
