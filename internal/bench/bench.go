// Package bench is the experiment harness: it wires workloads, policies
// and machine configurations into the runs that regenerate every table
// and figure of the paper's evaluation (§6). cmd/paperfigs and the
// repository's bench_test.go are thin wrappers over this package.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	memtis "memtis/internal/core"
	"memtis/internal/obs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// Ratio expresses a fast:capacity configuration as the fraction of the
// resident set held by the fast tier (§6.1: 1:2 -> 1/3 of RSS, 1:8 ->
// 1/9, 1:16 -> 1/17; §6.2.8: 2:1 -> 2/3).
type Ratio struct {
	Name     string
	FastFrac float64
}

// The tiering configurations used across the evaluation.
var (
	Ratio1to2  = Ratio{"1:2", 1.0 / 3}
	Ratio1to8  = Ratio{"1:8", 1.0 / 9}
	Ratio1to16 = Ratio{"1:16", 1.0 / 17}
	Ratio2to1  = Ratio{"2:1", 2.0 / 3}
)

// MainRatios are the Figure 5 configurations.
var MainRatios = []Ratio{Ratio1to2, Ratio1to8, Ratio1to16}

// Policies lists the systems of Figure 5 in plot order.
var Policies = []string{"autonuma", "autotiering", "tiering-0.8", "tpp", "nimble", "hemem", "memtis"}

// Config tunes a harness invocation.
type Config struct {
	Accesses uint64    // access budget per run
	Seed     int64     // base RNG seed
	CapKind  tier.Kind // capacity-tier technology (NVM default)
	Threads  int       // app threads (0 = cores, i.e. saturated)
	RecordNS uint64    // time-series sampling (0 = off)

	// Trace attaches an event tracer to single runs (RunOne,
	// RunBaseline, RunAllFast). Matrix runners ignore it — a tracer
	// serves exactly one machine, so sharing one across parallel cells
	// would interleave streams; set EventDir instead.
	Trace *obs.Tracer
	// EventDir, when non-empty, makes RunMatrix write one JSONL event
	// trace per cell into this directory (created if missing), named
	// <workload>_<ratio>_<policy>.events.jsonl with ':' spelled "to".
	EventDir string

	// Faults is the fault-injection schedule applied to every machine
	// the harness builds (see tier.FaultConfig and DESIGN.md §6). The
	// zero value disables injection; a zero Faults.Seed derives the
	// plan seed from the machine seed, so matrix cells fault
	// independently but deterministically.
	Faults tier.FaultConfig

	// Topology, when non-nil, replaces the default two-tier machine
	// with an explicit tier chain on every machine the harness builds
	// (the ratio-derived FastBytes/CapBytes are then ignored — the
	// topology's own capacities rule). The depth sweep builds per-cell
	// topologies itself and does not read this field.
	Topology *tier.Topology
	// Admission, when non-nil, installs a migration admission policy
	// (tier.Admission) on every machine the harness builds.
	Admission tier.Admission
	// Mover, when enabled, runs the rate-limited background mover on
	// every machine the harness builds (tier.MoverConfig).
	Mover tier.MoverConfig

	// Shards, when > 1, runs multi-tenant cells on an S-shard machine:
	// whole tenants route across the shards (tenant.Runner.RunSharded)
	// and each cell records the aggregate view. Only TenantSweep reads
	// it; it conflicts with EventDir (a sharded cell traces per shard,
	// not per cell) and with Topology (sharded machines are two-tier).
	Shards int
}

// DefaultConfig returns the harness defaults used by the bench targets.
func DefaultConfig() Config {
	return Config{Accesses: 2_000_000, Seed: 42, CapKind: tier.NVM}
}

// NewPolicy instantiates a policy by name. Fresh state per run.
func NewPolicy(name string) sim.Policy {
	switch name {
	case "autonuma":
		return policy.NewAutoNUMA()
	case "autotiering":
		return policy.NewAutoTiering()
	case "tiering-0.8":
		return policy.NewTiering08()
	case "tpp":
		return policy.NewTPP()
	case "nimble":
		return policy.NewNimble()
	case "multi-clock":
		return policy.NewMultiClock()
	case "hemem", "hemem+":
		return policy.NewHeMem()
	case "memtis":
		return memtis.New(memtis.Config{})
	case "memtis-ns":
		return memtis.New(memtis.Config{SplitDisabled: true})
	case "memtis-nowarm":
		return memtis.New(memtis.Config{WarmDisabled: true})
	case "memtis-vanilla":
		return memtis.New(memtis.Config{SplitDisabled: true, WarmDisabled: true})
	case "memtis-hybrid":
		return memtis.New(memtis.Config{HybridScan: true})
	case "static":
		return policy.NewStatic()
	case "all-fast":
		return policy.NewPinned(tier.FastTier, "all-fast")
	case "all-capacity":
		return policy.NewPinned(tier.CapacityTier, "all-capacity")
	default:
		panic(fmt.Sprintf("bench: unknown policy %q", name))
	}
}

// AllPolicies lists every name NewPolicy accepts, in a stable order —
// the conformance suite iterates it so a newly registered policy is
// exercised automatically.
var AllPolicies = []string{
	"autonuma", "autotiering", "tiering-0.8", "tpp", "nimble",
	"multi-clock", "hemem", "hemem+", "memtis", "memtis-ns",
	"memtis-nowarm", "memtis-vanilla", "memtis-hybrid", "static",
	"all-fast", "all-capacity",
}

// KnownPolicy reports whether NewPolicy accepts name, so callers can
// validate user input before fanning out instead of panicking
// mid-matrix.
func KnownPolicy(name string) bool {
	for _, p := range AllPolicies {
		if p == name {
			return true
		}
	}
	return false
}

// MachineFor builds the machine configuration for a workload at a
// tiering ratio. The capacity tier always holds the full resident set
// plus head-room — as in the paper's testbed, only the fast tier is the
// constrained resource. polName adjustments: HeMem's configured fast
// tier is reduced by its over-allocation (Table 3 accounting, §6.1);
// "hemem+" skips the reduction (§6.2.9).
func MachineFor(spec workload.Spec, r Ratio, polName string, cfg Config) sim.Config {
	rss := spec.RSSBytes()
	fast := uint64(float64(rss) * r.FastFrac)
	if polName == "hemem" {
		over := spec.SmallBytes()
		if over < fast/2 {
			fast -= over
		} else {
			fast /= 2
		}
	}
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	return sim.Config{
		FastBytes: fast,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   cfg.CapKind,
		THP:       true,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		RecordNS:  cfg.RecordNS,
		Trace:     cfg.Trace,
		Faults:    cfg.Faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
}

// RunOne executes one (workload, policy, ratio) cell.
func RunOne(wname, polName string, r Ratio, cfg Config) sim.Result {
	w := workload.MustNew(wname)
	mc := MachineFor(w.Spec(), r, polName, cfg)
	return sim.Run(mc, NewPolicy(polName), w, cfg.Accesses)
}

// RunBaseline executes the all-capacity-tier (THP) run that every
// figure normalises against.
func RunBaseline(wname string, cfg Config) sim.Result {
	w := workload.MustNew(wname)
	rss := w.Spec().RSSBytes()
	mc := sim.Config{
		FastBytes: tier.HugePageSize * 2, // minimal, unused
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   cfg.CapKind,
		THP:       true,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		Trace:     cfg.Trace,
		Faults:    cfg.Faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
	return sim.Run(mc, NewPolicy("all-capacity"), w, cfg.Accesses)
}

// RunAllFast executes the all-DRAM reference (fast tier holds the whole
// resident set) with or without THP (Figure 7's dashed lines).
func RunAllFast(wname string, thp bool, cfg Config) sim.Result {
	w := workload.MustNew(wname)
	rss := w.Spec().RSSBytes()
	mc := sim.Config{
		FastBytes: rss + rss/4 + 16*tier.HugePageSize,
		CapBytes:  tier.HugePageSize * 2,
		CapKind:   cfg.CapKind,
		THP:       thp,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		Trace:     cfg.Trace,
		Faults:    cfg.Faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
	return sim.Run(mc, NewPolicy("all-fast"), w, cfg.Accesses)
}

// Norm returns r's throughput normalised to the baseline run.
func Norm(r, base sim.Result) float64 {
	if base.Throughput == 0 {
		return 0
	}
	return r.Throughput / base.Throughput
}

// Geomean computes the geometric mean of positive values.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// Cell is one figure data point.
type Cell struct {
	Workload string
	Ratio    string
	Policy   string
	Value    float64 // normalised performance unless stated otherwise
	Result   sim.Result
}

// Matrix is a set of cells with lookup helpers.
type Matrix struct {
	Cells []Cell
}

// CountersCSV renders every cell's counter snapshot as CSV
// (workload,ratio,policy,metric,kind,value), cells in plot order and
// metrics sorted by name within a cell — the per-cell counter dump
// written next to figure output. Counters are additive observability:
// they never feed back into the figures themselves.
func (m *Matrix) CountersCSV() string {
	var b strings.Builder
	b.WriteString("workload,ratio,policy,metric,kind,value\n")
	for _, c := range m.Cells {
		for _, mt := range c.Result.Counters {
			fmt.Fprintf(&b, "%s,%s,%s,%s,%s,%d\n",
				c.Workload, c.Ratio, c.Policy, mt.Name, mt.Kind, mt.Value)
		}
	}
	return b.String()
}

// Get fetches one cell's value.
func (m *Matrix) Get(w, r, p string) (float64, bool) {
	for _, c := range m.Cells {
		if c.Workload == w && c.Ratio == r && c.Policy == p {
			return c.Value, true
		}
	}
	return 0, false
}

// Best returns the winning policy of a (workload, ratio) cell and the
// runner-up, with their values.
func (m *Matrix) Best(w, r string) (best, second string, bv, sv float64) {
	type pv struct {
		p string
		v float64
	}
	var vals []pv
	for _, c := range m.Cells {
		if c.Workload == w && c.Ratio == r {
			vals = append(vals, pv{c.Policy, c.Value})
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v > vals[j].v })
	if len(vals) > 0 {
		best, bv = vals[0].p, vals[0].v
	}
	if len(vals) > 1 {
		second, sv = vals[1].p, vals[1].v
	}
	return best, second, bv, sv
}
