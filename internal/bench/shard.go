// Sharded-run harness: the workload drivers in internal/workload issue
// state-dependent streams against one *sim.Machine and cannot be split
// mid-flight, so sharded throughput runs use a synthetic Zipf stream
// over a workload-sized footprint instead — popularity skew like the
// real benchmarks, spread across 2MB blocks so every shard carries its
// share of the hot set.
package bench

import (
	"math/rand"

	"memtis/internal/sim"
	"memtis/internal/tier"
)

// ShardedResult bundles one sharded run: per-shard results in shard
// order plus the aggregate view (sums, slowest-shard time, weighted
// ratios — see sim.AggregateShards).
type ShardedResult struct {
	Shards    []sim.Result
	Aggregate sim.Result
}

// RunSharded executes a synthetic Zipf run over an S-shard machine:
// rssBytes of footprint, the fast tier sized by r exactly as MachineFor
// sizes it, one fresh instance of polName per shard. cfg supplies the
// access budget, seed, capacity kind, fault plan, mover and admission
// config; Topology and Trace are unsupported on sharded machines.
func RunSharded(polName string, shards int, rssBytes uint64, r Ratio, cfg Config) ShardedResult {
	fast := uint64(float64(rssBytes) * r.FastFrac)
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	s := sim.NewSharded(sim.ShardedConfig{
		Shards: shards,
		Machine: sim.Config{
			FastBytes: fast,
			CapBytes:  rssBytes + rssBytes/4 + 16*tier.HugePageSize,
			CapKind:   cfg.CapKind,
			THP:       true,
			Threads:   cfg.Threads,
			Seed:      cfg.Seed,
			RecordNS:  cfg.RecordNS,
			Faults:    cfg.Faults,
			Admission: cfg.Admission,
			Mover:     cfg.Mover,
		},
		PolicyFor: func(int) sim.Policy { return NewPolicy(polName) },
	})
	reg := s.Reserve(rssBytes)
	// Fault in block bases first (demand faults map whole huge pages on
	// the THP machine), then run the measured stream: Zipf popularity
	// spread across blocks with a multiplicative hash, as real hot sets
	// span blocks — this is also what keeps the shards load-balanced.
	for vpn := reg.BaseVPN; vpn < reg.BaseVPN+reg.Pages; vpn += tier.SubPages {
		s.Access(vpn, true)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	z := rand.NewZipf(rng, 1.2, 1, reg.Pages-1)
	for i := uint64(0); i < cfg.Accesses; i++ {
		s.Access(reg.BaseVPN+(z.Uint64()*2654435761)%reg.Pages, i&7 == 0)
	}
	rs := s.Finish("sharded-zipf")
	return ShardedResult{Shards: rs, Aggregate: sim.AggregateShards(rs)}
}
