package bench

import (
	"bytes"
	"context"
	"testing"

	"memtis/internal/obs"
)

// TestFaultSweepTraceDeterminism: with faults enabled at a fixed seed,
// the sweep's JSONL traces must be byte-identical across worker counts
// — injected fault histories are part of the determinism contract
// (DESIGN.md §6), not a source of run-to-run noise. The sweep cell
// must also actually abort migrations, or the sweep measures nothing.
func TestFaultSweepTraceDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Accesses = 150_000
	rates := []uint32{0, 50_000}
	pols := []string{"memtis"}

	runInto := func(r *Runner) map[string][]byte {
		c := cfg
		c.EventDir = t.TempDir()
		if _, err := r.FaultSweep(context.Background(), c, "silo", Ratio1to8, pols, rates); err != nil {
			t.Fatal(err)
		}
		return readTraces(t, c.EventDir)
	}
	seq := runInto(Sequential())
	par := runInto(Parallel(8))

	if len(seq) != len(rates)*len(pols) {
		t.Fatalf("trace files = %d, want %d", len(seq), len(rates)*len(pols))
	}
	for name, data := range seq {
		if !bytes.Equal(data, par[name]) {
			t.Fatalf("%s differs between sequential and 8-worker runs", name)
		}
	}

	check := func(name string) map[obs.Kind]int {
		data, ok := seq[name]
		if !ok {
			t.Fatalf("%s missing; files: %v", name, keys(seq))
		}
		evs, err := obs.ReadAll(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		counts := map[obs.Kind]int{}
		for _, e := range evs {
			counts[e.Kind]++
		}
		return counts
	}
	faulted := check("silo_1to8+50000ppm_memtis.events.jsonl")
	if faulted[obs.EvMigrateAbort] == 0 {
		t.Error("no migrate_abort events at a 5% copy-fault rate")
	}
	if faulted[obs.EvMigrateRetry] == 0 {
		t.Error("no migrate_retry events at a 5% copy-fault rate")
	}
	clean := check("silo_1to8+0ppm_memtis.events.jsonl")
	if n := clean[obs.EvMigrateAbort] + clean[obs.EvMigrateRetry]; n != 0 {
		t.Errorf("fault-free reference cell emitted %d fault events", n)
	}
}

// TestFaultSweepNormalisation: the rate-0 row is each policy's own
// reference, so it must normalise to exactly 1.
func TestFaultSweepNormalisation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Accesses = 60_000
	m, err := Parallel(4).FaultSweep(context.Background(), cfg, "silo", Ratio1to8,
		[]string{"memtis", "static"}, []uint32{0, 50_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"memtis", "static"} {
		v, ok := m.Get("silo", faultCoord(Ratio1to8, 0), p)
		if !ok || v != 1 {
			t.Errorf("%s: rate-0 normalised value = %v (ok=%v), want exactly 1", p, v, ok)
		}
		if v, ok := m.Get("silo", faultCoord(Ratio1to8, 50_000), p); !ok || v <= 0 {
			t.Errorf("%s: faulted cell value = %v (ok=%v)", p, v, ok)
		}
	}
}
