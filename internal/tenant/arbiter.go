package tenant

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// tenantCells is one tenant's `tenant/<name>/...` metric block. All
// cells come from the machine registry, so they flow through counter
// snapshots, CSV export and the conformance probes for free.
type tenantCells struct {
	promoDenied   *uint64 // promotions_denied: arbiter or Admit vetoes toward Fast
	demoDenied    *uint64 // demotions_denied: floor or Admit vetoes away from Fast
	floorViol     *uint64 // floor_violations: warmed floor dips not explained by frees
	contendedProm *uint64 // contended_promotions: units promoted while Fast was contended
	accesses      *uint64 // accesses: final per-tenant access count
	fastPages     *uint64 // fast_pages gauge: final fast-tier footprint, base pages
	residentPages *uint64 // resident_pages gauge: final resident footprint, base pages
}

// arbiter is the QoS layer under the policy: it owns the per-tenant
// fast-tier floors, the weighted promotion shares and the tenant
// metric cells, and implements the vm.MigrateVeto every address space
// shares. It sees migrations *after* the policy decided to move a page
// and can only say no, so every policy inherits the same fairness
// semantics without knowing tenants exist.
//
// An arbiter binds to one machine and the tenants hosted on it, not to
// a scheduler: the plain runner builds one over the whole mix, the
// sharded runner builds one per shard over that shard's local tenants
// (each shard's fast tier is the only one its tenants contend for, so
// the local mix is the correct contention domain). Liveness flows in
// through addLive/removeLive at the same stream positions the plain
// scheduler flips them.
type arbiter struct {
	m     *sim.Machine
	specs []*Spec // per hosted tenant, space order
	live  []bool  // mirrors the scheduler's tenant liveness

	weights []uint64 // per-tenant share weight (>= 1)
	sumW    uint64   // Σ weights over live tenants
	floors  []uint64 // guaranteed fast floor, base-page units, post-clamp

	// Floor warm-up tracking: a floor only binds once the tenant has
	// actually filled it (warmed), and binds at the level it warmed to
	// (warmedEff) — a growing resident set raises the effective floor,
	// but the guarantee on the not-yet-warmed part starts only once
	// filled. A dip is a violation only if it is not fully explained
	// by the tenant's own frees since the last healthy checkpoint
	// (freedBase).
	warmed    []bool
	warmedEff []uint64
	freedBase []uint64

	// Contended-share accounting. Promotions are arbitrated only
	// while the fast tier's free frames sit under contendThresh;
	// while contended, tenant i may take at most
	// weights[i]/sumW of all contended promotions, plus slack.
	contendThresh     uint64
	contendedPromoted []uint64
	totalContended    uint64

	cells []tenantCells
}

func newArbiter(m *sim.Machine, specs []*Spec, names []string) *arbiter {
	n := len(specs)
	a := &arbiter{
		m:                 m,
		specs:             specs,
		live:              make([]bool, n),
		weights:           make([]uint64, n),
		floors:            make([]uint64, n),
		warmed:            make([]bool, n),
		warmedEff:         make([]uint64, n),
		freedBase:         make([]uint64, n),
		contendedPromoted: make([]uint64, n),
		cells:             make([]tenantCells, n),
	}
	capFrames := m.Fast.CapacityFrames()
	a.contendThresh = max(4*tier.SubPages, capFrames/8)
	var totalFloor uint64
	for i, t := range specs {
		a.weights[i] = max(t.Weight, 1)
		a.floors[i] = t.FloorBytes / tier.BasePageSize
		totalFloor += a.floors[i]
	}
	// Floors are guarantees against one shared fast tier: if their sum
	// exceeds 90% of it they are over-committed, so scale them all
	// down proportionally rather than honouring tenants in index order.
	if budget := capFrames * 9 / 10; totalFloor > budget {
		for i := range a.floors {
			a.floors[i] = a.floors[i] * budget / totalFloor
		}
	}
	reg := m.Counters()
	for i, name := range names {
		g := reg.Group("tenant/" + name)
		a.cells[i] = tenantCells{
			promoDenied:   g.Counter("promotions_denied"),
			demoDenied:    g.Counter("demotions_denied"),
			floorViol:     g.Counter("floor_violations"),
			contendedProm: g.Counter("contended_promotions"),
			accesses:      g.Counter("accesses"),
			fastPages:     g.Gauge("fast_pages"),
			residentPages: g.Gauge("resident_pages"),
		}
	}
	return a
}

func (a *arbiter) weight(i int) uint64 { return a.weights[i] }

func (a *arbiter) addLive(i int)    { a.live[i] = true; a.sumW += a.weights[i] }
func (a *arbiter) removeLive(i int) { a.live[i] = false; a.sumW -= a.weights[i] }

// effFloor is the floor a tenant can actually be held to right now:
// a tenant smaller than its floor is only guaranteed its own size.
func (a *arbiter) effFloor(i int) uint64 {
	return min(a.floors[i], a.m.Space(i).ResidentUnits())
}

// veto is the shared vm.MigrateVeto. It is consulted by MigrateTx for
// every page move and by Collapse with the collapse's net fast-tier
// delta; pg identifies the owning tenant, dst the destination tier and
// units the base pages moving in (dst fast) or out (dst capacity) of
// the fast tier.
func (a *arbiter) veto(pg *vm.Page, dst tier.ID, units uint64) bool {
	i := int(pg.Owner)
	c := &a.cells[i]
	if adm := a.specs[i].Admit; adm != nil && !adm(pg, dst, false) {
		if dst == tier.FastTier {
			*c.promoDenied++
		} else {
			*c.demoDenied++
		}
		return false
	}
	fu := a.m.Space(i).FastUnits()
	if dst != tier.FastTier {
		// Demotion: never push a tenant below its effective floor.
		if fu < a.effFloor(i)+units {
			*c.demoDenied++
			return false
		}
		return true
	}
	// Promotion under the floor is part of the guarantee — always
	// admitted and never charged to the contended share.
	if fu+units <= a.effFloor(i) {
		return true
	}
	if a.m.Fast.FreeFrames() >= a.contendThresh || a.sumW == 0 {
		return true
	}
	// Contended: cap tenant i at its weighted share of all promotions
	// granted while contended, plus a fixed burst slack so coarse 2MB
	// moves don't starve everyone at low totals.
	share := a.weights[i] * (a.totalContended + units) / a.sumW
	if a.contendedPromoted[i]+units > share+shareSlackUnits {
		*c.promoDenied++
		return false
	}
	a.contendedPromoted[i] += units
	a.totalContended += units
	*c.contendedProm += units
	return true
}

// checkFloor updates tenant i's floor state: re-anchor the healthy
// checkpoint whenever the current effective floor is met, and count
// one violation per dip below the warmed level that the tenant's own
// frees since that checkpoint cannot explain.
func (a *arbiter) checkFloor(i int) {
	eff := a.effFloor(i)
	if !a.live[i] || eff == 0 {
		return
	}
	as := a.m.Space(i)
	fu := as.FastUnits()
	if fu >= eff {
		a.warmed[i] = true
		a.warmedEff[i] = eff
		a.freedBase[i] = as.FastFreedUnits()
		return
	}
	// The bound is the warmed level, not the current one: a growing
	// resident set raises eff, but the guarantee on the new headroom
	// only starts once the tenant fills it. A shrinking resident set
	// lowers the bound (the shrink itself is credited via fastFreed).
	bound := min(a.warmedEff[i], eff)
	if a.warmed[i] && fu+(as.FastFreedUnits()-a.freedBase[i]) < bound {
		*a.cells[i].floorViol++
		a.warmed[i] = false
	}
}

func (a *arbiter) checkFloors() {
	for i := range a.cells {
		a.checkFloor(i)
	}
}

// finalize publishes the end-of-run per-tenant footprint gauges and
// access totals, and runs a last floor check.
func (a *arbiter) finalize() {
	for i := range a.cells {
		a.checkFloor(i)
		as := a.m.Space(i)
		*a.cells[i].accesses = a.m.SpaceAccesses(i)
		*a.cells[i].fastPages = as.FastUnits()
		*a.cells[i].residentPages = as.ResidentUnits()
	}
}
