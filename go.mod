module memtis

go 1.22
