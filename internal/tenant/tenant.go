// Package tenant multiplexes N contending processes onto one simulated
// machine: each tenant owns a vm.AddressSpace and an independent
// workload, all sharing the machine's two tiers and its single policy
// daemon. A deterministic weighted scheduler interleaves the tenants'
// access streams in fixed-size slices; a lifecycle plan spawns and
// exits tenants and grows and shrinks their footprints mid-run; and a
// QoS arbiter below the policy layer enforces per-tenant fast-tier
// floors and weighted promotion shares (DESIGN.md §10).
//
// The scheduler is an inline run loop: tenants whose workloads
// implement workload.Streamer are resumable steppers — the scheduler
// holds their suspended drive state (workload.Stream) and pulls
// batches of accesses from it for exactly one slice at a time, with no
// goroutine, channel operation or allocation on the per-slice path.
// Workloads without a stepper form (mid-stream allocation churn,
// phased initialisation) keep the historical goroutine-baton fallback:
// their Run executes on a dedicated goroutine that an AccessObserver
// parks at slice boundaries, installed only while such a tenant runs.
//
// Determinism is by construction either way: exactly one goroutine —
// the scheduler or the currently scheduled fallback tenant — is
// runnable at any instant, so the interleaving is a pure function of
// the machine seed and the config. The same seed produces
// byte-identical event traces sequential or under a parallel matrix,
// including under the race detector; the inline scheduler reproduces
// the baton scheduler's traces bit for bit (the tenant_equiv.json
// golden in internal/bench pins this).
package tenant

import (
	"fmt"
	"sort"

	"memtis/internal/obs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
	"memtis/internal/workload"
)

// Spec describes one tenant: identity, workload, QoS knobs and its
// lifecycle-churn plan. Churn points are fractions of the machine's
// global access budget, so a plan scales with run length.
type Spec struct {
	// Name labels the tenant's counters (`tenant/<name>/...`) and
	// result row. Empty defaults to "t<index>".
	Name string
	// Weight is the tenant's share weight: it biases the scheduler's
	// slice draw and bounds the tenant's fraction of promotions while
	// the fast tier is contended. Zero means 1.
	Weight uint64
	// FloorBytes is the guaranteed fast-tier floor. Demotions (and
	// collapses into the capacity tier) that would push the tenant's
	// fast footprint below min(floor, resident) are vetoed. Floors
	// are clamped proportionally if their sum exceeds what the fast
	// tier can honour.
	FloorBytes uint64
	// Workload drives the tenant's address space. Any sim.Workload
	// works, including scenario runners; instances may be shared
	// across tenants (workloads keep per-Run state only).
	Workload sim.Workload
	// Admit, when set, is this tenant's admission hook, layered below
	// the policy's own AdmissionFunc: it is consulted (with
	// sync=false — the arbiter cannot tell) before floor and share
	// arbitration, and a false return vetoes the migration.
	Admit policy.AdmissionFunc

	// SpawnFrac > 0 delays the tenant's first slice until that
	// fraction of the budget has elapsed; 0 spawns at start.
	SpawnFrac float64
	// ExitFrac > 0 kills the tenant at that point and frees its whole
	// address space; 0 means the tenant runs to the end. At least one
	// tenant per config must be immortal.
	ExitFrac float64
	// GrowBytes > 0 reserves and write-touches an extra region at
	// GrowFrac (the touches count against the global budget);
	// ShrinkFrac > 0 frees that region again.
	GrowBytes  uint64
	GrowFrac   float64
	ShrinkFrac float64
}

// ChurnKind classifies one lifecycle event.
type ChurnKind uint8

// Churn event kinds, in intra-threshold application order.
const (
	ChurnSpawn ChurnKind = iota
	ChurnGrow
	ChurnShrink
	ChurnExit
)

// String names the kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnSpawn:
		return "spawn"
	case ChurnGrow:
		return "grow"
	case ChurnShrink:
		return "shrink"
	case ChurnExit:
		return "exit"
	}
	return "unknown"
}

// Bounds and defaults.
const (
	// MaxTenants bounds a config (the conformance sweep's largest
	// point is 1024; the bound leaves headroom without letting a
	// fuzzer allocate unbounded spaces).
	MaxTenants = 4096
	// DefaultSlice is the scheduler quantum in accesses — roughly
	// half a millisecond of simulated time at typical access costs,
	// comparable to an OS scheduler's minimum granularity. Smaller
	// quanta interleave tenants more finely but cold-start the
	// (simulated) TLB and the host caches on every switch; 8k keeps
	// the 64-tenant per-access cost within ~1.1x of single-tenant.
	DefaultSlice = 8192
	// MinSlice is the floor AutoSlice scales down to for very large
	// mixes: below ~256 accesses the per-switch TLB cold-start
	// dominates the slice itself.
	MinSlice  = 256
	maxWeight = 1_000_000
	// shareSlackUnits is the arbiter's burst allowance above a
	// tenant's exact proportional share of contended promotions: a
	// few huge pages' worth, so coarse-grained (2MB) promotions don't
	// deadlock the share accounting at low totals.
	shareSlackUnits = 2 * tier.SubPages
)

// Config is a multi-tenant run plan.
type Config struct {
	Tenants []Spec
	// Slice is the scheduler quantum in accesses (default
	// DefaultSlice). Large tenant counts want a smaller slice so
	// every tenant runs within a bounded budget.
	Slice uint64
	// OnChurn, when set, runs after every applied churn event —
	// the churn property test audits the machine here.
	OnChurn func(kind ChurnKind, tenant int)
}

// Validate checks the config bounds.
func (c *Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("tenant: no tenants")
	}
	if len(c.Tenants) > MaxTenants {
		return fmt.Errorf("tenant: %d tenants exceeds the %d bound", len(c.Tenants), MaxTenants)
	}
	immortal := false
	seen := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Workload == nil {
			return fmt.Errorf("tenant %d: nil workload", i)
		}
		if t.Weight > maxWeight {
			return fmt.Errorf("tenant %d: weight %d exceeds the %d bound", i, t.Weight, maxWeight)
		}
		for _, f := range [...]struct {
			name string
			v    float64
		}{{"SpawnFrac", t.SpawnFrac}, {"ExitFrac", t.ExitFrac}, {"GrowFrac", t.GrowFrac}, {"ShrinkFrac", t.ShrinkFrac}} {
			if f.v < 0 || f.v > 1 {
				return fmt.Errorf("tenant %d: %s %v outside [0,1]", i, f.name, f.v)
			}
		}
		if t.ExitFrac > 0 && t.SpawnFrac >= t.ExitFrac {
			return fmt.Errorf("tenant %d: spawns at %v, at or after its exit %v", i, t.SpawnFrac, t.ExitFrac)
		}
		if t.GrowBytes > 0 && t.ShrinkFrac > 0 && t.ShrinkFrac <= t.GrowFrac {
			return fmt.Errorf("tenant %d: shrinks at %v, at or before its grow %v", i, t.ShrinkFrac, t.GrowFrac)
		}
		if t.ExitFrac == 0 {
			immortal = true
		}
		name := tenantName(t, i)
		if seen[name] {
			return fmt.Errorf("tenant %d: duplicate name %q", i, name)
		}
		seen[name] = true
	}
	if !immortal {
		return fmt.Errorf("tenant: every tenant exits; at least one must run to the end")
	}
	return nil
}

func tenantName(t *Spec, i int) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("t%d", i)
}

// Runner drives a Config as a sim.Workload. It is immutable after New
// — all per-run state lives in the run struct — so one Runner is safe
// to share across parallel matrix cells, like scenario runners.
type Runner struct {
	cfg Config
}

// New validates the config and builds a Runner.
func New(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Slice == 0 {
		cfg.Slice = AutoSlice(len(cfg.Tenants))
	}
	return &Runner{cfg: cfg}, nil
}

// AutoSlice returns the default scheduler quantum for n tenants:
// DefaultSlice up to 64 tenants (the historical fixed default), then
// scaled down so one full fairness rotation over every tenant fits the
// same window 64 tenants get (n*slice <= 64*DefaultSlice), floored at
// MinSlice. At 1024 tenants this tightens the quantum to 512 accesses,
// so every tenant is still scheduled within a bounded fraction of a
// typical budget instead of the rotation stretching 16x.
func AutoSlice(n int) uint64 {
	const window = 64 * DefaultSlice
	s := uint64(DefaultSlice)
	if n > 0 && uint64(n)*s > window {
		s = window / uint64(n)
		if s < MinSlice {
			s = MinSlice
		}
	}
	return s
}

// Name implements sim.Workload.
func (r *Runner) Name() string { return "tenants" }

// Run implements sim.Workload: it interleaves the tenants' workloads
// on m until exactly `accesses` accesses have been issued machine-wide
// (every tenant's workload is given the global budget as its nominal
// target; the scheduler preempts and finally kills them at slice and
// budget boundaries, so the total always lands exactly). The machine
// must be fresh: single-space, no other AccessObserver, not previously
// run.
func (r *Runner) Run(m *sim.Machine, accesses uint64) {
	st := newRun(r, m, accesses)
	defer st.finalize()
	defer st.killAll()
	for {
		st.fireChurn()
		if m.TotalAccesses() >= st.target {
			return
		}
		p := st.pick()
		if p == nil {
			return
		}
		st.schedule(p)
	}
}

// killedPanic unwinds a fallback tenant goroutine the scheduler
// terminates (budget exhausted or exit churn); procMain recovers
// exactly this type and re-raises anything else.
type killedPanic struct{}

// proc is one tenant's execution state. Streaming tenants (streamer
// non-nil) are driven inline: their suspended drive state is the
// stream field and the channels stay nil. Fallback tenants run their
// workload on a dedicated goroutine with the resume channel as the
// scheduling baton, exactly the historical design.
type proc struct {
	id       int
	spec     *Spec
	streamer workload.Streamer // nil: goroutine-baton fallback
	stream   workload.Stream   // suspended drive state once begun
	begun    bool
	resume   chan struct{}
	done     chan struct{}
	started  bool
	finished bool
	killed   bool
	live     bool
}

type churnEvent struct {
	at     uint64
	tenant int
	kind   ChurnKind
}

// tenantBatch is the inline scheduler's issue granularity, matching
// the workload package's batched drive: large enough to amortise the
// budget checks and stepper indirection, small enough that the Op
// buffer stays L1-resident.
const tenantBatch = 256

// run is the per-Run mutable state: scheduler, churn plan and arbiter.
type run struct {
	m      *sim.Machine
	cfg    *Config
	target uint64
	slice  uint64

	procs    []*proc
	names    []string
	yield    chan *proc
	active   *proc
	sliceEnd uint64

	// pk is the weighted pick state (see wpick): tenants are credited
	// when runnable, cleared when finished or exited.
	pk *wpick

	// buf is the inline scheduler's access batch (no allocation on the
	// slice path).
	buf [tenantBatch]sim.Op

	events []churnEvent
	nextEv int
	grown  []vm.Region

	arb *arbiter

	rng uint64
}

// setRunnable credits tenant i's weight to the pick tree (no-op when
// already runnable).
func (st *run) setRunnable(i int) { st.pk.set(i, st.arb.weight(i)) }

// clearRunnable removes tenant i's weight from the pick tree (no-op
// when not runnable).
func (st *run) clearRunnable(i int) { st.pk.clear(i) }

func newRun(r *Runner, m *sim.Machine, accesses uint64) *run {
	n := len(r.cfg.Tenants)
	st := &run{
		m:      m,
		cfg:    &r.cfg,
		target: accesses,
		slice:  r.cfg.Slice,
		procs:  make([]*proc, n),
		names:  make([]string, n),
		yield:  make(chan *proc),
		pk:     newWpick(n),
		grown:  make([]vm.Region, n),
		rng:    uint64(m.Cfg.Seed) ^ 0x74_65_6e_61_6e_74, // "tenant"
	}
	specs := make([]*Spec, n)
	for i := range r.cfg.Tenants {
		st.names[i] = tenantName(&r.cfg.Tenants[i], i)
		specs[i] = &r.cfg.Tenants[i]
	}
	st.arb = newArbiter(m, specs, st.names)
	// Install the veto hook on the root space first: AddSpace copies it
	// onto every additional space. The access observer is installed
	// only while a fallback tenant's goroutine runs.
	m.AS.MigrateVeto = st.arb.veto
	// Tenant i owns space i; tenant 0 keeps the root space, so a
	// one-tenant run stays on the single-space fast path.
	for i := 1; i < n; i++ {
		if id := m.AddSpace(st.names[i]); id != i {
			panic("tenant: machine not fresh (spaces already added)")
		}
	}
	if n > 1 {
		m.SetSpaceLabel(0, st.names[0])
	}
	for i := range r.cfg.Tenants {
		t := &r.cfg.Tenants[i]
		p := &proc{id: i, spec: t}
		if s, ok := t.Workload.(workload.Streamer); ok {
			p.streamer = s
		} else {
			p.resume = make(chan struct{})
			p.done = make(chan struct{})
		}
		st.procs[i] = p
		if t.SpawnFrac <= 0 {
			p.live = true
			st.arb.addLive(i)
			st.setRunnable(i)
			m.Tracer().Emit(obs.EvTenantSpawn, uint64(i), false, 0, 0)
		} else {
			st.events = append(st.events, churnEvent{st.frac(t.SpawnFrac), i, ChurnSpawn})
		}
		if t.GrowBytes > 0 {
			st.events = append(st.events, churnEvent{st.frac(t.GrowFrac), i, ChurnGrow})
			if t.ShrinkFrac > 0 {
				st.events = append(st.events, churnEvent{st.frac(t.ShrinkFrac), i, ChurnShrink})
			}
		}
		if t.ExitFrac > 0 {
			st.events = append(st.events, churnEvent{st.frac(t.ExitFrac), i, ChurnExit})
		}
	}
	sortChurn(st.events)
	return st
}

// sortChurn orders a churn plan by (threshold, kind, tenant) — the
// intra-threshold application order both schedulers share.
func sortChurn(events []churnEvent) {
	sort.SliceStable(events, func(a, b int) bool {
		ea, eb := events[a], events[b]
		if ea.at != eb.at {
			return ea.at < eb.at
		}
		if ea.kind != eb.kind {
			return ea.kind < eb.kind
		}
		return ea.tenant < eb.tenant
	})
}

func (st *run) frac(f float64) uint64 { return uint64(f * float64(st.target)) }

// rand is a SplitMix64 step — the scheduler's only randomness, fully
// determined by the machine seed.
func (st *run) rand() uint64 {
	st.rng += 0x9e3779b97f4a7c15
	z := st.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// fireChurn applies every lifecycle event whose threshold has passed.
func (st *run) fireChurn() {
	for st.nextEv < len(st.events) && st.events[st.nextEv].at <= st.m.TotalAccesses() {
		ev := st.events[st.nextEv]
		st.nextEv++
		st.apply(ev)
	}
}

func (st *run) apply(ev churnEvent) {
	p := st.procs[ev.tenant]
	switch ev.kind {
	case ChurnSpawn:
		p.live = true
		st.arb.addLive(ev.tenant)
		st.setRunnable(ev.tenant)
		st.m.Tracer().Emit(obs.EvTenantSpawn, uint64(ev.tenant), false, 0, 0)
	case ChurnExit:
		st.exit(p)
	case ChurnGrow:
		st.grow(p)
	case ChurnShrink:
		st.shrink(p)
	}
	st.arb.checkFloors()
	if st.cfg.OnChurn != nil {
		st.cfg.OnChurn(ev.kind, ev.tenant)
	}
}

// exit kills the tenant's goroutine (it is parked or unstarted — the
// scheduler holds the baton) and frees its entire address space.
func (st *run) exit(p *proc) {
	if !p.live {
		return
	}
	st.kill(p)
	p.live = false
	st.arb.removeLive(p.id)
	as := st.m.Space(p.id)
	released := as.ResidentUnits() * tier.BasePageSize
	st.m.UseSpace(p.id)
	st.m.FreeRegion(vm.Region{BaseVPN: 0, Pages: as.ReservedPages()})
	st.m.Tracer().Emit(obs.EvTenantExit, uint64(p.id), false, released, 0)
}

// grow reserves the tenant's churn region and write-touches it
// (scheduler-issued accesses: the observer sees no active proc, so
// they never park; they do count against the global budget).
func (st *run) grow(p *proc) {
	if !p.live || p.spec.GrowBytes == 0 {
		return
	}
	st.m.UseSpace(p.id)
	reg := st.m.Reserve(p.spec.GrowBytes)
	st.grown[p.id] = reg
	for vpn := reg.BaseVPN; vpn < reg.BaseVPN+reg.Pages && st.m.TotalAccesses() < st.target; vpn++ {
		st.m.Access(vpn, true)
	}
}

func (st *run) shrink(p *proc) {
	if !p.live || st.grown[p.id].Pages == 0 {
		return
	}
	st.m.UseSpace(p.id)
	st.m.FreeRegion(st.grown[p.id])
	st.grown[p.id] = vm.Region{}
}

// pick draws the next tenant to run, weighted by share weight among
// live, unfinished tenants; nil when none are runnable. The draw is a
// Fenwick prefix-sum search — the selected tenant is exactly the one
// the historical linear cumulative-weight scan would return for the
// same draw, so the scheduling sequence is unchanged.
func (st *run) pick() *proc {
	if st.pk.sum == 0 {
		return nil
	}
	return st.procs[st.pk.pick(st.rand()%st.pk.sum)]
}

// schedule runs p for one slice, bounded by the next churn threshold
// and the global budget: inline batch issue for streaming tenants,
// baton handoff for fallback tenants.
func (st *run) schedule(p *proc) {
	now := st.m.TotalAccesses()
	end := now + st.slice
	if st.nextEv < len(st.events) && st.events[st.nextEv].at < end {
		end = st.events[st.nextEv].at
	}
	if st.target < end {
		end = st.target
	}
	st.m.UseSpace(p.id)
	st.m.Tracer().Emit(obs.EvTenantSwitch, uint64(p.id), false, 0, end-now)
	if p.streamer != nil {
		st.runSlice(p, end)
	} else {
		st.runBaton(p, end)
	}
	st.arb.checkFloor(p.id)
}

// runSlice drives a streaming tenant inline until the machine reaches
// the slice end or the tenant's own budget is spent. The batch bound
// is exact — each Access advances both counters by exactly one and
// nothing else does mid-batch — so the accesses issued are precisely
// those the observer-parked goroutine would have issued: the baton
// parks after the access that reaches the boundary, the batch simply
// stops issuing there.
func (st *run) runSlice(p *proc, end uint64) {
	if !p.begun {
		p.begun = true
		m := st.m
		p.stream = p.streamer.Stream(workload.Env{Reserve: m.Reserve, Seed: m.Cfg.Seed})
	}
	step, fill := p.stream.Step, p.stream.Fill
	for {
		total := st.m.TotalAccesses()
		if total >= end {
			return
		}
		done := st.m.Accesses()
		if done >= st.target {
			// The tenant's own (per-space) budget is spent: its Run
			// loop would have returned here.
			p.finished = true
			st.clearRunnable(p.id)
			return
		}
		n := end - total
		if r := st.target - done; r < n {
			n = r
		}
		if n > tenantBatch {
			n = tenantBatch
		}
		if fill != nil {
			fill(st.buf[:n])
		} else {
			for i := uint64(0); i < n; i++ {
				st.buf[i].VPN, st.buf[i].Write = step()
			}
		}
		st.m.AccessBatch(st.buf[:n])
	}
}

// runBaton hands the baton to a fallback tenant's goroutine for one
// slice and takes it back when the tenant parks (observe) or its
// workload returns. The observer is installed only for the duration:
// inline slices never pay the per-access callback.
func (st *run) runBaton(p *proc, end uint64) {
	st.sliceEnd = end
	st.active = p
	st.m.AccessObserver = st.observe
	if !p.started {
		p.started = true
		go st.procMain(p)
	}
	p.resume <- struct{}{}
	select {
	case <-st.yield:
	case <-p.done:
		p.finished = true
		st.clearRunnable(p.id)
	}
	st.m.AccessObserver = nil
	st.active = nil
}

// observe is the machine's AccessObserver while a fallback tenant
// runs: it preempts the tenant once its slice is used up. It runs on
// the tenant's goroutine; the yield send blocks until the scheduler
// takes the baton back, and the resume receive blocks until the
// tenant is scheduled again.
func (st *run) observe(vpn uint64, write bool, now uint64) {
	p := st.active
	if p == nil || st.m.TotalAccesses() < st.sliceEnd {
		return
	}
	st.yield <- p
	<-p.resume
	if p.killed {
		panic(killedPanic{})
	}
}

// procMain is a fallback tenant's goroutine: wait for the first
// slice, run the workload against the (already switched) machine, and
// swallow only the scheduler's kill panic.
func (st *run) procMain(p *proc) {
	defer close(p.done)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); !ok {
				panic(r)
			}
		}
	}()
	<-p.resume
	if p.killed {
		return
	}
	p.spec.Workload.Run(st.m, st.target)
}

// kill finishes p, terminating its goroutine if one is running
// (parked — the scheduler holds the baton whenever kill runs);
// streaming tenants have no goroutine and are simply marked done.
func (st *run) kill(p *proc) {
	if p.started && !p.finished {
		p.killed = true
		p.resume <- struct{}{}
		<-p.done
	}
	p.finished = true
	st.clearRunnable(p.id)
}

func (st *run) killAll() {
	for _, p := range st.procs {
		st.kill(p)
	}
}

// finalize publishes the end-of-run per-tenant gauges and detaches the
// scheduler from the machine.
func (st *run) finalize() {
	st.arb.finalize()
	st.m.AccessObserver = nil
	st.active = nil
}
