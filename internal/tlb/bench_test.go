// Translation micro-benchmarks: Access is called once per simulated
// memory access, so its hit path is the tightest inner loop in the
// repository after the machine core itself. Benchmarked per path —
// resident hits, capacity misses, and huge-page hits — so a regression
// in one shows up undiluted by the others.
package tlb

import "testing"

// benchVPNs precomputes a probe sequence so RNG cost stays out of the
// measured loop. stride spaces consecutive probes; span bounds the
// footprint in pages.
func benchVPNs(span, stride uint64) []uint64 {
	vpns := make([]uint64, 1<<12)
	for i := range vpns {
		vpns[i] = (uint64(i) * stride) % span
	}
	return vpns
}

func BenchmarkAccessHit(b *testing.B) {
	tl := New(Config{})
	// Footprint well under the 1536-entry capacity: steady state is
	// all hits.
	vpns := benchVPNs(1024, 7)
	for _, v := range vpns {
		tl.Access(v, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Access(vpns[i&(len(vpns)-1)], false)
	}
}

func BenchmarkAccessMiss(b *testing.B) {
	tl := New(Config{})
	// Footprint 16x capacity with a large stride: essentially every
	// probe walks.
	vpns := benchVPNs(16*1536, 1031)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Access(vpns[i&(len(vpns)-1)], false)
	}
}

func BenchmarkAccessHugeHit(b *testing.B) {
	tl := New(Config{})
	// 256 huge pages resident; probes spread across their subpages.
	vpns := benchVPNs(256*512, 509)
	for _, v := range vpns {
		tl.Access(v, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.Access(vpns[i&(len(vpns)-1)], true)
	}
}
