// Regression tests for the iteration-order and cursor-walk guarantees
// that the incremental classification structures (DESIGN.md §8) and the
// byte-identical-across-workers trace tests rely on.
package vm

import (
	"math/rand"
	"testing"

	"memtis/internal/tier"
)

// TestForEachPageDeterministicOrder pins the documented contract:
// ForEachPage visits live pages in strictly ascending VPN order, each
// exactly once, regardless of fault order and split/collapse history.
func TestForEachPageDeterministicOrder(t *testing.T) {
	as := newAS(t, 16, 64, true)
	r := as.Reserve(8 * tier.HugePageSize)

	// Fault in a shuffled mix of huge and base pages.
	rng := rand.New(rand.NewSource(42))
	order := rng.Perm(int(r.Pages))
	for _, off := range order {
		as.Touch(r.BaseVPN+uint64(off), false)
	}
	// Split one huge page so iteration crosses a replaced region.
	var firstHuge *Page
	as.ForEachPage(func(p *Page) {
		if firstHuge == nil && p.IsHuge() {
			firstHuge = p
		}
	})
	if firstHuge == nil {
		t.Fatal("no huge page faulted in")
	}
	for i := uint64(0); i < 64; i++ {
		as.Touch(firstHuge.VPN+i, true)
	}
	if subs, _ := as.Split(firstHuge, func(int) tier.ID { return tier.NoTier }); len(subs) == 0 {
		t.Fatal("split produced no subpages")
	}

	collect := func() []uint64 {
		var vpns []uint64
		as.ForEachPage(func(p *Page) { vpns = append(vpns, p.VPN) })
		return vpns
	}
	got := collect()
	if len(got) != as.LivePages() {
		t.Fatalf("visited %d pages, LivePages = %d", len(got), as.LivePages())
	}
	seen := make(map[uint64]bool, len(got))
	for i, v := range got {
		if seen[v] {
			t.Fatalf("page %d visited twice", v)
		}
		seen[v] = true
		if i > 0 && got[i-1] >= v {
			t.Fatalf("iteration not strictly ascending: vpn %d after %d", v, got[i-1])
		}
	}
	// Re-running yields the identical sequence.
	again := collect()
	for i := range got {
		if again[i] != got[i] {
			t.Fatalf("iteration order unstable at index %d: %d vs %d", i, got[i], again[i])
		}
	}
}

// TestForEachPageFromCoversAllPages checks the cursor walker's core
// property: chaining calls with the returned cursor visits every live
// page exactly once per full cycle, for any window size.
func TestForEachPageFromCoversAllPages(t *testing.T) {
	as := newAS(t, 16, 64, true)
	r := as.Reserve(6 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i += 3 { // sparse: every third slot
		as.Touch(r.BaseVPN+i, false)
	}
	live := as.LivePages()

	for _, window := range []int{1, 7, 64, 100000} {
		visits := make(map[uint64]int)
		cursor := uint64(0)
		// One full cycle: keep walking until the total visit count
		// reaches the live-page count, bounded to catch livelock.
		total := 0
		for steps := 0; total < live; steps++ {
			if steps > live+16 {
				t.Fatalf("window %d: walker failed to cover %d pages (visited %d)", window, live, total)
			}
			before := total
			cursor = as.ForEachPageFrom(cursor, window, func(p *Page) {
				visits[p.VPN]++
				total++
			})
			if total == before && window > 0 {
				t.Fatalf("window %d: walker made no progress at cursor %d", window, cursor)
			}
		}
		for vpn, n := range visits {
			if n != 1 {
				t.Fatalf("window %d: page %d visited %d times in one cycle", window, vpn, n)
			}
		}
		if len(visits) != live {
			t.Fatalf("window %d: covered %d pages, want %d", window, len(visits), live)
		}
	}
}

// TestForEachPageFromResumeMidHugePage checks the documented layout-
// change behaviour: a cursor that lands inside a huge page (because the
// region was collapsed between calls) visits that page once and resumes
// past it, never looping on the same page.
func TestForEachPageFromResumeMidHugePage(t *testing.T) {
	as := newAS(t, 16, 64, true)
	r := as.Reserve(2 * tier.HugePageSize)
	as.Touch(r.BaseVPN, false)
	as.Touch(r.BaseVPN+tier.SubPages, false)

	// Cursor pointing mid-way into the first huge page.
	cursor := r.BaseVPN + 100
	var got []uint64
	cursor = as.ForEachPageFrom(cursor, 1, func(p *Page) { got = append(got, p.VPN) })
	if len(got) != 1 || got[0] != r.BaseVPN {
		t.Fatalf("mid-page cursor visited %v, want [%d]", got, r.BaseVPN)
	}
	if cursor != r.BaseVPN+tier.SubPages {
		t.Fatalf("cursor resumed at %d, want next page %d", cursor, r.BaseVPN+tier.SubPages)
	}
}

// TestForEachPageAllocFree pins the scratch-buffer contract directly:
// after a first (warming) walk, further walks allocate nothing, and a
// nested walk from inside the callback still sees every page exactly
// once (it falls back to a private snapshot rather than clobbering the
// outer one).
func TestForEachPageAllocFree(t *testing.T) {
	as := newAS(t, 16, 64, true)
	r := as.Reserve(4 * tier.HugePageSize)
	for i := uint64(0); i < r.Pages; i += 2 {
		as.Touch(r.BaseVPN+i, false)
	}
	live := as.LivePages()
	as.ForEachPage(func(p *Page) {}) // warm the scratch buffer
	if avg := testing.AllocsPerRun(20, func() {
		n := 0
		as.ForEachPage(func(p *Page) { n++ })
		if n != live {
			t.Fatalf("walk visited %d pages, want %d", n, live)
		}
	}); avg != 0 {
		t.Fatalf("steady-state ForEachPage allocates %.1f objects per walk, want 0", avg)
	}
	outer, inner := 0, 0
	as.ForEachPage(func(p *Page) {
		outer++
		if outer == 1 {
			as.ForEachPage(func(q *Page) { inner++ })
		}
	})
	if outer != live || inner != live {
		t.Fatalf("nested walk visited outer=%d inner=%d, want %d each", outer, inner, live)
	}
}

// TestForEachPageFromShrinkResume pins the cursor-clamp contract when
// the table shrinks between calls: Free of a trailing region trims the
// page table, and a cursor handed out before the trim must fold back
// into range deterministically (cursor mod table length) — not snap to
// 0, which would restart every in-flight background sweep at the low
// VPNs and starve the high end of cooling coverage.
func TestForEachPageFromShrinkResume(t *testing.T) {
	as := newAS(t, 16, 64, true)
	low := as.Reserve(2 * tier.HugePageSize)
	high := as.Reserve(2 * tier.HugePageSize)
	for i := uint64(0); i < low.Pages; i++ {
		as.Touch(low.BaseVPN+i, false)
	}
	for i := uint64(0); i < high.Pages; i++ {
		as.Touch(high.BaseVPN+i, false)
	}

	// Walk into the high region, then free it: the trailing trim
	// shrinks the table below the cursor.
	cursor := as.ForEachPageFrom(high.BaseVPN, 1, func(p *Page) {})
	as.Free(high)
	if got, want := uint64(len(as.pt)), low.BaseVPN+low.Pages; got != want {
		t.Fatalf("trailing free left table at %d entries, want %d", got, want)
	}
	if cursor < uint64(len(as.pt)) {
		t.Fatalf("test stale-cursor setup broken: cursor %d inside table %d", cursor, len(as.pt))
	}

	// The stale cursor must resume at cursor mod len, deterministically:
	// two identical walks from it visit the same first page, and a full
	// cycle still covers every surviving page exactly once.
	first := func() uint64 {
		var v uint64 = ^uint64(0)
		as.ForEachPageFrom(cursor, 1, func(p *Page) { v = p.VPN })
		return v
	}
	f1, f2 := first(), first()
	if f1 != f2 {
		t.Fatalf("stale cursor resumed non-deterministically: %d vs %d", f1, f2)
	}
	if want := as.Lookup(cursor % uint64(len(as.pt))); want == nil || f1 < want.VPN {
		t.Fatalf("stale cursor resumed at %d, before its folded position %d", f1, cursor%uint64(len(as.pt)))
	}
	live := as.LivePages()
	visits := make(map[uint64]int)
	c, total := cursor, 0
	for steps := 0; total < live; steps++ {
		if steps > live+16 {
			t.Fatalf("post-shrink walker failed to cover %d pages (visited %d)", live, total)
		}
		c = as.ForEachPageFrom(c, 3, func(p *Page) {
			visits[p.VPN]++
			total++
		})
	}
	for vpn, n := range visits {
		if n != 1 {
			t.Fatalf("post-shrink cycle visited page %d %d times", vpn, n)
		}
	}
	if len(visits) != live {
		t.Fatalf("post-shrink cycle covered %d pages, want %d", len(visits), live)
	}
}

// TestForEachPageFromEmptySpace: no live pages terminates immediately.
func TestForEachPageFromEmptySpace(t *testing.T) {
	as := newAS(t, 4, 16, true)
	as.Reserve(tier.HugePageSize) // reserved but never faulted
	calls := 0
	as.ForEachPageFrom(0, 100, func(p *Page) { calls++ })
	if calls != 0 {
		t.Fatalf("visited %d pages in an empty address space", calls)
	}
}
