package policy

import (
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// MaxSyncStallNS is the contract bound on what one OnAccess may add to
// the application's critical path under the given (valid) fault plan:
// up to two huge-page sync migrations (a demote-to-make-room plus the
// promotion), each allowed its full retry budget of throttled copies
// with exponential backoff, plus the shootdowns, in-fault bookkeeping,
// the hint-fault service itself, one fault-injected access stall, and
// rounding slack. A policy exceeding it is stalling the application on
// work that belongs in the background. The conformance suites — both
// internal/policy's and internal/scenario's — assert this single
// formula, so the bound cannot drift between them. The zero FaultConfig
// yields the fault-free bound.
func MaxSyncStallNS(fc tier.FaultConfig) uint64 {
	plan := tier.NewFaultPlan(fc) // nil when disabled; fills defaults
	eff := plan.Config()
	var backoff uint64
	for i := 0; i < plan.MaxRetries(); i++ {
		backoff += plan.RetryBackoffNS(i)
	}
	factor := uint64(1)
	if eff.ThrottlePeriodNS > 0 && eff.ThrottleDutyNS > 0 {
		factor = eff.ThrottleFactor
	}
	attempts := uint64(plan.MaxRetries() + 1)
	perMigration := attempts*factor*vm.MigrateHugeNS + vm.ShootdownNS + SyncExtraNS + backoff
	return 2*perMigration + vm.HugeFaultNS + HintFaultNS + eff.StallNS + 100_000
}
