package fastmod

import (
	"math"
	"testing"
)

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ x>>31
}

// TestModExact checks the reciprocal remainder against the % operator:
// edge and random dividends crossed with edge divisors, powers of two,
// the span and set-count sizes the simulator actually uses, and random
// divisors. The construction is exact for all 64-bit inputs, so any
// mismatch at all is a bug.
func TestModExact(t *testing.T) {
	divs := []uint64{
		1, 2, 3, 5, 7, 8, 255, 256, 257, 512, 4095, 4096,
		// TLB set counts (entries/ways rounded up) and TenantLoad spans:
		// pages of 1MiB..64MiB regions and their /8 hot sets.
		192, 128, 32, 2048, 16384, 1 << 20, 1 << 17,
		(1 << 32) - 1, 1 << 32, (1 << 32) + 1,
		math.MaxUint64, math.MaxUint64 - 1, math.MaxUint64 / 3,
	}
	ns := []uint64{
		0, 1, 2, 3, 254, 255, 256, 4095, 4096, 4097,
		(1 << 32) - 1, 1 << 32, (1 << 32) + 1,
		math.MaxUint64, math.MaxUint64 - 1,
	}
	for _, d := range divs {
		f := New(d)
		for _, n := range ns {
			if got, want := f.Mod(n), n%d; got != want {
				t.Fatalf("Mod(%d) for d=%d: got %d want %d", n, d, got, want)
			}
		}
		// Random dividends, and dividends clustered around multiples of d.
		x := d ^ 0x9e3779b97f4a7c15
		for i := 0; i < 2000; i++ {
			x = splitmix(x)
			if got, want := f.Mod(x), x%d; got != want {
				t.Fatalf("Mod(%d) for d=%d: got %d want %d", x, d, got, want)
			}
			near := (x % 64) * (d / 2) // wraps freely; still a valid dividend
			if got, want := f.Mod(near), near%d; got != want {
				t.Fatalf("Mod(%d) for d=%d: got %d want %d", near, d, got, want)
			}
		}
	}
	// Random divisors x random dividends.
	x := uint64(0xdeadbeefcafe)
	for i := 0; i < 500; i++ {
		x = splitmix(x)
		d := x | 1 // avoid 0
		f := New(d)
		y := x
		for j := 0; j < 50; j++ {
			y = splitmix(y)
			if got, want := f.Mod(y), y%d; got != want {
				t.Fatalf("Mod(%d) for d=%d: got %d want %d", y, d, got, want)
			}
		}
	}
}
