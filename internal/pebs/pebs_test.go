package pebs

import (
	"testing"
	"testing/quick"
)

func TestSamplingCadence(t *testing.T) {
	s := NewSampler(Config{LoadPeriod: 10, StorePeriod: 100, MinPeriod: 10, MaxPeriod: 10})
	var loads, stores int
	for i := 0; i < 1000; i++ {
		if _, ok := s.Feed(uint64(i), false); ok {
			loads++
		}
	}
	for i := 0; i < 1000; i++ {
		if _, ok := s.Feed(uint64(i), true); ok {
			stores++
		}
	}
	if loads != 100 {
		t.Fatalf("loads sampled %d, want 100", loads)
	}
	if stores != 10 {
		t.Fatalf("stores sampled %d, want 10", stores)
	}
	if s.Samples() != 110 {
		t.Fatalf("Samples = %d", s.Samples())
	}
}

func TestSampleCarriesAddress(t *testing.T) {
	s := NewSampler(Config{LoadPeriod: 1, StorePeriod: 1, MinPeriod: 1, MaxPeriod: 1})
	smp, ok := s.Feed(42, false)
	if !ok || smp.VPN != 42 || smp.Write {
		t.Fatalf("sample: %+v ok=%v", smp, ok)
	}
	smp, _ = s.Feed(43, true)
	if smp.VPN != 43 || !smp.Write {
		t.Fatalf("store sample: %+v", smp)
	}
}

func TestControllerThrottlesUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSampler(cfg)
	// Very high sample rate relative to virtual time: CPU usage above
	// budget, so the period must grow.
	var now uint64
	for i := 0; i < 200_000; i++ {
		s.Feed(uint64(i), false)
		now += 20 // 20ns per access -> usage = 160/(20*20) = 40%
		s.MaybeAdjust(now)
	}
	if s.LoadPeriod() <= cfg.LoadPeriod {
		t.Fatalf("period did not grow: %d", s.LoadPeriod())
	}
	if s.LoadPeriod() > cfg.MaxPeriod {
		t.Fatalf("period exceeded max: %d", s.LoadPeriod())
	}
	// Store period scales with the load period.
	if s.StorePeriod() != s.LoadPeriod()*(cfg.StorePeriod/cfg.LoadPeriod) {
		t.Fatalf("store period %d not scaled with load period %d", s.StorePeriod(), s.LoadPeriod())
	}
}

func TestControllerRelaxesWhenIdle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadPeriod = 140
	s := NewSampler(cfg)
	var now uint64
	for i := 0; i < 200_000; i++ {
		s.Feed(uint64(i), false)
		now += 4000 // very slow accesses: usage ~ 160/(140*4000) << budget
		s.MaybeAdjust(now)
	}
	if s.LoadPeriod() >= 140 {
		t.Fatalf("period did not shrink: %d", s.LoadPeriod())
	}
	if s.LoadPeriod() < cfg.MinPeriod {
		t.Fatalf("period below min: %d", s.LoadPeriod())
	}
}

func TestHysteresisHoldsInsideBand(t *testing.T) {
	cfg := DefaultConfig()
	s := NewSampler(cfg)
	// Tune access cost so usage sits exactly at the budget: period 20,
	// cost 160 -> accessNS = 160/(0.03*20) = 266.
	var now uint64
	for i := 0; i < 400_000; i++ {
		s.Feed(uint64(i), false)
		now += 266
		s.MaybeAdjust(now)
	}
	if s.LoadPeriod() != cfg.LoadPeriod {
		t.Fatalf("period moved inside hysteresis band: %d", s.LoadPeriod())
	}
	if u := s.AvgCPUUsage(); u < 0.02 || u > 0.04 {
		t.Fatalf("avg usage %v outside expected band", u)
	}
}

func TestSpentNSAccumulates(t *testing.T) {
	s := NewSampler(Config{LoadPeriod: 2, StorePeriod: 2, MinPeriod: 2, MaxPeriod: 2, CostNS: 100})
	for i := 0; i < 10; i++ {
		s.Feed(0, false)
	}
	if s.SpentNS() != 5*100 {
		t.Fatalf("SpentNS = %d", s.SpentNS())
	}
}

func TestQuickSampleRateBounded(t *testing.T) {
	// Regardless of adjustment dynamics, samples <= accesses/minPeriod.
	prop := func(n uint16, seed int64) bool {
		s := NewSampler(DefaultConfig())
		total := int(n) + 1000
		var now uint64
		for i := 0; i < total; i++ {
			s.Feed(uint64(i), i%7 == 0)
			now += uint64(50 + (seed+int64(i))%200)
			s.MaybeAdjust(now)
		}
		return s.Samples() <= uint64(total)/DefaultConfig().MinPeriod+2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
