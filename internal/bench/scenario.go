// Scenario entry points: run declarative internal/scenario specs
// through the same machines, cell seeding and parallel fan-out as the
// Table 2 workloads, plus the seed-driven pathology hunt the CI fuzz
// jobs call (generate -> run under the conformance probe -> shrink any
// failure to a minimal reproducer file).
package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"

	"memtis/internal/obs"
	"memtis/internal/scenario"
	"memtis/internal/sim"
	"memtis/internal/tenant"
	"memtis/internal/tier"
)

// ScenarioMachine builds the machine configuration for a compiled
// scenario at a tiering ratio, sized like MachineFor: the fast tier is
// the constrained resource at r.FastFrac of the scenario's peak
// resident estimate, the capacity tier holds everything with headroom.
// A fault plan declared by the scenario spec overrides the harness
// config's schedule. (Scenarios carry no Table 3 over-allocation data,
// so HeMem runs without MachineFor's fast-tier reduction.)
func ScenarioMachine(sc *scenario.Runner, r Ratio, cfg Config) sim.Config {
	rss := sc.RSSBytes()
	fast := uint64(float64(rss) * r.FastFrac)
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	faults := cfg.Faults
	if fc := sc.FaultConfig(); fc.Enabled() {
		faults = fc
	}
	return sim.Config{
		FastBytes: fast,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   cfg.CapKind,
		THP:       true,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		RecordNS:  cfg.RecordNS,
		Trace:     cfg.Trace,
		Faults:    faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
}

// RunScenario executes one (scenario, policy, ratio) cell.
func RunScenario(sc *scenario.Runner, polName string, r Ratio, cfg Config) sim.Result {
	mc := ScenarioMachine(sc, r, cfg)
	return sim.Run(mc, NewPolicy(polName), sc, cfg.Accesses)
}

// RunScenarioBaseline executes the scenario's all-capacity-tier
// normalisation run (the RunBaseline analogue).
func RunScenarioBaseline(sc *scenario.Runner, cfg Config) sim.Result {
	rss := sc.RSSBytes()
	faults := cfg.Faults
	if fc := sc.FaultConfig(); fc.Enabled() {
		faults = fc
	}
	mc := sim.Config{
		FastBytes: tier.HugePageSize * 2, // minimal, unused
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   cfg.CapKind,
		THP:       true,
		Threads:   cfg.Threads,
		Seed:      cfg.Seed,
		Trace:     cfg.Trace,
		Faults:    faults,
		Topology:  cfg.Topology,
		Admission: cfg.Admission,
		Mover:     cfg.Mover,
	}
	return sim.Run(mc, NewPolicy("all-capacity"), sc, cfg.Accesses)
}

// RunScenarioMatrix executes the (scenario x ratio x policy) matrix
// plus per-scenario all-capacity baselines, exactly like RunMatrix over
// workloads: per-cell seeds via CellConfig keyed on the scenario name,
// optional per-cell event traces under cfg.EventDir, results assembled
// in plot order regardless of completion order. Compiled Runners are
// immutable, so parallel cells share them safely. Nil ratios/pols
// select the Figure 5 defaults.
func (r *Runner) RunScenarioMatrix(ctx context.Context, cfg Config, scs []*scenario.Runner, ratios []Ratio, pols []string) (*Matrix, error) {
	if ratios == nil {
		ratios = MainRatios
	}
	if pols == nil {
		pols = Policies
	}
	if cfg.EventDir != "" {
		if err := os.MkdirAll(cfg.EventDir, 0o755); err != nil {
			return nil, err
		}
	}
	var (
		failMu sync.Mutex
		failed error
	)
	fail := func(err error) {
		failMu.Lock()
		if failed == nil {
			failed = err
		}
		failMu.Unlock()
	}
	bases := make([]sim.Result, len(scs))
	results := make([]sim.Result, len(scs)*len(ratios)*len(pols))
	var tasks []cellTask
	for si, sc := range scs {
		si, sc := si, sc
		sname := sc.Name()
		tasks = append(tasks, cellTask{
			label: sname + "/baseline",
			run: func() uint64 {
				ccfg := CellConfig(cfg, sname, "baseline", "all-capacity")
				closeTrace, err := cellTrace(cfg.EventDir, sname, "baseline", "all-capacity", &ccfg)
				if err != nil {
					fail(err)
					return 0
				}
				bases[si] = RunScenarioBaseline(sc, ccfg)
				if err := closeTrace(); err != nil {
					fail(err)
				}
				return bases[si].AppNS
			},
		})
		for ri, rt := range ratios {
			for pi, p := range pols {
				rt, p := rt, p
				slot := (si*len(ratios)+ri)*len(pols) + pi
				tasks = append(tasks, cellTask{
					label: fmt.Sprintf("%s/%s/%s", sname, rt.Name, p),
					run: func() uint64 {
						ccfg := CellConfig(cfg, sname, rt.Name, p)
						closeTrace, err := cellTrace(cfg.EventDir, sname, rt.Name, p, &ccfg)
						if err != nil {
							fail(err)
							return 0
						}
						results[slot] = RunScenario(sc, p, rt, ccfg)
						if err := closeTrace(); err != nil {
							fail(err)
						}
						return results[slot].AppNS
					},
				})
			}
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, fmt.Errorf("bench: writing event traces: %w", failed)
	}
	m := &Matrix{}
	for si, sc := range scs {
		for ri, rt := range ratios {
			for pi, p := range pols {
				res := results[(si*len(ratios)+ri)*len(pols)+pi]
				m.Cells = append(m.Cells, Cell{
					Workload: sc.Name(), Ratio: rt.Name, Policy: p,
					Value: Norm(res, bases[si]), Result: res,
				})
			}
		}
	}
	return m, nil
}

// HuntParams derives the (policy, ratio) a hunt iteration pairs with
// its generated scenario — a pure function of the seed, drawn from the
// full policy registry so fuzzing covers every system, not just the
// Figure 5 set.
func HuntParams(seed uint64) (string, Ratio) {
	h := splitmix64(seed ^ fnv1a("hunt-params"))
	pol := AllPolicies[h%uint64(len(AllPolicies))]
	rt := MainRatios[splitmix64(h)%uint64(len(MainRatios))]
	return pol, rt
}

// HuntShape derives the seed's machine-shape extensions: the hierarchy
// depth (2 keeps the classic two-tier pair; 3 and 4 insert derived
// intermediate tiers), whether benefit admission gates migrations,
// whether the rate-limited background mover is on, and the
// sharded-tenant shape — shards > 1 adds a tenant-sharded
// byte-identity cross-check (DESIGN.md §13) to the iteration. Like
// HuntParams it is a pure function of the seed, so the fuzzer sweeps
// the deep-hierarchy, mover/admission and tenant-sharding surfaces
// with no extra inputs and a CI failure still reproduces from the
// seed alone.
func HuntShape(seed uint64) (depth int, admission, mover bool, shards int) {
	h := splitmix64(seed ^ fnv1a("hunt-shape"))
	depth = 2 + int(h%3)
	h = splitmix64(h)
	admission = h%2 == 1
	h = splitmix64(h)
	mover = h%2 == 1
	// The draws above are unchanged, so adding the shard draw preserves
	// every historical seed's (depth, admission, mover) shape.
	h = splitmix64(h)
	shards = 1
	if h%2 == 1 {
		shards = 2 << (splitmix64(h) % 2) // 2 or 4
	}
	return depth, admission, mover, shards
}

// HuntResult is one scenario-fuzz iteration's outcome.
type HuntResult struct {
	Seed   uint64
	Policy string
	Ratio  Ratio
	// Depth, Admission, Mover and Shards record the seed's machine
	// shape (see HuntShape); Shards > 1 means the iteration also ran
	// the tenant-sharded byte-identity cross-check.
	Depth     int
	Admission bool
	Mover     bool
	Shards    int
	Spec      scenario.Spec
	Result    sim.Result
	// Violations lists the conformance-contract breaches the probe saw
	// (empty for a passing iteration); each line carries the seed.
	Violations []string
	// Minimal is the shrunk reproducer (equal to Spec when shrinking
	// could not simplify it; zero when the iteration passed).
	Minimal scenario.Spec
	// ReproPath names the written reproducer file ("" when passing or
	// when no repro directory was given).
	ReproPath string
}

// Failed reports whether the iteration violated the contract.
func (h HuntResult) Failed() bool { return len(h.Violations) > 0 }

// HuntScenario runs one iteration of the scenario pathology hunt:
// generate the seed's scenario, pair it with the seed's (policy, ratio)
// and drive it under the conformance probe. On violation, the spec is
// shrunk to a minimal still-failing reproducer and, when reproDir is
// non-empty, written there as scenario-<seed>.json with the context in
// its note. accesses <= 0 selects the hunt default (100k — large enough
// to exercise migration and churn, small enough for a fuzz iteration).
// Everything is a pure function of (seed, accesses), so a failure in a
// CI log reproduces locally from the seed alone.
func HuntScenario(seed uint64, accesses uint64, reproDir string) (HuntResult, error) {
	if accesses == 0 {
		accesses = 100_000
	}
	pol, rt := HuntParams(seed)
	depth, admit, mover, shards := HuntShape(seed)
	cfg := DefaultConfig()
	cfg.Accesses = accesses
	cfg.Seed = int64(splitmix64(seed ^ fnv1a("hunt-machine")))
	if admit {
		adm, err := tier.ParseAdmission("benefit")
		if err != nil {
			return HuntResult{}, fmt.Errorf("bench: hunt admission: %w", err)
		}
		cfg.Admission = adm
	}
	if mover {
		mc, err := tier.ParseMoverSpec("8m/1ms")
		if err != nil {
			return HuntResult{}, fmt.Errorf("bench: hunt mover: %w", err)
		}
		cfg.Mover = mc
	}
	out := HuntResult{Seed: seed, Policy: pol, Ratio: rt,
		Depth: depth, Admission: admit, Mover: mover, Shards: shards,
		Spec: scenario.Generate(seed)}
	run := func(spec scenario.Spec) ([]string, sim.Result, error) {
		sc, err := scenario.Compile(spec, scenario.Options{})
		if err != nil {
			return nil, sim.Result{}, err
		}
		if depth > 2 {
			// Derived per-candidate: shrinking can change the RSS the
			// intermediate tier sizes come from.
			topo, err := TopologyForDepth(sc.RSSBytes(), rt, depth, cfg.CapKind)
			if err != nil {
				return nil, sim.Result{}, err
			}
			cfg.Topology = topo
		}
		mc := ScenarioMachine(sc, rt, cfg)
		probe := scenario.NewProbe(NewPolicy(pol), seed, sc.FaultConfig())
		res := sim.Run(mc, probe, sc, cfg.Accesses)
		probe.FinalCheck()
		v := probe.Violations()
		if res.Accesses != cfg.Accesses {
			v = append(v, fmt.Sprintf("scenario seed=%#x policy=%s: ran %d accesses, want %d",
				seed, pol, res.Accesses, cfg.Accesses))
		}
		// The QoS arbiter vetoes any demotion below a warmed floor and
		// credits the tenant's own frees, so a floor violation is a
		// tenant-isolation conformance breach, not workload noise.
		for _, mt := range res.Counters {
			if strings.HasSuffix(mt.Name, "/floor_violations") && mt.Value > 0 {
				v = append(v, fmt.Sprintf("scenario seed=%#x policy=%s: %s = %d (fast-tier floor not isolated)",
					seed, pol, mt.Name, mt.Value))
			}
		}
		return v, res, nil
	}
	var err error
	out.Violations, out.Result, err = run(out.Spec)
	if err != nil {
		// Generate promises compilable specs; surface the bug, don't hunt on.
		return out, fmt.Errorf("bench: hunt seed %#x: %w", seed, err)
	}
	scenarioFailed := out.Failed()
	if shards > 1 {
		out.Violations = append(out.Violations, huntTenantShards(seed, shards, pol, accesses)...)
	}
	if !out.Failed() {
		return out, nil
	}
	if !scenarioFailed {
		// Only the sharded-tenant cross-check failed; its violation
		// strings carry the full reproduction context and there is no
		// scenario spec to shrink.
		return out, nil
	}
	out.Minimal = scenario.Shrink(out.Spec, func(cand scenario.Spec) bool {
		v, _, err := run(cand)
		return err == nil && len(v) > 0
	})
	out.Minimal.Note = fmt.Sprintf("seed=%#x policy=%s ratio=%s depth=%d admission=%t mover=%t shards=%d accesses=%d: %s",
		seed, pol, rt.Name, depth, admit, mover, shards, accesses, out.Violations[0])
	if reproDir != "" {
		if err := os.MkdirAll(reproDir, 0o755); err != nil {
			return out, fmt.Errorf("bench: hunt repro dir: %w", err)
		}
		data, err := out.Minimal.Encode()
		if err != nil {
			return out, fmt.Errorf("bench: hunt seed %#x: %w", seed, err)
		}
		path := filepath.Join(reproDir, fmt.Sprintf("scenario-%016x.json", seed))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return out, fmt.Errorf("bench: hunt repro: %w", err)
		}
		out.ReproPath = path
	}
	return out, nil
}

// huntTenantShards is the hunt's sharded-tenant leg: a seed-derived
// tenant mix runs twice on the same S-shard machine — once in the
// Sequential reference mode, once with parallel lanes — and any byte
// difference in the per-shard event traces, or any divergence in the
// per-shard results, aggregate or merged arbiter state, is a
// conformance violation (the byte-identity DESIGN.md §13 promises).
// Like the scenario leg it is a pure function of its inputs, so a CI
// failure reproduces from the seed alone; the violation strings carry
// the derived mix so a failure is legible without re-deriving it.
func huntTenantShards(seed uint64, shards int, pol string, accesses uint64) []string {
	h := splitmix64(seed ^ fnv1a("hunt-tenant-shards"))
	counts := [...]int{2, 4, 8, 16}
	tenants := counts[h%uint64(len(counts))]
	h = splitmix64(h)
	skew := "flat"
	if h%2 == 1 {
		skew = "8to1"
	}
	h = splitmix64(h)
	var churn float64
	if h%2 == 1 {
		churn = 0.5
	}
	run := func(sequential bool) ([][]byte, *tenant.ShardedResult, error) {
		tc, rss := TenantMix(TenantPoint{Tenants: tenants, Skew: skew, ChurnFrac: churn}, 2<<20)
		tn, err := tenant.New(tc)
		if err != nil {
			return nil, nil, err
		}
		bufs := make([]*bytes.Buffer, shards)
		sinks := make([]*obs.JSONL, shards)
		sr, err := tn.RunSharded(tenant.ShardedConfig{
			Shards:     shards,
			Sequential: sequential,
			Machine: sim.Config{
				FastBytes: rss / 4,
				CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
				CapKind:   tier.NVM,
				THP:       true,
				Seed:      int64(splitmix64(seed ^ fnv1a("hunt-tenant-machine"))),
			},
			PolicyFor: func(int) sim.Policy { return NewPolicy(pol) },
			TraceFor: func(i int) *obs.Tracer {
				bufs[i] = &bytes.Buffer{}
				sinks[i] = obs.NewJSONL(bufs[i])
				return obs.NewTracer(sinks[i])
			},
		}, accesses)
		if err != nil {
			return nil, nil, err
		}
		traces := make([][]byte, shards)
		for i := range bufs {
			if err := sinks[i].Flush(); err != nil {
				return nil, nil, err
			}
			traces[i] = bufs[i].Bytes()
		}
		return traces, sr, nil
	}
	ctx := fmt.Sprintf("tenant-shards seed=%#x policy=%s tenants=%d skew=%s churn=%.1f shards=%d",
		seed, pol, tenants, skew, churn, shards)
	seqTr, seqRes, err := run(true)
	if err != nil {
		return []string{fmt.Sprintf("%s: sequential run: %v", ctx, err)}
	}
	parTr, parRes, err := run(false)
	if err != nil {
		return []string{fmt.Sprintf("%s: parallel run: %v", ctx, err)}
	}
	var v []string
	for i := 0; i < shards; i++ {
		if !bytes.Equal(seqTr[i], parTr[i]) {
			v = append(v, fmt.Sprintf("%s: shard %d parallel trace differs from sequential (%d vs %d bytes)",
				ctx, i, len(parTr[i]), len(seqTr[i])))
		}
	}
	if !reflect.DeepEqual(seqRes, parRes) {
		v = append(v, fmt.Sprintf("%s: parallel result diverges from the sequential reference", ctx))
	}
	return v
}
