// VPN-sharded parallel simulation (DESIGN.md §12). A Sharded machine
// splits the simulated address space across S independent Machines by
// 2MB block and runs them on worker goroutines, merging deterministically
// at explicit barriers. Determinism argument: each shard's machine,
// policy, tracer and RNGs are private to exactly one worker goroutine,
// and every op reaches its shard in global issue order (the per-shard
// pending buffer preserves it, and chunks travel to the worker through
// a FIFO channel). A shard's execution is therefore a pure function of
// its op subsequence, independent of goroutine interleaving — so
// parallel runs are byte-identical to the Sequential reference mode,
// which applies the same subsequences inline.
//
// Two routing modes share the lane machinery. Block routing
// (Access/Reserve/FreeRegion) interleaves one address space across the
// shards by 2MB block. Tenant routing (UseOn/AccessOn/ReserveOn/
// FreeOn/HookOn, DESIGN.md §13) instead places whole tenants: the
// caller names the shard, each tenant lives as one private address
// space on exactly one shard machine, and extHook ops let the caller
// run machine-state-dependent actions at deterministic stream
// positions. The tenant scheduler's sharded driver (internal/tenant)
// is the client of that mode.
package sim

import (
	"fmt"
	"math/bits"
	"sort"

	"memtis/internal/obs"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// ShardedConfig describes a sharded machine. Machine is the aggregate
// configuration: FastBytes and CapBytes are divided across shards
// (rounded up to 2MB multiples per shard), and per-shard seeds are
// derived from Machine.Seed, so each shard gets an independent fault
// plan exactly as matrix cells do. Machine.Trace must be nil; tracing
// is per-shard via TraceFor because a tracer's clock binds to exactly
// one machine. Topology is not supported (two-tier machines only).
type ShardedConfig struct {
	// Shards is the shard count S; values < 1 mean 1.
	Shards int
	// Machine is the aggregate machine configuration (see above).
	Machine Config
	// PolicyFor, when non-nil, supplies each shard's private policy
	// instance. It must return a fresh policy per call — shards tick
	// and migrate concurrently.
	PolicyFor func(shard int) Policy
	// TraceFor, when non-nil, supplies each shard's private tracer.
	TraceFor func(shard int) *obs.Tracer
	// Sequential applies every op inline on the caller's goroutine, in
	// shard order at each barrier. It is the determinism reference:
	// parallel runs must produce byte-identical per-shard traces.
	Sequential bool
}

// Ops are packed one per uint64 with the kind in the low two bits so a
// lane buffer is a flat word stream (8 bytes per access, not a struct):
// read and write carry the shard-local VPN in the upper bits; reserve
// is a marker word followed by two raw operand words (bytes + expected
// local base). Kind 3 is the extension escape: bits 2-4 select the
// sub-kind and the payload sits above bit 5. extFree is sub-kind 0, so
// a free marker is still the bare word 3 the original encoding used;
// extUse (switch the shard machine's current address space) and
// extHook (run the lane's hook callback with the payload) carry the
// tenant-sharded control plane — see the tenant routing notes on
// Sharded.
const (
	opRead uint64 = iota
	opWrite
	opReserve
	opExt
)

// opExt sub-kinds, pre-shifted into bits 2-4.
const (
	extFree uint64 = iota << 2 // + local base, pages operand words
	extUse                     // payload: address-space index
	extHook                    // payload: opaque hook argument
)

// shardChunk is the dispatch threshold: a lane whose pending buffer
// reaches it hands the chunk to its worker (pipelined, no barrier),
// bounding buffer growth and inter-shard skew between barriers.
const shardChunk = 8192

type shardLane struct {
	m *Machine
	// pending is the buffer being filled; spare is the recycled buffer
	// from the last acked chunk. The two double-buffer: the driver
	// fills one while the worker drains the other.
	pending  []uint64
	spare    []uint64
	work     chan []uint64
	ack      chan []uint64
	done     chan struct{}
	inflight bool
	blocks   uint64 // 2MB blocks reserved on this shard so far
	// hook, when set (SetHook, before the first dispatch), runs extHook
	// ops on the lane's goroutine. It may touch the shard machine and
	// its tracer — both belong to the worker at that point — which is
	// how tenant-sharded runs execute machine-state-dependent actions
	// (exit frees, floor checks, lifecycle trace events) at a
	// deterministic position in the op stream.
	hook func(m *Machine, arg uint64)
}

func (l *shardLane) run() {
	defer close(l.done)
	for ops := range l.work {
		l.apply(ops)
		l.ack <- ops
	}
}

// apply replays a chunk against the shard machine. The reserve
// assertion pins the routing invariant: dealing whole blocks round-
// robin from block 0 keeps every shard's local space dense, so the
// driver can predict each shard-local base without asking the shard.
func (l *shardLane) apply(ops []uint64) {
	for i := 0; i < len(ops); i++ {
		w := ops[i]
		switch w & 3 {
		case opRead:
			l.m.Access(w>>2, false)
		case opWrite:
			l.m.Access(w>>2, true)
		case opReserve:
			if r := l.m.Reserve(ops[i+1]); r.BaseVPN != ops[i+2] {
				panic(fmt.Sprintf("sim: shard reserve at local vpn %d, expected %d", r.BaseVPN, ops[i+2]))
			}
			i += 2
		case opExt:
			switch w & (7 << 2) {
			case extFree:
				l.m.FreeRegion(vm.Region{BaseVPN: ops[i+1], Pages: ops[i+2]})
				i += 2
			case extUse:
				l.m.UseSpace(int(w >> 5))
			case extHook:
				l.hook(l.m, w>>5)
			}
		}
	}
}

// Sharded runs S independent shard Machines over a block-interleaved
// address space. Global VPNs are routed by 2MB block: block b lives on
// shard b%S at local block b/S, which is the identity mapping at S=1 —
// a one-shard Sharded machine replays exactly the stream a plain
// Machine would see. The driver (Access/Reserve/FreeRegion) buffers
// ops per shard, pipelines full chunks to the workers, and waits for
// everything at barriers; results merge in shard order.
type Sharded struct {
	lanes []*shardLane
	n     uint64
	// Power-of-two shard counts (the common case, including 1) route
	// with shift/mask; pow2=false falls back to division.
	mask    uint64
	shift   uint
	pow2    bool
	nextBlk uint64
	seq     bool
}

// NewSharded builds the shard machines and starts one worker goroutine
// per shard (none in Sequential mode).
func NewSharded(cfg ShardedConfig) *Sharded {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	if cfg.Machine.Topology != nil {
		panic("sim: sharding supports two-tier machines only (Topology must be nil)")
	}
	if cfg.Machine.Trace != nil {
		panic("sim: sharded tracing is per-shard; use TraceFor, not Machine.Trace")
	}
	s := &Sharded{n: uint64(n), seq: cfg.Sequential}
	if s.n&(s.n-1) == 0 {
		s.pow2, s.mask, s.shift = true, s.n-1, uint(bits.TrailingZeros64(s.n))
	}
	for i := 0; i < n; i++ {
		mc := cfg.Machine
		mc.FastBytes = shardBytes(mc.FastBytes, n)
		mc.CapBytes = shardBytes(mc.CapBytes, n)
		// Distinct per-shard seeds (same derivation idea as matrix
		// cells); a zero Faults.Seed then derives an independent fault
		// plan per shard for free.
		mc.Seed = mc.Seed + int64(i)*1_000_003
		if cfg.TraceFor != nil {
			mc.Trace = cfg.TraceFor(i)
		}
		var pol Policy
		if cfg.PolicyFor != nil {
			pol = cfg.PolicyFor(i)
		}
		l := &shardLane{
			m:       NewMachine(mc, pol),
			pending: make([]uint64, 0, shardChunk+8),
			spare:   make([]uint64, 0, shardChunk+8),
			work:    make(chan []uint64, 1),
			ack:     make(chan []uint64, 1),
			done:    make(chan struct{}),
		}
		s.lanes = append(s.lanes, l)
		if !s.seq {
			go l.run()
		}
	}
	return s
}

// shardBytes splits an aggregate byte budget across n shards, rounding
// each share up to a whole number of 2MB blocks (every shard needs
// block-aligned tiers for huge mappings). The aggregate may therefore
// exceed the configured total by up to n-1 blocks.
func shardBytes(total uint64, n int) uint64 {
	per := (total + uint64(n) - 1) / uint64(n)
	blocks := (per + tier.HugePageSize - 1) / tier.HugePageSize
	if blocks < 1 {
		blocks = 1
	}
	return blocks * tier.HugePageSize
}

// Shards returns the shard count.
func (s *Sharded) Shards() int { return len(s.lanes) }

// Machine returns shard i's underlying machine. Callers must only
// touch it between barriers (after Flush or Finish) — between those
// points it belongs to the worker goroutine.
func (s *Sharded) Machine(i int) *Machine { return s.lanes[i].m }

// route splits a global 2MB block number into (shard, local block).
func (s *Sharded) route(blk uint64) (uint64, uint64) {
	if s.pow2 {
		return blk & s.mask, blk >> s.shift
	}
	return blk % s.n, blk / s.n
}

// Access enqueues one access to the shard owning vpn's 2MB block. Ops
// are applied by the worker once the lane's chunk fills, and are all
// complete after the next barrier (Flush or Finish).
func (s *Sharded) Access(vpn uint64, write bool) {
	blk := vpn / tier.SubPages
	var shard, lblk uint64
	if s.pow2 {
		shard, lblk = blk&s.mask, blk>>s.shift
	} else {
		shard, lblk = blk%s.n, blk/s.n
	}
	var w uint64
	if write {
		w = opWrite
	}
	l := s.lanes[shard]
	l.pending = append(l.pending, (lblk*tier.SubPages+vpn%tier.SubPages)<<2|w)
	if len(l.pending) >= shardChunk {
		s.dispatch(l)
	}
}

// dispatch hands the lane's pending chunk to its worker and swaps in
// the recycled buffer — pipelined, so the driver keeps enqueuing while
// the worker drains. The ack handoff orders the worker's writes before
// the buffer is refilled.
func (s *Sharded) dispatch(l *shardLane) {
	if s.seq {
		l.apply(l.pending)
		l.pending = l.pending[:0]
		return
	}
	if l.inflight {
		l.spare = (<-l.ack)[:0]
	}
	l.work <- l.pending
	l.inflight = true
	l.pending, l.spare = l.spare, nil
}

// blocksOn counts how many global blocks in [base, base+count) land on
// shard i.
func (s *Sharded) blocksOn(base, count uint64, i uint64) uint64 {
	// Blocks ≡ i (mod n) in [0, x): x/n, plus one if x%n > i.
	below := func(x uint64) uint64 {
		c := x / s.n
		if x%s.n > i {
			c++
		}
		return c
	}
	return below(base+count) - below(base)
}

// Reserve carves a region out of the global address space, rounded up
// to whole 2MB blocks, and deals its blocks round-robin to the shards.
// The returned region is in global VPNs.
func (s *Sharded) Reserve(bytes uint64) vm.Region {
	blocks := (bytes + tier.HugePageSize - 1) / tier.HugePageSize
	base := s.nextBlk
	s.nextBlk += blocks
	for i := uint64(0); i < s.n; i++ {
		cnt := s.blocksOn(base, blocks, i)
		if cnt == 0 {
			continue
		}
		l := s.lanes[i]
		l.pending = append(l.pending, opReserve, cnt*tier.HugePageSize, l.blocks*tier.SubPages)
		l.blocks += cnt
		if len(l.pending) >= shardChunk {
			s.dispatch(l)
		}
	}
	return vm.Region{BaseVPN: base * tier.SubPages, Pages: blocks * tier.SubPages}
}

// FreeRegion unmaps a whole-block global region (as returned by
// Reserve). Each shard's slice of the region is contiguous in its
// local space, so the free fans out as one op per owning shard.
func (s *Sharded) FreeRegion(r vm.Region) {
	if r.BaseVPN%tier.SubPages != 0 || r.Pages%tier.SubPages != 0 {
		panic("sim: sharded FreeRegion requires whole-2MB-block regions")
	}
	base, blocks := r.BaseVPN/tier.SubPages, r.Pages/tier.SubPages
	for i := uint64(0); i < s.n; i++ {
		cnt := s.blocksOn(base, blocks, i)
		if cnt == 0 {
			continue
		}
		// First global block of the region on shard i.
		first := base + (i+s.n-base%s.n)%s.n
		_, lblk := s.route(first)
		l := s.lanes[i]
		l.pending = append(l.pending, opExt|extFree, lblk*tier.SubPages, cnt*tier.SubPages)
		if len(l.pending) >= shardChunk {
			s.dispatch(l)
		}
	}
}

// Tenant routing: the methods below enqueue ops on an explicitly named
// shard instead of routing by 2MB block, so a driver can place whole
// tenants — each one a private address space on exactly one shard
// machine — across the shards (the tenant scheduler routes tenant t to
// shard t%S as local space t/S). VPNs here are space-local and pass
// through untranslated; the caller owns base prediction for ReserveOn
// (the lane panics on a mismatch, same invariant as block-routed
// reserves).

// SetHook installs shard i's hook callback for HookOn ops. Call before
// the first dispatch: the hook runs on the worker goroutine.
func (s *Sharded) SetHook(i int, fn func(m *Machine, arg uint64)) { s.lanes[i].hook = fn }

// UseOn makes space the target of subsequent ops on shard i.
func (s *Sharded) UseOn(i, space int) {
	l := s.lanes[i]
	l.pending = append(l.pending, opExt|extUse|uint64(space)<<5)
	if len(l.pending) >= shardChunk {
		s.dispatch(l)
	}
}

// HookOn runs shard i's hook with arg, in stream order (59 usable
// payload bits).
func (s *Sharded) HookOn(i int, arg uint64) {
	l := s.lanes[i]
	l.pending = append(l.pending, opExt|extHook|arg<<5)
	if len(l.pending) >= shardChunk {
		s.dispatch(l)
	}
}

// AccessOn enqueues one access to shard i's current space (vpn is
// space-local, not block-routed).
func (s *Sharded) AccessOn(i int, vpn uint64, write bool) {
	var w uint64
	if write {
		w = opWrite
	}
	l := s.lanes[i]
	l.pending = append(l.pending, vpn<<2|w)
	if len(l.pending) >= shardChunk {
		s.dispatch(l)
	}
}

// AccessBatchOn enqueues a batch of accesses to shard i's current
// space — the tenant scheduler's slice issue path.
func (s *Sharded) AccessBatchOn(i int, ops []Op) {
	l := s.lanes[i]
	for _, op := range ops {
		var w uint64
		if op.Write {
			w = opWrite
		}
		l.pending = append(l.pending, op.VPN<<2|w)
		if len(l.pending) >= shardChunk {
			s.dispatch(l)
		}
	}
}

// ReserveOn reserves bytes in shard i's current space. expectBase is
// the caller-predicted space-local base VPN; the lane asserts the
// shard machine agrees.
func (s *Sharded) ReserveOn(i int, bytes, expectBase uint64) {
	l := s.lanes[i]
	l.pending = append(l.pending, opReserve, bytes, expectBase)
	if len(l.pending) >= shardChunk {
		s.dispatch(l)
	}
}

// FreeOn unmaps a space-local region in shard i's current space (no
// whole-block restriction: the region is not block-interleaved).
func (s *Sharded) FreeOn(i int, base, pages uint64) {
	l := s.lanes[i]
	l.pending = append(l.pending, opExt|extFree, base, pages)
	if len(l.pending) >= shardChunk {
		s.dispatch(l)
	}
}

// Flush is the merge barrier: every buffered op is applied — on the
// workers, or inline in shard order in Sequential mode — and Flush
// returns only when all shards are idle. Policy ticks and series
// samples that fall due inside a chunk are delivered by the owning
// shard as usual.
func (s *Sharded) Flush() {
	for _, l := range s.lanes {
		if len(l.pending) > 0 {
			s.dispatch(l)
		}
	}
	if s.seq {
		return
	}
	for _, l := range s.lanes {
		if l.inflight {
			l.spare = (<-l.ack)[:0]
			l.inflight = false
		}
	}
}

// Finish flushes, stops the workers, and returns the per-shard results
// in shard order.
func (s *Sharded) Finish(workload string) []Result {
	s.Flush()
	if !s.seq {
		for _, l := range s.lanes {
			close(l.work)
			<-l.done
		}
	}
	out := make([]Result, len(s.lanes))
	for i, l := range s.lanes {
		out[i] = l.m.Finish(workload)
	}
	return out
}

// AggregateShards folds per-shard results into one machine-level view:
// counts and stats sum, virtual and wall time are the slowest shard's
// (shards run concurrently), throughput is total accesses over that
// wall time, and ratios are access-weighted. Series and Counters stay
// per-shard (nil here) — merging them would interleave unrelated
// clocks. Per-tenant rows, when present, merge: tenant-sharded runs
// route tenant t to shard t%S as local space t/S, so a local row with
// ID l on shard i is global tenant l*S+i — the aggregate re-labels
// every row with its global ID and sorts, giving one machine-level
// tenant table across the shards.
func AggregateShards(rs []Result) Result {
	var agg Result
	var fastHits float64
	for i, r := range rs {
		if i == 0 {
			agg.Policy, agg.Workload = r.Policy, r.Workload
		}
		for _, tr := range r.Tenants {
			tr.ID = tr.ID*len(rs) + i
			agg.Tenants = append(agg.Tenants, tr)
		}
		agg.Accesses += r.Accesses
		if r.AppNS > agg.AppNS {
			agg.AppNS = r.AppNS
		}
		if r.WallNS > agg.WallNS {
			agg.WallNS = r.WallNS
		}
		agg.DaemonUtil += r.DaemonUtil
		agg.VM.Add(r.VM)
		agg.TLB.Lookups4K += r.TLB.Lookups4K
		agg.TLB.Misses4K += r.TLB.Misses4K
		agg.TLB.Lookups2M += r.TLB.Lookups2M
		agg.TLB.Misses2M += r.TLB.Misses2M
		agg.RSSPeak += r.RSSPeak
		agg.RSSFinal += r.RSSFinal
		fastHits += r.FastHitRatio * float64(r.Accesses)
	}
	if agg.Accesses > 0 {
		agg.FastHitRatio = fastHits / float64(agg.Accesses)
	}
	sort.Slice(agg.Tenants, func(a, b int) bool { return agg.Tenants[a].ID < agg.Tenants[b].ID })
	if agg.WallNS > 0 {
		agg.Throughput = float64(agg.Accesses) / (float64(agg.WallNS) / 1e9)
	}
	return agg
}
