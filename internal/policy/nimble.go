package policy

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// Nimble models Yan et al.'s Nimble page management (ASPLOS'19): page-
// table scanning harvests accessed bits each interval, any page
// accessed at least once in the interval is "hot" (static threshold of
// one), and background exchange migrations promote hot capacity-tier
// pages while demoting idle fast-tier pages to make room. The
// threshold-of-one classification marks far more pages hot than the
// fast tier can hold on access-rich workloads, generating the massive
// migration traffic §6.2.4 reports (56x MEMTIS on Silo). Scanning cost
// grows linearly with the resident set, which is what hurts it at large
// RSS (Figure 6).
type Nimble struct {
	Base
	scanEveryNS uint64
	lastScan    uint64
	hot         []*vm.Page
	hand        int
}

var _ sim.Policy = (*Nimble)(nil)

// NewNimble returns the Nimble baseline.
func NewNimble() *Nimble { return &Nimble{scanEveryNS: 5_000_000} }

// Name implements sim.Policy.
func (n *Nimble) Name() string { return "nimble" }

// OnAccess implements sim.Policy: the processor sets the PTE accessed
// bit; no faults, no critical-path work.
func (n *Nimble) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	if tr.Faulted {
		n.Register(tr.Page)
	}
	tr.Page.PFlags |= flagAccessed
	return 0
}

// Tick implements sim.Policy: periodic full page-table scan plus the
// exchange-migration pass, both on the scan period. The scan interval
// stretches with the resident set so the scanner never exceeds roughly
// one core — which is precisely why PT scanning cannot keep up as
// memory grows (Insight #1, Figure 6).
func (n *Nimble) Tick(now uint64) {
	minInterval := uint64(len(n.Registry)) * ScanPageNS * 3 / 2
	interval := n.scanEveryNS
	if minInterval > interval {
		interval = minInterval
	}
	if now-n.lastScan < interval {
		return
	}
	n.lastScan = now
	n.Compact()
	n.hot = n.hot[:0]
	for _, pg := range n.Registry {
		if pg.PFlags&flagAccessed != 0 {
			pg.PFlags &^= flagAccessed
			if pg.Tier != tier.FastTier {
				n.hot = append(n.hot, pg)
			}
			pg.P0 = now // last-seen-accessed stamp
		}
	}
	n.BgNS += uint64(len(n.Registry)) * ScanPageNS
	n.exchange()
}

// exchange promotes scanned-hot pages, demoting the least recently
// scanned fast-tier pages when the fast tier is full. Bounded per wake
// by migration bandwidth, but the hot list refills every scan.
func (n *Nimble) exchange() {
	budget := uint64(8 << 20) // bytes per wake
	for len(n.hot) > 0 && budget > 0 {
		pg := n.hot[0]
		n.hot = n.hot[1:]
		if pg.Dead() || pg.Tier == tier.FastTier {
			continue
		}
		if pg.Bytes() > budget {
			break
		}
		if !n.M.AS.CanMigrate(pg, tier.FastTier) {
			// Demote a victim to make room (exchange).
			if !n.demoteOne(pg.IsHuge()) {
				break
			}
		}
		if n.MigrateAsync(pg, tier.FastTier) {
			budget -= pg.Bytes()
		}
	}
}

func (n *Nimble) demoteOne(huge bool) bool {
	if len(n.Registry) == 0 {
		return false
	}
	tries := len(n.Registry)
	for i := 0; i < tries; i++ {
		if n.hand >= len(n.Registry) {
			n.hand = 0
		}
		pg := n.Registry[n.hand]
		n.hand++
		if pg.Dead() || pg.Tier != tier.FastTier || pg.IsHuge() != huge {
			continue
		}
		if pg.PFlags&flagAccessed != 0 {
			continue // keep very recently accessed pages
		}
		return n.MigrateAsync(pg, n.M.DemoteTarget(pg.Tier))
	}
	// Everything accessed: demote anyway (threshold-of-one thrash).
	for i := 0; i < tries; i++ {
		if n.hand >= len(n.Registry) {
			n.hand = 0
		}
		pg := n.Registry[n.hand]
		n.hand++
		if pg.Dead() || pg.Tier != tier.FastTier || pg.IsHuge() != huge {
			continue
		}
		return n.MigrateAsync(pg, n.M.DemoteTarget(pg.Tier))
	}
	return false
}
