// Hot-loop benchmarks for the machine core. These are the perf
// baseline future PRs compare against: BenchmarkMachineAccess is the
// bare translate-charge-account path with no policy attached,
// BenchmarkMachineAccessMemtis adds the full MEMTIS policy, and
// BenchmarkMachineAccessTraced measures the event-tracing overhead
// with a sink attached (the disabled-tracing cost is what
// BenchmarkMachineAccess itself carries: a nil check on rare paths).
package sim_test

import (
	"math/rand"
	"testing"

	memtis "memtis/internal/core"
	"memtis/internal/obs"
	"memtis/internal/sim"
	"memtis/internal/tier"
)

// benchMachine builds a machine with a pre-reserved, pre-faulted
// region so the measured loop is steady-state accesses, not demand
// paging.
func benchMachine(pol sim.Policy, tr *obs.Tracer) (*sim.Machine, []uint64) {
	cfg := sim.Config{
		FastBytes: 16 << 20,
		CapBytes:  96 << 20,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      7,
		Trace:     tr,
	}
	m := sim.NewMachine(cfg, pol)
	r := m.Reserve(64 << 20)
	for vpn := r.BaseVPN; vpn < r.BaseVPN+r.Pages; vpn += tier.SubPages {
		m.Access(vpn, true)
	}
	// Zipf-ish access pattern over the region, precomputed so RNG cost
	// stays out of the measured loop.
	rng := rand.New(rand.NewSource(11))
	z := rand.NewZipf(rng, 1.2, 1, r.Pages-1)
	vpns := make([]uint64, 1<<16)
	for i := range vpns {
		vpns[i] = r.BaseVPN + z.Uint64()
	}
	return m, vpns
}

func runAccessLoop(b *testing.B, m *sim.Machine, vpns []uint64) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(vpns[i&(len(vpns)-1)], i&7 == 0)
	}
}

func BenchmarkMachineAccess(b *testing.B) {
	m, vpns := benchMachine(nil, nil)
	runAccessLoop(b, m, vpns)
}

func BenchmarkMachineAccessMemtis(b *testing.B) {
	m, vpns := benchMachine(memtis.New(memtis.Config{}), nil)
	runAccessLoop(b, m, vpns)
}

func BenchmarkMachineAccessTraced(b *testing.B) {
	// A bounded ring keeps memory flat over b.N while still paying the
	// full emit cost on every traced event.
	tr := obs.NewTracer(obs.NewRing(4096))
	m, vpns := benchMachine(memtis.New(memtis.Config{}), tr)
	runAccessLoop(b, m, vpns)
}
