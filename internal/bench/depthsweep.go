// The depth sweep: a (tier depth x admission policy x fault rate)
// matrix over the N-tier machines of DESIGN.md §11. Each cell runs one
// policy on a hierarchy TopologyForDepth derives from the workload's
// resident set, with the chosen admission gate installed and the
// background mover active, and is normalised to the same policy's
// reference cell (first depth, first admission, fault-free) — so the
// sweep isolates what deepening the hierarchy and gating migrations
// cost, not baseline placement quality.
package bench

import (
	"context"
	"fmt"
	"os"
	"sync"

	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// DepthSweepDepths are the standard hierarchy depths of the sweep:
// the classic pair, a CXL middle tier, and a far-memory bottom tier.
var DepthSweepDepths = []int{2, 3, 4}

// DepthSweepAdmissions are the standard admission policies of the
// sweep, by tier.ParseAdmission name. "always" is the null baseline
// that exposes what rejection would have saved.
var DepthSweepAdmissions = []string{"always", "throttle", "benefit"}

// DepthSweepRates are the copy-abort rates (ppm) the sweep crosses
// with depth and admission; 0 is the reference plane.
var DepthSweepRates = []uint32{0, 10_000}

// depthCoord spells one sweep cell's ratio coordinate. Depth,
// admission and rate are all folded in so CellSeed gives every cell an
// independent, worker-count-invariant stream.
func depthCoord(rt Ratio, depth int, admission string, ratePpm uint32) string {
	return fmt.Sprintf("%s+d%d+%s+%dppm", rt.Name, depth, admission, ratePpm)
}

// TopologyForDepth derives the sweep's tier chain for a workload with
// the given resident set at a tiering ratio. The fast tier is sized
// exactly as MachineFor sizes it (the ratio fraction of RSS, floor two
// huge frames) and the deepest tier always holds the full resident set
// plus the same head-room as the two-tier capacity tier, so only the
// upper tiers are constrained resources:
//
//	depth 2: DRAM > capKind            — the classic pair
//	depth 3: DRAM > CXL(RSS/2) > capKind
//	depth 4: DRAM > CXL(RSS/2) > capKind(RSS) > Far
//
// Depth 2 builds the exact tier set of the default machine, which is
// what keeps the sweep's reference plane comparable to every other
// experiment in the harness.
func TopologyForDepth(rss uint64, r Ratio, depth int, capKind tier.Kind) (*tier.Topology, error) {
	fast := uint64(float64(rss) * r.FastFrac)
	if fast < tier.HugePageSize*2 {
		fast = tier.HugePageSize * 2
	}
	last := rss + rss/4 + 16*tier.HugePageSize
	mid := func(b uint64) uint64 {
		if b < tier.HugePageSize*2 {
			return tier.HugePageSize * 2
		}
		return b
	}
	t := &tier.Topology{}
	switch depth {
	case 2:
		t = tier.DefaultTopology(fast, last, capKind)
	case 3:
		t.Tiers = []tier.Config{
			{Name: "DRAM", Kind: tier.DRAM, Bytes: fast},
			{Name: "CXL", Kind: tier.CXL, Bytes: mid(rss / 2)},
			{Name: capKind.String(), Kind: capKind, Bytes: last},
		}
	case 4:
		t.Tiers = []tier.Config{
			{Name: "DRAM", Kind: tier.DRAM, Bytes: fast},
			{Name: "CXL", Kind: tier.CXL, Bytes: mid(rss / 2)},
			{Name: capKind.String(), Kind: capKind, Bytes: mid(rss)},
			{Name: "Far", Kind: tier.Far, Bytes: last},
		}
	default:
		return nil, fmt.Errorf("bench: depth sweep supports depths 2-4, not %d", depth)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DepthSweep runs every policy over every (depth, admission, rate)
// cell on one workload and tiering ratio. cfg.Mover applies to every
// cell (enable it to exercise the background mover across the sweep);
// cfg.Topology and cfg.Admission are overridden per cell. Each cell's
// Value is its throughput normalised to the same policy's reference
// cell (depths[0], admissions[0], rates[0]) — pass slices whose first
// elements are the intended reference plane, or nil for the defaults.
func (r *Runner) DepthSweep(ctx context.Context, cfg Config, wname string, rt Ratio, pols []string, depths []int, admissions []string, rates []uint32) (*Matrix, error) {
	if pols == nil {
		pols = Policies
	}
	if depths == nil {
		depths = DepthSweepDepths
	}
	if admissions == nil {
		admissions = DepthSweepAdmissions
	}
	if rates == nil {
		rates = DepthSweepRates
	}
	rss := workload.MustNew(wname).Spec().RSSBytes()
	type cell struct {
		depth int
		adm   string
		rate  uint32
	}
	var cells []cell
	for _, d := range depths {
		for _, a := range admissions {
			if _, err := tier.ParseAdmission(a); err != nil {
				return nil, err
			}
			for _, rate := range rates {
				cells = append(cells, cell{d, a, rate})
			}
		}
	}
	for _, d := range depths {
		if _, err := TopologyForDepth(rss, rt, d, cfg.CapKind); err != nil {
			return nil, err
		}
	}
	if cfg.EventDir != "" {
		if err := os.MkdirAll(cfg.EventDir, 0o755); err != nil {
			return nil, err
		}
	}
	var (
		failMu sync.Mutex
		failed error
	)
	fail := func(err error) {
		failMu.Lock()
		if failed == nil {
			failed = err
		}
		failMu.Unlock()
	}
	results := make([]sim.Result, len(cells)*len(pols))
	var tasks []cellTask
	for ci, c := range cells {
		for pi, p := range pols {
			slot := ci*len(pols) + pi
			coord := depthCoord(rt, c.depth, c.adm, c.rate)
			tasks = append(tasks, cellTask{
				label: fmt.Sprintf("%s/%s/%s", wname, coord, p),
				run: func() uint64 {
					ccfg := CellConfig(cfg, wname, coord, p)
					ccfg.Faults.MigrateFailPpm = c.rate
					ccfg.Topology, _ = TopologyForDepth(rss, rt, c.depth, cfg.CapKind)
					ccfg.Admission, _ = tier.ParseAdmission(c.adm)
					closeTrace, err := cellTrace(cfg.EventDir, wname, coord, p, &ccfg)
					if err != nil {
						fail(err)
						return 0
					}
					results[slot] = RunOne(wname, p, rt, ccfg)
					if err := closeTrace(); err != nil {
						fail(err)
					}
					return results[slot].AppNS
				},
			})
		}
	}
	if err := r.do(ctx, tasks); err != nil {
		return nil, err
	}
	if failed != nil {
		return nil, fmt.Errorf("bench: writing event traces: %w", failed)
	}
	m := &Matrix{}
	for ci, c := range cells {
		for pi, p := range pols {
			res := results[ci*len(pols)+pi]
			base := results[pi] // cells[0]: the reference plane
			m.Cells = append(m.Cells, Cell{
				Workload: wname, Ratio: depthCoord(rt, c.depth, c.adm, c.rate), Policy: p,
				Value: Norm(res, base), Result: res,
			})
		}
	}
	return m, nil
}

// DepthSweepTable renders a depth sweep as a (depth, admission, rate)
// x policy table — the EXPERIMENTS.md "Depth sweep" presentation:
// values are throughput relative to that policy's reference cell.
func DepthSweepTable(title string, m *Matrix, wname string, rt Ratio, pols []string, depths []int, admissions []string, rates []uint32) Table {
	if pols == nil {
		pols = Policies
	}
	if depths == nil {
		depths = DepthSweepDepths
	}
	if admissions == nil {
		admissions = DepthSweepAdmissions
	}
	if rates == nil {
		rates = DepthSweepRates
	}
	t := Table{Title: title, Header: append([]string{"depth", "admission", "fault rate"}, pols...)}
	for _, d := range depths {
		for _, a := range admissions {
			for _, rate := range rates {
				row := []interface{}{fmt.Sprintf("%d", d), a, fmt.Sprintf("%.2f%%", float64(rate)/10_000)}
				for _, p := range pols {
					v, _ := m.Get(wname, depthCoord(rt, d, a, rate), p)
					row = append(row, v)
				}
				t.AddRow(row...)
			}
		}
	}
	return t
}
