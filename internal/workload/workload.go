// Package workload models the eight memory-intensive applications of
// the paper's evaluation (Table 2) as synthetic access-stream
// generators over the simulated machine. Each generator encodes the
// characteristics the paper's analysis attributes to its application —
// phase structure, hot-set size and placement, huge-page subpage skew,
// memory bloat, allocation churn — with the resident set scaled down
// ~128x (1 paper-GB = 8 simulated MB) while preserving every ratio the
// tiering decisions depend on (see DESIGN.md §4).
package workload

import (
	"fmt"
	"math/rand"

	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// BytesPerPaperGB is the down-scaling factor: one GB of paper RSS
// becomes this many simulated bytes.
const BytesPerPaperGB = 8 << 20

// Spec describes one benchmark (the scaled Table 2 row).
type Spec struct {
	Name        string
	PaperRSSGB  float64 // Table 2 RSS
	RHP         float64 // Table 2 ratio of huge pages
	Description string
	// PaperOverAllocMB is HeMem's over-allocation from Table 3.
	PaperOverAllocMB float64
}

// RSSBytes returns the scaled resident-set size.
func (s Spec) RSSBytes() uint64 {
	return uint64(s.PaperRSSGB * BytesPerPaperGB)
}

// SmallBytes returns the scaled volume of small (non-THP) allocations,
// derived from the huge-page ratio: small = (1-RHP) * RSS. This is also
// the source of HeMem's over-allocation.
func (s Spec) SmallBytes() uint64 {
	return uint64((1 - s.RHP) * float64(s.RSSBytes()))
}

// Specs returns the Table 2 benchmark set in paper order.
func Specs() []Spec {
	return []Spec{
		{"graph500", 66.3, 0.999, "Generation and search of large graphs", 60},
		{"pagerank", 12.3, 0.999, "PageRank over the Twitter graph (GAP)", 500},
		{"xsbench", 63.4, 1.000, "Monte Carlo neutron transport kernel", 420},
		{"liblinear", 67.9, 0.999, "Linear classification (KDD12)", 90},
		{"silo", 58.1, 0.974, "In-memory database engine (YCSB-C)", 1400},
		{"btree", 38.3, 0.752, "In-memory index lookup", 9800},
		{"603.bwaves", 11.1, 0.995, "Explosion modelling (SPEC CPU 2017)", 1900},
		{"654.roms", 10.3, 0.966, "Regional ocean modelling (SPEC CPU 2017)", 900},
	}
}

// SpecByName finds a Table 2 entry.
func SpecByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// stepper emits the next access of the steady phase.
type stepper func() (vpn uint64, write bool)

// W is one runnable benchmark model.
type W struct {
	spec  Spec
	build func(c *ctx) stepper
	// stateful marks steppers that mutate machine state between
	// accesses (Reserve/FreeRegion churn): their accesses must be
	// issued one at a time, because pre-generating a batch would run
	// the mutation before earlier accesses reach the machine.
	stateful bool
}

// Name implements sim.Workload.
func (w *W) Name() string { return w.spec.Name }

// Spec returns the benchmark's Table 2 description.
func (w *W) Spec() Spec { return w.spec }

// batchSize is the steady-phase issue granularity: large enough to
// amortise the per-access budget check and stepper indirection, small
// enough that the Op buffer stays L1-resident (4KB).
const batchSize = 256

// Run implements sim.Workload: the build function performs the
// initialisation phase (allocations and first-touch writes count toward
// the access budget), then the steady-phase stepper is driven until the
// budget is exhausted. Pure steppers are issued through
// sim.Machine.AccessBatch — byte-identical to access-at-a-time (the
// batch API's contract, pinned by TestAccessBatchMatchesSequential) but
// with the loop bookkeeping amortised; stateful steppers (allocation
// churn) keep the one-at-a-time path.
func (w *W) Run(m *sim.Machine, accesses uint64) {
	c := &ctx{
		m:      m,
		rng:    rand.New(rand.NewSource(m.Cfg.Seed ^ int64(len(w.spec.Name)<<8))),
		budget: accesses,
		spec:   w.spec,
	}
	step := w.build(c)
	if w.stateful {
		for m.Accesses() < accesses {
			vpn, write := step()
			m.Access(vpn, write)
		}
		return
	}
	issueBatched(m, accesses, step)
}

// issueBatched drives a pure stepper until the machine has issued
// budget accesses, filling a fixed Op buffer and handing it to
// AccessBatch. Each Access advances m.Accesses() by exactly one and
// nothing else does, so issuing min(batchSize, remaining) ops per round
// lands on the budget exactly, as the per-access check would.
func issueBatched(m *sim.Machine, budget uint64, step stepper) {
	var buf [batchSize]sim.Op
	for {
		done := m.Accesses()
		if done >= budget {
			return
		}
		n := budget - done
		if n > batchSize {
			n = batchSize
		}
		for i := uint64(0); i < n; i++ {
			buf[i].VPN, buf[i].Write = step()
		}
		m.AccessBatch(buf[:n])
	}
}

// Drive issues accesses from a pure step function until the machine's
// cumulative access count reaches target, using the same batched issue
// path as the benchmark models (byte-identical to access-at-a-time).
// It is the building block external composers — notably
// internal/scenario — use to drive synthetic phases with workload's
// exact issue discipline. step must not mutate machine state.
func Drive(m *sim.Machine, target uint64, step func() (vpn uint64, write bool)) {
	issueBatched(m, target, step)
}

// Env is the execution environment a streaming workload initialises
// against when an external scheduler — rather than the workload's own
// Run loop — will pull its accesses: a reservation primitive for the
// tenant's address space and the machine seed. It deliberately carries
// no machine handle, so the same Stream can be driven against a plain
// machine or replayed through a sharded dispatch pipeline whose
// reservations are predicted driver-side.
type Env struct {
	// Reserve carves a region out of the workload's address space,
	// exactly like sim.Machine.Reserve would during Run.
	Reserve func(bytes uint64) vm.Region
	// Seed is the machine seed the workload derives its deterministic
	// access stream from (sim.Config.Seed).
	Seed int64
}

// Stream is the explicit suspend/resume state of one streaming drive:
// where the goroutine-baton scheduler parked a blocked goroutine
// between slices, an inline scheduler holds this struct and pulls
// accesses from Step whenever the workload is scheduled. All resume
// state (regions, RNG counters, phase) lives behind the closure; the
// stream is suspended simply by not calling Step.
type Stream struct {
	// Step emits the next access of the workload's deterministic
	// stream. It must not mutate machine state (no reservations or
	// frees), so a scheduler may pre-generate a batch of accesses
	// before issuing them.
	Step func() (vpn uint64, write bool)
	// Fill, when non-nil, writes the stream's next len(dst) accesses
	// into dst — exactly the ops len(dst) sequential Step calls would
	// return, advancing the same state. It exists purely to amortise
	// the per-access closure call across a batch on the scheduler hot
	// path; schedulers may mix Fill and Step calls freely.
	Fill func(dst []sim.Op)
}

// Streamer is a sim.Workload that can also run as a resumable stepper
// under an inline scheduler. Stream must produce exactly the access
// stream Run would issue (the budget and slice bounds are the
// driver's job), so a scheduler may use either form interchangeably;
// workloads with non-trivial machine interaction (mid-stream
// allocation churn, phased initialisation issuing accesses) cannot
// satisfy the contract and simply do not implement it — schedulers
// fall back to driving their Run on a dedicated goroutine.
type Streamer interface {
	sim.Workload
	// Stream performs the workload's setup (reservations only) against
	// env and returns the suspended drive state.
	Stream(env Env) Stream
}

// New builds the named benchmark model.
func New(name string) (*W, error) {
	spec, err := SpecByName(name)
	if err != nil {
		return nil, err
	}
	var build func(c *ctx) stepper
	switch name {
	case "graph500":
		build = buildGraph500
	case "pagerank":
		build = buildPageRank
	case "xsbench":
		build = buildXSBench
	case "liblinear":
		build = buildLiblinear
	case "silo":
		build = buildSilo
	case "btree":
		build = buildBtree
	case "603.bwaves":
		build = buildBwaves
	case "654.roms":
		build = buildRoms
	}
	// bwaves' stepper reserves and frees its short-lived buffers
	// between accesses, so its accesses cannot be pre-generated.
	return &W{spec: spec, build: build, stateful: name == "603.bwaves"}, nil
}

// NewScaled builds the named benchmark with an overridden paper-scale
// RSS (used by the Figure 6 scalability sweep, which grows Graph500
// from 128GB to 690GB).
func NewScaled(name string, rssGB float64) (*W, error) {
	w, err := New(name)
	if err != nil {
		return nil, err
	}
	w.spec.PaperRSSGB = rssGB
	return w, nil
}

// MustNew is New for tests and examples.
func MustNew(name string) *W {
	w, err := New(name)
	if err != nil {
		panic(err)
	}
	return w
}

// All returns every benchmark model.
func All() []*W {
	specs := Specs()
	ws := make([]*W, 0, len(specs))
	for _, s := range specs {
		ws = append(ws, MustNew(s.Name))
	}
	return ws
}

// ctx carries build/run state shared by the generators.
type ctx struct {
	m      *sim.Machine
	rng    *rand.Rand
	budget uint64
	spec   Spec
}

// region wraps a reservation with conveniences for page-granular access.
type region struct {
	r     vm.Region
	pages uint64
}

func (c *ctx) reserve(bytes uint64) region {
	r := c.m.Reserve(bytes)
	return region{r: r, pages: r.Pages}
}

// reserveSmall reserves total bytes as many sub-2MB regions so they are
// backed by base pages (models the application's small allocations and
// yields the workload's RHP and HeMem's Table 3 over-allocation).
func (c *ctx) reserveSmall(total uint64) []region {
	var out []region
	const chunk = 512 << 10 // 512KB
	for total > 0 {
		b := uint64(chunk)
		if b > total {
			b = total
		}
		out = append(out, c.reserve(b))
		if b < chunk {
			break
		}
		total -= b
	}
	return out
}

// vpnAt returns the region's i-th page VPN.
func (r region) vpnAt(i uint64) uint64 { return r.r.BaseVPN + i%r.pages }

// touchAll writes one word per page sequentially (first-touch init),
// counting toward the access budget. Issued in batches: the init sweep
// is a pure function of the region, so pre-generating it is safe.
func (c *ctx) touchAll(r region) {
	var buf [batchSize]sim.Op
	for i := uint64(0); i < r.pages; {
		done := c.m.Accesses()
		if done >= c.budget {
			return
		}
		n := c.budget - done
		if n > batchSize {
			n = batchSize
		}
		if rem := r.pages - i; n > rem {
			n = rem
		}
		for k := uint64(0); k < n; k++ {
			buf[k] = sim.Op{VPN: r.r.BaseVPN + i + k, Write: true}
		}
		c.m.AccessBatch(buf[:n])
		i += n
	}
}

// touchSmall initialises a set of small regions.
func (c *ctx) touchSmall(rs []region) {
	for _, r := range rs {
		c.touchAll(r)
	}
}

// zipf draws skewed indexes in [0, n) with rand.Zipf (s > 1).
type zipf struct {
	z *rand.Zipf
}

func newZipf(rng *rand.Rand, s float64, n uint64) zipf {
	if n < 1 {
		n = 1
	}
	return zipf{z: rand.NewZipf(rng, s, 1, n-1)}
}

func (z zipf) next() uint64 { return z.z.Uint64() }

// perm is a page-index permutation used to scatter hot indexes across
// the address range (hash-distributed heaps).
type perm struct {
	p []uint32
}

func newPerm(rng *rand.Rand, n uint64) perm {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return perm{p: p}
}

func (pm perm) at(i uint64) uint64 { return uint64(pm.p[i%uint64(len(pm.p))]) }

// pick returns true with probability num/den.
func (c *ctx) pick(num, den uint32) bool { return c.rng.Uint32()%den < num }

// smallStepper returns a stepper over the small regions with uniform
// access, used as a low-intensity side channel in several benchmarks.
func smallStepper(c *ctx, rs []region) stepper {
	if len(rs) == 0 {
		return func() (uint64, bool) { return 0, false }
	}
	var total uint64
	for _, r := range rs {
		total += r.pages
	}
	return func() (uint64, bool) {
		i := c.rng.Uint64() % total
		for _, r := range rs {
			if i < r.pages {
				return r.r.BaseVPN + i, c.pick(1, 4)
			}
			i -= r.pages
		}
		return rs[0].r.BaseVPN, false
	}
}

var _ sim.Workload = (*W)(nil)

// HugeAllocRatio computes the fraction of RSS mapped by huge pages on
// the machine — the measured RHP for Table 2.
func HugeAllocRatio(m *sim.Machine) float64 {
	var huge, total uint64
	m.AS.ForEachPage(func(p *vm.Page) {
		total += p.Units()
		if p.IsHuge() {
			huge += p.Units()
		}
	})
	if total == 0 {
		return 0
	}
	return float64(huge) / float64(total)
}

// UtilizationSample is one Figure 3 dot: a huge page's access count
// against the number of its subpages seen by sampling.
type UtilizationSample struct {
	AccessCount uint64
	Utilization int // accessed subpages, 0..512
}

// CollectUtilization harvests Figure 3 data from a machine after a run
// with PEBS-backed subpage counters (the MEMTIS policy).
func CollectUtilization(m *sim.Machine) []UtilizationSample {
	var out []UtilizationSample
	m.AS.ForEachPage(func(p *vm.Page) {
		if !p.IsHuge() || p.SubCount == nil {
			return
		}
		u := 0
		for j := 0; j < tier.SubPages; j++ {
			if p.SubCount[j] > 0 {
				u++
			}
		}
		if p.Count > 0 {
			out = append(out, UtilizationSample{AccessCount: p.Count, Utilization: u})
		}
	})
	return out
}
