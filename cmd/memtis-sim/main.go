// Command memtis-sim runs one benchmark under one tiering policy on the
// simulated tiered machine — the classic fast/capacity pair by default;
// -topology or -depth select a deeper chain, -admission installs a
// migration admission gate and -mover a rate-limited background mover
// (DESIGN.md §11) — and prints the run's metrics. Passing
// comma-separated lists (or "all") for -workload, -policy or -ratio
// switches to matrix mode: every combination fans out to the parallel
// experiment runner with deterministic per-cell seeds and the
// normalized result table is printed.
//
// Declarative scenarios (-scenario) replace the workload flag with a
// spec file compiled by internal/scenario: phases, RSS churn, trace
// replay and a fault plan all come from the file, and comma-separated
// spec lists fan out to the same matrix runner. -gen-scenario prints
// the seed's fuzzer-generated spec for inspection or editing.
//
// Usage:
//
//	memtis-sim -workload silo -policy memtis -ratio 1:8 -accesses 2000000
//	memtis-sim -workload silo -policy memtis -trace-events silo.events.jsonl
//	memtis-sim -workload silo -policy memtis -faults rate=0.01,throttle=200us/1ms:4x
//	memtis-sim -workload silo -policy memtis -depth 4 -admission benefit -mover 8m/1ms
//	memtis-sim -workload silo -policy memtis -topology "dram:256m>cxl:1g>nvm:4g"
//	memtis-sim -workload silo -policy memtis -topology examples/topologies/cxl-interposed.topology
//	memtis-sim -workload silo,btree -policy tpp,memtis -ratio 1:2,1:8 -parallel 8
//	memtis-sim -workload all -policy memtis,hemem -ratio 1:8 -trace-events traces/
//	memtis-sim -scenario examples/scenarios/churn.json -policy memtis -baseline
//	memtis-sim -scenario a.json,b.json -policy memtis,hemem -parallel 8
//	memtis-sim -gen-scenario 134 > repro.json
//	memtis-sim -workload silo -policy memtis -tenants 4 -tenant-skew 8to1
//	memtis-sim -workload btree -tenants 8 -tenant-churn 0.5 -tenant-floor 8388608
//	memtis-sim -scenario examples/scenarios/tenants.json -policy memtis
//	memtis-sim -workload silo -policy memtis -shards 8
//	memtis-sim -workload silo -policy memtis -tenants 8 -shards 4
//	memtis-sim -list
//
// Multi-tenancy (-tenants N, or a spec file with a "tenants" section)
// runs N contending address spaces under one policy daemon with
// fairness/QoS arbitration (weights, fast-tier floors, churn); the
// result gains a per-tenant accounting table. See DESIGN.md §10.
//
// Sharded parallel simulation (-shards S) runs S worker goroutines,
// each owning a slice of the machine. Alone it splits one address
// space by 2MB block and drives a synthetic Zipf stream over the
// named workload's footprint; combined with -tenants it routes whole
// tenants — each a synthetic 80/20 stream over the workload's
// footprint, since the benchmark models cannot be replayed lane-side —
// across the shards, each shard arbitrating its local fast tier, and
// the per-shard table precedes the merged per-tenant rows.
// Both modes are byte-identical to their sequential reference. See
// DESIGN.md §12-§13.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"

	"memtis/internal/bench"
	"memtis/internal/obs"
	"memtis/internal/scenario"
	"memtis/internal/sim"
	"memtis/internal/tenant"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

func main() {
	var (
		wname    = flag.String("workload", "silo", "benchmark name, comma-separated list, or \"all\" (see -list)")
		pname    = flag.String("policy", "memtis", "tiering policy or comma-separated list (see -list)")
		ratio    = flag.String("ratio", "1:8", "fast:capacity ratio or comma-separated list (1:2, 1:8, 1:16, 2:1)")
		accesses = flag.Uint64("accesses", 2_000_000, "access budget")
		seed     = flag.Int64("seed", 42, "RNG seed")
		capKind  = flag.String("cap", "nvm", "capacity tier kind: nvm or cxl")
		threads  = flag.Int("threads", 0, "application threads (0 = all cores)")
		parallel = flag.Int("parallel", 0, "matrix-mode worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		list     = flag.Bool("list", false, "list workloads and policies, then exit")
		baseline = flag.Bool("baseline", false, "also run the all-capacity baseline and report normalized performance")
		series   = flag.String("series", "", "write a time-series CSV (hot/warm/cold, RSS, hit ratio) to this path")
		traceOut = flag.String("trace-events", "", "write a JSONL event trace to this path (matrix mode: a directory, one trace per cell)")
		faults   = flag.String("faults", "", "fault-injection spec, e.g. \"rate=0.01,retries=3,throttle=200us/1ms:4x\" (empty = disabled; see tier.ParseFaultSpec)")
		topoSpec = flag.String("topology", "", "explicit tier chain: a topology spec like \"dram:256m>cxl:1g>nvm:4g\" or a file holding one (see examples/topologies/); replaces the ratio-derived two-tier machine")
		depth    = flag.Int("depth", 0, "derive an N-deep hierarchy (2-4) from the workload's RSS and -ratio (single-workload runs only; conflicts with -topology)")
		admitPol = flag.String("admission", "", "migration admission policy: always, throttle or benefit[:PCT] (empty = per-policy defaults)")
		mover    = flag.String("mover", "", "background-mover budget as BYTES/WINDOW[:qN], e.g. 8m/1ms:q1024 (empty = inline migration)")
		pprofAt  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		scenFile = flag.String("scenario", "", "scenario spec file (or comma-separated list: matrix mode); replaces -workload")
		scenGen  = flag.String("gen-scenario", "", "print the scenario the fuzzer derives from this seed (decimal or 0x hex) and exit")
		tenants  = flag.Int("tenants", 1, "run N contending tenants, each an instance of -workload in its own address space (single-run mode only)")
		tSkew    = flag.String("tenant-skew", "flat", "tenant promotion-weight skew: flat, or 8to1 (tenant 0 gets 8x weight)")
		tChurn   = flag.Float64("tenant-churn", 0, "fraction of tenants after the first that spawn at 10% and exit at 70% of the run")
		tFloor   = flag.Uint64("tenant-floor", 0, "guaranteed fast-tier bytes for tenant 0 (QoS floor)")
		shards   = flag.Int("shards", 1, "split the machine across N sharded worker goroutines: alone, a synthetic zipf stream VPN-sharded over -workload's footprint; with -tenants, whole tenants routed across the shards (single-run mode only)")
	)
	flag.Parse()

	if *pprofAt != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAt, nil); err != nil {
				fmt.Fprintln(os.Stderr, "memtis-sim: pprof:", err)
			}
		}()
	}

	if *list {
		fmt.Println("workloads:")
		for _, s := range workload.Specs() {
			fmt.Printf("  %-12s %6.1f paper-GB  %s\n", s.Name, s.PaperRSSGB, s.Description)
		}
		fmt.Println("policies:")
		for _, p := range append(append([]string{}, bench.Policies...), "memtis-ns", "memtis-vanilla", "static", "all-fast", "all-capacity") {
			fmt.Printf("  %s\n", p)
		}
		return
	}

	if *scenGen != "" {
		genScenario(*scenGen)
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Accesses = *accesses
	cfg.Seed = *seed
	cfg.Threads = *threads
	switch *capKind {
	case "nvm":
		cfg.CapKind = tier.NVM
	case "cxl":
		cfg.CapKind = tier.CXL
	default:
		fmt.Fprintf(os.Stderr, "unknown capacity kind %q\n", *capKind)
		os.Exit(2)
	}
	if *faults != "" {
		fc, err := tier.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim: -faults:", err)
			os.Exit(2)
		}
		cfg.Faults = fc
	}
	if *topoSpec != "" && *depth != 0 {
		fmt.Fprintln(os.Stderr, "-topology and -depth conflict: the spec already fixes the hierarchy")
		os.Exit(2)
	}
	if *topoSpec != "" {
		topo, err := loadTopology(*topoSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim: -topology:", err)
			os.Exit(2)
		}
		cfg.Topology = topo
	}
	if *admitPol != "" {
		adm, err := tier.ParseAdmission(*admitPol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim: -admission:", err)
			os.Exit(2)
		}
		cfg.Admission = adm
	}
	if *mover != "" {
		mc, err := tier.ParseMoverSpec(*mover)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim: -mover:", err)
			os.Exit(2)
		}
		cfg.Mover = mc
	}

	if *tenants < 1 {
		fmt.Fprintf(os.Stderr, "-tenants %d: need at least 1\n", *tenants)
		os.Exit(2)
	}

	if *scenFile != "" {
		if *depth != 0 {
			fmt.Fprintln(os.Stderr, "-depth needs a single -workload run to derive tier sizes from; use -topology with -scenario")
			os.Exit(2)
		}
		if *tenants > 1 {
			fmt.Fprintln(os.Stderr, "-tenants conflicts with -scenario; declare tenants in the spec's \"tenants\" section")
			os.Exit(2)
		}
		if strings.Contains(*scenFile, ",") ||
			strings.Contains(*pname, ",") || strings.Contains(*ratio, ",") {
			cfg.EventDir = *traceOut
			runScenarioMatrix(cfg, *scenFile, *pname, *ratio, *parallel)
			return
		}
		runScenarioSingle(cfg, *scenFile, *pname, *ratio, *series, *traceOut, *baseline)
		return
	}

	if strings.Contains(*wname, ",") || *wname == "all" ||
		strings.Contains(*pname, ",") || strings.Contains(*ratio, ",") {
		if *depth != 0 {
			fmt.Fprintln(os.Stderr, "-depth needs a single -workload run to derive tier sizes from; use -topology in matrix mode")
			os.Exit(2)
		}
		if *tenants > 1 {
			fmt.Fprintln(os.Stderr, "-tenants is a single-run flag; use one workload, policy and ratio")
			os.Exit(2)
		}
		cfg.EventDir = *traceOut
		runMatrix(cfg, *wname, *pname, *ratio, *parallel)
		return
	}

	if *tenants > 1 {
		if *depth != 0 {
			fmt.Fprintln(os.Stderr, "-depth needs a single-tenant -workload run to derive tier sizes from; use -topology with -tenants")
			os.Exit(2)
		}
		if *shards > 1 {
			switch {
			case cfg.Topology != nil:
				fmt.Fprintln(os.Stderr, "-shards supports the two-tier machine only; drop -topology")
				os.Exit(2)
			case *traceOut != "" || *series != "":
				fmt.Fprintln(os.Stderr, "-shards has no trace/series output yet: each shard has a private clock")
				os.Exit(2)
			}
		}
		runTenantsMode(cfg, *wname, *pname, *ratio, *tenants, *tSkew, *tChurn, *tFloor, *traceOut, *baseline, *shards)
		return
	}

	r := parseRatio(*ratio)

	if *shards > 1 {
		switch {
		case *depth != 0 || cfg.Topology != nil:
			fmt.Fprintln(os.Stderr, "-shards supports the two-tier machine only; drop -depth/-topology")
			os.Exit(2)
		case *traceOut != "" || *series != "":
			fmt.Fprintln(os.Stderr, "-shards has no trace/series output yet: each shard has a private clock")
			os.Exit(2)
		case *baseline:
			fmt.Fprintln(os.Stderr, "-baseline compares real workload runs; the sharded stream is synthetic — drop one of the flags")
			os.Exit(2)
		}
		runShardedMode(cfg, *wname, *pname, r, *shards)
		return
	}

	// Validate names up front: a typo is a usage error, not a panic.
	knownW := false
	for _, s := range workload.Specs() {
		knownW = knownW || s.Name == *wname
	}
	if !knownW {
		fmt.Fprintf(os.Stderr, "unknown workload %q (see -list)\n", *wname)
		os.Exit(2)
	}
	if !bench.KnownPolicy(*pname) {
		fmt.Fprintf(os.Stderr, "unknown policy %q (see -list)\n", *pname)
		os.Exit(2)
	}

	if *depth != 0 {
		topo, err := bench.TopologyForDepth(workload.MustNew(*wname).Spec().RSSBytes(), r, *depth, cfg.CapKind)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim: -depth:", err)
			os.Exit(2)
		}
		cfg.Topology = topo
	}

	if *series != "" {
		cfg.RecordNS = 300_000
	}
	flushTrace := setupTrace(&cfg, *traceOut)
	res := bench.RunOne(*wname, *pname, r, cfg)
	// The trace file holds exactly this run; the optional baseline run
	// below must not append to it.
	cfg.Trace = nil
	if err := flushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim:", err)
		os.Exit(1)
	}
	if *series != "" {
		if err := writeSeriesCSV(*series, res); err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("workload        %s\n", res.Workload)
	printResult(res, r.Name, cfg, cfg.Faults.Enabled())

	if *baseline {
		b := bench.RunBaseline(*wname, cfg)
		fmt.Printf("normalized perf %.3f (vs all-%s)\n", bench.Norm(res, b), cfg.CapKind)
	}
}

// runTenantsMode is the -tenants N path: N instances of the named
// workload contend in separate address spaces under one policy, with
// the weight skew, churn plan and tenant-0 floor from the flags. The
// per-tenant accounting table follows the usual metrics block. With
// shards > 1 whole tenants route across an S-shard machine
// (DESIGN.md §13) and a per-shard table precedes the tenant rows.
func runTenantsMode(cfg bench.Config, wname, pname, ratio string, n int, skew string, churn float64, floor uint64, traceOut string, baseline bool, shards int) {
	if !bench.KnownPolicy(pname) {
		fmt.Fprintf(os.Stderr, "unknown policy %q (see -list)\n", pname)
		os.Exit(2)
	}
	if skew != "flat" && skew != "8to1" {
		fmt.Fprintf(os.Stderr, "unknown tenant skew %q (flat or 8to1)\n", skew)
		os.Exit(2)
	}
	r := parseRatio(ratio)
	w, err := workload.New(wname)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q (see -list)\n", wname)
		os.Exit(2)
	}
	per := w.Spec().RSSBytes()
	specs := make([]tenant.Spec, n)
	nChurn := int(churn * float64(n))
	for i := range specs {
		name := fmt.Sprintf("t%02d", i)
		specs[i] = tenant.Spec{
			Name:     name,
			Weight:   1,
			Workload: workload.MustNew(wname),
		}
		if shards > 1 {
			// The sharded driver replays workloads lane-side and needs
			// resumable steppers; the benchmark models issue their init
			// phases against the machine and cannot be replayed. As in
			// the plain -shards mode, a synthetic stream over the same
			// footprint stands in: the sweep's 80/20 tenant mix.
			specs[i].Workload = bench.NewTenantLoad(name, per)
		}
		if skew == "8to1" && i == 0 {
			specs[i].Weight = 8
		}
		if i >= 1 && i <= nChurn {
			specs[i].SpawnFrac = 0.1
			specs[i].ExitFrac = 0.7
		}
	}
	specs[0].FloorBytes = floor
	tn, err := tenant.New(tenant.Config{Tenants: specs})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim: -tenants:", err)
		os.Exit(2)
	}
	rss := per * uint64(n)
	if shards > 1 {
		sr, err := bench.RunTenantsSharded(tn, rss, pname, r, cfg, shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim: -tenants -shards:", err)
			os.Exit(2)
		}
		fmt.Printf("workload        %s x %d tenants (synthetic 80/20 streams over its footprint; skew %s, churn %.0f%%, %d shards)\n",
			wname, n, skew, churn*100, shards)
		printResult(sr.Aggregate, r.Name, cfg, cfg.Faults.Enabled())
		printShards(sr.Shards)
		printTenants(sr.Aggregate)
		if baseline {
			b, err := bench.RunTenantsSharded(tn, rss, "all-capacity", r, cfg, shards)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memtis-sim: -baseline:", err)
				os.Exit(1)
			}
			fmt.Printf("normalized perf %.3f (vs all-%s)\n",
				bench.Norm(sr.Aggregate, b.Aggregate), cfg.CapKind)
		}
		return
	}
	flushTrace := setupTrace(&cfg, traceOut)
	res := bench.RunTenants(tn, rss, pname, r, cfg)
	cfg.Trace = nil
	if err := flushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim:", err)
		os.Exit(1)
	}
	fmt.Printf("workload        %s x %d tenants (skew %s, churn %.0f%%)\n", wname, n, skew, churn*100)
	printResult(res, r.Name, cfg, cfg.Faults.Enabled())
	printTenants(res)
	if baseline {
		b := bench.RunTenants(tn, rss, "all-capacity", r, cfg)
		fmt.Printf("normalized perf %.3f (vs all-%s)\n", bench.Norm(res, b), cfg.CapKind)
	}
}

// runShardedMode is the -shards S path: the named workload's footprint
// drives a synthetic Zipf stream over an S-shard machine (DESIGN.md
// §12); the aggregate result block is followed by a per-shard table.
func runShardedMode(cfg bench.Config, wname, pname string, r bench.Ratio, shards int) {
	if !bench.KnownPolicy(pname) {
		fmt.Fprintf(os.Stderr, "unknown policy %q (see -list)\n", pname)
		os.Exit(2)
	}
	w, err := workload.New(wname)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q (see -list)\n", wname)
		os.Exit(2)
	}
	sr := bench.RunSharded(pname, shards, w.Spec().RSSBytes(), r, cfg)
	fmt.Printf("workload        %s (synthetic zipf over %s footprint, %d shards)\n",
		sr.Aggregate.Workload, wname, shards)
	printResult(sr.Aggregate, r.Name, cfg, cfg.Faults.Enabled())
	printShards(sr.Shards)
}

// printShards prints the per-shard breakdown of a sharded run.
func printShards(shards []sim.Result) {
	fmt.Printf("per-shard       %-6s %12s %10s %10s %10s %12s\n",
		"shard", "accesses", "fast-hit", "promo", "demo", "virtual ms")
	for i, res := range shards {
		fmt.Printf("                s%-5d %12d %9.2f%% %10d %10d %12.3f\n",
			i, res.Accesses, res.FastHitRatio*100, res.VM.Promotions, res.VM.Demotions,
			float64(res.AppNS)/1e6)
	}
}

// printTenants prints the per-tenant accounting rows of a multi-tenant
// result (no-op for single-space runs, whose Tenants slice is nil).
func printTenants(res sim.Result) {
	if len(res.Tenants) == 0 {
		return
	}
	fmt.Printf("per-tenant      %-12s %12s %12s %10s\n", "name", "accesses", "resident MB", "fast MB")
	for _, tr := range res.Tenants {
		fmt.Printf("                %-12s %12d %12.1f %10.1f\n",
			tr.Name, tr.Accesses, mb(tr.ResidentBytes), mb(tr.FastBytes))
	}
}

// loadTopology resolves the -topology flag: the value is either an
// inline topology spec or the path of a file holding one (blank lines
// and #-comment lines ignored, remaining lines joined — the format of
// examples/topologies/).
func loadTopology(arg string) (*tier.Topology, error) {
	spec := arg
	if data, err := os.ReadFile(arg); err == nil {
		var lines []string
		for _, ln := range strings.Split(string(data), "\n") {
			ln = strings.TrimSpace(ln)
			if ln != "" && !strings.HasPrefix(ln, "#") {
				lines = append(lines, ln)
			}
		}
		spec = strings.Join(lines, "")
	}
	return tier.ParseTopologySpec(spec)
}

// setupTrace attaches a JSONL event tracer to cfg when path is
// non-empty and returns the flush-and-close function (a no-op when no
// trace was requested). Exits on file errors.
func setupTrace(cfg *bench.Config, path string) func() error {
	if path == "" {
		return func() error { return nil }
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim:", err)
		os.Exit(1)
	}
	sink := obs.NewJSONL(f)
	cfg.Trace = obs.NewTracer(sink)
	return func() error {
		if err := sink.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// printResult prints the shared single-run metrics block (everything
// after the workload/scenario header line).
func printResult(res sim.Result, ratioName string, cfg bench.Config, faultsOn bool) {
	fmt.Printf("policy          %s\n", res.Policy)
	fmt.Printf("ratio           %s (%s capacity tier)\n", ratioName, cfg.CapKind)
	if cfg.Topology != nil {
		fmt.Printf("hierarchy       %d tiers: %s\n", cfg.Topology.Depth(), cfg.Topology)
	}
	if cfg.Admission != nil {
		fmt.Printf("admission       %s\n", cfg.Admission.Name())
	}
	if cfg.Mover.Enabled() {
		fmt.Printf("mover           %s\n", cfg.Mover)
	}
	fmt.Printf("accesses        %d\n", res.Accesses)
	fmt.Printf("virtual time    %.3f ms (wall %.3f ms with daemon contention)\n",
		float64(res.AppNS)/1e6, float64(res.WallNS)/1e6)
	fmt.Printf("throughput      %.2f M accesses/s\n", res.Throughput/1e6)
	fmt.Printf("fast hit ratio  %.2f%%\n", res.FastHitRatio*100)
	fmt.Printf("daemon CPU      %.2f cores\n", res.DaemonUtil)
	fmt.Printf("TLB miss ratio  %.3f%%\n", res.TLB.MissRatio()*100)
	fmt.Printf("RSS peak/final  %.1f / %.1f MB\n", mb(res.RSSPeak), mb(res.RSSFinal))
	fmt.Printf("migrations      %d base, %d huge (%.1f MB), %d promo / %d demo pages\n",
		res.VM.Migrations4K, res.VM.MigrationsHuge, mb(res.VM.MigratedBytes),
		res.VM.Promotions, res.VM.Demotions)
	fmt.Printf("splits          %d (reclaimed %.1f MB), collapses %d\n",
		res.VM.Splits, mb(res.VM.ReclaimedFrames*tier.BasePageSize), res.VM.Collapses)
	if faultsOn {
		fmt.Printf("fault aborts    %d (%.3f ms wasted copy)\n",
			res.VM.MigrateAborts, float64(res.VM.AbortNS)/1e6)
	}
}

// genScenario is the -gen-scenario mode: print the scenario the
// conformance hunt derives from the seed, annotated with the (policy,
// ratio) the hunt would pair it with, and exit.
func genScenario(arg string) {
	seed, err := strconv.ParseUint(arg, 0, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memtis-sim: -gen-scenario: %v\n", err)
		os.Exit(2)
	}
	spec := scenario.Generate(seed)
	pol, rt := bench.HuntParams(seed)
	spec.Note = fmt.Sprintf(
		"generated from hunt seed %#x; the conformance fuzzer pairs it with policy %s at ratio %s",
		seed, pol, rt.Name)
	data, err := spec.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim:", err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
}

// compileScenario loads and compiles one spec file, resolving trace
// paths relative to the file's directory. Exits on error: a broken
// spec is a usage problem, not a crash.
func compileScenario(path string) *scenario.Runner {
	spec, err := scenario.DecodeFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim: -scenario:", err)
		os.Exit(2)
	}
	sc, err := scenario.Compile(spec, scenario.Options{Dir: filepath.Dir(path)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim: -scenario:", err)
		os.Exit(2)
	}
	return sc
}

// runScenarioSingle mirrors the single-workload path for one scenario
// spec file: same trace/series plumbing, same metrics block, baseline
// normalisation against the scenario's all-capacity run.
func runScenarioSingle(cfg bench.Config, path, pname, ratio, series, traceOut string, baseline bool) {
	if !bench.KnownPolicy(pname) {
		fmt.Fprintf(os.Stderr, "unknown policy %q (see -list)\n", pname)
		os.Exit(2)
	}
	r := parseRatio(ratio)
	sc := compileScenario(path)
	if series != "" {
		cfg.RecordNS = 300_000
	}
	flushTrace := setupTrace(&cfg, traceOut)
	res := bench.RunScenario(sc, pname, r, cfg)
	cfg.Trace = nil
	if err := flushTrace(); err != nil {
		fmt.Fprintln(os.Stderr, "memtis-sim:", err)
		os.Exit(1)
	}
	if series != "" {
		if err := writeSeriesCSV(series, res); err != nil {
			fmt.Fprintln(os.Stderr, "memtis-sim:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("scenario        %s (%s)\n", sc.Name(), path)
	// The scenario's own fault plan overrides -faults (see ScenarioMachine).
	printResult(res, r.Name, cfg, cfg.Faults.Enabled() || sc.FaultConfig().Enabled())
	printTenants(res)
	if baseline {
		b := bench.RunScenarioBaseline(sc, cfg)
		fmt.Printf("normalized perf %.3f (vs all-%s)\n", bench.Norm(res, b), cfg.CapKind)
	}
}

// runScenarioMatrix fans a comma-separated list of spec files out over
// the (ratio, policy) lists on the parallel experiment runner, exactly
// like the workload matrix.
func runScenarioMatrix(cfg bench.Config, slist, plist, rlist string, workers int) {
	var (
		scs   []*scenario.Runner
		names []string
		seen  = map[string]bool{}
	)
	for _, f := range split(slist) {
		sc := compileScenario(f)
		if seen[sc.Name()] {
			fmt.Fprintf(os.Stderr, "duplicate scenario name %q (cell seeds and table rows would collide)\n", sc.Name())
			os.Exit(2)
		}
		seen[sc.Name()] = true
		scs = append(scs, sc)
		names = append(names, sc.Name())
	}
	var ratios []bench.Ratio
	for _, rn := range split(rlist) {
		ratios = append(ratios, parseRatio(rn))
	}
	pols := split(plist)
	for _, p := range pols {
		if !bench.KnownPolicy(p) {
			fmt.Fprintf(os.Stderr, "unknown policy %q (see -list)\n", p)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := bench.Parallel(workers)
	runner.Progress = matrixProgress
	m, err := runner.RunScenarioMatrix(ctx, cfg, scs, ratios, pols)
	if err != nil {
		var ce *bench.Cancelled
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "\nmemtis-sim: interrupted after %d/%d cells\n", ce.Done, ce.Total)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "\nmemtis-sim:", err)
		os.Exit(1)
	}
	title := fmt.Sprintf("normalized performance (capacity tier: %s, seed %d, %d accesses/cell)",
		cfg.CapKind, cfg.Seed, cfg.Accesses)
	fmt.Print(bench.MatrixTable(title, m, names, ratios, pols).String())
}

// parseRatio resolves one ratio name or exits with a usage error.
func parseRatio(name string) bench.Ratio {
	switch name {
	case "1:2":
		return bench.Ratio1to2
	case "1:8":
		return bench.Ratio1to8
	case "1:16":
		return bench.Ratio1to16
	case "2:1":
		return bench.Ratio2to1
	default:
		fmt.Fprintf(os.Stderr, "unknown ratio %q\n", name)
		os.Exit(2)
		panic("unreachable")
	}
}

// split parses a comma-separated flag value, dropping empty fields.
func split(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// matrixProgress is the stderr progress line shared by both matrix modes.
func matrixProgress(p bench.Progress) {
	fmt.Fprintf(os.Stderr, "\r\033[K%d/%d cells  %.2fs virtual  %s", p.Done, p.Total, float64(p.VirtualNS)/1e9, p.Cell)
	if p.Done == p.Total {
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}

// runMatrix is the comma-list mode: every (workload, ratio, policy)
// combination runs on the parallel experiment runner with per-cell
// derived seeds, and the normalized table is printed.
func runMatrix(cfg bench.Config, wlist, plist, rlist string, workers int) {
	workloads := split(wlist)
	if wlist == "all" {
		workloads = nil
		for _, s := range workload.Specs() {
			workloads = append(workloads, s.Name)
		}
	}
	var ratios []bench.Ratio
	for _, rn := range split(rlist) {
		ratios = append(ratios, parseRatio(rn))
	}
	pols := split(plist)

	// Validate names up front so a typo is a usage error, not a panic
	// somewhere inside the worker pool.
	known := map[string]bool{}
	for _, s := range workload.Specs() {
		known[s.Name] = true
	}
	for _, w := range workloads {
		if !known[w] {
			fmt.Fprintf(os.Stderr, "unknown workload %q (see -list)\n", w)
			os.Exit(2)
		}
	}
	for _, p := range pols {
		if !bench.KnownPolicy(p) {
			fmt.Fprintf(os.Stderr, "unknown policy %q (see -list)\n", p)
			os.Exit(2)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runner := bench.Parallel(workers)
	runner.Progress = matrixProgress
	m, err := runner.RunMatrix(ctx, cfg, workloads, ratios, pols)
	if err != nil {
		var ce *bench.Cancelled
		if errors.As(err, &ce) {
			fmt.Fprintf(os.Stderr, "\nmemtis-sim: interrupted after %d/%d cells\n", ce.Done, ce.Total)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "\nmemtis-sim:", err)
		os.Exit(1)
	}
	title := fmt.Sprintf("normalized performance (capacity tier: %s, seed %d, %d accesses/cell)",
		cfg.CapKind, cfg.Seed, cfg.Accesses)
	fmt.Print(bench.MatrixTable(title, m, workloads, ratios, pols).String())
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }

// writeSeriesCSV dumps the run's recorded time series.
func writeSeriesCSV(path string, res sim.Result) error {
	var b strings.Builder
	b.WriteString("time_ms,hot_mb,warm_mb,cold_mb,rss_mb,fast_used_mb,fast_hit,tput_Maccess_s\n")
	for _, p := range res.Series {
		fmt.Fprintf(&b, "%.3f,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f,%.3f\n",
			float64(p.TimeNS)/1e6,
			mb(p.HotBytes), mb(p.WarmBytes), mb(p.ColdBytes),
			mb(p.RSSBytes), mb(p.FastUsed), p.FastHitWin, p.ThroughputWin/1e6)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
