package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{{0, false}, {1, true}, {1 << 40, false}, {12345, true}}
	for _, r := range want {
		if err := w.Add(r.VPN, r.Write); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(want)) {
		t.Fatalf("count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(vpns []uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w, _ := NewWriter(&buf)
		var want []Record
		for _, v := range vpns {
			rec := Record{uint64(v), rng.Intn(2) == 0}
			want = append(want, rec)
			if w.Add(rec.VPN, rec.Write) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := ReadAll(r)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("expected header error")
	}
	if _, err := NewReader(bytes.NewReader(append(Magic[:], 99))); err == nil {
		t.Fatal("expected version error")
	}
}

func TestCorruptRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Add(1, false)
	w.Flush()
	// Append a truncated varint (continuation bit set, no next byte).
	buf.WriteByte(0x80)
	r, _ := NewReader(&buf)
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should parse: %v", err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("expected corruption error, got %v", err)
	}
}

func TestAnalyze(t *testing.T) {
	recs := []Record{{10, true}, {10, false}, {20, false}, {30, true}, {10, false}}
	s := Analyze(recs, 2)
	if s.Accesses != 5 || s.Writes != 2 || s.DistinctPages != 3 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MinVPN != 10 || s.MaxVPN != 30 {
		t.Fatalf("range: %+v", s)
	}
	if s.FootprintBytes() != 3*4096 {
		t.Fatal("footprint")
	}
	if len(s.Top) != 2 || s.Top[0] != (PageCount{10, 3}) {
		t.Fatalf("top: %+v", s.Top)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(nil, 5)
	if s.Accesses != 0 || s.MinVPN != 0 || len(s.Top) != 0 {
		t.Fatalf("%+v", s)
	}
}

func TestHeatmap(t *testing.T) {
	// First half of time hits low pages, second half high pages.
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{uint64(i % 10), false})
	}
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{90 + uint64(i%10), false})
	}
	g := Heatmap(recs, 2, 2)
	if g[0][0] != 100 || g[0][1] != 0 || g[1][0] != 0 || g[1][1] != 100 {
		t.Fatalf("heatmap: %v", g)
	}
	if Heatmap(nil, 2, 2) != nil {
		t.Fatal("empty heatmap should be nil")
	}
}

func TestReuseHistogram(t *testing.T) {
	// Page 5 accessed every 4 records: reuse distance 4 -> bin 2.
	var recs []Record
	for i := 0; i < 40; i++ {
		if i%4 == 0 {
			recs = append(recs, Record{5, false})
		} else {
			recs = append(recs, Record{uint64(100 + i), false})
		}
	}
	h := ReuseHistogram(recs, 8)
	if h[2] != 9 {
		t.Fatalf("bin 2 = %d, want 9 (hist %v)", h[2], h)
	}
}

func TestCaptureAndReplay(t *testing.T) {
	mc := sim.Config{
		FastBytes: 4 * tier.HugePageSize,
		CapBytes:  64 * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      5,
	}
	m := sim.NewMachine(mc, nil)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	detach := Capture(m, w)
	r := m.Reserve(2 * tier.HugePageSize)
	for i := 0; i < 5000; i++ {
		m.Access(r.BaseVPN+uint64(i)%r.Pages, i%3 == 0)
	}
	detach()
	m.Access(r.BaseVPN, false) // after detach: not recorded
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 5000 {
		t.Fatalf("captured %d records", w.Count())
	}

	rd, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(rd)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplay("cap", recs)
	if rep.Records() != 5000 {
		t.Fatal("replay record count")
	}
	m2 := sim.NewMachine(mc, nil)
	rep.Run(m2, 12_000) // loops the trace 2.4x
	if m2.Accesses() != 12_000 {
		t.Fatalf("replayed %d accesses", m2.Accesses())
	}
	if m2.AS.RSSBytes() == 0 {
		t.Fatal("replay mapped nothing")
	}
}

func TestReplayOfBenchmarkTraceIsDeterministic(t *testing.T) {
	// Record a slice of a real workload and replay it under two
	// machines: identical placement outcomes.
	w := workload.MustNew("654.roms")
	spec := w.Spec()
	mc := sim.Config{
		FastBytes: spec.RSSBytes() / 9,
		CapBytes:  spec.RSSBytes() + spec.RSSBytes()/4 + 16*tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      7,
	}
	m := sim.NewMachine(mc, nil)
	var buf bytes.Buffer
	tw, _ := NewWriter(&buf)
	Capture(m, tw)
	w.Run(m, 60_000)
	tw.Flush()

	rd, _ := NewReader(bytes.NewReader(buf.Bytes()))
	recs, _ := ReadAll(rd)
	run := func() sim.Result {
		mm := sim.NewMachine(mc, nil)
		rep := NewReplay("roms-slice", recs)
		rep.Run(mm, 60_000)
		return mm.Finish("roms-slice")
	}
	a, b := run(), run()
	if a.AppNS != b.AppNS || a.FastHitRatio != b.FastHitRatio {
		t.Fatal("replay not deterministic")
	}
}
