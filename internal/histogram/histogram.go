// Package histogram implements the 16-bin exponential page-access
// histogram at the heart of MEMTIS (§4.1.3). Bin n covers hotness
// factors in [2^n, 2^(n+1)); the last bin is unbounded. Bin values count
// distinct pages at 4KB granularity, so a huge page contributes 512
// units to its bin. The exponential scale makes cooling (halving every
// page's access count) a one-position left shift, and Algorithm 1's
// threshold adaptation a single top-down scan.
package histogram

import "math/bits"

// Bins is the number of histogram bins (paper default).
const Bins = 16

// MaxBin is the index of the unbounded top bin.
const MaxBin = Bins - 1

// BinOf maps a hotness factor to its bin index: floor(log2(h)) clamped
// to [0, MaxBin]. Hotness 0 and 1 both land in bin 0.
func BinOf(hotness uint64) int {
	if hotness <= 1 {
		return 0
	}
	b := bits.Len64(hotness) - 1
	if b > MaxBin {
		return MaxBin
	}
	return b
}

// Histogram counts 4KB page units per hotness bin.
type Histogram struct {
	bins  [Bins]uint64
	total uint64
}

// Add records units 4KB-pages entering bin b.
func (h *Histogram) Add(b int, units uint64) {
	h.bins[b] += units
	h.total += units
}

// Remove records units 4KB-pages leaving bin b.
func (h *Histogram) Remove(b int, units uint64) {
	if h.bins[b] < units || h.total < units {
		panic("histogram: underflow")
	}
	h.bins[b] -= units
	h.total -= units
}

// Move transfers units pages from bin from to bin to. Moving within the
// same bin is a no-op, so callers can invoke it unconditionally after a
// hotness update.
func (h *Histogram) Move(from, to int, units uint64) {
	if from == to {
		return
	}
	if h.bins[from] < units {
		panic("histogram: move underflow")
	}
	h.bins[from] -= units
	h.bins[to] += units
}

// Bin returns the page-unit count of bin b.
func (h *Histogram) Bin(b int) uint64 { return h.bins[b] }

// Total returns the page-unit count across all bins.
func (h *Histogram) Total() uint64 { return h.total }

// Cool shifts every bin one position left, mirroring the halving of all
// page access counts: a page in [2^n, 2^(n+1)) lands in [2^(n-1), 2^n)
// after halving. Bins 0 and 1 merge into bin 0. Pages pinned in the
// unbounded top bin whose halved hotness still exceeds 2^15 are handled
// by the caller's page scan (§4.2.2): it re-inserts them via Move.
func (h *Histogram) Cool() {
	h.bins[0] += h.bins[1]
	for b := 1; b < MaxBin; b++ {
		h.bins[b] = h.bins[b+1]
	}
	h.bins[MaxBin] = 0
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{}
}

// Clone returns a copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Thresholds is the output of Algorithm 1: bin indexes for the hot, warm
// and cold boundaries. A page in bin >= Hot is hot; bin <= Cold is cold;
// anything between is warm.
type Thresholds struct {
	Hot  int
	Warm int
	Cold int
	// HotUnits is the accumulated 4KB-page units of the identified hot
	// set (the "s" of Algorithm 1), for introspection and tests.
	HotUnits uint64
	// MarginBin is the first nonzero bin below Hot (-1 if none); only
	// MarginFrac of it would still fit in the fast tier. Estimators
	// (eHR, §4.3.1) weight samples from that marginal bin by this
	// fraction — without it, a single huge marginal bin (e.g. every
	// subpage sampled exactly once) would count wholesale and inflate
	// the estimate.
	MarginBin  int
	MarginFrac float64
}

// Classify returns -1 for cold, 0 for warm, +1 for hot.
func (t Thresholds) Classify(bin int) int {
	switch {
	case bin >= t.Hot:
		return 1
	case bin <= t.Cold:
		return -1
	default:
		return 0
	}
}

// Adapt implements Algorithm 1 (dynamic adaptation of thresholds).
// fastUnits is the fast-tier capacity expressed in 4KB page units and
// alpha the fill-target factor (paper: 0.9). It scans bins from the top,
// accumulating page units until adding the next bin would overflow the
// fast tier; the hot threshold lands just above that bin. When the
// identified hot set is not close enough to the fast tier capacity
// (s < fastUnits*alpha), the warm threshold opens up one bin below hot
// to shield near-hot pages from demotion.
// Adapt descends from the top bin, accumulating page units while they
// fit. Exponential hotness factors leave structural gaps (a base page's
// minimum nonzero hotness is 512 = bin 9), so after the scan the hot
// threshold is floored at the lowest *nonzero* bin it absorbed —
// descending through empty bins would otherwise declare bins that no
// real page occupies "hot" and corrupt the estimators built on the
// threshold index.
func Adapt(h *Histogram, fastUnits uint64, alpha float64) Thresholds {
	var s uint64
	b := MaxBin
	lowestNZ := -1
	for b >= 0 && s+h.bins[b] <= fastUnits {
		if h.bins[b] > 0 {
			lowestNZ = b
		}
		s += h.bins[b]
		b--
	}
	t := Thresholds{Hot: b + 1, HotUnits: s, MarginBin: -1}
	if lowestNZ >= 0 && lowestNZ > t.Hot {
		t.Hot = lowestNZ
	}
	if t.Hot < 1 {
		t.Hot = 1
	}
	for mb := t.Hot - 1; mb >= 0; mb-- {
		if h.bins[mb] > 0 {
			t.MarginBin = mb
			t.MarginFrac = float64(fastUnits-s) / float64(h.bins[mb])
			break
		}
	}
	if float64(s) >= float64(fastUnits)*alpha {
		t.Warm = t.Hot
	} else {
		t.Warm = t.Hot - 1
	}
	t.Cold = t.Warm - 1
	return t
}
