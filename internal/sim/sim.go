// Package sim is the discrete, deterministic tiered-memory machine
// simulator. A Machine wires a workload's access stream through a TLB
// model and an address space over a chain of memory tiers (the default
// two-tier fast/capacity pair, or an N-deep tier.Topology), charges
// every access the latency of the tier its page lives on, and drives a
// pluggable tiering Policy (MEMTIS or one of the baselines).
//
// Virtual time is the time experienced by one representative
// application thread: each access advances the clock by translation
// cost + tier latency + any critical-path stall (demand fault, hint
// fault, synchronous migration). Background daemons (ksampled,
// kmigrated, scanners) consume modelled CPU time that is reported and —
// when the application saturates every core, as the paper's 20-thread
// runs do — converted into a contention slowdown of cores/(cores-used).
package sim

import (
	"math"
	"math/rand"

	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/tier"
	"memtis/internal/tlb"
	"memtis/internal/vm"
)

// Policy is a tiering system under test. Exactly one policy is attached
// to a machine; it sees every access (for fault- and scan-based
// tracking this doubles as the accessed-bit/page-fault stream — PEBS
// policies feed their own sampler from it), is ticked on a fixed
// virtual-time period for background work, and decides initial page
// placement.
type Policy interface {
	Name() string
	// Attach binds the policy to the machine before the workload runs.
	Attach(m *Machine)
	// PlaceNew picks the tier for a faulting page; tier.NoTier selects
	// the machine default (fast while free, then capacity).
	PlaceNew(huge bool, vpn uint64) tier.ID
	// OnAccess observes one access and returns any critical-path stall
	// it inflicts (hint fault, sync migration) in nanoseconds.
	OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64
	// Tick runs background work; called every Machine TickNS.
	Tick(now uint64)
	// BackgroundNS returns cumulative daemon CPU time consumed so far.
	BackgroundNS() uint64
	// BusyCores returns the policy's current estimate of cores kept
	// busy by its background machinery: a constant for spinning
	// designs (HeMem's sampler thread = 1) or a smoothed share of
	// BackgroundNS over wall time for tick-driven daemons (MEMTIS).
	// Finish folds this into DaemonUtil as max(BackgroundNS share,
	// BusyCores) — the two are alternative views of the same cost, so
	// they are never summed. Return 0 when BackgroundNS alone is the
	// whole story.
	BusyCores() float64
	// Capabilities declares, once and for the lifetime of the policy,
	// which deliberate contract deviations the policy claims (see the
	// Capability constants). Harnesses — the conformance suite above
	// all — read this instead of type-asserting concrete policies, so
	// a new policy that shares a deviation declares it rather than
	// growing the suite's special-case list. Return 0 (no deviations)
	// unless a documented capability applies; an undeclared deviation
	// is a conformance failure, a declared-but-unused one is harmless.
	Capabilities() Capability
}

// Capability is a bitset of declared policy properties that adjust the
// conformance contract. Capabilities are static: a policy's set must
// not change after construction.
type Capability uint32

const (
	// CapPinnedPlacement: the policy deliberately directs every
	// allocation at one tier regardless of free space and relies on
	// the VM's documented overflow fallback (the all-fast /
	// all-capacity reference baselines). Conformance suites must not
	// fault PlaceNew for targeting a full tier; adaptive policies must
	// never declare this.
	CapPinnedPlacement Capability = 1 << iota
)

// Has reports whether every bit of want is set.
func (c Capability) Has(want Capability) bool { return c&want == want }

// HotSetReporter is implemented by policies that classify pages so the
// harness can plot identified hot/warm/cold set sizes (Figures 2 and 9).
type HotSetReporter interface {
	HotSet() (hotBytes, warmBytes, coldBytes uint64)
}

// FastSampled is implemented by policies whose OnAccess, on a
// non-faulting access the PEBS sampler ignores, provably does nothing
// and returns zero stall — the MEMTIS shape: feed the sampler, act
// only on samples, run the period controller on its own schedule. For
// such policies the machine serves non-sampled steady-state accesses
// through the TouchFast/FeedFast bypass, skipping the TouchResult and
// the OnAccess call entirely while keeping sample streams, adjustment
// schedules and event traces byte-identical (pebs.Sampler.FeedFast
// consumes an access only when neither a sample nor a controller run
// is due, so the full path still sees exactly the accesses it would
// have acted on).
type FastSampled interface {
	// SampleGate returns the sampler gating the bypass, or nil when a
	// mode of the policy does per-access work (e.g. hybrid scanning)
	// and must see every access.
	SampleGate() *pebs.Sampler
}

// Config describes the simulated machine.
type Config struct {
	FastBytes uint64
	CapBytes  uint64
	CapKind   tier.Kind // NVM (default) or CXL
	// Topology, when non-nil, replaces the two-tier FastBytes/CapBytes/
	// CapKind trio with an N-deep chain (per-tier sizes and latencies,
	// per-hop migration costs). Nil builds the historical two-tier
	// machine — byte-identical to the pre-topology simulator.
	Topology *tier.Topology
	// Mover configures the rate-limited background mover. The zero
	// value disables it: policies migrate inline, exactly as before,
	// and no mover counters are registered.
	Mover tier.MoverConfig
	// Admission, when non-nil, is the machine-wide admission-control
	// policy scoring migration benefit against per-hop cost; policies
	// consult it through their shared helpers. Nil keeps the historical
	// default (async migration deferred during throttle windows) and
	// registers no admission counters.
	Admission tier.Admission
	THP       bool
	TLB       tlb.Config
	Cores     int // physical cores (paper: 20)
	Threads   int // application threads (20 = saturated, 16 = headroom)
	TickNS    uint64
	RecordNS  uint64 // series sampling period (0 disables)
	Seed      int64
	// Trace, when non-nil, receives the machine's event stream
	// (promotions, faults, splits, ...; see package obs). The machine
	// binds its virtual clock to the tracer, so a tracer serves exactly
	// one machine. Nil disables tracing at zero cost.
	Trace *obs.Tracer
	// Faults configures deterministic fault injection (DESIGN.md §6):
	// transient migration-copy failures, bandwidth-throttling windows
	// and per-tier stall bursts. The zero value disables injection
	// entirely; a zero Faults.Seed derives the decision stream from
	// Seed, so matrix cells with derived per-cell seeds get independent
	// fault histories automatically.
	Faults tier.FaultConfig
}

func (c *Config) fillDefaults() {
	if c.Cores == 0 {
		c.Cores = 20
	}
	if c.Threads == 0 {
		c.Threads = c.Cores
	}
	if c.TickNS == 0 {
		c.TickNS = 200_000 // 200us virtual between policy ticks
	}
}

// SeriesPoint is one sample of the machine's time series.
type SeriesPoint struct {
	TimeNS        uint64
	HotBytes      uint64
	WarmBytes     uint64
	ColdBytes     uint64
	RSSBytes      uint64
	FastUsed      uint64
	FastHitWin    float64 // fast-tier hit ratio since the previous point
	ThroughputWin float64 // accesses per virtual second since previous point
}

// TenantResult is one tenant's share of a multi-tenant run, in space
// order. Exited tenants keep their row (accesses retained, resident
// zero) so fairness sweeps can account for churned tenants.
type TenantResult struct {
	ID            int
	Name          string
	Accesses      uint64
	ResidentBytes uint64
	FastBytes     uint64
}

// Result summarises one workload run.
type Result struct {
	Policy       string
	Workload     string
	Accesses     uint64
	AppNS        uint64  // raw single-thread virtual time
	WallNS       uint64  // AppNS inflated by daemon contention
	Throughput   float64 // accesses per wall-second
	FastHitRatio float64
	DaemonUtil   float64 // cores' worth of daemon CPU
	VM           vm.Stats
	TLB          tlb.Stats
	RSSPeak      uint64
	RSSFinal     uint64
	Series       []SeriesPoint
	// Counters is the machine registry's snapshot (sorted by name):
	// policy-reported counters and gauges, namespaced per policy.
	Counters []obs.Metric
	// Tenants is per-tenant accounting, nil for single-space runs (the
	// compatibility path: single-tenant results are byte-identical to
	// the pre-multi-tenant simulator, pinned by a golden test).
	Tenants []TenantResult
}

// maxTiers bounds the tier-chain depth a machine supports, matching
// vm's packed page-table entry (4 tier bits).
const maxTiers = 16

// Machine is one simulated tiered host running a single workload under
// a single policy. Fast and Cap alias the endpoints of the tier chain;
// Tiers holds the full chain on N-tier machines.
type Machine struct {
	Cfg  Config
	Fast *tier.Tier
	Cap  *tier.Tier
	// Tiers is the tier chain, fastest first (Tiers[0] == Fast,
	// Tiers[len-1] == Cap; exactly those two on a default machine).
	Tiers []*tier.Tier
	AS    *vm.AddressSpace
	TLB   *tlb.TLB
	Pol   Policy
	Rand  *rand.Rand
	reg   *obs.Registry

	// fastSmp is the attached policy's sampler when it declared the
	// FastSampled bypass (nil otherwise): the Access fast path that
	// skips OnAccess for provably ignored accesses.
	fastSmp *pebs.Sampler

	// topo is Cfg.Topology (nil on the historical two-tier path); new
	// address spaces inherit its hop-cost model.
	topo *tier.Topology

	// mover is the rate-limited background mover (nil when disabled).
	mover *vm.Mover
	// moverNS accumulates the mover's copy work for DaemonUtil.
	moverNS uint64

	// faults is the machine's fault plan (nil when cfg.Faults is the
	// zero value, which keeps the hot path at one nil check).
	faults          *tier.FaultPlan
	ctrThrottleWins *uint64
	ctrStallWins    *uint64
	ctrStallNS      *uint64

	// Per-tier latencies indexed by tier ID, hoisted out of the
	// per-access path at construction (tier.AccessNS is two pointer
	// chases per call).
	// loadNS/storeNS are fixed-size arrays rather than slices so the
	// per-access latency lookup is one indexed load with no slice
	// header indirection; maxTiers matches the packed page-table
	// entry's 4 tier bits.
	loadNS, storeNS [maxTiers]uint64

	now      uint64
	accesses uint64
	fastHits uint64

	// nextRecord is math.MaxUint64 when series sampling is off, so the
	// hot path pays one compare instead of an enabled-check plus a
	// compare.
	nextTick   uint64
	nextRecord uint64

	// ticking guards deliverTicks against re-entry: a policy whose Tick
	// charges time via AdvanceBackground must not recurse into its own
	// tick delivery (the outer catch-up loop picks up anything that
	// became due).
	ticking bool

	lastAccesses uint64
	lastFastHits uint64
	lastTime     uint64

	rssPeak uint64
	series  []SeriesPoint

	// Multi-tenant state. A machine starts single-space (spaces nil,
	// cur == AS, curTag == 0) and becomes multi on the first AddSpace;
	// the single-space hot path pays one OR with a zero tag and one
	// predictable branch for the per-space access counter.
	spaces      []*vm.AddressSpace // spaces[0] == AS when non-nil
	spaceAcc    []uint64           // per-space access counts
	spaceLabels []string
	cur         *vm.AddressSpace
	curID       uint32
	curTag      uint64 // curID << SpaceTagShift
	multi       bool

	// AccessObserver, when set, sees every access (used by the DAMON
	// and trace-analysis experiments, and by the tenant scheduler to
	// preempt the running tenant at slice boundaries). The vpn carries
	// the current space tag, like the vpn fed to the TLB and policy.
	AccessObserver func(vpn uint64, write bool, now uint64)
}

// SpaceTagShift positions an address-space index above the VPN bits of
// the tagged virtual page numbers handed to the TLB and to
// Policy.OnAccess, so two tenants' identical VPNs never alias in
// translation caches or policy bookkeeping. 40 bits of VPN cover 4PB
// of virtual address space per tenant — far beyond MaxTotalBytes-style
// scenario bounds — and the tag stays zero on single-space machines,
// keeping their streams bit-identical to the pre-tenant simulator.
const SpaceTagShift = 40

type defaultPlacer struct{}

func (defaultPlacer) PlaceNew(bool, uint64) tier.ID { return tier.NoTier }

// NewMachine builds a machine; pol may be nil (no tiering: default
// placement, no migration), which is the all-on-one-tier baseline when
// FastBytes is tiny or CapBytes covers everything.
func NewMachine(cfg Config, pol Policy) *Machine {
	cfg.fillDefaults()
	topo := cfg.Topology
	if topo == nil {
		topo = tier.DefaultTopology(cfg.FastBytes, cfg.CapBytes, cfg.CapKind)
	}
	tiers, err := topo.Build()
	if err != nil {
		panic(err)
	}
	m := &Machine{
		Cfg:   cfg,
		Fast:  tiers[0],
		Cap:   tiers[len(tiers)-1],
		Tiers: tiers,
		topo:  cfg.Topology,
		AS:    vm.NewAddressSpaceTiers(tiers, cfg.Topology, cfg.THP),
		TLB:   tlb.New(cfg.TLB),
		Pol:   pol,
		Rand:  rand.New(rand.NewSource(cfg.Seed + 7)),
		reg:   obs.NewRegistry(),
	}
	m.cur = m.AS
	if cfg.Trace != nil {
		cfg.Trace.BindClock(func() uint64 { return m.now })
		m.AS.Trace = cfg.Trace
		m.TLB.Trace = cfg.Trace
	}
	if cfg.Faults.Enabled() {
		fc := cfg.Faults
		if fc.Seed == 0 {
			// Fold the machine seed through the same finalizer family
			// the matrix runner uses, so every cell's fault history is
			// independent yet fully determined by its cell seed.
			fc.Seed = cfg.Seed ^ 0x66_61_75_6c_74 // "fault"
		}
		m.faults = tier.NewFaultPlan(fc)
		m.AS.Faults = m.faults
		m.AS.Clock = func() uint64 { return m.now }
		g := m.reg.Group("fault")
		m.ctrThrottleWins = g.Counter("throttle_windows")
		m.ctrStallWins = g.Counter("stall_windows")
		m.ctrStallNS = g.Counter("stall_ns")
		// Bound once here: the registered counters below exist exactly
		// when faults are on, so fault-disabled counter snapshots (and
		// the golden CSVs diffing them) are unchanged.
		g.Counter("migrate_aborts")
		g.Counter("abort_ns")
	}
	if cfg.Mover.Enabled() {
		m.mover = vm.NewMover(cfg.Mover, m.faults)
		m.mover.AttachMetrics(m.reg.Group("mover"))
	}
	for i, t := range tiers {
		m.loadNS[i] = t.AccessNS(false)
		m.storeNS[i] = t.AccessNS(true)
	}
	m.nextTick = cfg.TickNS
	m.nextRecord = math.MaxUint64
	if cfg.RecordNS > 0 {
		m.nextRecord = cfg.RecordNS
	}
	if pol != nil {
		m.AS.SetPlacer(policyPlacer{pol})
		pol.Attach(m)
		if fs, ok := pol.(FastSampled); ok {
			m.fastSmp = fs.SampleGate()
		}
	} else {
		m.AS.SetPlacer(defaultPlacer{})
	}
	return m
}

type policyPlacer struct{ p Policy }

func (pp policyPlacer) PlaceNew(huge bool, vpn uint64) tier.ID { return pp.p.PlaceNew(huge, vpn) }

// Now returns the current virtual time in nanoseconds.
func (m *Machine) Now() uint64 { return m.now }

// Counters returns the machine's metric registry. Policies grab their
// namespaced cells once, at Attach time.
func (m *Machine) Counters() *obs.Registry { return m.reg }

// Tracer returns the machine's event tracer (nil when tracing is off);
// emitting on the returned value is always safe.
func (m *Machine) Tracer() *obs.Tracer { return m.Cfg.Trace }

// Faults returns the machine's fault plan — nil when fault injection
// is disabled, which every FaultPlan method treats as the no-fault
// case, so callers consult it unguarded.
func (m *Machine) Faults() *tier.FaultPlan { return m.faults }

// Mover returns the machine's background mover — nil when disabled,
// which every Mover method treats as the inline-migration case, so
// the policy helpers consult it unguarded.
func (m *Machine) Mover() *vm.Mover { return m.mover }

// Depth returns the number of tiers in the machine's chain.
func (m *Machine) Depth() int { return len(m.Tiers) }

// Tier returns the tier object at chain position id.
func (m *Machine) Tier(id tier.ID) *tier.Tier { return m.Tiers[id] }

// LastTier returns the ID of the deepest tier of the chain.
func (m *Machine) LastTier() tier.ID { return tier.ID(len(m.Tiers) - 1) }

// PromoteTarget returns the tier one hop above id — the destination of
// a single-hop promotion — clamped at the fast tier.
func (m *Machine) PromoteTarget(id tier.ID) tier.ID {
	if id <= tier.FastTier {
		return tier.FastTier
	}
	return id - 1
}

// DemoteTarget returns the tier one hop below id — the destination of
// a single-hop demotion — clamped at the deepest tier.
func (m *Machine) DemoteTarget(id tier.ID) tier.ID {
	if last := m.LastTier(); id >= last {
		return last
	}
	return id + 1
}

// AccessGainNS returns the per-access load-latency delta of moving a
// page from src to dst: positive when dst is faster, negative for
// demotions. The admission layer multiplies it by predicted accesses
// to score migration benefit.
func (m *Machine) AccessGainNS(src, dst tier.ID) int64 {
	return int64(m.loadNS[src]) - int64(m.loadNS[dst])
}

// Accesses returns the number of accesses issued so far — by the
// current address space on a multi-tenant machine, by the machine as a
// whole otherwise. Workload budget loops (`for m.Accesses() < target`)
// thereby become per-tenant budgets automatically when the tenant
// scheduler switches spaces; TotalAccesses always reads the global
// count.
func (m *Machine) Accesses() uint64 {
	if m.multi {
		return m.spaceAcc[m.curID]
	}
	return m.accesses
}

// TotalAccesses returns the machine-wide access count regardless of
// the current space.
func (m *Machine) TotalAccesses() uint64 { return m.accesses }

// AddSpace creates an additional address space sharing the machine's
// tiers, fault plan, tracer and policy hooks, and returns its index.
// The root space (index 0) is m.AS; the first AddSpace flips the
// machine into multi-tenant mode. Call before or between runs, not
// mid-access.
func (m *Machine) AddSpace(label string) int {
	if m.spaces == nil {
		m.spaces = []*vm.AddressSpace{m.AS}
		m.spaceAcc = []uint64{m.accesses}
		m.spaceLabels = []string{""}
	}
	as := vm.NewAddressSpaceTiers(m.Tiers, m.topo, m.Cfg.THP)
	as.Tenant = uint32(len(m.spaces))
	as.Trace = m.AS.Trace
	as.Faults = m.AS.Faults
	as.Clock = m.AS.Clock
	as.OnUnmap = m.AS.OnUnmap
	as.MigrateVeto = m.AS.MigrateVeto
	if m.Pol != nil {
		as.SetPlacer(policyPlacer{m.Pol})
	} else {
		as.SetPlacer(defaultPlacer{})
	}
	m.spaces = append(m.spaces, as)
	m.spaceAcc = append(m.spaceAcc, 0)
	m.spaceLabels = append(m.spaceLabels, label)
	for _, s := range m.spaces {
		s.Owners = m.spaces
	}
	m.multi = true
	return len(m.spaces) - 1
}

// UseSpace makes space id the target of subsequent accesses,
// reservations and frees. The tenant scheduler calls it on every
// context switch; on a single-space machine only id 0 is valid (and a
// no-op), so a one-tenant schedule needs no special casing.
func (m *Machine) UseSpace(id int) {
	if m.spaces == nil {
		if id != 0 {
			panic("sim: UseSpace on a single-space machine")
		}
		return
	}
	m.cur = m.spaces[id]
	m.curID = uint32(id)
	m.curTag = uint64(id) << SpaceTagShift
}

// SetSpaceLabel names a space for per-tenant result rows.
func (m *Machine) SetSpaceLabel(id int, label string) {
	if m.spaces == nil && id == 0 {
		return // single-space: no tenant rows are emitted
	}
	m.spaceLabels[id] = label
}

// NumSpaces returns the number of address spaces the machine hosts.
func (m *Machine) NumSpaces() int {
	if m.spaces == nil {
		return 1
	}
	return len(m.spaces)
}

// Space returns address space id (0 is m.AS).
func (m *Machine) Space(id int) *vm.AddressSpace {
	if m.spaces == nil {
		return m.AS
	}
	return m.spaces[id]
}

// SpaceOf returns the address space owning p. Policies must route
// page-table operations (Split, Collapse, Lookup by VPN) through the
// owner; migrations may go through any space handle.
func (m *Machine) SpaceOf(p *vm.Page) *vm.AddressSpace {
	if !m.multi {
		return m.AS
	}
	return m.spaces[p.Owner]
}

// Multi reports whether the machine hosts more than one address space.
func (m *Machine) Multi() bool { return m.multi }

// CurrentSpace returns the index of the space accesses currently target.
func (m *Machine) CurrentSpace() int { return int(m.curID) }

// SpaceAccesses returns the access count issued by space id.
func (m *Machine) SpaceAccesses(id int) uint64 {
	if m.spaces == nil {
		return m.accesses
	}
	return m.spaceAcc[id]
}

// RSSBytes returns the machine-wide resident set. Spaces share the
// two tier objects and an AddressSpace's RSS is their combined used
// frames, so the root space's figure is already machine-wide on a
// multi-tenant machine; per-tenant residency is ResidentUnits on the
// individual spaces.
func (m *Machine) RSSBytes() uint64 {
	return m.AS.RSSBytes()
}

// ForEachPage visits every live page of every space, each space in
// ascending-VPN order, spaces in index order — deterministic, like the
// single-space walker it generalises.
func (m *Machine) ForEachPage(fn func(p *vm.Page)) {
	if !m.multi {
		m.AS.ForEachPage(fn)
		return
	}
	for _, s := range m.spaces {
		s.ForEachPage(fn)
	}
}

// ForEachPageFrom is the machine-wide bounded incremental walker:
// like vm.AddressSpace.ForEachPageFrom but cycling over every space.
// The cursor packs the space index above SpaceTagShift and the VPN
// cursor below it, so background sweeps resume exactly where they
// stopped even across tenant spawns.
func (m *Machine) ForEachPageFrom(cursor uint64, max int, fn func(p *vm.Page)) uint64 {
	if !m.multi {
		return m.AS.ForEachPageFrom(cursor, max, fn)
	}
	sid := int(cursor >> SpaceTagShift)
	vc := cursor & (1<<SpaceTagShift - 1)
	if sid >= len(m.spaces) {
		sid, vc = 0, 0
	}
	remaining := max
	// Bound the walk to one full cycle over the spaces so a machine of
	// empty (exited) tenants terminates without visiting max pages.
	for hops := 0; hops <= len(m.spaces) && remaining > 0; {
		visited := 0
		next, done := m.spaces[sid].ForEachPageSlice(vc, remaining, func(p *vm.Page) {
			visited++
			fn(p)
		})
		remaining -= visited
		if !done {
			vc = next
			continue
		}
		sid++
		if sid >= len(m.spaces) {
			sid = 0
		}
		vc = 0
		hops++
	}
	return uint64(sid)<<SpaceTagShift | vc
}

// Audit verifies the frame-accounting invariants across every address
// space the machine hosts (vm.Audit generalised to shared tiers).
func (m *Machine) Audit() error {
	if !m.multi {
		return m.AS.Audit()
	}
	return vm.AuditSharedTiers(m.Tiers, m.spaces)
}

// AdvanceBackground lets policies charge additional critical-path time
// (used by trackers that stall the app outside OnAccess's return path).
// Like every clock advance, it delivers any policy ticks and series
// samples that become due — a long stall must not postpone background
// work past its schedule.
func (m *Machine) AdvanceBackground(ns uint64) { m.advance(ns) }

// advance is the single place the virtual clock moves: it adds ns and
// runs the tick/record catch-up that every time-advancing path
// (Access, FreeRegion, AdvanceBackground) must share. Bumping m.now
// directly would deliver due policy ticks late.
func (m *Machine) advance(ns uint64) {
	m.now += ns
	if m.now >= m.nextTick {
		m.deliverTicks()
	}
	if m.now >= m.nextRecord {
		m.deliverRecords()
	}
}

// deliverTicks runs the policy tick catch-up loop. Out of line: the hot
// path pays only the m.now >= m.nextTick compare. Re-entrant advances
// from inside Policy.Tick bump the clock only; the loop here delivers
// whatever they made due.
func (m *Machine) deliverTicks() {
	if m.ticking {
		return
	}
	m.ticking = true
	for m.now >= m.nextTick {
		if m.Pol != nil {
			m.Pol.Tick(m.nextTick)
		}
		if m.mover != nil {
			// The mover drains queued migrations on the tick cadence;
			// its copy work is daemon time, not critical path.
			m.moverNS += m.mover.Advance(m.nextTick)
		}
		m.nextTick += m.Cfg.TickNS
	}
	m.ticking = false
}

// deliverRecords samples the series and schedules the next sample.
// Only reached when RecordNS > 0 (nextRecord is pinned at MaxUint64
// otherwise).
func (m *Machine) deliverRecords() {
	m.record()
	for m.nextRecord <= m.now {
		m.nextRecord += m.Cfg.RecordNS
	}
}

// Access issues one memory access to base-page number vpn.
//
// Hot-path invariants (DESIGN.md §7): no allocations on the non-fault
// path, no tracing cost when tracing is disabled, and rare-path work
// (fault injection, tick delivery, series sampling, RSS accounting)
// hidden behind single predictable compares.
func (m *Machine) Access(vpn uint64, write bool) {
	// Policy-free machines (replay, capacity baselines, the raw-speed
	// benchmark) never read tr.Page: TouchFast inlines here and resolves
	// a steady-state access from one block-table or pte load, with no
	// TouchResult built at all; only first writes and demand faults drop
	// into the full TouchLite machinery.
	var tr vm.TouchResult
	pol := m.Pol
	if pol == nil {
		if t, huge, ok := m.cur.TouchFast(vpn, write); ok {
			tr.Tier, tr.Huge = t, huge
		} else {
			tr = m.cur.TouchLite(vpn, write)
		}
	} else if m.fastSmp == nil {
		tr = m.cur.Touch(vpn, write)
	} else if t, huge, ok := m.cur.TouchFast(vpn, write); ok && m.fastSmp.FeedFast(write, m.now) {
		// FastSampled bypass: the access is mapped and steady-state
		// (TouchFast had no side effects) and the sampler provably
		// ignores it (FeedFast consumed it), so OnAccess would have
		// done nothing and returned zero — skip it and the TouchResult.
		tr.Tier, tr.Huge = t, huge
		pol = nil
	} else {
		tr = m.cur.Touch(vpn, write)
	}
	// The space tag disambiguates tenants in the TLB and in policy
	// bookkeeping; it is 0 (a free OR) on single-space machines.
	tvpn := vpn | m.curTag
	cost := m.TLB.Access(tvpn, tr.Huge) + tr.FaultNS
	if write {
		cost += m.storeNS[tr.Tier]
	} else {
		cost += m.loadNS[tr.Tier]
	}
	if tr.Tier == tier.FastTier {
		m.fastHits++
	}
	if m.faults != nil {
		// Stall bursts hit the access itself; window starts are polled
		// here (the only place virtual time advances densely) so each
		// injection window is reported exactly once.
		if extra := m.faults.AccessStallNS(tr.Tier, m.now); extra > 0 {
			cost += extra
			*m.ctrStallNS += extra
		}
		if thr, stl := m.faults.PollWindows(m.now); thr || stl {
			if thr {
				*m.ctrThrottleWins++
				m.Cfg.Trace.Emit(obs.EvFaultWindow, 0, false, 0, tier.ThrottleWindow)
			}
			if stl {
				*m.ctrStallWins++
				m.Cfg.Trace.Emit(obs.EvFaultWindow, 0, false, 0, tier.StallWindow)
			}
		}
	}
	if pol != nil {
		cost += pol.OnAccess(tr, tvpn, write)
	}
	// advance(cost), spelled out: advance does not inline, and this is
	// the one call site hot enough for that to matter.
	m.now += cost
	m.accesses++
	if m.multi {
		m.spaceAcc[m.curID]++
	}
	if m.AccessObserver != nil {
		m.AccessObserver(tvpn, write, m.now)
	}
	if m.now >= m.nextTick {
		m.deliverTicks()
	}
	if m.now >= m.nextRecord {
		m.deliverRecords()
	}
	if tr.Faulted {
		// RSS grows only by demand faults (migrations are net-zero,
		// splits and frees shrink it), so the peak needs re-sampling
		// only here — not on the billions of steady-state accesses.
		if rss := m.RSSBytes(); rss > m.rssPeak {
			m.rssPeak = rss
		}
	}
}

// Op is one element of an AccessBatch: the access Machine.Access(VPN,
// Write) would issue.
type Op struct {
	VPN   uint64
	Write bool
}

// AccessBatch issues the ops in order, exactly as the equivalent
// sequence of Access calls would — same costs, same tick and sample
// delivery points, byte-identical event traces. Workloads use it to
// amortise per-access loop bookkeeping (budget checks, stepper
// indirection) across a buffer of pre-generated accesses; ops whose
// generation depends on machine state mutated mid-batch (frees,
// reservations) must keep using Access.
//
// The inner loop is Access's FastSampled bypass unrolled across the
// batch: one op costs a TouchFast, a FeedFast, a TLB probe and the
// counter updates, with the call into Access (and its rare-path
// branches) paid only by ops that fault, sample, or run under a fault
// plan or observer. The operations and their order are identical to
// Access's per op — the tenant_equiv goldens pin this.
func (m *Machine) AccessBatch(ops []Op) {
	i := 0
	for i < len(ops) {
		if m.fastSmp != nil && m.faults == nil && m.AccessObserver == nil {
			// Batch-invariant fields and the hot counters live in
			// locals, so the loop keeps them in registers across the
			// (non-inlined) TLB probe instead of reloading the Machine
			// struct every op. cur/curTag/multi cannot change mid-batch
			// (scheduling is a batch boundary); the counters are
			// flushed back before anything that can observe them —
			// tick/record delivery and the Access fallback below.
			cur, tag, smp, tl, multi := m.cur, m.curTag, m.fastSmp, m.TLB, m.multi
			ldp, stp := &m.loadNS, &m.storeNS
			now, acc, fh := m.now, m.accesses, m.fastHits
			// One fused boundary guards both tick and record delivery;
			// the delivery block re-checks each exactly like Access.
			stop := m.nextTick
			if m.nextRecord < stop {
				stop = m.nextRecord
			}
			for i < len(ops) {
				vpn, write := ops[i].VPN, ops[i].Write
				t, huge, ok := cur.TouchFast(vpn, write)
				if !ok || !smp.FeedFast(write, now) {
					// Not steady-state or the sampler wants it: replay
					// through Access (TouchFast and a refused FeedFast
					// are both side-effect-free, so the replay is exact).
					break
				}
				cost := tl.Access(vpn|tag, huge)
				lat := ldp
				if write {
					lat = stp
				}
				cost += lat[t]
				if t == tier.FastTier {
					fh++
				}
				now += cost
				acc++
				if multi {
					m.spaceAcc[m.curID]++
				}
				i++
				if now >= stop {
					m.now, m.accesses, m.fastHits = now, acc, fh
					if now >= m.nextTick {
						m.deliverTicks()
					}
					if now >= m.nextRecord {
						m.deliverRecords()
					}
					// A policy tick may advance time (AdvanceBackground);
					// re-sync the register copies with the machine.
					now, acc, fh = m.now, m.accesses, m.fastHits
					stop = m.nextTick
					if m.nextRecord < stop {
						stop = m.nextRecord
					}
				}
			}
			m.now, m.accesses, m.fastHits = now, acc, fh
		}
		if i < len(ops) {
			m.Access(ops[i].VPN, ops[i].Write)
			i++
		}
	}
}

// Reserve exposes address-space reservation to workloads (the current
// space's, on multi-tenant machines).
func (m *Machine) Reserve(bytes uint64) vm.Region { return m.cur.Reserve(bytes) }

// FreeRegion unmaps a region of the current space (short-lived
// allocations, tenant exit). The freeing thread pays a small per-page
// teardown cost; ticks and samples due during a large free are
// delivered inside it, not deferred to the next access.
func (m *Machine) FreeRegion(r vm.Region) {
	m.cur.Free(r)
	m.advance(r.Pages * 120) // munmap + page-table teardown per page
}

func (m *Machine) record() {
	pt := SeriesPoint{
		TimeNS:   m.now,
		RSSBytes: m.RSSBytes(),
		FastUsed: m.Fast.UsedFrames() * tier.BasePageSize,
	}
	if hr, ok := m.Pol.(HotSetReporter); ok && m.Pol != nil {
		pt.HotBytes, pt.WarmBytes, pt.ColdBytes = hr.HotSet()
	}
	dA := m.accesses - m.lastAccesses
	if dA > 0 {
		pt.FastHitWin = float64(m.fastHits-m.lastFastHits) / float64(dA)
	}
	if dt := m.now - m.lastTime; dt > 0 {
		pt.ThroughputWin = float64(dA) / (float64(dt) / 1e9)
	}
	m.lastAccesses, m.lastFastHits, m.lastTime = m.accesses, m.fastHits, m.now
	m.series = append(m.series, pt)
}

// Finish computes the run result. workload names the workload for
// reporting.
func (m *Machine) Finish(workload string) Result {
	polName := "none"
	var daemonNS uint64
	var busy float64
	if m.Pol != nil {
		polName = m.Pol.Name()
		daemonNS = m.Pol.BackgroundNS()
		busy = m.Pol.BusyCores()
	}
	// The mover's copy work is daemon CPU like any other background
	// machinery (zero when the mover is disabled).
	daemonNS += m.moverNS
	vmStats := m.AS.Stats()
	if m.multi {
		// Policies migrate through arbitrary space handles, so the VM
		// counters are spread across the spaces; the result (and the
		// fault counter folding below) reports their sum.
		vmStats = vm.Stats{}
		for _, s := range m.spaces {
			vmStats.Add(s.Stats())
		}
	}
	if m.faults != nil {
		// Fold the VM's transaction outcomes into the fault counter
		// group (Finish runs once; counters stay monotonic).
		g := m.reg.Group("fault")
		*g.Counter("migrate_aborts") = vmStats.MigrateAborts
		*g.Counter("abort_ns") = vmStats.AbortNS
	}
	elapsed := m.now
	if elapsed == 0 {
		elapsed = 1
	}
	// Daemon cores: the larger of the event-driven CPU time amortised
	// over the run and the policy's own busy-core estimate. These are
	// two views of the same consumption — BusyCores is derived from
	// BackgroundNS for tick-driven daemons (MEMTIS) and a constant for
	// spinning ones (HeMem) — so summing them would double-count.
	util := float64(daemonNS) / float64(elapsed)
	if busy > util {
		util = busy
	}
	maxUtil := float64(m.Cfg.Cores) - 1
	if util > maxUtil {
		util = maxUtil
	}
	wall := float64(elapsed)
	if m.Cfg.Threads >= m.Cfg.Cores && util > 0 {
		// App wants every core; daemons steal util cores' worth.
		wall *= float64(m.Cfg.Cores) / (float64(m.Cfg.Cores) - util)
	}
	res := Result{
		Policy:       polName,
		Workload:     workload,
		Accesses:     m.accesses,
		AppNS:        m.now,
		WallNS:       uint64(wall),
		FastHitRatio: ratio(m.fastHits, m.accesses),
		DaemonUtil:   util,
		VM:           vmStats,
		TLB:          m.TLB.Stats(),
		RSSPeak:      m.rssPeak,
		RSSFinal:     m.RSSBytes(),
		Series:       m.series,
		Counters:     m.reg.Snapshot(),
	}
	if m.multi {
		res.Tenants = make([]TenantResult, len(m.spaces))
		for i, s := range m.spaces {
			res.Tenants[i] = TenantResult{
				ID:            i,
				Name:          m.spaceLabels[i],
				Accesses:      m.spaceAcc[i],
				ResidentBytes: s.ResidentUnits() * tier.BasePageSize,
				FastBytes:     s.FastUnits() * tier.BasePageSize,
			}
		}
	}
	if wall > 0 {
		res.Throughput = float64(m.accesses) / (wall / 1e9)
	}
	return res
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// Workload is anything that can drive a machine with an access stream.
type Workload interface {
	Name() string
	// Run issues approximately `accesses` accesses against m, including
	// any initialisation phase the workload models.
	Run(m *Machine, accesses uint64)
}

// Run executes a workload for the given number of accesses on a fresh
// machine and returns the result.
func Run(cfg Config, pol Policy, w Workload, accesses uint64) Result {
	m := NewMachine(cfg, pol)
	w.Run(m, accesses)
	return m.Finish(w.Name())
}
