// Package vm models the virtual-memory side of the simulated machine:
// address spaces, first-touch demand paging with THP-style huge-page
// allocation, page access metadata, transactional page migration
// between tiers, and the huge-page split/collapse operations MEMTIS
// performs in the background. All operations return their cost in
// nanoseconds so the simulator can charge them to the application's
// critical path or to a background daemon, whichever the invoking
// policy mandates.
//
// Migration is a three-phase transaction (reserve destination frame →
// copy at the fault plan's current bandwidth → commit or abort with
// rollback; DESIGN.md §6), so a page is never lost or double-mapped
// even when the machine's fault plan injects transient copy failures;
// Audit verifies the frame-accounting invariants on demand.
package vm

import (
	"fmt"

	"memtis/internal/obs"
	"memtis/internal/tier"
)

// Cost model (nanoseconds), from measured Linux costs on recent Xeons.
//
// The simulator compresses footprints ~128x but virtual runtime ~3000x
// (DESIGN.md §4). Costs paid once per page over the whole run (demand
// faults) are divided by the residual compression factor (~24) so their
// fractional share of runtime stays at paper scale. Migration, split
// and shootdown costs are deliberately NOT scaled: a migration is an
// investment repaid by future accesses to the page, and with the access
// stream compressed the same way, scaling those costs down would make
// critical-path migration cheaper than a single capacity-tier access
// and turn fault-driven promotion into a free streaming cache — the
// opposite of the behaviour the paper measures.
const (
	costScale = 24

	BaseFaultNS   = 1_500 / costScale
	HugeFaultNS   = 8_000 / costScale
	MigrateBaseNS = 3_000
	MigrateHugeNS = 250_000
	ShootdownNS   = 4_000
	SplitFixedNS  = 12_000
	CollapseNS    = 270_000
	ReclaimBaseNS = 800
)

// PageKind distinguishes huge from base pages.
type PageKind uint8

const (
	BasePage PageKind = iota
	HugePage
)

// Page is one mapped translation unit: a 4KB base page or a 2MB huge
// page. The access-metadata fields mirror what MEMTIS packs into the
// kernel's unused struct page slots (§5); baseline policies use the
// generic scratch words instead of growing the struct per policy.
type Page struct {
	VPN  uint64 // base-page number of the first (or only) subpage
	Kind PageKind
	Tier tier.ID
	// Frame is the first physical frame. A huge page owns 512
	// contiguous frames; after BreakHuge-based splits the subpages own
	// their frames individually via the pages created by Split.
	Frame tier.Frame

	// Count is the page's access counter C_i, halved by cooling so that
	// it tracks an exponential moving average of access frequency.
	Count uint64
	// Bin caches the page-access-histogram bin of the page's hotness
	// factor H_i so histogram updates are O(1).
	Bin int
	// SubCount holds per-subpage access counters for huge pages,
	// allocated lazily on the first sample. Nil for base pages.
	SubCount []uint32
	// touched is a 512-bit bitmap of subpages written at least once;
	// untouched (all-zero) subpages are freed when the page is split.
	touched [tier.SubPages / 64]uint64
	nTouch  uint16

	// Scratch words for policy-private state (recency timestamps,
	// history vectors, list epochs, ...). Policies must not assume any
	// value survives a change of ownership of the page. P2 is the
	// MEMTIS policy's cooling-epoch stamp (lazy cooling, DESIGN.md §8);
	// PIdx is an intrusive slot index for policy-owned membership lists.
	P0, P1, P2 uint64
	PIdx       uint32
	PFlags     uint32

	// Owner is the machine-wide index of the address space that mapped
	// the page (0 on single-space machines). Policies tracking pages
	// from several tenants key their per-block state by Owner so two
	// tenants' identical VPNs never alias (DESIGN.md §10).
	Owner uint32

	dead bool
}

// IsHuge reports whether the page is a 2MB huge page.
func (p *Page) IsHuge() bool { return p.Kind == HugePage }

// Units returns the page size in 4KB units (1 or 512).
func (p *Page) Units() uint64 {
	if p.IsHuge() {
		return tier.SubPages
	}
	return 1
}

// Bytes returns the page size in bytes.
func (p *Page) Bytes() uint64 { return p.Units() * tier.BasePageSize }

// Hotness returns the hotness factor H_i (§4.1.2): the raw access count
// for huge pages, and Count * 512 for base pages, compensating for a
// base page being 512x less likely to be sampled.
func (p *Page) Hotness() uint64 {
	if p.IsHuge() {
		return p.Count
	}
	return p.Count * tier.SubPages
}

// SubHotness returns the hotness factor of subpage j, on the same
// compensated scale as base pages.
func (p *Page) SubHotness(j int) uint64 {
	if p.SubCount == nil {
		return 0
	}
	return uint64(p.SubCount[j]) * tier.SubPages
}

// Touched reports whether subpage j has ever been written.
func (p *Page) Touched(j int) bool {
	return p.touched[j/64]&(1<<uint(j%64)) != 0
}

// TouchedCount returns how many subpages have ever been written.
func (p *Page) TouchedCount() int { return int(p.nTouch) }

func (p *Page) markTouched(j int) {
	w, b := j/64, uint(j%64)
	if p.touched[w]&(1<<b) == 0 {
		p.touched[w] |= 1 << b
		p.nTouch++
	}
}

// Placer decides the initial tier of a newly faulted page. Returning
// NoTier lets the address space use its default (fast tier while free,
// then capacity).
type Placer interface {
	PlaceNew(huge bool, vpn uint64) tier.ID
}

// Stats aggregates the VM-level event counters.
type Stats struct {
	Faults          uint64
	FaultNS         uint64
	Migrations4K    uint64
	MigrationsHuge  uint64
	MigratedBytes   uint64
	Promotions      uint64 // migrations into the fast tier (pages)
	Demotions       uint64 // migrations out of the fast tier (pages)
	MigrateAborts   uint64 // transactions rolled back by injected copy faults
	AbortNS         uint64 // cost charged for the wasted copies of aborts
	Splits          uint64
	Collapses       uint64
	Shootdowns      uint64
	ReclaimedFrames uint64 // zero subpages freed by splits
}

// Add accumulates o into s. Multi-tenant machines aggregate their
// per-space stats with it (policies migrate pages through whichever
// space handle they hold, so counters spread across spaces).
func (s *Stats) Add(o Stats) {
	s.Faults += o.Faults
	s.FaultNS += o.FaultNS
	s.Migrations4K += o.Migrations4K
	s.MigrationsHuge += o.MigrationsHuge
	s.MigratedBytes += o.MigratedBytes
	s.Promotions += o.Promotions
	s.Demotions += o.Demotions
	s.MigrateAborts += o.MigrateAborts
	s.AbortNS += o.AbortNS
	s.Splits += o.Splits
	s.Collapses += o.Collapses
	s.Shootdowns += o.Shootdowns
	s.ReclaimedFrames += o.ReclaimedFrames
}

// AddressSpace is one process's virtual memory image over a tiered
// machine. Virtual addresses are dense base-page numbers handed out by
// a bump allocator; the page table is a flat slice for O(1) translation.
type AddressSpace struct {
	// Fast and Cap alias the first and last tier of the chain — the
	// endpoints every two-tier policy knows by name. On deeper chains
	// the full ordering lives in tiers; use TierAt/TierCount.
	Fast *tier.Tier
	Cap  *tier.Tier

	// tiers is the full chain, fastest first. Always non-empty;
	// tiers[0] == Fast and tiers[len-1] == Cap.
	tiers []*tier.Tier
	// hopBase/hopHuge are the per-hop migration copy costs
	// (len(tiers)-1 entries); nil means the historical flat
	// MigrateBaseNS/MigrateHugeNS charge per hop.
	hopBase []uint64
	hopHuge []uint64

	table   []*Page
	hugeOK  []bool // per 2MB block: fully covered by one reservation
	nextVPN uint64
	nPages  int // live Page objects

	// THP controls whether 2MB-aligned, >=2MB reservations fault in as
	// huge pages (Linux THP=always) or everything uses base pages.
	THP bool

	placer Placer

	// OnUnmap, when set, is invoked for every live page released by
	// Free so policies can drop the page from their bookkeeping.
	OnUnmap func(p *Page)

	// Trace receives fault/migration/split/collapse events. Set by the
	// machine when tracing is enabled; nil otherwise (emits are no-ops
	// on nil, so the paths below need no guards).
	Trace *obs.Tracer

	// Faults is the machine's fault-injection plan; migration
	// transactions consult it for copy failures and bandwidth
	// throttling. Nil (the default) disables fault injection — every
	// FaultPlan method is nil-safe.
	Faults *tier.FaultPlan
	// Clock reads the machine's virtual time; the fault plan's
	// throttle windows are functions of it. Nil reads as zero.
	Clock func() uint64

	// Tenant is this space's machine-wide index; pages mapped here
	// carry it in Page.Owner. Zero for single-space machines.
	Tenant uint32

	// Owners, when non-nil, maps a Page.Owner index to its address
	// space. Policies migrate pages of any space through whichever
	// space handle they hold (MigrateTx never reads the page table),
	// so per-space unit accounting must follow the page's owner, not
	// the receiver. The machine installs the same slice on every space
	// it hosts; nil (the single-space default) routes to the receiver.
	Owners []*AddressSpace

	// MigrateVeto, when set, may deny a tier-changing operation before
	// any frame is reserved or cost charged. It is consulted only for
	// moves that change fast-tier residency (dst or src is tier 0 —
	// on a two-tier machine, every migration); hops between lower
	// tiers are QoS-neutral. It receives a page of the affected range
	// (for owner identity), the destination tier, and the number of
	// 4KB units that would change tier. A false return
	// turns MigrateTx into MigrateDenied and makes Collapse fail
	// without side effects. This is the QoS arbitration hook: floors
	// and weighted shares (DESIGN.md §10) are enforced here, below
	// every policy, so no promotion or demotion path can bypass them.
	MigrateVeto func(p *Page, dst tier.ID, units uint64) bool

	// residentUnits / fastUnits track this space's mapped 4KB units
	// (total, and the subset on the fast tier) incrementally, so
	// per-tenant gauges and floor arbitration are O(1) reads even
	// when many spaces share the tiers.
	residentUnits uint64
	fastUnits     uint64
	// fastFreed counts fast-tier units this space released through
	// non-migration paths — Free and split bloat reclaim. Demotions
	// below a tenant's floor are vetoed, so these are the only
	// legitimate ways a warmed tenant's fast footprint can shrink
	// below its floor; the QoS arbiter credits them when checking for
	// floor violations.
	fastFreed uint64

	stats Stats
}

// NewAddressSpace creates an address space over the two tiers.
func NewAddressSpace(fast, cap *tier.Tier, thp bool) *AddressSpace {
	return &AddressSpace{Fast: fast, Cap: cap, tiers: []*tier.Tier{fast, cap}, THP: thp}
}

// NewAddressSpaceTiers creates an address space over an N-deep tier
// chain (fastest first; at least two tiers). topo, when non-nil,
// supplies the per-hop migration cost model; nil keeps the historical
// flat per-hop charge.
func NewAddressSpaceTiers(tiers []*tier.Tier, topo *tier.Topology, thp bool) *AddressSpace {
	if len(tiers) < 2 {
		panic("vm: address space needs at least two tiers")
	}
	as := &AddressSpace{
		Fast:  tiers[0],
		Cap:   tiers[len(tiers)-1],
		tiers: tiers,
		THP:   thp,
	}
	if topo != nil {
		if topo.Depth() != len(tiers) {
			panic("vm: topology depth does not match tier chain")
		}
		as.hopBase, as.hopHuge = topo.HopCosts()
	}
	return as
}

// TierCount returns the depth of the space's tier chain.
func (as *AddressSpace) TierCount() int { return len(as.tiers) }

// TierAt returns the tier at chain position id (0 = fastest).
func (as *AddressSpace) TierAt(id tier.ID) *tier.Tier { return as.tiers[id] }

// LastTier returns the ID of the deepest tier of the chain.
func (as *AddressSpace) LastTier() tier.ID { return tier.ID(len(as.tiers) - 1) }

// HopCostNS returns the migration copy cost of moving one page of the
// given size from src to dst: the sum of the per-hop costs of every
// hop crossed (adjacent tiers cross one). It is the unthrottled cost;
// MigrateTx applies the fault plan's window factor on top.
func (as *AddressSpace) HopCostNS(src, dst tier.ID, huge bool) uint64 {
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	var ns uint64
	for h := lo; h < hi; h++ {
		switch {
		case as.hopBase == nil && huge:
			ns += MigrateHugeNS
		case as.hopBase == nil:
			ns += MigrateBaseNS
		case huge:
			ns += as.hopHuge[h]
		default:
			ns += as.hopBase[h]
		}
	}
	return ns
}

// SetPlacer installs the policy hook for initial page placement.
func (as *AddressSpace) SetPlacer(p Placer) { as.placer = p }

// Stats returns a snapshot of the VM counters.
func (as *AddressSpace) Stats() Stats { return as.stats }

// ResidentUnits returns the space's mapped 4KB units.
func (as *AddressSpace) ResidentUnits() uint64 { return as.residentUnits }

// FastUnits returns the space's mapped 4KB units on the fast tier.
func (as *AddressSpace) FastUnits() uint64 { return as.fastUnits }

// FastFreedUnits returns the cumulative fast-tier units released by
// Free and split reclaim (never by migration).
func (as *AddressSpace) FastFreedUnits() uint64 { return as.fastFreed }

// ReservedPages returns the bump allocator's high-water mark in base
// pages; Region{0, ReservedPages()} covers every possible mapping of
// the space (tenant exit frees exactly that region).
func (as *AddressSpace) ReservedPages() uint64 { return as.nextVPN }

// ownerOf resolves the space whose resident/fast unit counters a
// mutation of p must adjust.
func (as *AddressSpace) ownerOf(p *Page) *AddressSpace {
	if as.Owners == nil {
		return as
	}
	return as.Owners[p.Owner]
}

// Region is a reserved virtual address range.
type Region struct {
	BaseVPN uint64
	Pages   uint64 // length in base pages
}

// Bytes returns the region length in bytes.
func (r Region) Bytes() uint64 { return r.Pages * tier.BasePageSize }

// Reserve allocates a 2MB-aligned virtual range of at least bytes. No
// physical memory is committed until first touch.
func (as *AddressSpace) Reserve(bytes uint64) Region {
	pages := (bytes + tier.BasePageSize - 1) / tier.BasePageSize
	// Align the base so THP regions can map huge pages.
	if rem := as.nextVPN % tier.SubPages; rem != 0 {
		as.nextVPN += tier.SubPages - rem
	}
	r := Region{BaseVPN: as.nextVPN, Pages: pages}
	as.nextVPN += pages
	need := int(as.nextVPN)
	if need > len(as.table) {
		nt := make([]*Page, need+need/2+tier.SubPages)
		copy(nt, as.table)
		as.table = nt
	}
	if nb := (need + tier.SubPages - 1) / tier.SubPages; nb > len(as.hugeOK) {
		nh := make([]bool, nb+nb/2+1)
		copy(nh, as.hugeOK)
		as.hugeOK = nh
	}
	// Only 2MB blocks fully covered by this reservation may fault in
	// as huge pages (the region base is 2MB-aligned).
	for b := r.BaseVPN / tier.SubPages; (b+1)*tier.SubPages <= r.BaseVPN+r.Pages; b++ {
		as.hugeOK[b] = true
	}
	return r
}

// Lookup returns the page mapping vpn, or nil when unmapped.
func (as *AddressSpace) Lookup(vpn uint64) *Page {
	if vpn >= uint64(len(as.table)) {
		return nil
	}
	return as.table[vpn]
}

// tierOf returns the tier object for id.
func (as *AddressSpace) tierOf(id tier.ID) *tier.Tier {
	return as.tiers[id]
}

// TouchResult describes the outcome of one memory access.
type TouchResult struct {
	Page    *Page
	SubIdx  int // subpage index within a huge page (0 for base pages)
	Tier    tier.ID
	FaultNS uint64 // demand-paging cost incurred on this access
	Faulted bool
}

// hugeEligible reports whether vpn can fault in as a huge page: the
// whole 2MB-aligned block around it must be reserved and unmapped.
func (as *AddressSpace) hugeEligible(vpn uint64) bool {
	base := vpn - vpn%tier.SubPages
	if base+tier.SubPages > uint64(len(as.table)) || !as.hugeOK[base/tier.SubPages] {
		return false
	}
	for i := base; i < base+tier.SubPages; i++ {
		if as.table[i] != nil {
			return false
		}
	}
	return true
}

// placeFor resolves the initial tier for a faulting page, falling back
// to the first tier of the chain with room (fast while free, then down
// the chain, the deepest tier as last resort), and degrading huge
// allocations that the chosen tier cannot satisfy.
func (as *AddressSpace) placeFor(huge bool, vpn uint64) tier.ID {
	want := tier.NoTier
	if as.placer != nil {
		want = as.placer.PlaceNew(huge, vpn)
	}
	if want == tier.NoTier {
		for id, t := range as.tiers[:len(as.tiers)-1] {
			if huge && t.HasHugeFrame() {
				return tier.ID(id)
			}
			if !huge && t.FreeFrames() > 0 {
				return tier.ID(id)
			}
		}
		return as.LastTier()
	}
	return want
}

// Touch performs one access to vpn: demand-faults the page on first
// touch (THP maps the surrounding 2MB block as a huge page when
// eligible) and returns the mapping plus any fault cost. Write touches
// mark the subpage as non-zero for later bloat reclaim.
//
// The already-mapped case is the simulator's hot path: one bounds
// check, one table load, no calls (markTouched stays branch-only once
// the subpage has been written). The fault path lives in touchFault so
// this body stays small.
func (as *AddressSpace) Touch(vpn uint64, write bool) TouchResult {
	if vpn < uint64(len(as.table)) {
		if pg := as.table[vpn]; pg != nil {
			res := TouchResult{Page: pg, Tier: pg.Tier}
			if pg.Kind == HugePage {
				res.SubIdx = int(vpn - pg.VPN)
			}
			if write {
				pg.markTouched(res.SubIdx)
			}
			return res
		}
	}
	return as.touchFault(vpn, write)
}

// touchFault is Touch's slow path: first touch of a reserved vpn (or a
// touch of an unreserved one, which is a workload bug and panics).
func (as *AddressSpace) touchFault(vpn uint64, write bool) TouchResult {
	if vpn >= as.nextVPN {
		panic(fmt.Sprintf("vm: touch of unreserved vpn %d", vpn))
	}
	var res TouchResult
	res.Faulted = true
	as.stats.Faults++
	var pg *Page
	if as.THP && as.hugeEligible(vpn) {
		pg = as.mapHuge(vpn - vpn%tier.SubPages)
		res.FaultNS = HugeFaultNS
	} else {
		pg = as.mapBase(vpn)
		res.FaultNS = BaseFaultNS
	}
	as.stats.FaultNS += res.FaultNS
	as.Trace.Emit(obs.EvDemandFault, pg.VPN, pg.IsHuge(), pg.Bytes(), res.FaultNS)
	res.Page = pg
	res.Tier = pg.Tier
	if pg.IsHuge() {
		res.SubIdx = int(vpn - pg.VPN)
	}
	if write {
		pg.markTouched(res.SubIdx)
	}
	return res
}

func (as *AddressSpace) mapHuge(baseVPN uint64) *Page {
	id := as.placeFor(true, baseVPN)
	t := as.tierOf(id)
	f, err := t.AllocHuge()
	if err != nil {
		// Fall back to the other tiers in chain order, then to base pages.
		id, f, err = as.allocFallback(id, true)
		if err != nil {
			return as.mapBase(baseVPN)
		}
	}
	pg := &Page{VPN: baseVPN, Kind: HugePage, Tier: id, Frame: f, Owner: as.Tenant}
	for i := uint64(0); i < tier.SubPages; i++ {
		as.table[baseVPN+i] = pg
	}
	as.nPages++
	as.residentUnits += tier.SubPages
	if id == tier.FastTier {
		as.fastUnits += tier.SubPages
	}
	return pg
}

func (as *AddressSpace) mapBase(vpn uint64) *Page {
	id := as.placeFor(false, vpn)
	t := as.tierOf(id)
	f, err := t.AllocBase()
	if err != nil {
		id, f, err = as.allocFallback(id, false)
		if err != nil {
			panic("vm: all tiers out of memory")
		}
	}
	pg := &Page{VPN: vpn, Kind: BasePage, Tier: id, Frame: f, Owner: as.Tenant}
	as.table[vpn] = pg
	as.nPages++
	as.residentUnits++
	if id == tier.FastTier {
		as.fastUnits++
	}
	return pg
}

// allocFallback tries every tier other than failed in chain order
// (fastest first) until one satisfies the allocation.
func (as *AddressSpace) allocFallback(failed tier.ID, huge bool) (tier.ID, tier.Frame, error) {
	for id := range as.tiers {
		if tier.ID(id) == failed {
			continue
		}
		var f tier.Frame
		var err error
		if huge {
			f, err = as.tiers[id].AllocHuge()
		} else {
			f, err = as.tiers[id].AllocBase()
		}
		if err == nil {
			return tier.ID(id), f, nil
		}
	}
	return failed, 0, tier.ErrOutOfMemory
}

// CanMigrate reports whether dst currently has room for the page.
func (as *AddressSpace) CanMigrate(p *Page, dst tier.ID) bool {
	if p.Tier == dst || p.dead {
		return false
	}
	t := as.tierOf(dst)
	if p.IsHuge() {
		return t.HasHugeFrame()
	}
	return t.FreeFrames() > 0
}

// MigrateStatus classifies the outcome of one migration transaction.
type MigrateStatus uint8

const (
	// MigrateOK: the transaction committed; the page lives on dst.
	MigrateOK MigrateStatus = iota
	// MigrateNoSpace: the reserve phase found no room on dst; nothing
	// was charged and the page stays put. This is an admission
	// failure, not a fault — retrying without freeing memory is
	// pointless.
	MigrateNoSpace
	// MigrateAborted: the copy phase faulted (injected by the fault
	// plan); the reservation was rolled back, the page keeps its
	// source mapping, and the returned ns is the wasted copy cost.
	// Transient — the caller may retry within the plan's retry bound.
	MigrateAborted
	// MigrateDenied: the space's MigrateVeto (QoS arbitration) refused
	// the move before anything was reserved or charged. Like no-space
	// this is an admission outcome, not a fault: retrying immediately
	// is pointless, the arbiter's state must change first.
	MigrateDenied
)

// String names the status for diagnostics.
func (s MigrateStatus) String() string {
	switch s {
	case MigrateOK:
		return "ok"
	case MigrateNoSpace:
		return "no-space"
	case MigrateAborted:
		return "aborted"
	case MigrateDenied:
		return "denied"
	default:
		return "unknown"
	}
}

// MigrateTx moves the page to dst with a three-phase transaction:
//
//	reserve  allocate the destination frame (fails: MigrateNoSpace,
//	         nothing charged);
//	copy     charge the copy at the fault plan's current bandwidth
//	         factor, then let the plan fail it (fails: free the
//	         reservation, keep the source mapping untouched, return
//	         MigrateAborted with the wasted cost);
//	commit   remap the page to the new frame, free the source frame,
//	         and broadcast the TLB shootdown.
//
// The source mapping is only touched in commit, so an abort can never
// lose the page or leave it double-mapped — Audit checks exactly that.
func (as *AddressSpace) MigrateTx(p *Page, dst tier.ID) (ns uint64, st MigrateStatus) {
	if p.dead || p.Tier == dst {
		return 0, MigrateNoSpace
	}
	if as.MigrateVeto != nil && (dst == tier.FastTier || p.Tier == tier.FastTier) &&
		!as.MigrateVeto(p, dst, p.Units()) {
		return 0, MigrateDenied
	}
	src := as.tierOf(p.Tier)
	dt := as.tierOf(dst)

	// Reserve.
	var nf tier.Frame
	var err error
	copyNS := as.HopCostNS(p.Tier, dst, p.IsHuge())
	if p.IsHuge() {
		nf, err = dt.AllocHuge()
	} else {
		nf, err = dt.AllocBase()
	}
	if err != nil {
		return 0, MigrateNoSpace
	}

	// Copy, at the (possibly throttled) migration bandwidth.
	if as.Faults != nil {
		var now uint64
		if as.Clock != nil {
			now = as.Clock()
		}
		copyNS *= as.Faults.CopyCostFactor(now)
		if as.Faults.FailCopy() {
			// Abort: roll back the reservation. The page was never
			// remapped, so the source mapping is still authoritative.
			if p.IsHuge() {
				dt.FreeHuge(nf)
			} else {
				dt.FreeBase(nf)
			}
			as.stats.MigrateAborts++
			as.stats.AbortNS += copyNS
			as.Trace.Emit(obs.EvMigrateAbort, p.VPN, p.IsHuge(), p.Bytes(), copyNS)
			return copyNS, MigrateAborted
		}
	}

	// Commit.
	if p.IsHuge() {
		src.FreeHuge(p.Frame)
		as.stats.MigrationsHuge++
	} else {
		src.FreeBase(p.Frame)
		as.stats.Migrations4K++
	}
	p.Frame = nf
	ns = copyNS + ShootdownNS
	ow := as.ownerOf(p)
	if dst < p.Tier {
		as.stats.Promotions += p.Units()
		as.Trace.Emit(obs.EvPromotion, p.VPN, p.IsHuge(), p.Bytes(), ns)
	} else {
		as.stats.Demotions += p.Units()
		as.Trace.Emit(obs.EvDemotion, p.VPN, p.IsHuge(), p.Bytes(), ns)
	}
	// Fast-tier residency only changes when the move crosses the top
	// boundary; hops between lower tiers leave fastUnits untouched.
	if dst == tier.FastTier {
		ow.fastUnits += p.Units()
	} else if p.Tier == tier.FastTier {
		ow.fastUnits -= p.Units()
	}
	as.stats.Shootdowns++
	as.Trace.Emit(obs.EvShootdown, p.VPN, p.IsHuge(), 0, 0)
	as.stats.MigratedBytes += p.Bytes()
	p.Tier = dst
	return ns, MigrateOK
}

// Migrate is the boolean entry point over MigrateTx. ok is false for
// both no-space and aborted outcomes; note that an aborted transaction
// still returns its wasted copy cost, so callers must charge ns even
// when ok is false (with faults disabled, ns is 0 whenever ok is
// false, matching the historical contract).
func (as *AddressSpace) Migrate(p *Page, dst tier.ID) (ns uint64, ok bool) {
	ns, st := as.MigrateTx(p, dst)
	return ns, st == MigrateOK
}

// SubDest selects the destination tier for subpage j of a huge page
// being split. Returning NoTier keeps the subpage in the source tier.
type SubDest func(j int) tier.ID

// Split breaks a huge page into base pages (§4.3.3). Never-written
// subpages are unmapped and freed to reclaim bloat. dest picks the tier
// of each surviving subpage; subpages staying in the source tier keep
// their physical frames (no copy). Returns the new base pages and the
// total cost. Per-subpage access counts carry over; the huge page's own
// counter is distributed by subpage share so the histogram stays
// consistent under the caller's re-accounting.
func (as *AddressSpace) Split(p *Page, dest SubDest) (subs []*Page, ns uint64) {
	if !p.IsHuge() || p.dead {
		panic("vm: split of non-huge or dead page")
	}
	src := as.tierOf(p.Tier)
	src.BreakHuge(p.Frame)
	ns = SplitFixedNS + ShootdownNS
	as.stats.Splits++
	as.stats.Shootdowns++
	as.Trace.Emit(obs.EvShootdown, p.VPN, true, 0, 0)
	reclaimedBefore := as.stats.ReclaimedFrames
	subs = make([]*Page, 0, tier.SubPages)
	for j := 0; j < tier.SubPages; j++ {
		vpn := p.VPN + uint64(j)
		if !p.Touched(j) {
			// All-zero subpage: unmap and free (memory bloat reclaim).
			src.FreeBase(p.Frame + tier.Frame(j))
			as.table[vpn] = nil
			as.stats.ReclaimedFrames++
			as.residentUnits--
			if p.Tier == tier.FastTier {
				as.fastUnits--
				as.fastFreed++
			}
			ns += ReclaimBaseNS
			continue
		}
		var cnt uint64
		if p.SubCount != nil {
			cnt = uint64(p.SubCount[j])
		}
		np := &Page{VPN: vpn, Kind: BasePage, Tier: p.Tier, Frame: p.Frame + tier.Frame(j), Count: cnt, Owner: p.Owner}
		np.markTouched(0)
		as.table[vpn] = np
		as.nPages++
		subs = append(subs, np)
		if d := dest(j); d != tier.NoTier && d != np.Tier {
			// An aborted subpage move still charges its wasted copy;
			// the subpage simply stays in the source tier.
			mns, _ := as.Migrate(np, d)
			ns += mns
		}
	}
	p.dead = true
	as.nPages--
	as.Trace.Emit(obs.EvSplit, p.VPN, true, p.Bytes(), as.stats.ReclaimedFrames-reclaimedBefore)
	return subs, ns
}

// Collapse coalesces 512 contiguous base pages back into one huge page
// in tier dst. All 512 VPNs starting at baseVPN must be mapped by base
// pages. Returns the new huge page and the cost; ok is false when dst
// cannot provide a huge frame or the range is not collapsible.
func (as *AddressSpace) Collapse(baseVPN uint64, dst tier.ID) (hp *Page, ns uint64, ok bool) {
	if baseVPN%tier.SubPages != 0 {
		return nil, 0, false
	}
	var olds [tier.SubPages]*Page
	var fastOlds uint64
	for j := 0; j < tier.SubPages; j++ {
		pg := as.Lookup(baseVPN + uint64(j))
		if pg == nil || pg.IsHuge() {
			return nil, 0, false
		}
		if pg.Tier == tier.FastTier {
			fastOlds++
		}
		olds[j] = pg
	}
	// A collapse changes the tier of every subpage not already on dst,
	// so it must pass the same QoS arbitration as an explicit
	// migration of the net unit delta (a collapse into the capacity
	// tier is a demotion of fastOlds units and must not dodge a
	// tenant's fast-tier floor).
	if as.MigrateVeto != nil {
		switch {
		case dst == tier.FastTier && fastOlds < tier.SubPages:
			if !as.MigrateVeto(olds[0], dst, tier.SubPages-fastOlds) {
				return nil, 0, false
			}
		case dst != tier.FastTier && fastOlds > 0:
			if !as.MigrateVeto(olds[0], dst, fastOlds) {
				return nil, 0, false
			}
		}
	}
	t := as.tierOf(dst)
	nf, err := t.AllocHuge()
	if err != nil {
		return nil, 0, false
	}
	hp = &Page{VPN: baseVPN, Kind: HugePage, Tier: dst, Frame: nf, Owner: olds[0].Owner}
	hp.SubCount = make([]uint32, tier.SubPages)
	for j := 0; j < tier.SubPages; j++ {
		old := olds[j]
		hp.SubCount[j] = uint32(old.Count)
		hp.Count += old.Count
		hp.markTouched(j)
		as.tierOf(old.Tier).FreeBase(old.Frame)
		old.dead = true
		as.table[baseVPN+uint64(j)] = hp
		as.nPages--
	}
	as.nPages++
	as.fastUnits -= fastOlds
	if dst == tier.FastTier {
		as.fastUnits += tier.SubPages
	}
	as.stats.Collapses++
	as.stats.Shootdowns++
	as.Trace.Emit(obs.EvCollapse, baseVPN, true, hp.Bytes(), 0)
	as.Trace.Emit(obs.EvShootdown, baseVPN, true, 0, 0)
	return hp, CollapseNS + ShootdownNS, true
}

// Free unmaps every mapped page of the region, returning frames to
// their tiers. Used by workloads with short-lived allocations.
func (as *AddressSpace) Free(r Region) {
	for vpn := r.BaseVPN; vpn < r.BaseVPN+r.Pages; vpn++ {
		pg := as.table[vpn]
		if pg == nil || pg.dead {
			as.table[vpn] = nil
			continue
		}
		if as.OnUnmap != nil {
			as.OnUnmap(pg)
		}
		t := as.tierOf(pg.Tier)
		if pg.IsHuge() {
			t.FreeHuge(pg.Frame)
			for i := uint64(0); i < tier.SubPages; i++ {
				as.table[pg.VPN+i] = nil
			}
			vpn = pg.VPN + tier.SubPages - 1
		} else {
			t.FreeBase(pg.Frame)
			as.table[vpn] = nil
		}
		as.residentUnits -= pg.Units()
		if pg.Tier == tier.FastTier {
			as.fastUnits -= pg.Units()
			as.fastFreed += pg.Units()
		}
		pg.dead = true
		as.nPages--
	}
}

// Dead reports whether the page has been split, collapsed or freed.
func (p *Page) Dead() bool { return p.dead }

// RSSFrames returns the resident set size in 4KB frames.
func (as *AddressSpace) RSSFrames() uint64 {
	var n uint64
	for _, t := range as.tiers {
		n += t.UsedFrames()
	}
	return n
}

// RSSBytes returns the resident set size in bytes.
func (as *AddressSpace) RSSBytes() uint64 { return as.RSSFrames() * tier.BasePageSize }

// LivePages returns the number of live Page objects (huge counts as 1).
func (as *AddressSpace) LivePages() int { return as.nPages }

// ForEachPage invokes fn for every live page exactly once. The callback
// must not unmap pages; it may migrate, split or update metadata of the
// visited page (split replaces the visited page, which is safe because
// iteration works over a snapshot of distinct pages).
//
// Iteration order is deterministic: pages are visited in strictly
// ascending VPN order, independent of insertion, migration or
// split/collapse history. Policies rely on this guarantee for
// byte-identical traces across runs and workers; it is pinned by a
// regression test (TestForEachPageDeterministicOrder) and must not be
// weakened by switching the page table to an unordered container.
func (as *AddressSpace) ForEachPage(fn func(p *Page)) {
	snap := make([]*Page, 0, as.nPages)
	var last *Page
	for _, pg := range as.table {
		if pg != nil && pg != last && !pg.dead {
			snap = append(snap, pg)
			last = pg
		}
	}
	for _, pg := range snap {
		if !pg.dead {
			fn(pg)
		}
	}
}

// ForEachPageFrom visits up to max live pages in ascending-VPN order
// starting at the cursor VPN, wrapping past the end of the address
// space back to 0, and returns the cursor to resume from (the VPN just
// past the last slot examined). Passing the returned cursor back in
// eventually visits every live page: a full cycle of calls covers the
// address space once. A cursor that lands mid-huge-page (the layout
// changed between calls) visits that page once and skips past it.
//
// Unlike ForEachPage this takes no snapshot — it is the bounded,
// incremental walker for background sweeps (cooling convergence, the
// §8 hybrid scan). The callback may migrate or update metadata of the
// visited page but must not unmap, split or collapse pages.
func (as *AddressSpace) ForEachPageFrom(cursor uint64, max int, fn func(p *Page)) uint64 {
	n := uint64(len(as.table))
	if n == 0 || max <= 0 {
		return 0
	}
	if cursor >= n {
		cursor = 0
	}
	visited := 0
	// scanned bounds the walk to one full table cycle so a sparse or
	// empty address space terminates without visiting max pages.
	for scanned := uint64(0); scanned < n && visited < max; {
		pg := as.table[cursor]
		step := uint64(1)
		if pg != nil && !pg.dead {
			fn(pg)
			visited++
			step = pg.VPN + pg.Units() - cursor
		}
		scanned += step
		cursor += step
		if cursor >= n {
			cursor = 0
		}
	}
	return cursor
}

// ForEachPageSlice visits up to max live pages in ascending-VPN order
// starting at cursor, without wrapping: it returns the cursor to
// resume from and done=true once the end of the table is reached.
// Machine-level walkers compose it across several address spaces into
// one wrapping cursor (a space index in the high bits, this VPN cursor
// in the low bits) so a background sweep covers every tenant's pages
// exactly once per cycle. Same callback contract as ForEachPageFrom.
func (as *AddressSpace) ForEachPageSlice(cursor uint64, max int, fn func(p *Page)) (next uint64, done bool) {
	n := uint64(len(as.table))
	if cursor >= n || max <= 0 {
		return 0, true
	}
	visited := 0
	for cursor < n && visited < max {
		pg := as.table[cursor]
		step := uint64(1)
		if pg != nil && !pg.dead {
			fn(pg)
			visited++
			step = pg.VPN + pg.Units() - cursor
		}
		cursor += step
	}
	return cursor, cursor >= n
}

// EnsureSubCount lazily allocates the per-subpage counters of a huge
// page (done on first PEBS sample touching it).
func (p *Page) EnsureSubCount() {
	if p.IsHuge() && p.SubCount == nil {
		p.SubCount = make([]uint32, tier.SubPages)
	}
}

// Audit verifies the address space's frame-accounting invariants — the
// properties a migration abort, split or collapse must never break:
//
//   - no dead page is reachable through the page table;
//   - every live page maps exactly its own VPN range (huge pages cover
//     all 512 slots, base pages exactly one);
//   - no physical frame backs two pages (no double-mapping);
//   - per-tier allocated-frame counts equal the sum of live page sizes
//     (no frame lost by an aborted transaction, none leaked).
//
// It is O(address space) with a map allocation per call: a test-time
// invariant checker (the fault conformance suite runs it), not a
// production path.
func (as *AddressSpace) Audit() error {
	owner := make(map[tier.PhysAddr]uint64)
	units, err := as.auditMapped(owner)
	if err != nil {
		return err
	}
	for id, t := range as.tiers {
		if got := t.UsedFrames(); got != units[id] {
			return fmt.Errorf("vm: %s tier has %d frames allocated but %d mapped (lost or leaked)",
				tier.ID(id), got, units[id])
		}
	}
	return nil
}

// auditMapped walks one space's page table, checking the per-space
// invariants (no dead or out-of-range mappings, every page owned by
// this space, no frame double-mapped — including against frames the
// shared owner map already holds from sibling spaces — and the
// incremental resident/fast unit counters exact) and returns the
// mapped units per tier (indexed by chain position).
func (as *AddressSpace) auditMapped(owner map[tier.PhysAddr]uint64) ([]uint64, error) {
	units := make([]uint64, len(as.tiers))
	mapped := make(map[*Page]uint64)
	for vpn, pg := range as.table {
		if pg == nil {
			continue
		}
		if pg.dead {
			return nil, fmt.Errorf("vm: dead page %d still mapped at vpn %d", pg.VPN, vpn)
		}
		off := uint64(vpn) - pg.VPN
		if off >= pg.Units() {
			return nil, fmt.Errorf("vm: page %d (units %d) mapped out of range at vpn %d",
				pg.VPN, pg.Units(), vpn)
		}
		if pg.Owner != as.Tenant {
			return nil, fmt.Errorf("vm: page %d owned by space %d but mapped in space %d",
				pg.VPN, pg.Owner, as.Tenant)
		}
		if mapped[pg] == 0 {
			// First sighting: account frames and check uniqueness.
			if pg.Tier < 0 || int(pg.Tier) >= len(as.tiers) {
				return nil, fmt.Errorf("vm: page %d on tier %v", pg.VPN, pg.Tier)
			}
			units[pg.Tier] += pg.Units()
			for u := uint64(0); u < pg.Units(); u++ {
				pa := tier.PhysAddr{Tier: pg.Tier, Frame: pg.Frame + tier.Frame(u)}
				if prev, dup := owner[pa]; dup {
					return nil, fmt.Errorf("vm: frame %v double-mapped by pages %d and %d",
						pa, prev, pg.VPN)
				}
				owner[pa] = pg.VPN
			}
		}
		mapped[pg]++
	}
	for pg, n := range mapped {
		if n != pg.Units() {
			return nil, fmt.Errorf("vm: page %d maps %d of its %d slots", pg.VPN, n, pg.Units())
		}
	}
	var total uint64
	for _, u := range units {
		total += u
	}
	if total != as.residentUnits {
		return nil, fmt.Errorf("vm: space %d counts %d resident units but %d are mapped",
			as.Tenant, as.residentUnits, total)
	}
	if units[tier.FastTier] != as.fastUnits {
		return nil, fmt.Errorf("vm: space %d counts %d fast units but %d are mapped fast",
			as.Tenant, as.fastUnits, units[tier.FastTier])
	}
	return units, nil
}

// AuditShared verifies the frame-accounting invariants of several
// address spaces sharing one tier pair: each space individually clean,
// no frame mapped by two spaces, and the tiers' allocated-frame counts
// equal to the sum of all spaces' live mappings. This is the
// multi-tenant Audit over the historical two-tier machine; deeper
// chains use AuditSharedTiers.
func AuditShared(fast, cap *tier.Tier, spaces []*AddressSpace) error {
	return AuditSharedTiers([]*tier.Tier{fast, cap}, spaces)
}

// AuditSharedTiers is AuditShared over an N-deep tier chain: each
// space individually clean, no frame mapped by two spaces, and every
// tier's allocated-frame count equal to the sum of all spaces' live
// mappings on it — no page lost across any hop.
func AuditSharedTiers(tiers []*tier.Tier, spaces []*AddressSpace) error {
	owner := make(map[tier.PhysAddr]uint64)
	units := make([]uint64, len(tiers))
	for _, as := range spaces {
		us, err := as.auditMapped(owner)
		if err != nil {
			return fmt.Errorf("space %d: %w", as.Tenant, err)
		}
		if len(us) != len(tiers) {
			return fmt.Errorf("space %d: %d tiers in chain, audit expects %d", as.Tenant, len(us), len(tiers))
		}
		for i, u := range us {
			units[i] += u
		}
	}
	for id, t := range tiers {
		if got := t.UsedFrames(); got != units[id] {
			return fmt.Errorf("vm: %s tier has %d frames allocated but %d mapped across %d spaces",
				tier.ID(id), got, units[id], len(spaces))
		}
	}
	return nil
}
