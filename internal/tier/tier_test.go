package tier

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newTestTier(t *testing.T, blocks int) *Tier {
	t.Helper()
	tt, err := New(Config{Name: "t", Kind: DRAM, Bytes: uint64(blocks) * HugePageSize})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tt
}

func TestNewRejectsTinyTier(t *testing.T) {
	if _, err := New(Config{Bytes: HugePageSize - 1}); err == nil {
		t.Fatal("expected error for sub-huge-page tier")
	}
}

func TestDefaultsByKind(t *testing.T) {
	cases := []struct {
		kind        Kind
		load, store uint64
	}{
		{DRAM, DRAMLoadNS, DRAMStoreNS},
		{NVM, NVMLoadNS, NVMStoreNS},
		{CXL, CXLLoadNS, CXLStoreNS},
	}
	for _, c := range cases {
		tt := MustNew(Config{Kind: c.kind, Bytes: 4 * HugePageSize})
		if tt.LoadNS() != c.load || tt.StoreNS() != c.store {
			t.Errorf("%v: got load=%d store=%d, want %d/%d", c.kind, tt.LoadNS(), tt.StoreNS(), c.load, c.store)
		}
		if tt.AccessNS(false) != c.load || tt.AccessNS(true) != c.store {
			t.Errorf("%v: AccessNS mismatch", c.kind)
		}
	}
}

func TestExplicitLatenciesOverrideKind(t *testing.T) {
	tt := MustNew(Config{Kind: NVM, Bytes: 2 * HugePageSize, LoadNS: 123, StoreNS: 456})
	if tt.LoadNS() != 123 || tt.StoreNS() != 456 {
		t.Fatalf("explicit latencies not honoured: %d/%d", tt.LoadNS(), tt.StoreNS())
	}
}

func TestCapacityRoundsDownToBlocks(t *testing.T) {
	tt := MustNew(Config{Kind: DRAM, Bytes: 3*HugePageSize + 12345})
	if got := tt.CapacityFrames(); got != 3*SubPages {
		t.Fatalf("CapacityFrames = %d, want %d", got, 3*SubPages)
	}
	if got := tt.CapacityBytes(); got != 3*HugePageSize {
		t.Fatalf("CapacityBytes = %d, want %d", got, 3*HugePageSize)
	}
}

func TestAllocHugeExhaustion(t *testing.T) {
	tt := newTestTier(t, 3)
	var frames []Frame
	for i := 0; i < 3; i++ {
		f, err := tt.AllocHuge()
		if err != nil {
			t.Fatalf("AllocHuge %d: %v", i, err)
		}
		if uint32(f)%SubPages != 0 {
			t.Fatalf("huge frame %d not aligned", f)
		}
		frames = append(frames, f)
	}
	if _, err := tt.AllocHuge(); err != ErrOutOfMemory {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
	if tt.UsedFrames() != 3*SubPages || tt.FreeFrames() != 0 {
		t.Fatalf("accounting wrong: used=%d free=%d", tt.UsedFrames(), tt.FreeFrames())
	}
	seen := map[Frame]bool{}
	for _, f := range frames {
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	tt.FreeHuge(frames[1])
	if tt.FreeFrames() != SubPages {
		t.Fatalf("FreeHuge accounting: free=%d", tt.FreeFrames())
	}
	if f, err := tt.AllocHuge(); err != nil || f != frames[1] {
		t.Fatalf("expected reuse of freed block, got %d err %v", f, err)
	}
}

func TestAllocBaseBreaksBlockAndCoalesces(t *testing.T) {
	tt := newTestTier(t, 2)
	f0, err := tt.AllocBase()
	if err != nil {
		t.Fatalf("AllocBase: %v", err)
	}
	// One block is now broken: a huge allocation must still succeed
	// from the second block.
	if _, err := tt.AllocHuge(); err != nil {
		t.Fatalf("AllocHuge after base alloc: %v", err)
	}
	// But a second huge allocation cannot (block 1 broken, block 2 used).
	if _, err := tt.AllocHuge(); err != ErrOutOfMemory {
		t.Fatalf("expected OOM for second huge, got %v", err)
	}
	// Free the base frame: the block coalesces and a huge alloc works.
	tt.FreeBase(f0)
	if !tt.HasHugeFrame() {
		t.Fatal("block did not coalesce after last base free")
	}
	if _, err := tt.AllocHuge(); err != nil {
		t.Fatalf("AllocHuge after coalesce: %v", err)
	}
}

func TestAllocBaseSequentialWithinBlock(t *testing.T) {
	tt := newTestTier(t, 1)
	prev, err := tt.AllocBase()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < SubPages; i++ {
		f, err := tt.AllocBase()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if f != prev+1 {
			t.Fatalf("expected sequential frames, got %d after %d", f, prev)
		}
		prev = f
	}
	if _, err := tt.AllocBase(); err != ErrOutOfMemory {
		t.Fatalf("expected OOM, got %v", err)
	}
}

func TestBreakHugeAllowsIndividualFrees(t *testing.T) {
	tt := newTestTier(t, 1)
	f, err := tt.AllocHuge()
	if err != nil {
		t.Fatal(err)
	}
	tt.BreakHuge(f)
	if tt.UsedFrames() != SubPages {
		t.Fatalf("BreakHuge changed usage: %d", tt.UsedFrames())
	}
	// Free half the frames.
	for i := 0; i < SubPages/2; i++ {
		tt.FreeBase(f + Frame(i))
	}
	if tt.FreeFrames() != SubPages/2 {
		t.Fatalf("free=%d want %d", tt.FreeFrames(), SubPages/2)
	}
	// Free the rest: block coalesces back to a huge frame.
	for i := SubPages / 2; i < SubPages; i++ {
		tt.FreeBase(f + Frame(i))
	}
	if !tt.HasHugeFrame() {
		t.Fatal("no huge frame after freeing all broken frames")
	}
}

func TestFreeHugePanicsOnBaseFrame(t *testing.T) {
	tt := newTestTier(t, 1)
	f, _ := tt.AllocHuge()
	tt.BreakHuge(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tt.FreeHuge(f)
}

// TestQuickAllocFreeConservation drives a random alloc/free sequence and
// checks frame conservation and non-overlap invariants throughout.
func TestQuickAllocFreeConservation(t *testing.T) {
	prop := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := MustNew(Config{Kind: DRAM, Bytes: 8 * HugePageSize})
		type alloc struct {
			f    Frame
			huge bool
		}
		var live []alloc
		owned := map[Frame]bool{}
		for i := 0; i < int(ops)+32; i++ {
			switch rng.Intn(3) {
			case 0:
				if f, err := tt.AllocHuge(); err == nil {
					for k := 0; k < SubPages; k++ {
						if owned[f+Frame(k)] {
							return false // overlap
						}
						owned[f+Frame(k)] = true
					}
					live = append(live, alloc{f, true})
				}
			case 1:
				if f, err := tt.AllocBase(); err == nil {
					if owned[f] {
						return false
					}
					owned[f] = true
					live = append(live, alloc{f, false})
				}
			case 2:
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				a := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if a.huge {
					tt.FreeHuge(a.f)
					for k := 0; k < SubPages; k++ {
						delete(owned, a.f+Frame(k))
					}
				} else {
					tt.FreeBase(a.f)
					delete(owned, a.f)
				}
			}
			if tt.UsedFrames() != uint64(len(owned)) {
				return false
			}
			if tt.UsedFrames()+tt.FreeFrames() != tt.CapacityFrames() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIDString(t *testing.T) {
	if FastTier.String() != "fast" || CapacityTier.String() != "capacity" || NoTier.String() != "none" {
		t.Fatal("ID.String mismatch")
	}
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" || CXL.String() != "CXL" {
		t.Fatal("Kind.String mismatch")
	}
}
