package obs

import "sort"

// MetricKind distinguishes monotonically increasing counters from
// set-anywhere gauges. The registry does not enforce monotonicity —
// both are plain uint64 cells — but the kind is part of the snapshot
// so consumers can tell them apart.
type MetricKind uint8

const (
	CounterKind MetricKind = iota
	GaugeKind
)

// String returns "counter" or "gauge".
func (k MetricKind) String() string {
	if k == GaugeKind {
		return "gauge"
	}
	return "counter"
}

// Metric is one snapshot entry.
type Metric struct {
	Name  string
	Kind  MetricKind
	Value uint64
}

// Registry hands out named uint64 cells. The machine is single-
// threaded, so increments are plain `*c++` — no atomics, no locks;
// that is what makes registry-backed counters free enough to live in
// per-sample policy code. Metric names are flat strings; policies
// prefix theirs with their Name() via Group.
type Registry struct {
	cells map[string]*cell
}

type cell struct {
	kind MetricKind
	v    uint64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{cells: make(map[string]*cell)}
}

func (r *Registry) get(name string, kind MetricKind) *uint64 {
	c := r.cells[name]
	if c == nil {
		c = &cell{kind: kind}
		r.cells[name] = c
	} else if c.kind != kind {
		panic("obs: metric " + name + " registered as both counter and gauge")
	}
	return &c.v
}

// Counter returns the cell for a cumulative counter, creating it at
// zero on first use. Repeated calls with the same name return the same
// cell.
func (r *Registry) Counter(name string) *uint64 { return r.get(name, CounterKind) }

// Gauge returns the cell for a gauge (last-value semantics).
func (r *Registry) Gauge(name string) *uint64 { return r.get(name, GaugeKind) }

// Value reads a metric by name.
func (r *Registry) Value(name string) (uint64, bool) {
	c := r.cells[name]
	if c == nil {
		return 0, false
	}
	return c.v, true
}

// Snapshot returns every metric sorted by name — a deterministic order
// regardless of registration order, so snapshots embedded in results
// survive reflect.DeepEqual-based determinism tests.
func (r *Registry) Snapshot() []Metric {
	out := make([]Metric, 0, len(r.cells))
	for name, c := range r.cells {
		out = append(out, Metric{Name: name, Kind: c.kind, Value: c.v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Group namespaces metrics under prefix + "/". Policies use
// reg.Group(p.Name()) so two policies never collide.
func (r *Registry) Group(prefix string) Group { return Group{r: r, prefix: prefix + "/"} }

// Group is a namespaced view of a Registry.
type Group struct {
	r      *Registry
	prefix string
}

// Counter returns the namespaced counter cell.
func (g Group) Counter(name string) *uint64 { return g.r.Counter(g.prefix + name) }

// Gauge returns the namespaced gauge cell.
func (g Group) Gauge(name string) *uint64 { return g.r.Gauge(g.prefix + name) }
