// Package dist provides the random index distributions used to build
// synthetic memory workloads: a bounded Zipf sampler valid for any
// exponent s > 0 (the standard library's rand.Zipf requires s > 1, but
// YCSB's canonical skew is s = 0.99), plus uniform and sequential
// helpers sharing one interface.
package dist

import (
	"math"
	"math/rand"
)

// Source draws indexes in [0, N).
type Source interface {
	Next() uint64
	N() uint64
}

// Zipf samples k in [0, n) with probability proportional to
// 1/(k+1)^s, for any s > 0, using Gray's rejection-inversion method
// (the same approach as YCSB's ZipfianGenerator): O(1) per sample with
// no per-element tables, so footprints of millions of pages cost
// nothing to set up.
type Zipf struct {
	rng              *rand.Rand
	n                uint64
	s                float64
	oneMinusS        float64
	hIntegralX1      float64
	hIntegralNumElem float64
	sDiv             float64
}

// NewZipf builds a bounded Zipf sampler over [0, n).
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	if n < 1 {
		n = 1
	}
	if s <= 0 {
		s = 0.01
	}
	z := &Zipf{rng: rng, n: n, s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElem = z.hIntegral(float64(n) + 0.5)
	z.sDiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// hIntegral is the antiderivative of 1/x^s.
func (z *Zipf) hIntegral(x float64) float64 {
	lx := math.Log(x)
	if math.Abs(z.oneMinusS) < 1e-12 {
		return lx
	}
	return helper2(z.oneMinusS*lx) * lx
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	if math.Abs(z.oneMinusS) < 1e-12 {
		return math.Exp(x)
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a stable series near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x with a stable series near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+0.25*x))
}

// Next implements Source.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralNumElem + z.rng.Float64()*(z.hIntegralX1-z.hIntegralNumElem)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// N implements Source.
func (z *Zipf) N() uint64 { return z.n }

// Uniform draws uniformly from [0, n).
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

// NewUniform builds a uniform sampler over [0, n).
func NewUniform(rng *rand.Rand, n uint64) *Uniform {
	if n < 1 {
		n = 1
	}
	return &Uniform{rng: rng, n: n}
}

// Next implements Source.
func (u *Uniform) Next() uint64 { return u.rng.Uint64() % u.n }

// N implements Source.
func (u *Uniform) N() uint64 { return u.n }

// Sequential sweeps [0, n) cyclically.
type Sequential struct {
	n   uint64
	cur uint64
}

// NewSequential builds a cyclic sweep over [0, n).
func NewSequential(n uint64) *Sequential {
	if n < 1 {
		n = 1
	}
	return &Sequential{n: n}
}

// Next implements Source.
func (s *Sequential) Next() uint64 {
	v := s.cur
	s.cur = (s.cur + 1) % s.n
	return v
}

// N implements Source.
func (s *Sequential) N() uint64 { return s.n }

// Scrambled wraps a Source with a multiplicative hash so that "low
// index = hot" distributions scatter across the whole range, the way
// hash-distributed heaps place hot records (YCSB's scrambled Zipfian).
type Scrambled struct {
	src Source
}

// NewScrambled scatters the wrapped source's indexes.
func NewScrambled(src Source) *Scrambled { return &Scrambled{src: src} }

// Next implements Source.
func (sc *Scrambled) Next() uint64 {
	k := sc.src.Next()
	// Fibonacci hashing (offset so index 0 scatters too), folded into
	// the range.
	return ((k + 1) * 11400714819323198485) % sc.src.N()
}

// N implements Source.
func (sc *Scrambled) N() uint64 { return sc.src.N() }
