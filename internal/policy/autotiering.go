package policy

import (
	"math/bits"

	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// AutoTiering models the OPM/CPM design of Kim et al. (ATC'21): hint
// faults promote any faulting capacity-tier page on the critical path
// (static threshold of one), an N-bit access-history vector per page
// feeds an LFU victim choice for background demotion, and a demotion
// thread keeps a slice of the fast tier free — but that reserve is used
// only for promotions, so fresh allocations land on the capacity tier
// once the fast tier has filled (the behaviour §6.2.6 calls out for
// 603.bwaves's short-lived data).
type AutoTiering struct {
	Base
	rearmer   Rearmer
	reserve   float64 // fast-tier fraction kept free for promotions
	hand      int
	lastEpoch uint64
}

var _ sim.Policy = (*AutoTiering)(nil)

// NewAutoTiering returns the AutoTiering baseline.
func NewAutoTiering() *AutoTiering { return &AutoTiering{reserve: 0.04} }

// Name implements sim.Policy.
func (a *AutoTiering) Name() string { return "autotiering" }

// PlaceNew implements sim.Policy: allocations use the fast tier only
// while it has never filled; the demotion reserve is promotions-only.
// Overflow walks down the hierarchy to the first lower tier with room
// (on the two-tier machine that is always the over-provisioned
// capacity tier, the §6.2.6 behaviour).
func (a *AutoTiering) PlaceNew(huge bool, vpn uint64) tier.ID {
	need := uint64(tier.SubPages)
	if !huge {
		need = 1
	}
	if a.M.Fast.FreeFrames() >= a.FastReserveFrames(a.reserve)+need {
		return tier.FastTier
	}
	for id := tier.CapacityTier; int(id) < a.M.Depth(); id++ {
		if a.M.Tier(id).FreeFrames() >= need {
			return id
		}
	}
	return tier.CapacityTier
}

// OnAccess implements sim.Policy.
func (a *AutoTiering) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	pg := tr.Page
	if tr.Faulted {
		a.Register(pg)
		pg.P0 = 1
		return 0
	}
	if pg.PFlags&flagArmed == 0 {
		return 0
	}
	pg.PFlags &^= flagArmed
	pg.P0 |= 1 // set current history bit
	stall := uint64(HintFaultNS)
	if pg.Tier != tier.FastTier {
		ns, _ := a.MigrateSync(pg, a.M.PromoteTarget(pg.Tier))
		stall += ns
	}
	return stall
}

// Tick implements sim.Policy: re-arm hint faults, age history vectors
// once per full scan sweep, and run the background LFU demotion thread.
func (a *AutoTiering) Tick(now uint64) {
	n := a.rearmer.Advance(&a.Base, now)
	a.BgNS += uint64(n) * ScanPageNS
	if a.rearmer.SweepEpoch != a.lastEpoch {
		a.lastEpoch = a.rearmer.SweepEpoch
		for _, pg := range a.Registry {
			pg.P0 = (pg.P0 << 1) & 0xFF // 8-bit history window
		}
		a.BgNS += uint64(len(a.Registry)) * 8
	}
	a.demote()
}

// demote keeps the promotion reserve free by evicting the least
// frequently used fast-tier pages (lowest history popcount).
func (a *AutoTiering) demote() {
	reserve := a.FastReserveFrames(a.reserve)
	if a.M.Fast.FreeFrames() >= reserve || len(a.Registry) == 0 {
		return
	}
	// Clock-style partial scan: examine a bounded slice per wake,
	// demoting pages whose LFU count is minimal among those seen.
	scan := len(a.Registry) / 4
	if scan < 64 {
		scan = 64
	}
	for i := 0; i < scan && a.M.Fast.FreeFrames() < reserve; i++ {
		if a.hand >= len(a.Registry) {
			a.hand = 0
		}
		pg := a.Registry[a.hand]
		a.hand++
		if pg.Dead() || pg.Tier != tier.FastTier {
			continue
		}
		if bits.OnesCount64(pg.P0) <= 1 {
			a.MigrateAsync(pg, a.M.DemoteTarget(pg.Tier))
		}
	}
	a.BgNS += uint64(scan) * 20
}
