package bench

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// Golden shape assertion for the DESIGN.md §3 ordering claims on the
// F5 smoke cell set: under the 1:8 configuration — the paper's
// headline constrained setting — MEMTIS must be at least as good as
// the second-best system in every Table 2 workload cell. The 1:2 cells
// are deliberately not asserted: at smoke budgets several are within
// noise of fault-based baselines (EXPERIMENTS.md notes the
// re-baseline), while the 1:8 ordering is robust across seeds.
//
// On failure the full cell table is printed so the regressing cell can
// be read off directly.
func TestShapeF5SmokeMemtisGeSecondBest(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	cfg := DefaultConfig()
	cfg.Accesses = 1_500_000
	ratios := []Ratio{Ratio1to8}
	m, tb, err := Parallel(0).Fig5(context.Background(), cfg, nil, ratios, nil)
	if err != nil {
		t.Fatal(err)
	}

	var failed []string
	for _, wname := range workloadNames() {
		best, second, bv, sv := m.Best(wname, "1:8")
		mv, ok := m.Get(wname, "1:8", "memtis")
		if !ok {
			t.Fatalf("cell %s/1:8/memtis missing", wname)
		}
		if best != "memtis" && mv < sv {
			failed = append(failed, fmt.Sprintf(
				"%s 1:8: memtis %.3f behind best %s %.3f (second %s %.3f)",
				wname, mv, best, bv, second, sv))
		}
	}
	if len(failed) > 0 {
		t.Errorf("MEMTIS fell behind the second-best system on %d cell(s):\n  %s\n\nfull cell table:\n%s",
			len(failed), strings.Join(failed, "\n  "), tb.String())
	}
}
