package workload

import (
	"fmt"
	"math/rand"

	"memtis/internal/dist"
	"memtis/internal/sim"
)

// SyntheticRegion is one memory region of a user-defined workload.
type SyntheticRegion struct {
	Name  string
	Bytes uint64
	// SkipInit leaves the region untouched at start (pages fault in on
	// first steady-state access instead), modelling lazily-built heaps.
	SkipInit bool
}

// SyntheticPhase describes one component of the steady-state access
// mix. Each access picks a phase with probability proportional to
// Weight, then draws a page from the phase's distribution over its
// region.
type SyntheticPhase struct {
	Region string
	Weight int
	// Dist selects the index distribution: "zipf", "uniform" or "seq".
	Dist string
	// S is the Zipf exponent (any s > 0; YCSB's standard is 0.99).
	S float64
	// Scramble scatters the distribution's hot indexes across the
	// region (hash-distributed heap placement) so hot data lands on
	// scattered subpages rather than a dense prefix.
	Scramble bool
	// WritePercent of accesses in this phase are stores.
	WritePercent int
}

// SyntheticSpec is a user-defined workload: regions plus an access mix.
// It is the public escape hatch for workloads beyond the paper's eight.
type SyntheticSpec struct {
	Name    string
	Regions []SyntheticRegion
	Phases  []SyntheticPhase
}

// Synthetic is a sim.Workload built from a SyntheticSpec.
type Synthetic struct {
	spec SyntheticSpec
}

// NewSynthetic validates the spec and builds the workload.
func NewSynthetic(spec SyntheticSpec) (*Synthetic, error) {
	if spec.Name == "" {
		spec.Name = "synthetic"
	}
	if len(spec.Regions) == 0 {
		return nil, fmt.Errorf("workload: synthetic spec needs at least one region")
	}
	names := map[string]bool{}
	for _, r := range spec.Regions {
		if r.Bytes == 0 {
			return nil, fmt.Errorf("workload: region %q has zero size", r.Name)
		}
		if names[r.Name] {
			return nil, fmt.Errorf("workload: duplicate region %q", r.Name)
		}
		names[r.Name] = true
	}
	if len(spec.Phases) == 0 {
		return nil, fmt.Errorf("workload: synthetic spec needs at least one phase")
	}
	total := 0
	for i, p := range spec.Phases {
		if !names[p.Region] {
			return nil, fmt.Errorf("workload: phase %d references unknown region %q", i, p.Region)
		}
		if p.Weight <= 0 {
			return nil, fmt.Errorf("workload: phase %d has non-positive weight", i)
		}
		switch p.Dist {
		case "zipf", "uniform", "seq":
		default:
			return nil, fmt.Errorf("workload: phase %d has unknown distribution %q", i, p.Dist)
		}
		if p.WritePercent < 0 || p.WritePercent > 100 {
			return nil, fmt.Errorf("workload: phase %d write percent out of range", i)
		}
		total += p.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: zero total phase weight")
	}
	return &Synthetic{spec: spec}, nil
}

// Name implements sim.Workload.
func (s *Synthetic) Name() string { return s.spec.Name }

// TotalBytes returns the summed region sizes (for machine sizing).
func (s *Synthetic) TotalBytes() uint64 {
	var t uint64
	for _, r := range s.spec.Regions {
		t += r.Bytes
	}
	return t
}

// Run implements sim.Workload.
func (s *Synthetic) Run(m *sim.Machine, accesses uint64) {
	rng := rand.New(rand.NewSource(m.Cfg.Seed ^ int64(len(s.spec.Name))<<7))
	regions := map[string]region{}
	for _, rs := range s.spec.Regions {
		r := m.Reserve(rs.Bytes)
		regions[rs.Name] = region{r: r, pages: r.Pages}
	}
	for _, rs := range s.spec.Regions {
		if rs.SkipInit {
			continue
		}
		reg := regions[rs.Name]
		for i := uint64(0); i < reg.pages && m.Accesses() < accesses; i++ {
			m.Access(reg.r.BaseVPN+i, true)
		}
	}
	type armedPhase struct {
		reg   region
		src   dist.Source
		write int
	}
	var phases []armedPhase
	var weights []int
	total := 0
	for _, p := range s.spec.Phases {
		reg := regions[p.Region]
		var src dist.Source
		switch p.Dist {
		case "zipf":
			src = dist.NewZipf(rng, p.S, reg.pages)
		case "uniform":
			src = dist.NewUniform(rng, reg.pages)
		case "seq":
			src = dist.NewSequential(reg.pages)
		}
		if p.Scramble {
			src = dist.NewScrambled(src)
		}
		phases = append(phases, armedPhase{reg: reg, src: src, write: p.WritePercent})
		total += p.Weight
		weights = append(weights, total)
	}
	// The steady mix is a pure stepper (regions are fixed by now), so
	// it goes through the batched issue path.
	issueBatched(m, accesses, func() (uint64, bool) {
		pick := rng.Intn(total)
		idx := 0
		for weights[idx] <= pick {
			idx++
		}
		ph := phases[idx]
		return ph.reg.r.BaseVPN + ph.src.Next(), rng.Intn(100) < ph.write
	})
}

var _ sim.Workload = (*Synthetic)(nil)
