package obs

import (
	"bufio"
	"io"
)

// JSONL is a sink that writes one JSON object per event, one event per
// line. The encoding is hand-formatted with a fixed field order
// ({"t","ev","vpn","huge","bytes","aux"}) rather than produced by
// encoding/json, so traces are byte-stable: the same event sequence
// always serialises to the same bytes, which is what the golden-trace
// tests diff.
type JSONL struct {
	w   *bufio.Writer
	buf []byte
	// err records the first write error; subsequent emits are dropped.
	// The single-threaded machine cannot usefully recover mid-run, so
	// errors are sticky and surfaced by Flush.
	err error
}

// NewJSONL wraps w in a buffered JSONL sink. Call Flush when the run
// finishes.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Emit implements Sink.
func (s *JSONL) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendEvent(s.buf[:0], e)
	_, s.err = s.w.Write(s.buf)
}

// Flush drains the buffer and returns the first error seen.
func (s *JSONL) Flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// AppendEvent appends e's canonical JSONL line (with trailing newline)
// to b. It is the single source of truth for the wire format; the
// round-trip fuzz target holds it and ParseEvent together.
func AppendEvent(b []byte, e Event) []byte {
	b = append(b, `{"t":`...)
	b = appendUint(b, e.TimeNS)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","vpn":`...)
	b = appendUint(b, e.VPN)
	b = append(b, `,"huge":`...)
	if e.Huge {
		b = append(b, "true"...)
	} else {
		b = append(b, "false"...)
	}
	b = append(b, `,"bytes":`...)
	b = appendUint(b, e.Bytes)
	b = append(b, `,"aux":`...)
	b = appendUint(b, e.Aux)
	return append(b, "}\n"...)
}

// appendUint is strconv.AppendUint(b, v, 10) without pulling strconv's
// table variants into the hot emit path.
func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// Ring is an in-memory sink keeping the last Cap events (all events
// when Cap is 0). It is the test-friendly sink: cheap, allocation-
// bounded, and directly inspectable.
type Ring struct {
	Cap    int
	events []Event
	head   int // next overwrite position when full
	full   bool
}

// NewRing builds a ring sink bounded to capacity events (0 = unbounded).
func NewRing(capacity int) *Ring {
	return &Ring{Cap: capacity}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	if r.Cap <= 0 {
		r.events = append(r.events, e)
		return
	}
	if len(r.events) < r.Cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.head] = e
	r.head = (r.head + 1) % r.Cap
	r.full = true
}

// Events returns the retained events in emission order.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.events...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.head:]...)
	out = append(out, r.events[:r.head]...)
	return out
}

// Len returns how many events are retained.
func (r *Ring) Len() int { return len(r.events) }

// CountByKind tallies retained events per kind.
func (r *Ring) CountByKind() map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range r.Events() {
		m[e.Kind]++
	}
	return m
}
