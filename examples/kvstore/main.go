// kvstore runs a real key-value store on the simulated tiered machine:
// every record lives at a simulated virtual address (hash-scattered, as
// allocators do), and each Get/Put issues the corresponding memory
// accesses. With Zipfian keys the hot records scatter across huge pages
// — exactly the access pattern (Figure 3b) where MEMTIS's skewness-aware
// huge page split shines. The example compares MEMTIS with and without
// splitting.
package main

import (
	"fmt"
	"math/rand"

	"memtis"
)

// Store is a KV store whose records are placed in simulated memory.
type Store struct {
	m      *memtis.Machine
	vals   map[uint64]string
	addrOf []uint64 // key -> simulated base-page number
}

// NewStore populates n records across a heap region, hash-scattering
// record placement the way a slab allocator fills a large heap.
func NewStore(m *memtis.Machine, n int, rng *rand.Rand) *Store {
	region := m.Reserve(uint64(n) * 4096) // one 4KB node per record
	s := &Store{m: m, vals: make(map[uint64]string, n), addrOf: make([]uint64, n)}
	perm := rng.Perm(n)
	for k := 0; k < n; k++ {
		s.addrOf[k] = region.BaseVPN + uint64(perm[k])
		s.Put(uint64(k), fmt.Sprintf("value-%d", k))
	}
	return s
}

// Put writes a record (one store to its page).
func (s *Store) Put(key uint64, val string) {
	s.vals[key] = val
	s.m.Access(s.addrOf[key%uint64(len(s.addrOf))], true)
}

// Get reads a record (one load from its page).
func (s *Store) Get(key uint64) (string, bool) {
	s.m.Access(s.addrOf[key%uint64(len(s.addrOf))], false)
	v, ok := s.vals[key]
	return v, ok
}

func run(split bool) memtis.Result {
	cfg := memtis.MachineConfig{
		FastBytes: 48 << 20,  // 48MB DRAM
		CapBytes:  512 << 20, // 512MB NVM
		CapKind:   memtis.NVM,
		THP:       true,
		Seed:      7,
	}
	pol := memtis.NewMEMTISWith(memtis.MEMTISConfig{SplitDisabled: !split})
	m := memtis.NewMachine(cfg, pol)

	rng := rand.New(rand.NewSource(7))
	store := NewStore(m, 100_000, rng) // ~400MB of records
	zipf := rand.NewZipf(rng, 1.15, 1, uint64(99_999))

	// YCSB-C: read-only Zipfian lookups.
	for i := 0; i < 2_000_000; i++ {
		if _, ok := store.Get(zipf.Uint64()); !ok {
			panic("lost key")
		}
	}
	return m.Finish("kvstore")
}

func main() {
	noSplit := run(false)
	withSplit := run(true)

	fmt.Println("Zipfian KV store (100K records, 48MB DRAM + NVM):")
	fmt.Printf("%-28s %12s %14s\n", "policy", "hit ratio", "throughput")
	fmt.Printf("%-28s %11.1f%% %11.2f M/s\n", "MEMTIS (no split)", noSplit.FastHitRatio*100, noSplit.Throughput/1e6)
	fmt.Printf("%-28s %11.1f%% %11.2f M/s\n", "MEMTIS (skew-aware split)", withSplit.FastHitRatio*100, withSplit.Throughput/1e6)
	fmt.Printf("\nsplit gained %.1f%% throughput by splintering %d skewed huge pages\n",
		(withSplit.Throughput/noSplit.Throughput-1)*100, withSplit.VM.Splits)
}
