// Determinism and merge tests for tenant-sharded runs (DESIGN.md §13):
// the parallel lanes must be byte-identical to the Sequential reference
// at every shard count, per-tenant rows must merge to global ids, and
// the driver must reject workloads it cannot replay.
package bench

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	memtis "memtis/internal/core"
	"memtis/internal/obs"
	"memtis/internal/pebs"
	"memtis/internal/sim"
	"memtis/internal/tenant"
	"memtis/internal/tier"
)

// tenantShardPolicy is the dense fixed-period MEMTIS instance the
// VPN-shard determinism suite uses: at the compressed test scale the
// self-adjusting sampler is too sparse to classify hot sets inside one
// shard's slice of the stream, leaving the migration paths untested.
func tenantShardPolicy() sim.Policy {
	smp := pebs.DefaultConfig()
	smp.LoadPeriod, smp.MinPeriod, smp.MaxPeriod = 8, 8, 8
	return memtis.New(memtis.Config{Sampler: smp, CoolEvery: 12_000})
}

// tenantShardMix is the shared plan: 16 tenants with an 8:1 weight
// skew, half churning (spawn 10% / exit 70%), one grow/shrink plan and
// a QoS floor on tenant 0, so the sharded driver's whole control
// surface — weighted pick, churn, reservations, exit frees, floor
// checks — is exercised. Sixteen tenants keeps each shard's hot-block
// count above its fast-block count at the test shard sizes, so every
// shard hosting tenants sees real promotion pressure.
func tenantShardMix() (tenant.Config, uint64) {
	tc, rss := TenantMix(TenantPoint{Tenants: 16, Skew: "8to1", ChurnFrac: 0.5}, 4<<20)
	tc.Tenants[0].FloorBytes = 1 << 20
	tc.Tenants[15].GrowBytes = 2 << 20
	tc.Tenants[15].GrowFrac = 0.3
	tc.Tenants[15].ShrinkFrac = 0.8
	return tc, rss
}

// runTenantShardStream executes the shared plan on an S-shard machine
// and returns the per-shard JSONL traces plus the run result. The
// budget scales with the shard count (as in the VPN-shard suite) so
// each shard's slice of the stream stays thick enough for its dense
// sampler to classify hot sets and drive migrations.
func runTenantShardStream(t *testing.T, shards int, sequential bool) ([][]byte, *tenant.ShardedResult) {
	t.Helper()
	tc, rss := tenantShardMix()
	tn, err := tenant.New(tc)
	if err != nil {
		t.Fatal(err)
	}
	fast := rss / 4
	bufs := make([]*bytes.Buffer, shards)
	sinks := make([]*obs.JSONL, shards)
	sr, err := tn.RunSharded(tenant.ShardedConfig{
		Shards:     shards,
		Sequential: sequential,
		Machine: sim.Config{
			FastBytes: fast,
			CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
			CapKind:   tier.NVM,
			THP:       true,
			Seed:      7,
		},
		PolicyFor: func(int) sim.Policy { return tenantShardPolicy() },
		TraceFor: func(i int) *obs.Tracer {
			bufs[i] = &bytes.Buffer{}
			sinks[i] = obs.NewJSONL(bufs[i])
			return obs.NewTracer(sinks[i])
		},
	}, 200_000*uint64(shards))
	if err != nil {
		t.Fatal(err)
	}
	traces := make([][]byte, shards)
	for i, b := range bufs {
		if err := sinks[i].Flush(); err != nil {
			t.Fatal(err)
		}
		traces[i] = b.Bytes()
	}
	return traces, sr
}

// TestShardedTenantsSeqParallelIdentical is the tenant-sharding
// determinism gate (run under -race in CI): for 1, 2 and 8 shards the
// parallel lanes produce byte-identical per-shard event traces,
// results, tenant rows and merged arbiter state to the Sequential
// reference mode.
func TestShardedTenantsSeqParallelIdentical(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			seqTr, seqRes := runTenantShardStream(t, shards, true)
			parTr, parRes := runTenantShardStream(t, shards, false)
			var events int
			for i := 0; i < shards; i++ {
				if !bytes.Equal(seqTr[i], parTr[i]) {
					t.Errorf("shard %d: parallel trace differs from sequential (%d vs %d bytes)",
						i, len(parTr[i]), len(seqTr[i]))
				}
				if len(seqTr[i]) == 0 {
					t.Errorf("shard %d: empty trace — no tenant ops reached it", i)
				}
				if !reflect.DeepEqual(seqRes.Shards[i], parRes.Shards[i]) {
					t.Errorf("shard %d: parallel result differs from sequential:\nseq %+v\npar %+v",
						i, seqRes.Shards[i], parRes.Shards[i])
				}
				events += bytes.Count(seqTr[i], []byte("\n"))
			}
			if events == 0 {
				t.Fatal("no events traced")
			}
			if !reflect.DeepEqual(seqRes.Aggregate, parRes.Aggregate) {
				t.Errorf("aggregate differs:\nseq %+v\npar %+v", seqRes.Aggregate, parRes.Aggregate)
			}
			if !reflect.DeepEqual(seqRes.Arbiter, parRes.Arbiter) {
				t.Errorf("merged arbiter state differs:\nseq %+v\npar %+v", seqRes.Arbiter, parRes.Arbiter)
			}
		})
	}
}

// TestTenantShardedAggregateRows pins the row merge: every tenant
// appears exactly once in the aggregate under its global id and name,
// the per-tenant accesses sum to the budget, and the per-switch
// simulated-TLB cold start plus migration machinery actually ran on
// every shard hosting tenants.
func TestTenantShardedAggregateRows(t *testing.T) {
	const shards = 4
	_, sr := runTenantShardStream(t, shards, false)
	if len(sr.Aggregate.Tenants) != 16 {
		t.Fatalf("aggregate has %d tenant rows, want 16", len(sr.Aggregate.Tenants))
	}
	const budget = 200_000 * shards
	var total uint64
	for g, row := range sr.Aggregate.Tenants {
		if row.ID != g {
			t.Errorf("row %d: global id %d out of order", g, row.ID)
		}
		if want := fmt.Sprintf("t%03d", g); row.Name != want {
			t.Errorf("row %d: name %q, want %q", g, row.Name, want)
		}
		// Churners (tenants 1-8 under ChurnFrac 0.5) are alive for only
		// part of the run and may lose every weighted draw at an
		// unlucky seed, so only the always-alive tenants are required
		// to have issued accesses.
		if row.Accesses == 0 && (g == 0 || g > 8) {
			t.Errorf("tenant %d issued no accesses", g)
		}
		total += row.Accesses
	}
	if total != budget {
		t.Errorf("per-tenant accesses sum to %d, want the %d budget", total, budget)
	}
	if sr.Aggregate.Accesses != budget {
		t.Errorf("aggregate accesses %d, want %d", sr.Aggregate.Accesses, budget)
	}
	var migrated uint64
	for i, r := range sr.Shards {
		migrated += r.VM.Promotions
		if r.Accesses == 0 {
			t.Errorf("shard %d saw no accesses", i)
		}
	}
	if migrated == 0 {
		t.Error("no promotions anywhere — the mix exerts no tiering pressure")
	}
	if len(sr.Arbiter.Contended) != 16 {
		t.Errorf("merged arbiter tracks %d tenants, want 16", len(sr.Arbiter.Contended))
	}
}

// TestTenantSweepSharded pins the sweep composition: with cfg.Shards
// set every cell (reference included) runs on the sharded machine and
// records a full-budget aggregate, and the EventDir conflict is
// rejected up front rather than mid-sweep.
func TestTenantSweepSharded(t *testing.T) {
	r := Parallel(2)
	cfg := DefaultConfig()
	cfg.Accesses = 200_000
	cfg.Shards = 2
	points := []TenantPoint{
		{Tenants: 1, Skew: "flat"},
		{Tenants: 8, Skew: "8to1", ChurnFrac: 0.5},
	}
	m, err := r.TenantSweep(context.Background(), cfg, Ratio1to8, []string{"memtis"}, points)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("sweep produced %d cells, want 2", len(m.Cells))
	}
	for _, c := range m.Cells {
		if c.Result.Accesses != cfg.Accesses {
			t.Errorf("cell %s/%s: aggregate accesses %d, want %d", c.Ratio, c.Policy, c.Result.Accesses, cfg.Accesses)
		}
		if c.Value <= 0 {
			t.Errorf("cell %s/%s: non-positive normalised value %v", c.Ratio, c.Policy, c.Value)
		}
	}
	cfg.EventDir = t.TempDir()
	if _, err := r.TenantSweep(context.Background(), cfg, Ratio1to8, []string{"memtis"}, points); err == nil {
		t.Fatal("TenantSweep accepted Shards with EventDir")
	}
}

// TestTenantShardedRequiresStreamer: workloads without a resumable
// stepper cannot be replayed driver-side and must be rejected up
// front, not mid-run.
func TestTenantShardedRequiresStreamer(t *testing.T) {
	tn, err := tenant.New(tenant.Config{Tenants: []tenant.Spec{
		{Name: "hammer", Workload: zipfHammer{}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.RunSharded(tenant.ShardedConfig{
		Shards:  2,
		Machine: sim.Config{FastBytes: 8 << 20, CapBytes: 32 << 20, CapKind: tier.NVM, THP: true, Seed: 7},
	}, 10_000); err == nil {
		t.Fatal("RunSharded accepted a non-Streamer workload")
	}
}
