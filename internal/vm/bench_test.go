// Touch is the first call of every simulated access; these benchmarks
// pin the cost of its mapped fast path (the ~100% case in steady
// state) for both page kinds, read and write.
package vm

import "testing"

// benchAS returns an address space with one pre-faulted region and a
// probe sequence over it.
func benchAS(b *testing.B, thp bool) (*AddressSpace, []uint64) {
	b.Helper()
	as := newAS(nil, 64, 64, thp)
	r := as.Reserve(32 << 20)
	for vpn := r.BaseVPN; vpn < r.BaseVPN+r.Pages; vpn++ {
		as.Touch(vpn, false)
	}
	vpns := make([]uint64, 1<<12)
	for i := range vpns {
		vpns[i] = r.BaseVPN + (uint64(i)*2654435761)%r.Pages
	}
	return as, vpns
}

func benchTouch(b *testing.B, thp, write bool) {
	as, vpns := benchAS(b, thp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Touch(vpns[i&(len(vpns)-1)], write)
	}
}

func BenchmarkTouchMappedHugeRead(b *testing.B)  { benchTouch(b, true, false) }
func BenchmarkTouchMappedHugeWrite(b *testing.B) { benchTouch(b, true, true) }
func BenchmarkTouchMappedBaseRead(b *testing.B)  { benchTouch(b, false, false) }

// BenchmarkForEachPageAllocs pins the steady-state allocation count of
// the full-table walk at zero: policies call ForEachPage from periodic
// ticks, and an O(nPages) snapshot allocation per call (the historical
// behaviour) turns every policy tick into a GC event on large spaces.
// The scratch buffer makes repeat walks allocation-free; the benchmark's
// allocs/op column (gated in CI) is the regression tripwire.
func BenchmarkForEachPageAllocs(b *testing.B) {
	as, _ := benchAS(b, false) // base pages: maximal page count per byte
	live := 0
	as.ForEachPage(func(p *Page) { live++ }) // warm the scratch buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		as.ForEachPage(func(p *Page) { n++ })
		if n != live {
			b.Fatalf("walk visited %d pages, want %d", n, live)
		}
	}
}
