// Package fastmod computes exact multiply-based 64-bit remainders
// (Lemire's direct-remainder construction widened to a 128-bit
// reciprocal). Several simulator hot loops reduce a value into a
// runtime-sized span — TLB set indexing, synthetic access streams —
// and on those paths the hardware 64-bit divider is the single most
// expensive instruction. Precomputing ceil(2^128/d) once per divisor
// turns each reduction into three widening multiplies, with a result
// bit-identical to the % operator for every 64-bit input, so swapping
// it in can never change simulated behaviour (the equivalence goldens
// pin this).
package fastmod

import "math/bits"

// M computes n % d for a fixed divisor d via a precomputed 128-bit
// reciprocal. The zero value is invalid; build with New.
type M struct {
	hi, lo uint64 // ceil(2^128 / d), as a 128-bit fixed-point fraction
	d      uint64
}

// New prepares the reciprocal for divisor d (d >= 1).
func New(d uint64) M {
	// ceil(2^128 / d) == floor((2^128 - 1) / d) + 1: long 128/64
	// division of all-ones, then a 128-bit increment.
	qhi, r := bits.Div64(0, ^uint64(0), d)
	qlo, _ := bits.Div64(r, ^uint64(0), d)
	lo, carry := bits.Add64(qlo, 1, 0)
	return M{hi: qhi + carry, lo: lo, d: d}
}

// Mod returns n % d for the divisor the reciprocal was built for.
func (f M) Mod(n uint64) uint64 {
	// frac = (M * n) mod 2^128 — the fractional part of n/d scaled to
	// 128 bits — then n % d = floor(frac * d / 2^128).
	fhi, flo := bits.Mul64(f.lo, n)
	fhi += f.hi * n
	q1, q0 := bits.Mul64(fhi, f.d)
	p1, _ := bits.Mul64(flo, f.d)
	_, carry := bits.Add64(q0, p1, 0)
	return q1 + carry
}
