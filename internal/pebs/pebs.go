// Package pebs models processor event-based sampling as used by MEMTIS's
// ksampled thread (§4.1.1): retired LLC load misses and retired store
// instructions are sampled with independent periods, and a feedback
// controller adjusts both periods so that the CPU consumed processing
// samples stays under a budget (3% of one core by default), using an
// exponential moving average with hysteresis exactly as the paper
// describes.
package pebs

import "memtis/internal/obs"

// Sample is one PEBS record: the virtual page number of the accessed
// address plus the access kind.
type Sample struct {
	VPN   uint64
	Write bool
}

// Config tunes the sampler. Zero fields take paper defaults.
type Config struct {
	LoadPeriod  uint64  // initial sampling period for LLC load misses (paper: 200)
	StorePeriod uint64  // initial sampling period for stores (paper: 100000)
	MinPeriod   uint64  // lower bound for the load period
	MaxPeriod   uint64  // upper bound for the load period
	CPUBudget   float64 // ksampled CPU cap as fraction of one core (paper: 0.03)
	Hysteresis  float64 // dead band around the budget (paper: 0.005)
	CostNS      uint64  // processing cost per sample
	AdjustNS    uint64  // virtual time between controller invocations
}

// DefaultConfig returns the paper's sampler parameters with periods and
// per-sample cost scaled 10x down to match the simulator's compressed
// footprints (DESIGN.md §4): the paper samples loads at 200..1400 with
// ~600ns processing per sample; we sample at 20..140 with 160ns so the
// CPU-usage arithmetic (and hence the 3% controller behaviour) is
// unchanged while histograms see enough samples per cooling period.
func DefaultConfig() Config {
	return Config{
		LoadPeriod:  20,
		StorePeriod: 10_000,
		MinPeriod:   20,
		MaxPeriod:   140, // paper: roms is throttled from 200 to 1400
		CPUBudget:   0.03,
		Hysteresis:  0.005,
		CostNS:      160,
		AdjustNS:    2_000_000, // 2ms of virtual time
	}
}

// Sampler emits a Sample every loadPeriod-th load (and storePeriod-th
// store) fed to it, and self-adjusts its period from its own measured
// CPU usage. It is driven with virtual time by the simulator.
//
// The per-kind state is a precomputed skip countdown rather than an
// incrementing counter compared against the period: a non-sampled
// access costs one decrement and one branch on the hot path, and the
// countdown value doubles as the distance to the next sample, which is
// what lets FeedFast prove an access cannot sample without consulting
// the period at all.
type Sampler struct {
	cfg         Config
	loadPeriod  uint64
	storePeriod uint64
	loadRem     uint64 // loads until the next load sample (fires at 0)
	storeRem    uint64 // stores until the next store sample
	nextAdjust  uint64 // virtual deadline of the next controller run

	// Trace receives sampler_adjust/sampler_overflow events from the
	// period controller. Set by the owning policy at Attach.
	Trace *obs.Tracer

	samples     uint64 // total samples emitted
	spentNS     uint64 // total processing time
	winSamples  uint64 // samples since last adjustment
	lastAdjust  uint64 // virtual time of last adjustment
	emaCPU      float64
	emaValid    bool
	adjustments int
	sumCPU      float64 // for average-usage reporting
	nCPU        uint64
}

// NewSampler builds a sampler; zero config fields take defaults.
func NewSampler(cfg Config) *Sampler {
	def := DefaultConfig()
	if cfg.LoadPeriod == 0 {
		cfg.LoadPeriod = def.LoadPeriod
	}
	if cfg.StorePeriod == 0 {
		cfg.StorePeriod = def.StorePeriod
	}
	if cfg.MinPeriod == 0 {
		cfg.MinPeriod = def.MinPeriod
	}
	if cfg.MaxPeriod == 0 {
		cfg.MaxPeriod = def.MaxPeriod
	}
	if cfg.CPUBudget == 0 {
		cfg.CPUBudget = def.CPUBudget
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = def.Hysteresis
	}
	if cfg.CostNS == 0 {
		cfg.CostNS = def.CostNS
	}
	if cfg.AdjustNS == 0 {
		cfg.AdjustNS = def.AdjustNS
	}
	return &Sampler{
		cfg:         cfg,
		loadPeriod:  cfg.LoadPeriod,
		storePeriod: cfg.StorePeriod,
		loadRem:     cfg.LoadPeriod,
		storeRem:    cfg.StorePeriod,
		nextAdjust:  cfg.AdjustNS,
	}
}

// Feed presents one memory access to the PMU. It returns (sample, true)
// when this access is the one the PMU samples.
func (s *Sampler) Feed(vpn uint64, write bool) (Sample, bool) {
	if write {
		s.storeRem--
		if s.storeRem == 0 {
			s.storeRem = s.storePeriod
			return s.emit(vpn, true), true
		}
		return Sample{}, false
	}
	s.loadRem--
	if s.loadRem == 0 {
		s.loadRem = s.loadPeriod
		return s.emit(vpn, false), true
	}
	return Sample{}, false
}

// FeedFast consumes one access if and only if doing so is provably
// equivalent to Feed followed by MaybeAdjust(now) with neither firing:
// the countdown for the access kind does not reach zero and the period
// controller is not yet due. It returns false — consuming nothing —
// when the caller must take the full Feed/MaybeAdjust path instead, so
// the sample stream and adjustment schedule stay byte-identical
// whichever mix of the two entry points drives the sampler.
func (s *Sampler) FeedFast(write bool, now uint64) bool {
	if now >= s.nextAdjust {
		return false
	}
	if write {
		if s.storeRem <= 1 {
			return false
		}
		s.storeRem--
		return true
	}
	if s.loadRem <= 1 {
		return false
	}
	s.loadRem--
	return true
}

func (s *Sampler) emit(vpn uint64, write bool) Sample {
	s.samples++
	s.winSamples++
	s.spentNS += s.cfg.CostNS
	return Sample{VPN: vpn, Write: write}
}

// MaybeAdjust runs the period controller if at least AdjustNS of virtual
// time elapsed since the previous invocation (§4.1.1). now is the
// simulator's virtual clock.
func (s *Sampler) MaybeAdjust(now uint64) {
	if now < s.nextAdjust {
		return
	}
	elapsed := now - s.lastAdjust
	if s.lastAdjust == 0 && s.winSamples == 0 {
		// Nothing observed yet; just start the window.
		s.lastAdjust = now
		s.nextAdjust = now + s.cfg.AdjustNS
		return
	}
	usage := float64(s.winSamples*s.cfg.CostNS) / float64(elapsed)
	if s.emaValid {
		s.emaCPU = 0.7*s.emaCPU + 0.3*usage
	} else {
		s.emaCPU = usage
		s.emaValid = true
	}
	s.sumCPU += s.emaCPU
	s.nCPU++
	// Hysteresis: only act when the EMA leaves the dead band.
	prev := s.loadPeriod
	switch {
	case s.emaCPU > s.cfg.CPUBudget+s.cfg.Hysteresis:
		s.setLoadPeriod(s.loadPeriod + maxu(s.loadPeriod/4, 50))
		if s.loadPeriod == prev {
			// Wanted to throttle but the period is pinned at MaxPeriod:
			// ksampled is over budget and cannot back off further.
			s.Trace.Emit(obs.EvSamplerOverflow, 0, false, 0, s.loadPeriod)
		}
	case s.emaCPU < s.cfg.CPUBudget-s.cfg.Hysteresis && s.loadPeriod > s.cfg.MinPeriod:
		s.setLoadPeriod(s.loadPeriod - maxu(s.loadPeriod/8, 25))
	}
	if s.loadPeriod != prev {
		s.Trace.Emit(obs.EvSamplerAdjust, 0, false, 0, s.loadPeriod)
	}
	s.adjustments++
	s.winSamples = 0
	s.lastAdjust = now
	s.nextAdjust = now + s.cfg.AdjustNS
}

func (s *Sampler) setLoadPeriod(p uint64) {
	if p < s.cfg.MinPeriod {
		p = s.cfg.MinPeriod
	}
	if p > s.cfg.MaxPeriod {
		p = s.cfg.MaxPeriod
	}
	// Stores scale with the same factor relative to the initial ratio.
	sp := p * (s.cfg.StorePeriod / s.cfg.LoadPeriod)
	if sp == 0 {
		sp = 1
	}
	s.loadRem = retarget(s.loadRem, s.loadPeriod, p)
	s.storeRem = retarget(s.storeRem, s.storePeriod, sp)
	s.loadPeriod = p
	s.storePeriod = sp
}

// retarget translates a skip countdown taken against oldP onto newP,
// preserving the count of accesses already elapsed in the current
// window: the next sample still fires once newP accesses have passed
// since the previous one, or on the very next access when that point
// is already overdue — exactly what an incrementing counter compared
// against the new period would do.
func retarget(rem, oldP, newP uint64) uint64 {
	done := oldP - rem
	if done >= newP {
		return 1
	}
	return newP - done
}

func maxu(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Adjustments returns how often the period controller has run — the
// number of completed measurement windows. Budget assertions over
// AvgCPUUsage are only meaningful once enough windows have elapsed for
// the throttling transient to decay (the paper's controller, too, needs
// a few 2ms windows to back roms off from 200 to 1400).
func (s *Sampler) Adjustments() int { return s.adjustments }

// LoadPeriod returns the current load-miss sampling period.
func (s *Sampler) LoadPeriod() uint64 { return s.loadPeriod }

// StorePeriod returns the current store sampling period.
func (s *Sampler) StorePeriod() uint64 { return s.storePeriod }

// Samples returns the total number of samples emitted.
func (s *Sampler) Samples() uint64 { return s.samples }

// SpentNS returns the total virtual CPU time consumed processing samples.
func (s *Sampler) SpentNS() uint64 { return s.spentNS }

// CPUUsage returns the latest EMA of ksampled's CPU usage (fraction of
// one core).
func (s *Sampler) CPUUsage() float64 { return s.emaCPU }

// AvgCPUUsage returns the run-average of the usage EMA.
func (s *Sampler) AvgCPUUsage() float64 {
	if s.nCPU == 0 {
		return 0
	}
	return s.sumCPU / float64(s.nCPU)
}
