// Package tenant multiplexes N contending processes onto one simulated
// machine: each tenant owns a vm.AddressSpace and an independent
// workload, all sharing the machine's two tiers and its single policy
// daemon. A deterministic weighted scheduler interleaves the tenants'
// access streams in fixed-size slices; a lifecycle plan spawns and
// exits tenants and grows and shrinks their footprints mid-run; and a
// QoS arbiter below the policy layer enforces per-tenant fast-tier
// floors and weighted promotion shares (DESIGN.md §10).
//
// Determinism is by construction, not by locking: exactly one
// goroutine — the scheduler or the currently scheduled tenant — is
// runnable at any instant, with the baton handed over channels, so the
// interleaving is a pure function of the machine seed and the config.
// The same seed produces byte-identical event traces sequential or
// under a parallel matrix, including under the race detector.
package tenant

import (
	"fmt"
	"sort"

	"memtis/internal/obs"
	"memtis/internal/policy"
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// Spec describes one tenant: identity, workload, QoS knobs and its
// lifecycle-churn plan. Churn points are fractions of the machine's
// global access budget, so a plan scales with run length.
type Spec struct {
	// Name labels the tenant's counters (`tenant/<name>/...`) and
	// result row. Empty defaults to "t<index>".
	Name string
	// Weight is the tenant's share weight: it biases the scheduler's
	// slice draw and bounds the tenant's fraction of promotions while
	// the fast tier is contended. Zero means 1.
	Weight uint64
	// FloorBytes is the guaranteed fast-tier floor. Demotions (and
	// collapses into the capacity tier) that would push the tenant's
	// fast footprint below min(floor, resident) are vetoed. Floors
	// are clamped proportionally if their sum exceeds what the fast
	// tier can honour.
	FloorBytes uint64
	// Workload drives the tenant's address space. Any sim.Workload
	// works, including scenario runners; instances may be shared
	// across tenants (workloads keep per-Run state only).
	Workload sim.Workload
	// Admit, when set, is this tenant's admission hook, layered below
	// the policy's own AdmissionFunc: it is consulted (with
	// sync=false — the arbiter cannot tell) before floor and share
	// arbitration, and a false return vetoes the migration.
	Admit policy.AdmissionFunc

	// SpawnFrac > 0 delays the tenant's first slice until that
	// fraction of the budget has elapsed; 0 spawns at start.
	SpawnFrac float64
	// ExitFrac > 0 kills the tenant at that point and frees its whole
	// address space; 0 means the tenant runs to the end. At least one
	// tenant per config must be immortal.
	ExitFrac float64
	// GrowBytes > 0 reserves and write-touches an extra region at
	// GrowFrac (the touches count against the global budget);
	// ShrinkFrac > 0 frees that region again.
	GrowBytes  uint64
	GrowFrac   float64
	ShrinkFrac float64
}

// ChurnKind classifies one lifecycle event.
type ChurnKind uint8

// Churn event kinds, in intra-threshold application order.
const (
	ChurnSpawn ChurnKind = iota
	ChurnGrow
	ChurnShrink
	ChurnExit
)

// String names the kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnSpawn:
		return "spawn"
	case ChurnGrow:
		return "grow"
	case ChurnShrink:
		return "shrink"
	case ChurnExit:
		return "exit"
	}
	return "unknown"
}

// Bounds and defaults.
const (
	// MaxTenants bounds a config (the conformance sweep's largest
	// point is 1024; the bound leaves headroom without letting a
	// fuzzer allocate unbounded spaces).
	MaxTenants = 4096
	// DefaultSlice is the scheduler quantum in accesses — roughly
	// half a millisecond of simulated time at typical access costs,
	// comparable to an OS scheduler's minimum granularity. Smaller
	// quanta interleave tenants more finely but cold-start the
	// (simulated) TLB and the host caches on every switch; 8k keeps
	// the 64-tenant per-access cost within ~1.1x of single-tenant.
	DefaultSlice = 8192
	maxWeight    = 1_000_000
	// shareSlackUnits is the arbiter's burst allowance above a
	// tenant's exact proportional share of contended promotions: a
	// few huge pages' worth, so coarse-grained (2MB) promotions don't
	// deadlock the share accounting at low totals.
	shareSlackUnits = 2 * tier.SubPages
)

// Config is a multi-tenant run plan.
type Config struct {
	Tenants []Spec
	// Slice is the scheduler quantum in accesses (default
	// DefaultSlice). Large tenant counts want a smaller slice so
	// every tenant runs within a bounded budget.
	Slice uint64
	// OnChurn, when set, runs after every applied churn event —
	// the churn property test audits the machine here.
	OnChurn func(kind ChurnKind, tenant int)
}

// Validate checks the config bounds.
func (c *Config) Validate() error {
	if len(c.Tenants) == 0 {
		return fmt.Errorf("tenant: no tenants")
	}
	if len(c.Tenants) > MaxTenants {
		return fmt.Errorf("tenant: %d tenants exceeds the %d bound", len(c.Tenants), MaxTenants)
	}
	immortal := false
	seen := make(map[string]bool, len(c.Tenants))
	for i := range c.Tenants {
		t := &c.Tenants[i]
		if t.Workload == nil {
			return fmt.Errorf("tenant %d: nil workload", i)
		}
		if t.Weight > maxWeight {
			return fmt.Errorf("tenant %d: weight %d exceeds the %d bound", i, t.Weight, maxWeight)
		}
		for _, f := range [...]struct {
			name string
			v    float64
		}{{"SpawnFrac", t.SpawnFrac}, {"ExitFrac", t.ExitFrac}, {"GrowFrac", t.GrowFrac}, {"ShrinkFrac", t.ShrinkFrac}} {
			if f.v < 0 || f.v > 1 {
				return fmt.Errorf("tenant %d: %s %v outside [0,1]", i, f.name, f.v)
			}
		}
		if t.ExitFrac > 0 && t.SpawnFrac >= t.ExitFrac {
			return fmt.Errorf("tenant %d: spawns at %v, at or after its exit %v", i, t.SpawnFrac, t.ExitFrac)
		}
		if t.GrowBytes > 0 && t.ShrinkFrac > 0 && t.ShrinkFrac <= t.GrowFrac {
			return fmt.Errorf("tenant %d: shrinks at %v, at or before its grow %v", i, t.ShrinkFrac, t.GrowFrac)
		}
		if t.ExitFrac == 0 {
			immortal = true
		}
		name := tenantName(t, i)
		if seen[name] {
			return fmt.Errorf("tenant %d: duplicate name %q", i, name)
		}
		seen[name] = true
	}
	if !immortal {
		return fmt.Errorf("tenant: every tenant exits; at least one must run to the end")
	}
	return nil
}

func tenantName(t *Spec, i int) string {
	if t.Name != "" {
		return t.Name
	}
	return fmt.Sprintf("t%d", i)
}

// Runner drives a Config as a sim.Workload. It is immutable after New
// — all per-run state lives in the run struct — so one Runner is safe
// to share across parallel matrix cells, like scenario runners.
type Runner struct {
	cfg Config
}

// New validates the config and builds a Runner.
func New(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Slice == 0 {
		cfg.Slice = DefaultSlice
	}
	return &Runner{cfg: cfg}, nil
}

// Name implements sim.Workload.
func (r *Runner) Name() string { return "tenants" }

// Run implements sim.Workload: it interleaves the tenants' workloads
// on m until exactly `accesses` accesses have been issued machine-wide
// (every tenant's workload is given the global budget as its nominal
// target; the scheduler preempts and finally kills them at slice and
// budget boundaries, so the total always lands exactly). The machine
// must be fresh: single-space, no other AccessObserver, not previously
// run.
func (r *Runner) Run(m *sim.Machine, accesses uint64) {
	st := newRun(r, m, accesses)
	defer st.finalize()
	defer st.killAll()
	for {
		st.fireChurn()
		if m.TotalAccesses() >= st.target {
			return
		}
		p := st.pick()
		if p == nil {
			return
		}
		st.schedule(p)
	}
}

// killedPanic unwinds a tenant goroutine the scheduler terminates
// (budget exhausted or exit churn); procMain recovers exactly this
// type and re-raises anything else.
type killedPanic struct{}

// proc is one tenant's execution state. The resume channel is the
// scheduling baton: the goroutine blocks on it between slices.
type proc struct {
	id       int
	spec     *Spec
	resume   chan struct{}
	done     chan struct{}
	started  bool
	finished bool
	killed   bool
	live     bool
}

type churnEvent struct {
	at     uint64
	tenant int
	kind   ChurnKind
}

// run is the per-Run mutable state: scheduler, churn plan and arbiter.
type run struct {
	m      *sim.Machine
	cfg    *Config
	target uint64
	slice  uint64

	procs    []*proc
	names    []string
	yield    chan *proc
	active   *proc
	sliceEnd uint64

	events []churnEvent
	nextEv int
	grown  []vm.Region

	arb *arbiter

	rng uint64
}

func newRun(r *Runner, m *sim.Machine, accesses uint64) *run {
	n := len(r.cfg.Tenants)
	st := &run{
		m:      m,
		cfg:    &r.cfg,
		target: accesses,
		slice:  r.cfg.Slice,
		procs:  make([]*proc, n),
		names:  make([]string, n),
		yield:  make(chan *proc),
		grown:  make([]vm.Region, n),
		rng:    uint64(m.Cfg.Seed) ^ 0x74_65_6e_61_6e_74, // "tenant"
	}
	for i := range r.cfg.Tenants {
		st.names[i] = tenantName(&r.cfg.Tenants[i], i)
	}
	st.arb = newArbiter(st)
	// Install the hooks on the root space first: AddSpace copies them
	// onto every additional space.
	m.AS.MigrateVeto = st.arb.veto
	m.AccessObserver = st.observe
	// Tenant i owns space i; tenant 0 keeps the root space, so a
	// one-tenant run stays on the single-space fast path.
	for i := 1; i < n; i++ {
		if id := m.AddSpace(st.names[i]); id != i {
			panic("tenant: machine not fresh (spaces already added)")
		}
	}
	if n > 1 {
		m.SetSpaceLabel(0, st.names[0])
	}
	for i := range r.cfg.Tenants {
		t := &r.cfg.Tenants[i]
		p := &proc{
			id:     i,
			spec:   t,
			resume: make(chan struct{}),
			done:   make(chan struct{}),
		}
		st.procs[i] = p
		if t.SpawnFrac <= 0 {
			p.live = true
			st.arb.addLive(i)
			m.Tracer().Emit(obs.EvTenantSpawn, uint64(i), false, 0, 0)
		} else {
			st.events = append(st.events, churnEvent{st.frac(t.SpawnFrac), i, ChurnSpawn})
		}
		if t.GrowBytes > 0 {
			st.events = append(st.events, churnEvent{st.frac(t.GrowFrac), i, ChurnGrow})
			if t.ShrinkFrac > 0 {
				st.events = append(st.events, churnEvent{st.frac(t.ShrinkFrac), i, ChurnShrink})
			}
		}
		if t.ExitFrac > 0 {
			st.events = append(st.events, churnEvent{st.frac(t.ExitFrac), i, ChurnExit})
		}
	}
	sort.SliceStable(st.events, func(a, b int) bool {
		ea, eb := st.events[a], st.events[b]
		if ea.at != eb.at {
			return ea.at < eb.at
		}
		if ea.kind != eb.kind {
			return ea.kind < eb.kind
		}
		return ea.tenant < eb.tenant
	})
	return st
}

func (st *run) frac(f float64) uint64 { return uint64(f * float64(st.target)) }

// rand is a SplitMix64 step — the scheduler's only randomness, fully
// determined by the machine seed.
func (st *run) rand() uint64 {
	st.rng += 0x9e3779b97f4a7c15
	z := st.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// fireChurn applies every lifecycle event whose threshold has passed.
func (st *run) fireChurn() {
	for st.nextEv < len(st.events) && st.events[st.nextEv].at <= st.m.TotalAccesses() {
		ev := st.events[st.nextEv]
		st.nextEv++
		st.apply(ev)
	}
}

func (st *run) apply(ev churnEvent) {
	p := st.procs[ev.tenant]
	switch ev.kind {
	case ChurnSpawn:
		p.live = true
		st.arb.addLive(ev.tenant)
		st.m.Tracer().Emit(obs.EvTenantSpawn, uint64(ev.tenant), false, 0, 0)
	case ChurnExit:
		st.exit(p)
	case ChurnGrow:
		st.grow(p)
	case ChurnShrink:
		st.shrink(p)
	}
	st.arb.checkFloors()
	if st.cfg.OnChurn != nil {
		st.cfg.OnChurn(ev.kind, ev.tenant)
	}
}

// exit kills the tenant's goroutine (it is parked or unstarted — the
// scheduler holds the baton) and frees its entire address space.
func (st *run) exit(p *proc) {
	if !p.live {
		return
	}
	st.kill(p)
	p.live = false
	st.arb.removeLive(p.id)
	as := st.m.Space(p.id)
	released := as.ResidentUnits() * tier.BasePageSize
	st.m.UseSpace(p.id)
	st.m.FreeRegion(vm.Region{BaseVPN: 0, Pages: as.ReservedPages()})
	st.m.Tracer().Emit(obs.EvTenantExit, uint64(p.id), false, released, 0)
}

// grow reserves the tenant's churn region and write-touches it
// (scheduler-issued accesses: the observer sees no active proc, so
// they never park; they do count against the global budget).
func (st *run) grow(p *proc) {
	if !p.live || p.spec.GrowBytes == 0 {
		return
	}
	st.m.UseSpace(p.id)
	reg := st.m.Reserve(p.spec.GrowBytes)
	st.grown[p.id] = reg
	for vpn := reg.BaseVPN; vpn < reg.BaseVPN+reg.Pages && st.m.TotalAccesses() < st.target; vpn++ {
		st.m.Access(vpn, true)
	}
}

func (st *run) shrink(p *proc) {
	if !p.live || st.grown[p.id].Pages == 0 {
		return
	}
	st.m.UseSpace(p.id)
	st.m.FreeRegion(st.grown[p.id])
	st.grown[p.id] = vm.Region{}
}

// pick draws the next tenant to run, weighted by share weight among
// live, unfinished tenants; nil when none are runnable.
func (st *run) pick() *proc {
	var total uint64
	for i, p := range st.procs {
		if p.live && !p.finished {
			total += st.arb.weight(i)
		}
	}
	if total == 0 {
		return nil
	}
	x := st.rand() % total
	for i, p := range st.procs {
		if p.live && !p.finished {
			w := st.arb.weight(i)
			if x < w {
				return p
			}
			x -= w
		}
	}
	return nil
}

// schedule hands the baton to p for one slice, bounded by the next
// churn threshold and the global budget, and takes it back when p
// parks (observe) or its workload returns.
func (st *run) schedule(p *proc) {
	now := st.m.TotalAccesses()
	end := now + st.slice
	if st.nextEv < len(st.events) && st.events[st.nextEv].at < end {
		end = st.events[st.nextEv].at
	}
	if st.target < end {
		end = st.target
	}
	st.sliceEnd = end
	st.m.UseSpace(p.id)
	st.m.Tracer().Emit(obs.EvTenantSwitch, uint64(p.id), false, 0, end-now)
	st.active = p
	if !p.started {
		p.started = true
		go st.procMain(p)
	}
	p.resume <- struct{}{}
	select {
	case <-st.yield:
	case <-p.done:
		p.finished = true
	}
	st.active = nil
	st.arb.checkFloor(p.id)
}

// observe is the machine's AccessObserver: it preempts the active
// tenant once its slice is used up. It runs on the tenant's goroutine;
// the yield send blocks until the scheduler takes the baton back, and
// the resume receive blocks until the tenant is scheduled again.
func (st *run) observe(vpn uint64, write bool, now uint64) {
	p := st.active
	if p == nil || st.m.TotalAccesses() < st.sliceEnd {
		return
	}
	st.yield <- p
	<-p.resume
	if p.killed {
		panic(killedPanic{})
	}
}

// procMain is one tenant's goroutine: wait for the first slice, run
// the workload against the (already switched) machine, and swallow
// only the scheduler's kill panic.
func (st *run) procMain(p *proc) {
	defer close(p.done)
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedPanic); !ok {
				panic(r)
			}
		}
	}()
	<-p.resume
	if p.killed {
		return
	}
	p.spec.Workload.Run(st.m, st.target)
}

// kill terminates p's goroutine if it is running (parked — the
// scheduler holds the baton whenever kill runs).
func (st *run) kill(p *proc) {
	if p.started && !p.finished {
		p.killed = true
		p.resume <- struct{}{}
		<-p.done
	}
	p.finished = true
}

func (st *run) killAll() {
	for _, p := range st.procs {
		st.kill(p)
	}
}

// finalize publishes the end-of-run per-tenant gauges and detaches the
// scheduler from the machine.
func (st *run) finalize() {
	st.arb.finalize()
	st.m.AccessObserver = nil
	st.active = nil
}
