package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sample(s Source, n int) map[uint64]int {
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	return counts
}

func TestZipfInRange(t *testing.T) {
	prop := func(seed int64, nRaw uint16, sRaw uint8) bool {
		n := uint64(nRaw)%1000 + 1
		s := 0.2 + float64(sRaw%30)/10 // 0.2 .. 3.1
		z := NewZipf(rand.New(rand.NewSource(seed)), s, n)
		for i := 0; i < 200; i++ {
			if v := z.Next(); v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewMatchesTheory(t *testing.T) {
	// For s=0.99, n=1000, the YCSB-standard skew: P(0) ~ 1/H where
	// H = sum 1/(k+1)^s ~ 7.52, so the top item draws ~13% of samples.
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 0.99, 1000)
	counts := sample(z, 200_000)
	var H float64
	for k := 1; k <= 1000; k++ {
		H += 1 / math.Pow(float64(k), 0.99)
	}
	want := 1 / H
	got := float64(counts[0]) / 200_000
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("P(0) = %.4f, theory %.4f", got, want)
	}
	// Monotone-ish decrease over decades.
	if counts[0] < counts[10] || counts[10] < counts[500] {
		t.Fatalf("not decreasing: %d %d %d", counts[0], counts[10], counts[500])
	}
}

func TestZipfHighSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := NewZipf(rng, 2.0, 10_000)
	counts := sample(z, 100_000)
	// s=2: P(0) = 1/zeta-ish over bounded n: top item dominates.
	if float64(counts[0])/100_000 < 0.5 {
		t.Fatalf("s=2 top share too low: %d", counts[0])
	}
}

func TestZipfDegenerate(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(3)), 0.99, 1)
	for i := 0; i < 10; i++ {
		if z.Next() != 0 {
			t.Fatal("n=1 must always return 0")
		}
	}
	if z.N() != 1 {
		t.Fatal("N")
	}
	// Non-positive s is clamped, not a crash.
	z2 := NewZipf(rand.New(rand.NewSource(4)), -1, 100)
	if v := z2.Next(); v >= 100 {
		t.Fatal("clamped s out of range")
	}
}

func TestZipfNearOne(t *testing.T) {
	// s exactly 1 exercises the log branch.
	rng := rand.New(rand.NewSource(5))
	z := NewZipf(rng, 1.0, 100)
	counts := sample(z, 50_000)
	if counts[0] <= counts[50] {
		t.Fatal("s=1 skew missing")
	}
}

func TestUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	u := NewUniform(rng, 10)
	counts := sample(u, 100_000)
	for k := uint64(0); k < 10; k++ {
		f := float64(counts[k]) / 100_000
		if f < 0.08 || f > 0.12 {
			t.Fatalf("uniform bucket %d: %.3f", k, f)
		}
	}
	if NewUniform(rng, 0).N() != 1 {
		t.Fatal("degenerate n")
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential(3)
	got := []uint64{s.Next(), s.Next(), s.Next(), s.Next()}
	want := []uint64{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep: %v", got)
		}
	}
}

func TestScrambledPreservesMassMovesIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := NewZipf(rng, 1.2, 1000)
	sc := NewScrambled(NewZipf(rand.New(rand.NewSource(7)), 1.2, 1000))
	plain := sample(z, 100_000)
	scr := sample(sc, 100_000)
	// The scrambled hot index is not 0 anymore...
	top := uint64(0)
	for k, c := range scr {
		if c > scr[top] {
			top = k
		}
	}
	if top == 0 {
		t.Fatal("scramble left the hot index at 0")
	}
	// ...but the top mass is preserved.
	if d := float64(scr[top]) / float64(plain[0]); d < 0.9 || d > 1.1 {
		t.Fatalf("scramble changed mass: %.3f", d)
	}
	for k := range scr {
		if k >= 1000 {
			t.Fatal("scramble out of range")
		}
	}
}
