// Package damon reimplements the essentials of Linux's DAMON
// (Data Access MONitor) region-based access tracking, which the paper's
// Figure 1 uses to demonstrate the trade-off between scanning
// granularity, scan interval and accuracy. A monitor divides the target
// address range into regions, checks one sampled page per region per
// sampling interval (the accessed-bit check), aggregates the per-region
// access counts, and adaptively splits/merges regions between a
// configured minimum and maximum count.
package damon

import (
	"math/rand"
	"sort"
)

// checkCostNS models the cost of one accessed-bit check (rmap walk plus
// PTE inspection, ~360ns raw), scaled 1/5 with the simulator's sampling
// intervals. Large region tables pay a mild superlinear penalty (cache
// misses walking the table), which is what pushes the paper's
// 5ms-10K-20K configuration to ~73% of a core.
func checkCostNS(regions int) float64 {
	lg := 0.0
	for n := regions; n > 1; n >>= 1 {
		lg++
	}
	return 27 * (1 + lg/8)
}

// Config mirrors DAMON's attrs: sampling interval, aggregation factor
// and region-count bounds. The paper's Figure 1 configurations are
// (5ms, 10, 1000), (500ms, 10000, 20000) and (5ms, 10000, 20000).
type Config struct {
	SampleIntervalNS uint64 // accessed-bit check interval
	AggrSamples      int    // samplings per aggregation window (DAMON default 20)
	MinRegions       int
	MaxRegions       int
	Seed             int64
}

// Region is one monitored address range with its aggregated access
// count ("nr_accesses" in DAMON terms).
type Region struct {
	Start, End uint64 // base-page numbers, [Start, End)
	NrAccesses int    // accessed-bit hits in the last aggregation window

	sampled uint64 // page checked this sampling interval
	hit     bool
}

// Snapshot is one aggregation window's result.
type Snapshot struct {
	TimeNS  uint64
	Regions []Region
}

// Monitor consumes the access stream of a simulation and produces
// region snapshots. Costs are modelled, not measured.
type Monitor struct {
	cfg     Config
	rng     *rand.Rand
	regions []Region
	start   uint64
	end     uint64

	nextSample uint64
	samplings  int

	snapshots []Snapshot
	checkNS   float64 // accumulated modelled CPU time
	windowNS  uint64  // total monitored virtual time

	mergeThr int // adaptive merge-similarity threshold
}

// NewMonitor creates a monitor over the page range [start, end).
func NewMonitor(cfg Config, start, end uint64) *Monitor {
	if cfg.AggrSamples <= 0 {
		cfg.AggrSamples = 20
	}
	if cfg.MinRegions <= 0 {
		cfg.MinRegions = 10
	}
	if cfg.MaxRegions < cfg.MinRegions {
		cfg.MaxRegions = cfg.MinRegions
	}
	m := &Monitor{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed + 1)),
		start:    start,
		end:      end,
		mergeThr: cfg.AggrSamples / 10,
	}
	// Initial split into MinRegions equal regions.
	n := uint64(cfg.MinRegions)
	span := (end - start) / n
	if span == 0 {
		span = 1
	}
	for i := uint64(0); i < n; i++ {
		s := start + i*span
		e := s + span
		if i == n-1 {
			e = end
		}
		if s >= e {
			break
		}
		m.regions = append(m.regions, Region{Start: s, End: e})
	}
	m.pickSampledPages()
	return m
}

func (m *Monitor) pickSampledPages() {
	for i := range m.regions {
		r := &m.regions[i]
		r.sampled = r.Start + uint64(m.rng.Int63n(int64(r.End-r.Start)))
		r.hit = false
	}
}

// regionIndex locates the region containing vpn via binary search.
func (m *Monitor) regionIndex(vpn uint64) int {
	i := sort.Search(len(m.regions), func(i int) bool { return m.regions[i].End > vpn })
	if i < len(m.regions) && vpn >= m.regions[i].Start {
		return i
	}
	return -1
}

// Observe feeds one application access at virtual time now. DAMON only
// "sees" the access if it touches the region's currently sampled page —
// exactly the accessed-bit check semantics.
func (m *Monitor) Observe(vpn uint64, now uint64) {
	for now >= m.nextSample {
		m.endSampling(m.nextSample)
		m.nextSample += m.cfg.SampleIntervalNS
	}
	if i := m.regionIndex(vpn); i >= 0 && m.regions[i].sampled == vpn {
		m.regions[i].hit = true
	}
}

// endSampling closes one sampling interval: accessed bits fold into the
// per-region counters, and every AggrSamples intervals a snapshot is
// taken and regions are adapted.
func (m *Monitor) endSampling(now uint64) {
	m.checkNS += float64(len(m.regions)) * checkCostNS(len(m.regions))
	m.windowNS += m.cfg.SampleIntervalNS
	for i := range m.regions {
		if m.regions[i].hit {
			m.regions[i].NrAccesses++
		}
	}
	m.samplings++
	if m.samplings >= m.cfg.AggrSamples {
		m.aggregate(now)
		m.samplings = 0
	}
	m.pickSampledPages()
}

func (m *Monitor) aggregate(now uint64) {
	snap := Snapshot{TimeNS: now, Regions: append([]Region(nil), m.regions...)}
	m.snapshots = append(m.snapshots, snap)
	m.adaptRegions()
	// Adapt the merge threshold toward a healthy region population,
	// as DAMON's adaptive-regions logic does: merging everything away
	// loses spatial resolution, exceeding the max loses the bound.
	switch {
	case len(m.regions) < m.cfg.MaxRegions/2 && m.mergeThr > 0:
		m.mergeThr--
	case len(m.regions) >= m.cfg.MaxRegions*9/10:
		m.mergeThr++
	}
	for i := range m.regions {
		m.regions[i].NrAccesses = 0
	}
}

// adaptRegions merges adjacent regions with similar access counts and
// splits the rest, keeping the region count within bounds — a compact
// version of DAMON's adaptive regions algorithm.
func (m *Monitor) adaptRegions() {
	// Merge pass: only strictly similar neighbours, never dropping the
	// region count below the configured minimum.
	merged := m.regions[:0:0]
	remaining := len(m.regions)
	for _, r := range m.regions {
		n := len(merged)
		remaining--
		if n > 0 && merged[n-1].End == r.Start &&
			similar(merged[n-1].NrAccesses, r.NrAccesses, m.mergeThr) &&
			n+remaining+1 > m.mergeFloor() {
			merged[n-1].End = r.End
			merged[n-1].NrAccesses = (merged[n-1].NrAccesses + r.NrAccesses) / 2
			continue
		}
		merged = append(merged, r)
	}
	// Split pass: split regions in two while under the max, so the
	// region population keeps probing for structure.
	out := make([]Region, 0, len(merged)*2)
	for i, r := range merged {
		rest := len(merged) - i - 1
		if len(out)+rest+2 <= m.cfg.MaxRegions && r.End-r.Start >= 2 {
			mid := r.Start + 1 + uint64(m.rng.Int63n(int64(r.End-r.Start-1)))
			out = append(out,
				Region{Start: r.Start, End: mid, NrAccesses: r.NrAccesses},
				Region{Start: mid, End: r.End, NrAccesses: r.NrAccesses})
		} else {
			out = append(out, r)
		}
	}
	m.regions = out
}

// mergeFloor is the minimum region population the merge pass preserves.
// Keeping it at half the maximum mirrors DAMON's behaviour of hovering
// between its bounds rather than collapsing to the minimum (equal-count
// split halves would otherwise re-merge instantly every aggregation).
func (m *Monitor) mergeFloor() int {
	f := m.cfg.MaxRegions / 2
	if f < m.cfg.MinRegions {
		f = m.cfg.MinRegions
	}
	return f
}

// similar reports whether two aggregation counts are within the merge
// threshold.
func similar(a, b, thr int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= thr
}

// Finish flushes a final snapshot at time now.
func (m *Monitor) Finish(now uint64) {
	m.endSampling(now)
	if m.samplings != 0 {
		m.aggregate(now)
		m.samplings = 0
	}
}

// Snapshots returns all aggregation-window snapshots.
func (m *Monitor) Snapshots() []Snapshot { return m.snapshots }

// CPUOverhead returns the modelled monitor CPU usage as a fraction of
// one core over the monitored interval.
func (m *Monitor) CPUOverhead() float64 {
	if m.windowNS == 0 {
		return 0
	}
	return m.checkNS / float64(m.windowNS)
}

// Regions returns the current number of regions.
func (m *Monitor) Regions() int { return len(m.regions) }

// hotOverlap scores one (estimate, truth) pair as captured volume: the
// true access volume of the estimator's top-decile pages divided by the
// volume of the ideal top decile. Ranking ties among statistically
// equal pages do not hurt the score; stale or spatially blurred
// estimates do.
func hotOverlap(est map[uint64]float64, truth map[uint64]uint64) float64 {
	if len(truth) == 0 {
		return 0
	}
	type pv struct {
		p uint64
		v float64
	}
	var tr, es []pv
	for p, c := range truth {
		tr = append(tr, pv{p, float64(c)})
		es = append(es, pv{p, est[p]})
	}
	sort.Slice(tr, func(i, j int) bool { return tr[i].v > tr[j].v })
	sort.Slice(es, func(i, j int) bool { return es[i].v > es[j].v })
	k := len(tr) / 10
	if k < 1 {
		k = 1
	}
	var idealVol, capturedVol float64
	for i := 0; i < k; i++ {
		idealVol += tr[i].v
		capturedVol += float64(truth[es[i].p])
	}
	if idealVol == 0 {
		return 0
	}
	return capturedVol / idealVol
}

// estimateAt renders the snapshot covering time t (the latest snapshot
// at or before t, else the first) as per-page frequency estimates.
func estimateAt(snaps []Snapshot, t uint64) map[uint64]float64 {
	if len(snaps) == 0 {
		return nil
	}
	chosen := snaps[0]
	for _, s := range snaps {
		if s.TimeNS <= t {
			chosen = s
		} else {
			break
		}
	}
	est := make(map[uint64]float64)
	for _, r := range chosen.Regions {
		if r.End <= r.Start {
			continue
		}
		// Per-page frequency: region hits spread over the region span,
		// so coarse regions blur spatially.
		f := float64(r.NrAccesses) / float64(r.End-r.Start)
		for p := r.Start; p < r.End; p++ {
			est[p] += f
		}
	}
	return est
}

// Accuracy compares the monitor's view against a per-time-window ground
// truth of page access counts: for each truth window it scores the
// hottest-decile overlap of the snapshot in effect at that window's
// midpoint, and averages. Coarse regions blur space; long intervals
// blur time; both depress the score — the Figure 1 trade-off.
func Accuracy(snaps []Snapshot, windows []map[uint64]uint64, windowNS uint64) float64 {
	if len(snaps) == 0 || len(windows) == 0 {
		return 0
	}
	var sum float64
	var n int
	for i, truth := range windows {
		if len(truth) == 0 {
			continue
		}
		mid := uint64(i)*windowNS + windowNS/2
		sum += hotOverlap(estimateAt(snaps, mid), truth)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
