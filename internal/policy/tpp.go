package policy

import (
	"memtis/internal/sim"
	"memtis/internal/tier"
	"memtis/internal/vm"
)

// TPP models Meta's Transparent Page Placement (ASPLOS'23): hint-fault
// tracking with a static two-access promotion threshold (a page is
// promoted, on the critical path, when its hint faults arrive closer
// together than the LRU window — the "accessed twice" check on the
// kernel's extended LRU), recency-based background demotion driven by
// active/inactive list aging, and eager head-room maintenance so new
// allocations land in the fast tier. Its 2Q classification is coarse:
// everything faulting twice within the window counts as hot, so the
// identified hot set routinely exceeds the fast tier (§6.2.3) and pages
// thrash between the tiers.
type TPP struct {
	Base
	rearmer Rearmer
	hand    int
	reserve float64
}

var _ sim.Policy = (*TPP)(nil)

// NewTPP returns the TPP baseline.
func NewTPP() *TPP {
	return &TPP{reserve: 0.03}
}

// Name implements sim.Policy.
func (t *TPP) Name() string { return "tpp" }

// OnAccess implements sim.Policy. A page is promoted when it hint-
// faults in two consecutive scan generations — the kernel's "accessed
// twice on the LRU" static threshold.
func (t *TPP) OnAccess(tr vm.TouchResult, vpn uint64, write bool) uint64 {
	pg := tr.Page
	if tr.Faulted {
		t.Register(pg)
		return 0
	}
	pg.PFlags |= flagAccessed
	if pg.PFlags&flagArmed == 0 {
		return 0
	}
	pg.PFlags &^= flagArmed
	epoch := t.rearmer.SweepEpoch + 1 // 0 is "never faulted"
	last := pg.P0
	pg.P0 = epoch
	stall := uint64(HintFaultNS)
	if pg.Tier != tier.FastTier && last+2 > epoch && last != 0 {
		// Second access within two scan generations.
		ns, _ := t.MigrateSync(pg, t.M.PromoteTarget(pg.Tier))
		stall += ns
	}
	return stall
}

// Tick implements sim.Policy.
func (t *TPP) Tick(now uint64) {
	n := t.rearmer.Advance(&t.Base, now)
	t.BgNS += uint64(n) * ScanPageNS
	t.demote()
}

// demote ages the fast tier's LRU clock-style, demoting pages whose
// accessed bit is clear until the allocation head-room is restored.
func (t *TPP) demote() {
	reserve := t.HeadroomFrames(t.reserve)
	if t.M.Fast.FreeFrames() >= reserve || len(t.Registry) == 0 {
		return
	}
	scan := len(t.Registry) / 3
	if scan < 64 {
		scan = 64
	}
	for i := 0; i < scan && t.M.Fast.FreeFrames() < reserve; i++ {
		if t.hand >= len(t.Registry) {
			t.hand = 0
			t.Compact()
			if len(t.Registry) == 0 {
				return
			}
		}
		pg := t.Registry[t.hand]
		t.hand++
		if pg.Dead() || pg.Tier != tier.FastTier {
			continue
		}
		if pg.PFlags&flagAccessed != 0 {
			pg.PFlags &^= flagAccessed
			continue
		}
		t.MigrateAsync(pg, t.M.DemoteTarget(pg.Tier))
	}
	t.BgNS += uint64(scan) * 25
}
