package tenant_test

import (
	"fmt"
	"testing"

	"memtis/internal/bench"
	"memtis/internal/obs"
	"memtis/internal/sim"
	"memtis/internal/tenant"
	"memtis/internal/tier"
	"memtis/internal/workload"
)

// synth is a minimal deterministic workload: reserve a region, then
// sweep it with writes until the machine budget is exhausted (under
// the tenant scheduler the per-space count never reaches the global
// budget, so the scheduler's kill is what ends it — exactly the
// contract real workloads follow).
type synth struct {
	name  string
	bytes uint64
}

func (s *synth) Name() string { return s.name }

func (s *synth) Run(m *sim.Machine, accesses uint64) {
	r := m.Reserve(s.bytes)
	i := uint64(0)
	for m.Accesses() < accesses {
		m.Access(r.BaseVPN+i%r.Pages, i%4 != 3)
		i++
	}
}

func smallConfig(seed int64) sim.Config {
	return sim.Config{
		FastBytes: 8 * tier.HugePageSize,
		CapBytes:  64 * tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      seed,
	}
}

// configFor sizes a machine for the combined RSS of a tenant mix, the
// same 1:3 shape the workload tests use.
func configFor(seed int64, rss uint64) sim.Config {
	return sim.Config{
		FastBytes: rss/3 + 2*tier.HugePageSize,
		CapBytes:  rss + rss/4 + 16*tier.HugePageSize,
		CapKind:   tier.NVM,
		THP:       true,
		Seed:      seed,
	}
}

func TestValidate(t *testing.T) {
	w := &synth{name: "w", bytes: tier.HugePageSize}
	cases := []struct {
		name string
		cfg  tenant.Config
	}{
		{"empty", tenant.Config{}},
		{"nil workload", tenant.Config{Tenants: []tenant.Spec{{}}}},
		{"all exit", tenant.Config{Tenants: []tenant.Spec{{Workload: w, ExitFrac: 0.5}}}},
		{"spawn after exit", tenant.Config{Tenants: []tenant.Spec{
			{Workload: w},
			{Workload: w, SpawnFrac: 0.6, ExitFrac: 0.5},
		}}},
		{"shrink before grow", tenant.Config{Tenants: []tenant.Spec{
			{Workload: w, GrowBytes: tier.HugePageSize, GrowFrac: 0.5, ShrinkFrac: 0.2},
		}}},
		{"dup names", tenant.Config{Tenants: []tenant.Spec{
			{Name: "a", Workload: w}, {Name: "a", Workload: w},
		}}},
		{"frac out of range", tenant.Config{Tenants: []tenant.Spec{
			{Workload: w, SpawnFrac: 1.5},
		}}},
	}
	for _, c := range cases {
		if _, err := tenant.New(c.cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", c.name)
		}
	}
}

func TestTwoTenantsExactBudget(t *testing.T) {
	r, err := tenant.New(tenant.Config{Tenants: []tenant.Spec{
		{Name: "a", Weight: 3, Workload: &synth{name: "a", bytes: 4 * tier.HugePageSize}},
		{Name: "b", Weight: 1, Workload: &synth{name: "b", bytes: 4 * tier.HugePageSize}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(smallConfig(7), bench.NewPolicy("memtis"))
	const budget = 300_000
	r.Run(m, budget)
	if got := m.TotalAccesses(); got != budget {
		t.Fatalf("machine issued %d accesses, want exactly %d", got, budget)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
	res := m.Finish(r.Name())
	if len(res.Tenants) != 2 {
		t.Fatalf("got %d tenant rows, want 2", len(res.Tenants))
	}
	var sum uint64
	for _, tr := range res.Tenants {
		if tr.Accesses == 0 {
			t.Errorf("tenant %s issued no accesses", tr.Name)
		}
		sum += tr.Accesses
	}
	if sum != budget {
		t.Fatalf("tenant accesses sum to %d, want %d", sum, budget)
	}
	// Weight 3 vs 1 should skew the slice draw visibly.
	if res.Tenants[0].Accesses <= res.Tenants[1].Accesses {
		t.Errorf("weight-3 tenant ran %d accesses, weight-1 ran %d; want a skew toward the heavier tenant",
			res.Tenants[0].Accesses, res.Tenants[1].Accesses)
	}
}

func TestSingleTenantStaysSingleSpace(t *testing.T) {
	r, err := tenant.New(tenant.Config{Tenants: []tenant.Spec{
		{Name: "solo", Workload: workload.MustNew("silo")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(configFor(11, workload.MustNew("silo").Spec().RSSBytes()), bench.NewPolicy("memtis"))
	r.Run(m, 100_000)
	if m.Multi() || m.NumSpaces() != 1 {
		t.Fatalf("one tenant flipped the machine into multi-space mode (%d spaces)", m.NumSpaces())
	}
	res := m.Finish(r.Name())
	if res.Accesses != 100_000 {
		t.Fatalf("issued %d accesses, want 100000", res.Accesses)
	}
	if len(res.Tenants) != 0 {
		t.Fatalf("single-space run emitted %d tenant rows; compatibility path requires none", len(res.Tenants))
	}
}

func TestChurnLifecycle(t *testing.T) {
	m := sim.NewMachine(smallConfig(3), bench.NewPolicy("memtis"))
	var events []string
	cfg := tenant.Config{
		Tenants: []tenant.Spec{
			{Name: "base", Workload: &synth{name: "base", bytes: 2 * tier.HugePageSize},
				GrowBytes: 2 * tier.HugePageSize, GrowFrac: 0.3, ShrinkFrac: 0.7},
			{Name: "late", Workload: &synth{name: "late", bytes: 2 * tier.HugePageSize},
				SpawnFrac: 0.2, ExitFrac: 0.6},
		},
		OnChurn: func(k tenant.ChurnKind, id int) {
			events = append(events, fmt.Sprintf("%s:%d", k, id))
			if err := m.Audit(); err != nil {
				t.Fatalf("audit after %s of tenant %d: %v", k, id, err)
			}
		},
	}
	r, err := tenant.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 400_000
	r.Run(m, budget)
	// Events fire in threshold order: 0.2 spawn, 0.3 grow, 0.6 exit, 0.7 shrink.
	want := []string{"spawn:1", "grow:0", "exit:1", "shrink:0"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("churn events %v, want %v", events, want)
	}
	if got := m.TotalAccesses(); got != budget {
		t.Fatalf("machine issued %d accesses, want %d", got, budget)
	}
	// The exited tenant's space must be fully released.
	if ru := m.Space(1).ResidentUnits(); ru != 0 {
		t.Fatalf("exited tenant still holds %d resident units", ru)
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() string {
		r, err := tenant.New(tenant.Config{Tenants: []tenant.Spec{
			{Name: "a", Workload: &synth{name: "a", bytes: 4 * tier.HugePageSize}},
			{Name: "b", Weight: 4, Workload: workload.MustNew("btree"),
				SpawnFrac: 0.1, ExitFrac: 0.8},
			{Name: "c", Workload: &synth{name: "c", bytes: 2 * tier.HugePageSize},
				GrowBytes: tier.HugePageSize, GrowFrac: 0.4},
		}})
		if err != nil {
			t.Fatal(err)
		}
		rss := workload.MustNew("btree").Spec().RSSBytes() + 8*tier.HugePageSize
		m := sim.NewMachine(configFor(99, rss), bench.NewPolicy("memtis"))
		r.Run(m, 250_000)
		res := m.Finish(r.Name())
		out := fmt.Sprintf("%+v\n", res.Tenants)
		for _, mt := range m.Counters().Snapshot() {
			out += fmt.Sprintf("%s=%d\n", mt.Name, mt.Value)
		}
		return out
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different runs\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

func TestFloorCountersPublished(t *testing.T) {
	r, err := tenant.New(tenant.Config{Tenants: []tenant.Spec{
		{Name: "vip", FloorBytes: 4 * tier.HugePageSize, Weight: 1,
			Workload: &synth{name: "vip", bytes: 6 * tier.HugePageSize}},
		{Name: "noisy", Weight: 8, Workload: workload.MustNew("silo")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine(configFor(21, workload.MustNew("silo").Spec().RSSBytes()+8*tier.HugePageSize), bench.NewPolicy("memtis"))
	r.Run(m, 300_000)
	if v, ok := m.Counters().Value("tenant/vip/floor_violations"); !ok {
		t.Fatal("floor_violations counter missing")
	} else if v != 0 {
		t.Fatalf("vip tenant suffered %d floor violations", v)
	}
	for _, name := range []string{"fast_pages", "resident_pages", "accesses"} {
		if _, ok := m.Counters().Value("tenant/vip/" + name); !ok {
			t.Fatalf("tenant/vip/%s missing from the registry", name)
		}
	}
	if err := m.Audit(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoSlice pins the quantum schedule: the fixed default through
// 64 tenants, then scaled so one full rotation fits the 64-tenant
// fairness window, floored at MinSlice for the largest mixes.
func TestAutoSlice(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{
		{1, tenant.DefaultSlice},
		{64, tenant.DefaultSlice},
		{128, 4096},
		{256, 2048},
		{1024, 512},
		{4096, tenant.MinSlice},
	}
	for _, c := range cases {
		if got := tenant.AutoSlice(c.n); got != c.want {
			t.Errorf("AutoSlice(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// switchSink collects tenant-switch events straight off the tracer.
type switchSink struct{ aux []uint64 }

func (s *switchSink) Emit(e obs.Event) {
	if e.Kind == obs.EvTenantSwitch {
		s.aux = append(s.aux, e.Aux)
	}
}

// TestAutoSliceTightensLargeMixes is the behavioural side of the
// schedule: at 1024 tenants every scheduled slice observed on the
// trace is at most the tightened 512-access quantum, and the rotation
// produces far more, shorter slices than the fixed default would —
// the fairness window the quantum scaling exists to protect.
func TestAutoSliceTightensLargeMixes(t *testing.T) {
	const n = 1024
	specs := make([]tenant.Spec, n)
	for i := range specs {
		specs[i] = tenant.Spec{
			Name:     fmt.Sprintf("t%04d", i),
			Workload: &synth{name: fmt.Sprintf("t%04d", i), bytes: 16 * tier.BasePageSize},
		}
	}
	r, err := tenant.New(tenant.Config{Tenants: specs})
	if err != nil {
		t.Fatal(err)
	}
	sink := &switchSink{}
	m := sim.NewMachine(sim.Config{
		FastBytes: 16 << 20,
		CapBytes:  256 << 20,
		CapKind:   tier.NVM,
		Seed:      7,
		Trace:     obs.NewTracer(sink),
	}, bench.NewPolicy("memtis"))
	const budget = 200_000
	r.Run(m, budget)
	want := tenant.AutoSlice(n)
	if len(sink.aux) == 0 {
		t.Fatal("no tenant_switch events traced")
	}
	for _, aux := range sink.aux {
		if aux > want {
			t.Fatalf("scheduled a %d-access slice; AutoSlice(%d) bounds the quantum at %d", aux, n, want)
		}
	}
	if min := budget / tenant.DefaultSlice; len(sink.aux) <= min {
		t.Errorf("only %d switches over a %d budget — no finer than the fixed %d-access default (%d switches)",
			len(sink.aux), budget, tenant.DefaultSlice, min)
	}
}
