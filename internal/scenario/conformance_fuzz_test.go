// The conformance fuzzer needs internal/bench's policy factory and
// machine sizing (bench imports this package), so it lives in the
// external scenario_test package.
package scenario_test

import (
	"os"
	"testing"

	"memtis/internal/bench"
)

// FuzzScenarioConformance is the scenario pathology hunt: each input
// seed derives a scenario, a policy and a tiering ratio, and the run is
// executed under the conformance probe — no page lost or double-mapped,
// stalls within the fault-aware bound, monotonic background accounting,
// ksampled within budget. A failing seed is shrunk to a minimal spec
// and, when SCENARIO_REPRO_DIR is set (the nightly CI job sets it and
// uploads the directory), written there as scenario-<seed>.json; the
// failure message alone carries everything needed to reproduce.
//
// Run with: go test -run '^$' -fuzz FuzzScenarioConformance ./internal/scenario
func FuzzScenarioConformance(f *testing.F) {
	for seed := uint64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	reproDir := os.Getenv("SCENARIO_REPRO_DIR")
	f.Fuzz(func(t *testing.T, seed uint64) {
		h, err := bench.HuntScenario(seed, 0, reproDir)
		if err != nil {
			t.Fatalf("hunt seed %#x: %v", seed, err)
		}
		if !h.Failed() {
			return
		}
		min, encErr := h.Minimal.Encode()
		if encErr != nil {
			min = []byte(encErr.Error())
		}
		t.Errorf("scenario seed=%#x policy=%s ratio=%s violated the conformance contract:",
			h.Seed, h.Policy, h.Ratio.Name)
		for _, v := range h.Violations {
			t.Errorf("  %s", v)
		}
		t.Errorf("minimal reproducer (repro file %q):\n%s", h.ReproPath, min)
	})
}
